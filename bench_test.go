package repro

// One testing.B benchmark per table/figure of the paper's evaluation
// (§4, Figures 3-8), running the *native* implementation, plus the
// ablation benchmarks for the restricted schemes the conclusion (§5)
// proposes. Absolute values reflect the host; the paper-scale numbers
// come from the simulated substrate (cmd/mpfbench, EXPERIMENTS.md).
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/apps/gauss"
	"repro/internal/apps/sor"
	"repro/internal/bench"
	"repro/internal/fastpath"
	"repro/mpf"
)

// BenchmarkFig3Base measures loop-back throughput versus message length
// (paper Figure 3). The per-op bytes/sec appears as the B/s metric.
func BenchmarkFig3Base(b *testing.B) {
	for _, msgLen := range []int{16, 128, 512, 1024, 2048} {
		b.Run(fmt.Sprintf("len=%d", msgLen), func(b *testing.B) {
			fac, err := mpf.New(mpf.WithMaxProcesses(1), mpf.WithBlocksPerProcess(1024))
			if err != nil {
				b.Fatal(err)
			}
			defer fac.Shutdown()
			p, _ := fac.Process(0)
			s, err := p.OpenSend("base")
			if err != nil {
				b.Fatal(err)
			}
			r, err := p.OpenReceive("base", mpf.FCFS)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, msgLen)
			buf := make([]byte, msgLen)
			b.SetBytes(int64(msgLen))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Send(payload); err != nil {
					b.Fatal(err)
				}
				if _, err := r.Receive(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fanoutBench measures one sender fanning out to nRecv receivers with
// the given protocol; each b.N iteration is one message through the
// circuit (Figures 4 and 5).
func fanoutBench(b *testing.B, proto mpf.Protocol, msgLen, nRecv int) {
	fac, err := mpf.New(mpf.WithMaxProcesses(nRecv+1), mpf.WithBlocksPerProcess(2048))
	if err != nil {
		b.Fatal(err)
	}
	defer fac.Shutdown()
	ready := make(chan struct{}, nRecv)
	done := make(chan struct{})
	for i := 1; i <= nRecv; i++ {
		go func(pid int) {
			p, _ := fac.Process(pid)
			r, err := p.OpenReceive("fan", proto)
			if err != nil {
				b.Error(err)
				return
			}
			defer r.Close()
			ready <- struct{}{}
			buf := make([]byte, msgLen)
			for {
				n, err := r.Receive(buf)
				if err != nil {
					return // shutdown
				}
				if n == 1 && buf[0] == 0xFF {
					done <- struct{}{}
					return
				}
			}
		}(i)
	}
	for i := 0; i < nRecv; i++ {
		<-ready
	}
	p, _ := fac.Process(0)
	s, err := p.OpenSend("fan")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, msgLen)
	b.SetBytes(int64(msgLen))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nPoison := nRecv
	if proto == mpf.Broadcast {
		nPoison = 1
	}
	for i := 0; i < nPoison; i++ {
		if err := s.Send([]byte{0xFF}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < nRecv; i++ {
		<-done
	}
}

// BenchmarkFig4FCFS measures send throughput with N FCFS receivers
// (paper Figure 4).
func BenchmarkFig4FCFS(b *testing.B) {
	for _, msgLen := range []int{16, 128, 1024} {
		for _, nRecv := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("len=%d/recv=%d", msgLen, nRecv), func(b *testing.B) {
				fanoutBench(b, mpf.FCFS, msgLen, nRecv)
			})
		}
	}
}

// BenchmarkFig5Broadcast measures send throughput with N BROADCAST
// receivers (paper Figure 5); delivered bytes are N× the reported B/s.
func BenchmarkFig5Broadcast(b *testing.B) {
	for _, msgLen := range []int{16, 128, 1024} {
		for _, nRecv := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("len=%d/recv=%d", msgLen, nRecv), func(b *testing.B) {
				fanoutBench(b, mpf.Broadcast, msgLen, nRecv)
			})
		}
	}
}

// BenchmarkFig6Random runs the fully-connected random benchmark (paper
// Figure 6); each iteration is one complete exchange of
// 20 messages/process.
func BenchmarkFig6Random(b *testing.B) {
	for _, msgLen := range []int{8, 256, 1024} {
		for _, nProcs := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("len=%d/procs=%d", msgLen, nProcs), func(b *testing.B) {
				b.SetBytes(int64(msgLen * nProcs * 20))
				for i := 0; i < b.N; i++ {
					if _, err := bench.NativeRandom(msgLen, nProcs, 20, int64(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig7Gauss times the message-passing Gauss-Jordan solver
// (paper Figure 7); compare against BenchmarkFig7GaussSequential for
// host-local speedup.
func BenchmarkFig7Gauss(b *testing.B) {
	for _, n := range []int{32, 96} {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				rng := rand.New(rand.NewSource(int64(n)))
				a, rhs := gauss.NewSystem(n, rng)
				for i := 0; i < b.N; i++ {
					fac, err := mpf.New(mpf.WithMaxProcesses(workers+1), mpf.WithBlocksPerProcess(2048))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := gauss.SolveMPF(fac, workers, a, rhs); err != nil {
						b.Fatal(err)
					}
					fac.Shutdown()
				}
			})
		}
	}
}

// BenchmarkFig7GaussSequential is Figure 7's baseline.
func BenchmarkFig7GaussSequential(b *testing.B) {
	for _, n := range []int{32, 96} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			a, rhs := gauss.NewSystem(n, rng)
			for i := 0; i < b.N; i++ {
				if _, err := gauss.SolveSequential(a, rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8SOR times one full message-passing SOR solve (paper
// Figure 8 divides by the iteration count for per-iteration speedup).
func BenchmarkFig8SOR(b *testing.B) {
	for _, p := range []int{17, 33} {
		for _, n := range []int{1, 2, 3} {
			b.Run(fmt.Sprintf("p=%d/N=%d", p, n), func(b *testing.B) {
				pr := sor.DefaultProblem(p)
				for i := 0; i < b.N; i++ {
					fac, err := mpf.New(mpf.WithMaxProcesses(n*n+1),
						mpf.WithMaxLNVCs(256), mpf.WithBlocksPerProcess(4096))
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := sor.SolveMPF(fac, n, pr); err != nil {
						b.Fatal(err)
					}
					fac.Shutdown()
				}
			})
		}
	}
}

// Ablations: the paper §5 claims restricted schemes beat the general
// LNVC path. BenchmarkAblation* quantify one-to-one transfers through
// (a) the general facility, (b) the lock-free SPSC ring, and (c) the
// synchronous single-copy rendezvous.

func BenchmarkAblationGeneralLNVC(b *testing.B) {
	for _, msgLen := range []int{16, 1024} {
		b.Run(fmt.Sprintf("len=%d", msgLen), func(b *testing.B) {
			fac, err := mpf.New(mpf.WithMaxProcesses(1), mpf.WithBlocksPerProcess(1024))
			if err != nil {
				b.Fatal(err)
			}
			defer fac.Shutdown()
			p, _ := fac.Process(0)
			s, _ := p.OpenSend("one2one")
			r, _ := p.OpenReceive("one2one", mpf.FCFS)
			payload := make([]byte, msgLen)
			buf := make([]byte, msgLen)
			b.SetBytes(int64(msgLen))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Send(payload); err != nil {
					b.Fatal(err)
				}
				if _, err := r.Receive(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationRing(b *testing.B) {
	for _, msgLen := range []int{16, 1024} {
		b.Run(fmt.Sprintf("len=%d", msgLen), func(b *testing.B) {
			r, err := fastpath.NewRing(64 * 1024)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, msgLen)
			buf := make([]byte, msgLen)
			b.SetBytes(int64(msgLen))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Send(payload); err != nil {
					b.Fatal(err)
				}
				if _, err := r.Recv(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBlockSize sweeps the message block size — the knob
// behind Figure 3's shape. The paper ran with 10-byte blocks, which is
// why its absolute throughput is so low: per-block handling dominates.
// Larger blocks amortise it away.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, blockSize := range []int{10, 64, 256, 1024} {
		b.Run(fmt.Sprintf("block=%d", blockSize), func(b *testing.B) {
			fac, err := mpf.New(
				mpf.WithMaxProcesses(1),
				mpf.WithBlockSize(blockSize),
				mpf.WithBlocksPerProcess(8192/blockSize*64),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer fac.Shutdown()
			p, _ := fac.Process(0)
			s, _ := p.OpenSend("blk")
			r, _ := p.OpenReceive("blk", mpf.FCFS)
			const msgLen = 1024
			payload := make([]byte, msgLen)
			buf := make([]byte, msgLen)
			b.SetBytes(msgLen)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Send(payload); err != nil {
					b.Fatal(err)
				}
				if _, err := r.Receive(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationRendezvous(b *testing.B) {
	for _, msgLen := range []int{16, 1024} {
		b.Run(fmt.Sprintf("len=%d", msgLen), func(b *testing.B) {
			v := fastpath.NewRendezvous()
			payload := make([]byte, msgLen)
			done := make(chan struct{})
			go func() {
				buf := make([]byte, msgLen)
				for {
					if _, err := v.Recv(buf); err != nil {
						close(done)
						return
					}
				}
			}()
			b.SetBytes(int64(msgLen))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := v.Send(payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			v.Close()
			<-done
		})
	}
}
