// Pipeline: a Unix-pipe-style text pipeline over LNVCs, using the
// io.Reader / io.Writer stream adapters.
//
// Three processes: a generator writes lines into a "raw" circuit; a
// filter upcases them onto "cooked"; a consumer counts and prints a
// sample. Each hop is a byte stream framed over MPF messages — the
// hybrid shared-memory/message-passing style the paper's conclusion
// advertises ("a particularly interesting benefit ... is the ability to
// develop a program using a hybrid parallel programming paradigm").
//
//	go run ./examples/pipeline [-lines 10000]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/mpf"
)

func main() {
	lines := flag.Int("lines", 10000, "lines to push through the pipeline")
	flag.Parse()

	fac, err := mpf.New(mpf.WithMaxProcesses(3), mpf.WithBlocksPerProcess(4096))
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Shutdown()

	var count int
	var sample string
	err = fac.Run(3, func(p *mpf.Process) error {
		switch p.PID() {
		case 0: // generator
			s, err := p.OpenSend("raw")
			if err != nil {
				return err
			}
			w := mpf.NewWriter(s, 1024)
			bw := bufio.NewWriter(w)
			for i := 0; i < *lines; i++ {
				fmt.Fprintf(bw, "record %08d: the quick brown fox\n", i)
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			return w.Close()

		case 1: // filter: upcase
			in, err := p.OpenReceive("raw", mpf.FCFS)
			if err != nil {
				return err
			}
			defer in.Close()
			out, err := p.OpenSend("cooked")
			if err != nil {
				return err
			}
			r := bufio.NewScanner(mpf.NewReader(in, 1024))
			w := mpf.NewWriter(out, 1024)
			bw := bufio.NewWriter(w)
			for r.Scan() {
				fmt.Fprintln(bw, strings.ToUpper(r.Text()))
			}
			if err := r.Err(); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			return w.Close()

		default: // consumer
			in, err := p.OpenReceive("cooked", mpf.FCFS)
			if err != nil {
				return err
			}
			defer in.Close()
			sc := bufio.NewScanner(mpf.NewReader(in, 1024))
			for sc.Scan() {
				if count == 0 {
					sample = sc.Text()
				}
				count++
			}
			return sc.Err()
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline moved %d lines; first: %q\n", count, sample)
	st := fac.Stats()
	fmt.Printf("MPF: %d messages, %d bytes\n", st.Sends, st.BytesSent)
}
