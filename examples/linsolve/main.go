// Linsolve: the paper's first application study as a runnable example.
//
// Solves a random dense linear system with the message-passing
// Gauss-Jordan solver (partial pivoting, row partitioning, an arbiter
// process for pivot selection, broadcast distribution of pivot rows) and
// compares it against the sequential and shared-memory baselines —
// the cross-paradigm comparison the paper's introduction motivates.
//
//	go run ./examples/linsolve [-n 96] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/apps/gauss"
	"repro/mpf"
)

func main() {
	n := flag.Int("n", 96, "matrix dimension")
	workers := flag.Int("workers", 4, "worker processes for the parallel solvers")
	seed := flag.Int64("seed", 1, "random system seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	a, b := gauss.NewSystem(*n, rng)
	fmt.Printf("solving a %d×%d system, %d workers\n\n", *n, *n, *workers)

	start := time.Now()
	xSeq, err := gauss.SolveSequential(a, b)
	if err != nil {
		log.Fatal(err)
	}
	tSeq := time.Since(start)
	fmt.Printf("%-24s %10v   residual %.2e\n", "sequential:", tSeq, gauss.Residual(a, b, xSeq))

	fac, err := mpf.New(
		mpf.WithMaxProcesses(*workers+1),
		mpf.WithBlocksPerProcess(2048),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Shutdown()
	start = time.Now()
	xMPF, err := gauss.SolveMPF(fac, *workers, a, b)
	if err != nil {
		log.Fatal(err)
	}
	tMPF := time.Since(start)
	fmt.Printf("%-24s %10v   residual %.2e   speedup %.2f\n",
		"MPF message passing:", tMPF, gauss.Residual(a, b, xMPF), tSeq.Seconds()/tMPF.Seconds())

	start = time.Now()
	xShared, err := gauss.SolveShared(*workers, a, b)
	if err != nil {
		log.Fatal(err)
	}
	tShared := time.Since(start)
	fmt.Printf("%-24s %10v   residual %.2e   speedup %.2f\n",
		"shared memory:", tShared, gauss.Residual(a, b, xShared), tSeq.Seconds()/tShared.Seconds())

	st := fac.Stats()
	fmt.Printf("\nMPF traffic: %d messages, %d bytes sent, %d receive waits\n",
		st.Sends, st.BytesSent, st.ReceiveWaits)
}
