// Poisson: the paper's second application study as a runnable example.
//
// Solves Poisson's equation on the unit square with the message-passing
// SOR solver ported from a hypercube program: an N×N process mesh
// exchanges subgrid boundaries over FCFS circuits each iteration and a
// monitoring process aggregates convergence over a broadcast circuit.
//
//	go run ./examples/poisson [-p 33] [-n 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/apps/sor"
	"repro/mpf"
)

func main() {
	p := flag.Int("p", 33, "interior grid dimension (P×P points)")
	n := flag.Int("n", 2, "process mesh dimension (N×N processes)")
	flag.Parse()

	pr := sor.DefaultProblem(*p)
	fmt.Printf("Poisson ∇²u = f on a %d×%d grid, %d×%d process mesh, ω = %.2f\n\n",
		*p, *p, *n, *n, pr.Omega)

	start := time.Now()
	gSeq, itSeq, err := sor.SolveSequential(pr)
	if err != nil {
		log.Fatal(err)
	}
	tSeq := time.Since(start)
	fmt.Printf("%-16s %4d iterations  %10v  max error vs analytic %.3e\n",
		"sequential:", itSeq, tSeq, sor.MaxError(pr, gSeq))

	fac, err := mpf.New(
		mpf.WithMaxProcesses(*n**n+1),
		mpf.WithMaxLNVCs(256),
		mpf.WithBlocksPerProcess(4096),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Shutdown()
	start = time.Now()
	gMPF, itMPF, err := sor.SolveMPF(fac, *n, pr)
	if err != nil {
		log.Fatal(err)
	}
	tMPF := time.Since(start)
	fmt.Printf("%-16s %4d iterations  %10v  max error vs analytic %.3e\n",
		"MPF mesh:", itMPF, tMPF, sor.MaxError(pr, gMPF))
	fmt.Printf("%-16s per-iteration: sequential %v, MPF %v\n", "",
		tSeq/time.Duration(itSeq), tMPF/time.Duration(itMPF))
	fmt.Printf("solutions agree to %.3e\n\n", sor.GridDiff(pr, gSeq, gMPF))

	st := fac.Stats()
	fmt.Printf("MPF traffic: %d messages (%d boundary exchanges + status), %d bytes\n",
		st.Sends, st.Sends-uint64(itMPF)*uint64(*n**n+1), st.BytesSent)
}
