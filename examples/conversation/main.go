// Conversation: LNVCs as conversations — the model behind MPF's design.
//
// The paper grounds LNVC semantics in conversation-based electronic
// mail: participants enter and leave a discussion at will, and the
// conversation outlives any particular participant. This example runs a
// small newsroom:
//
//   - reporters join the "newswire" circuit as senders, file a few
//     stories, and leave;
//
//   - subscribers join as BROADCAST receivers (each sees every story
//     filed while subscribed);
//
//   - one archivist joins as an FCFS receiver pool member together with
//     a second archivist — each story lands in exactly one archive
//     shard, demonstrating FCFS and BROADCAST receivers coexisting on
//     one circuit.
//
//     go run ./examples/conversation
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"

	"repro/mpf"
)

const (
	reporters   = 3
	storiesEach = 4
	subscribers = 2
	archivists  = 2
)

func main() {
	total := reporters + subscribers + archivists
	fac, err := mpf.New(mpf.WithMaxProcesses(total))
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Shutdown()

	var mu sync.Mutex
	subscriberLogs := make(map[int][]string)
	archiveShards := make(map[int][]string)

	err = fac.Run(total, func(p *mpf.Process) error {
		switch {
		case p.PID() < reporters:
			return reporter(p)
		case p.PID() < reporters+subscribers:
			return subscriber(p, &mu, subscriberLogs)
		default:
			return archivist(p, &mu, archiveShards)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== subscriber feeds (each sees every story, in order) ==")
	for _, pid := range sortedKeys(subscriberLogs) {
		fmt.Printf("subscriber %d: %d stories\n", pid, len(subscriberLogs[pid]))
	}
	fmt.Println("\n== archive shards (each story in exactly one) ==")
	archived := 0
	for _, pid := range sortedKeys(archiveShards) {
		fmt.Printf("archivist %d: %d stories\n", pid, len(archiveShards[pid]))
		archived += len(archiveShards[pid])
	}
	fmt.Printf("\n%d stories filed, %d archived\n", reporters*storiesEach, archived)
}

// reporter files stories on the newswire, then hangs up. A ready-check
// circuit ensures subscribers and archivists are connected before the
// first story, so no story is filed into an empty room.
func reporter(p *mpf.Process) error {
	ready, err := p.OpenReceive(fmt.Sprintf("ready-%d", p.PID()), mpf.FCFS)
	if err != nil {
		return err
	}
	defer ready.Close()
	buf := make([]byte, 1)
	for i := 0; i < subscribers+archivists; i++ {
		if _, err := ready.Receive(buf); err != nil {
			return err
		}
	}
	wire, err := p.OpenSend("newswire")
	if err != nil {
		return err
	}
	defer wire.Close()
	for s := 0; s < storiesEach; s++ {
		story := fmt.Sprintf("story %d from reporter %d", s, p.PID())
		if err := wire.Send([]byte(story)); err != nil {
			return err
		}
	}
	return nil
}

// announceReady tells every reporter this consumer is connected. The
// returned closer must run only when the consumer is done: closing the
// send connection immediately could delete the ready circuit — and drop
// the unread announcement — if the reporter has not opened its receive
// side yet (the paper's lost-message scenario, §3.2).
func announceReady(p *mpf.Process) (func(), error) {
	conns := make([]*mpf.SendConn, 0, reporters)
	closer := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	for r := 0; r < reporters; r++ {
		c, err := p.OpenSend(fmt.Sprintf("ready-%d", r))
		if err != nil {
			closer()
			return nil, err
		}
		conns = append(conns, c)
		if err := c.Send([]byte{1}); err != nil {
			closer()
			return nil, err
		}
	}
	return closer, nil
}

func subscriber(p *mpf.Process, mu *sync.Mutex, logs map[int][]string) error {
	feed, err := p.OpenReceive("newswire", mpf.Broadcast)
	if err != nil {
		return err
	}
	defer feed.Close()
	done, err := announceReady(p)
	if err != nil {
		return err
	}
	defer done()
	buf := make([]byte, 256)
	for i := 0; i < reporters*storiesEach; i++ {
		n, err := feed.Receive(buf)
		if err != nil {
			return err
		}
		mu.Lock()
		logs[p.PID()] = append(logs[p.PID()], string(buf[:n]))
		mu.Unlock()
	}
	return nil
}

func archivist(p *mpf.Process, mu *sync.Mutex, shards map[int][]string) error {
	pool, err := p.OpenReceive("newswire", mpf.FCFS)
	if err != nil {
		return err
	}
	defer pool.Close()
	done, err := announceReady(p)
	if err != nil {
		return err
	}
	defer done()
	buf := make([]byte, 256)
	for {
		ok, err := pool.Check()
		if err != nil {
			return err
		}
		if !ok {
			// The pool drains cooperatively; stop once every story has
			// been archived by someone.
			mu.Lock()
			n := 0
			for _, s := range shards {
				n += len(s)
			}
			mu.Unlock()
			if n >= reporters*storiesEach {
				return nil
			}
			runtime.Gosched()
			continue
		}
		n, err := pool.Receive(buf)
		if err != nil {
			return err
		}
		mu.Lock()
		shards[p.PID()] = append(shards[p.PID()], string(buf[:n]))
		mu.Unlock()
	}
}

// sortedKeys returns the map's pids in ascending order for stable output.
func sortedKeys(m map[int][]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
