// Eventloop: a multiplexed server draining many producer circuits from
// a single goroutine with mpf.Selector — the many-circuits-per-event-
// loop shape the paper's check_receive polling idiom could only
// approximate. Each producer owns a private circuit and ships its
// records in batches; one consumer parks on a Selector over all of
// them and wakes only when one of its circuits has traffic, doing
// O(ready) work per wakeup however many circuits sit idle.
//
// The run ends with the facility's wakeup accounting: wakeups per
// message stays around one (and spurious wakeups near zero) no matter
// how many producers — and therefore idle circuits — the loop
// multiplexes. Compare `mpfbench -select` for the same shape measured
// against the legacy global-pulse baseline.
//
//	go run ./examples/eventloop [-producers 8] [-msgs 5000] [-batch 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/mpf"
)

func main() {
	producers := flag.Int("producers", 8, "producer processes, one circuit each")
	msgs := flag.Int("msgs", 5000, "messages per producer")
	batch := flag.Int("batch", 16, "producer send batch size")
	flag.Parse()
	if *producers < 1 || *msgs < 1 || *batch < 1 {
		log.Fatalf("eventloop: need positive -producers, -msgs, -batch")
	}

	fac, err := mpf.New(
		mpf.WithMaxProcesses(*producers+1),
		mpf.WithMaxLNVCs(*producers+2),
		mpf.WithBlocksPerProcess(4096),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Shutdown()

	counts := make([]int, *producers)
	var elapsed time.Duration
	err = fac.Run(*producers+1, func(p *mpf.Process) error {
		if p.PID() < *producers {
			return produce(p, *msgs, *batch)
		}
		return consume(p, *producers, *msgs, counts, &elapsed)
	})
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	for i, c := range counts {
		fmt.Printf("circuit work-%d: %6d messages\n", i, c)
		total += c
	}
	st := fac.Stats()
	fmt.Printf("\n%d messages through one event loop in %v (%.0f msgs/sec)\n",
		total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	fmt.Printf("park wakeups: %d (%.3f per message), spurious: %d\n",
		st.MuxWakeups, float64(st.MuxWakeups)/float64(total), st.MuxSpurious)
}

// produce ships msgs records on this producer's private circuit. No
// ready handshake is needed: records sent before the event loop joins
// are retained and inherited by the first receiver, and the send
// connection stays open (until Shutdown) so the circuit cannot die in
// the gap.
func produce(p *mpf.Process, msgs, batch int) error {
	s, err := p.OpenSend(fmt.Sprintf("work-%d", p.PID()))
	if err != nil {
		return err
	}
	bufs := make([][]byte, 0, batch)
	for k := 0; k < msgs; k++ {
		rec := fmt.Appendf(nil, "producer %d record %d", p.PID(), k)
		bufs = append(bufs, rec)
		if len(bufs) == batch || k == msgs-1 {
			if err := s.SendBatch(bufs); err != nil {
				return err
			}
			bufs = bufs[:0]
		}
	}
	return nil
}

// consume multiplexes every producer circuit through one Selector,
// draining ready circuits with TryReceive until all traffic has
// arrived.
func consume(p *mpf.Process, producers, msgs int, counts []int, elapsed *time.Duration) error {
	sel, err := p.NewSelector()
	if err != nil {
		return err
	}
	defer sel.Close()
	byConn := make(map[*mpf.RecvConn]int, producers)
	for i := 0; i < producers; i++ {
		rc, err := p.OpenReceive(fmt.Sprintf("work-%d", i), mpf.FCFS)
		if err != nil {
			return err
		}
		if err := sel.Add(rc); err != nil {
			return err
		}
		byConn[rc] = i
	}

	start := time.Now()
	buf := make([]byte, 256)
	total, want := 0, producers*msgs
	for total < want {
		// A generous deadline turns a wedged producer (its circuit
		// stays open, so no close wakeup would ever arrive) into a
		// diagnosable error instead of a silent hang.
		ready, err := sel.WaitDeadline(10 * time.Second)
		if err != nil {
			return fmt.Errorf("event loop after %d of %d messages: %w", total, want, err)
		}
		for _, rc := range ready {
			for {
				_, ok, err := rc.TryReceive(buf)
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				counts[byConn[rc]]++
				total++
			}
		}
	}
	*elapsed = time.Since(start)
	return nil
}
