// Eventloop: a multiplexed zero-copy server draining many producer
// circuits from a single goroutine — the default server shape the
// batched payload plane is built for. Each producer owns a private
// circuit and ships its records in LoanBatches: one arena transaction
// and one circuit lock acquisition per batch, the records produced in
// place in shared memory. One consumer parks on a Selector over all of
// the circuits and drains them with WaitViews: ready circuits are
// claimed into pinned views inside the wait round — one circuit lock
// per ready circuit, not per message — read in place, and released in
// a batch (one arena transaction per circuit run). No payload byte is
// copied anywhere end to end.
//
// The run ends with the facility's accounting: wakeups per message
// stays well below one however many circuits the loop multiplexes, and
// the copy ledger must show zero payload copies in either direction —
// the run aborts otherwise, which is what CI's example smoke checks.
// Compare `mpfbench -select` and `mpfbench -loanbatch` for the same
// shapes measured against their ablation baselines.
//
// With -credit n the facility runs under per-circuit credit flow
// control (mpf.WithCredit): each producer circuit is bounded to n
// accounted blocks of the arena, so a producer outrunning the event
// loop parks on its own budget instead of starving its siblings; the
// run then also asserts the ledger drained back to zero held blocks.
//
//	go run ./examples/eventloop [-producers 8] [-msgs 5000] [-batch 16] [-credit 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/mpf"
)

func main() {
	producers := flag.Int("producers", 8, "producer processes, one circuit each")
	msgs := flag.Int("msgs", 5000, "messages per producer")
	batch := flag.Int("batch", 16, "producer loan-batch size and consumer harvest budget")
	credit := flag.Int("credit", 0, "per-circuit credit budget in blocks (0 = flow control off); must cover one loan batch")
	flag.Parse()
	if *producers < 1 || *msgs < 1 || *batch < 1 || *credit < 0 {
		log.Fatalf("eventloop: need positive -producers, -msgs, -batch and non-negative -credit")
	}

	opts := []mpf.Option{
		mpf.WithMaxProcesses(*producers + 1),
		mpf.WithMaxLNVCs(*producers + 2),
		mpf.WithBlocksPerProcess(4096),
	}
	if *credit > 0 {
		// Bound every producer circuit's share of the arena: a producer
		// that outruns the event loop parks on its own circuit's credit
		// waiter instead of bleeding the region dry for its siblings.
		opts = append(opts, mpf.WithCredit(*credit))
	}
	fac, err := mpf.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Shutdown()

	counts := make([]int, *producers)
	var elapsed time.Duration
	// Credit is receiver-granted: a credited producer that spends its
	// whole budget before the event loop has joined its circuit can
	// never be granted more and fails with ErrNotConnected, by design.
	// The loop therefore signals once every circuit is open and
	// credited producers hold their first batch until then; uncredited
	// producers keep the PR-4 behaviour (no handshake — early records
	// are simply retained and inherited by the first receiver). The
	// signal also fires if the loop dies during setup, so producers
	// fail forward (ErrNotConnected) instead of parking forever.
	loopReady := make(chan struct{})
	var readyOnce sync.Once
	signalReady := func() { readyOnce.Do(func() { close(loopReady) }) }
	err = fac.Run(*producers+1, func(p *mpf.Process) error {
		if p.PID() < *producers {
			if *credit > 0 {
				<-loopReady
			}
			return produce(p, *msgs, *batch)
		}
		defer signalReady()
		return consume(p, *producers, *msgs, *batch, counts, &elapsed, signalReady)
	})
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	for i, c := range counts {
		fmt.Printf("circuit work-%d: %6d messages\n", i, c)
		total += c
	}
	st := fac.Stats()
	fmt.Printf("\n%d messages through one event loop in %v (%.0f msgs/sec)\n",
		total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	fmt.Printf("park wakeups: %d (%.3f per message), spurious: %d\n",
		st.MuxWakeups, float64(st.MuxWakeups)/float64(total), st.MuxSpurious)
	fmt.Printf("ledger: %d loan-batch sends, %d harvested views, %d/%d payload copies in/out\n",
		st.LoanBatchSends, st.HarvestedViews, st.PayloadCopiesIn, st.PayloadCopiesOut)
	if *credit > 0 {
		fmt.Printf("credit: %d-block budget per circuit, %d send stalls, %d blocks still held\n",
			*credit, st.CreditStalls, st.CreditsHeld)
		if st.CreditsHeld != 0 {
			log.Fatalf("eventloop: credit ledger not quiescent: %d blocks still held", st.CreditsHeld)
		}
	}
	// The whole point of the batched zero-copy pipeline: not one payload
	// byte copied in either direction. CI runs this example at fan-out 8
	// and relies on the check.
	if st.PayloadCopiesIn != 0 || st.PayloadCopiesOut != 0 {
		log.Fatalf("eventloop: payload copies leaked onto the zero-copy pipeline: in=%d out=%d",
			st.PayloadCopiesIn, st.PayloadCopiesOut)
	}
	if st.HarvestedViews != uint64(total) {
		log.Fatalf("eventloop: %d messages but %d harvested views", total, st.HarvestedViews)
	}
}

// produce ships msgs records on this producer's private circuit in
// loan batches: the records are produced directly into shared-memory
// spans and committed in groups, one arena transaction and one circuit
// lock per group. Uncredited, no ready handshake is needed: records
// sent before the event loop joins are retained and inherited by the
// first receiver, and the send connection stays open (until Shutdown)
// so the circuit cannot die in the gap. Credited producers are gated
// by the caller until the loop has joined — credit is receiver-granted
// and a budget spent into a receiverless circuit can never refill.
func produce(p *mpf.Process, msgs, batch int) error {
	s, err := p.OpenSend(fmt.Sprintf("work-%d", p.PID()))
	if err != nil {
		return err
	}
	recs := make([][]byte, 0, batch)
	ns := make([]int, 0, batch)
	flush := func() error {
		if len(recs) == 0 {
			return nil
		}
		lb, err := s.LoanBatch(ns)
		if err != nil {
			return err
		}
		for i, rec := range recs {
			lb.Fill(i, rec) // production into the loaned span
		}
		if err := lb.CommitAll(); err != nil {
			return err
		}
		recs, ns = recs[:0], ns[:0]
		return nil
	}
	for k := 0; k < msgs; k++ {
		rec := fmt.Appendf(nil, "producer %d record %d", p.PID(), k)
		recs = append(recs, rec)
		ns = append(ns, len(rec))
		if len(recs) == batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// consume multiplexes every producer circuit through one Selector and
// drains it with WaitViews: each wait round hands back a batch of
// pinned views — already claimed, read in place, attributed to their
// circuits — which are then released together.
func consume(p *mpf.Process, producers, msgs, batch int, counts []int, elapsed *time.Duration, signalReady func()) error {
	sel, err := p.NewSelector()
	if err != nil {
		return err
	}
	defer sel.Close()
	byID := make(map[mpf.ID]int, producers)
	for i := 0; i < producers; i++ {
		rc, err := p.OpenReceive(fmt.Sprintf("work-%d", i), mpf.FCFS)
		if err != nil {
			return err
		}
		if err := sel.Add(rc); err != nil {
			return err
		}
		byID[rc.ID()] = i
	}
	signalReady() // every circuit has its receiver: credited producers may start

	start := time.Now()
	total, want := 0, producers*msgs
	budget := batch * producers
	for total < want {
		// A generous deadline turns a wedged producer (its circuit
		// stays open, so no close wakeup would ever arrive) into a
		// diagnosable error instead of a silent hang.
		views, err := sel.WaitViewsDeadline(budget, 10*time.Second)
		if err != nil {
			return fmt.Errorf("event loop after %d of %d messages: %w", total, want, err)
		}
		for _, v := range views {
			// Read the record where it lives; contiguous is the common
			// case under span allocation.
			if b, ok := v.Bytes(); !ok || len(b) == 0 {
				v.Segments(func(seg []byte) bool { _ = seg[0]; return true })
			} else {
				_ = b[0]
			}
			counts[byID[v.Circuit()]]++
			total++
		}
		mpf.ReleaseViews(views)
	}
	*elapsed = time.Since(start)
	return nil
}
