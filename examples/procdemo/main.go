// Procdemo: the paper's deployment shape made literal — one parent and
// N real forked OS processes exchanging messages through a single
// mmap'd memfd segment, with zero payload copies across the process
// boundary in either direction.
//
// The parent serves a full MPF facility whose block arena is carved
// out of a shared segment (mpf.ServeProc). It forks N children and
// hands each one the segment's file descriptor over an inherited unix
// socket, along with a versioned handshake describing the layout
// (offsets of the descriptor table and arena, block geometry, protocol
// generation). Each child maps the same physical pages at its own base
// address, claims a descriptor-table slot, and speaks to the parent
// only through two in-segment SPSC rings whose 16-byte records carry
// segment offsets; waiting on either side is a futex word inside the
// segment — no pipe, no socket, no copy on the payload path.
//
// Two phases per child, both zero-copy end to end:
//
//	down  the parent commits loans through a circuit, receives its
//	      own views back, and publishes each payload window to the
//	      child, which verifies the bytes in place and acknowledges;
//	up    the parent offers unfilled loan windows; the child writes
//	      the payload in place across the process boundary, and the
//	      parent commits and verifies through a receive view.
//
// The run exits nonzero unless: every round trip verified, the copy
// ledger shows zero payload copies (and every message on the
// loan/view planes), every child exited cleanly and detached its
// slot, and the final segment unmap returned no error. CI's
// cross-process smoke leg runs exactly this binary.
//
// With -chaos the demo becomes a crash drill: two of the children are
// spawned with armed crash fault points (MPF_FAULTPOINTS) and die
// mid-protocol. The respawn supervisor detects each death, reclaims the
// victim's slot — drains its dead-generation ring records, restores its
// pinned views, refunds its credit — and restarts it with a clean
// environment; the parent retries the interrupted phases against the
// replacement incarnations. The run exits nonzero unless every death
// was reclaimed, every child (original or replacement) completed its
// workload, every slot ended reusable, the credit ledger drained to
// zero, and not one arena block leaked. CI's crash-smoke leg runs
// exactly this.
//
//	go run ./examples/procdemo [-children 4] [-msgs 1500] [-size 384] [-chaos]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/mpf"
)

func main() {
	if os.Getenv("MPF_PROCDEMO_CHILD") != "" {
		runChild()
		return
	}
	children := flag.Int("children", 4, "forked child processes, one table slot each")
	msgs := flag.Int("msgs", 1500, "messages per child per phase")
	size := flag.Int("size", 384, "payload bytes per message")
	chaos := flag.Bool("chaos", false, "crash drill: arm crash fault points in two children, reclaim and respawn them mid-run")
	flag.Parse()
	run := runParent
	if *chaos {
		run = runChaos
	}
	if err := run(*children, *msgs, *size); err != nil {
		if errors.Is(err, mpf.ErrNoSharedBackend) {
			log.Println("procdemo: no shared segment backend on this platform; nothing to demonstrate")
			return
		}
		log.Fatalf("procdemo: %v", err)
	}
}

func runChild() {
	cl, err := mpf.AttachProc()
	if err != nil {
		log.Fatalf("procdemo child: attach: %v", err)
	}
	if err := cl.Serve(); err != nil {
		log.Fatalf("procdemo child: %v", err)
	}
	served := cl.Served()
	if err := cl.Close(); err != nil {
		log.Fatalf("procdemo child: unmap: %v", err)
	}
	fmt.Printf("  child (slot %d, pid %d): %d payloads verified in place, detached cleanly\n",
		cl.Slot(), os.Getpid(), served)
}

func runParent(children, msgs, size int) error {
	srv, err := mpf.ServeProc(mpf.ServeConfig{
		Children: children,
		RingCap:  64,
		Options: []mpf.Option{
			mpf.WithBlockSize(128),
			mpf.WithBlocksPerProcess(512),
			// Pin each child to its own core (best-effort): the paper's
			// shape is one process per processor, and pinning keeps each
			// ring's futex words from migrating with the scheduler.
			mpf.WithAffinity(),
		},
	})
	if err != nil {
		return err
	}

	bin, err := os.Executable()
	if err != nil {
		return err
	}
	group, err := srv.Spawn(children, bin, nil, []string{"MPF_PROCDEMO_CHILD=1"})
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Printf("procdemo: %d children attached to one %d-byte memfd segment (%d msgs × %d B per child per phase)\n",
		children, srv.Segment().Size(), msgs, size)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, children)
	for slot := 0; slot < children; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			if n, err := srv.BridgeDown(slot, msgs, size); err != nil {
				errs[slot] = fmt.Errorf("slot %d down after %d: %w", slot, n, err)
				return
			}
			if n, err := srv.BridgeUp(slot, msgs, size); err != nil {
				errs[slot] = fmt.Errorf("slot %d up after %d: %w", slot, n, err)
				return
			}
			errs[slot] = srv.FinishSlot(slot)
		}(slot)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			group.Kill()
			srv.Close()
			return err
		}
	}
	if err := group.Wait(45 * time.Second); err != nil {
		srv.Close()
		return err
	}
	elapsed := time.Since(start)

	// Every slot must have been detached by its child's clean exit.
	for slot := 0; slot < children; slot++ {
		if s := srv.Table().SlotState(slot); s != core.SlotDetached {
			srv.Close()
			return fmt.Errorf("slot %d in state %d after child exit, want detached", slot, s)
		}
	}

	total := uint64(2 * children * msgs)
	st := srv.Facility().Stats()
	fmt.Printf("procdemo: %d cross-process round trips in %v (%.0f msgs/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("  ledger: loan sends %d, view receives %d, payload copies in/out %d/%d\n",
		st.LoanSends, st.ViewReceives, st.PayloadCopiesIn, st.PayloadCopiesOut)

	if st.PayloadCopiesIn != 0 || st.PayloadCopiesOut != 0 {
		srv.Close()
		return fmt.Errorf("copy ledger not clean: in=%d out=%d", st.PayloadCopiesIn, st.PayloadCopiesOut)
	}
	if st.LoanSends != total || st.ViewReceives != total {
		srv.Close()
		return fmt.Errorf("ledger counted loans=%d views=%d, want %d each", st.LoanSends, st.ViewReceives, total)
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("segment unmap: %w", err)
	}
	fmt.Println("  zero payload copies across the process boundary; segment unmapped cleanly")
	return nil
}

// runChaos is the crash drill: the first two children carry armed crash
// fault points and die mid-protocol; the supervisor reclaims and
// respawns them while the survivors keep their full workload moving.
func runChaos(children, msgs, size int) error {
	victims := 2
	if victims > children {
		victims = children
	}
	srv, err := mpf.ServeProc(mpf.ServeConfig{
		Children: children,
		RingCap:  64,
		Options: []mpf.Option{
			mpf.WithBlockSize(128),
			mpf.WithBlocksPerProcess(512),
			// Credit makes the drill prove the refund path too: a victim
			// dies holding debited blocks and the ledger must still drain
			// to zero.
			mpf.WithCredit(64),
		},
	})
	if err != nil {
		return err
	}
	arena := srv.Facility().Core().Arena()
	totalBlocks := arena.FreeBlocks()

	bin, err := os.Executable()
	if err != nil {
		return err
	}
	group, err := srv.SpawnEnv(children, bin, nil, func(i int) []string {
		env := []string{"MPF_PROCDEMO_CHILD=1"}
		if i < victims {
			// Victims die acknowledging their (1+3i)'th down-phase
			// payload: different depths, same drill.
			env = append(env, fmt.Sprintf("%s=child-ack:crash@%d", faultpoint.EnvVar, 1+3*i))
		}
		return env
	})
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Printf("procdemo -chaos: %d children, %d with armed crash points (%d msgs × %d B per child per phase)\n",
		children, victims, msgs, size)

	var deaths, respawns int
	var mu sync.Mutex
	sup := srv.Supervise(group, mpf.SuperviseConfig{
		Respawn:       2,
		Backoff:       2 * time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
		// Replacements attach in worker mode but without the fault spec:
		// re-arming the same crash point would kill them identically.
		RespawnEnv: func(int, int) []string { return []string{"MPF_PROCDEMO_CHILD=1"} },
		OnDeath: func(r mpf.ReclaimReport) {
			mu.Lock()
			deaths++
			mu.Unlock()
			fmt.Printf("  reclaimed slot %d gen %d (pid %d): %d in-flight views discarded, %d credits refunded, %v\n",
				r.Slot, r.Gen, r.Pid, r.Views, r.Credits, r.Elapsed.Round(time.Microsecond))
		},
		OnRespawn: func(slot, attempt int) {
			mu.Lock()
			respawns++
			mu.Unlock()
			fmt.Printf("  respawned slot %d (attempt %d)\n", slot, attempt)
		},
	})

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, children)
	for slot := 0; slot < children; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = chaosSlot(srv, slot, msgs, size)
		}(slot)
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			sup.Stop()
			group.Kill()
			srv.Close()
			return fmt.Errorf("slot %d: %w", slot, err)
		}
	}
	if err := group.Wait(45 * time.Second); err != nil {
		sup.Stop()
		srv.Close()
		return err
	}
	sup.Stop()
	elapsed := time.Since(start)

	// The robustness checks the drill exists for: every death reclaimed,
	// every slot reusable, ledger quiescent, zero leaked pins, and still
	// zero payload copies through all the carnage.
	if deaths != victims {
		srv.Close()
		return fmt.Errorf("%d deaths reclaimed, want %d", deaths, victims)
	}
	for slot := 0; slot < children; slot++ {
		if s := srv.Table().SlotState(slot); s != core.SlotDetached && s != core.SlotFree {
			srv.Close()
			return fmt.Errorf("slot %d in state %d after the drill, not reusable", slot, s)
		}
	}
	st := srv.Facility().Stats()
	if st.PeerDeaths != uint64(victims) {
		srv.Close()
		return fmt.Errorf("facility counted %d peer deaths, want %d", st.PeerDeaths, victims)
	}
	if st.CreditsHeld != 0 {
		srv.Close()
		return fmt.Errorf("credit ledger not quiescent: %d blocks held", st.CreditsHeld)
	}
	if free := arena.FreeBlocks(); free != totalBlocks {
		srv.Close()
		return fmt.Errorf("pin leak: %d of %d arena blocks free", free, totalBlocks)
	}
	if st.PayloadCopiesIn != 0 || st.PayloadCopiesOut != 0 {
		srv.Close()
		return fmt.Errorf("copy ledger not clean: in=%d out=%d", st.PayloadCopiesIn, st.PayloadCopiesOut)
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("segment unmap: %w", err)
	}
	fmt.Printf("procdemo -chaos: %d crashes reclaimed and respawned in a %v run; every slot reusable, ledger quiescent, zero leaks\n",
		deaths, elapsed.Round(time.Millisecond))
	return nil
}

// chaosSlot drives one slot's two phases, retrying when the peer dies:
// the supervisor reclaims and respawns, and the retry binds to the
// replacement incarnation.
func chaosSlot(srv *mpf.ProcServer, slot, msgs, size int) error {
	phase := func(name string, f func() error) error {
		var err error
		for attempt := 0; attempt < 6; attempt++ {
			if err = f(); err == nil || !errors.Is(err, mpf.ErrPeerDead) {
				break
			}
			time.Sleep(time.Duration(attempt+1) * 10 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return nil
	}
	if err := phase("down", func() error {
		_, err := srv.BridgeDown(slot, msgs, size)
		return err
	}); err != nil {
		return err
	}
	if err := phase("up", func() error {
		_, err := srv.BridgeUp(slot, msgs, size)
		return err
	}); err != nil {
		return err
	}
	return phase("finish", func() error { return srv.FinishSlot(slot) })
}
