// Procdemo: the paper's deployment shape made literal — one parent and
// N real forked OS processes exchanging messages through a single
// mmap'd memfd segment, with zero payload copies across the process
// boundary in either direction.
//
// The parent serves a full MPF facility whose block arena is carved
// out of a shared segment (mpf.ServeProc). It forks N children and
// hands each one the segment's file descriptor over an inherited unix
// socket, along with a versioned handshake describing the layout
// (offsets of the descriptor table and arena, block geometry, protocol
// generation). Each child maps the same physical pages at its own base
// address, claims a descriptor-table slot, and speaks to the parent
// only through two in-segment SPSC rings whose 16-byte records carry
// segment offsets; waiting on either side is a futex word inside the
// segment — no pipe, no socket, no copy on the payload path.
//
// Two phases per child, both zero-copy end to end:
//
//	down  the parent commits loans through a circuit, receives its
//	      own views back, and publishes each payload window to the
//	      child, which verifies the bytes in place and acknowledges;
//	up    the parent offers unfilled loan windows; the child writes
//	      the payload in place across the process boundary, and the
//	      parent commits and verifies through a receive view.
//
// The run exits nonzero unless: every round trip verified, the copy
// ledger shows zero payload copies (and every message on the
// loan/view planes), every child exited cleanly and detached its
// slot, and the final segment unmap returned no error. CI's
// cross-process smoke leg runs exactly this binary.
//
//	go run ./examples/procdemo [-children 4] [-msgs 1500] [-size 384]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/mpf"
)

func main() {
	if os.Getenv("MPF_PROCDEMO_CHILD") != "" {
		runChild()
		return
	}
	children := flag.Int("children", 4, "forked child processes, one table slot each")
	msgs := flag.Int("msgs", 1500, "messages per child per phase")
	size := flag.Int("size", 384, "payload bytes per message")
	flag.Parse()
	if err := runParent(*children, *msgs, *size); err != nil {
		if errors.Is(err, mpf.ErrNoSharedBackend) {
			log.Println("procdemo: no shared segment backend on this platform; nothing to demonstrate")
			return
		}
		log.Fatalf("procdemo: %v", err)
	}
}

func runChild() {
	cl, err := mpf.AttachProc()
	if err != nil {
		log.Fatalf("procdemo child: attach: %v", err)
	}
	if err := cl.Serve(); err != nil {
		log.Fatalf("procdemo child: %v", err)
	}
	served := cl.Served()
	if err := cl.Close(); err != nil {
		log.Fatalf("procdemo child: unmap: %v", err)
	}
	fmt.Printf("  child (slot %d, pid %d): %d payloads verified in place, detached cleanly\n",
		cl.Slot(), os.Getpid(), served)
}

func runParent(children, msgs, size int) error {
	srv, err := mpf.ServeProc(mpf.ServeConfig{
		Children: children,
		RingCap:  64,
		Options: []mpf.Option{
			mpf.WithBlockSize(128),
			mpf.WithBlocksPerProcess(512),
			// Pin each child to its own core (best-effort): the paper's
			// shape is one process per processor, and pinning keeps each
			// ring's futex words from migrating with the scheduler.
			mpf.WithAffinity(),
		},
	})
	if err != nil {
		return err
	}

	bin, err := os.Executable()
	if err != nil {
		return err
	}
	group, err := srv.Spawn(children, bin, nil, []string{"MPF_PROCDEMO_CHILD=1"})
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Printf("procdemo: %d children attached to one %d-byte memfd segment (%d msgs × %d B per child per phase)\n",
		children, srv.Segment().Size(), msgs, size)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, children)
	for slot := 0; slot < children; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			if n, err := srv.BridgeDown(slot, msgs, size); err != nil {
				errs[slot] = fmt.Errorf("slot %d down after %d: %w", slot, n, err)
				return
			}
			if n, err := srv.BridgeUp(slot, msgs, size); err != nil {
				errs[slot] = fmt.Errorf("slot %d up after %d: %w", slot, n, err)
				return
			}
			errs[slot] = srv.FinishSlot(slot)
		}(slot)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			group.Kill()
			srv.Close()
			return err
		}
	}
	if err := group.Wait(45 * time.Second); err != nil {
		srv.Close()
		return err
	}
	elapsed := time.Since(start)

	// Every slot must have been detached by its child's clean exit.
	for slot := 0; slot < children; slot++ {
		if s := srv.Table().SlotState(slot); s != core.SlotDetached {
			srv.Close()
			return fmt.Errorf("slot %d in state %d after child exit, want detached", slot, s)
		}
	}

	total := uint64(2 * children * msgs)
	st := srv.Facility().Stats()
	fmt.Printf("procdemo: %d cross-process round trips in %v (%.0f msgs/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("  ledger: loan sends %d, view receives %d, payload copies in/out %d/%d\n",
		st.LoanSends, st.ViewReceives, st.PayloadCopiesIn, st.PayloadCopiesOut)

	if st.PayloadCopiesIn != 0 || st.PayloadCopiesOut != 0 {
		srv.Close()
		return fmt.Errorf("copy ledger not clean: in=%d out=%d", st.PayloadCopiesIn, st.PayloadCopiesOut)
	}
	if st.LoanSends != total || st.ViewReceives != total {
		srv.Close()
		return fmt.Errorf("ledger counted loans=%d views=%d, want %d each", st.LoanSends, st.ViewReceives, total)
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("segment unmap: %w", err)
	}
	fmt.Println("  zero payload copies across the process boundary; segment unmapped cleanly")
	return nil
}
