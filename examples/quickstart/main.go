// Quickstart: the smallest complete MPF program.
//
// Two processes share one logical named virtual circuit, "greetings".
// Process 0 joins as a sender, process 1 as an FCFS receiver; the
// message crosses the facility's shared region exactly as in the paper's
// message_send / message_receive pair.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/mpf"
)

func main() {
	fac, err := mpf.New(mpf.WithMaxProcesses(2))
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Shutdown()

	err = fac.Run(2, func(p *mpf.Process) error {
		switch p.PID() {
		case 0: // sender
			s, err := p.OpenSend("greetings")
			if err != nil {
				return err
			}
			defer s.Close()
			// Wait for the receiver to join before sending: an LNVC
			// dies — discarding unread messages — when its last
			// connection closes, so a sender that fires and exits
			// before the receiver joins loses the message (the paper's
			// §3.2 lost-message caveat).
			ready, err := p.OpenReceive("ready", mpf.FCFS)
			if err != nil {
				return err
			}
			defer ready.Close()
			if _, err := ready.Receive(make([]byte, 1)); err != nil {
				return err
			}
			return s.Send([]byte("hello from process 0 via MPF"))
		default: // receiver
			r, err := p.OpenReceive("greetings", mpf.FCFS)
			if err != nil {
				return err
			}
			defer r.Close()
			ready, err := p.OpenSend("ready")
			if err != nil {
				return err
			}
			defer ready.Close()
			if err := ready.Send([]byte{1}); err != nil {
				return err
			}
			buf := make([]byte, 128)
			n, err := r.Receive(buf)
			if err != nil {
				return err
			}
			fmt.Printf("process 1 received %d bytes: %q\n", n, buf[:n])
			return nil
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	st := fac.Stats()
	fmt.Printf("facility stats: %d sends, %d receives, %d bytes moved\n",
		st.Sends, st.Receives, st.BytesRecvd)
}
