// Package repro reproduces McGuire, Malony and Reed, "MPF: A Portable
// Message Passing Facility for Shared Memory Multiprocessors" (ICPP
// 1987).
//
// The public API lives in repro/mpf. The substrates (shared-memory
// arena, spin locks, message blocks, process model, discrete-event
// Balance 21000 simulator) live under internal/, the paper's two
// applications under internal/apps, and the benchmark harness that
// regenerates every figure of the paper's evaluation under
// internal/bench and cmd/mpfbench. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package repro
