// Package repro reproduces McGuire, Malony and Reed, "MPF: A Portable
// Message Passing Facility for Shared Memory Multiprocessors" (ICPP
// 1987).
//
// The public API lives in repro/mpf. The substrates (shared-memory
// arena, spin locks, message blocks, process model, discrete-event
// Balance 21000 simulator) live under internal/, the paper's two
// applications under internal/apps, and the benchmark harness that
// regenerates every figure of the paper's evaluation under
// internal/bench and cmd/mpfbench.
//
// Beyond the paper, the facility shards its circuit name registry so
// opens and closes on distinct circuits never contend (DESIGN.md §4),
// offers batched send/receive primitives that pay the per-message
// fixed costs once per batch (DESIGN.md §6), multiplexes thousands of
// circuits per goroutine through an event-driven Selector with
// per-circuit wakeups (DESIGN.md §10), carries a zero-copy payload
// plane (DESIGN.md §11): contiguous-span block allocation, loaned send
// buffers written in place (SendConn.Loan) and pinned receive views
// read in place (RecvConn.ReceiveView), which make the paper's two
// structural copies optional — BROADCAST fan-out reads one shared
// payload instance instead of taking one copy per receiver — and
// batches that plane end to end (DESIGN.md §12): SendConn.LoanBatch
// allocates N send windows in one arena transaction and commits them
// under one circuit lock, while Selector.WaitViews harvests ready
// circuits into pinned views inside the wait round and ReleaseViews
// returns them in per-circuit transactions, so the per-message fixed
// costs are paid per batch — and bounds every circuit's arena share
// with per-circuit credit flow control (DESIGN.md §13): WithCredit(n)
// grants each circuit a receiver-side budget of n accounted blocks,
// debited by the send paths at allocation and re-granted as receivers
// release the blocks, so a hot tenant parks on its own budget instead
// of starving the facility — and tunes the hot path to its load and
// machine (DESIGN.md §16): WaitViews budget <= 0 selects an
// EWMA-adapted harvest budget under a fairness cap, WithAffinity pins
// Run goroutines to cores through internal/affinity (raw
// sched_setaffinity on Linux, best-effort everywhere), WithHugePages
// advises MADV_HUGEPAGE over the arena's 2 MiB-aligned interior, and
// the hot atomics are padded to cache lines with layout regression
// tests holding the offsets. mpfbench -contention, -select, -copies,
// -loanbatch, -credit and -tuning quantify these against the paper's
// single-lock, single-pulse, two-copy, per-message, globally-starved,
// fixed-budget layout, and mpfbench -json records the headline numbers as a
// machine-readable BENCH.json, which mpfbench -compare diffs across
// runs. CI (.github/workflows/ci.yml) gates build, vet, staticcheck,
// gofmt, the unit suite on two Go versions, a race-detector subset, a
// benchmark smoke, the perf-trajectory artifact, a perf-regression
// comparison against the previous run (seeded by BENCH_BASELINE.json)
// and a protocol-invariant fuzz smoke on every change.
//
// See README.md and DESIGN.md.
package repro
