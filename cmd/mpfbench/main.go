// Command mpfbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	mpfbench [-fig N] [-mode simulated|native|both] [-quick]
//	mpfbench -contention [-quick]
//	mpfbench -select [-quick]
//	mpfbench -copies [-xproc] [-quick]
//	mpfbench -loanbatch [-quick]
//	mpfbench -credit [-quick]
//	mpfbench -tuning [-quick]
//	mpfbench -crash [-quick]
//	mpfbench -json BENCH.json [-quick]
//	mpfbench -compare old.json new.json [-tolerance 0.25]
//	mpfbench -ablate schemes|blocksize|lockcost|paradigm [-quick]
//
// With no -fig it regenerates all six result figures (3-8). Simulated
// mode replays the MPF protocol on the Balance 21000 machine model and
// reports throughput and speedup at the paper's absolute scale; native
// mode runs the real implementation on the host.
//
// -contention runs the contention-scaling benchmark: open/close churn
// throughput versus worker count for the paper's single-lock registry
// against the sharded registry with batched sends, followed by the
// per-shard registry lock statistics of the largest sharded run.
//
// -select runs the selector-scaling benchmark: spurious wakeups per
// delivered message versus idle-circuit count for the Selector and the
// per-circuit-waiter ReceiveAny against the legacy global activity
// pulse (the thundering herd).
//
// -copies runs the copy ablation: delivered throughput across payload
// sizes and BROADCAST fan-out for the paper plane (classic chains, two
// structural copies), the span-allocated copy plane, and the zero-copy
// plane (loans in, views out). With -xproc it appends the same-machine
// cross-process leg: the zero-copy protocol driven through a shared
// memfd segment to real forked child processes (mpfbench re-execs
// itself as the workers), with the serving side's futex waiter
// counters per message alongside the throughput.
//
// -loanbatch runs the batched zero-copy ablation: delivered throughput
// and arena lock acquisitions per message versus batch size for the
// batched pipeline (LoanBatch/CommitAll + Selector.WaitViews) against
// the per-message loan/view plane.
//
// -credit runs the flow-control fairness ablation: cold-circuit p99
// Send latency and hot-circuit throughput versus the per-circuit
// credit budget (0 = flow control off, the paper's global-exhaustion
// behaviour) on an 8-circuit hot/cold mix.
//
// -tuning runs the self-tuning ablation: the adaptive harvest budget
// against the historical fixed greedy sweep on a bursty multi-circuit
// drain (throughput, rounds, worst-case starvation), the padded versus
// packed false-sharing microbench, pinned versus floating Run workers
// (skipped gracefully where thread pinning is refused), and the
// huge-page hint's throughput and MADV_HUGEPAGE outcome.
//
// -crash runs the crash-robustness ablation: K of 4 forked children
// carry armed crash fault points (MPF_FAULTPOINTS) and die mid-protocol
// at attach, claim, ack or fill; the respawn supervisor detects the
// deaths, reclaims their slots (drains dead-generation ring records,
// restores pinned views, refunds credit) and restarts them. The run
// fails unless every slot ends reusable, the credit ledger is quiescent
// and no arena block leaked; the table shows reclaim latency and the
// throughput the surviving children sustained.
//
// -json measures the machine-readable performance trajectory — the
// contention, selector, copies, loan-batch, credit, cross-process,
// self-tuning and crash headlines — and writes it to the given path
// (default BENCH.json); CI uploads the file as an artifact.
//
// -compare loads two BENCH.json files (previous/baseline, then fresh),
// prints a markdown delta table over every headline metric present in
// both, and exits 1 if any metric regressed beyond -tolerance
// (relative, default 0.25). With -ratios-only, raw throughput metrics
// are skipped and only the scale-invariant ratios and lock counts are
// held — the right mode when the baseline was measured on different
// hardware, such as the committed BENCH_BASELINE.json seed. The
// perf-regression CI job appends the table to $GITHUB_STEP_SUMMARY
// and inherits the exit code.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/stats"
	"repro/mpf"
)

// xprocChild runs the cross-process worker when the benchmark re-execs
// this binary: attach to the parent's segment over the inherited
// socket, serve the loan/view protocol, exit. Checked before flag
// parsing — a worker must never interpret the parent's flags.
func xprocChild() {
	cl, err := mpf.AttachProc()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpfbench worker: attach: %v\n", err)
		os.Exit(1)
	}
	if err := cl.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "mpfbench worker: %v\n", err)
		os.Exit(1)
	}
	if err := cl.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "mpfbench worker: unmap: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	if os.Getenv("MPFBENCH_XPROC_CHILD") != "" {
		xprocChild()
		return
	}
	// Any invocation may reach the cross-process leg (-json measures it,
	// -copies -xproc sweeps it): teach the bench package to re-exec this
	// binary in worker mode.
	if bin, err := os.Executable(); err == nil {
		bench.XProcSpawnSelf = func() (string, []string) {
			return bin, []string{"MPFBENCH_XPROC_CHILD=1"}
		}
	}
	figFlag := flag.String("fig", "all", "figure to regenerate: 3..8 or 'all'")
	modeFlag := flag.String("mode", "simulated", "substrate: simulated, native or both")
	quick := flag.Bool("quick", false, "smaller sweeps (≈10× faster, same shapes)")
	ablate := flag.String("ablate", "", "ablation study instead of figures: schemes, blocksize or lockcost")
	contention := flag.Bool("contention", false, "contention-scaling benchmark: sharded registry + batched sends vs the paper's single lock")
	sel := flag.Bool("select", false, "selector-scaling benchmark: per-circuit wakeups vs the global activity pulse")
	copies := flag.Bool("copies", false, "copy ablation: paper plane vs span copy plane vs zero-copy loan/view plane")
	xproc := flag.Bool("xproc", false, "with -copies, add the same-machine cross-process leg: zero-copy loan/view through a shared memfd segment to forked child processes")
	loanbatch := flag.Bool("loanbatch", false, "batched zero-copy ablation: LoanBatch/WaitViews pipeline vs the per-message loan/view plane")
	credit := flag.Bool("credit", false, "flow-control fairness ablation: cold-circuit latency and hot throughput vs per-circuit credit budget")
	tuning := flag.Bool("tuning", false, "self-tuning ablation: adaptive vs fixed harvest budgets, padded vs packed hot words, pinned vs floating workers, huge vs base pages")
	crash := flag.Bool("crash", false, "crash-robustness ablation: kill K of 4 children at armed fault points, reclaim their slots, measure survivor throughput and reclaim latency")
	jsonOut := flag.String("json", "", "measure the perf trajectory and write it as JSON to this path (use BENCH.json for the CI artifact)")
	compare := flag.Bool("compare", false, "compare two BENCH.json files (old new); exit 1 on regression beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.25, "relative loss a metric may take before -compare fails (0.25 = 25%)")
	ratiosOnly := flag.Bool("ratios-only", false, "with -compare, hold only scale-invariant ratios and lock counts (for baselines measured on different hardware)")
	flag.Parse()

	if *compare {
		// Accept trailing -tolerance / -ratios-only too (mpfbench
		// -compare old new -tolerance 0.3): flag.Parse stops at the
		// first positional.
		args := flag.Args()
		var paths []string
		for i := 0; i < len(args); i++ {
			if args[i] == "-ratios-only" || args[i] == "--ratios-only" {
				*ratiosOnly = true
				continue
			}
			if args[i] == "-tolerance" || args[i] == "--tolerance" {
				if i+1 >= len(args) {
					fmt.Fprintln(os.Stderr, "mpfbench: -tolerance needs a value")
					os.Exit(2)
				}
				v, err := strconv.ParseFloat(args[i+1], 64)
				if err != nil {
					fmt.Fprintf(os.Stderr, "mpfbench: bad -tolerance %q\n", args[i+1])
					os.Exit(2)
				}
				*tolerance = v
				i++
				continue
			}
			paths = append(paths, args[i])
		}
		if len(paths) != 2 {
			fmt.Fprintln(os.Stderr, "mpfbench: -compare needs exactly two paths: old.json new.json")
			os.Exit(2)
		}
		oldS, err := bench.ReadSummary(paths[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: compare: %v\n", err)
			os.Exit(1)
		}
		newS, err := bench.ReadSummary(paths[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: compare: %v\n", err)
			os.Exit(1)
		}
		rows, regressions, err := bench.Compare(oldS, newS, *tolerance, *ratiosOnly)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: compare: %v\n", err)
			os.Exit(1)
		}
		if *ratiosOnly {
			fmt.Println("(ratios-only: raw throughputs skipped — baseline measured on different hardware)")
			fmt.Println()
		}
		fmt.Print(bench.RenderCompare(rows, regressions, *tolerance))
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	if *jsonOut != "" {
		path := *jsonOut
		summary, err := bench.Summary(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: json: %v\n", err)
			os.Exit(1)
		}
		if err := summary.Write(path); err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (contention %.1fx, selector %.1fx, copies", path,
			summary.Contention.Advantage, summary.Selector.WakeupAdvantage)
		for _, p := range summary.Copies {
			fmt.Printf(" %.1fx@%dB/fan%d", p.Advantage, p.PayloadBytes, p.FanOut)
		}
		fmt.Printf(", loanbatch %.1fx throughput / %.1fx lock amortisation",
			summary.LoanBatch.Advantage, summary.LoanBatch.LockAmortisation)
		fmt.Printf(", credit %.1fx cold-p99 fairness", summary.Credit.FairnessAdvantage)
		if summary.XProc.Supported {
			fmt.Printf(", xproc %.0f msgs/s / %.1f polls+1/msg",
				summary.XProc.MsgsPerSec, summary.XProc.SpinPollsPerMsgPlus1)
		} else {
			fmt.Print(", xproc unsupported")
		}
		fmt.Printf(", tuning %.1fx round amortisation", summary.Tuning.RoundAmortisation)
		if summary.Crash.Supported {
			fmt.Printf(", crash %d/%d reclaimed @ %.0fµs max", summary.Crash.Deaths,
				summary.Crash.Victims, summary.Crash.ReclaimMaxMicros)
		} else {
			fmt.Print(", crash unsupported")
		}
		fmt.Println(")")
		return
	}

	if *copies {
		bySize, byFanout, err := bench.CopiesSweep(bench.Config{Mode: bench.Native, Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: copies: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bySize.Render())
		fmt.Println(byFanout.Render())
		if *xproc {
			table, err := bench.XProcSweep(*quick)
			if err != nil {
				if errors.Is(err, mpf.ErrNoSharedBackend) {
					fmt.Println("cross-process leg: no shared segment backend on this platform; skipped")
					return
				}
				fmt.Fprintf(os.Stderr, "mpfbench: xproc: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(table)
		}
		return
	}

	if *loanbatch {
		throughput, locks, err := bench.LoanBatchSweep(bench.Config{Mode: bench.Native, Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: loanbatch: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(throughput.Render())
		fmt.Println(locks.Render())
		return
	}

	if *credit {
		latency, hot, err := bench.CreditSweep(bench.Config{Mode: bench.Native, Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: credit: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(latency.Render())
		fmt.Println(hot.Render())
		return
	}

	if *tuning {
		report, err := bench.TuningReport(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: tuning: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(report)
		return
	}

	if *crash {
		table, err := bench.CrashSweep(*quick)
		if err != nil {
			if errors.Is(err, mpf.ErrNoSharedBackend) {
				fmt.Println("crash ablation: no shared segment backend on this platform; skipped")
				return
			}
			fmt.Fprintf(os.Stderr, "mpfbench: crash: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(table)
		return
	}

	if *sel {
		fig, err := bench.SelectorSweep(bench.Config{Mode: bench.Native, Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: select: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		return
	}

	if *contention {
		fig, registry, err := bench.ContentionSweep(bench.Config{Mode: bench.Native, Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: contention: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		fmt.Println(stats.RenderLockStats(
			fmt.Sprintf("Registry shard lock traffic (largest sharded run, batch=%d)", bench.ContentionBatch),
			registry))
		return
	}

	if *ablate != "" {
		cfg := bench.Config{Mode: bench.Simulated, Quick: *quick}
		var (
			fig *stats.Figure
			err error
		)
		switch strings.ToLower(*ablate) {
		case "schemes":
			fig = bench.AblationSchemes(cfg)
		case "blocksize":
			fig, err = bench.AblationBlockSize(cfg)
		case "lockcost":
			fig, err = bench.AblationLockCost(cfg)
		case "paradigm":
			fig, err = bench.AblationParadigm(cfg)
		default:
			fmt.Fprintf(os.Stderr, "mpfbench: unknown ablation %q\n", *ablate)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: ablation %s: %v\n", *ablate, err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		return
	}

	var modes []bench.Mode
	switch strings.ToLower(*modeFlag) {
	case "simulated", "sim":
		modes = []bench.Mode{bench.Simulated}
	case "native":
		modes = []bench.Mode{bench.Native}
	case "both":
		modes = []bench.Mode{bench.Simulated, bench.Native}
	default:
		fmt.Fprintf(os.Stderr, "mpfbench: unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	var figs []int
	if *figFlag == "all" {
		figs = []int{3, 4, 5, 6, 7, 8}
	} else {
		n, err := strconv.Atoi(*figFlag)
		if err != nil || n < 3 || n > 8 {
			fmt.Fprintf(os.Stderr, "mpfbench: -fig must be 3..8 or 'all', got %q\n", *figFlag)
			os.Exit(2)
		}
		figs = []int{n}
	}

	generators := map[int]func(bench.Config) (*stats.Figure, error){
		3: bench.Fig3, 4: bench.Fig4, 5: bench.Fig5,
		6: bench.Fig6, 7: bench.Fig7, 8: bench.Fig8,
	}

	for _, mode := range modes {
		for _, n := range figs {
			cfg := bench.Config{Mode: mode, Quick: *quick}
			fig, err := generators[n](cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpfbench: figure %d (%s): %v\n", n, mode, err)
				os.Exit(1)
			}
			fmt.Println(fig.Render())
		}
	}
}
