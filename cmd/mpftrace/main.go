// Command mpftrace runs a small MPF workload with per-primitive event
// tracing, printing one line per open_send / open_receive /
// message_send / message_receive / check_receive / close — the
// observability companion to cmd/mpfbench.
//
// Usage:
//
//	mpftrace [-workers 3] [-msgs 4] [-summary]
//
// The workload is a miniature of the paper's Figure 1: one sender, one
// FCFS worker pool and one broadcast listener sharing a circuit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/mpf"
)

func main() {
	workers := flag.Int("workers", 3, "FCFS pool size")
	msgs := flag.Int("msgs", 4, "messages to send")
	summary := flag.Bool("summary", false, "print per-primitive totals instead of the event stream")
	flag.Parse()
	if *workers < 1 || *msgs < 1 {
		log.Fatal("mpftrace: -workers and -msgs must be positive")
	}

	collector := trace.NewCollector(0)
	var tracer core.Tracer = collector
	if !*summary {
		tracer = trace.Multi(collector, trace.NewWriter(os.Stdout))
	}

	fac, err := mpf.New(
		mpf.WithMaxProcesses(*workers+2),
		mpf.WithTracer(tracer),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Shutdown()

	nProcs := *workers + 2
	err = fac.Run(nProcs, func(p *mpf.Process) error {
		switch {
		case p.PID() == 0: // sender
			ready, err := p.OpenReceive("ready", mpf.FCFS)
			if err != nil {
				return err
			}
			defer ready.Close()
			buf := make([]byte, 1)
			for i := 0; i < nProcs-1; i++ {
				if _, err := ready.Receive(buf); err != nil {
					return err
				}
			}
			s, err := p.OpenSend("floor")
			if err != nil {
				return err
			}
			defer s.Close()
			for i := 0; i < *msgs; i++ {
				if err := s.Send([]byte(fmt.Sprintf("item-%d", i))); err != nil {
					return err
				}
			}
			for w := 0; w < *workers; w++ {
				if err := s.Send([]byte{0xFF}); err != nil {
					return err
				}
			}
			return nil

		case p.PID() <= *workers: // FCFS pool
			r, err := p.OpenReceive("floor", mpf.FCFS)
			if err != nil {
				return err
			}
			defer r.Close()
			ready, err := p.OpenSend("ready")
			if err != nil {
				return err
			}
			defer ready.Close()
			if err := ready.Send([]byte{1}); err != nil {
				return err
			}
			buf := make([]byte, 32)
			for {
				n, err := r.Receive(buf)
				if err != nil {
					return err
				}
				if n == 1 && buf[0] == 0xFF {
					return nil
				}
			}

		default: // broadcast listener
			r, err := p.OpenReceive("floor", mpf.Broadcast)
			if err != nil {
				return err
			}
			defer r.Close()
			ready, err := p.OpenSend("ready")
			if err != nil {
				return err
			}
			defer ready.Close()
			if err := ready.Send([]byte{1}); err != nil {
				return err
			}
			buf := make([]byte, 32)
			for i := 0; i < *msgs+*workers; i++ {
				if _, err := r.Receive(buf); err != nil {
					return err
				}
			}
			return nil
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("traced %d events\n", collector.Len())
	byOp := collector.CountByOp()
	bytesBy := collector.BytesByOp()
	for op := core.OpOpenSend; op <= core.OpTryReceive; op++ {
		if byOp[op] == 0 {
			continue
		}
		if b := bytesBy[op]; b > 0 {
			fmt.Printf("  %-16s %5d calls  %6d bytes\n", op, byOp[op], b)
		} else {
			fmt.Printf("  %-16s %5d calls\n", op, byOp[op])
		}
	}
	if errs := collector.Errors(); len(errs) > 0 {
		fmt.Printf("  %d errored calls\n", len(errs))
	}
}
