// Package stats holds the small numerical toolkit the benchmark harness
// uses: throughput series keyed by a swept parameter, speedup tables, and
// fixed-width text rendering of the paper's figures.
//
// Every figure in the paper is either "throughput (bytes/sec) versus a
// swept integer parameter, one curve per message size" (Figures 3-6) or
// "speedup versus processes/dimension, one curve per problem size"
// (Figures 7-8). Series and Table model exactly those two shapes.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one measurement: X is the swept parameter (message length,
// process count, grid dimension), Y the measured value (bytes/sec or
// speedup).
type Point struct {
	X int
	Y float64
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x int, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Y returns the Y value at x, and whether it exists.
func (s *Series) Y(x int) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Max returns the largest Y in the series (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// ArgMax returns the X of the largest Y (0 for an empty series).
func (s *Series) ArgMax() int {
	m, arg := math.Inf(-1), 0
	for _, p := range s.Points {
		if p.Y > m {
			m, arg = p.Y, p.X
		}
	}
	return arg
}

// Monotone reports whether Y is non-decreasing in X (after sorting by X).
func (s *Series) Monotone() bool {
	pts := append([]Point(nil), s.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			return false
		}
	}
	return true
}

// Figure is a family of curves sharing axes — one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, attaches and returns a new labelled series.
func (f *Figure) AddSeries(label string) *Series {
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}

// Get returns the series with the given label, or nil.
func (f *Figure) Get(label string) *Series {
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	return nil
}

// xs returns the sorted union of X values across all series.
func (f *Figure) xs() []int {
	set := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			set[p.X] = true
		}
	}
	xs := make([]int, 0, len(set))
	for x := range set {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	return xs
}

// Render formats the figure as a fixed-width table: one row per X, one
// column per series — the same rows/series the paper plots.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%s (rows) vs %s (cells)\n", f.XLabel, f.YLabel)

	colw := 14
	fmt.Fprintf(&b, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%*s", colw, truncate(s.Label, colw-2))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 10+colw*len(f.Series)))
	for _, x := range f.xs() {
		fmt.Fprintf(&b, "%-10d", x)
		for _, s := range f.Series {
			if y, ok := s.Y(x); ok {
				fmt.Fprintf(&b, "%*s", colw, formatY(y))
			} else {
				fmt.Fprintf(&b, "%*s", colw, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatY(y float64) string {
	switch {
	case y == 0:
		return "0"
	case math.Abs(y) >= 100000:
		return fmt.Sprintf("%.0f", y)
	case math.Abs(y) >= 100:
		return fmt.Sprintf("%.1f", y)
	default:
		return fmt.Sprintf("%.3f", y)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// Speedup converts a series of execution times into a speedup series
// relative to the time at baseX: speedup(x) = T(baseX)/T(x) * scale.
// The paper's Figure 8 uses baseX = 2 (the 4-process solver) with
// scale 1; Figure 7 uses a separately measured sequential time, handled
// by SpeedupVs.
func Speedup(times *Series, baseX int, scale float64) (*Series, error) {
	base, ok := times.Y(baseX)
	if !ok || base <= 0 {
		return nil, fmt.Errorf("stats: no positive baseline at x=%d", baseX)
	}
	out := &Series{Label: times.Label}
	for _, p := range times.Points {
		if p.Y <= 0 {
			return nil, fmt.Errorf("stats: non-positive time %g at x=%d", p.Y, p.X)
		}
		out.Add(p.X, base/p.Y*scale)
	}
	return out, nil
}

// SpeedupVs converts execution times into speedups against a fixed
// sequential time.
func SpeedupVs(times *Series, seqTime float64) (*Series, error) {
	if seqTime <= 0 {
		return nil, fmt.Errorf("stats: non-positive sequential time %g", seqTime)
	}
	out := &Series{Label: times.Label}
	for _, p := range times.Points {
		if p.Y <= 0 {
			return nil, fmt.Errorf("stats: non-positive time %g at x=%d", p.Y, p.X)
		}
		out.Add(p.X, seqTime/p.Y)
	}
	return out, nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Throughput converts (bytes, seconds) to bytes/sec, guarding zero time.
func Throughput(bytes int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds
}
