package stats

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Per-shard contention accounting for sharded data structures (the LNVC
// registry in internal/core). The counters live here, next to the rest
// of the measurement toolkit, so the benchmark harness and mpfbench can
// render them alongside throughput figures.

// LockStat is a snapshot of one shard's lock traffic.
type LockStat struct {
	// Acquisitions counts successful lock acquisitions (read and write).
	Acquisitions uint64
	// Contended counts acquisitions whose first attempt found the lock
	// held, i.e. the acquirer had to spin.
	Contended uint64
}

// ContentionRate returns the fraction of acquisitions that contended
// (0 for an idle shard).
func (s LockStat) ContentionRate() float64 {
	if s.Acquisitions == 0 {
		return 0
	}
	return float64(s.Contended) / float64(s.Acquisitions)
}

// cacheLine pads contention cells so that adjacent shards' counters do
// not share a cache line — otherwise the counters themselves would
// recreate the very contention they are measuring.
const cacheLine = 64

type contentionCell struct {
	acquisitions atomic.Uint64
	contended    atomic.Uint64
	_            [cacheLine - 16]byte
}

// Contention is a fixed-size set of per-shard lock counters, safe for
// concurrent use.
type Contention struct {
	cells []contentionCell
}

// NewContention creates counters for n shards (n >= 1).
func NewContention(n int) *Contention {
	if n < 1 {
		n = 1
	}
	return &Contention{cells: make([]contentionCell, n)}
}

// Shards returns the number of shards tracked.
func (c *Contention) Shards() int { return len(c.cells) }

// Record notes one lock acquisition on shard i, contended or not.
func (c *Contention) Record(i int, contended bool) {
	cell := &c.cells[i]
	cell.acquisitions.Add(1)
	if contended {
		cell.contended.Add(1)
	}
}

// Snapshot returns the current per-shard counters.
func (c *Contention) Snapshot() []LockStat {
	out := make([]LockStat, len(c.cells))
	for i := range c.cells {
		out[i] = LockStat{
			Acquisitions: c.cells[i].acquisitions.Load(),
			Contended:    c.cells[i].contended.Load(),
		}
	}
	return out
}

// Total sums the per-shard counters.
func (c *Contention) Total() LockStat {
	var t LockStat
	for i := range c.cells {
		t.Acquisitions += c.cells[i].acquisitions.Load()
		t.Contended += c.cells[i].contended.Load()
	}
	return t
}

// RenderLockStats formats per-shard lock statistics as a fixed-width
// table, one row per shard plus a totals row, in the same style as
// Figure.Render.
func RenderLockStats(title string, stats []LockStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s%14s%14s%12s\n", "shard", "acquisitions", "contended", "rate")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 8+14+14+12))
	var total LockStat
	for i, s := range stats {
		total.Acquisitions += s.Acquisitions
		total.Contended += s.Contended
		fmt.Fprintf(&b, "%-8d%14d%14d%12.4f\n", i, s.Acquisitions, s.Contended, s.ContentionRate())
	}
	fmt.Fprintf(&b, "%-8s%14d%14d%12.4f\n", "total", total.Acquisitions, total.Contended, total.ContentionRate())
	return b.String()
}
