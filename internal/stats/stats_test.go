package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 30)
	s.Add(4, 20)
	if y, ok := s.Y(2); !ok || y != 30 {
		t.Fatalf("Y(2) = %v,%v", y, ok)
	}
	if _, ok := s.Y(3); ok {
		t.Fatal("Y(3) exists")
	}
	if s.Max() != 30 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.ArgMax() != 2 {
		t.Fatalf("ArgMax = %v", s.ArgMax())
	}
	if s.Monotone() {
		t.Fatal("non-monotone series reported monotone")
	}
	var m Series
	m.Add(4, 3)
	m.Add(1, 1)
	m.Add(2, 2) // out of order on X; Monotone must sort
	if !m.Monotone() {
		t.Fatal("monotone series reported non-monotone")
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.ArgMax() != 0 {
		t.Fatal("empty series extremes wrong")
	}
	if !s.Monotone() {
		t.Fatal("empty series not monotone")
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("Figure 3: Base Benchmark", "Length", "bytes/sec")
	s1 := f.AddSeries("16 byte")
	s1.Add(16, 1000)
	s1.Add(128, 8000)
	s2 := f.AddSeries("128 byte")
	s2.Add(128, 9000)
	out := f.Render()
	for _, want := range []string{"Figure 3", "16 byte", "128 byte", "1000", "9000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Missing cell rendered as "-": s2 has no point at x=16.
	lines := strings.Split(out, "\n")
	var row16 string
	for _, l := range lines {
		if strings.HasPrefix(l, "16 ") {
			row16 = l
		}
	}
	if !strings.Contains(row16, "-") {
		t.Errorf("missing cell not rendered as dash: %q", row16)
	}
	if f.Get("16 byte") != s1 || f.Get("none") != nil {
		t.Fatal("Get wrong")
	}
}

func TestSpeedup(t *testing.T) {
	times := &Series{Label: "t"}
	times.Add(2, 100) // baseline: 4 processes = N of 2
	times.Add(3, 60)
	times.Add(4, 50)
	sp, err := Speedup(times, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y, _ := sp.Y(2); y != 1 {
		t.Fatalf("baseline speedup = %v, want 1", y)
	}
	if y, _ := sp.Y(4); y != 2 {
		t.Fatalf("speedup(4) = %v, want 2", y)
	}
	if _, err := Speedup(times, 9, 1); err == nil {
		t.Fatal("missing baseline accepted")
	}
	bad := &Series{}
	bad.Add(1, 0)
	if _, err := Speedup(bad, 1, 1); err == nil {
		t.Fatal("zero baseline accepted")
	}
}

func TestSpeedupVs(t *testing.T) {
	times := &Series{}
	times.Add(1, 100)
	times.Add(4, 25)
	sp, err := SpeedupVs(times, 100)
	if err != nil {
		t.Fatal(err)
	}
	if y, _ := sp.Y(4); y != 4 {
		t.Fatalf("speedup = %v, want 4", y)
	}
	if _, err := SpeedupVs(times, 0); err == nil {
		t.Fatal("zero seq time accepted")
	}
	neg := &Series{}
	neg.Add(1, -5)
	if _, err := SpeedupVs(neg, 10); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty input")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, 2); got != 500 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Fatal("zero time must yield 0")
	}
}

// Property: median lies between min and max; mean as well.
func TestQuickMeanMedianBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Reject values whose sum could overflow; Mean makes no
			// promises under float64 overflow.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		m, med := Mean(xs), Median(xs)
		const eps = 1e-9
		return m >= lo-eps-math.Abs(lo) && m <= hi+eps+math.Abs(hi) && med >= lo && med <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Speedup of the baseline point is always scale.
func TestQuickSpeedupBaseline(t *testing.T) {
	f := func(ys []float64, scaleRaw uint8) bool {
		scale := float64(scaleRaw%10) + 0.5
		s := &Series{}
		for i, y := range ys {
			s.Add(i, math.Abs(y)+1) // positive times
		}
		if len(s.Points) == 0 {
			return true
		}
		sp, err := Speedup(s, 0, scale)
		if err != nil {
			return false
		}
		y, ok := sp.Y(0)
		return ok && math.Abs(y-scale) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
