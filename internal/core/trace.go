package core

// Op identifies an MPF primitive in a trace event.
type Op uint8

// Trace operation codes, one per user-visible primitive.
const (
	OpOpenSend Op = iota
	OpOpenReceive
	OpCloseSend
	OpCloseReceive
	OpSend
	OpReceive
	OpCheckReceive
	OpTryReceive
	OpSendBatch
	OpReceiveBatch
	OpSendLoan
	OpLoanCommit
	OpReceiveView
	OpTryReceiveView
	OpLoanBatch
	OpLoanBatchCommit
	OpHarvestViews
	// OpCreditStall records a send-side park for circuit credit: the
	// budget could not cover the message and the sender waited for a
	// receiver-side grant. Bytes carries the parked demand in region
	// bytes (accounted blocks times the block size).
	OpCreditStall
	// OpPeerReclaim records one dead-peer reclamation: a segment peer
	// died and the serving facility tore down its bridge, restored its
	// pinned views, refunded its credit and freed its table slot. PID
	// carries the dead peer's slot-local pid; Bytes the reclaimed
	// resource count (views plus credit blocks).
	OpPeerReclaim
)

var opNames = [...]string{
	OpOpenSend:        "open_send",
	OpOpenReceive:     "open_receive",
	OpCloseSend:       "close_send",
	OpCloseReceive:    "close_receive",
	OpSend:            "message_send",
	OpReceive:         "message_receive",
	OpCheckReceive:    "check_receive",
	OpTryReceive:      "try_receive",
	OpSendBatch:       "message_send_batch",
	OpReceiveBatch:    "message_receive_batch",
	OpSendLoan:        "loan_acquire",
	OpLoanCommit:      "message_send_loan",
	OpReceiveView:     "message_receive_view",
	OpTryReceiveView:  "try_receive_view",
	OpLoanBatch:       "loan_batch_acquire",
	OpLoanBatchCommit: "message_send_loan_batch",
	OpHarvestViews:    "harvest_views",
	OpCreditStall:     "credit_stall",
	OpPeerReclaim:     "peer_reclaim",
}

// String returns the paper's name for the primitive.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Event is one traced primitive invocation.
type Event struct {
	Op    Op
	PID   int
	LNVC  ID
	Name  string // LNVC name (open operations only)
	Bytes int    // payload bytes (send/receive only)
	Err   error  // nil on success
}

// Tracer receives events from an instrumented facility. Implementations
// must be safe for concurrent use; Trace is called with no facility locks
// held beyond the caller's own.
type Tracer interface {
	Trace(Event)
}

func (f *Facility) trace(ev Event) {
	if f.cfg.Tracer != nil {
		f.cfg.Tracer.Trace(ev)
	}
}
