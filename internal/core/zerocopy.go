package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/msg"
)

// The zero-copy payload plane. The paper's data structure forces two
// copies per message — message_send copies the user buffer into linked
// blocks, message_receive copies the blocks into the user buffer — and
// its conclusion (§5) argues for restricting generality to buy speed.
// This file makes both copies optional rather than structural:
//
//   - SendLoan allocates a message's blocks up front and hands the
//     caller a writable window (Loan). The caller produces the payload
//     in place and Commit links the finished message into the FIFO —
//     zero send-side copies. Abort returns the chain unsent.
//   - ReceiveView/TryReceiveView claim a message exactly like
//     Receive/TryReceive but hand back a pinned read window (View)
//     instead of copying. N BROADCAST receivers read the one shared
//     payload instance; Release drops the pin.
//
// Both lean on the pin lifecycle in lnvc.go: a claimed-and-pinned
// message is never recycled, and a circuit deleted under a held View
// orphans the message to its pin holders, so views stay valid across
// CloseReceive and Shutdown until released.

// ErrLoanDone is returned by Loan.Commit after the loan was already
// committed or aborted.
var ErrLoanDone = errors.New("mpf: loan already committed or aborted")

// Loan is an in-flight zero-copy send: a message whose blocks are
// allocated and owned by the caller, not yet linked into any FIFO.
// Write the payload through View/Bytes, then Commit (or Abort). A Loan
// is owned by one process and is not safe for concurrent use, matching
// the paper's single-thread-of-control process model.
type Loan struct {
	f   *Facility
	l   *lnvc
	id  ID
	pid int
	m   *msg.Message
	// n is the payload length, copied out of the header at allocation:
	// after Commit the header belongs to the facility (a receiver may
	// consume and recycle it concurrently), so the loan must never read
	// m again once done is set.
	n    int
	done bool
	// The loan's credit debit, refunded if the message never reaches a
	// FIFO (abort, lost circuit, shutdown). creditGen pins the refund
	// to the descriptor incarnation that was debited.
	creditGen    uint64
	creditBlocks int
}

// SendLoan allocates blocks for n payload bytes on the LNVC and returns
// a Loan for the caller to fill in place. Allocation follows the
// facility's SendPolicy exactly as Send does (BlockUntilFree blocks
// until the region can serve the demand; FailFast returns ErrNoMemory).
func (f *Facility) SendLoan(pid int, id ID, n int) (*Loan, error) {
	ln, err := f.sendLoan(pid, id, n)
	f.trace(Event{Op: OpSendLoan, PID: pid, LNVC: id, Bytes: n, Err: err})
	return ln, err
}

func (f *Facility) sendLoan(pid int, id ID, n int) (*Loan, error) {
	if err := f.checkPID(pid); err != nil {
		return nil, err
	}
	if f.stopped.Load() {
		return nil, ErrShutdown
	}
	if n < 0 {
		return nil, fmt.Errorf("mpf: SendLoan of %d bytes", n)
	}
	if f.arena.BlocksFor(n) > f.arena.NumBlocks() {
		return nil, fmt.Errorf("%w: %d bytes, region holds %d", ErrMessageTooBig, n, f.arena.NumBlocks()*f.arena.PayloadSize())
	}
	l, err := f.lookup(id)
	if err != nil {
		return nil, err
	}
	// Fail fast before the (possibly blocking) allocation; Commit
	// re-validates under the lock, exactly as send does around its copy.
	// With credit configured the check rides along with the debit.
	var creditGen uint64
	creditBlocks := 0
	if f.cfg.CreditBlocks > 0 {
		creditBlocks = f.arena.BlocksFor(n)
		var err error
		if creditGen, err = f.acquireCredit(l, id, pid, creditBlocks); err != nil {
			return nil, err
		}
	} else {
		l.lock.Lock()
		if f.slots[id].Load() != l || l.sends[pid] == nil {
			l.lock.Unlock()
			return nil, fmt.Errorf("%w: send on id %d by process %d", ErrNotConnected, id, pid)
		}
		l.lock.Unlock()
	}

	m, buildErr := f.pool.BuildLoan(pid, n, f.cfg.SendPolicy == BlockUntilFree, f.stop)
	if buildErr != nil {
		f.refundCredit(l, creditGen, creditBlocks)
		if f.stopped.Load() {
			return nil, ErrShutdown
		}
		return nil, fmt.Errorf("%w: %v", ErrNoMemory, buildErr)
	}
	return &Loan{f: f, l: l, id: id, pid: pid, m: m, n: n,
		creditGen: creditGen, creditBlocks: creditBlocks}, nil
}

// Len returns the loan's payload capacity in bytes.
func (ln *Loan) Len() int { return ln.n }

// View returns the writable window onto the loaned blocks. Valid until
// Commit or Abort.
func (ln *Loan) View() msg.View { return ln.f.pool.View(ln.m) }

// Bytes returns the whole loan as one writable slice when the payload
// occupies a single segment — the common case under span allocation —
// and (nil, false) when fragmentation split it (write through
// Segments or CopyFrom instead).
func (ln *Loan) Bytes() ([]byte, bool) { return ln.View().Contiguous() }

// Segments calls yield for each writable payload segment in order;
// returning false stops the walk.
func (ln *Loan) Segments(yield func(seg []byte) bool) { ln.View().Segments(yield) }

// CopyFrom fills the loan from buf, counted as a send-side copy in
// Stats — the explicit escape hatch back to the copying plane's
// accounting. Callers treating the fill as production (the bytes enter
// the region exactly once; mpf.Writer, TypedSender and
// LoanBatch.Fill) write through View().CopyFrom instead, which the
// ledger does not count. It returns the number of bytes copied.
func (ln *Loan) CopyFrom(buf []byte) int {
	n := ln.View().CopyFrom(buf)
	ln.f.stats.payloadCopiesIn.Add(1)
	return n
}

// Commit links the loaned message into the circuit's FIFO — the
// message_send without its copy. After Commit the loan is spent and the
// blocks belong to the facility. Committing a loan that was already
// committed or aborted returns ErrLoanDone; if the circuit died while
// the loan was out, the blocks are returned and ErrNotConnected comes
// back.
func (ln *Loan) Commit() error {
	err := ln.commit()
	ln.f.trace(Event{Op: OpLoanCommit, PID: ln.pid, LNVC: ln.id, Bytes: ln.n, Err: err})
	return err
}

func (ln *Loan) commit() error {
	if ln.done {
		return ErrLoanDone
	}
	f, l := ln.f, ln.l
	if f.stopped.Load() {
		ln.done = true
		f.pool.Release(ln.m)
		f.refundCredit(l, ln.creditGen, ln.creditBlocks)
		return ErrShutdown
	}
	l.lock.Lock()
	// Re-validate both the connection and the ID binding: the circuit
	// may have been deleted — and its descriptor recycled for another
	// name — while the caller held the loan.
	if f.slots[ln.id].Load() != l || l.sends[ln.pid] == nil {
		l.lock.Unlock()
		ln.done = true
		f.pool.Release(ln.m)
		f.refundCredit(l, ln.creditGen, ln.creditBlocks)
		return fmt.Errorf("%w: send on id %d by process %d", ErrNotConnected, ln.id, ln.pid)
	}
	ln.m.Pending = l.nBcast
	ln.m.FCFSNeeded = true
	l.queue.Enqueue(ln.m)
	l.cond.Broadcast()
	l.wakeWaitersLocked()
	l.lock.Unlock()
	if f.cfg.GlobalPulseMux {
		f.pulseActivity()
	}
	ln.done = true

	f.stats.sends.Add(1)
	f.stats.bytesSent.Add(uint64(ln.n))
	f.stats.loanSends.Add(1)
	return nil
}

// Abort returns the loaned blocks to the region unsent. Aborting a loan
// that was already committed or aborted is a no-op, so Abort can be
// deferred as cleanup on every error path.
func (ln *Loan) Abort() {
	if ln.done {
		return
	}
	ln.done = true
	ln.f.pool.Release(ln.m)
	ln.f.refundCredit(ln.l, ln.creditGen, ln.creditBlocks)
}

// View is a pinned zero-copy window onto a received message's payload,
// the counterpart of Receive's copy. The claim semantics are exactly
// Receive's — an FCFS claim is exclusive, a BROADCAST claim advances the
// private head — but the payload stays in the shared region and every
// BROADCAST receiver's View aliases the same blocks. The pin taken at
// claim keeps those blocks alive until Release, across any concurrent
// receive, reclaim, CloseReceive, or Shutdown. A View belongs to one
// process and is not safe for concurrent use.
type View struct {
	f        *Facility
	l        *lnvc
	m        *msg.Message
	id       ID // circuit the view was claimed from, for multiplexers
	released bool
}

// ReceiveView blocks until a message is available for pid's connection
// and claims it as a pinned View — message_receive without its copy.
// The caller must Release the view once done reading.
func (f *Facility) ReceiveView(pid int, id ID) (*View, error) {
	v, err := f.receiveView(pid, id, nil)
	f.trace(Event{Op: OpReceiveView, PID: pid, LNVC: id, Bytes: viewBytes(v), Err: err})
	return v, err
}

// ReceiveViewDeadline is ReceiveView with a bound on the wait; if no
// message becomes available within d it returns ErrTimeout.
func (f *Facility) ReceiveViewDeadline(pid int, id ID, d time.Duration) (*View, error) {
	if d <= 0 {
		return nil, fmt.Errorf("%w: non-positive deadline %v", ErrTimeout, d)
	}
	deadline := time.Now().Add(d)
	v, err := f.receiveView(pid, id, &deadline)
	f.trace(Event{Op: OpReceiveView, PID: pid, LNVC: id, Bytes: viewBytes(v), Err: err})
	return v, err
}

func (f *Facility) receiveView(pid int, id ID, deadline *time.Time) (*View, error) {
	l, m, err := f.waitClaim(pid, id, deadline)
	if err != nil {
		return nil, err
	}
	f.stats.receives.Add(1)
	f.stats.bytesRecvd.Add(uint64(m.Length))
	f.stats.viewReceives.Add(1)
	return &View{f: f, l: l, m: m, id: id}, nil
}

// TryReceiveView is ReceiveView's non-blocking form: if a message is
// available it is claimed as a pinned View and (v, true) is returned;
// otherwise (nil, false).
func (f *Facility) TryReceiveView(pid int, id ID) (*View, bool, error) {
	l, m, ok, err := f.tryClaim(pid, id)
	ev := Event{Op: OpTryReceiveView, PID: pid, LNVC: id, Err: err}
	if err != nil || !ok {
		f.trace(ev)
		return nil, false, err
	}
	f.stats.receives.Add(1)
	f.stats.bytesRecvd.Add(uint64(m.Length))
	f.stats.viewReceives.Add(1)
	ev.Bytes = m.Length
	f.trace(ev)
	return &View{f: f, l: l, m: m, id: id}, true, nil
}

func viewBytes(v *View) int {
	if v == nil {
		return 0
	}
	return v.m.Length
}

// Len returns the payload length in bytes.
func (v *View) Len() int { return v.m.Length }

// Sender returns the process id that sent the message.
func (v *View) Sender() int { return v.m.Sender }

// Circuit returns the id of the circuit the view was claimed from —
// how an event loop draining several circuits through
// Selector.HarvestViews attributes each view without a side table.
func (v *View) Circuit() ID { return v.id }

// Bytes returns the whole payload as one read-only slice when it
// occupies a single segment — the common case under span allocation —
// and (nil, false) when fragmentation split it (walk Segments or
// CopyTo instead). The slice aliases the shared region and is valid
// only until Release.
func (v *View) Bytes() ([]byte, bool) {
	if v.released {
		return nil, false
	}
	return v.f.pool.View(v.m).Contiguous()
}

// Segments calls yield for each payload segment in order; returning
// false stops the walk. Segments alias the shared region and are valid
// only until Release. A released view yields nothing.
func (v *View) Segments(yield func(seg []byte) bool) {
	if v.released {
		return
	}
	v.f.pool.View(v.m).Segments(yield)
}

// CopyTo copies the payload into buf — the escape hatch back to the
// copying plane, counted as a receive-side copy in Stats. It returns
// the number of bytes copied, 0 on a released view.
func (v *View) CopyTo(buf []byte) int {
	if v.released {
		return 0
	}
	n := v.f.pool.View(v.m).CopyTo(buf)
	v.f.stats.payloadCopiesOut.Add(1)
	return n
}

// Release drops the view's pin, allowing the message's blocks to be
// recycled once every other claim on them is gone. Release is
// idempotent: a second call is a no-op. Holding a View across
// CloseReceive or Shutdown is safe — the blocks stay alive until this
// call — but a region running near capacity wants views short-lived,
// since a pinned message holds its blocks however far the FIFO has
// moved on.
func (v *View) Release() {
	if v.released {
		return
	}
	v.released = true
	v.f.unpin(v.l, v.m)
}

// ReleaseViews releases every view in vs under batched unpinning: one
// circuit lock acquisition, one reclaim scan and one arena free-pool
// transaction per consecutive run of views from the same circuit —
// which is how HarvestViews orders its results, so releasing a harvest
// costs O(ready circuits) lock traffic, not O(views). Already-released
// views are skipped (Release's idempotence, batch form); nil entries
// are tolerated.
func ReleaseViews(vs []*View) {
	var run []*msg.Message // reused batch for the current circuit run
	var l *lnvc
	var f *Facility
	flush := func() {
		if len(run) > 0 {
			f.unpinAll(l, run)
			run = run[:0]
		}
	}
	for _, v := range vs {
		if v == nil || v.released {
			continue
		}
		v.released = true
		if v.l != l {
			flush()
			l, f = v.l, v.f
		}
		run = append(run, v.m)
	}
	flush()
}
