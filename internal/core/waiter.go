package core

import "time"

// Per-circuit readiness notification. Every LNVC descriptor keeps a
// list of parked multiplexer registrations; the enqueue and close paths
// wake exactly the waiters registered on that circuit — O(waiters on
// this circuit) work, not O(waiters in the facility). This is the
// epoll-style structure ReceiveAny and Selector park on. The
// facility-wide activity pulse it replaces survives only as an ablation
// baseline (Config.GlobalPulseMux; see any.go) and, in spirit, in the
// arena's block-pool wait, where the condition really is global: any
// freed block serves any waiter, so a per-resource list would buy
// nothing there.

// muxWaiter is one parked multiplexer registration on an LNVC waiter
// list. Exactly one of ch/sel is set: ch is a one-shot park
// (ReceiveAny) — capacity 1, so a fire landing during the poll phase is
// retained and the next park returns immediately; sel is a persistent
// Selector registration.
type muxWaiter struct {
	ch  chan struct{}
	sel *Selector
}

// fire delivers the readiness signal for circuit id to the waiter.
// Called under the LNVC lock; it never blocks (the channel send is
// non-blocking and markReady takes only the selector's leaf lock).
func (w *muxWaiter) fire(id ID) {
	if w.sel != nil {
		w.sel.markReady(id)
		return
	}
	select {
	case w.ch <- struct{}{}:
	default:
	}
}

// wakeWaitersLocked fires every registration parked on l. Called under
// l.lock after any event that can change readiness for a multiplexer:
// message enqueue, connection close, circuit deletion.
func (l *lnvc) wakeWaitersLocked() {
	for _, w := range l.waiters {
		w.fire(l.id)
	}
}

func (l *lnvc) addWaiterLocked(w *muxWaiter) { l.waiters = append(l.waiters, w) }

// removeWaiterLocked removes one registration of w from l's list. A w
// that is not on the list (the descriptor was deleted and its list
// cleared by reset before the owner unregistered) is a no-op.
func (l *lnvc) removeWaiterLocked(w *muxWaiter) {
	for i, x := range l.waiters {
		if x == w {
			last := len(l.waiters) - 1
			l.waiters[i] = l.waiters[last]
			l.waiters[last] = nil
			l.waiters = l.waiters[:last]
			return
		}
	}
}

// parkWait is the shared park: it blocks until wake fires (true, nil),
// stop aborts (ErrShutdown), or the optional deadline passes
// (ErrTimeout). ReceiveAny, its global-pulse baseline, and
// Selector.Wait all sleep here.
func parkWait(wake <-chan struct{}, stop <-chan struct{}, deadline *time.Time) (bool, error) {
	if deadline == nil {
		select {
		case <-wake:
			return true, nil
		case <-stop:
			return false, ErrShutdown
		}
	}
	wait := time.Until(*deadline)
	if wait <= 0 {
		return false, ErrTimeout
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-wake:
		return true, nil
	case <-stop:
		return false, ErrShutdown
	case <-timer.C:
		return false, ErrTimeout
	}
}
