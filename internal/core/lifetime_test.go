package core

import (
	"errors"
	"testing"
)

// Tests of LNVC lifetime, message retention and the close_receive
// reclamation rules (paper §3.2 and DESIGN.md §5).

func TestLNVCDeletedOnLastClose(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "life")
	rid, _ := f.OpenReceive(1, "life", FCFS)
	f.Send(0, sid, []byte("unread"))

	if err := f.CloseSend(0, sid); err != nil {
		t.Fatal(err)
	}
	// One connection remains: LNVC lives.
	if _, ok := f.LNVCByName("life"); !ok {
		t.Fatal("LNVC deleted while a receiver is connected")
	}
	if err := f.CloseReceive(1, rid); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.LNVCByName("life"); ok {
		t.Fatal("LNVC survives with zero connections")
	}
	// Unread message discarded, blocks recycled.
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("unread message leaked: %d free of %d", free, total)
	}
	if st := f.Stats(); st.MessagesDropped != 1 {
		t.Fatalf("MessagesDropped = %d, want 1", st.MessagesDropped)
	}
	// Operations on the stale id fail.
	if err := f.Send(0, sid, nil); !errors.Is(err, ErrBadLNVC) {
		t.Fatalf("send on deleted LNVC: %v", err)
	}
}

func TestNameReuseAfterDeletionIsFreshCircuit(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "re")
	f.Send(0, sid, []byte("old"))
	f.CloseSend(0, sid)

	// Recreating the name yields an empty circuit: the old message died
	// with the old circuit (this is the paper's "messages could be
	// lost" scenario).
	sid2, _ := f.OpenSend(0, "re")
	rid, _ := f.OpenReceive(1, "re", FCFS)
	if ok, _ := f.CheckReceive(1, rid); ok {
		t.Fatal("message survived LNVC deletion")
	}
	_ = sid2
}

func TestRetainedBacklogForLateFCFSReceiver(t *testing.T) {
	// Sender opens, sends, and a receiver joins later while the sender
	// is still connected: messages must be delivered.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "late")
	for i := 0; i < 5; i++ {
		f.Send(0, sid, []byte{byte(i)})
	}
	rid, _ := f.OpenReceive(1, "late", FCFS)
	buf := make([]byte, 1)
	for i := 0; i < 5; i++ {
		if _, err := f.Receive(1, rid, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("backlog message %d: got %d", i, buf[0])
		}
	}
}

func TestRetainedBacklogForFirstBroadcastReceiver(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "bk")
	for i := 0; i < 3; i++ {
		f.Send(0, sid, []byte{byte(i)})
	}
	// First receiver (broadcast) inherits the backlog.
	rid1, _ := f.OpenReceive(1, "bk", Broadcast)
	// Second broadcast receiver joins after: sees only later messages.
	rid2, _ := f.OpenReceive(2, "bk", Broadcast)
	f.Send(0, sid, []byte{9})

	buf := make([]byte, 1)
	for i := 0; i < 3; i++ {
		f.Receive(1, rid1, buf)
		if buf[0] != byte(i) {
			t.Fatalf("inherited backlog message %d: got %d", i, buf[0])
		}
	}
	f.Receive(1, rid1, buf)
	if buf[0] != 9 {
		t.Fatalf("post-join message: got %d", buf[0])
	}
	f.Receive(2, rid2, buf)
	if buf[0] != 9 {
		t.Fatalf("late joiner should see only post-join messages, got %d", buf[0])
	}
	if ok, _ := f.CheckReceive(2, rid2); ok {
		t.Fatal("late joiner sees backlog")
	}
	// Everything consumed: no leaks.
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("blocks leaked: %d free of %d", free, total)
	}
}

func TestBroadcastOnlyCircuitDoesNotHoard(t *testing.T) {
	// A circuit with only BROADCAST receivers must recycle messages once
	// every receiver has consumed them; otherwise the broadcast
	// benchmark would exhaust the region.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "bo")
	r1, _ := f.OpenReceive(1, "bo", Broadcast)
	r2, _ := f.OpenReceive(2, "bo", Broadcast)
	buf := make([]byte, 8)
	for round := 0; round < 50; round++ {
		if err := f.Send(0, sid, []byte("payload")); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		f.Receive(1, r1, buf)
		f.Receive(2, r2, buf)
	}
	info, _ := f.LNVCInfo(sid)
	if info.QueuedMsgs != 0 {
		t.Fatalf("%d messages hoarded on broadcast-only circuit", info.QueuedMsgs)
	}
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("blocks leaked: %d free of %d", free, total)
	}
}

func TestCloseReceiveReleasesBroadcastClaims(t *testing.T) {
	// The paper's vexing close_receive problem: receiver 1 is behind;
	// when it closes, messages already read by every other receiver must
	// be reclaimed.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "vex")
	r1, _ := f.OpenReceive(1, "vex", Broadcast)
	r2, _ := f.OpenReceive(2, "vex", Broadcast)
	for i := 0; i < 10; i++ {
		f.Send(0, sid, []byte{byte(i)})
	}
	// Receiver 2 reads everything; receiver 1 reads nothing.
	buf := make([]byte, 1)
	for i := 0; i < 10; i++ {
		f.Receive(2, r2, buf)
	}
	info, _ := f.LNVCInfo(sid)
	if info.QueuedMsgs != 10 {
		t.Fatalf("queue = %d, want 10 (receiver 1 still needs them)", info.QueuedMsgs)
	}
	// Receiver 1 leaves: all 10 become garbage.
	if err := f.CloseReceive(1, r1); err != nil {
		t.Fatal(err)
	}
	info, _ = f.LNVCInfo(sid)
	if info.QueuedMsgs != 0 {
		t.Fatalf("queue = %d after close_receive, want 0", info.QueuedMsgs)
	}
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("blocks leaked: %d free of %d", free, total)
	}
	_ = r1
}

func TestCloseReceivePartialClaims(t *testing.T) {
	// Receiver 1 read 4 of 10 then closes: only its unread 6 claims are
	// released; messages 0-3 were already released by its reads.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "part")
	r1, _ := f.OpenReceive(1, "part", Broadcast)
	r2, _ := f.OpenReceive(2, "part", Broadcast)
	for i := 0; i < 10; i++ {
		f.Send(0, sid, []byte{byte(i)})
	}
	buf := make([]byte, 1)
	for i := 0; i < 4; i++ {
		f.Receive(1, r1, buf)
	}
	f.CloseReceive(1, r1)
	// Receiver 2 still sees all 10, in order.
	for i := 0; i < 10; i++ {
		f.Receive(2, r2, buf)
		if buf[0] != byte(i) {
			t.Fatalf("receiver 2 message %d: got %d", i, buf[0])
		}
	}
	info, _ := f.LNVCInfo(sid)
	if info.QueuedMsgs != 0 {
		t.Fatalf("queue = %d, want 0", info.QueuedMsgs)
	}
}

func TestLastFCFSCloseReleasesFCFSClaims(t *testing.T) {
	// Broadcast receivers consumed everything; an FCFS receiver never
	// read anything and closes. Messages must not be hoarded afterwards.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "lf")
	fid, _ := f.OpenReceive(1, "lf", FCFS)
	bid, _ := f.OpenReceive(2, "lf", Broadcast)
	for i := 0; i < 5; i++ {
		f.Send(0, sid, []byte{byte(i)})
	}
	buf := make([]byte, 1)
	for i := 0; i < 5; i++ {
		f.Receive(2, bid, buf)
	}
	info, _ := f.LNVCInfo(sid)
	if info.QueuedMsgs != 5 {
		t.Fatalf("queue = %d, want 5 (FCFS claims outstanding)", info.QueuedMsgs)
	}
	f.CloseReceive(1, fid)
	info, _ = f.LNVCInfo(sid)
	if info.QueuedMsgs != 0 {
		t.Fatalf("queue = %d after last FCFS close, want 0", info.QueuedMsgs)
	}
}

func TestMessagesRetainedWithNoReceivers(t *testing.T) {
	// With zero receivers connected (but a sender), messages are
	// retained for late joiners — rule 4.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "rt")
	for i := 0; i < 3; i++ {
		f.Send(0, sid, []byte{byte(i)})
	}
	info, _ := f.LNVCInfo(sid)
	if info.QueuedMsgs != 3 {
		t.Fatalf("queue = %d, want 3 retained", info.QueuedMsgs)
	}
}

func TestReceiverArrivesAfterAllReceiversLeft(t *testing.T) {
	// Receivers come and go; messages sent while no receiver is
	// connected are retained and delivered to the next FCFS joiner.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "gap")
	r1, _ := f.OpenReceive(1, "gap", FCFS)
	f.Send(0, sid, []byte{1})
	buf := make([]byte, 1)
	f.Receive(1, r1, buf)
	f.CloseReceive(1, r1)

	f.Send(0, sid, []byte{2}) // no receivers now
	r2, _ := f.OpenReceive(2, "gap", FCFS)
	f.Receive(2, r2, buf)
	if buf[0] != 2 {
		t.Fatalf("got %d, want 2", buf[0])
	}
}

func TestDescriptorRecycling(t *testing.T) {
	// LNVC ids and descriptors are recycled through free lists; churn
	// must not grow the table.
	f := newFac(t)
	for i := 0; i < 200; i++ {
		name := "churn"
		sid, err := f.OpenSend(0, name)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		rid, _ := f.OpenReceive(1, name, Broadcast)
		f.Send(0, sid, []byte("x"))
		f.Receive(1, rid, make([]byte, 1))
		f.CloseSend(0, sid)
		f.CloseReceive(1, rid)
		if f.LNVCCount() != 0 {
			t.Fatalf("iter %d: %d LNVCs live after full close", i, f.LNVCCount())
		}
	}
	st := f.Stats()
	if st.LNVCsCreated != 200 || st.LNVCsDeleted != 200 {
		t.Fatalf("create/delete = %d/%d", st.LNVCsCreated, st.LNVCsDeleted)
	}
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("blocks leaked: %d free of %d", free, total)
	}
}

func TestSenderClosesWhileReceiverBlocked(t *testing.T) {
	// A receiver blocked on an empty circuit keeps the circuit alive
	// after the sender closes; a new sender can join and deliver.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "sw")
	rid, _ := f.OpenReceive(1, "sw", FCFS)
	got := make(chan byte, 1)
	go func() {
		buf := make([]byte, 1)
		if _, err := f.Receive(1, rid, buf); err != nil {
			t.Error(err)
			got <- 0
			return
		}
		got <- buf[0]
	}()
	f.CloseSend(0, sid)
	sid2, err := f.OpenSend(2, "sw")
	if err != nil {
		t.Fatal(err)
	}
	if sid2 != rid {
		t.Fatalf("rejoined circuit has different id %d != %d", sid2, rid)
	}
	if err := f.Send(2, sid2, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if b := <-got; b != 42 {
		t.Fatalf("got %d, want 42", b)
	}
}
