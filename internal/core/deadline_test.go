package core

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestReceiveDeadlineTimesOut(t *testing.T) {
	f := newFac(t)
	f.OpenSend(0, "dl")
	rid, _ := f.OpenReceive(1, "dl", FCFS)
	start := time.Now()
	_, err := f.ReceiveDeadline(1, rid, make([]byte, 4), 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("returned after %v, before the deadline", elapsed)
	}
}

func TestReceiveDeadlineDeliversInTime(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "dl2")
	rid, _ := f.OpenReceive(1, "dl2", FCFS)
	go func() {
		time.Sleep(20 * time.Millisecond)
		f.Send(0, sid, []byte("late but fine"))
	}()
	buf := make([]byte, 32)
	n, err := f.ReceiveDeadline(1, rid, buf, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "late but fine" {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestReceiveDeadlineImmediateMessage(t *testing.T) {
	// A queued message is returned without waiting, well under the
	// deadline.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "dl3")
	rid, _ := f.OpenReceive(1, "dl3", FCFS)
	f.Send(0, sid, []byte{7})
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := f.ReceiveDeadline(1, rid, buf, time.Minute); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 || time.Since(start) > time.Second {
		t.Fatalf("buf=%v elapsed=%v", buf, time.Since(start))
	}
}

func TestReceiveDeadlineRejectsNonPositive(t *testing.T) {
	f := newFac(t)
	f.OpenSend(0, "dl4")
	rid, _ := f.OpenReceive(1, "dl4", FCFS)
	if _, err := f.ReceiveDeadline(1, rid, nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("zero deadline: %v", err)
	}
	if _, err := f.ReceiveDeadline(1, rid, nil, -time.Second); !errors.Is(err, ErrTimeout) {
		t.Fatalf("negative deadline: %v", err)
	}
}

func TestReceiveDeadlineShutdownWins(t *testing.T) {
	f := newFac(t)
	f.OpenSend(0, "dl5")
	rid, _ := f.OpenReceive(1, "dl5", FCFS)
	errc := make(chan error, 1)
	go func() {
		_, err := f.ReceiveDeadline(1, rid, make([]byte, 1), time.Minute)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.Shutdown()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrShutdown) {
			t.Fatalf("err = %v, want ErrShutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline receive ignored Shutdown")
	}
}

func TestReceiveDeadlineDoesNotStealFromOthers(t *testing.T) {
	// A timing-out receiver must not consume or block a message destined
	// for another FCFS receiver.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "dl6")
	r1, _ := f.OpenReceive(1, "dl6", FCFS)
	r2, _ := f.OpenReceive(2, "dl6", FCFS)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := f.ReceiveDeadline(1, r1, make([]byte, 1), 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("r1: %v", err)
		}
	}()
	wg.Wait() // r1 has timed out before the send
	f.Send(0, sid, []byte{9})
	buf := make([]byte, 1)
	n, err := f.Receive(2, r2, buf)
	if err != nil || n != 1 || buf[0] != 9 {
		t.Fatalf("r2: n=%d err=%v buf=%v", n, err, buf)
	}
}

func TestReceiveDeadlineStressConcurrentTimers(t *testing.T) {
	// Many receivers with staggered deadlines against a slow sender:
	// every receive either delivers a real message or times out; counts
	// must reconcile.
	f, err := Init(Config{MaxLNVCs: 2, MaxProcesses: 10, BlocksPerProcess: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	sid, _ := f.OpenSend(0, "dl7")
	const nRecv = 4
	var delivered, timedOut sync.Map
	var wg sync.WaitGroup
	for r := 1; r <= nRecv; r++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rid, err := f.OpenReceive(pid, "dl7", FCFS)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 1)
			got, misses := 0, 0
			for i := 0; i < 50; i++ {
				_, err := f.ReceiveDeadline(pid, rid, buf, time.Duration(1+i%5)*time.Millisecond)
				switch {
				case err == nil:
					got++
				case errors.Is(err, ErrTimeout):
					misses++
				default:
					t.Errorf("pid %d: %v", pid, err)
					return
				}
			}
			delivered.Store(pid, got)
			timedOut.Store(pid, misses)
		}(r)
	}
	for i := 0; i < 60; i++ {
		f.Send(0, sid, []byte{byte(i)})
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	totalGot := 0
	delivered.Range(func(_, v any) bool { totalGot += v.(int); return true })
	if totalGot == 0 {
		t.Fatal("no receiver ever got a message")
	}
	if totalGot > 60 {
		t.Fatalf("delivered %d messages from 60 sends (duplication)", totalGot)
	}
}
