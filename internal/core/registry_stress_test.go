package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestShardedRegistryChurnNoLeaks is the sharded-registry stress test:
// many goroutines churn open/send/receive/close on a small, overlapping
// set of circuit names, so circuit creation, deletion and descriptor
// recycling race constantly across shards (run it under -race). At the
// end every identifier and every arena block must be back on its free
// list and the created/deleted counters must balance — a leaked
// descriptor shows up in all three.
func TestShardedRegistryChurnNoLeaks(t *testing.T) {
	const (
		workers = 16
		names   = 5
		rounds  = 300
	)
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			f, err := Init(Config{
				MaxLNVCs:         names + 2,
				MaxProcesses:     workers,
				RegistryShards:   shards,
				BlocksPerProcess: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(pid) * 7919))
					buf := make([]byte, 32)
					for r := 0; r < rounds; r++ {
						name := fmt.Sprintf("churn-%d", rng.Intn(names))
						sid, err := f.OpenSend(pid, name)
						if err != nil {
							// The table can transiently fill while another
							// goroutine's delete is mid-flight.
							if errors.Is(err, ErrTooManyLNVCs) {
								continue
							}
							t.Error(err)
							return
						}
						switch rng.Intn(3) {
						case 0:
							if err := f.Send(pid, sid, []byte("ping")); err != nil {
								t.Error(err)
								return
							}
						case 1:
							if err := f.SendBatch(pid, sid, [][]byte{{1}, {2}, {3}}); err != nil {
								t.Error(err)
								return
							}
						}
						if rng.Intn(2) == 0 {
							rid, err := f.OpenReceive(pid, name, FCFS)
							if err == nil {
								for {
									_, ok, err := f.TryReceive(pid, rid, buf)
									if err != nil {
										t.Error(err)
										return
									}
									if !ok {
										break
									}
								}
								if err := f.CloseReceive(pid, rid); err != nil {
									t.Error(err)
									return
								}
							} else if !errors.Is(err, ErrAlreadyOpen) && !errors.Is(err, ErrTooManyLNVCs) {
								t.Error(err)
								return
							}
						}
						if err := f.CloseSend(pid, sid); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()

			if n := f.LNVCCount(); n != 0 {
				t.Errorf("%d circuits still live after churn", n)
			}
			st := f.Stats()
			if st.LNVCsCreated != st.LNVCsDeleted {
				t.Errorf("descriptor leak: %d created, %d deleted", st.LNVCsCreated, st.LNVCsDeleted)
			}
			if free, max := f.FreeIDCount(), f.Config().MaxLNVCs; free != max {
				t.Errorf("identifier leak: %d of %d ids free", free, max)
			}
			if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
				t.Errorf("block leak: %d of %d arena blocks free", free, total)
			}
			if err := f.Arena().CheckFreeList(); err != nil {
				t.Errorf("arena free list corrupt: %v", err)
			}
			if st.Opens != st.Closes {
				t.Errorf("connection imbalance: %d opens, %d closes", st.Opens, st.Closes)
			}
			// Registry accounting covers the traffic: every open and
			// every close takes its shard lock at least once.
			if total := st.RegistryAcquisitions; total < st.Opens+st.Closes {
				t.Errorf("registry recorded %d acquisitions for %d open/close ops", total, st.Opens+st.Closes)
			}
			f.Shutdown()
		})
	}
}
