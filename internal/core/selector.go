package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/spinlock"
)

// ErrSelectorClosed is returned by operations on a closed Selector.
var ErrSelectorClosed = errors.New("mpf: selector closed")

// Selector multiplexes many receive connections of one process over a
// single wait, epoll-style. Registered circuits push their identifier
// onto the selector's ready list when a message is enqueued (or the
// circuit is torn down), so a Wait wakes only when one of *its*
// circuits fires and does O(ready) work per wakeup — not O(registered),
// and not one wakeup per Send anywhere in the facility like the global
// activity pulse this replaces.
//
// Readiness is level-triggered: a circuit Wait reports stays armed and
// is reported again by subsequent Waits until a harvest observes it
// drained, so partial consumption cannot strand queued messages. For
// FCFS connections readiness is also advisory, in exactly the sense of
// the paper's check_receive caveat: a sibling FCFS receiver may claim
// the message between Wait returning and the caller receiving, so
// drain ready circuits with TryReceive, never a blocking Receive.
//
// A Selector belongs to one process id. Like a Process, it must not be
// used from two goroutines at once, except for Close, which may be
// called from anywhere to abort a parked Wait.
type Selector struct {
	f   *Facility
	pid int

	// notify is the parked Wait's wakeup; capacity 1, so a fire during
	// the harvest phase is retained and the next park returns
	// immediately. w is the single registration entry shared by every
	// circuit this selector watches.
	notify chan struct{}
	w      *muxWaiter

	// The pad pushes mu and the ready-list head it guards onto their
	// own cache lines: every markReady — called from *senders*, under
	// the firing circuit's lock — spins on mu and appends to ready,
	// and without the pad those words share a line with the fields the
	// parked owner reads on its wakeup path. Asserted by
	// TestHotWordLayout.
	_ [32]byte

	// mu guards the fields below. Lock order: shard lock → LNVC lock →
	// mu (markReady runs under the firing LNVC's lock), so Selector
	// methods must never acquire an LNVC lock while holding mu.
	mu      spinlock.TAS
	regs    map[ID]selReg
	ready   []ID // circuits fired since the last harvest, deduplicated
	inReady map[ID]bool
	closed  bool

	// deadErr is a circuit death observed by a HarvestViews round that
	// had already claimed views: the views were returned first and the
	// error is surfaced by the next wait or harvest call (the dead
	// registration is already dropped). Owner-goroutine state, like a
	// wait round itself — never touched by Close.
	deadErr error

	// Adaptive-harvest state (Config.AutoHarvestMin/Max): an EWMA of
	// the per-round harvest yield, the budget the last auto round ran
	// with, and whether that round consumed it entirely (in which case
	// the observed yield is censored at the budget and the next round
	// probes upward). Owner-goroutine state, like deadErr.
	ewmaDepth  float64
	lastBudget int
	lastFilled bool
}

// selReg pins a registration to one incarnation of one descriptor: l
// is the descriptor the waiter entry was placed on and gen its
// generation at registration time. A harvest that finds either changed
// is looking at a recycled descriptor, not the registered circuit.
type selReg struct {
	l   *lnvc
	gen uint64
}

// NewSelector creates a selector for pid's receive connections.
func (f *Facility) NewSelector(pid int) (*Selector, error) {
	if err := f.checkPID(pid); err != nil {
		return nil, err
	}
	s := &Selector{
		f:       f,
		pid:     pid,
		notify:  make(chan struct{}, 1),
		regs:    make(map[ID]selReg),
		inReady: make(map[ID]bool),
	}
	s.w = &muxWaiter{sel: s}
	return s, nil
}

// markReady records that circuit id fired and wakes a parked Wait.
// Called under the firing LNVC's lock. A fire for a circuit that is no
// longer registered — a recycled descriptor carrying a stale
// registration the owner has not yet removed — is dropped here, which
// is what makes descriptor recycling safe for selectors.
func (s *Selector) markReady(id ID) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, ok := s.regs[id]; !ok {
		s.mu.Unlock()
		return
	}
	s.markReadyLockedMu(id)
	s.mu.Unlock()
	s.tapNotify()
}

// markReadyLockedMu queues id for the next harvest; caller holds mu
// and has checked regs/closed.
func (s *Selector) markReadyLockedMu(id ID) {
	if !s.inReady[id] {
		s.inReady[id] = true
		s.ready = append(s.ready, id)
	}
}

func (s *Selector) tapNotify() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Add registers a circuit; pid must hold a receive connection on it. A
// circuit with a message already available is immediately ready. The
// whole registration happens under the circuit's lock, so it cannot
// interleave with a concurrent Close (which must take the same lock to
// unregister) — Close either sees the registration and removes it, or
// arrives first and makes Add fail with ErrSelectorClosed.
func (s *Selector) Add(id ID) error {
	l, err := s.f.lookup(id)
	if err != nil {
		return err
	}
	l.lock.Lock()
	d := l.recvs[s.pid]
	if s.f.slots[id].Load() != l || d == nil {
		l.lock.Unlock()
		return fmt.Errorf("%w: receive on id %d by process %d", ErrNotConnected, id, s.pid)
	}
	var stale selReg
	avail := l.availableLocked(d) != nil
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.lock.Unlock()
		return ErrSelectorClosed
	}
	if old, dup := s.regs[id]; dup {
		if old.l == l && old.gen == l.gen {
			s.mu.Unlock()
			l.lock.Unlock()
			return fmt.Errorf("%w: circuit %d already in selector", ErrAlreadyOpen, id)
		}
		// A previous circuit died and its id was recycled to this new
		// one before the owner noticed: replace the dead registration
		// (its waiter entry is cleaned up below, outside l's lock).
		stale = old
		delete(s.inReady, id)
	}
	s.regs[id] = selReg{l: l, gen: l.gen}
	if avail {
		s.markReadyLockedMu(id)
	}
	s.mu.Unlock()
	l.addWaiterLocked(s.w)
	l.lock.Unlock()
	if stale.l != nil {
		s.unregister(stale)
	}
	if avail {
		s.tapNotify()
	}
	return nil
}

// unregister removes reg's waiter entry from its descriptor — unless
// the descriptor has been recycled since the registration was made
// (generation mismatch): reset already cleared the stale entry then,
// and any s.w now on the list belongs to a *newer* registration of
// this selector on the recycled descriptor, which identity-based
// removal would otherwise strip, permanently losing its wakeups.
func (s *Selector) unregister(reg selReg) {
	reg.l.lock.Lock()
	if reg.l.gen == reg.gen {
		reg.l.removeWaiterLocked(s.w)
	}
	reg.l.lock.Unlock()
}

// Remove unregisters a circuit. Messages queued on it stay queued; the
// connection itself is untouched.
func (s *Selector) Remove(id ID) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSelectorClosed
	}
	reg, ok := s.regs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: circuit %d not in selector", ErrNotConnected, id)
	}
	delete(s.regs, id)
	// The id may still sit in the ready slice; clearing inReady makes
	// the next harvest skip it.
	delete(s.inReady, id)
	s.mu.Unlock()

	s.unregister(reg)
	return nil
}

// Has reports whether id is currently registered.
func (s *Selector) Has(id ID) bool {
	s.mu.Lock()
	_, ok := s.regs[id]
	s.mu.Unlock()
	return ok
}

// Circuits returns the currently registered circuit ids, snapshotted
// under a single lock hold — the bulk form of Has, so a caller
// reconciling its own table (mpf.Selector's prune) does one pass
// instead of re-locking once per circuit.
func (s *Selector) Circuits() []ID {
	s.mu.Lock()
	out := make([]ID, 0, len(s.regs))
	for id := range s.regs {
		out = append(out, id)
	}
	s.mu.Unlock()
	return out
}

// Len returns the number of registered circuits.
func (s *Selector) Len() int {
	s.mu.Lock()
	n := len(s.regs)
	s.mu.Unlock()
	return n
}

// Close unregisters every circuit, wakes a parked Wait, and makes all
// further operations fail with ErrSelectorClosed. Idempotent.
func (s *Selector) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	regs := make([]selReg, 0, len(s.regs))
	for _, reg := range s.regs {
		regs = append(regs, reg)
	}
	clear(s.regs)
	clear(s.inReady)
	s.ready = nil
	s.mu.Unlock()
	for _, reg := range regs {
		s.unregister(reg)
	}
	s.tapNotify()
	return nil
}

// Wait blocks until at least one registered circuit has a deliverable
// message for this process, then returns the ready circuits' ids. If a
// registered circuit's receive connection is closed — or the circuit
// deleted — while waiting, Wait drops that registration and returns
// ErrNotConnected rather than parking forever (other circuits'
// readiness is retained for the next Wait); facility Shutdown returns
// ErrShutdown, and Close returns ErrSelectorClosed.
func (s *Selector) Wait() ([]ID, error) { return s.wait(nil) }

// WaitDeadline is Wait bounded by d; it returns ErrTimeout if no
// circuit becomes ready in time.
func (s *Selector) WaitDeadline(d time.Duration) ([]ID, error) {
	if d <= 0 {
		return nil, fmt.Errorf("%w: non-positive deadline %v", ErrTimeout, d)
	}
	deadline := time.Now().Add(d)
	return s.wait(&deadline)
}

type firedReg struct {
	id ID
	selReg
}

// collectFired drains the deduplicated ready list into fired (reused
// across rounds), returning the registrations to inspect this round.
// It fails on a closed or empty selector.
func (s *Selector) collectFired(fired []firedReg) ([]firedReg, error) {
	fired = fired[:0]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSelectorClosed
	}
	if len(s.regs) == 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: Wait on a selector with no circuits", ErrBadLNVC)
	}
	for _, id := range s.ready {
		if !s.inReady[id] {
			continue // removed since it fired
		}
		delete(s.inReady, id)
		if reg, ok := s.regs[id]; ok {
			fired = append(fired, firedReg{id, reg})
		}
	}
	s.ready = s.ready[:0]
	s.mu.Unlock()
	return fired, nil
}

// takeDeadErr surfaces a circuit death a previous harvest round
// deferred (views first, error next call).
func (s *Selector) takeDeadErr() error {
	err := s.deadErr
	s.deadErr = nil
	return err
}

func (s *Selector) wait(deadline *time.Time) ([]ID, error) {
	if err := s.takeDeadErr(); err != nil {
		return nil, err
	}
	f := s.f
	woken := false
	var fired []firedReg // reused across rounds
	for {
		if f.stopped.Load() {
			return nil, ErrShutdown
		}
		// Harvest the circuits that fired since the last round. Only
		// these are inspected: O(ready) per wakeup.
		var err error
		fired, err = s.collectFired(fired)
		if err != nil {
			return nil, err
		}

		var out []ID
		var dead error
		for _, fr := range fired {
			fr.l.lock.Lock()
			d := fr.l.recvs[s.pid]
			// The generation check rejects a descriptor — and id —
			// recycled to a new circuit: the registered circuit is
			// gone even though the slot and connection test would
			// pass against its successor.
			connected := f.slots[fr.id].Load() == fr.l && fr.l.gen == fr.gen && d != nil
			avail := connected && fr.l.availableLocked(d) != nil
			fr.l.lock.Unlock()
			if !connected {
				// Closed under a parked selector: drop the dead
				// registration so later Waits can proceed, and report.
				s.dropReg(fr.id, fr.selReg)
				dead = fmt.Errorf("%w: circuit %d closed while in selector", ErrNotConnected, fr.id)
				continue
			}
			if avail {
				out = append(out, fr.id)
			}
		}
		if woken {
			f.stats.muxWakeups.Add(1)
			if len(out) == 0 && dead == nil {
				f.stats.muxSpurious.Add(1)
			}
			woken = false
		}
		// Level-trigger: every circuit reported ready stays on the
		// ready list until a later harvest observes it drained, so a
		// caller that consumes only part of a circuit's queue — or
		// none of it, when the error below preempts the results —
		// sees it again on the next Wait instead of parking over
		// deliverable messages. No notify tap is needed: the next
		// wait() harvests before it can park.
		s.remarkReady(out)
		if dead != nil {
			return nil, dead
		}
		if len(out) > 0 {
			return out, nil
		}

		ok, err := parkWait(s.notify, f.stop, deadline)
		if err != nil {
			return nil, err
		}
		woken = ok
	}
}

// remarkReady re-queues still-registered circuits for the next
// harvest.
func (s *Selector) remarkReady(ids []ID) {
	if len(ids) == 0 {
		return
	}
	s.mu.Lock()
	if !s.closed {
		for _, id := range ids {
			if _, ok := s.regs[id]; ok {
				s.markReadyLockedMu(id)
			}
		}
	}
	s.mu.Unlock()
}

// dropReg removes a registration whose circuit died while parked.
func (s *Selector) dropReg(id ID, reg selReg) {
	s.mu.Lock()
	if s.regs[id] == reg {
		delete(s.regs, id)
		delete(s.inReady, id)
	}
	s.mu.Unlock()
	s.unregister(reg)
}

// HarvestViews blocks like Wait, but instead of reporting ready
// circuit ids it drains them into pinned zero-copy Views inside the
// same round: each ready circuit is locked once and up to the
// remaining budget of deliverable messages is claimed under that one
// hold — where the Wait + TryReceiveView idiom re-resolves the
// registry and re-locks the circuit once per message. max bounds the
// views claimed per call (at least 1 is returned when any circuit has
// traffic); views arrive grouped by circuit, in each circuit's FIFO
// order, with Circuit() attributing each. The claims are exactly
// TryReceiveView's — FCFS claims are atomic, so sibling receivers
// cannot double-consume, and every view holds a pin until Release (or
// a batched ReleaseViews, which undoes a harvest's pins with one lock
// acquisition per circuit).
//
// A non-positive max selects the adaptive budget when the facility was
// configured with AutoHarvestMin/Max (otherwise it is an error): each
// round is sized from an EWMA of recent harvest yields, clamped to the
// configured window and probed upward after a round that filled its
// budget, and the round's budget is split evenly across the circuits
// that fired (never below one message each) so a hot circuit cannot
// consume the whole round while ready siblings starve — the cap's
// truncations are counted in Stats.HarvestCapHits, the budget itself
// in the Stats.HarvestAutoBudget gauge. A positive max keeps the
// historical fixed-budget greedy sweep.
//
// A circuit left with traffic by the budget stays armed and is
// harvested by the next call — the same level-trigger Wait gives
// partially drained circuits. Error behaviour matches Wait:
// ErrNotConnected when a registered circuit died while parked (any
// views already claimed that round are returned first — the error
// surfaces on the next call), ErrShutdown, ErrSelectorClosed,
// ErrTimeout from the deadline variant.
func (s *Selector) HarvestViews(max int) ([]*View, error) {
	vs, err := s.harvestViews(max, nil)
	s.traceHarvest(vs, err)
	return vs, err
}

// HarvestViewsDeadline is HarvestViews bounded by d; it returns
// ErrTimeout if no circuit delivers in time.
func (s *Selector) HarvestViewsDeadline(max int, d time.Duration) ([]*View, error) {
	if d <= 0 {
		return nil, fmt.Errorf("%w: non-positive deadline %v", ErrTimeout, d)
	}
	deadline := time.Now().Add(d)
	vs, err := s.harvestViews(max, &deadline)
	s.traceHarvest(vs, err)
	return vs, err
}

// harvestEWMAAlpha weights the newest round's yield in the adaptive
// budget's moving average: 1/4 new, 3/4 history — fast enough to track
// an MMPP-style on/off burst within a few rounds, smooth enough not to
// collapse the budget on one quiet round.
const harvestEWMAAlpha = 0.25

// nextAutoBudget sizes an auto-mode round: the yield EWMA rounded up,
// doubled as an upward probe when the previous round consumed its
// whole budget (the observation is censored at the budget, so the true
// depth may be anything above it), clamped to the configured window.
// The result is also published to the HarvestAutoBudget gauge.
func (s *Selector) nextAutoBudget() int {
	lo, hi := s.f.cfg.AutoHarvestMin, s.f.cfg.AutoHarvestMax
	b := int(s.ewmaDepth) + 1
	if s.lastFilled && b < s.lastBudget*2 {
		b = s.lastBudget * 2
	}
	if b < lo {
		b = lo
	}
	if b > hi {
		b = hi
	}
	s.lastBudget = b
	s.f.stats.harvestAutoBudget.Store(uint64(b))
	return b
}

// observeHarvest folds one auto round's yield into the EWMA. Called
// only for rounds that had fired circuits, so pure spurious wakeups do
// not decay the depth estimate.
func (s *Selector) observeHarvest(claimed, budget int) {
	s.ewmaDepth = (1-harvestEWMAAlpha)*s.ewmaDepth + harvestEWMAAlpha*float64(claimed)
	s.lastFilled = claimed >= budget
}

func (s *Selector) traceHarvest(vs []*View, err error) {
	total := 0
	for _, v := range vs {
		total += v.Len()
	}
	s.f.trace(Event{Op: OpHarvestViews, PID: s.pid, Bytes: total, Err: err})
}

func (s *Selector) harvestViews(max int, deadline *time.Time) ([]*View, error) {
	auto := max < 1
	if auto && s.f.cfg.AutoHarvestMax < 1 {
		return nil, fmt.Errorf("core: HarvestViews with budget %d (auto-harvest not configured)", max)
	}
	if err := s.takeDeadErr(); err != nil {
		return nil, err
	}
	f := s.f
	woken := false
	var fired []firedReg // reused across rounds
	for {
		if f.stopped.Load() {
			return nil, ErrShutdown
		}
		var err error
		fired, err = s.collectFired(fired)
		if err != nil {
			return nil, err
		}
		if auto {
			max = s.nextAutoBudget()
		}
		// The fairness cap (auto mode only): split the round's budget
		// evenly across the circuits that fired, so one hot circuit
		// cannot consume the whole round while ready siblings sit
		// armed but unserved. Fixed-budget mode keeps the historical
		// greedy sweep — which is exactly what the tuning ablation
		// measures against.
		perCircuit := max
		if auto && len(fired) > 1 {
			perCircuit = max / len(fired)
			if perCircuit < 1 {
				perCircuit = 1
			}
		}

		var out []*View
		var remark []ID
		var dead error
		total := 0
		for _, fr := range fired {
			if len(out) >= max {
				// Budget exhausted before this circuit was even looked
				// at: keep it armed, untouched, for the next call.
				remark = append(remark, fr.id)
				continue
			}
			fr.l.lock.Lock()
			d := fr.l.recvs[s.pid]
			connected := f.slots[fr.id].Load() == fr.l && fr.l.gen == fr.gen && d != nil
			if !connected {
				fr.l.lock.Unlock()
				s.dropReg(fr.id, fr.selReg)
				dead = fmt.Errorf("%w: circuit %d closed while in selector", ErrNotConnected, fr.id)
				continue
			}
			// Claim everything deliverable (up to the budget and the
			// fairness cap) under this one lock hold — the whole point
			// of the harvest.
			claimed := 0
			for len(out) < max && claimed < perCircuit {
				m := fr.l.availableLocked(d)
				if m == nil {
					break
				}
				fr.l.claimLocked(d, m)
				out = append(out, &View{f: f, l: fr.l, m: m, id: fr.id})
				total += m.Length
				claimed++
			}
			more := fr.l.availableLocked(d) != nil
			fr.l.lock.Unlock()
			if more {
				// Budget- or cap-limited with traffic left: stays armed.
				if claimed >= perCircuit && perCircuit < max {
					f.stats.harvestCapHits.Add(1)
				}
				remark = append(remark, fr.id)
			}
		}
		if auto && len(fired) > 0 {
			s.observeHarvest(len(out), max)
		}
		if woken {
			f.stats.muxWakeups.Add(1)
			if len(out) == 0 && dead == nil {
				f.stats.muxSpurious.Add(1)
			}
			woken = false
		}
		s.remarkReady(remark)
		if len(out) > 0 {
			f.stats.receives.Add(uint64(len(out)))
			f.stats.bytesRecvd.Add(uint64(total))
			f.stats.harvestedViews.Add(uint64(len(out)))
			// A circuit death observed this round is deferred, not
			// dropped: claimed views are never discarded, so the error
			// is stashed for the next wait/harvest call to return (the
			// registration is already gone — nothing would re-fire it).
			s.deadErr = dead
			return out, nil
		}
		if dead != nil {
			return nil, dead
		}

		ok, err := parkWait(s.notify, f.stop, deadline)
		if err != nil {
			return nil, err
		}
		woken = ok
	}
}
