package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestSelectorChurnStress is the selector analogue of
// TestShardedRegistryChurnNoLeaks (and runs in the same CI race-subset
// job): many goroutines churn open → Add → send → Wait → Remove →
// close on a small overlapping set of circuit names, so circuit
// creation, deletion and descriptor recycling race constantly against
// selector registration, firing and harvesting. The markReady guard
// that drops fires from recycled descriptors, the reset path that
// clears stale waiter lists, and the remove-by-identity unregister are
// all on the hot path here. At the end nothing may leak and no
// stale registration may survive.
func TestSelectorChurnStress(t *testing.T) {
	const (
		workers = 8
		names   = 4
		rounds  = 150
	)
	f, err := Init(Config{
		MaxLNVCs:         names + 2,
		MaxProcesses:     workers,
		BlocksPerProcess: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sel, err := f.NewSelector(pid)
			if err != nil {
				t.Error(err)
				return
			}
			defer sel.Close()
			rng := rand.New(rand.NewSource(int64(pid)*104729 + 7))
			buf := make([]byte, 16)
			for r := 0; r < rounds; r++ {
				name := fmt.Sprintf("selchurn-%d", rng.Intn(names))
				rid, err := f.OpenReceive(pid, name, FCFS)
				if err != nil {
					if errors.Is(err, ErrAlreadyOpen) || errors.Is(err, ErrTooManyLNVCs) {
						continue
					}
					t.Error(err)
					return
				}
				if err := sel.Add(rid); err != nil {
					// A recycled id may collide with a registration
					// this selector still holds from an earlier round
					// only if we failed to Remove — that is a bug.
					t.Errorf("Add(%d): %v", rid, err)
					return
				}
				if rng.Intn(2) == 0 {
					sid, err := f.OpenSend(pid, name)
					if err == nil {
						if err := f.Send(pid, sid, []byte("stress")); err != nil {
							t.Error(err)
							return
						}
						if err := f.CloseSend(pid, sid); err != nil {
							t.Error(err)
							return
						}
					} else if !errors.Is(err, ErrAlreadyOpen) && !errors.Is(err, ErrTooManyLNVCs) {
						t.Error(err)
						return
					}
				}
				ready, err := sel.WaitDeadline(time.Millisecond)
				if err == nil {
					for _, id := range ready {
						if _, _, err := f.TryReceive(pid, id, buf); err != nil {
							t.Error(err)
							return
						}
					}
				} else if !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrNotConnected) {
					t.Error(err)
					return
				}
				// ErrNotConnected from Wait means another worker's close
				// deleted a circuit whose descriptor we were parked on —
				// the registration was dropped for us; Remove then
				// reports it is already gone.
				if err := sel.Remove(rid); err != nil && !errors.Is(err, ErrNotConnected) {
					t.Error(err)
					return
				}
				if err := f.CloseReceive(pid, rid); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if n := f.LNVCCount(); n != 0 {
		t.Errorf("%d circuits still live after churn", n)
	}
	st := f.Stats()
	if st.LNVCsCreated != st.LNVCsDeleted {
		t.Errorf("descriptor leak: %d created, %d deleted", st.LNVCsCreated, st.LNVCsDeleted)
	}
	if free, max := f.FreeIDCount(), f.Config().MaxLNVCs; free != max {
		t.Errorf("identifier leak: %d of %d ids free", free, max)
	}
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Errorf("block leak: %d of %d arena blocks free", free, total)
	}
	if err := f.Arena().CheckFreeList(); err != nil {
		t.Errorf("arena free list corrupt: %v", err)
	}
	if st.Opens != st.Closes {
		t.Errorf("connection imbalance: %d opens, %d closes", st.Opens, st.Closes)
	}
	f.Shutdown()
}

// TestSelectorConcurrentSendersFairness exercises one selector fed by
// many concurrent senders: every message must be drained and no fire
// may be lost even when sends race the harvest.
func TestSelectorConcurrentSendersFairness(t *testing.T) {
	const (
		senders = 4
		perSend = 200
	)
	f, err := Init(Config{MaxLNVCs: senders + 2, MaxProcesses: senders + 1, BlocksPerProcess: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	consumer := senders // pid
	sel, err := f.NewSelector(consumer)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	recvs := make(map[ID]int) // id → sender index
	for i := 0; i < senders; i++ {
		name := fmt.Sprintf("fair-%d", i)
		rid, err := f.OpenReceive(consumer, name, FCFS)
		if err != nil {
			t.Fatal(err)
		}
		if err := sel.Add(rid); err != nil {
			t.Fatal(err)
		}
		recvs[rid] = i
	}
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sid, err := f.OpenSend(i, fmt.Sprintf("fair-%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			for k := 0; k < perSend; k++ {
				if err := f.Send(i, sid, []byte{byte(i), byte(k)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	counts := make([]int, senders)
	total := 0
	buf := make([]byte, 4)
	for total < senders*perSend {
		ready, err := sel.WaitDeadline(5 * time.Second)
		if err != nil {
			t.Fatalf("after %d of %d: %v", total, senders*perSend, err)
		}
		for _, id := range ready {
			for {
				_, ok, err := f.TryReceive(consumer, id, buf)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				counts[recvs[id]]++
				total++
			}
		}
	}
	wg.Wait()
	for i, c := range counts {
		if c != perSend {
			t.Errorf("sender %d: drained %d messages, want %d", i, c, perSend)
		}
	}
}
