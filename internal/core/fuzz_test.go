package core

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"repro/internal/shm"
)

// FuzzProtocolInvariants drives random interleavings of FCFS and
// BROADCAST receivers — copying receives, zero-copy view receives, and
// views held across other operations — against one circuit and checks
// the paper's §2 delivery contract plus the zero-copy plane's pin
// invariants:
//
//   - each message is consumed by exactly one FCFS receiver, in order
//     (the shared head), however the receives interleave with sends,
//     consumptions by the sibling, and FCFS close/reopen churn;
//   - every BROADCAST receiver connected since before the first send
//     observes the complete message stream in send order, whether it
//     reads through copies or through views;
//   - a held view's payload is never corrupted — the blocks under a
//     live pin are never recycled, however many sends, receives and
//     closes happen while it is held;
//   - once everything is consumed and every view released, the queue
//     has been reclaimed and no arena block has leaked.
//
// The script is one op per input byte (low 4 bits select the op, the
// high bit flips the copy/zero-copy plane): pid 0 sends (Send, or
// SendLoan+Commit with the high bit); pids 1-2 hold FCFS connections
// (pid 2 churns close/reopen); pids 3-4 hold BROADCAST connections
// (TryReceive, or TryReceiveView+Release with the high bit); op 6
// takes a view on pid 3 and *holds* it across subsequent ops; op 7
// releases the oldest held view, re-verifying its payload first. The
// batched plane adds: op 8 commits a LoanBatch of three whole
// (CommitAll); op 9 commits a one-message prefix of a batch of three,
// aborting the tail (CommitN — the partial abort); op 10 aborts a
// batch of two outright (AbortAll); op 11 harvests up to two pinned
// views through pid 3's Selector (HarvestViews inside the wait round)
// and *holds* them like op 6's, so harvested views ride across
// receiver churn and close too; op 14 is the same harvest with budget
// 0 — the adaptive (EWMA-sized, fairness-capped) rounds the facility's
// AutoHarvest window enables — so the cap is checked against the same
// no-drop/no-duplicate stream invariants across receiver churn.
// FailFast keeps pool exhaustion from blocking the fuzzer — a refused
// send is simply not recorded.
//
// The facility runs under credit flow control (CreditBlocks = 12 of
// the region), so every op above doubles as a credit op: sends debit
// the budget (a send the budget refuses surfaces as ErrNoCredit and is
// dropped exactly like a pool-refused one), receives/releases/reclaim
// grant it back, and the held views keep debits pinned across churn.
// Op 12 adds the pure debit/refund cycle — a loan acquired and
// immediately aborted — and op 13 asserts the mid-run ledger bound:
// the circuit's debits never exceed the budget and always equal the
// facility-wide CreditsHeld gauge. The final drain asserts the
// quiescence invariant: credits held plus credits free equal the
// configured budget (i.e. the ledger and gauge are exactly zero once
// every message is reclaimed and every view released).
func FuzzProtocolInvariants(f *testing.F) {
	// Seed corpus: a quiet round-trip, a saturating burst then drain,
	// receiver churn around a burst, interleaved chatter, the
	// zero-copy plane (loan sends, view receives, held views across
	// churn and bursts), and the batched plane (CommitAll bursts,
	// partial commits and aborts interleaved with churn, harvested
	// views held across closes).
	f.Add([]byte{0, 1, 0, 3, 0, 4, 2, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 3, 3, 3, 3, 4, 4, 4, 4})
	f.Add([]byte{5, 0, 0, 5, 2, 0, 5, 1, 2, 5, 0, 2})
	f.Add([]byte{0, 3, 1, 0, 4, 2, 0, 3, 1, 0, 4, 2, 5, 0, 3, 1, 5, 0, 4, 2})
	f.Add([]byte{0x80, 0x83, 0x81, 0x80, 0x84, 0x82, 0x80, 0x83})
	f.Add([]byte{0, 6, 0, 6, 5, 0, 1, 7, 2, 7, 0x80, 6, 1, 7})
	f.Add([]byte{0x80, 6, 0x80, 6, 0x80, 6, 0x80, 6, 7, 7, 7, 7, 1, 1, 1, 1, 4, 4, 4, 4})
	f.Add([]byte{8, 11, 1, 1, 3, 3, 4, 4, 4, 1, 7, 7})
	f.Add([]byte{9, 10, 8, 5, 11, 2, 9, 5, 11, 7, 7, 1, 1, 1, 1})
	f.Add([]byte{8, 8, 11, 11, 11, 5, 7, 2, 7, 7, 10, 9, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{12, 13, 0, 12, 8, 13, 6, 6, 13, 12, 7, 7, 1, 1, 1, 1, 3, 3, 4, 4})
	f.Add([]byte{0, 0, 0, 0, 8, 8, 13, 12, 9, 13, 6, 5, 13, 1, 1, 1, 7, 13})
	f.Add([]byte{8, 14, 0, 0, 14, 5, 14, 2, 7, 7, 14, 5, 1, 1, 1, 1, 7, 7})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 14, 14, 14, 11, 14, 7, 7, 7, 7, 7, 1, 1, 1, 1, 1, 1})

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4096 {
			t.Skip("script longer than useful")
		}
		// Scripts address payloads only through backend-relative offsets
		// (the block offsets the facility itself hands out), never through
		// absolute addresses, so one corpus exercises both arena backends:
		// every script runs over the default heap arena and again over an
		// arena carved out of a Segment at a nonzero base — the exact
		// layout the cross-process serve path maps into child processes.
		runProtocolScript(t, script, false)
		runProtocolScript(t, script, true)
	})
}

func runProtocolScript(t *testing.T, script []byte, segmentBacked bool) {
	const creditBudget = 12
	cfg := Config{
		MaxLNVCs:         4,
		MaxProcesses:     5,
		BlocksPerProcess: 16,
		SendPolicy:       FailFast,
		CreditBlocks:     creditBudget,
		// Auto-harvest enabled so op 14 can run budget-0 rounds: the
		// adaptive budget and fairness cap ride the same scripts as
		// everything else.
		AutoHarvestMin: 1,
		AutoHarvestMax: 4,
	}
	if segmentBacked {
		acfg := ArenaConfig(cfg)
		seg, err := shm.NewSegment(shm.AlignUp(acfg.Bytes()) + 64)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		cfg.ArenaMem = seg.At(64, acfg.Bytes())
	}
	fac, err := Init(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()

	const name = "fuzz"
	sid, err := fac.OpenSend(0, name)
	if err != nil {
		t.Fatal(err)
	}
	fcfs1, err := fac.OpenReceive(1, name, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	fcfs2, err := fac.OpenReceive(2, name, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	fcfs2Open := true
	bc3, err := fac.OpenReceive(3, name, Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	bc4, err := fac.OpenReceive(4, name, Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	// pid 3 also drains through a Selector (op 11): harvested views
	// interleave with its copying receives, plain view receives and
	// held views on the same BROADCAST head.
	sel, err := fac.NewSelector(3)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	if err := sel.Add(bc3); err != nil {
		t.Fatal(err)
	}

	type heldView struct {
		v     *View
		stamp uint64
	}
	var (
		nextSeq   uint64             // payload stamp of the next send
		sent      uint64             // sends accepted by the facility
		fcfsSeen  = map[uint64]int{} // stamp → FCFS consumptions
		fcfsOrder = uint64(0)        // next stamp FCFS may consume
		bcNext    = map[int]uint64{3: 0, 4: 0}
		held      []heldView // views pinned across ops (pid 3)
	)
	buf := make([]byte, 8)

	stampOf := func(v *View) uint64 {
		var b [8]byte
		if n := v.CopyTo(b[:]); n != 8 {
			t.Fatalf("held view has %d bytes, want 8", n)
		}
		return binary.BigEndian.Uint64(b[:])
	}
	releaseOldest := func() {
		if len(held) == 0 {
			return
		}
		h := held[0]
		held = held[1:]
		// The pin invariant: a live view's payload must read exactly
		// as it did at claim time — recycled blocks would have been
		// overwritten by later sends.
		if got := stampOf(h.v); got != h.stamp {
			t.Fatalf("held view corrupted: stamp %d read back as %d", h.stamp, got)
		}
		h.v.Release()
	}
	doSend := func(viaLoan bool) {
		payload := make([]byte, 8)
		binary.BigEndian.PutUint64(payload, nextSeq)
		if viaLoan {
			ln, err := fac.SendLoan(0, sid, 8)
			if errors.Is(err, ErrNoMemory) || errors.Is(err, ErrNoCredit) {
				return // pool full or budget spent: drop the stamp, receivers catch up
			}
			if err != nil {
				t.Fatalf("loan %d: %v", nextSeq, err)
			}
			if n := ln.View().CopyFrom(payload); n != 8 {
				t.Fatalf("loan fill wrote %d bytes", n)
			}
			if err := ln.Commit(); err != nil {
				t.Fatalf("commit %d: %v", nextSeq, err)
			}
		} else {
			err := fac.Send(0, sid, payload)
			if errors.Is(err, ErrNoMemory) || errors.Is(err, ErrNoCredit) {
				return
			}
			if err != nil {
				t.Fatalf("send %d: %v", nextSeq, err)
			}
		}
		nextSeq++
		sent++
	}
	fcfsRecv := func(pid int, id ID) {
		n, ok, err := fac.TryReceive(pid, id, buf)
		if err != nil {
			t.Fatalf("FCFS TryReceive pid %d: %v", pid, err)
		}
		if !ok {
			return
		}
		if n != 8 {
			t.Fatalf("FCFS pid %d got %d bytes", pid, n)
		}
		stamp := binary.BigEndian.Uint64(buf)
		fcfsSeen[stamp]++
		if fcfsSeen[stamp] > 1 {
			t.Fatalf("message %d consumed %d times by FCFS", stamp, fcfsSeen[stamp])
		}
		if stamp != fcfsOrder {
			t.Fatalf("FCFS consumed %d, want next-in-order %d", stamp, fcfsOrder)
		}
		fcfsOrder++
	}
	bcastRecv := func(pid int, id ID, viaView bool) {
		var stamp uint64
		if viaView {
			v, ok, err := fac.TryReceiveView(pid, id)
			if err != nil {
				t.Fatalf("BROADCAST TryReceiveView pid %d: %v", pid, err)
			}
			if !ok {
				return
			}
			if v.Len() != 8 {
				t.Fatalf("BROADCAST pid %d got a %d-byte view", pid, v.Len())
			}
			stamp = stampOf(v)
			v.Release()
		} else {
			n, ok, err := fac.TryReceive(pid, id, buf)
			if err != nil {
				t.Fatalf("BROADCAST TryReceive pid %d: %v", pid, err)
			}
			if !ok {
				return
			}
			if n != 8 {
				t.Fatalf("BROADCAST pid %d got %d bytes", pid, n)
			}
			stamp = binary.BigEndian.Uint64(buf)
		}
		if stamp != bcNext[pid] {
			t.Fatalf("BROADCAST pid %d saw %d, want %d (gap or reorder)", pid, stamp, bcNext[pid])
		}
		bcNext[pid]++
	}
	holdView := func() {
		if len(held) >= 8 {
			// Bound the pinned backlog so FailFast sends keep flowing.
			releaseOldest()
		}
		v, ok, err := fac.TryReceiveView(3, bc3)
		if err != nil {
			t.Fatalf("held TryReceiveView: %v", err)
		}
		if !ok {
			return
		}
		stamp := stampOf(v)
		if stamp != bcNext[3] {
			t.Fatalf("held view saw %d, want %d (gap or reorder)", stamp, bcNext[3])
		}
		bcNext[3]++
		held = append(held, heldView{v: v, stamp: stamp})
	}
	// batchSend acquires a LoanBatch of k stamped loans and commits
	// the first `commit` of them, aborting the rest — the partial
	// abort when commit < k, a pure AbortAll when commit == -1.
	batchSend := func(k, commit int) {
		ns := make([]int, k)
		for j := range ns {
			ns[j] = 8
		}
		lb, err := fac.LoanBatch(0, sid, ns)
		if errors.Is(err, ErrNoMemory) || errors.Is(err, ErrNoCredit) {
			return // pool full or budget spent: drop the batch, receivers catch up
		}
		if err != nil {
			t.Fatalf("loan batch: %v", err)
		}
		payload := make([]byte, 8)
		for j := 0; j < k; j++ {
			binary.BigEndian.PutUint64(payload, nextSeq+uint64(j))
			if n := lb.Fill(j, payload); n != 8 {
				t.Fatalf("batch fill wrote %d bytes", n)
			}
		}
		if commit < 0 {
			lb.AbortAll()
			return
		}
		if commit == k {
			err = lb.CommitAll()
		} else {
			err = lb.CommitN(commit)
		}
		if err != nil {
			t.Fatalf("batch commit %d of %d: %v", commit, k, err)
		}
		// Aborted tail stamps are reused by the next send, so the
		// observed stream stays gap-free.
		nextSeq += uint64(commit)
		sent += uint64(commit)
	}
	// harvestViews drains messages through pid 3's Selector into held
	// views — budget 2 for op 11's fixed-budget rounds, budget 0 for
	// op 14's adaptive rounds (the EWMA budget and the fairness cap
	// decide how many views arrive; the stream checks below are
	// identical, so the cap can neither drop nor duplicate). The
	// guard keeps it non-blocking: a BROADCAST receiver with
	// bcNext < sent always has a deliverable message, so the wait
	// round returns immediately.
	harvestViews := func(budget int) {
		if bcNext[3] >= sent {
			return
		}
		for len(held) > 6 {
			releaseOldest()
		}
		vs, err := sel.HarvestViewsDeadline(budget, 10*time.Second)
		if err != nil {
			t.Fatalf("harvest: %v", err)
		}
		for _, v := range vs {
			if v.Len() != 8 {
				t.Fatalf("harvested a %d-byte view", v.Len())
			}
			stamp := stampOf(v)
			if stamp != bcNext[3] {
				t.Fatalf("harvest saw %d, want %d (gap or reorder)", stamp, bcNext[3])
			}
			bcNext[3]++
			held = append(held, heldView{v: v, stamp: stamp})
		}
	}

	// loanAbort is the pure credit debit/refund cycle: a loan
	// acquired (budget debited at allocation) and aborted (the
	// never-enqueued demand refunded) with no message traffic.
	loanAbort := func() {
		ln, err := fac.SendLoan(0, sid, 8)
		if errors.Is(err, ErrNoMemory) || errors.Is(err, ErrNoCredit) {
			return
		}
		if err != nil {
			t.Fatalf("credit loan: %v", err)
		}
		ln.Abort()
	}
	// checkLedger asserts the mid-run credit bound: the circuit's
	// debits never exceed the budget and, with one credited circuit
	// in the facility, always equal the CreditsHeld gauge.
	checkLedger := func() {
		info, err := fac.LNVCInfo(sid)
		if err != nil {
			t.Fatalf("credit ledger info: %v", err)
		}
		if info.CreditCap != creditBudget {
			t.Fatalf("ledger cap %d, want %d", info.CreditCap, creditBudget)
		}
		if info.CreditUsed < 0 || info.CreditUsed > creditBudget {
			t.Fatalf("ledger overdrawn: %d of %d blocks debited", info.CreditUsed, creditBudget)
		}
		if held := fac.Stats().CreditsHeld; held != uint64(info.CreditUsed) {
			t.Fatalf("gauge disagrees with ledger: held %d, circuit debits %d", held, info.CreditUsed)
		}
	}

	for _, op := range script {
		viaZC := op&0x80 != 0
		switch int(op&0x7f) % 16 {
		case 0:
			doSend(viaZC)
		case 1:
			fcfsRecv(1, fcfs1)
		case 2:
			if fcfs2Open {
				fcfsRecv(2, fcfs2)
			}
		case 3:
			bcastRecv(3, bc3, viaZC)
		case 4:
			bcastRecv(4, bc4, viaZC)
		case 5:
			if fcfs2Open {
				if err := fac.CloseReceive(2, fcfs2); err != nil {
					t.Fatalf("close fcfs2: %v", err)
				}
				fcfs2Open = false
			} else {
				// Reopening inherits the shared FCFS head: no
				// double delivery, no gap.
				fcfs2, err = fac.OpenReceive(2, name, FCFS)
				if err != nil {
					t.Fatalf("reopen fcfs2: %v", err)
				}
				fcfs2Open = true
			}
		case 6:
			holdView()
		case 7:
			releaseOldest()
		case 8:
			batchSend(3, 3) // CommitAll
		case 9:
			batchSend(3, 1) // partial: commit 1, abort 2
		case 10:
			batchSend(2, -1) // AbortAll
		case 11:
			harvestViews(2)
		case 12:
			loanAbort()
		case 13:
			checkLedger()
		case 14:
			harvestViews(0) // adaptive budget + fairness cap
		default:
			// 15 reserved; treated as a no-op so a future op can
			// claim it without invalidating today's corpus.
		}
	}

	// Drain: every accepted message must reach exactly one FCFS
	// receiver and both broadcast receivers, in order. pid 3
	// alternates views and copies on the way out.
	for fcfsOrder < sent {
		before := fcfsOrder
		fcfsRecv(1, fcfs1)
		if fcfsOrder == before {
			t.Fatalf("FCFS drain stalled at %d of %d", fcfsOrder, sent)
		}
	}
	for _, pid := range []int{3, 4} {
		id := bc3
		if pid == 4 {
			id = bc4
		}
		for bcNext[pid] < sent {
			before := bcNext[pid]
			bcastRecv(pid, id, pid == 3 && bcNext[pid]%2 == 0)
			if bcNext[pid] == before {
				t.Fatalf("BROADCAST pid %d drain stalled at %d of %d", pid, bcNext[pid], sent)
			}
		}
	}
	for stamp := uint64(0); stamp < sent; stamp++ {
		if fcfsSeen[stamp] != 1 {
			t.Fatalf("message %d consumed %d times by FCFS, want exactly 1", stamp, fcfsSeen[stamp])
		}
	}

	// Views still held must read their original payloads, then let
	// their blocks go.
	for len(held) > 0 {
		releaseOldest()
	}

	// Everything consumed and every pin dropped: reclamation must
	// have emptied the queue and returned every block.
	id, ok := fac.LNVCByName(name)
	if !ok {
		t.Fatal("circuit vanished")
	}
	info, err := fac.LNVCInfo(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.QueuedMsgs != 0 {
		t.Fatalf("%d messages still queued after full drain", info.QueuedMsgs)
	}
	if free, total := fac.Arena().FreeBlocks(), fac.Arena().NumBlocks(); free != total {
		t.Fatalf("block leak after drain: %d of %d free", free, total)
	}
	// The credit quiescence invariant: with every message reclaimed
	// and every loan resolved, credits held + credits free == the
	// configured budget — i.e. the ledger and the gauge are zero.
	if info.CreditUsed != 0 {
		t.Fatalf("credit leak after drain: %d of %d budget blocks still debited", info.CreditUsed, creditBudget)
	}
	if held := fac.Stats().CreditsHeld; held != 0 {
		t.Fatalf("credit gauge leak after drain: %d blocks still held", held)
	}
}
