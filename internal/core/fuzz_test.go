package core

import (
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzProtocolInvariants drives random interleavings of FCFS and
// BROADCAST receivers against one circuit and checks the paper's §2
// delivery contract:
//
//   - each message is consumed by exactly one FCFS receiver, in order
//     (the shared head), however the receives interleave with sends,
//     consumptions by the sibling, and FCFS close/reopen churn;
//   - every BROADCAST receiver connected since before the first send
//     observes the complete message stream in send order;
//   - once everything is consumed, the queue has been reclaimed.
//
// The script is one op per input byte: pid 0 sends; pids 1-2 hold FCFS
// connections (pid 2 churns close/reopen); pids 3-4 hold BROADCAST
// connections. Sends are seq-stamped so the trackers can identify every
// delivery. FailFast keeps pool exhaustion from blocking the fuzzer —
// a refused send is simply not recorded.
func FuzzProtocolInvariants(f *testing.F) {
	// Seed corpus: a quiet round-trip, a saturating burst then drain,
	// receiver churn around a burst, and interleaved chatter.
	f.Add([]byte{0, 1, 0, 3, 0, 4, 2, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 3, 3, 3, 3, 4, 4, 4, 4})
	f.Add([]byte{5, 0, 0, 5, 2, 0, 5, 1, 2, 5, 0, 2})
	f.Add([]byte{0, 3, 1, 0, 4, 2, 0, 3, 1, 0, 4, 2, 5, 0, 3, 1, 5, 0, 4, 2})

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4096 {
			t.Skip("script longer than useful")
		}
		fac, err := Init(Config{
			MaxLNVCs:         4,
			MaxProcesses:     5,
			BlocksPerProcess: 16,
			SendPolicy:       FailFast,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer fac.Shutdown()

		const name = "fuzz"
		sid, err := fac.OpenSend(0, name)
		if err != nil {
			t.Fatal(err)
		}
		fcfs1, err := fac.OpenReceive(1, name, FCFS)
		if err != nil {
			t.Fatal(err)
		}
		fcfs2, err := fac.OpenReceive(2, name, FCFS)
		if err != nil {
			t.Fatal(err)
		}
		fcfs2Open := true
		bc3, err := fac.OpenReceive(3, name, Broadcast)
		if err != nil {
			t.Fatal(err)
		}
		bc4, err := fac.OpenReceive(4, name, Broadcast)
		if err != nil {
			t.Fatal(err)
		}

		var (
			nextSeq   uint64             // payload stamp of the next send
			sent      uint64             // sends accepted by the facility
			fcfsSeen  = map[uint64]int{} // stamp → FCFS consumptions
			fcfsOrder = uint64(0)        // next stamp FCFS may consume
			bcNext    = map[int]uint64{3: 0, 4: 0}
		)
		buf := make([]byte, 8)

		fcfsRecv := func(pid int, id ID) {
			n, ok, err := fac.TryReceive(pid, id, buf)
			if err != nil {
				t.Fatalf("FCFS TryReceive pid %d: %v", pid, err)
			}
			if !ok {
				return
			}
			if n != 8 {
				t.Fatalf("FCFS pid %d got %d bytes", pid, n)
			}
			stamp := binary.BigEndian.Uint64(buf)
			fcfsSeen[stamp]++
			if fcfsSeen[stamp] > 1 {
				t.Fatalf("message %d consumed %d times by FCFS", stamp, fcfsSeen[stamp])
			}
			if stamp != fcfsOrder {
				t.Fatalf("FCFS consumed %d, want next-in-order %d", stamp, fcfsOrder)
			}
			fcfsOrder++
		}
		bcastRecv := func(pid int, id ID) {
			n, ok, err := fac.TryReceive(pid, id, buf)
			if err != nil {
				t.Fatalf("BROADCAST TryReceive pid %d: %v", pid, err)
			}
			if !ok {
				return
			}
			if n != 8 {
				t.Fatalf("BROADCAST pid %d got %d bytes", pid, n)
			}
			stamp := binary.BigEndian.Uint64(buf)
			if stamp != bcNext[pid] {
				t.Fatalf("BROADCAST pid %d saw %d, want %d (gap or reorder)", pid, stamp, bcNext[pid])
			}
			bcNext[pid]++
		}

		for _, op := range script {
			switch op % 6 {
			case 0:
				payload := make([]byte, 8)
				binary.BigEndian.PutUint64(payload, nextSeq)
				err := fac.Send(0, sid, payload)
				if errors.Is(err, ErrNoMemory) {
					continue // pool full: drop the stamp, receivers catch up
				}
				if err != nil {
					t.Fatalf("send %d: %v", nextSeq, err)
				}
				nextSeq++
				sent++
			case 1:
				fcfsRecv(1, fcfs1)
			case 2:
				if fcfs2Open {
					fcfsRecv(2, fcfs2)
				}
			case 3:
				bcastRecv(3, bc3)
			case 4:
				bcastRecv(4, bc4)
			case 5:
				if fcfs2Open {
					if err := fac.CloseReceive(2, fcfs2); err != nil {
						t.Fatalf("close fcfs2: %v", err)
					}
					fcfs2Open = false
				} else {
					// Reopening inherits the shared FCFS head: no
					// double delivery, no gap.
					fcfs2, err = fac.OpenReceive(2, name, FCFS)
					if err != nil {
						t.Fatalf("reopen fcfs2: %v", err)
					}
					fcfs2Open = true
				}
			}
		}

		// Drain: every accepted message must reach exactly one FCFS
		// receiver and both broadcast receivers, in order.
		for fcfsOrder < sent {
			before := fcfsOrder
			fcfsRecv(1, fcfs1)
			if fcfsOrder == before {
				t.Fatalf("FCFS drain stalled at %d of %d", fcfsOrder, sent)
			}
		}
		for _, pid := range []int{3, 4} {
			id := bc3
			if pid == 4 {
				id = bc4
			}
			for bcNext[pid] < sent {
				before := bcNext[pid]
				bcastRecv(pid, id)
				if bcNext[pid] == before {
					t.Fatalf("BROADCAST pid %d drain stalled at %d of %d", pid, bcNext[pid], sent)
				}
			}
		}
		for stamp := uint64(0); stamp < sent; stamp++ {
			if fcfsSeen[stamp] != 1 {
				t.Fatalf("message %d consumed %d times by FCFS, want exactly 1", stamp, fcfsSeen[stamp])
			}
		}

		// Everything consumed: reclamation must have emptied the queue.
		id, ok := fac.LNVCByName(name)
		if !ok {
			t.Fatal("circuit vanished")
		}
		info, err := fac.LNVCInfo(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.QueuedMsgs != 0 {
			t.Fatalf("%d messages still queued after full drain", info.QueuedMsgs)
		}
		if free, total := fac.Arena().FreeBlocks(), fac.Arena().NumBlocks(); free != total {
			t.Fatalf("block leak after drain: %d of %d free", free, total)
		}
	})
}
