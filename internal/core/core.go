// Package core implements the MPF message passing facility: logical,
// named virtual circuits (LNVCs) with FCFS and BROADCAST receive
// protocols, layered on the shared-memory arena (internal/shm), message
// blocks (internal/msg) and spin locks (internal/spinlock).
//
// # The model (paper §1-2, Figure 1)
//
// An LNVC is a conversation identified by a mutually agreed name.
// Processes join as senders (OpenSend) or receivers (OpenReceive) and may
// leave at any time. Messages are addressed to the LNVC, not to
// processes. Receivers choose a protocol when they join:
//
//   - FCFS: all FCFS receivers share one FIFO head pointer; each message
//     is consumed by exactly one of them, in message order.
//   - Broadcast: each BROADCAST receiver has a private head pointer and
//     observes the complete time-ordered message stream.
//
// The two classes may coexist: a message then goes to every BROADCAST
// receiver and exactly one FCFS receiver. A single process may hold at
// most one receive connection per LNVC (the paper forbids mixing
// protocols within one process) but may hold a send and a receive
// connection simultaneously (the base benchmark's loop-back relies on
// this).
//
// # Descriptor layout (paper §3.1, Figure 2)
//
// Each LNVC descriptor holds the name, the internal identifier, the
// queued-message count, a FIFO of messages (linked list with head and
// tail pointers), the shared FCFS head pointer, per-BROADCAST-receiver
// head pointers inside the receive descriptors, the connection lists, and
// one lock for mutually exclusive access. Send, receive and LNVC
// descriptors are recycled through free lists, as are message blocks.
// Head "pointers" are realised as sequence numbers into the FIFO's total
// order, which makes the close_receive reclamation rule O(1) per receive
// (see reclaim semantics below) instead of the pointer-comparison scan
// the paper laments.
//
// # Message retention and reclamation
//
// The paper defines LNVC lifetime (alive while any connection exists;
// the last close discards the circuit and its unread messages) but leaves
// partially stated when an individual message may be recycled. This
// implementation uses the following rules, chosen to be consistent with
// every behaviour the paper does state (late joiners can pick up queued
// messages; broadcast-only circuits run in bounded memory):
//
//  1. At enqueue, a message records Pending = number of connected
//     BROADCAST receivers and FCFSNeeded = true.
//  2. An FCFS consumption clears FCFSNeeded and advances the shared head.
//  3. A message is recycled when Pending == 0 and either FCFSNeeded is
//     false, or no FCFS receiver is connected while at least one other
//     receiver is (an actively broadcast-only circuit does not hoard).
//  4. If no receivers at all are connected, messages are retained for
//     late joiners — this is exactly the paper's "messages could be lost"
//     scenario: they are lost only if the circuit dies first.
//  5. The first receiver to join an LNVC that holds retained messages
//     inherits the backlog: an FCFS joiner finds the shared head already
//     at the oldest message; a BROADCAST joiner has its private head set
//     to the oldest retained message (and Pending is incremented on each).
//     Later BROADCAST joiners see only messages sent after they join.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/msg"
	"repro/internal/shm"
	"repro/internal/spinlock"
	"repro/internal/stats"
)

// Protocol selects a receiver's delivery discipline (paper §2,
// open_receive's protocol argument).
type Protocol uint8

const (
	// FCFS receivers share one head pointer; each message is delivered
	// to exactly one of them.
	FCFS Protocol = iota
	// Broadcast receivers each see every message.
	Broadcast
)

// String returns the paper's name for the protocol.
func (p Protocol) String() string {
	switch p {
	case FCFS:
		return "FCFS"
	case Broadcast:
		return "BROADCAST"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// ID is MPF's internal LNVC identifier, returned by OpenSend/OpenReceive
// and consumed by every other primitive.
type ID int32

// SendPolicy selects behaviour when the shared region's block pool is
// exhausted during Send.
type SendPolicy uint8

const (
	// BlockUntilFree makes Send wait for blocks to be recycled — the
	// behaviour of the paper's fixed-size region.
	BlockUntilFree SendPolicy = iota
	// FailFast makes Send return ErrNoMemory immediately.
	FailFast
)

// Errors returned by the facility.
var (
	ErrBadProcess    = errors.New("mpf: process id out of range")
	ErrBadLNVC       = errors.New("mpf: no such LNVC")
	ErrTooManyLNVCs  = errors.New("mpf: LNVC table full")
	ErrNotConnected  = errors.New("mpf: process has no such connection on LNVC")
	ErrAlreadyOpen   = errors.New("mpf: process already holds this connection type on LNVC")
	ErrNoMemory      = errors.New("mpf: shared region out of message blocks")
	ErrShutdown      = errors.New("mpf: facility shut down")
	ErrNameTooLong   = errors.New("mpf: LNVC name exceeds maximum length")
	ErrEmptyName     = errors.New("mpf: LNVC name must be non-empty")
	ErrMessageTooBig = errors.New("mpf: message exceeds region capacity")
	ErrTimeout       = errors.New("mpf: receive deadline exceeded")
)

// MaxNameLen bounds LNVC names; the paper stores names in fixed-size
// shared-memory descriptor fields.
const MaxNameLen = 128

// Config parameterises Init (the paper's init(maxLNVCs, maxProcesses),
// plus the knobs its text mentions informally).
type Config struct {
	// MaxLNVCs and MaxProcesses bound the descriptor tables and size the
	// shared region, exactly as in the paper's init.
	MaxLNVCs     int
	MaxProcesses int
	// BlockSize is the message block size in bytes including the 4-byte
	// link word. The paper's experiments used 10-byte blocks; the
	// default here is 64. Figure 3's per-block overhead is directly
	// controlled by this knob.
	BlockSize int
	// BlocksPerProcess scales the region: the block pool holds
	// MaxProcesses * BlocksPerProcess blocks (default 256).
	BlocksPerProcess int
	// RegistryShards sets how many shards the LNVC name registry is
	// split across (rounded up to a power of two, default 16, capped
	// at 1024). One shard reproduces the paper's single global table
	// lock; more shards let opens and closes on distinct circuits
	// proceed without contending. Read the effective value back via
	// Facility.RegistryShards.
	RegistryShards int
	// SendPolicy selects Send's behaviour on pool exhaustion.
	SendPolicy SendPolicy
	// CreditBlocks, when positive, enables per-circuit credit-based
	// flow control: every circuit carries a receiver-granted budget of
	// this many accounted blocks (Arena.BlocksFor units), debited by
	// the send-side primitives at allocation time and re-granted as
	// receivers release the blocks. A send that would overdraw the
	// budget parks on the circuit's credit waiter list (BlockUntilFree)
	// or fails with ErrNoCredit (FailFast), so one hot circuit can no
	// longer monopolise the region and starve its tenants. Zero (the
	// default) disables the ledger entirely: the send paths are exactly
	// the uncredited ones. See credit.go and DESIGN.md §13.
	CreditBlocks int
	// ClassicChains reverts the shared region to the paper's allocation
	// layout: every block is its own chain element behind a linked free
	// list, so multi-block payloads are always fragmented. The default
	// (false) is the contiguous-span mode, which places each payload in
	// one run of adjacent blocks whenever fragmentation permits — the
	// layout that makes single-segment zero-copy views the common case.
	// ClassicChains is the copy ablation's paper-plane baseline
	// (mpfbench -copies).
	ClassicChains bool
	// ArenaMem, when non-nil, backs the shared region with
	// caller-provided memory instead of a fresh heap allocation — the
	// cross-process hook: mpf.ServeProc points it at a window of a
	// mapped memfd segment (sized via ArenaConfig(cfg).Bytes()), so
	// every block offset the facility hands out is resolvable by any
	// process that mapped the same segment. The memory must be zeroed.
	ArenaMem []byte
	// GlobalPulseMux reverts ReceiveAny to the pre-selector wakeup
	// scheme: every Send pulses one facility-wide activity channel and
	// every parked ReceiveAny waiter wakes to rescan all of its
	// circuits. It exists purely as the ablation baseline the
	// selector-scaling benchmark compares against (the thundering
	// herd); leave it off in real use. Selectors always use the
	// per-circuit waiter lists regardless of this knob.
	GlobalPulseMux bool
	// AutoHarvestMin and AutoHarvestMax, when positive, enable the
	// selector's adaptive harvest mode and bound its budget window: a
	// HarvestViews/WaitViews call with budget <= 0 sizes the round from
	// an EWMA of observed ready-set depth, clamped to [Min, Max], with
	// a per-circuit fairness cap so one hot circuit cannot consume the
	// whole round while ready siblings starve. Zero (the default)
	// leaves auto mode off, and a non-positive budget is an error —
	// exactly the pre-adaptive behaviour. See selector.go and
	// DESIGN.md §16.
	AutoHarvestMin int
	AutoHarvestMax int
	// Affinity asks the facility's drivers to pin producer/consumer
	// goroutine pairs (and spawned cross-process children) to distinct
	// CPU cores via internal/affinity. Purely advisory: platforms and
	// runners that restrict sched_setaffinity run unpinned. The flag
	// lives here so it travels with the facility config; the pinning
	// itself happens in the mpf facade (Run) and the proc server.
	Affinity bool
	// HugePages forwards to shm.Config.HugePages: ask the kernel to
	// back the block region with transparent huge pages. Advisory;
	// Arena.HugeStats reports whether the hint took.
	HugePages bool
	// Tracer, when non-nil, receives one Event per primitive invocation.
	Tracer Tracer
}

func (c *Config) fillDefaults() {
	if c.MaxLNVCs <= 0 {
		c.MaxLNVCs = 64
	}
	if c.MaxProcesses <= 0 {
		c.MaxProcesses = 32
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64
	}
	if c.BlocksPerProcess <= 0 {
		c.BlocksPerProcess = 256
	}
	if c.RegistryShards <= 0 {
		c.RegistryShards = defaultRegistryShards
	}
	c.RegistryShards = ceilPow2(c.RegistryShards)
	// Auto-harvest: setting either bound enables the mode; normalise
	// the window so Min <= Max and both are at least 1.
	if c.AutoHarvestMin > 0 || c.AutoHarvestMax > 0 {
		if c.AutoHarvestMin <= 0 {
			c.AutoHarvestMin = 1
		}
		if c.AutoHarvestMax < c.AutoHarvestMin {
			c.AutoHarvestMax = c.AutoHarvestMin
		}
	}
}

// Stats aggregates facility-wide operation counts. All fields are
// maintained with atomics and may be read concurrently via
// Facility.Stats.
type Stats struct {
	Opens, Closes         uint64
	Sends, Receives       uint64
	BytesSent, BytesRecvd uint64
	Checks                uint64
	LNVCsCreated          uint64
	LNVCsDeleted          uint64
	MessagesDropped       uint64 // discarded unread at LNVC deletion
	ReceiveWaits          uint64 // Receive calls that had to block
	// BatchSends and BatchReceives count SendBatch/ReceiveBatch calls;
	// the individual messages they move are included in Sends/Receives.
	BatchSends    uint64
	BatchReceives uint64
	// MuxWakeups counts ReceiveAny/Selector.Wait park wakeups;
	// MuxSpurious is the subset that found no deliverable message —
	// the thundering-herd cost the per-circuit waiter lists remove
	// (timeouts and shutdown aborts count as neither).
	MuxWakeups  uint64
	MuxSpurious uint64
	// RegistryAcquisitions and RegistryContended total the per-shard
	// registry lock counters (see Facility.RegistryStats for the
	// per-shard breakdown).
	RegistryAcquisitions uint64
	RegistryContended    uint64
	// The zero-copy plane's ledger. PayloadCopiesIn counts send-side
	// payload copies (user buffer → blocks: Send/SendBatch);
	// PayloadCopiesOut counts receive-side copies (blocks → user
	// buffer: Receive, TryReceive, ReceiveBatch, ReceiveAny, and
	// View.CopyTo). LoanSends counts messages committed through
	// SendLoan — zero send-side copies — and ViewReceives counts
	// messages claimed through ReceiveView/TryReceiveView — zero
	// receive-side copies. The copies ablation (mpfbench -copies)
	// asserts its zero-copy legs keep the copy counters flat.
	PayloadCopiesIn  uint64
	PayloadCopiesOut uint64
	LoanSends        uint64
	ViewReceives     uint64
	// The batched zero-copy plane's ledger. LoanBatchSends counts
	// messages committed through LoanBatch (one arena transaction and
	// one circuit lock acquisition per batch); HarvestedViews counts
	// messages claimed as pinned views inside a Selector wait round
	// (HarvestViews) — one circuit lock acquisition per ready circuit,
	// not per message. Both planes are zero-copy; neither is included
	// in LoanSends/ViewReceives, so the per-message and batched planes
	// stay separately observable (mpfbench -loanbatch compares them).
	LoanBatchSends uint64
	HarvestedViews uint64
	// The credit ledger (Config.CreditBlocks). CreditStalls counts
	// send-side parks for circuit credit — each is a send the budget
	// made wait that the uncredited facility would have admitted
	// straight into the arena. CreditsHeld is a gauge: the accounted
	// blocks currently debited across all live circuits; it returns to
	// zero at quiescence (every message reclaimed, every loan
	// resolved), which is the ledger invariant the protocol fuzzer
	// asserts.
	CreditStalls uint64
	CreditsHeld  uint64
	// The adaptive harvest (Config.AutoHarvestMin/Max).
	// HarvestAutoBudget is a gauge holding the most recent budget the
	// EWMA sized an auto round to; HarvestCapHits counts circuits
	// truncated by the per-circuit fairness cap (each hit is a hot
	// circuit that would have starved a ready sibling under the greedy
	// fixed-budget sweep).
	HarvestAutoBudget uint64
	HarvestCapHits    uint64
	// Crash robustness (the cross-process reaper/reclaimer). PeerDeaths
	// counts segment peers declared dead and reclaimed; ReclaimedViews
	// counts in-flight descriptors discarded or unpinned during those
	// reclaims (views the dead peer held or would have received);
	// ReclaimedCredits counts credit blocks refunded to the ledger; and
	// ReclaimLatencyNanos accumulates wall time spent inside reclaim —
	// divide by PeerDeaths for the mean death-to-slot-free latency.
	PeerDeaths          uint64
	ReclaimedViews      uint64
	ReclaimedCredits    uint64
	ReclaimLatencyNanos uint64
}

type statsCell struct {
	opens, closes         atomic.Uint64
	sends, receives       atomic.Uint64
	bytesSent, bytesRecvd atomic.Uint64
	checks                atomic.Uint64
	lnvcsCreated          atomic.Uint64
	lnvcsDeleted          atomic.Uint64
	messagesDropped       atomic.Uint64
	receiveWaits          atomic.Uint64
	batchSends            atomic.Uint64
	batchReceives         atomic.Uint64
	muxWakeups            atomic.Uint64
	muxSpurious           atomic.Uint64
	payloadCopiesIn       atomic.Uint64
	payloadCopiesOut      atomic.Uint64
	loanSends             atomic.Uint64
	viewReceives          atomic.Uint64
	loanBatchSends        atomic.Uint64
	harvestedViews        atomic.Uint64
	creditStalls          atomic.Uint64
	creditsHeld           atomic.Int64  // gauge: debits minus grants
	harvestAutoBudget     atomic.Uint64 // gauge: last EWMA-sized budget
	harvestCapHits        atomic.Uint64
	peerDeaths            atomic.Uint64
	reclaimedViews        atomic.Uint64
	reclaimedCredits      atomic.Uint64
	reclaimLatencyNanos   atomic.Uint64
}

func (s *statsCell) snapshot() Stats {
	return Stats{
		Opens: s.opens.Load(), Closes: s.closes.Load(),
		Sends: s.sends.Load(), Receives: s.receives.Load(),
		BytesSent: s.bytesSent.Load(), BytesRecvd: s.bytesRecvd.Load(),
		Checks:       s.checks.Load(),
		LNVCsCreated: s.lnvcsCreated.Load(), LNVCsDeleted: s.lnvcsDeleted.Load(),
		MessagesDropped:     s.messagesDropped.Load(),
		ReceiveWaits:        s.receiveWaits.Load(),
		BatchSends:          s.batchSends.Load(),
		BatchReceives:       s.batchReceives.Load(),
		MuxWakeups:          s.muxWakeups.Load(),
		MuxSpurious:         s.muxSpurious.Load(),
		PayloadCopiesIn:     s.payloadCopiesIn.Load(),
		PayloadCopiesOut:    s.payloadCopiesOut.Load(),
		LoanSends:           s.loanSends.Load(),
		ViewReceives:        s.viewReceives.Load(),
		LoanBatchSends:      s.loanBatchSends.Load(),
		HarvestedViews:      s.harvestedViews.Load(),
		CreditStalls:        s.creditStalls.Load(),
		CreditsHeld:         clampGauge(s.creditsHeld.Load()),
		HarvestAutoBudget:   s.harvestAutoBudget.Load(),
		HarvestCapHits:      s.harvestCapHits.Load(),
		PeerDeaths:          s.peerDeaths.Load(),
		ReclaimedViews:      s.reclaimedViews.Load(),
		ReclaimedCredits:    s.reclaimedCredits.Load(),
		ReclaimLatencyNanos: s.reclaimLatencyNanos.Load(),
	}
}

// clampGauge floors a torn gauge read at zero: concurrent debits and
// grants can transiently be observed out of order, but the gauge is
// never semantically negative.
func clampGauge(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// Facility is one MPF instance: the shared region, descriptor tables and
// name service. It corresponds to the state init() lays out in the
// paper's mapped shared-memory segment.
type Facility struct {
	cfg   Config
	arena *shm.Arena
	pool  *msg.Pool

	// The sharded name registry (see registry.go). Names hash across
	// shards; each shard guards its slice of the name map and its
	// descriptor free list with its own reader/writer spin lock.
	// Send/Receive/Check translate an ID to a descriptor with a single
	// atomic load of slots — no registry lock at all. Lock order: shard
	// lock before the LNVC lock; idLock is a leaf.
	shards     []registryShard
	shardMask  uint32
	slots      []atomic.Pointer[lnvc] // indexed by ID
	idLock     spinlock.TAS
	freeIDs    []ID
	contention *stats.Contention

	stop    chan struct{}
	stopped atomic.Bool

	// activity is the legacy facility-wide pulse, used only when
	// Config.GlobalPulseMux selects the ablation baseline: every Send
	// closes and replaces it, waking every parked ReceiveAny. The real
	// wakeup path is the per-circuit waiter lists (waiter.go).
	// anyCursor holds per-process round-robin scan positions for
	// ReceiveAny fairness. Both guarded by activityMu.
	activityMu spinlock.TAS
	activity   chan struct{}
	anyCursor  map[int]int

	stats statsCell
}

// ArenaConfig returns the arena carving Init derives from cfg — block
// size, block count and span mode after defaulting. Callers that back
// the region with a shared segment (Config.ArenaMem) use it to size
// the window before Init runs, and to describe the carving to
// attaching processes in the handshake.
func ArenaConfig(cfg Config) shm.Config {
	cfg.fillDefaults()
	acfg := shm.SizeFor(cfg.MaxLNVCs, cfg.MaxProcesses, cfg.BlockSize, cfg.BlocksPerProcess)
	acfg.Spans = !cfg.ClassicChains
	acfg.HugePages = cfg.HugePages
	return acfg
}

// Init creates a facility, allocating the shared region and initialising
// the descriptor free lists (paper §2, init).
func Init(cfg Config) (*Facility, error) {
	cfg.fillDefaults()
	if cfg.BlockSize < shm.MinBlockSize {
		return nil, fmt.Errorf("mpf: block size %d below minimum %d", cfg.BlockSize, shm.MinBlockSize)
	}
	acfg := ArenaConfig(cfg)
	var arena *shm.Arena
	var err error
	if cfg.ArenaMem != nil {
		arena, err = shm.NewAt(acfg, cfg.ArenaMem)
	} else {
		arena, err = shm.New(acfg)
	}
	if err != nil {
		return nil, err
	}
	f := &Facility{
		cfg:        cfg,
		arena:      arena,
		pool:       msg.NewPool(arena, cfg.MaxProcesses*4),
		shards:     make([]registryShard, cfg.RegistryShards),
		shardMask:  uint32(cfg.RegistryShards - 1),
		slots:      make([]atomic.Pointer[lnvc], cfg.MaxLNVCs),
		contention: stats.NewContention(cfg.RegistryShards),
		stop:       make(chan struct{}),
	}
	perShard := cfg.MaxLNVCs/cfg.RegistryShards + 1
	for i := range f.shards {
		f.shards[i].names = make(map[string]ID, perShard)
	}
	f.freeIDs = make([]ID, 0, cfg.MaxLNVCs)
	for id := cfg.MaxLNVCs - 1; id >= 0; id-- {
		f.freeIDs = append(f.freeIDs, ID(id))
	}
	return f, nil
}

// Shutdown tears the facility down: every blocked Receive or Send returns
// ErrShutdown and all subsequent operations fail. Shutdown is idempotent.
func (f *Facility) Shutdown() {
	if f.stopped.Swap(true) {
		return
	}
	close(f.stop)
	// Wake every receiver blocked on an LNVC condition variable. Slots
	// are read with atomic loads; a descriptor recycled concurrently
	// receives a harmless spurious broadcast (waiters always re-check
	// their predicate).
	for i := range f.slots {
		if l := f.slots[i].Load(); l != nil {
			l.lock.Lock()
			l.cond.Broadcast()
			l.lock.Unlock()
		}
	}
}

// Arena exposes the backing region for tests and the benchmark harness.
func (f *Facility) Arena() *shm.Arena { return f.arena }

// Stats returns a snapshot of the facility's operation counters,
// including the registry lock totals (per-shard breakdown via
// RegistryStats).
func (f *Facility) Stats() Stats {
	st := f.stats.snapshot()
	t := f.contention.Total()
	st.RegistryAcquisitions = t.Acquisitions
	st.RegistryContended = t.Contended
	return st
}

// NotePeerReclaim records the outcome of one dead-peer reclamation in
// the facility's counters and trace: views discarded or unpinned,
// credit blocks refunded, and the wall time from death detection to
// the slot returning to free. Called by the cross-process server's
// reclaimer (mpf.ProcServer); it lives here because the counters do.
func (f *Facility) NotePeerReclaim(pid int, views, credits uint64, d time.Duration) {
	f.stats.peerDeaths.Add(1)
	f.stats.reclaimedViews.Add(views)
	f.stats.reclaimedCredits.Add(credits)
	if d > 0 {
		f.stats.reclaimLatencyNanos.Add(uint64(d.Nanoseconds()))
	}
	f.trace(Event{Op: OpPeerReclaim, PID: pid, Bytes: int(views + credits)})
}

// Config returns the effective (default-filled) configuration.
func (f *Facility) Config() Config { return f.cfg }

func (f *Facility) checkPID(pid int) error {
	if pid < 0 || pid >= f.cfg.MaxProcesses {
		return fmt.Errorf("%w: %d (max %d)", ErrBadProcess, pid, f.cfg.MaxProcesses)
	}
	return nil
}

func checkName(name string) error {
	if name == "" {
		return ErrEmptyName
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("%w: %q is %d bytes (max %d)", ErrNameTooLong, name[:16]+"…", len(name), MaxNameLen)
	}
	return nil
}

// lookup translates an ID to its descriptor with one atomic load — the
// Send/Receive hot path takes no registry lock at all.
func (f *Facility) lookup(id ID) (*lnvc, error) {
	if id < 0 || int(id) >= len(f.slots) {
		return nil, fmt.Errorf("%w: id %d", ErrBadLNVC, id)
	}
	l := f.slots[id].Load()
	if l == nil {
		return nil, fmt.Errorf("%w: id %d", ErrBadLNVC, id)
	}
	return l, nil
}

// LNVCByName returns the ID bound to name, for introspection.
func (f *Facility) LNVCByName(name string) (ID, bool) {
	si := f.shardIndex(name)
	s := f.rlockShard(si)
	defer s.lock.RUnlock()
	id, ok := s.names[name]
	return id, ok
}

// LNVCCount returns the number of live LNVCs.
func (f *Facility) LNVCCount() int {
	n := 0
	for i := range f.shards {
		s := f.rlockShard(uint32(i))
		n += len(s.names)
		s.lock.RUnlock()
	}
	return n
}
