package core

// The cross-process descriptor table. The paper's MPF kept all of its
// descriptors inside the mapped region; this port's LNVC descriptors
// are Go structs full of pointers and cannot leave the serving
// process, so the process boundary gets its own table — a small,
// fixed-layout structure inside the segment that records, per attached
// peer process: an ownership state word, an attach generation, the
// peer's pid, and the segment offsets of its two SPSC descriptor rings
// (down = parent→child, up = child→parent). Everything in it is
// offsets and atomic words; no Go pointer crosses the boundary.
//
// The table header carries the same protocol generation the attach
// handshake quotes. AttachSegTable refuses a mismatch, so a child
// holding a stale handshake (a recycled segment, a restarted parent)
// fails loudly at attach instead of misreading a layout it was never
// told about.
//
// Layout (all offsets relative to the table base, 64-aligned):
//
//	+0   magic, version
//	+8   generation (uint64)
//	+16  nSlots, ringCap (uint32 each)
//	+64  slot 0, +128 slot 1, … (64 bytes per slot):
//	       +0  state    free(0)/attached(1)/detached(2)/dead(3) in the
//	            low byte, the slot's cumulative attach generation in
//	            the high 24 bits — one word, so every transition is one
//	            CAS that names both the state AND the incarnation it
//	            applies to
//	       +8  pid      attached peer's pid (informational)
//	       +16 downOff  segment offset of the parent→child ring
//	       +24 upOff    segment offset of the child→parent ring
//	+…   the rings themselves, two per slot
//
// Slot claiming is one CAS on the state word, so peers may attach and
// detach concurrently with each other and with the serving facility's
// allocator traffic — TestSegmentAttachChurnRace drives exactly that.
//
// Crash robustness (table version 2) rides on the packed generation:
// a reaper that decides slot i's owner died marks it dead with
// MarkDead(i, gen) — a CAS from (attached|gen) to (dead|gen) that can
// only ever hit the incarnation the reaper observed. If the owner
// detached and a new peer claimed the slot in the meantime, the
// generation moved and the CAS fails harmlessly: a recycled OS pid can
// never get a live newcomer reclaimed out from under it. Dead slots
// refuse Claim until the reclaimer finishes tearing down the
// incarnation's in-flight state and releases the slot with
// FreeSlot(i, gen).

import (
	"errors"
	"fmt"

	"repro/internal/shm"
)

// Slot states (the low byte of the slot state word), CAS-transitioned
// free→attached→{detached,dead}→…; dead→free is the reclaimer's
// transition, everything else may claim free or detached slots.
const (
	SlotFree     uint32 = 0
	SlotAttached uint32 = 1
	SlotDetached uint32 = 2
	// SlotDead marks a slot whose owner was declared dead by a reaper;
	// it refuses claims until reclamation completes (FreeSlot).
	SlotDead uint32 = 3
)

const (
	segTableMagic = 0x5458504D // "MPXT"
	// segTableVersion 2: the slot state word packs the cumulative
	// attach generation into its high 24 bits (it used to live in a
	// separate word), making dead-peer marking a single ABA-safe CAS.
	segTableVersion = 2
	segTableHdr     = 64
	segSlotBytes    = 64

	slotOffState = 0
	slotOffPid   = 8
	slotOffDown  = 16
	slotOffUp    = 24

	// slotStateMask isolates the state from the packed word; the attach
	// generation occupies the remaining 24 bits (wrap-around after 16M
	// attaches of one slot is acceptable ABA exposure).
	slotStateMask = 0xFF
	slotGenShift  = 8
)

// ErrGenerationMismatch is returned when a peer attaches with a
// generation that does not match the table's — a stale handshake
// against a recycled or restarted segment.
var ErrGenerationMismatch = errors.New("mpf: segment table generation mismatch")

// ErrNoFreeSlot is returned by ClaimAny when every slot is attached.
var ErrNoFreeSlot = errors.New("mpf: no free segment table slot")

// ErrSlotDead is returned by Claim when the slot is held mid-reclaim:
// its previous owner died and the reclaimer has not freed it yet.
var ErrSlotDead = errors.New("mpf: segment table slot held by dead-peer reclamation")

// SegTable is a process-local handle onto the in-segment table. Every
// attached process holds its own handle over its own mapping.
type SegTable struct {
	seg     *shm.Segment
	base    int64
	nSlots  int
	ringCap int
	gen     uint64
}

// segRingSpace is one ring's 64-aligned footprint.
func segRingSpace(ringCap int) int64 { return shm.AlignUp(shm.RingBytes(ringCap)) }

// SegTableBytes returns the full table footprint — header, slots and
// both rings of every slot — for segment layout planning.
func SegTableBytes(nSlots, ringCap int) int64 {
	return segTableHdr + int64(nSlots)*segSlotBytes + int64(nSlots)*2*segRingSpace(ringCap)
}

// InitSegTable formats a table (and all of its rings) at base inside a
// fresh, zeroed region of the segment, stamping it with generation.
func InitSegTable(seg *shm.Segment, base int64, nSlots, ringCap int, generation uint64) (*SegTable, error) {
	if nSlots < 1 || nSlots > 1<<16 {
		return nil, fmt.Errorf("mpf: segment table with %d slots", nSlots)
	}
	if base < 0 || base%64 != 0 {
		return nil, fmt.Errorf("mpf: segment table base %d not 64-aligned", base)
	}
	if base+SegTableBytes(nSlots, ringCap) > seg.Size() {
		return nil, fmt.Errorf("mpf: segment table of %d bytes at %d exceeds segment of %d",
			SegTableBytes(nSlots, ringCap), base, seg.Size())
	}
	t := &SegTable{seg: seg, base: base, nSlots: nSlots, ringCap: ringCap, gen: generation}
	ringsBase := base + segTableHdr + int64(nSlots)*segSlotBytes
	for i := 0; i < nSlots; i++ {
		down := ringsBase + int64(i)*2*segRingSpace(ringCap)
		up := down + segRingSpace(ringCap)
		if _, err := shm.InitRing(seg, down, ringCap); err != nil {
			return nil, err
		}
		if _, err := shm.InitRing(seg, up, ringCap); err != nil {
			return nil, err
		}
		slot := t.slotBase(i)
		seg.Atomic64(slot + slotOffDown).Store(uint64(down))
		seg.Atomic64(slot + slotOffUp).Store(uint64(up))
		seg.Atomic32(slot + slotOffState).Store(SlotFree)
	}
	seg.Atomic64(base + 8).Store(generation)
	seg.Atomic32(base + 16).Store(uint32(nSlots))
	seg.Atomic32(base + 20).Store(uint32(ringCap))
	seg.Atomic32(base + 4).Store(segTableVersion)
	// Magic last: an attacher that races formatting sees no table
	// rather than a half-formatted one.
	seg.Atomic32(base + 0).Store(segTableMagic)
	return t, nil
}

// AttachSegTable binds to a table formatted by another process's
// InitSegTable, verifying magic, version and the protocol generation
// from the attach handshake.
func AttachSegTable(seg *shm.Segment, base int64, generation uint64) (*SegTable, error) {
	if base < 0 || base%64 != 0 || base+segTableHdr > seg.Size() {
		return nil, fmt.Errorf("mpf: segment table base %d invalid for segment of %d bytes", base, seg.Size())
	}
	if seg.Atomic32(base+0).Load() != segTableMagic {
		return nil, fmt.Errorf("mpf: no segment table at offset %d", base)
	}
	if v := seg.Atomic32(base + 4).Load(); v != segTableVersion {
		return nil, fmt.Errorf("mpf: segment table version %d, want %d", v, segTableVersion)
	}
	if g := seg.Atomic64(base + 8).Load(); g != generation {
		return nil, fmt.Errorf("mpf: table stamped generation %d, handshake says %d: %w",
			g, generation, ErrGenerationMismatch)
	}
	nSlots := int(seg.Atomic32(base + 16).Load())
	ringCap := int(seg.Atomic32(base + 20).Load())
	if nSlots < 1 || nSlots > 1<<16 || base+SegTableBytes(nSlots, ringCap) > seg.Size() {
		return nil, fmt.Errorf("mpf: segment table at %d has corrupt geometry (%d slots, ring cap %d)",
			base, nSlots, ringCap)
	}
	return &SegTable{seg: seg, base: base, nSlots: nSlots, ringCap: ringCap, gen: generation}, nil
}

func (t *SegTable) slotBase(i int) int64 { return t.base + segTableHdr + int64(i)*segSlotBytes }

func (t *SegTable) checkSlot(i int) {
	if i < 0 || i >= t.nSlots {
		panic(fmt.Sprintf("mpf: segment table slot %d of %d", i, t.nSlots))
	}
}

// NSlots returns the table's slot count.
func (t *SegTable) NSlots() int { return t.nSlots }

// RingCap returns the per-direction ring capacity in records.
func (t *SegTable) RingCap() int { return t.ringCap }

// Generation returns the protocol generation the table was stamped with.
func (t *SegTable) Generation() uint64 { return t.gen }

// Claim takes ownership of slot i for a peer with the given pid: one
// CAS from free or detached to attached, bumping the slot's attach
// generation in the same word. A slot already attached is refused;
// a dead slot is refused with ErrSlotDead until reclamation frees it.
func (t *SegTable) Claim(i int, pid uint32) error {
	_, err := t.ClaimGen(i, pid)
	return err
}

// ClaimGen is Claim returning the attach generation the claim was
// stamped with — the number peers bake into in-flight ring-record tags
// so records from a dead previous incarnation can be told apart.
func (t *SegTable) ClaimGen(i int, pid uint32) (uint32, error) {
	t.checkSlot(i)
	state := t.seg.Atomic32(t.slotBase(i) + slotOffState)
	for {
		w := state.Load()
		switch w & slotStateMask {
		case SlotAttached:
			return 0, fmt.Errorf("mpf: segment table slot %d already attached", i)
		case SlotDead:
			return 0, fmt.Errorf("mpf: segment table slot %d: %w", i, ErrSlotDead)
		}
		gen := (w>>slotGenShift + 1) & (1<<24 - 1)
		if state.CompareAndSwap(w, SlotAttached|gen<<slotGenShift) {
			t.seg.Atomic32(t.slotBase(i) + slotOffPid).Store(pid)
			return gen, nil
		}
	}
}

// ClaimAny claims the first available slot, returning its index.
func (t *SegTable) ClaimAny(pid uint32) (int, error) {
	for i := 0; i < t.nSlots; i++ {
		if s := t.SlotState(i); s == SlotAttached || s == SlotDead {
			continue
		}
		if err := t.Claim(i, pid); err == nil {
			return i, nil
		}
	}
	return -1, ErrNoFreeSlot
}

// Detach releases slot i: one CAS from attached to detached preserving
// the generation. The slot's rings stay formatted (indices and queued
// records intact), so a future peer can claim the slot again. A slot
// already marked dead is left alone — a reaper got there first and the
// reclaimer owns the teardown; the late detach must not resurrect it.
func (t *SegTable) Detach(i int) {
	t.checkSlot(i)
	state := t.seg.Atomic32(t.slotBase(i) + slotOffState)
	for {
		w := state.Load()
		if w&slotStateMask != SlotAttached {
			return
		}
		if state.CompareAndSwap(w, w&^slotStateMask|SlotDetached) {
			return
		}
	}
}

// MarkDead transitions slot i from attached to dead — but only the
// incarnation the caller observed: the CAS binds both state and attach
// generation, so if the owner detached and somebody else claimed the
// slot (possibly with the dead owner's recycled pid), the generation
// moved and the marking fails. Returns whether the slot is now dead by
// this call.
func (t *SegTable) MarkDead(i int, gen uint32) bool {
	t.checkSlot(i)
	return t.seg.Atomic32(t.slotBase(i)+slotOffState).
		CompareAndSwap(SlotAttached|gen<<slotGenShift, SlotDead|gen<<slotGenShift)
}

// FreeSlot releases a dead slot back to free once reclamation is done,
// again bound to the generation MarkDead named. Returns whether the
// release happened.
func (t *SegTable) FreeSlot(i int, gen uint32) bool {
	t.checkSlot(i)
	return t.seg.Atomic32(t.slotBase(i)+slotOffState).
		CompareAndSwap(SlotDead|gen<<slotGenShift, SlotFree|gen<<slotGenShift)
}

// SlotState returns slot i's current ownership state.
func (t *SegTable) SlotState(i int) uint32 {
	t.checkSlot(i)
	return t.seg.Atomic32(t.slotBase(i)+slotOffState).Load() & slotStateMask
}

// SlotGen returns slot i's current attach generation — bumped by every
// Claim, preserved across detach, death and reclamation.
func (t *SegTable) SlotGen(i int) uint32 {
	t.checkSlot(i)
	return t.seg.Atomic32(t.slotBase(i)+slotOffState).Load() >> slotGenShift
}

// SlotStateGen reads state and generation from the one atomic word —
// the consistent snapshot reapers base a MarkDead decision on.
func (t *SegTable) SlotStateGen(i int) (state, gen uint32) {
	t.checkSlot(i)
	w := t.seg.Atomic32(t.slotBase(i) + slotOffState).Load()
	return w & slotStateMask, w >> slotGenShift
}

// SlotPid returns the pid recorded by the slot's most recent Claim.
func (t *SegTable) SlotPid(i int) uint32 {
	t.checkSlot(i)
	return t.seg.Atomic32(t.slotBase(i) + slotOffPid).Load()
}

// Attaches returns slot i's cumulative attach count (its generation).
func (t *SegTable) Attaches(i int) uint32 { return t.SlotGen(i) }

// DownRing attaches to slot i's parent→child descriptor ring.
func (t *SegTable) DownRing(i int) (*shm.XRing, error) {
	t.checkSlot(i)
	return shm.AttachRing(t.seg, int64(t.seg.Atomic64(t.slotBase(i)+slotOffDown).Load()))
}

// UpRing attaches to slot i's child→parent descriptor ring.
func (t *SegTable) UpRing(i int) (*shm.XRing, error) {
	t.checkSlot(i)
	return shm.AttachRing(t.seg, int64(t.seg.Atomic64(t.slotBase(i)+slotOffUp).Load()))
}

// ReformatRings re-initialises both of slot i's rings in place —
// indices zeroed, closed flag cleared, stale records unreachable. The
// reclamation step that guarantees a slot's next claimant starts from
// clean rings whatever its dead predecessor left queued. Only safe
// while the slot is held dead (no live peer owns either ring end).
func (t *SegTable) ReformatRings(i int) error {
	t.checkSlot(i)
	down := int64(t.seg.Atomic64(t.slotBase(i) + slotOffDown).Load())
	up := int64(t.seg.Atomic64(t.slotBase(i) + slotOffUp).Load())
	if _, err := shm.InitRing(t.seg, down, t.ringCap); err != nil {
		return err
	}
	_, err := shm.InitRing(t.seg, up, t.ringCap)
	return err
}
