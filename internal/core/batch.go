package core

import (
	"fmt"
	"time"

	"repro/internal/msg"
)

// Batched send and receive. The single-message primitives pay their
// fixed costs — registry lookup, LNVC lock acquisition, condition
// broadcast, activity pulse, arena free-list lock — once per message.
// The batch primitives pay them once per *batch*: SendBatch allocates
// every payload block in one arena transaction (shm.Arena.AllocChains),
// links the whole chain of messages into the FIFO under one LNVC lock
// acquisition, and wakes waiters once; ReceiveBatch claims as many
// queued messages as the caller has buffers under one acquisition and
// copies them out together. At high concurrency this is what flattens
// the contention curves the paper's Figures 4-6 show bending over (see
// DESIGN.md §6).

// SendBatch transfers every buffer in bufs to the LNVC as one message
// each, atomically with respect to other senders: the batch occupies
// consecutive sequence numbers and no other sender's message interleaves
// it. An empty batch validates the connection and returns. Either the
// whole batch is enqueued or none of it is.
func (f *Facility) SendBatch(pid int, id ID, bufs [][]byte) error {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	err := f.sendBatch(pid, id, bufs, total)
	f.trace(Event{Op: OpSendBatch, PID: pid, LNVC: id, Bytes: total, Err: err})
	return err
}

func (f *Facility) sendBatch(pid int, id ID, bufs [][]byte, total int) error {
	if err := f.checkPID(pid); err != nil {
		return err
	}
	if f.stopped.Load() {
		return ErrShutdown
	}
	blocks := 0
	for _, b := range bufs {
		blocks += f.arena.BlocksFor(len(b))
	}
	if blocks > f.arena.NumBlocks() {
		return fmt.Errorf("%w: batch of %d bytes in %d blocks, region holds %d blocks",
			ErrMessageTooBig, total, blocks, f.arena.NumBlocks())
	}
	l, err := f.lookup(id)
	if err != nil {
		return err
	}
	// Fail fast before the (possibly blocking) allocation, then recheck
	// under the lock after it, exactly as the single-message send does.
	// With credit configured the whole batch's demand is debited in one
	// acquisition — batch-level admission, mirroring the batch's single
	// arena transaction below — and the connection check rides along
	// with the debit.
	var creditGen uint64
	creditBlocks := 0
	if f.cfg.CreditBlocks > 0 && len(bufs) > 0 {
		creditBlocks = blocks
		var err error
		if creditGen, err = f.acquireCredit(l, id, pid, creditBlocks); err != nil {
			return err
		}
	} else {
		l.lock.Lock()
		if f.slots[id].Load() != l || l.sends[pid] == nil {
			l.lock.Unlock()
			return fmt.Errorf("%w: send on id %d by process %d", ErrNotConnected, id, pid)
		}
		l.lock.Unlock()
	}
	if len(bufs) == 0 {
		return nil
	}

	// One arena transaction for the whole batch; the copies into the
	// blocks happen outside the LNVC lock.
	msgs, buildErr := f.pool.BuildBatch(pid, bufs, f.cfg.SendPolicy == BlockUntilFree, f.stop)
	if buildErr != nil {
		f.refundCredit(l, creditGen, creditBlocks)
		if f.stopped.Load() {
			return ErrShutdown
		}
		return fmt.Errorf("%w: %v", ErrNoMemory, buildErr)
	}

	l.lock.Lock()
	// Re-validate both the connection and the ID binding: the circuit
	// may have been deleted — and its descriptor recycled for another
	// name through the shard free list — while the copies ran.
	if f.slots[id].Load() != l || l.sends[pid] == nil {
		l.lock.Unlock()
		for _, m := range msgs {
			f.pool.Release(m)
		}
		f.refundCredit(l, creditGen, creditBlocks)
		return fmt.Errorf("%w: send on id %d by process %d", ErrNotConnected, id, pid)
	}
	for _, m := range msgs {
		m.Pending = l.nBcast
		m.FCFSNeeded = true
		l.queue.Enqueue(m)
	}
	l.cond.Broadcast() // one wakeup for the whole batch
	l.wakeWaitersLocked()
	l.lock.Unlock()
	if f.cfg.GlobalPulseMux {
		f.pulseActivity()
	}

	f.stats.sends.Add(uint64(len(msgs)))
	f.stats.batchSends.Add(1)
	f.stats.bytesSent.Add(uint64(total))
	f.stats.payloadCopiesIn.Add(uint64(len(msgs)))
	return nil
}

// ReceiveBatch blocks until at least one message is available for pid's
// connection, then consumes as many as are available — at most
// len(bufs), one message per buffer, each truncated to its buffer — in
// one LNVC lock acquisition. It returns the per-message byte counts; the
// length of the returned slice is the number of messages consumed.
func (f *Facility) ReceiveBatch(pid int, id ID, bufs [][]byte) ([]int, error) {
	ns, err := f.receiveBatch(pid, id, bufs, nil)
	f.trace(Event{Op: OpReceiveBatch, PID: pid, LNVC: id, Bytes: sumInts(ns), Err: err})
	return ns, err
}

// ReceiveBatchDeadline is ReceiveBatch with a bound on the wait for the
// first message; it returns ErrTimeout if none arrives in time. Once one
// message is available the batch never waits for more.
func (f *Facility) ReceiveBatchDeadline(pid int, id ID, bufs [][]byte, d time.Duration) ([]int, error) {
	if d <= 0 {
		return nil, fmt.Errorf("%w: non-positive deadline %v", ErrTimeout, d)
	}
	deadline := time.Now().Add(d)
	ns, err := f.receiveBatch(pid, id, bufs, &deadline)
	f.trace(Event{Op: OpReceiveBatch, PID: pid, LNVC: id, Bytes: sumInts(ns), Err: err})
	return ns, err
}

func (f *Facility) receiveBatch(pid int, id ID, bufs [][]byte, deadline *time.Time) ([]int, error) {
	if err := f.checkPID(pid); err != nil {
		return nil, err
	}
	l, err := f.lookup(id)
	if err != nil {
		return nil, err
	}
	l.lock.Lock()
	d := l.recvs[pid]
	if f.slots[id].Load() != l || d == nil {
		l.lock.Unlock()
		return nil, fmt.Errorf("%w: receive on id %d by process %d", ErrNotConnected, id, pid)
	}
	if len(bufs) == 0 {
		l.lock.Unlock()
		return nil, nil
	}
	waited := false
	var timer *time.Timer
	timedOut := false
	if deadline != nil {
		timer = time.AfterFunc(time.Until(*deadline), func() {
			l.lock.Lock()
			timedOut = true
			l.cond.Broadcast()
			l.lock.Unlock()
		})
		defer timer.Stop()
	}
	for {
		if f.stopped.Load() {
			l.lock.Unlock()
			return nil, ErrShutdown
		}
		if l.recvs[pid] != d {
			// Connection closed while parked; see receive.
			l.lock.Unlock()
			return nil, fmt.Errorf("%w: receive on id %d by process %d", ErrNotConnected, id, pid)
		}
		if l.availableLocked(d) != nil {
			break
		}
		if deadline != nil && (timedOut || !time.Now().Before(*deadline)) {
			l.lock.Unlock()
			return nil, ErrTimeout
		}
		waited = true
		l.cond.Wait()
	}
	if waited {
		f.stats.receiveWaits.Add(1)
	}

	// Claim every deliverable message (up to the buffer count) under the
	// one lock hold, pinning each; the copies happen outside the lock.
	claimed := make([]*msg.Message, 0, len(bufs))
	for len(claimed) < len(bufs) {
		m := l.availableLocked(d)
		if m == nil {
			break
		}
		l.claimLocked(d, m)
		claimed = append(claimed, m)
	}
	l.lock.Unlock()

	ns := make([]int, len(claimed))
	total := 0
	for i, m := range claimed {
		ns[i] = f.pool.Extract(m, bufs[i])
		total += ns[i]
	}
	f.stats.payloadCopiesOut.Add(uint64(len(claimed)))

	f.unpinAll(l, claimed)

	f.stats.receives.Add(uint64(len(claimed)))
	f.stats.batchReceives.Add(1)
	f.stats.bytesRecvd.Add(uint64(total))
	return ns, nil
}

func sumInts(ns []int) int {
	t := 0
	for _, n := range ns {
		t += n
	}
	return t
}
