package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func newFac(t *testing.T) *Facility {
	t.Helper()
	f, err := Init(Config{MaxLNVCs: 16, MaxProcesses: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	return f
}

func TestInitDefaults(t *testing.T) {
	f, err := Init(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	cfg := f.Config()
	if cfg.MaxLNVCs <= 0 || cfg.MaxProcesses <= 0 || cfg.BlockSize <= 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}

func TestInitRejectsTinyBlocks(t *testing.T) {
	if _, err := Init(Config{BlockSize: 3}); err == nil {
		t.Fatal("block size 3 accepted")
	}
}

func TestOpenSendCreatesLNVC(t *testing.T) {
	f := newFac(t)
	id, err := f.OpenSend(0, "pipe")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := f.LNVCByName("pipe"); !ok || got != id {
		t.Fatalf("LNVCByName = %d,%v, want %d,true", got, ok, id)
	}
	if f.LNVCCount() != 1 {
		t.Fatalf("LNVCCount = %d", f.LNVCCount())
	}
	info, err := f.LNVCInfo(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Senders != 1 || info.FCFSRecvs != 0 || info.BcastRecvs != 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestOpenReceiveJoinsSameLNVC(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "pipe")
	rid, err := f.OpenReceive(1, "pipe", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if sid != rid {
		t.Fatalf("send id %d != receive id %d for same name", sid, rid)
	}
}

func TestLoopback(t *testing.T) {
	// The paper's base benchmark: a single process holds both a send and
	// a receive connection on one LNVC.
	f := newFac(t)
	sid, err := f.OpenSend(0, "loop")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := f.OpenReceive(0, "loop", FCFS)
	if err != nil {
		t.Fatalf("same process opening receive after send: %v", err)
	}
	msg := []byte("around the loop")
	if err := f.Send(0, sid, msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := f.Receive(0, rid, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("received %q, want %q", buf[:n], msg)
	}
}

func TestValidation(t *testing.T) {
	f := newFac(t)
	id, _ := f.OpenSend(0, "x")

	cases := []struct {
		name string
		err  error
		want error
	}{
		{"pid negative", func() error { _, e := f.OpenSend(-1, "a"); return e }(), ErrBadProcess},
		{"pid too big", func() error { _, e := f.OpenSend(20, "a"); return e }(), ErrBadProcess},
		{"empty name", func() error { _, e := f.OpenSend(0, ""); return e }(), ErrEmptyName},
		{"long name", func() error { _, e := f.OpenSend(0, string(make([]byte, 200))); return e }(), ErrNameTooLong},
		{"bad id send", f.Send(0, 99, nil), ErrBadLNVC},
		{"bad id close", f.CloseSend(0, 99), ErrBadLNVC},
		{"negative id", f.Send(0, -1, nil), ErrBadLNVC},
		{"not connected send", f.Send(1, id, nil), ErrNotConnected},
		{"not connected close recv", f.CloseReceive(0, id), ErrNotConnected},
		{"dup send open", func() error { _, e := f.OpenSend(0, "x"); return e }(), ErrAlreadyOpen},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, c.err, c.want)
		}
	}

	if _, err := f.OpenReceive(0, "x", Protocol(9)); err == nil {
		t.Error("unknown protocol accepted")
	}

	// One receive connection per process per LNVC, regardless of protocol
	// (the paper's FCFS/BROADCAST mixing rule).
	if _, err := f.OpenReceive(1, "x", FCFS); err != nil {
		t.Fatal(err)
	}
	if _, err := f.OpenReceive(1, "x", Broadcast); !errors.Is(err, ErrAlreadyOpen) {
		t.Errorf("mixed-protocol second open: err = %v, want ErrAlreadyOpen", err)
	}
	if _, err := f.OpenReceive(1, "x", FCFS); !errors.Is(err, ErrAlreadyOpen) {
		t.Errorf("same-protocol second open: err = %v, want ErrAlreadyOpen", err)
	}
}

func TestLNVCTableFull(t *testing.T) {
	f := newFac(t) // MaxLNVCs: 16
	for i := 0; i < 16; i++ {
		if _, err := f.OpenSend(0, fmt.Sprintf("c%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.OpenSend(0, "one-too-many"); !errors.Is(err, ErrTooManyLNVCs) {
		t.Fatalf("err = %v, want ErrTooManyLNVCs", err)
	}
	// Deleting one frees a slot.
	id, _ := f.LNVCByName("c3")
	if err := f.CloseSend(0, id); err != nil {
		t.Fatal(err)
	}
	if _, err := f.OpenSend(0, "now-it-fits"); err != nil {
		t.Fatalf("open after delete: %v", err)
	}
}

func TestFCFSSingleDelivery(t *testing.T) {
	// With N FCFS receivers, each message is delivered exactly once.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "work")
	const nRecv, nMsgs = 4, 100
	rids := make([]ID, nRecv)
	for i := 0; i < nRecv; i++ {
		rids[i], _ = f.OpenReceive(1+i, "work", FCFS)
	}
	for i := 0; i < nMsgs; i++ {
		if err := f.Send(0, sid, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := make(chan byte, nMsgs)
	done := make(chan int, nRecv)
	for i := 0; i < nRecv; i++ {
		go func(pid int, rid ID) {
			buf := make([]byte, 4)
			count := 0
			for {
				ok, err := f.CheckReceive(pid, rid)
				if err != nil || !ok {
					break
				}
				n, err := f.Receive(pid, rid, buf)
				if err != nil {
					break
				}
				if n != 1 {
					t.Errorf("n = %d, want 1", n)
				}
				got <- buf[0]
				count++
			}
			done <- count
		}(1+i, rids[i])
	}
	total := 0
	for i := 0; i < nRecv; i++ {
		total += <-done
	}
	// check_receive is advisory for FCFS, so a receiver may exit while
	// messages remain; drain the remainder synchronously.
	buf := make([]byte, 4)
	for {
		ok, _ := f.CheckReceive(1, rids[0])
		if !ok {
			break
		}
		n, err := f.Receive(1, rids[0], buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 1 {
			got <- buf[0]
			total++
		}
	}
	if total != nMsgs {
		t.Fatalf("delivered %d messages, want %d", total, nMsgs)
	}
	close(got)
	seen := make(map[byte]int)
	for b := range got {
		seen[b]++
	}
	for i := 0; i < nMsgs; i++ {
		if seen[byte(i)] != 1 {
			t.Fatalf("message %d delivered %d times, want exactly 1", i, seen[byte(i)])
		}
	}
}

func TestFCFSOrderingSingleReceiver(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "seq")
	rid, _ := f.OpenReceive(1, "seq", FCFS)
	for i := 0; i < 50; i++ {
		if err := f.Send(0, sid, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 1)
	for i := 0; i < 50; i++ {
		if _, err := f.Receive(1, rid, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, buf[0])
		}
	}
}

func TestBroadcastAllReceive(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "news")
	const nRecv, nMsgs = 5, 40
	rids := make([]ID, nRecv)
	for i := 0; i < nRecv; i++ {
		rids[i], _ = f.OpenReceive(1+i, "news", Broadcast)
	}
	for i := 0; i < nMsgs; i++ {
		if err := f.Send(0, sid, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < nRecv; r++ {
		buf := make([]byte, 1)
		for i := 0; i < nMsgs; i++ {
			n, err := f.Receive(1+r, rids[r], buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != 1 || buf[0] != byte(i) {
				t.Fatalf("receiver %d message %d: got %d bytes value %d", r, i, n, buf[0])
			}
		}
		if ok, _ := f.CheckReceive(1+r, rids[r]); ok {
			t.Fatalf("receiver %d sees extra messages", r)
		}
	}
	// Every message consumed by all receivers: all blocks recycled.
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("blocks leaked: %d free of %d", free, total)
	}
}

func TestMixedFCFSAndBroadcast(t *testing.T) {
	// A message goes to every BROADCAST receiver and exactly one FCFS
	// receiver (paper §1).
	f := newFac(t)
	sid, _ := f.OpenSend(0, "mix")
	fid1, _ := f.OpenReceive(1, "mix", FCFS)
	fid2, _ := f.OpenReceive(2, "mix", FCFS)
	bid1, _ := f.OpenReceive(3, "mix", Broadcast)
	bid2, _ := f.OpenReceive(4, "mix", Broadcast)

	const nMsgs = 30
	for i := 0; i < nMsgs; i++ {
		if err := f.Send(0, sid, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Broadcast receivers each see the complete stream, in order.
	for r, rid := range []ID{bid1, bid2} {
		buf := make([]byte, 1)
		for i := 0; i < nMsgs; i++ {
			if _, err := f.Receive(3+r, rid, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != byte(i) {
				t.Fatalf("broadcast receiver %d: message %d got %d", r, i, buf[0])
			}
		}
	}
	// FCFS receivers partition the stream.
	seen := make(map[byte]int)
	buf := make([]byte, 1)
	for {
		ok, _ := f.CheckReceive(1, fid1)
		if !ok {
			break
		}
		f.Receive(1, fid1, buf)
		seen[buf[0]]++
		// Alternate to exercise both FCFS connections.
		if ok, _ := f.CheckReceive(2, fid2); ok {
			f.Receive(2, fid2, buf)
			seen[buf[0]]++
		}
	}
	for i := 0; i < nMsgs; i++ {
		if seen[byte(i)] != 1 {
			t.Fatalf("FCFS delivery of message %d: %d times", i, seen[byte(i)])
		}
	}
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("blocks leaked: %d free of %d", free, total)
	}
}

func TestFCFSSubStreamOrdering(t *testing.T) {
	// Paper §3.1: the sequence-preserving LNVC forces a time-ordering on
	// the sub-stream an FCFS receiver sees.
	f := newFac(t)
	sid, _ := f.OpenSend(0, "sub")
	r1, _ := f.OpenReceive(1, "sub", FCFS)
	r2, _ := f.OpenReceive(2, "sub", FCFS)
	for i := 0; i < 40; i++ {
		f.Send(0, sid, []byte{byte(i)})
	}
	buf := make([]byte, 1)
	last1, last2 := -1, -1
	for i := 0; i < 20; i++ {
		f.Receive(1, r1, buf)
		if int(buf[0]) <= last1 {
			t.Fatalf("receiver 1 sub-stream out of order: %d after %d", buf[0], last1)
		}
		last1 = int(buf[0])
		f.Receive(2, r2, buf)
		if int(buf[0]) <= last2 {
			t.Fatalf("receiver 2 sub-stream out of order: %d after %d", buf[0], last2)
		}
		last2 = int(buf[0])
	}
}

func TestReceiveBlocksUntilSend(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "blk")
	rid, _ := f.OpenReceive(1, "blk", FCFS)
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, err := f.Receive(1, rid, buf)
		if err != nil {
			t.Error(err)
		}
		got <- buf[:n]
	}()
	select {
	case <-got:
		t.Fatal("Receive returned before any send")
	case <-time.After(30 * time.Millisecond):
	}
	if err := f.Send(0, sid, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		if string(b) != "wake" {
			t.Fatalf("got %q", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Receive never woke after Send")
	}
}

func TestReceiveTruncatesToBuffer(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "tr")
	rid, _ := f.OpenReceive(1, "tr", FCFS)
	f.Send(0, sid, []byte("0123456789"))
	buf := make([]byte, 4)
	n, err := f.Receive(1, rid, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || string(buf) != "0123" {
		t.Fatalf("n=%d buf=%q", n, buf)
	}
	// The truncated message is consumed, not requeued.
	if ok, _ := f.CheckReceive(1, rid); ok {
		t.Fatal("truncated message still queued")
	}
}

func TestZeroLengthMessage(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "z")
	rid, _ := f.OpenReceive(1, "z", FCFS)
	if err := f.Send(0, sid, nil); err != nil {
		t.Fatal(err)
	}
	if ok, _ := f.CheckReceive(1, rid); !ok {
		t.Fatal("zero-length message not visible to check_receive")
	}
	n, err := f.Receive(1, rid, make([]byte, 8))
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestCheckReceiveSemantics(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "chk")
	rid, _ := f.OpenReceive(1, "chk", FCFS)
	if ok, err := f.CheckReceive(1, rid); err != nil || ok {
		t.Fatalf("empty LNVC: ok=%v err=%v", ok, err)
	}
	f.Send(0, sid, []byte("m"))
	if ok, err := f.CheckReceive(1, rid); err != nil || !ok {
		t.Fatalf("after send: ok=%v err=%v", ok, err)
	}
	f.Receive(1, rid, make([]byte, 1))
	if ok, _ := f.CheckReceive(1, rid); ok {
		t.Fatal("after receive: message still reported")
	}
	// Broadcast guarantee (paper: if the receive connection is
	// BROADCAST, the message is guaranteed present at receive).
	bid, _ := f.OpenReceive(2, "chk", Broadcast)
	f.Send(0, sid, []byte("n"))
	if ok, _ := f.CheckReceive(2, bid); !ok {
		t.Fatal("broadcast receiver does not see message")
	}
}

func TestMessageTooBig(t *testing.T) {
	f, err := Init(Config{MaxLNVCs: 2, MaxProcesses: 2, BlockSize: 16, BlocksPerProcess: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	sid, _ := f.OpenSend(0, "big")
	huge := make([]byte, f.Arena().NumBlocks()*f.Arena().PayloadSize()+1)
	if err := f.Send(0, sid, huge); !errors.Is(err, ErrMessageTooBig) {
		t.Fatalf("err = %v, want ErrMessageTooBig", err)
	}
}

func TestSendPolicyFailFast(t *testing.T) {
	f, err := Init(Config{MaxLNVCs: 2, MaxProcesses: 2, BlockSize: 16, BlocksPerProcess: 4, SendPolicy: FailFast})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	sid, _ := f.OpenSend(0, "ff")
	f.OpenReceive(1, "ff", FCFS)
	payload := make([]byte, 12) // one 16-byte block each
	nBlocks := f.Arena().NumBlocks()
	for i := 0; i < nBlocks; i++ {
		if err := f.Send(0, sid, payload); err != nil {
			t.Fatalf("send %d/%d: %v", i, nBlocks, err)
		}
	}
	if err := f.Send(0, sid, payload); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
}

func TestSendPolicyBlockUntilFree(t *testing.T) {
	f, err := Init(Config{MaxLNVCs: 2, MaxProcesses: 2, BlockSize: 16, BlocksPerProcess: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	sid, _ := f.OpenSend(0, "bl")
	rid, _ := f.OpenReceive(1, "bl", FCFS)
	payload := make([]byte, 12)
	for i := 0; i < f.Arena().NumBlocks(); i++ {
		if err := f.Send(0, sid, payload); err != nil {
			t.Fatal(err)
		}
	}
	sent := make(chan error, 1)
	go func() { sent <- f.Send(0, sid, payload) }()
	select {
	case err := <-sent:
		t.Fatalf("send with full region returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := f.Receive(1, rid, make([]byte, 12)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-sent:
		if err != nil {
			t.Fatalf("blocked send failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked send never completed after receive freed blocks")
	}
}

func TestShutdownWakesBlockedReceive(t *testing.T) {
	f := newFac(t)
	f.OpenSend(0, "sd")
	rid, _ := f.OpenReceive(1, "sd", FCFS)
	errc := make(chan error, 1)
	go func() {
		_, err := f.Receive(1, rid, make([]byte, 1))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.Shutdown()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrShutdown) {
			t.Fatalf("err = %v, want ErrShutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Receive not woken by Shutdown")
	}
	if _, err := f.OpenSend(2, "post"); !errors.Is(err, ErrShutdown) {
		t.Fatalf("open after shutdown: %v", err)
	}
}

func TestShutdownWakesBlockedSend(t *testing.T) {
	f, err := Init(Config{MaxLNVCs: 2, MaxProcesses: 2, BlockSize: 16, BlocksPerProcess: 2})
	if err != nil {
		t.Fatal(err)
	}
	sid, _ := f.OpenSend(0, "sd2")
	f.OpenReceive(1, "sd2", FCFS)
	payload := make([]byte, 12)
	for i := 0; i < f.Arena().NumBlocks(); i++ {
		f.Send(0, sid, payload)
	}
	errc := make(chan error, 1)
	go func() { errc <- f.Send(0, sid, payload) }()
	time.Sleep(20 * time.Millisecond)
	f.Shutdown()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrShutdown) {
			t.Fatalf("err = %v, want ErrShutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Send not woken by Shutdown")
	}
}

func TestStatsCounters(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "st")
	rid, _ := f.OpenReceive(1, "st", FCFS)
	f.Send(0, sid, []byte("12345"))
	f.Receive(1, rid, make([]byte, 8))
	f.CheckReceive(1, rid)
	f.CloseSend(0, sid)
	f.CloseReceive(1, rid)
	st := f.Stats()
	if st.Opens != 2 || st.Closes != 2 || st.Sends != 1 || st.Receives != 1 || st.Checks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesSent != 5 || st.BytesRecvd != 5 {
		t.Fatalf("bytes = %d/%d", st.BytesSent, st.BytesRecvd)
	}
	if st.LNVCsCreated != 1 || st.LNVCsDeleted != 1 {
		t.Fatalf("lnvc counts = %d/%d", st.LNVCsCreated, st.LNVCsDeleted)
	}
}
