package core

import (
	"errors"
	"sync"
	"testing"
)

func TestTryReceiveBasics(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "try")
	rid, _ := f.OpenReceive(1, "try", FCFS)

	buf := make([]byte, 8)
	n, ok, err := f.TryReceive(1, rid, buf)
	if err != nil || ok || n != 0 {
		t.Fatalf("empty circuit: n=%d ok=%v err=%v", n, ok, err)
	}
	f.Send(0, sid, []byte("abc"))
	n, ok, err = f.TryReceive(1, rid, buf)
	if err != nil || !ok || n != 3 || string(buf[:3]) != "abc" {
		t.Fatalf("n=%d ok=%v err=%v buf=%q", n, ok, err, buf[:n])
	}
	// Consumed: a second try finds nothing.
	if _, ok, _ := f.TryReceive(1, rid, buf); ok {
		t.Fatal("message consumed twice")
	}
}

func TestTryReceiveValidation(t *testing.T) {
	f := newFac(t)
	id, _ := f.OpenSend(0, "v")
	if _, _, err := f.TryReceive(-1, id, nil); !errors.Is(err, ErrBadProcess) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := f.TryReceive(0, 99, nil); !errors.Is(err, ErrBadLNVC) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := f.TryReceive(0, id, nil); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("sender-only TryReceive: err = %v", err)
	}
	f.Shutdown()
	if _, _, err := f.TryReceive(0, id, nil); !errors.Is(err, ErrShutdown) {
		t.Fatalf("after shutdown: err = %v", err)
	}
}

func TestTryReceiveBroadcastStreams(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "tb")
	r1, _ := f.OpenReceive(1, "tb", Broadcast)
	r2, _ := f.OpenReceive(2, "tb", Broadcast)
	for i := 0; i < 5; i++ {
		f.Send(0, sid, []byte{byte(i)})
	}
	buf := make([]byte, 1)
	for i := 0; i < 5; i++ {
		if _, ok, _ := f.TryReceive(1, r1, buf); !ok || buf[0] != byte(i) {
			t.Fatalf("r1 message %d: ok=%v got=%d", i, ok, buf[0])
		}
	}
	// r2's private stream unaffected by r1's consumption.
	for i := 0; i < 5; i++ {
		if _, ok, _ := f.TryReceive(2, r2, buf); !ok || buf[0] != byte(i) {
			t.Fatalf("r2 message %d: ok=%v got=%d", i, ok, buf[0])
		}
	}
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("blocks leaked: %d free of %d", free, total)
	}
}

func TestTryReceiveExactlyOnceUnderContention(t *testing.T) {
	// The whole point of TryReceive: concurrent FCFS pollers never
	// duplicate and never lose a message.
	f, err := Init(Config{MaxLNVCs: 2, MaxProcesses: 8, BlocksPerProcess: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	const nPollers, nMsgs = 4, 400
	sid, _ := f.OpenSend(0, "poll")
	rids := make([]ID, nPollers)
	for i := range rids {
		rids[i], _ = f.OpenReceive(1+i, "poll", FCFS)
	}
	var mu sync.Mutex
	seen := make(map[byte]int)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nPollers; i++ {
		wg.Add(1)
		go func(pid int, rid ID) {
			defer wg.Done()
			buf := make([]byte, 2)
			for {
				n, ok, err := f.TryReceive(pid, rid, buf)
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					if n != 2 {
						t.Errorf("n = %d", n)
						return
					}
					mu.Lock()
					seen[buf[0]]++
					done := buf[1] == 0xFF
					mu.Unlock()
					if done {
						return
					}
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(1+i, rids[i])
	}
	for i := 0; i < nMsgs; i++ {
		if err := f.Send(0, sid, []byte{byte(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nPollers; i++ {
		f.Send(0, sid, []byte{byte(200 + i), 0xFF})
	}
	wg.Wait()
	close(stop)
	// 400 payload values wrap at 256; count totals instead of values.
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != nMsgs+nPollers {
		t.Fatalf("delivered %d, want %d", total, nMsgs+nPollers)
	}
}

func TestTryReceiveTraced(t *testing.T) {
	var events []Event
	var mu sync.Mutex
	f, err := Init(Config{MaxProcesses: 2, Tracer: tracerFn(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	sid, _ := f.OpenSend(0, "tt")
	rid, _ := f.OpenReceive(1, "tt", FCFS)
	f.Send(0, sid, []byte("xy"))
	f.TryReceive(1, rid, make([]byte, 2))
	mu.Lock()
	defer mu.Unlock()
	last := events[len(events)-1]
	if last.Op != OpTryReceive || last.Bytes != 2 {
		t.Fatalf("last event = %+v", last)
	}
	if OpTryReceive.String() != "try_receive" {
		t.Fatal("op name wrong")
	}
}

type tracerFn func(Event)

func (f tracerFn) Trace(ev Event) { f(ev) }
