package core

import (
	"math/bits"

	"repro/internal/spinlock"
	"repro/internal/stats"
)

// The LNVC registry maps circuit names to descriptors. The paper
// serializes every open_send/open_receive/close through one global table
// lock (§3.1), and its Figures 4-6 show the resulting contention as
// process counts grow. This implementation shards the name space
// instead: names hash across a power-of-two number of shards, each with
// its own reader/writer spin lock, name map and descriptor free list, so
// opens and closes on circuits in different shards never contend.
//
// Three registry structures remain global:
//
//   - slots: the ID-to-descriptor table. Lookups (the Send/Receive hot
//     path) are a single atomic load — no registry lock at all.
//   - freeIDs: the pool of unused IDs, behind its own leaf lock. It is
//     touched only on circuit creation and deletion, and its critical
//     section is a slice push/pop, so it is not a practical bottleneck;
//     keeping it global preserves the exact MaxLNVCs capacity semantics
//     under any hash skew.
//   - contention: per-shard lock counters (internal/stats.Contention),
//     fed by the TryLock-first probes below and surfaced through
//     Facility.Stats and Facility.RegistryStats.
//
// A descriptor is recycled only through its own shard's free list, so
// the descriptor-to-shard binding is immutable for the descriptor's
// lifetime: the close path can map a descriptor back to its shard
// without any lock.
//
// Lock order: shard lock, then LNVC lock, then (leaf) the freeIDs lock
// or the arena lock. Never the reverse.

// defaultRegistryShards is used when Config.RegistryShards is zero.
// Sixteen shards keep the per-shard footprint trivial while making
// open/close contention negligible at the goroutine counts the
// contention benchmark sweeps.
const defaultRegistryShards = 16

// maxRegistryShards bounds configuration mistakes.
const maxRegistryShards = 1 << 10

// registryShard is one slice of the name space.
type registryShard struct {
	// The shard lock owns its cache line: shards sit adjacent in one
	// slice, and an unpadded 4-byte lock would put up to a dozen of
	// them — each spun on by a different opener — on the same line,
	// turning independent shards back into one contended word. The
	// tail pad keeps the whole shard a multiple of 64 bytes so
	// neighbouring shards never share a line either (asserted by
	// TestHotWordLayout).
	lock spinlock.RW
	_    [60]byte

	names    map[string]ID
	lnvcFree []*lnvc // recycled descriptors, owned by this shard forever
	_        [32]byte
}

// ceilPow2 rounds n up to a power of two within [1, maxRegistryShards].
func ceilPow2(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxRegistryShards {
		n = maxRegistryShards
	}
	return 1 << bits.Len(uint(n-1))
}

// fnv32 is FNV-1a, inlined to keep name hashing allocation-free.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (f *Facility) shardIndex(name string) uint32 {
	return fnv32(name) & f.shardMask
}

// lockShard write-locks shard i, recording whether the acquisition
// contended. The TryLock probe costs one CAS on the uncontended path and
// is what lets the contention figures distinguish "idle shard" from
// "fought-over shard" without timing anything.
func (f *Facility) lockShard(i uint32) *registryShard {
	s := &f.shards[i]
	if s.lock.TryLock() {
		f.contention.Record(int(i), false)
	} else {
		s.lock.Lock()
		f.contention.Record(int(i), true)
	}
	return s
}

// rlockShard read-locks shard i with the same contention accounting.
func (f *Facility) rlockShard(i uint32) *registryShard {
	s := &f.shards[i]
	if s.lock.TryRLock() {
		f.contention.Record(int(i), false)
	} else {
		s.lock.RLock()
		f.contention.Record(int(i), true)
	}
	return s
}

// allocID pops an unused ID, or reports exhaustion. Leaf lock; callers
// may hold a shard lock.
func (f *Facility) allocID() (ID, bool) {
	f.idLock.Lock()
	n := len(f.freeIDs)
	if n == 0 {
		f.idLock.Unlock()
		return -1, false
	}
	id := f.freeIDs[n-1]
	f.freeIDs = f.freeIDs[:n-1]
	f.idLock.Unlock()
	return id, true
}

// freeID returns an ID to the pool.
func (f *Facility) freeID(id ID) {
	f.idLock.Lock()
	f.freeIDs = append(f.freeIDs, id)
	f.idLock.Unlock()
}

// FreeIDCount reports how many LNVC identifiers are currently unused —
// MaxLNVCs minus live circuits when no descriptor has leaked. Tests use
// it to assert leak-freedom after churn.
func (f *Facility) FreeIDCount() int {
	f.idLock.Lock()
	defer f.idLock.Unlock()
	return len(f.freeIDs)
}

// RegistryStats returns the per-shard lock acquisition counters gathered
// since Init. Index i describes shard i.
func (f *Facility) RegistryStats() []stats.LockStat {
	return f.contention.Snapshot()
}

// RegistryShards returns the number of shards the registry was built
// with (Config.RegistryShards rounded up to a power of two).
func (f *Facility) RegistryShards() int { return len(f.shards) }
