package core

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestReceiveAnyImmediate(t *testing.T) {
	f := newFac(t)
	s1, _ := f.OpenSend(0, "a")
	_, _ = f.OpenSend(0, "b")
	ra, _ := f.OpenReceive(1, "a", FCFS)
	rb, _ := f.OpenReceive(1, "b", FCFS)
	f.Send(0, s1, []byte("on a"))

	buf := make([]byte, 16)
	idx, n, err := f.ReceiveAny(1, []ID{ra, rb}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 || string(buf[:n]) != "on a" {
		t.Fatalf("idx=%d buf=%q", idx, buf[:n])
	}
}

func TestReceiveAnyBlocksThenWakes(t *testing.T) {
	f := newFac(t)
	f.OpenSend(0, "a")
	sb, _ := f.OpenSend(0, "b")
	ra, _ := f.OpenReceive(1, "a", FCFS)
	rb, _ := f.OpenReceive(1, "b", Broadcast)

	type result struct {
		idx, n int
		err    error
	}
	got := make(chan result, 1)
	go func() {
		buf := make([]byte, 8)
		idx, n, err := f.ReceiveAny(1, []ID{ra, rb}, buf)
		got <- result{idx, n, err}
	}()
	select {
	case r := <-got:
		t.Fatalf("returned early: %+v", r)
	case <-time.After(30 * time.Millisecond):
	}
	f.Send(0, sb, []byte("late"))
	select {
	case r := <-got:
		if r.err != nil || r.idx != 1 || r.n != 4 {
			t.Fatalf("%+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReceiveAny never woke")
	}
}

func TestReceiveAnyRoundRobinFairness(t *testing.T) {
	f := newFac(t)
	sa, _ := f.OpenSend(0, "a")
	sb, _ := f.OpenSend(0, "b")
	ra, _ := f.OpenReceive(1, "a", FCFS)
	rb, _ := f.OpenReceive(1, "b", FCFS)
	// Keep both circuits saturated; deliveries must alternate.
	for i := 0; i < 10; i++ {
		f.Send(0, sa, []byte{0xA})
		f.Send(0, sb, []byte{0xB})
	}
	buf := make([]byte, 1)
	var fromA, fromB int
	for i := 0; i < 20; i++ {
		idx, _, err := f.ReceiveAny(1, []ID{ra, rb}, buf)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 0 {
			fromA++
		} else {
			fromB++
		}
	}
	if fromA != 10 || fromB != 10 {
		t.Fatalf("deliveries a=%d b=%d, want 10/10 (starvation)", fromA, fromB)
	}
}

func TestReceiveAnyValidation(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "v")
	rid, _ := f.OpenReceive(1, "v", FCFS)
	buf := make([]byte, 4)
	if _, _, err := f.ReceiveAny(1, nil, buf); !errors.Is(err, ErrBadLNVC) {
		t.Fatalf("empty ids: %v", err)
	}
	if _, _, err := f.ReceiveAny(-1, []ID{rid}, buf); !errors.Is(err, ErrBadProcess) {
		t.Fatalf("bad pid: %v", err)
	}
	if _, _, err := f.ReceiveAny(1, []ID{99}, buf); !errors.Is(err, ErrBadLNVC) {
		t.Fatalf("bad id: %v", err)
	}
	// pid 0 has only a send connection on "v".
	if _, _, err := f.ReceiveAny(0, []ID{sid}, buf); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("not connected: %v", err)
	}
}

func TestReceiveAnyDeadline(t *testing.T) {
	f := newFac(t)
	f.OpenSend(0, "d")
	rid, _ := f.OpenReceive(1, "d", FCFS)
	start := time.Now()
	_, _, err := f.ReceiveAnyDeadline(1, []ID{rid}, make([]byte, 1), 40*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("returned before deadline")
	}
	if _, _, err := f.ReceiveAnyDeadline(1, []ID{rid}, nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("zero deadline: %v", err)
	}
}

func TestReceiveAnyShutdown(t *testing.T) {
	f := newFac(t)
	f.OpenSend(0, "s")
	rid, _ := f.OpenReceive(1, "s", FCFS)
	errc := make(chan error, 1)
	go func() {
		_, _, err := f.ReceiveAny(1, []ID{rid}, make([]byte, 1))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.Shutdown()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrShutdown) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReceiveAny ignored Shutdown")
	}
}

func TestReceiveAnyManyWaitersExactlyOnce(t *testing.T) {
	// Several processes multiplexing over the same pair of FCFS
	// circuits: every message delivered exactly once.
	f, err := Init(Config{MaxLNVCs: 4, MaxProcesses: 8, BlocksPerProcess: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	sa, _ := f.OpenSend(0, "ma")
	sb, _ := f.OpenSend(0, "mb")
	const nRecv, perCircuit = 3, 120
	const want = 2 * perCircuit
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	dup := false
	seen := make(map[[2]byte]int)
	for r := 1; r <= nRecv; r++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			ra, err := f.OpenReceive(pid, "ma", FCFS)
			if err != nil {
				t.Error(err)
				return
			}
			rb, err := f.OpenReceive(pid, "mb", FCFS)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 2)
			for {
				_, n, err := f.ReceiveAnyDeadline(pid, []ID{ra, rb}, buf, 20*time.Millisecond)
				if errors.Is(err, ErrTimeout) {
					mu.Lock()
					done := total >= want
					mu.Unlock()
					if done {
						return
					}
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if n != 2 {
					t.Errorf("short message: %d bytes", n)
					return
				}
				mu.Lock()
				total++
				seen[[2]byte{buf[0], buf[1]}]++
				if seen[[2]byte{buf[0], buf[1]}] > 1 {
					dup = true
				}
				mu.Unlock()
			}
		}(r)
	}
	for i := 0; i < perCircuit; i++ {
		if err := f.Send(0, sa, []byte{byte(i), 0xA}); err != nil {
			t.Fatal(err)
		}
		if err := f.Send(0, sb, []byte{byte(i), 0xB}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if total != want {
		t.Fatalf("delivered %d, want %d", total, want)
	}
	if dup {
		t.Fatal("a message was delivered twice")
	}
}
