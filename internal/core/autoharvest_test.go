package core

import (
	"strings"
	"testing"
	"time"
)

func newAutoFac(t *testing.T, minB, maxB int) *Facility {
	t.Helper()
	f, err := Init(Config{
		MaxLNVCs: 16, MaxProcesses: 20,
		AutoHarvestMin: minB, AutoHarvestMax: maxB,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	return f
}

// TestHarvestInvalidBudget covers the invalid-budget path: with
// auto-harvest unconfigured a non-positive budget must error — with a
// core-prefixed message, since the error originates below the facade —
// for both the blocking and deadline forms.
func TestHarvestInvalidBudget(t *testing.T) {
	f := newFac(t)
	_, _ = f.OpenSend(0, "inv")
	_, _ = f.OpenReceive(1, "inv", FCFS)
	s, _ := f.NewSelector(1)
	defer s.Close()
	if err := s.Add(0); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, -3} {
		if _, err := s.HarvestViews(budget); err == nil {
			t.Fatalf("HarvestViews(%d) succeeded with auto-harvest off", budget)
		} else if !strings.HasPrefix(err.Error(), "core:") {
			t.Fatalf("HarvestViews(%d) error %q, want core: prefix", budget, err)
		}
		if _, err := s.HarvestViewsDeadline(budget, time.Second); err == nil {
			t.Fatalf("HarvestViewsDeadline(%d) succeeded with auto-harvest off", budget)
		} else if !strings.HasPrefix(err.Error(), "core:") {
			t.Fatalf("HarvestViewsDeadline(%d) error %q, want core: prefix", budget, err)
		}
	}
}

// TestAutoHarvestBudgetAdapts drives an auto-mode selector through a
// burst and checks the adaptive machinery: the budget gauge moves off
// its floor while the burst is deep, every message is delivered, and
// the budget decays back toward the floor once traffic quiets.
func TestAutoHarvestBudgetAdapts(t *testing.T) {
	f := newAutoFac(t, 1, 16)
	send, _ := f.OpenSend(0, "auto")
	recv, _ := f.OpenReceive(1, "auto", FCFS)
	_ = recv
	s, _ := f.NewSelector(1)
	defer s.Close()
	if err := s.Add(0); err != nil {
		t.Fatal(err)
	}
	const burst = 48
	for i := 0; i < burst; i++ {
		if err := f.Send(0, send, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	maxBudget := uint64(0)
	for got < burst {
		vs, err := s.HarvestViewsDeadline(0, 2*time.Second)
		if err != nil {
			t.Fatalf("after %d messages: %v", got, err)
		}
		for _, v := range vs {
			var b [1]byte
			v.CopyTo(b[:])
			if int(b[0]) != got {
				t.Fatalf("message %d out of order: got stamp %d", got, b[0])
			}
			got++
			v.Release()
		}
		if g := f.Stats().HarvestAutoBudget; g > maxBudget {
			maxBudget = g
		}
	}
	if maxBudget <= 1 {
		t.Fatalf("auto budget never grew beyond %d during a %d-deep burst", maxBudget, burst)
	}
	// Quiet rounds decay the EWMA: single-message rounds must pull the
	// budget back down toward the floor.
	for i := 0; i < 24; i++ {
		if err := f.Send(0, send, []byte{0}); err != nil {
			t.Fatal(err)
		}
		vs, err := s.HarvestViewsDeadline(0, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vs {
			v.Release()
		}
	}
	if g := f.Stats().HarvestAutoBudget; g > 4 {
		t.Fatalf("auto budget stuck at %d after 24 single-message rounds", g)
	}
}

// TestAutoHarvestFairnessCap starves one circuit behind a hot sibling
// and checks the cap: with the hot circuit holding far more traffic
// than one round's budget, the cold circuit must still be served
// within a bounded number of rounds, and the truncations must be
// counted.
func TestAutoHarvestFairnessCap(t *testing.T) {
	f := newAutoFac(t, 1, 8)
	hotS, _ := f.OpenSend(0, "hot")
	coldS, _ := f.OpenSend(0, "cold")
	hotR, _ := f.OpenReceive(1, "hot", FCFS)
	coldR, _ := f.OpenReceive(1, "cold", FCFS)
	s, _ := f.NewSelector(1)
	defer s.Close()
	if err := s.Add(hotR); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(coldR); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := f.Send(0, hotS, []byte("h")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Send(0, coldS, []byte("c")); err != nil {
		t.Fatal(err)
	}
	coldRound := -1
	for round := 0; round < 10 && coldRound < 0; round++ {
		vs, err := s.HarvestViewsDeadline(0, 2*time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, v := range vs {
			if v.Circuit() == coldR {
				coldRound = round
			}
			v.Release()
		}
	}
	if coldRound < 0 {
		t.Fatal("cold circuit never served: the hot circuit consumed every round")
	}
	// The fairness bound: with both circuits armed from the start, the
	// cap must serve the cold one within the first rounds, not after
	// the hot queue drains.
	if coldRound > 2 {
		t.Fatalf("cold circuit first served in round %d, want <= 2", coldRound)
	}
	if f.Stats().HarvestCapHits == 0 {
		t.Fatal("cap never counted a truncation while a 64-deep circuit shared rounds")
	}
}
