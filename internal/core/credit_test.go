package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// creditFacility builds a small credited facility: 64-byte blocks (60
// payload), so an 8-byte payload costs exactly one accounted block.
func creditFacility(t *testing.T, budget int, policy SendPolicy) *Facility {
	t.Helper()
	fac, err := Init(Config{
		MaxLNVCs:         4,
		MaxProcesses:     8,
		BlocksPerProcess: 64,
		SendPolicy:       policy,
		CreditBlocks:     budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fac.Shutdown)
	return fac
}

func creditInfo(t *testing.T, fac *Facility, id ID) Info {
	t.Helper()
	info, err := fac.LNVCInfo(id)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestCreditDebitGrant exercises the ledger's core cycle under
// FailFast: sends debit one block each until the budget is exhausted
// (ErrNoCredit), a receive re-grants, and the ledger plus the
// facility gauge track every step.
func TestCreditDebitGrant(t *testing.T) {
	fac := creditFacility(t, 4, FailFast)
	sid, err := fac.OpenSend(0, "credit")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := fac.OpenReceive(1, "credit", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("12345678")
	for i := 0; i < 4; i++ {
		if err := fac.Send(0, sid, payload); err != nil {
			t.Fatalf("send %d within budget: %v", i, err)
		}
	}
	if got := creditInfo(t, fac, sid); got.CreditUsed != 4 || got.CreditCap != 4 {
		t.Fatalf("ledger after 4 sends: used %d cap %d, want 4/4", got.CreditUsed, got.CreditCap)
	}
	if st := fac.Stats(); st.CreditsHeld != 4 {
		t.Fatalf("gauge after 4 sends: %d, want 4", st.CreditsHeld)
	}
	err = fac.Send(0, sid, payload)
	if !errors.Is(err, ErrNoCredit) {
		t.Fatalf("overdraw send: %v, want ErrNoCredit", err)
	}
	buf := make([]byte, 8)
	if _, err := fac.Receive(1, rid, buf); err != nil {
		t.Fatal(err)
	}
	if got := creditInfo(t, fac, sid); got.CreditUsed != 3 {
		t.Fatalf("ledger after receive: used %d, want 3", got.CreditUsed)
	}
	if err := fac.Send(0, sid, payload); err != nil {
		t.Fatalf("send after re-grant: %v", err)
	}
	// Drain everything: the ledger and gauge return to zero.
	for i := 0; i < 4; i++ {
		if _, err := fac.Receive(1, rid, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := creditInfo(t, fac, sid); got.CreditUsed != 0 {
		t.Fatalf("ledger after drain: used %d, want 0", got.CreditUsed)
	}
	if st := fac.Stats(); st.CreditsHeld != 0 {
		t.Fatalf("gauge after drain: %d, want 0", st.CreditsHeld)
	}
}

// TestCreditOversizeMessage: a message whose accounted demand exceeds
// the whole budget can never be granted, so it fails with ErrNoCredit
// under either send policy instead of parking forever.
func TestCreditOversizeMessage(t *testing.T) {
	for _, policy := range []SendPolicy{BlockUntilFree, FailFast} {
		fac := creditFacility(t, 2, policy)
		sid, err := fac.OpenSend(0, "big")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fac.OpenReceive(1, "big", FCFS); err != nil {
			t.Fatal(err)
		}
		big := make([]byte, 60*3) // 3 accounted blocks > budget of 2
		if err := fac.Send(0, sid, big); !errors.Is(err, ErrNoCredit) {
			t.Fatalf("policy %v: oversize send: %v, want ErrNoCredit", policy, err)
		}
		if _, err := fac.SendLoan(0, sid, len(big)); !errors.Is(err, ErrNoCredit) {
			t.Fatalf("policy %v: oversize loan: %v, want ErrNoCredit", policy, err)
		}
		if err := fac.SendBatch(0, sid, [][]byte{big[:60], big[60:120], big[120:]}); !errors.Is(err, ErrNoCredit) {
			t.Fatalf("policy %v: oversize batch: %v, want ErrNoCredit", policy, err)
		}
	}
}

// TestCreditStallAndGrant: under BlockUntilFree an overdrawing sender
// parks on the circuit's credit waiter list and a receive's reclaim
// wakes it — the stall is visible in Stats.CreditStalls.
func TestCreditStallAndGrant(t *testing.T) {
	fac := creditFacility(t, 2, BlockUntilFree)
	sid, err := fac.OpenSend(0, "stall")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := fac.OpenReceive(1, "stall", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("12345678")
	for i := 0; i < 2; i++ {
		if err := fac.Send(0, sid, payload); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- fac.Send(0, sid, payload) }()
	select {
	case err := <-done:
		t.Fatalf("overdraw send returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	buf := make([]byte, 8)
	if _, err := fac.Receive(1, rid, buf); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("parked send after grant: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked send not woken by the receive's grant")
	}
	if st := fac.Stats(); st.CreditStalls == 0 {
		t.Fatal("no credit stall recorded for the parked send")
	}
}

// TestCreditLoanAbortRestores: a loan debits at allocation and an
// abort refunds the never-enqueued demand.
func TestCreditLoanAbortRestores(t *testing.T) {
	fac := creditFacility(t, 4, FailFast)
	sid, err := fac.OpenSend(0, "loan")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fac.OpenReceive(1, "loan", FCFS); err != nil {
		t.Fatal(err)
	}
	ln, err := fac.SendLoan(0, sid, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := creditInfo(t, fac, sid); got.CreditUsed != 1 {
		t.Fatalf("ledger after loan: used %d, want 1", got.CreditUsed)
	}
	ln.Abort()
	if got := creditInfo(t, fac, sid); got.CreditUsed != 0 {
		t.Fatalf("ledger after abort: used %d, want 0", got.CreditUsed)
	}
	if st := fac.Stats(); st.CreditsHeld != 0 {
		t.Fatalf("gauge after abort: %d, want 0", st.CreditsHeld)
	}
}

// TestCreditCommitNPartialAbortRestores: CommitN(k) keeps the
// committed prefix's debit and refunds the aborted remainder's, under
// the same lock hold that enqueued the prefix.
func TestCreditCommitNPartialAbortRestores(t *testing.T) {
	fac := creditFacility(t, 8, FailFast)
	sid, err := fac.OpenSend(0, "batch")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := fac.OpenReceive(1, "batch", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := fac.LoanBatch(0, sid, []int{8, 8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := creditInfo(t, fac, sid); got.CreditUsed != 4 {
		t.Fatalf("ledger after batch: used %d, want 4", got.CreditUsed)
	}
	if err := lb.CommitN(1); err != nil {
		t.Fatal(err)
	}
	if got := creditInfo(t, fac, sid); got.CreditUsed != 1 {
		t.Fatalf("ledger after CommitN(1): used %d, want 1 (aborted remainder restored)", got.CreditUsed)
	}
	buf := make([]byte, 8)
	if _, err := fac.Receive(1, rid, buf); err != nil {
		t.Fatal(err)
	}
	if got := creditInfo(t, fac, sid); got.CreditUsed != 0 {
		t.Fatalf("ledger after drain: used %d, want 0", got.CreditUsed)
	}
	// AbortAll on a fresh batch restores everything at once.
	lb2, err := fac.LoanBatch(0, sid, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	lb2.AbortAll()
	if st := fac.Stats(); st.CreditsHeld != 0 {
		t.Fatalf("gauge after AbortAll: %d, want 0", st.CreditsHeld)
	}
}

// TestCloseReceiveWithParkedCreditWaiters: credit is receiver-granted,
// so a sender parked for credit when the circuit's last receiver
// departs can never be satisfied. The close path wakes the credit
// waiters and the park fails with a prompt ErrNotConnected instead of
// hanging until an unrelated event.
func TestCloseReceiveWithParkedCreditWaiters(t *testing.T) {
	fac := creditFacility(t, 2, BlockUntilFree)
	sid, err := fac.OpenSend(0, "depart")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := fac.OpenReceive(1, "depart", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("12345678")
	for i := 0; i < 2; i++ {
		if err := fac.Send(0, sid, payload); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- fac.Send(0, sid, payload) }()
	select {
	case err := <-done:
		t.Fatalf("overdraw send returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// The receiver leaves without consuming: the two queued messages
	// keep their debits (they are retained for a late joiner), so the
	// parked sender's grant can never arrive.
	if err := fac.CloseReceive(1, rid); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrNotConnected) {
			t.Fatalf("parked send after last receiver left: %v, want ErrNotConnected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked credit waiter not woken by CloseReceive")
	}
}

// TestCloseSendWithParkedCreditWaiter: closing the parked sender's own
// connection fails the park promptly too — the same revalidation
// contract the receive-side parks honour.
func TestCloseSendWithParkedCreditWaiter(t *testing.T) {
	fac := creditFacility(t, 2, BlockUntilFree)
	sid, err := fac.OpenSend(0, "closesend")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fac.OpenReceive(1, "closesend", FCFS); err != nil {
		t.Fatal(err)
	}
	payload := []byte("12345678")
	for i := 0; i < 2; i++ {
		if err := fac.Send(0, sid, payload); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- fac.Send(0, sid, payload) }()
	select {
	case err := <-done:
		t.Fatalf("overdraw send returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := fac.CloseSend(0, sid); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrNotConnected) {
			t.Fatalf("parked send after CloseSend: %v, want ErrNotConnected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked credit waiter not woken by CloseSend")
	}
}

// TestCreditShutdownWakesParked: facility shutdown aborts a parked
// credit waiter with ErrShutdown.
func TestCreditShutdownWakesParked(t *testing.T) {
	fac := creditFacility(t, 1, BlockUntilFree)
	sid, err := fac.OpenSend(0, "shutdown")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fac.OpenReceive(1, "shutdown", FCFS); err != nil {
		t.Fatal(err)
	}
	if err := fac.Send(0, sid, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- fac.Send(0, sid, []byte("12345678")) }()
	select {
	case err := <-done:
		t.Fatalf("overdraw send returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fac.Shutdown()
	select {
	case err := <-done:
		if !errors.Is(err, ErrShutdown) {
			t.Fatalf("parked send after Shutdown: %v, want ErrShutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked credit waiter not woken by Shutdown")
	}
}

// TestCreditUncreditedUnchanged: with CreditBlocks at its zero default
// the ledger never engages — no stalls, no held blocks — however the
// traffic mixes planes. This is the no-credit half of the fairness
// gate's ablation contract.
func TestCreditUncreditedUnchanged(t *testing.T) {
	fac, err := Init(Config{MaxLNVCs: 4, MaxProcesses: 4, BlocksPerProcess: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	sid, err := fac.OpenSend(0, "plain")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := fac.OpenReceive(1, "plain", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if err := fac.Send(0, sid, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	ln, err := fac.SendLoan(0, sid, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Commit(); err != nil {
		t.Fatal(err)
	}
	lb, err := fac.LoanBatch(0, sid, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.CommitAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for i := 0; i < 4; i++ {
		if _, err := fac.Receive(1, rid, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := fac.Stats()
	if st.CreditStalls != 0 || st.CreditsHeld != 0 {
		t.Fatalf("uncredited facility touched the ledger: stalls %d, held %d", st.CreditStalls, st.CreditsHeld)
	}
	if got := creditInfo(t, fac, sid); got.CreditCap != 0 || got.CreditUsed != 0 {
		t.Fatalf("uncredited circuit carries a ledger: cap %d used %d", got.CreditCap, got.CreditUsed)
	}
}

// TestCreditChurnRace hammers one credited facility from many
// goroutines — plain sends, loans that randomly abort, loan batches
// resolved by CommitAll/CommitN/AbortAll, copying receives, view
// receives with held-then-released views, and receiver close/reopen
// churn — then drains and asserts the ledger, the gauge and the arena
// all return to zero. Runs in the -race -short CI subset.
func TestCreditChurnRace(t *testing.T) {
	fac, err := Init(Config{
		MaxLNVCs:         8,
		MaxProcesses:     8,
		BlocksPerProcess: 32,
		SendPolicy:       FailFast,
		CreditBlocks:     12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()

	const (
		circuits = 3
		senders  = 3
		rounds   = 400
	)
	name := func(c int) string { return fmt.Sprintf("churn-%d", c) }

	// Anchor receivers (pids 3..5, FCFS) hold every circuit open across
	// the sender churn; churners (pid 6) close/reopen a BROADCAST
	// connection on a random circuit.
	var anchors [circuits]ID
	for c := 0; c < circuits; c++ {
		id, err := fac.OpenReceive(3+c, name(c), FCFS)
		if err != nil {
			t.Fatal(err)
		}
		anchors[c] = id
	}

	var wg, drainWg sync.WaitGroup
	var sent atomic.Int64
	stop := make(chan struct{})
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			ids := make([]ID, circuits)
			for c := 0; c < circuits; c++ {
				id, err := fac.OpenSend(pid, name(c))
				if err != nil {
					t.Error(err)
					return
				}
				ids[c] = id
			}
			payload := []byte("12345678")
			for i := 0; i < rounds; i++ {
				id := ids[rng.Intn(circuits)]
				switch rng.Intn(4) {
				case 0:
					if err := fac.Send(pid, id, payload); err == nil {
						sent.Add(1)
					} else if !errors.Is(err, ErrNoCredit) && !errors.Is(err, ErrNoMemory) {
						t.Errorf("send: %v", err)
						return
					}
				case 1:
					ln, err := fac.SendLoan(pid, id, 8)
					if err != nil {
						if !errors.Is(err, ErrNoCredit) && !errors.Is(err, ErrNoMemory) {
							t.Errorf("loan: %v", err)
							return
						}
						continue
					}
					if rng.Intn(3) == 0 {
						ln.Abort()
						continue
					}
					ln.View().CopyFrom(payload)
					if err := ln.Commit(); err != nil {
						t.Errorf("commit: %v", err)
						return
					}
					sent.Add(1)
				case 2:
					lb, err := fac.LoanBatch(pid, id, []int{8, 8, 8})
					if err != nil {
						if !errors.Is(err, ErrNoCredit) && !errors.Is(err, ErrNoMemory) {
							t.Errorf("loan batch: %v", err)
							return
						}
						continue
					}
					for j := 0; j < 3; j++ {
						lb.Fill(j, payload)
					}
					switch rng.Intn(3) {
					case 0:
						if err := lb.CommitAll(); err != nil {
							t.Errorf("commit all: %v", err)
							return
						}
						sent.Add(3)
					case 1:
						if err := lb.CommitN(1); err != nil {
							t.Errorf("commit n: %v", err)
							return
						}
						sent.Add(1)
					default:
						lb.AbortAll()
					}
				default:
					// A view held briefly, then released: pins ride the
					// churn. Sender pids double as broadcast-free FCFS
					// competitors via the anchor receivers below.
				}
			}
		}(s)
	}
	// Drainers: the anchor receivers consume continuously so grants keep
	// flowing; a churner closes and reopens a BROADCAST receive on
	// circuit 0, exercising ledger interaction with Pending claims.
	for c := 0; c < circuits; c++ {
		drainWg.Add(1)
		go func(pid int, id ID) {
			defer drainWg.Done()
			buf := make([]byte, 8)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rand.Intn(2) == 0 {
					if v, ok, err := fac.TryReceiveView(pid, id); err != nil {
						t.Errorf("view drain: %v", err)
						return
					} else if ok {
						_, _ = v.Bytes()
						v.Release()
					}
				} else {
					if _, _, err := fac.TryReceive(pid, id, buf); err != nil {
						t.Errorf("drain: %v", err)
						return
					}
				}
			}
		}(3+c, anchors[c])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			id, err := fac.OpenReceive(6, name(0), Broadcast)
			if err != nil {
				t.Errorf("churn open: %v", err)
				return
			}
			if v, ok, err := fac.TryReceiveView(6, id); err != nil {
				t.Errorf("churn view: %v", err)
				return
			} else if ok {
				v.Release()
			}
			if err := fac.CloseReceive(6, id); err != nil {
				t.Errorf("churn close: %v", err)
				return
			}
		}
	}()

	// Wait for senders and churner, then stop the drainers once the
	// queues are empty.
	waitSenders := make(chan struct{})
	go func() { wg.Wait(); close(waitSenders) }()
	deadline := time.After(60 * time.Second)
	for {
		drained := true
		for c := 0; c < circuits; c++ {
			if info, err := fac.LNVCInfo(anchors[c]); err == nil && info.QueuedMsgs > 0 {
				drained = false
			}
		}
		senderDone := false
		select {
		case <-waitSenders:
			senderDone = true
		default:
		}
		if senderDone && drained {
			break
		}
		select {
		case <-deadline:
			t.Fatal("churn did not quiesce in time")
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	drainWg.Wait()

	for c := 0; c < circuits; c++ {
		info, err := fac.LNVCInfo(anchors[c])
		if err != nil {
			t.Fatal(err)
		}
		if info.CreditUsed != 0 {
			t.Fatalf("circuit %d ledger not quiescent: %d blocks still debited", c, info.CreditUsed)
		}
	}
	if st := fac.Stats(); st.CreditsHeld != 0 {
		t.Fatalf("gauge not quiescent: %d blocks still held", st.CreditsHeld)
	}
	if free, total := fac.Arena().FreeBlocks(), fac.Arena().NumBlocks(); free != total {
		t.Fatalf("block leak after churn: %d of %d free", free, total)
	}
}
