package core

import (
	"errors"
	"testing"
	"time"
)

// Regression tests for the parked-waiter close race: a receive blocked
// on a circuit — plain Receive, ReceiveBatch, ReceiveAny or
// Selector.Wait — whose connection is closed out from under it must
// return ErrNotConnected promptly. Before the per-circuit waiter lists
// the blocked call slept until an unrelated Send happened to pulse the
// facility (or forever, for the condition-variable paths, which the
// close never signalled at all).

const closeRacePatience = 2 * time.Second

func TestReceiveCloseWhileParked(t *testing.T) {
	f := newFac(t)
	_, _ = f.OpenSend(0, "cr-recv")
	rid, _ := f.OpenReceive(1, "cr-recv", FCFS)
	errc := make(chan error, 1)
	go func() {
		_, err := f.Receive(1, rid, make([]byte, 8))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := f.CloseReceive(1, rid); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrNotConnected) {
			t.Fatalf("parked Receive returned %v, want ErrNotConnected", err)
		}
	case <-time.After(closeRacePatience):
		t.Fatal("parked Receive hung across CloseReceive")
	}
}

func TestReceiveBatchCloseWhileParked(t *testing.T) {
	f := newFac(t)
	_, _ = f.OpenSend(0, "cr-batch")
	rid, _ := f.OpenReceive(1, "cr-batch", FCFS)
	errc := make(chan error, 1)
	go func() {
		_, err := f.ReceiveBatch(1, rid, [][]byte{make([]byte, 8), make([]byte, 8)})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := f.CloseReceive(1, rid); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrNotConnected) {
			t.Fatalf("parked ReceiveBatch returned %v, want ErrNotConnected", err)
		}
	case <-time.After(closeRacePatience):
		t.Fatal("parked ReceiveBatch hung across CloseReceive")
	}
}

func TestReceiveAnyCloseWhileParked(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		name := "waiter-lists"
		if legacy {
			name = "global-pulse"
		}
		t.Run(name, func(t *testing.T) {
			f, err := Init(Config{MaxLNVCs: 8, MaxProcesses: 4, GlobalPulseMux: legacy})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Shutdown()
			_, _ = f.OpenSend(0, "cr-any-a")
			_, _ = f.OpenSend(0, "cr-any-b")
			ra, _ := f.OpenReceive(1, "cr-any-a", FCFS)
			rb, _ := f.OpenReceive(1, "cr-any-b", FCFS)
			errc := make(chan error, 1)
			go func() {
				_, _, err := f.ReceiveAny(1, []ID{ra, rb}, make([]byte, 8))
				errc <- err
			}()
			time.Sleep(20 * time.Millisecond)
			if err := f.CloseReceive(1, rb); err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-errc:
				if !errors.Is(err, ErrNotConnected) {
					t.Fatalf("parked ReceiveAny returned %v, want ErrNotConnected", err)
				}
			case <-time.After(closeRacePatience):
				t.Fatal("parked ReceiveAny hung across CloseReceive")
			}
		})
	}
}

func TestSelectorCloseReceiveWhileParked(t *testing.T) {
	f := newFac(t)
	_, _ = f.OpenSend(0, "cr-sel-a")
	_, _ = f.OpenSend(0, "cr-sel-b")
	ra, _ := f.OpenReceive(1, "cr-sel-a", FCFS)
	rb, _ := f.OpenReceive(1, "cr-sel-b", FCFS)
	s, _ := f.NewSelector(1)
	defer s.Close()
	if err := s.Add(ra); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rb); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.Wait()
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := f.CloseReceive(1, rb); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrNotConnected) {
			t.Fatalf("parked Selector.Wait returned %v, want ErrNotConnected", err)
		}
	case <-time.After(closeRacePatience):
		t.Fatal("parked Selector.Wait hung across CloseReceive")
	}
	// The dead circuit was dropped; the surviving registration still
	// works.
	if s.Has(rb) {
		t.Fatal("dead registration survived")
	}
	if !s.Has(ra) {
		t.Fatal("live registration was dropped")
	}
	if err := f.Send(0, mustID(t, f, "cr-sel-a"), []byte("go")); err != nil {
		t.Fatal(err)
	}
	if ready, err := s.WaitDeadline(time.Second); err != nil || len(ready) != 1 || ready[0] != ra {
		t.Fatalf("Wait after drop: ready=%v err=%v", ready, err)
	}
}

// TestReceiveCloseRacePromptness runs the Receive close race under a
// deadline-free park repeatedly to catch lost-wakeup interleavings.
func TestReceiveCloseRacePromptness(t *testing.T) {
	f, err := Init(Config{MaxLNVCs: 8, MaxProcesses: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	_, _ = f.OpenSend(0, "cr-loop")
	for i := 0; i < 200; i++ {
		rid, err := f.OpenReceive(1, "cr-loop", FCFS)
		if err != nil {
			t.Fatal(err)
		}
		errc := make(chan error, 1)
		go func() {
			_, err := f.Receive(1, rid, make([]byte, 4))
			errc <- err
		}()
		// No sleep: the close races the receive's park directly.
		if err := f.CloseReceive(1, rid); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errc:
			if !errors.Is(err, ErrNotConnected) {
				t.Fatalf("round %d: %v", i, err)
			}
		case <-time.After(closeRacePatience):
			t.Fatalf("round %d: parked Receive hung", i)
		}
	}
}

func mustID(t *testing.T, f *Facility, name string) ID {
	t.Helper()
	id, ok := f.LNVCByName(name)
	if !ok {
		t.Fatalf("no circuit %q", name)
	}
	return id
}
