package core

import (
	"fmt"
	"time"
)

// ReceiveAny consumes the next message available on any of the given
// LNVCs for pid, blocking until one arrives. It returns the index into
// ids of the circuit that delivered, and the byte count. Fairness is
// round-robin across calls: the scan starts after the circuit that
// delivered last time, so a busy circuit cannot starve its siblings.
//
// The paper's MPF has no multi-circuit wait; programs polled with
// check_receive (the random benchmark's structure). ReceiveAny is the
// blocking equivalent. It registers a one-shot waiter on each circuit's
// waiter list (waiter.go), polls with the atomic TryReceive claim, and
// parks; only a Send on one of *these* circuits — or a close that
// affects them — wakes it. The pre-selector scheme, one facility-wide
// pulse waking every waiter on every Send, survives behind
// Config.GlobalPulseMux as the benchmark's ablation baseline.
//
// A CloseReceive on one of the circuits (or facility Shutdown) while
// parked wakes the call, which then returns ErrNotConnected (resp.
// ErrShutdown) rather than hanging.
func (f *Facility) ReceiveAny(pid int, ids []ID, buf []byte) (int, int, error) {
	return f.receiveAny(pid, ids, buf, nil)
}

// ReceiveAnyDeadline is ReceiveAny bounded by d; it returns ErrTimeout
// if no circuit delivers in time.
func (f *Facility) ReceiveAnyDeadline(pid int, ids []ID, buf []byte, d time.Duration) (int, int, error) {
	if d <= 0 {
		return 0, 0, fmt.Errorf("%w: non-positive deadline %v", ErrTimeout, d)
	}
	deadline := time.Now().Add(d)
	return f.receiveAny(pid, ids, buf, &deadline)
}

func (f *Facility) receiveAny(pid int, ids []ID, buf []byte, deadline *time.Time) (int, int, error) {
	if err := f.checkPID(pid); err != nil {
		return 0, 0, err
	}
	if len(ids) == 0 {
		return 0, 0, fmt.Errorf("%w: ReceiveAny with no circuits", ErrBadLNVC)
	}
	if f.cfg.GlobalPulseMux {
		return f.receiveAnyGlobal(pid, ids, buf, deadline)
	}

	// Validate every connection and register one shared one-shot waiter
	// before the first poll. Registration-before-poll is what closes
	// the wakeup race: a message enqueued after a circuit was polled
	// leaves its signal in the channel, so the park below returns
	// immediately instead of sleeping through it.
	w := &muxWaiter{ch: make(chan struct{}, 1)}
	regs := make([]*lnvc, 0, len(ids))
	defer func() {
		for _, l := range regs {
			l.lock.Lock()
			l.removeWaiterLocked(w)
			l.lock.Unlock()
		}
	}()
	for _, id := range ids {
		l, err := f.lookup(id)
		if err != nil {
			return 0, 0, err
		}
		l.lock.Lock()
		if f.slots[id].Load() != l || l.recvs[pid] == nil {
			l.lock.Unlock()
			return 0, 0, fmt.Errorf("%w: receive on id %d by process %d", ErrNotConnected, id, pid)
		}
		l.addWaiterLocked(w)
		l.lock.Unlock()
		regs = append(regs, l)
	}

	start := f.anyStart(pid, len(ids))
	woken := false
	for {
		if f.stopped.Load() {
			return 0, 0, ErrShutdown
		}
		// Drain a stale signal before polling so a fire landing during
		// the poll re-arms the channel for the park below.
		select {
		case <-w.ch:
		default:
		}
		for k := 0; k < len(ids); k++ {
			i := (start + k) % len(ids)
			n, ok, err := f.tryReceive(pid, ids[i], buf)
			if err != nil {
				// Covers a circuit closed while parked: the close woke
				// the waiter and TryReceive reports ErrNotConnected.
				return 0, 0, err
			}
			if ok {
				if woken {
					f.stats.muxWakeups.Add(1)
				}
				f.setAnyStart(pid, i+1)
				f.trace(Event{Op: OpReceive, PID: pid, LNVC: ids[i], Bytes: n})
				return i, n, nil
			}
		}
		if woken {
			f.stats.muxWakeups.Add(1)
			f.stats.muxSpurious.Add(1)
		}
		ok, err := parkWait(w.ch, f.stop, deadline)
		if err != nil {
			return 0, 0, err
		}
		woken = ok
	}
}

// receiveAnyGlobal is the pre-selector implementation, kept verbatim
// (plus wakeup accounting) as the ablation baseline: it sleeps on the
// facility-wide activity channel that every Send — and, for prompt
// close-race handling, every close — pulses, so every parked waiter
// wakes to rescan all of its circuits on every send anywhere.
func (f *Facility) receiveAnyGlobal(pid int, ids []ID, buf []byte, deadline *time.Time) (int, int, error) {
	// Validate connections up front so misuse fails immediately rather
	// than blocking forever.
	for _, id := range ids {
		l, err := f.lookup(id)
		if err != nil {
			return 0, 0, err
		}
		l.lock.Lock()
		_, ok := l.recvs[pid]
		l.lock.Unlock()
		if !ok {
			return 0, 0, fmt.Errorf("%w: receive on id %d by process %d", ErrNotConnected, id, pid)
		}
	}
	start := f.anyStart(pid, len(ids))
	woken := false
	for {
		if f.stopped.Load() {
			return 0, 0, ErrShutdown
		}
		// Arm before polling: a send landing between the poll and the
		// wait still pulses this round's channel.
		ch := f.activityChan()
		for k := 0; k < len(ids); k++ {
			i := (start + k) % len(ids)
			n, ok, err := f.tryReceive(pid, ids[i], buf)
			if err != nil {
				return 0, 0, err
			}
			if ok {
				if woken {
					f.stats.muxWakeups.Add(1)
				}
				f.setAnyStart(pid, i+1)
				f.trace(Event{Op: OpReceive, PID: pid, LNVC: ids[i], Bytes: n})
				return i, n, nil
			}
		}
		if woken {
			f.stats.muxWakeups.Add(1)
			f.stats.muxSpurious.Add(1)
		}
		ok, err := parkWait(ch, f.stop, deadline)
		if err != nil {
			return 0, 0, err
		}
		woken = ok
	}
}

// activityChan returns the channel pulsed by the next Send (legacy
// GlobalPulseMux mode only).
func (f *Facility) activityChan() <-chan struct{} {
	f.activityMu.Lock()
	defer f.activityMu.Unlock()
	if f.activity == nil {
		f.activity = make(chan struct{})
	}
	return f.activity
}

// pulseActivity wakes every parked receiveAnyGlobal waiter; called by
// Send and the close path when GlobalPulseMux is on.
func (f *Facility) pulseActivity() {
	f.activityMu.Lock()
	ch := f.activity
	f.activity = nil
	f.activityMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// anyStart and setAnyStart keep per-process round-robin cursors for
// ReceiveAny fairness.
func (f *Facility) anyStart(pid, n int) int {
	f.activityMu.Lock()
	defer f.activityMu.Unlock()
	if f.anyCursor == nil {
		f.anyCursor = make(map[int]int)
	}
	return f.anyCursor[pid] % n
}

func (f *Facility) setAnyStart(pid, v int) {
	f.activityMu.Lock()
	defer f.activityMu.Unlock()
	if f.anyCursor == nil {
		f.anyCursor = make(map[int]int)
	}
	f.anyCursor[pid] = v
}
