package core

import (
	"fmt"
	"time"
)

// ReceiveAny consumes the next message available on any of the given
// LNVCs for pid, blocking until one arrives. It returns the index into
// ids of the circuit that delivered, and the byte count. Fairness is
// round-robin across calls: the scan starts after the circuit that
// delivered last time, so a busy circuit cannot starve its siblings.
//
// The paper's MPF has no multi-circuit wait; programs polled with
// check_receive (the random benchmark's structure). ReceiveAny is the
// blocking equivalent: it polls each circuit with the atomic TryReceive
// claim, then sleeps on a facility-wide activity signal that every Send
// pulses. The sleep/wake is the same structure the arena uses for
// block-pool waits.
func (f *Facility) ReceiveAny(pid int, ids []ID, buf []byte) (int, int, error) {
	return f.receiveAny(pid, ids, buf, nil)
}

// ReceiveAnyDeadline is ReceiveAny bounded by d; it returns ErrTimeout
// if no circuit delivers in time.
func (f *Facility) ReceiveAnyDeadline(pid int, ids []ID, buf []byte, d time.Duration) (int, int, error) {
	if d <= 0 {
		return 0, 0, fmt.Errorf("%w: non-positive deadline %v", ErrTimeout, d)
	}
	deadline := time.Now().Add(d)
	return f.receiveAny(pid, ids, buf, &deadline)
}

func (f *Facility) receiveAny(pid int, ids []ID, buf []byte, deadline *time.Time) (int, int, error) {
	if err := f.checkPID(pid); err != nil {
		return 0, 0, err
	}
	if len(ids) == 0 {
		return 0, 0, fmt.Errorf("%w: ReceiveAny with no circuits", ErrBadLNVC)
	}
	// Validate connections up front so misuse fails immediately rather
	// than blocking forever.
	for _, id := range ids {
		l, err := f.lookup(id)
		if err != nil {
			return 0, 0, err
		}
		l.lock.Lock()
		_, ok := l.recvs[pid]
		l.lock.Unlock()
		if !ok {
			return 0, 0, fmt.Errorf("%w: receive on id %d by process %d", ErrNotConnected, id, pid)
		}
	}
	start := f.anyStart(pid, len(ids))
	for {
		if f.stopped.Load() {
			return 0, 0, ErrShutdown
		}
		// Arm before polling: a send landing between the poll and the
		// wait still pulses this round's channel.
		ch := f.activityChan()
		for k := 0; k < len(ids); k++ {
			i := (start + k) % len(ids)
			n, ok, err := f.tryReceive(pid, ids[i], buf)
			if err != nil {
				return 0, 0, err
			}
			if ok {
				f.setAnyStart(pid, i+1)
				f.trace(Event{Op: OpReceive, PID: pid, LNVC: ids[i], Bytes: n})
				return i, n, nil
			}
		}
		if deadline == nil {
			select {
			case <-ch:
			case <-f.stop:
				return 0, 0, ErrShutdown
			}
			continue
		}
		wait := time.Until(*deadline)
		if wait <= 0 {
			return 0, 0, ErrTimeout
		}
		timer := time.NewTimer(wait)
		select {
		case <-ch:
			timer.Stop()
		case <-f.stop:
			timer.Stop()
			return 0, 0, ErrShutdown
		case <-timer.C:
			return 0, 0, ErrTimeout
		}
	}
}

// activityChan returns the channel pulsed by the next Send.
func (f *Facility) activityChan() <-chan struct{} {
	f.activityMu.Lock()
	defer f.activityMu.Unlock()
	if f.activity == nil {
		f.activity = make(chan struct{})
	}
	return f.activity
}

// pulseActivity wakes every ReceiveAny waiter; called by Send after
// enqueueing.
func (f *Facility) pulseActivity() {
	f.activityMu.Lock()
	ch := f.activity
	f.activity = nil
	f.activityMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// anyStart and setAnyStart keep per-process round-robin cursors for
// ReceiveAny fairness.
func (f *Facility) anyStart(pid, n int) int {
	f.activityMu.Lock()
	defer f.activityMu.Unlock()
	if f.anyCursor == nil {
		f.anyCursor = make(map[int]int)
	}
	return f.anyCursor[pid] % n
}

func (f *Facility) setAnyStart(pid, v int) {
	f.activityMu.Lock()
	defer f.activityMu.Unlock()
	if f.anyCursor == nil {
		f.anyCursor = make(map[int]int)
	}
	f.anyCursor[pid] = v
}
