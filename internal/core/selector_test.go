package core

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSelectorImmediateReady(t *testing.T) {
	f := newFac(t)
	sa, _ := f.OpenSend(0, "sel-a")
	ra, _ := f.OpenReceive(1, "sel-a", FCFS)
	if err := f.Send(0, sa, []byte("early")); err != nil {
		t.Fatal(err)
	}
	s, err := f.NewSelector(1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// The message predates Add: the circuit must be ready at once.
	if err := s.Add(ra); err != nil {
		t.Fatal(err)
	}
	ready, err := s.WaitDeadline(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 1 || ready[0] != ra {
		t.Fatalf("ready = %v, want [%d]", ready, ra)
	}
}

func TestSelectorWakesOnlyForItsCircuit(t *testing.T) {
	f := newFac(t)
	_, _ = f.OpenSend(0, "sel-a")
	sb, _ := f.OpenSend(0, "sel-b")
	ra, _ := f.OpenReceive(1, "sel-a", FCFS)
	rb, _ := f.OpenReceive(1, "sel-b", Broadcast)
	s, _ := f.NewSelector(1)
	defer s.Close()
	if err := s.Add(ra); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rb); err != nil {
		t.Fatal(err)
	}

	type result struct {
		ids []ID
		err error
	}
	got := make(chan result, 1)
	go func() {
		ids, err := s.Wait()
		got <- result{ids, err}
	}()
	select {
	case r := <-got:
		t.Fatalf("Wait returned with nothing sent: %+v", r)
	case <-time.After(30 * time.Millisecond):
	}
	if err := f.Send(0, sb, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.ids) != 1 || r.ids[0] != rb {
			t.Fatalf("ready = %v, want [%d]", r.ids, rb)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never woke for a send on a registered circuit")
	}
	// The message is still there (Wait does not consume); drain it.
	buf := make([]byte, 8)
	if n, ok, err := f.TryReceive(1, rb, buf); err != nil || !ok || string(buf[:n]) != "wake" {
		t.Fatalf("TryReceive after Wait: n=%d ok=%v err=%v", n, ok, err)
	}
}

func TestSelectorRemoveStopsWakeups(t *testing.T) {
	f := newFac(t)
	sa, _ := f.OpenSend(0, "sel-rm")
	ra, _ := f.OpenReceive(1, "sel-rm", FCFS)
	s, _ := f.NewSelector(1)
	defer s.Close()
	if err := s.Add(ra); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(ra); err != nil {
		t.Fatal(err)
	}
	if s.Has(ra) || s.Len() != 0 {
		t.Fatalf("registration survived Remove: len=%d", s.Len())
	}
	if err := f.Send(0, sa, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Empty selector: Wait must refuse rather than hang.
	if _, err := s.WaitDeadline(50 * time.Millisecond); !errors.Is(err, ErrBadLNVC) {
		t.Fatalf("Wait on empty selector: %v", err)
	}
	// Re-add: the queued message makes it ready again (level-trigger).
	if err := s.Add(ra); err != nil {
		t.Fatal(err)
	}
	ready, err := s.WaitDeadline(time.Second)
	if err != nil || len(ready) != 1 {
		t.Fatalf("after re-add: ready=%v err=%v", ready, err)
	}
}

func TestSelectorValidation(t *testing.T) {
	f := newFac(t)
	sid, _ := f.OpenSend(0, "sel-v")
	rid, _ := f.OpenReceive(1, "sel-v", FCFS)
	if _, err := f.NewSelector(-1); !errors.Is(err, ErrBadProcess) {
		t.Fatalf("bad pid: %v", err)
	}
	s, _ := f.NewSelector(1)
	defer s.Close()
	if err := s.Add(99); !errors.Is(err, ErrBadLNVC) {
		t.Fatalf("bad id: %v", err)
	}
	// pid 1 holds no receive connection on pid 0's send-only view.
	s0, _ := f.NewSelector(0)
	defer s0.Close()
	if err := s0.Add(sid); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("send-only add: %v", err)
	}
	if err := s.Add(rid); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rid); !errors.Is(err, ErrAlreadyOpen) {
		t.Fatalf("duplicate add: %v", err)
	}
	if err := s.Remove(77); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("remove unregistered: %v", err)
	}
	if _, err := s.WaitDeadline(0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("zero deadline: %v", err)
	}
}

func TestSelectorDeadline(t *testing.T) {
	f := newFac(t)
	_, _ = f.OpenSend(0, "sel-d")
	rid, _ := f.OpenReceive(1, "sel-d", FCFS)
	s, _ := f.NewSelector(1)
	defer s.Close()
	if err := s.Add(rid); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := s.WaitDeadline(40 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("returned before deadline")
	}
}

func TestSelectorShutdownWhileParked(t *testing.T) {
	f := newFac(t)
	_, _ = f.OpenSend(0, "sel-s")
	rid, _ := f.OpenReceive(1, "sel-s", FCFS)
	s, _ := f.NewSelector(1)
	if err := s.Add(rid); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.Wait()
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.Shutdown()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrShutdown) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Selector.Wait ignored Shutdown")
	}
}

func TestSelectorCloseWhileParked(t *testing.T) {
	f := newFac(t)
	_, _ = f.OpenSend(0, "sel-c")
	rid, _ := f.OpenReceive(1, "sel-c", FCFS)
	s, _ := f.NewSelector(1)
	if err := s.Add(rid); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.Wait()
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrSelectorClosed) {
			t.Fatalf("err = %v, want ErrSelectorClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Selector.Wait ignored Close")
	}
	// Closed selector fails everything, idempotently.
	if err := s.Add(rid); !errors.Is(err, ErrSelectorClosed) {
		t.Fatalf("Add after Close: %v", err)
	}
	if err := s.Remove(rid); !errors.Is(err, ErrSelectorClosed) {
		t.Fatalf("Remove after Close: %v", err)
	}
	if _, err := s.Wait(); !errors.Is(err, ErrSelectorClosed) {
		t.Fatalf("Wait after Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestSelectorDeadCircuitKeepsSurvivorReadiness pins the fix for the
// harvest-discard bug: when Wait returns ErrNotConnected for a circuit
// closed while parked, readiness already harvested for the *other*
// circuits in the same round must be re-marked, so the next Wait
// returns them instead of parking forever (their level-trigger had
// already been consumed).
func TestSelectorDeadCircuitKeepsSurvivorReadiness(t *testing.T) {
	f := newFac(t)
	sa, _ := f.OpenSend(0, "dsur-a")
	_, _ = f.OpenSend(0, "dsur-b")
	ra, _ := f.OpenReceive(1, "dsur-a", FCFS)
	rb, _ := f.OpenReceive(1, "dsur-b", FCFS)
	s, _ := f.NewSelector(1)
	defer s.Close()
	if err := s.Add(ra); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rb); err != nil {
		t.Fatal(err)
	}
	// Make A ready and B dead before Wait harvests either.
	if err := f.Send(0, sa, []byte("live")); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseReceive(1, rb); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitDeadline(time.Second); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("first Wait: %v, want ErrNotConnected", err)
	}
	// A's message must still surface — without new traffic.
	ready, err := s.WaitDeadline(time.Second)
	if err != nil {
		t.Fatalf("second Wait after dead-circuit error: %v", err)
	}
	if len(ready) != 1 || ready[0] != ra {
		t.Fatalf("ready = %v, want [%d]", ready, ra)
	}
}

// TestSelectorLevelTriggeredPartialDrain pins the level-trigger
// contract: a circuit whose queue the caller drains only partially
// must be reported ready again by the next Wait, without new traffic.
func TestSelectorLevelTriggeredPartialDrain(t *testing.T) {
	f := newFac(t)
	sa, _ := f.OpenSend(0, "lt")
	ra, _ := f.OpenReceive(1, "lt", FCFS)
	s, _ := f.NewSelector(1)
	defer s.Close()
	if err := s.Add(ra); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Send(0, sa, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 1)
	for i := 0; i < 3; i++ {
		ready, err := s.WaitDeadline(time.Second)
		if err != nil || len(ready) != 1 || ready[0] != ra {
			t.Fatalf("Wait %d: ready=%v err=%v", i, ready, err)
		}
		// Consume exactly one of the queued messages per Wait.
		if _, ok, err := f.TryReceive(1, ra, buf); err != nil || !ok {
			t.Fatalf("TryReceive %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Fully drained now: the selector must settle back to quiet.
	if _, err := s.WaitDeadline(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("drained circuit still reported ready: %v", err)
	}
}

// TestSelectorWaiterRecycleABA pins the generation check on waiter
// removal: a selector registered on a circuit whose descriptor *and*
// a different id are recycled to a new circuit — which the same
// selector then Adds — must not have the new registration's waiter
// entry stripped when the stale registration is removed.
func TestSelectorWaiterRecycleABA(t *testing.T) {
	f, err := Init(Config{MaxLNVCs: 8, MaxProcesses: 4, RegistryShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	// Two names in different shards: freeing both descriptors and both
	// ids, then reopening in the first shard, re-pairs that shard's
	// descriptor with the *other* name's id (descriptor free lists are
	// per-shard, the id pool is global, both LIFO).
	nameA := "aba-a"
	nameB := ""
	for i := 0; ; i++ {
		cand := fmt.Sprintf("aba-b%d", i)
		if f.shardIndex(cand) != f.shardIndex(nameA) {
			nameB = cand
			break
		}
	}
	ra, err := f.OpenReceive(1, nameA, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := f.OpenReceive(1, nameB, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := f.NewSelector(1)
	defer s.Close()
	if err := s.Add(ra); err != nil {
		t.Fatal(err)
	}
	// Kill both circuits (descriptor of nameA and both ids freed),
	// then reopen in nameA's shard: same descriptor, different id.
	if err := f.CloseReceive(1, ra); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseReceive(1, rb); err != nil {
		t.Fatal(err)
	}
	rc, err := f.OpenReceive(1, nameA, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if rc == ra {
		t.Skipf("recycling did not cross ids (got %d again); layout changed", rc)
	}
	if err := s.Add(rc); err != nil {
		t.Fatal(err)
	}
	// Removing the stale registration (old id, same descriptor) must
	// not strip the new registration's waiter entry.
	if err := s.Remove(ra); err != nil && !errors.Is(err, ErrNotConnected) {
		t.Fatal(err)
	}
	sid, err := f.OpenSend(0, nameA)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, sid, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	ready, err := s.WaitDeadline(time.Second)
	if err != nil {
		t.Fatalf("wakeup lost after stale-registration removal: %v", err)
	}
	if len(ready) != 1 || ready[0] != rc {
		t.Fatalf("ready = %v, want [%d]", ready, rc)
	}
}

func TestSelectorManyCircuitsOnlyReadyReturned(t *testing.T) {
	const circuits = 32
	f, err := Init(Config{MaxLNVCs: circuits + 2, MaxProcesses: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	s, _ := f.NewSelector(1)
	defer s.Close()
	sends := make([]ID, circuits)
	recvs := make([]ID, circuits)
	for i := 0; i < circuits; i++ {
		name := fmt.Sprintf("many-%d", i)
		sends[i], _ = f.OpenSend(0, name)
		recvs[i], err = f.OpenReceive(1, name, FCFS)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Add(recvs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly two of 32 circuits become ready.
	for _, i := range []int{5, 17} {
		if err := f.Send(0, sends[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ready, err := s.WaitDeadline(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := map[ID]bool{recvs[5]: true, recvs[17]: true}
	if len(ready) != 2 || !want[ready[0]] || !want[ready[1]] || ready[0] == ready[1] {
		t.Fatalf("ready = %v, want circuits 5 and 17 (%d, %d)", ready, recvs[5], recvs[17])
	}
}
