package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func zcFacility(t *testing.T, classic bool) *Facility {
	t.Helper()
	f, err := Init(Config{
		MaxLNVCs:      8,
		MaxProcesses:  16,
		BlockSize:     64,
		ClassicChains: classic,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	return f
}

func zcPattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*13 + 5)
	}
	return b
}

func assertAllFree(t *testing.T, f *Facility, when string) {
	t.Helper()
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("%s: %d of %d blocks free (leak)", when, free, total)
	}
}

func TestLoanCommitRoundtrip(t *testing.T) {
	f := zcFacility(t, false)
	sid, _ := f.OpenSend(0, "zc")
	rid, _ := f.OpenReceive(1, "zc", FCFS)

	payload := zcPattern(1000)
	ln, err := f.SendLoan(0, sid, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if ln.Len() != len(payload) {
		t.Fatalf("loan length %d, want %d", ln.Len(), len(payload))
	}
	b, ok := ln.Bytes()
	if !ok {
		t.Fatal("span-mode loan not contiguous")
	}
	copy(b, payload) // the caller's in-place produce step
	if err := ln.Commit(); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, len(payload))
	n, err := f.Receive(1, rid, buf)
	if err != nil || n != len(payload) {
		t.Fatalf("receive: %d, %v", n, err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("loan payload corrupted in transit")
	}
	st := f.Stats()
	if st.LoanSends != 1 {
		t.Errorf("LoanSends = %d, want 1", st.LoanSends)
	}
	if st.PayloadCopiesIn != 0 {
		t.Errorf("PayloadCopiesIn = %d, want 0 (loan path copies nothing in)", st.PayloadCopiesIn)
	}
	assertAllFree(t, f, "after loan roundtrip")
}

func TestReceiveViewZeroCopy(t *testing.T) {
	f := zcFacility(t, false)
	sid, _ := f.OpenSend(0, "zc")
	rid, _ := f.OpenReceive(1, "zc", FCFS)

	payload := zcPattern(500)
	if err := f.Send(0, sid, payload); err != nil {
		t.Fatal(err)
	}
	v, err := f.ReceiveView(1, rid)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 500 || v.Sender() != 0 {
		t.Fatalf("view Len=%d Sender=%d", v.Len(), v.Sender())
	}
	b, ok := v.Bytes()
	if !ok {
		t.Fatal("span-mode view not contiguous")
	}
	if !bytes.Equal(b, payload) {
		t.Fatal("view shows wrong bytes")
	}
	if got := f.Stats().PayloadCopiesOut; got != 0 {
		t.Errorf("PayloadCopiesOut = %d, want 0 before Release", got)
	}
	if got := f.Stats().ViewReceives; got != 1 {
		t.Errorf("ViewReceives = %d, want 1", got)
	}
	v.Release()
	assertAllFree(t, f, "after view release")

	// The claim semantics are Receive's: the message is consumed.
	if ok, _ := f.CheckReceive(1, rid); ok {
		t.Fatal("message still available after view claim")
	}
}

func TestBroadcastViewsShareOnePayload(t *testing.T) {
	f := zcFacility(t, false)
	sid, _ := f.OpenSend(0, "bcast")
	const nRecv = 4
	rids := make([]ID, nRecv)
	for i := 0; i < nRecv; i++ {
		id, err := f.OpenReceive(1+i, "bcast", Broadcast)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = id
	}
	payload := zcPattern(800)
	if err := f.Send(0, sid, payload); err != nil {
		t.Fatal(err)
	}
	views := make([]*View, nRecv)
	var first []byte
	for i := 0; i < nRecv; i++ {
		v, ok, err := f.TryReceiveView(1+i, rids[i])
		if err != nil || !ok {
			t.Fatalf("receiver %d: ok=%v err=%v", i, ok, err)
		}
		b, ok2 := v.Bytes()
		if !ok2 || !bytes.Equal(b, payload) {
			t.Fatalf("receiver %d sees wrong payload", i)
		}
		if i == 0 {
			first = b
		} else if &b[0] != &first[0] {
			t.Fatal("BROADCAST views do not alias one shared payload instance")
		}
		views[i] = v
	}
	if got := f.Stats().PayloadCopiesOut; got != 0 {
		t.Errorf("PayloadCopiesOut = %d, want 0: fan-out must not copy", got)
	}
	// Releases in arbitrary order; blocks return only after the last.
	views[2].Release()
	views[0].Release()
	views[3].Release()
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free == total {
		t.Fatal("blocks recycled while a view is still live")
	}
	views[1].Release()
	assertAllFree(t, f, "after last broadcast release")
}

func TestLoanAbortReturnsBlocks(t *testing.T) {
	f := zcFacility(t, false)
	sid, _ := f.OpenSend(0, "zc")
	f.OpenReceive(1, "zc", FCFS)
	ln, err := f.SendLoan(0, sid, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free == total {
		t.Fatal("loan did not take blocks")
	}
	ln.Abort()
	assertAllFree(t, f, "after abort")

	// Commit after Abort must refuse, not enqueue freed blocks.
	if err := ln.Commit(); !errors.Is(err, ErrLoanDone) {
		t.Fatalf("Commit after Abort = %v, want ErrLoanDone", err)
	}
	// Double Abort and Abort after Commit are no-ops.
	ln.Abort()
	ln2, _ := f.SendLoan(0, sid, 10)
	if err := ln2.Commit(); err != nil {
		t.Fatal(err)
	}
	ln2.Abort()
	if err := ln2.Commit(); !errors.Is(err, ErrLoanDone) {
		t.Fatalf("second Commit = %v, want ErrLoanDone", err)
	}
}

func TestLoanCommitOnDeadCircuit(t *testing.T) {
	f := zcFacility(t, false)
	sid, _ := f.OpenSend(0, "dies")
	ln, err := f.SendLoan(0, sid, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CloseSend(0, sid); err != nil {
		t.Fatal(err)
	}
	if err := ln.Commit(); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("Commit on dead circuit = %v, want ErrNotConnected", err)
	}
	assertAllFree(t, f, "after failed commit")
}

func TestViewDoubleReleaseIsNoOp(t *testing.T) {
	f := zcFacility(t, false)
	sid, _ := f.OpenSend(0, "zc")
	rid, _ := f.OpenReceive(1, "zc", FCFS)
	f.Send(0, sid, zcPattern(100))
	f.Send(0, sid, zcPattern(100))
	v1, err := f.ReceiveView(1, rid)
	if err != nil {
		t.Fatal(err)
	}
	// A second claimed-and-pinned message guards against the double
	// release manifesting as a negative pin count that would let the
	// reclaim scan free it early.
	v2, err := f.ReceiveView(1, rid)
	if err != nil {
		t.Fatal(err)
	}
	v1.Release()
	v1.Release() // must not double-unpin
	if _, ok := v2.Bytes(); !ok {
		t.Fatal("live view lost its payload after sibling double release")
	}
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free == total {
		t.Fatal("blocks recycled while v2 is still live")
	}
	if b, _ := v1.Bytes(); b != nil {
		t.Fatal("released view still exposes payload")
	}
	if v1.CopyTo(make([]byte, 10)) != 0 {
		t.Fatal("released view still copies")
	}
	v2.Release()
	assertAllFree(t, f, "after all releases")
}

func TestViewSurvivesCloseReceive(t *testing.T) {
	f := zcFacility(t, false)
	payload := zcPattern(600)
	sid, _ := f.OpenSend(0, "orphan")
	rid, _ := f.OpenReceive(1, "orphan", FCFS)
	if err := f.Send(0, sid, payload); err != nil {
		t.Fatal(err)
	}
	v, err := f.ReceiveView(1, rid)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the circuit entirely while the view is held: the message is
	// orphaned to the pin holder, not recycled.
	if err := f.CloseReceive(1, rid); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseSend(0, sid); err != nil {
		t.Fatal(err)
	}
	b, ok := v.Bytes()
	if !ok || !bytes.Equal(b, payload) {
		t.Fatal("view invalidated by circuit deletion")
	}
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free == total {
		t.Fatal("orphaned blocks recycled under a live view")
	}
	v.Release()
	assertAllFree(t, f, "after orphan release")
}

func TestUnreadPinnedMessageOrphanedAtDeletion(t *testing.T) {
	f := zcFacility(t, false)
	sid, _ := f.OpenSend(0, "orphan2")
	rid, _ := f.OpenReceive(1, "orphan2", Broadcast)
	// Two messages; the receiver views the first, never reads the second.
	if err := f.Send(0, sid, zcPattern(100)); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, sid, zcPattern(100)); err != nil {
		t.Fatal(err)
	}
	v, err := f.ReceiveView(1, rid)
	if err != nil {
		t.Fatal(err)
	}
	f.CloseReceive(1, rid)
	f.CloseSend(0, sid)
	// The unread message was released at deletion; the viewed one lives.
	if b, ok := v.Bytes(); !ok || len(b) != 100 {
		t.Fatal("view invalidated by deletion")
	}
	st := f.Stats()
	if st.MessagesDropped != 2 {
		t.Errorf("MessagesDropped = %d, want 2 (both left the queue at deletion)", st.MessagesDropped)
	}
	v.Release()
	assertAllFree(t, f, "after release")
}

func TestViewSurvivesShutdown(t *testing.T) {
	f := zcFacility(t, false)
	payload := zcPattern(300)
	sid, _ := f.OpenSend(0, "down")
	rid, _ := f.OpenReceive(1, "down", FCFS)
	f.Send(0, sid, payload)
	v, err := f.ReceiveView(1, rid)
	if err != nil {
		t.Fatal(err)
	}
	f.Shutdown()
	b, ok := v.Bytes()
	if !ok || !bytes.Equal(b, payload) {
		t.Fatal("view invalidated by shutdown")
	}
	v.Release() // must not panic, must return the blocks
	assertAllFree(t, f, "after post-shutdown release")
}

func TestReceiveViewDeadline(t *testing.T) {
	f := zcFacility(t, false)
	f.OpenSend(0, "idle")
	rid, _ := f.OpenReceive(1, "idle", FCFS)
	if _, err := f.ReceiveViewDeadline(1, rid, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if _, err := f.ReceiveViewDeadline(1, rid, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("zero deadline err = %v, want ErrTimeout", err)
	}
}

func TestClassicChainsMultiSegmentView(t *testing.T) {
	f := zcFacility(t, true) // paper layout: 64-byte blocks, 60 payload each
	sid, _ := f.OpenSend(0, "classic")
	rid, _ := f.OpenReceive(1, "classic", FCFS)
	payload := zcPattern(200) // 4 blocks
	ln, err := f.SendLoan(0, sid, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ln.Bytes(); ok {
		t.Fatal("classic-chain multi-block loan claims contiguity")
	}
	if n := ln.View().CopyFrom(payload); n != len(payload) {
		t.Fatalf("CopyFrom wrote %d", n)
	}
	if err := ln.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err := f.ReceiveView(1, rid)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.Bytes(); ok {
		t.Fatal("classic-chain multi-block view claims contiguity")
	}
	var got []byte
	v.Segments(func(seg []byte) bool {
		got = append(got, seg...)
		return true
	})
	if !bytes.Equal(got, payload) {
		t.Fatal("segment walk corrupts classic-chain payload")
	}
	out := make([]byte, len(payload))
	if n := v.CopyTo(out); n != len(payload) || !bytes.Equal(out, payload) {
		t.Fatal("CopyTo escape hatch corrupts payload")
	}
	if got := f.Stats().PayloadCopiesOut; got != 1 {
		t.Errorf("PayloadCopiesOut = %d, want 1 (the explicit CopyTo)", got)
	}
	v.Release()
	assertAllFree(t, f, "after classic roundtrip")
}

// TestViewChurnRace races loan sends, view receives with held views,
// copying receives, and receiver close/reopen churn, for the race
// detector; the invariant checks (no leak, no premature recycle) are
// the fuzz test's, here under real concurrency.
func TestViewChurnRace(t *testing.T) {
	f := zcFacility(t, false)
	const (
		senders = 2
		viewers = 3
		rounds  = 300
	)
	sids := make([]ID, senders)
	for i := range sids {
		id, err := f.OpenSend(i, "churn")
		if err != nil {
			t.Fatal(err)
		}
		sids[i] = id
	}
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			payload := zcPattern(256)
			for r := 0; r < rounds; r++ {
				if r%2 == 0 {
					ln, err := f.SendLoan(pid, sids[pid], len(payload))
					if err != nil {
						t.Errorf("sender %d: %v", pid, err)
						return
					}
					ln.View().CopyFrom(payload)
					if r%10 == 0 {
						ln.Abort()
						continue
					}
					if err := ln.Commit(); err != nil {
						t.Errorf("sender %d commit: %v", pid, err)
						return
					}
				} else if err := f.Send(pid, sids[pid], payload); err != nil {
					t.Errorf("sender %d send: %v", pid, err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < viewers; i++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			buf := make([]byte, 256)
			for r := 0; r < rounds; r++ {
				rid, err := f.OpenReceive(pid, "churn", Broadcast)
				if err != nil {
					t.Errorf("viewer %d open: %v", pid, err)
					return
				}
				for k := 0; k < 4; k++ {
					if k%2 == 0 {
						v, ok, err := f.TryReceiveView(pid, rid)
						if err != nil {
							t.Errorf("viewer %d: %v", pid, err)
							return
						}
						if ok {
							if v.Len() != 256 {
								t.Errorf("viewer %d: short view %d", pid, v.Len())
							}
							v.Segments(func(seg []byte) bool { _ = seg[0]; return true })
							v.Release()
							v.Release()
						}
					} else if _, _, err := f.TryReceive(pid, rid, buf); err != nil {
						t.Errorf("viewer %d copy: %v", pid, err)
						return
					}
				}
				if err := f.CloseReceive(pid, rid); err != nil {
					t.Errorf("viewer %d close: %v", pid, err)
					return
				}
			}
		}(senders + i)
	}
	wg.Wait()
	for i := range sids {
		if err := f.CloseSend(i, sids[i]); err != nil {
			t.Fatal(err)
		}
	}
	assertAllFree(t, f, "after churn race")
}
