package core

import (
	"fmt"

	"repro/internal/msg"
)

// The batched zero-copy send path. SendLoan (zerocopy.go) removed the
// send copy but still pays the per-message fixed costs — one arena
// free-pool transaction per loan, one circuit lock acquisition per
// commit. LoanBatch pays them once per batch: every payload chain is
// allocated in a single arena transaction (msg.Pool.BuildLoanBatch →
// shm.Arena.AllocPayloads), the caller fills the N writable windows in
// place, and CommitAll links the whole run into the FIFO under one
// circuit lock acquisition with one waiter wakeup — atomic with
// respect to other senders, exactly like SendBatch, but with zero
// structural copies. AbortAll (and the aborted tail of a CommitN)
// returns every chain in one free-pool transaction.

// LoanBatch is a batch of in-flight zero-copy sends: N messages whose
// blocks are allocated and owned by the caller, none yet linked into
// any FIFO. Fill the payload windows via Bytes/View/Fill, then resolve
// the batch exactly once with CommitAll, CommitN or AbortAll. Like a
// Loan, a LoanBatch is owned by one process and is not safe for
// concurrent use; using its windows after the batch is resolved panics
// (the blocks belong to the facility, or to nobody, by then).
type LoanBatch struct {
	f   *Facility
	l   *lnvc
	id  ID
	pid int
	// msgs must never be read after done: committed headers belong to
	// the facility (a receiver may consume and recycle them
	// concurrently) and aborted ones to the pool. Everything the batch
	// reports afterwards comes from ns/total, copied at allocation.
	msgs  []*msg.Message
	ns    []int
	total int
	done  bool
	// The batch's credit debit — the whole demand in one acquisition,
	// mirroring the single arena transaction. CommitN returns the
	// aborted tail's share; AbortAll and a lost circuit return it all.
	// creditGen pins refunds to the debited descriptor incarnation.
	creditGen    uint64
	creditBlocks int
}

// LoanBatch allocates blocks for one message per length in ns — all in
// a single arena free-pool transaction — and returns the batch for the
// caller to fill in place. Allocation follows the facility's
// SendPolicy exactly as Send does, applied to the batch's total block
// demand (BlockUntilFree waits for the whole demand; FailFast returns
// ErrNoMemory). An empty ns validates the connection and returns an
// empty batch whose CommitAll is a no-op.
func (f *Facility) LoanBatch(pid int, id ID, ns []int) (*LoanBatch, error) {
	b, err := f.loanBatch(pid, id, ns)
	total := 0
	for _, n := range ns {
		total += n
	}
	f.trace(Event{Op: OpLoanBatch, PID: pid, LNVC: id, Bytes: total, Err: err})
	return b, err
}

func (f *Facility) loanBatch(pid int, id ID, ns []int) (*LoanBatch, error) {
	if err := f.checkPID(pid); err != nil {
		return nil, err
	}
	if f.stopped.Load() {
		return nil, ErrShutdown
	}
	total, blocks := 0, 0
	for _, n := range ns {
		if n < 0 {
			return nil, fmt.Errorf("mpf: LoanBatch of %d bytes", n)
		}
		total += n
		blocks += f.arena.BlocksFor(n)
	}
	if blocks > f.arena.NumBlocks() {
		return nil, fmt.Errorf("%w: batch of %d bytes in %d blocks, region holds %d blocks",
			ErrMessageTooBig, total, blocks, f.arena.NumBlocks())
	}
	l, err := f.lookup(id)
	if err != nil {
		return nil, err
	}
	// Fail fast before the (possibly blocking) allocation; CommitAll
	// re-validates under the lock, exactly as sendBatch does. With
	// credit configured the whole batch's demand is debited in one
	// acquisition, and the check rides along with it.
	var creditGen uint64
	creditBlocks := 0
	if f.cfg.CreditBlocks > 0 && len(ns) > 0 {
		creditBlocks = blocks
		var err error
		if creditGen, err = f.acquireCredit(l, id, pid, creditBlocks); err != nil {
			return nil, err
		}
	} else {
		l.lock.Lock()
		if f.slots[id].Load() != l || l.sends[pid] == nil {
			l.lock.Unlock()
			return nil, fmt.Errorf("%w: send on id %d by process %d", ErrNotConnected, id, pid)
		}
		l.lock.Unlock()
	}

	msgs, buildErr := f.pool.BuildLoanBatch(pid, ns, f.cfg.SendPolicy == BlockUntilFree, f.stop)
	if buildErr != nil {
		f.refundCredit(l, creditGen, creditBlocks)
		if f.stopped.Load() {
			return nil, ErrShutdown
		}
		return nil, fmt.Errorf("%w: %v", ErrNoMemory, buildErr)
	}
	nsCopy := make([]int, len(ns))
	copy(nsCopy, ns)
	return &LoanBatch{f: f, l: l, id: id, pid: pid, msgs: msgs, ns: nsCopy, total: total,
		creditGen: creditGen, creditBlocks: creditBlocks}, nil
}

// Len returns the number of loans in the batch.
func (b *LoanBatch) Len() int { return len(b.ns) }

// Size returns loan i's payload capacity in bytes.
func (b *LoanBatch) Size(i int) int { return b.ns[i] }

// View returns the writable window onto loan i's blocks. Valid until
// the batch is resolved.
func (b *LoanBatch) View(i int) msg.View {
	b.checkLive()
	return b.f.pool.View(b.msgs[i])
}

// Bytes returns loan i as one writable slice when its payload occupies
// a single segment — the common case under span allocation — and
// (nil, false) when fragmentation split it (write through View(i)'s
// Segments or Fill instead).
func (b *LoanBatch) Bytes(i int) ([]byte, bool) { return b.View(i).Contiguous() }

// Fill writes buf into loan i in place, returning the number of bytes
// written (min of the loan's capacity and len(buf)). This is the
// production step for a caller whose payload already lives in a
// private buffer — mpf.Writer and TypedSender batch through it — and
// is deliberately not counted in the copy ledger: the bytes enter the
// shared region exactly once, the minimum any interface taking a
// caller-owned buffer can achieve (the same count as the restricted
// direct-transfer fast path), where the copying plane's PayloadCopiesIn
// records the structural copy Send performs on top of its own
// bookkeeping.
func (b *LoanBatch) Fill(i int, buf []byte) int { return b.View(i).CopyFrom(buf) }

func (b *LoanBatch) checkLive() {
	if b.done {
		panic("mpf: LoanBatch window used after commit or abort")
	}
}

// CommitAll links every loaned message into the circuit's FIFO under a
// single circuit lock acquisition, with one waiter wakeup for the
// whole batch — SendBatch without its copies. The batch is atomic with
// respect to other senders: its messages occupy consecutive sequence
// numbers. After CommitAll the batch is spent; committing a spent
// batch returns ErrLoanDone. If the circuit died while the batch was
// out, every chain is returned (one transaction) and ErrNotConnected
// comes back.
func (b *LoanBatch) CommitAll() error { return b.commitN(len(b.msgs)) }

// CommitN commits the first n loans and aborts the rest — the partial
// resolution for a producer that batched k windows but filled only n.
// The committed prefix is enqueued atomically exactly as by CommitAll;
// the aborted tail goes back to the region in one free-pool
// transaction. CommitN(0) aborts everything (like AbortAll, but
// reporting circuit death if the batch could not have committed).
func (b *LoanBatch) CommitN(n int) error {
	if n < 0 || n > len(b.msgs) {
		return fmt.Errorf("mpf: CommitN(%d) on a batch of %d", n, len(b.msgs))
	}
	return b.commitN(n)
}

func (b *LoanBatch) commitN(n int) error {
	committed, err := b.commit(n)
	b.f.trace(Event{Op: OpLoanBatchCommit, PID: b.pid, LNVC: b.id, Bytes: committed, Err: err})
	return err
}

// commit resolves the batch, enqueueing msgs[:n] and releasing the
// rest. It returns the committed byte count for tracing, computed from
// ns — never from the headers, which stop being ours the moment the
// lock drops.
func (b *LoanBatch) commit(n int) (int, error) {
	if b.done {
		return 0, ErrLoanDone
	}
	b.done = true
	f, l := b.f, b.l
	if f.stopped.Load() {
		f.pool.ReleaseBatch(b.msgs)
		f.refundCredit(l, b.creditGen, b.creditBlocks)
		return 0, ErrShutdown
	}
	total := 0
	for _, sz := range b.ns[:n] {
		total += sz
	}
	l.lock.Lock()
	// Re-validate both the connection and the ID binding: the circuit
	// may have been deleted — and its descriptor recycled for another
	// name — while the caller held the batch.
	if f.slots[b.id].Load() != l || l.sends[b.pid] == nil {
		l.lock.Unlock()
		f.pool.ReleaseBatch(b.msgs)
		f.refundCredit(l, b.creditGen, b.creditBlocks)
		return 0, fmt.Errorf("%w: send on id %d by process %d", ErrNotConnected, b.id, b.pid)
	}
	for _, m := range b.msgs[:n] {
		m.Pending = l.nBcast
		m.FCFSNeeded = true
		l.queue.Enqueue(m)
	}
	if n > 0 {
		l.cond.Broadcast() // one wakeup for the whole batch
		l.wakeWaitersLocked()
	}
	if b.creditBlocks > 0 && n < len(b.ns) && l.gen == b.creditGen {
		// The aborted tail's blocks go back to the region below; its
		// accounted demand goes back to the budget here, under the same
		// lock hold that committed the prefix (the CommitN partial-abort
		// restore).
		tail := 0
		for _, sz := range b.ns[n:] {
			tail += f.arena.BlocksFor(sz)
		}
		f.grantCreditLocked(l, tail)
	}
	l.lock.Unlock()
	if n > 0 && f.cfg.GlobalPulseMux {
		f.pulseActivity()
	}
	f.pool.ReleaseBatch(b.msgs[n:]) // aborted tail, one transaction

	f.stats.sends.Add(uint64(n))
	f.stats.loanBatchSends.Add(uint64(n))
	f.stats.bytesSent.Add(uint64(total))
	return total, nil
}

// AbortAll returns every loaned chain to the region unsent, in one
// free-pool transaction. Aborting a batch that was already resolved is
// a no-op, so AbortAll can be deferred as cleanup on every error path.
func (b *LoanBatch) AbortAll() {
	if b.done {
		return
	}
	b.done = true
	b.f.pool.ReleaseBatch(b.msgs)
	b.f.refundCredit(b.l, b.creditGen, b.creditBlocks)
}
