package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Race tests for the batched zero-copy plane, run in CI's -race
// subset. TestHarvestViewsChurnRace races HarvestViews against
// concurrent CloseReceive churn and an external Selector.Close while
// producers commit LoanBatches: no view's payload may be corrupted (no
// block recycled under a live pin), and nothing may leak once every
// view is released. TestCommitAllReceiverChurnRace races CommitAll
// against receiver close/reopen churn: every batch either commits
// whole or reports the dead circuit with all blocks returned.

func TestHarvestViewsChurnRace(t *testing.T) {
	const (
		circuits = 4
		msgLen   = 64
		perProd  = 300
	)
	f, err := Init(Config{
		MaxLNVCs:         circuits + 2,
		MaxProcesses:     circuits + 1,
		BlocksPerProcess: 256,
		SendPolicy:       FailFast, // churned-out receivers must not wedge senders
	})
	if err != nil {
		t.Fatal(err)
	}
	consumer := circuits // pid

	// rids[i] is the consumer's current receive connection on circuit
	// i, shared between the consumer (reopens) and the churner
	// (closes).
	var mu sync.Mutex
	rids := make([]ID, circuits)
	for i := 0; i < circuits; i++ {
		rid, err := f.OpenReceive(consumer, fmt.Sprintf("hrace-%d", i), FCFS)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	sel, err := f.NewSelector(consumer)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < circuits; i++ {
		if err := sel.Add(rids[i]); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	prodDone := make(chan struct{})
	// Producers: one per circuit, committing stamped LoanBatches. The
	// stamp (circuit index at both payload ends) is what the consumer
	// verifies under churn.
	for i := 0; i < circuits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sid, err := f.OpenSend(i, fmt.Sprintf("hrace-%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			ns := []int{msgLen, msgLen, msgLen}
			sent := 0
			for sent < perProd {
				b, err := f.LoanBatch(i, sid, ns)
				if errors.Is(err, ErrNoMemory) {
					time.Sleep(100 * time.Microsecond) // retained backlog: let the consumer catch up
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < len(ns); j++ {
					if buf, ok := b.Bytes(j); ok {
						buf[0], buf[msgLen-1] = byte(i), byte(i)
					} else {
						stamp := make([]byte, msgLen)
						stamp[0], stamp[msgLen-1] = byte(i), byte(i)
						b.Fill(j, stamp)
					}
				}
				if err := b.CommitAll(); err != nil {
					t.Errorf("producer %d: %v", i, err)
					return
				}
				sent += len(ns)
			}
		}(i)
	}
	go func() {
		wg.Wait()
		close(prodDone)
	}()

	// Churner: closes the consumer's receive connections out from
	// under the parked/harvesting selector. The consumer reopens them.
	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		k := 0
		for {
			select {
			case <-churnStop:
				return
			default:
			}
			i := k % circuits
			k++
			mu.Lock()
			rid := rids[i]
			mu.Unlock()
			// ErrNotConnected means the consumer already reopened under
			// a different id; both outcomes exercise the race.
			if err := f.CloseReceive(consumer, rid); err != nil && !errors.Is(err, ErrNotConnected) && !errors.Is(err, ErrBadLNVC) {
				t.Errorf("churn close: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Consumer: harvests, verifies every view in place, holds a
	// handful across further rounds, and re-adds churned circuits.
	var held []*View
	verify := func(v *View) bool {
		// Both payload ends carry the producer's stamp; a block
		// recycled under the pin would show later traffic instead.
		buf := make([]byte, msgLen)
		if n := v.CopyTo(buf); n != msgLen {
			t.Errorf("harvested view has %d bytes, want %d", n, msgLen)
			return false
		}
		if buf[0] != buf[msgLen-1] || int(buf[0]) >= circuits {
			t.Errorf("view corrupted: ends %d/%d", buf[0], buf[msgLen-1])
			return false
		}
		return true
	}
	reconcile := func() {
		for i := 0; i < circuits; i++ {
			mu.Lock()
			rid := rids[i]
			mu.Unlock()
			if sel.Has(rid) {
				continue
			}
			nrid, err := f.OpenReceive(consumer, fmt.Sprintf("hrace-%d", i), FCFS)
			if errors.Is(err, ErrAlreadyOpen) {
				// Connection still open, registration gone (or about to
				// be re-added under the same id): re-add below.
				nrid = rid
			} else if err != nil {
				t.Errorf("reopen %d: %v", i, err)
				return
			}
			mu.Lock()
			rids[i] = nrid
			mu.Unlock()
			if err := sel.Add(nrid); err != nil && !errors.Is(err, ErrAlreadyOpen) && !errors.Is(err, ErrNotConnected) && !errors.Is(err, ErrSelectorClosed) {
				t.Errorf("re-add %d: %v", i, err)
				return
			}
		}
	}
	consumeDone := make(chan struct{})
	go func() {
		defer close(consumeDone)
		for {
			vs, err := sel.HarvestViewsDeadline(8, 2*time.Millisecond)
			switch {
			case err == nil:
				for _, v := range vs {
					if !verify(v) {
						return
					}
				}
				// Hold a few views across subsequent rounds (and across
				// the churner's closes), release the rest in a batch.
				if len(held) < 8 {
					held = append(held, vs[0])
					ReleaseViews(vs[1:])
				} else {
					ReleaseViews(vs)
				}
			case errors.Is(err, ErrNotConnected):
				reconcile()
			case errors.Is(err, ErrTimeout):
				select {
				case <-prodDone:
					// Producers finished and a full timeout found
					// nothing: stop. (Retained messages on churned-out
					// circuits are discarded with the circuits below.)
					return
				default:
					reconcile()
				}
			case errors.Is(err, ErrSelectorClosed), errors.Is(err, ErrShutdown):
				return
			case errors.Is(err, ErrBadLNVC):
				// Every registration churned away at once.
				reconcile()
			default:
				t.Errorf("harvest: %v", err)
				return
			}
		}
	}()

	<-prodDone
	<-consumeDone
	close(churnStop)
	churnWG.Wait()
	// Close the selector (the concurrent-close path a live consumer
	// would hit) and tear every connection down under the held views.
	sel.Close()
	for i := 0; i < circuits; i++ {
		mu.Lock()
		rid := rids[i]
		mu.Unlock()
		if err := f.CloseReceive(consumer, rid); err != nil && !errors.Is(err, ErrNotConnected) && !errors.Is(err, ErrBadLNVC) {
			t.Error(err)
		}
	}
	for i := 0; i < circuits; i++ {
		if id, ok := f.LNVCByName(fmt.Sprintf("hrace-%d", i)); ok {
			if err := f.CloseSend(i, id); err != nil && !errors.Is(err, ErrNotConnected) && !errors.Is(err, ErrBadLNVC) {
				t.Error(err)
			}
		}
	}
	// Held views must still read intact — their blocks were orphaned to
	// us, never recycled — and releasing them must return every block.
	for _, v := range held {
		verify(v)
	}
	ReleaseViews(held)
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Errorf("block leak: %d of %d free", free, total)
	}
	if err := f.Arena().CheckFreeList(); err != nil {
		t.Errorf("arena free list corrupt: %v", err)
	}
	f.Shutdown()
}

func TestCommitAllReceiverChurnRace(t *testing.T) {
	const (
		rounds = 400
		batch  = 4
	)
	f, err := Init(Config{
		MaxLNVCs:         4,
		MaxProcesses:     3,
		BlocksPerProcess: 128,
		SendPolicy:       FailFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	const name = "commitchurn"
	sid, err := f.OpenSend(0, name)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Receiver churn: open, drain a little through views, close —
	// racing the sender's CommitAll window (batch acquired before the
	// churn, committed after).
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 32)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rid, err := f.OpenReceive(1, name, FCFS)
			if err != nil {
				if errors.Is(err, ErrShutdown) {
					return
				}
				t.Error(err)
				return
			}
			for j := 0; j < 8; j++ {
				if _, ok, err := f.TryReceive(1, rid, buf); err != nil || !ok {
					break
				}
			}
			if err := f.CloseReceive(1, rid); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	committed := 0
	for r := 0; r < rounds; r++ {
		b, err := f.LoanBatch(0, sid, []int{24, 24, 24, 24})
		if errors.Is(err, ErrNoMemory) {
			// Retained backlog from a closed receiver filled the pool;
			// drain it by cycling our own receiver.
			rid, err := f.OpenReceive(0, name, FCFS)
			if err == nil {
				buf := make([]byte, 32)
				for {
					if _, ok, _ := f.TryReceive(0, rid, buf); !ok {
						break
					}
				}
				f.CloseReceive(0, rid)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < batch; j++ {
			if buf, ok := b.Bytes(j); ok {
				buf[0] = byte(r)
			}
		}
		// Commit races the churner's close/reopen; the circuit itself
		// stays alive (our send connection), so only success is legal.
		if err := b.CommitAll(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		committed += batch
	}
	close(stop)
	wg.Wait()

	// Drain what's left, then delete the circuit and check for leaks.
	rid, err := f.OpenReceive(0, name, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	for {
		if _, ok, err := f.TryReceive(0, rid, buf); err != nil || !ok {
			break
		}
	}
	if err := f.CloseReceive(0, rid); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseSend(0, sid); err != nil {
		t.Fatal(err)
	}
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Errorf("block leak after %d committed messages: %d of %d free", committed, free, total)
	}
	if err := f.Arena().CheckFreeList(); err != nil {
		t.Errorf("arena free list corrupt: %v", err)
	}
	f.Shutdown()
}
