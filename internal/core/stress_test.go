package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Failure injection and adversarial stress. Nothing here asserts
// throughput — only that the facility never deadlocks, never corrupts
// its free lists, and fails with the documented errors.

func TestShutdownStormDuringTraffic(t *testing.T) {
	// Shut the facility down while senders and receivers are mid-flight;
	// every goroutine must return promptly with ErrShutdown (or succeed).
	for round := 0; round < 10; round++ {
		f, err := Init(Config{MaxLNVCs: 8, MaxProcesses: 16, BlocksPerProcess: 64})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				name := fmt.Sprintf("storm-%d", pid%3)
				sid, err := f.OpenSend(pid, name)
				if err != nil {
					return
				}
				rid, err := f.OpenReceive(pid, name, FCFS)
				if err != nil {
					return
				}
				buf := make([]byte, 64)
				for {
					if err := f.Send(pid, sid, buf); err != nil {
						if !errors.Is(err, ErrShutdown) && !errors.Is(err, ErrBadLNVC) {
							t.Errorf("send: %v", err)
						}
						return
					}
					if _, err := f.Receive(pid, rid, buf); err != nil {
						if !errors.Is(err, ErrShutdown) {
							t.Errorf("receive: %v", err)
						}
						return
					}
				}
			}(w)
		}
		time.Sleep(time.Duration(round) * time.Millisecond)
		f.Shutdown()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("workers did not unwind after Shutdown")
		}
	}
}

func TestCloseStormWhileSending(t *testing.T) {
	// Receivers open and close aggressively while a sender streams.
	// Invariants: the sender never wedges, and after everything closes
	// the arena is whole.
	f, err := Init(Config{MaxLNVCs: 4, MaxProcesses: 16, BlocksPerProcess: 256, SendPolicy: FailFast})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	sid, _ := f.OpenSend(0, "churny")
	// A stable broadcast receiver keeps the circuit alive and bounded.
	stableID, _ := f.OpenReceive(15, "churny", Broadcast)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // stable drainer
		defer wg.Done()
		buf := make([]byte, 32)
		for {
			if _, ok, err := f.TryReceive(15, stableID, buf); err != nil || !ok {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
		}
	}()
	for w := 1; w <= 6; w++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			buf := make([]byte, 32)
			for i := 0; i < 400; i++ {
				proto := Protocol(rng.Intn(2))
				rid, err := f.OpenReceive(pid, "churny", proto)
				if err != nil {
					continue
				}
				f.TryReceive(pid, rid, buf)
				if err := f.CloseReceive(pid, rid); err != nil {
					t.Errorf("close: %v", err)
				}
			}
		}(w)
	}
	payload := make([]byte, 24)
	for i := 0; i < 2000; i++ {
		if err := f.Send(0, sid, payload); err != nil && !errors.Is(err, ErrNoMemory) {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	// Drain and verify conservation.
	buf := make([]byte, 32)
	for {
		_, ok, err := f.TryReceive(15, stableID, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	f.CloseSend(0, sid)
	f.CloseReceive(15, stableID)
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("blocks leaked after close storm: %d free of %d", free, total)
	}
	if err := f.Arena().CheckFreeList(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionExhaustionStorm(t *testing.T) {
	// Many fail-fast senders against a tiny region: sends fail with
	// ErrNoMemory but nothing corrupts; once drained, capacity returns.
	f, err := Init(Config{MaxLNVCs: 2, MaxProcesses: 8, BlockSize: 16, BlocksPerProcess: 8, SendPolicy: FailFast})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	rid, _ := f.OpenReceive(0, "tiny", FCFS)
	var sent, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w <= 4; w++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sid, err := f.OpenSend(pid, "tiny")
			if err != nil {
				t.Error(err)
				return
			}
			defer f.CloseSend(pid, sid)
			payload := make([]byte, 30)
			for i := 0; i < 500; i++ {
				switch err := f.Send(pid, sid, payload); {
				case err == nil:
					sent.Add(1)
				case errors.Is(err, ErrNoMemory):
					failed.Add(1)
				default:
					t.Errorf("unexpected: %v", err)
					return
				}
			}
		}(w)
	}
	// Concurrent drain.
	drained := int64(0)
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 30)
		for {
			_, ok, err := f.TryReceive(0, rid, buf)
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				drained++
				continue
			}
			select {
			case <-done:
				// final sweep
				for {
					if _, ok, _ := f.TryReceive(0, rid, buf); !ok {
						return
					}
					drained++
				}
			default:
			}
		}
	}()
	wg.Wait()
	close(done)
	time.Sleep(50 * time.Millisecond)
	if failed.Load() == 0 {
		t.Log("no send ever failed; region larger than intended but harmless")
	}
	if err := f.Arena().CheckFreeList(); err != nil {
		t.Fatal(err)
	}
}

func TestManyCircuitsManyProcessesSoak(t *testing.T) {
	// A miniature application mix: pipelines, fan-in, fan-out and
	// broadcast on distinct circuits, all concurrent, verified by
	// counters.
	f, err := Init(Config{MaxLNVCs: 32, MaxProcesses: 24, BlocksPerProcess: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	const msgs = 300
	var wg sync.WaitGroup

	// Pipeline: 4 stages, each forwarding.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var inner sync.WaitGroup
		for stage := 0; stage < 4; stage++ {
			inner.Add(1)
			go func(stage int) {
				defer inner.Done()
				pid := stage
				var in ID
				var err error
				if stage > 0 {
					in, err = f.OpenReceive(pid, fmt.Sprintf("pipe-%d", stage), FCFS)
					if err != nil {
						t.Error(err)
						return
					}
				}
				var out ID
				if stage < 3 {
					out, err = f.OpenSend(pid, fmt.Sprintf("pipe-%d", stage+1))
					if err != nil {
						t.Error(err)
						return
					}
				}
				buf := make([]byte, 4)
				for i := 0; i < msgs; i++ {
					if stage > 0 {
						if _, err := f.Receive(pid, in, buf); err != nil {
							t.Error(err)
							return
						}
					} else {
						buf[0] = byte(i)
					}
					if stage < 3 {
						if err := f.Send(pid, out, buf); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}(stage)
		}
		inner.Wait()
	}()

	// Fan-in: 4 producers, one consumer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var inner sync.WaitGroup
		rid, err := f.OpenReceive(8, "fanin", FCFS)
		if err != nil {
			t.Error(err)
			return
		}
		for p := 9; p <= 12; p++ {
			inner.Add(1)
			go func(pid int) {
				defer inner.Done()
				sid, err := f.OpenSend(pid, "fanin")
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < msgs; i++ {
					if err := f.Send(pid, sid, []byte{1}); err != nil {
						t.Error(err)
						return
					}
				}
			}(p)
		}
		buf := make([]byte, 1)
		for i := 0; i < 4*msgs; i++ {
			if _, err := f.Receive(8, rid, buf); err != nil {
				t.Error(err)
				return
			}
		}
		inner.Wait()
	}()

	// Broadcast: one speaker, 5 listeners.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var inner sync.WaitGroup
		rids := make([]ID, 5)
		for l := 0; l < 5; l++ {
			var err error
			rids[l], err = f.OpenReceive(14+l, "salon", Broadcast)
			if err != nil {
				t.Error(err)
				return
			}
		}
		for l := 0; l < 5; l++ {
			inner.Add(1)
			go func(pid int, rid ID) {
				defer inner.Done()
				buf := make([]byte, 2)
				for i := 0; i < msgs; i++ {
					if _, err := f.Receive(pid, rid, buf); err != nil {
						t.Error(err)
						return
					}
					if buf[0] != byte(i) {
						t.Errorf("listener %d: out of order at %d", pid, i)
						return
					}
				}
			}(14+l, rids[l])
		}
		sid, err := f.OpenSend(13, "salon")
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := f.Send(13, sid, []byte{byte(i), 0}); err != nil {
				t.Error(err)
				return
			}
		}
		inner.Wait()
	}()

	wg.Wait()
	st := f.Stats()
	wantSends := uint64(3*msgs /* pipeline stages 0-2 */ + 4*msgs + msgs)
	if st.Sends != wantSends {
		t.Fatalf("Sends = %d, want %d", st.Sends, wantSends)
	}
	wantRecv := uint64(3*msgs /* stages 1-3 */ + 4*msgs + 5*msgs)
	if st.Receives != wantRecv {
		t.Fatalf("Receives = %d, want %d", st.Receives, wantRecv)
	}
}
