package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/shm"
)

func tableSegment(t *testing.T, nSlots, ringCap int, extra int64) (*shm.Segment, *SegTable) {
	t.Helper()
	seg, err := shm.NewSegment(shm.AlignUp(SegTableBytes(nSlots, ringCap)) + extra + 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	tab, err := InitSegTable(seg, 64, nSlots, ringCap, 7)
	if err != nil {
		t.Fatal(err)
	}
	return seg, tab
}

func TestSegTableClaimDetach(t *testing.T) {
	seg, tab := tableSegment(t, 3, 8, 0)

	peer, err := AttachSegTable(seg, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if peer.NSlots() != 3 || peer.RingCap() != 8 || peer.Generation() != 7 {
		t.Fatalf("attached table reads %d slots, ring cap %d, gen %d",
			peer.NSlots(), peer.RingCap(), peer.Generation())
	}
	if _, err := AttachSegTable(seg, 64, 8); !errors.Is(err, ErrGenerationMismatch) {
		t.Fatalf("stale generation attach: %v", err)
	}
	if _, err := AttachSegTable(seg, 128, 7); err == nil {
		t.Fatal("attach to non-table offset succeeded")
	}

	if err := peer.Claim(1, 1234); err != nil {
		t.Fatal(err)
	}
	if tab.SlotState(1) != SlotAttached || tab.SlotPid(1) != 1234 {
		t.Fatalf("slot 1 state %d pid %d after claim", tab.SlotState(1), tab.SlotPid(1))
	}
	if err := tab.Claim(1, 99); err == nil {
		t.Fatal("double claim succeeded")
	}
	i, err := tab.ClaimAny(42)
	if err != nil || i == 1 {
		t.Fatalf("ClaimAny = %d, %v", i, err)
	}
	peer.Detach(1)
	if tab.SlotState(1) != SlotDetached {
		t.Fatalf("slot 1 state %d after detach", tab.SlotState(1))
	}
	// Detached slots are reclaimable; the attach counter keeps history.
	if err := tab.Claim(1, 77); err != nil {
		t.Fatalf("reclaim of detached slot: %v", err)
	}
	if tab.Attaches(1) != 2 {
		t.Fatalf("slot 1 attach count %d, want 2", tab.Attaches(1))
	}

	// The claimed slot's rings are live in both handles.
	down, err := tab.DownRing(1)
	if err != nil {
		t.Fatal(err)
	}
	peerDown, err := peer.DownRing(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := down.Push(shm.Record{Off: 640, Len: 33, Tag: 2}, time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	rec, err := peerDown.Pop(time.Now().Add(time.Second))
	if err != nil || rec.Off != 640 || rec.Len != 33 || rec.Tag != 2 {
		t.Fatalf("cross-handle pop: %+v, %v", rec, err)
	}
}

// TestSegmentAttachChurnRace drives the full cross-process contention
// pattern inside one address space (goroutine peers over a heap
// segment, so the race detector can see every access): N children
// repeatedly claim a table slot, run loan/view-shaped ring traffic
// through it, and detach — while the parent facility, whose arena
// lives in the *same* segment, allocates and frees payload chains the
// whole time. Run under -race in CI.
func TestSegmentAttachChurnRace(t *testing.T) {
	const (
		nSlots  = 4
		ringCap = 8
		rounds  = 30
	)
	acfg := shm.Config{BlockSize: 64, NumBlocks: 256, Spans: true}
	tableOff := int64(64)
	arenaOff := shm.AlignUp(tableOff + SegTableBytes(nSlots, ringCap))
	seg, err := shm.NewSegment(arenaOff + shm.AlignUp(acfg.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	tab, err := InitSegTable(seg, tableOff, nSlots, ringCap, 1)
	if err != nil {
		t.Fatal(err)
	}
	arena, err := shm.NewAt(acfg, seg.At(arenaOff, acfg.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The parent: continuous allocator traffic against the shared
	// region, plus the echo service on every slot's down ring.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			head, _, err := arena.AllocPayload(200, false, nil)
			if err != nil {
				continue
			}
			arena.WriteChain(head, make([]byte, 200))
			arena.FreeChain(head)
		}
	}()
	for i := 0; i < nSlots; i++ {
		up, err := tab.UpRing(i)
		if err != nil {
			t.Fatal(err)
		}
		down, err := tab.DownRing(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				rec, ok, err := up.TryPop()
				if err != nil {
					return
				}
				if !ok {
					select {
					case <-stop:
						return
					default:
					}
					time.Sleep(50 * time.Microsecond)
					continue
				}
				if err := down.Push(rec, time.Now().Add(5*time.Second)); err != nil {
					return
				}
			}
		}()
	}

	// The children: claim → ring round-trips → detach, in a loop, all
	// through their own AttachSegTable handles.
	var childWG sync.WaitGroup
	for c := 0; c < nSlots*2; c++ {
		childWG.Add(1)
		go func(c int) {
			defer childWG.Done()
			peer, err := AttachSegTable(seg, tableOff, 1)
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				slot, err := peer.ClaimAny(uint32(c))
				if err != nil {
					time.Sleep(100 * time.Microsecond)
					continue
				}
				up, err1 := peer.UpRing(slot)
				down, err2 := peer.DownRing(slot)
				if err1 != nil || err2 != nil {
					t.Errorf("child %d rings: %v %v", c, err1, err2)
					peer.Detach(slot)
					return
				}
				want := shm.Record{Off: int64(c*1000 + r), Len: int32(r), Tag: uint16(c)}
				if err := up.Push(want, time.Now().Add(5*time.Second)); err != nil {
					t.Errorf("child %d push: %v", c, err)
					peer.Detach(slot)
					return
				}
				got, err := down.Pop(time.Now().Add(5 * time.Second))
				if err != nil || got != want {
					t.Errorf("child %d echo: %+v, %v (want %+v)", c, got, err, want)
					peer.Detach(slot)
					return
				}
				peer.Detach(slot)
			}
		}(c)
	}

	childWG.Wait()
	close(stop)
	wg.Wait()
	if err := arena.CheckFreeList(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nSlots; i++ {
		if s := tab.SlotState(i); s == SlotAttached {
			t.Fatalf("slot %d still attached after churn", i)
		}
	}
}
