package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/shm"
)

func tableSegment(t *testing.T, nSlots, ringCap int, extra int64) (*shm.Segment, *SegTable) {
	t.Helper()
	seg, err := shm.NewSegment(shm.AlignUp(SegTableBytes(nSlots, ringCap)) + extra + 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	tab, err := InitSegTable(seg, 64, nSlots, ringCap, 7)
	if err != nil {
		t.Fatal(err)
	}
	return seg, tab
}

func TestSegTableClaimDetach(t *testing.T) {
	seg, tab := tableSegment(t, 3, 8, 0)

	peer, err := AttachSegTable(seg, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if peer.NSlots() != 3 || peer.RingCap() != 8 || peer.Generation() != 7 {
		t.Fatalf("attached table reads %d slots, ring cap %d, gen %d",
			peer.NSlots(), peer.RingCap(), peer.Generation())
	}
	if _, err := AttachSegTable(seg, 64, 8); !errors.Is(err, ErrGenerationMismatch) {
		t.Fatalf("stale generation attach: %v", err)
	}
	if _, err := AttachSegTable(seg, 128, 7); err == nil {
		t.Fatal("attach to non-table offset succeeded")
	}

	if err := peer.Claim(1, 1234); err != nil {
		t.Fatal(err)
	}
	if tab.SlotState(1) != SlotAttached || tab.SlotPid(1) != 1234 {
		t.Fatalf("slot 1 state %d pid %d after claim", tab.SlotState(1), tab.SlotPid(1))
	}
	if err := tab.Claim(1, 99); err == nil {
		t.Fatal("double claim succeeded")
	}
	i, err := tab.ClaimAny(42)
	if err != nil || i == 1 {
		t.Fatalf("ClaimAny = %d, %v", i, err)
	}
	peer.Detach(1)
	if tab.SlotState(1) != SlotDetached {
		t.Fatalf("slot 1 state %d after detach", tab.SlotState(1))
	}
	// Detached slots are reclaimable; the attach counter keeps history.
	if err := tab.Claim(1, 77); err != nil {
		t.Fatalf("reclaim of detached slot: %v", err)
	}
	if tab.Attaches(1) != 2 {
		t.Fatalf("slot 1 attach count %d, want 2", tab.Attaches(1))
	}

	// The claimed slot's rings are live in both handles.
	down, err := tab.DownRing(1)
	if err != nil {
		t.Fatal(err)
	}
	peerDown, err := peer.DownRing(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := down.Push(shm.Record{Off: 640, Len: 33, Tag: 2}, time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	rec, err := peerDown.Pop(time.Now().Add(time.Second))
	if err != nil || rec.Off != 640 || rec.Len != 33 || rec.Tag != 2 {
		t.Fatalf("cross-handle pop: %+v, %v", rec, err)
	}
}

// TestSegTableDeadSlotGeneration is the pid-reuse story: a reaper that
// observed incarnation G of a slot must not be able to kill incarnation
// G+1, even when the OS recycled the dead owner's pid onto the new
// claimant. The generation is packed into the state word, so MarkDead
// with a stale generation is a failed CAS, not a misfire.
func TestSegTableDeadSlotGeneration(t *testing.T) {
	_, tab := tableSegment(t, 2, 8, 0)

	gen1, err := tab.ClaimGen(0, 4321)
	if err != nil {
		t.Fatal(err)
	}

	// Owner dies without detaching; the old incarnation detaches...
	// no — it vanishes. A new peer with the *recycled pid* grabs the
	// slot only after a detach; while attached the claim is refused.
	if err := tab.Claim(0, 4321); err == nil {
		t.Fatal("claim of attached slot succeeded")
	}

	// The reaper marks incarnation gen1 dead.
	if !tab.MarkDead(0, gen1) {
		t.Fatal("MarkDead with current generation failed")
	}
	if s := tab.SlotState(0); s != SlotDead {
		t.Fatalf("slot state %d after MarkDead", s)
	}
	// A second reaper (or a stale retry) cannot double-kill.
	if tab.MarkDead(0, gen1) {
		t.Fatal("MarkDead succeeded twice for one generation")
	}
	// Dead slots refuse claims until reclamation frees them.
	if err := tab.Claim(0, 9); !errors.Is(err, ErrSlotDead) {
		t.Fatalf("claim of dead slot: %v", err)
	}
	if i, err := tab.ClaimAny(9); err == nil && i == 0 {
		t.Fatal("ClaimAny handed out a dead slot")
	}

	// Reclamation completes: rings reformatted, slot freed.
	if err := tab.ReformatRings(0); err != nil {
		t.Fatal(err)
	}
	if tab.FreeSlot(0, gen1+1) {
		t.Fatal("FreeSlot with wrong generation succeeded")
	}
	if !tab.FreeSlot(0, gen1) {
		t.Fatal("FreeSlot with matching generation failed")
	}
	if s := tab.SlotState(0); s != SlotFree {
		t.Fatalf("slot state %d after FreeSlot", s)
	}

	// New peer — same recycled pid — claims the freed slot. The
	// generation moved, so the old reaper's view is dead forever.
	gen2, err := tab.ClaimGen(0, 4321)
	if err != nil {
		t.Fatal(err)
	}
	if gen2 != gen1+1 {
		t.Fatalf("generation %d after reclaim-and-claim, want %d", gen2, gen1+1)
	}
	if tab.MarkDead(0, gen1) {
		t.Fatal("stale-generation MarkDead killed the new incarnation")
	}
	if s := tab.SlotState(0); s != SlotAttached {
		t.Fatalf("new incarnation state %d after stale MarkDead", s)
	}
	// A late Detach from a thread of the dead incarnation is also
	// harmless once the state moved on: Detach only touches attached
	// slots, and the reclaim path only ever transitions its own gen.
	tab.Detach(0)
	if tab.MarkDead(0, gen2) {
		t.Fatal("MarkDead of detached slot succeeded")
	}
	if tab.Attaches(0) != 2 {
		t.Fatalf("attach count %d, want 2", tab.Attaches(0))
	}
}

// TestPeerDeathChurnRace is TestSegmentAttachChurnRace with violence: a
// fraction of the children "crash" — abandon their slot mid-traffic
// without detaching — and a reaper goroutine concurrently marks
// abandoned incarnations dead, reformats their rings and frees the
// slots while other children churn claims. Run under -race in CI.
func TestPeerDeathChurnRace(t *testing.T) {
	const (
		nSlots  = 4
		ringCap = 8
		rounds  = 25
	)
	seg, err := shm.NewSegment(shm.AlignUp(SegTableBytes(nSlots, ringCap)) + 128)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	tab, err := InitSegTable(seg, 64, nSlots, ringCap, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Deaths are announced to the reaper as (slot, gen) pairs — the
	// in-process stand-in for the pid probe deciding a peer is gone.
	deaths := make(chan [2]uint32, nSlots*16)

	stop := make(chan struct{})
	var reaperWG sync.WaitGroup
	reaperWG.Add(1)
	go func() {
		defer reaperWG.Done()
		for {
			select {
			case d := <-deaths:
				slot, gen := int(d[0]), d[1]
				if !tab.MarkDead(slot, gen) {
					continue // stale: the incarnation already moved on
				}
				if err := tab.ReformatRings(slot); err != nil {
					t.Error(err)
				}
				if !tab.FreeSlot(slot, gen) {
					t.Errorf("FreeSlot(%d, %d) failed on a slot we marked dead", slot, gen)
				}
			case <-stop:
				return
			}
		}
	}()

	var childWG sync.WaitGroup
	for c := 0; c < nSlots*2; c++ {
		childWG.Add(1)
		go func(c int) {
			defer childWG.Done()
			peer, err := AttachSegTable(seg, 64, 1)
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				slot, err := peer.ClaimAny(uint32(c))
				if err != nil {
					time.Sleep(100 * time.Microsecond)
					continue
				}
				gen := peer.SlotGen(slot)
				up, err := peer.UpRing(slot)
				if err != nil {
					t.Error(err)
					return
				}
				// Traffic, then either a clean detach or a "crash":
				// walk away and let the reaper find the corpse.
				up.TryPush(shm.Record{Off: int64(c*1000 + r), Tag: uint16(c)})
				if (c+r)%3 == 0 {
					deaths <- [2]uint32{uint32(slot), gen}
				} else {
					peer.Detach(slot)
				}
			}
		}(c)
	}

	childWG.Wait()
	// Drain any still-queued deaths, then stop the reaper.
	for {
		select {
		case d := <-deaths:
			slot, gen := int(d[0]), d[1]
			if tab.MarkDead(slot, gen) {
				if err := tab.ReformatRings(slot); err != nil {
					t.Error(err)
				}
				tab.FreeSlot(slot, gen)
			}
		default:
			close(stop)
			reaperWG.Wait()
			// Every slot must be reusable: nothing attached, nothing
			// stuck dead.
			for i := 0; i < nSlots; i++ {
				if s := tab.SlotState(i); s == SlotAttached || s == SlotDead {
					t.Fatalf("slot %d state %d after churn with deaths", i, s)
				}
				if err := tab.Claim(i, 1); err != nil {
					t.Fatalf("slot %d not claimable after churn: %v", i, err)
				}
				tab.Detach(i)
			}
			return
		}
	}
}

// TestSegmentAttachChurnRace drives the full cross-process contention
// pattern inside one address space (goroutine peers over a heap
// segment, so the race detector can see every access): N children
// repeatedly claim a table slot, run loan/view-shaped ring traffic
// through it, and detach — while the parent facility, whose arena
// lives in the *same* segment, allocates and frees payload chains the
// whole time. Run under -race in CI.
func TestSegmentAttachChurnRace(t *testing.T) {
	const (
		nSlots  = 4
		ringCap = 8
		rounds  = 30
	)
	acfg := shm.Config{BlockSize: 64, NumBlocks: 256, Spans: true}
	tableOff := int64(64)
	arenaOff := shm.AlignUp(tableOff + SegTableBytes(nSlots, ringCap))
	seg, err := shm.NewSegment(arenaOff + shm.AlignUp(acfg.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	tab, err := InitSegTable(seg, tableOff, nSlots, ringCap, 1)
	if err != nil {
		t.Fatal(err)
	}
	arena, err := shm.NewAt(acfg, seg.At(arenaOff, acfg.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The parent: continuous allocator traffic against the shared
	// region, plus the echo service on every slot's down ring.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			head, _, err := arena.AllocPayload(200, false, nil)
			if err != nil {
				continue
			}
			arena.WriteChain(head, make([]byte, 200))
			arena.FreeChain(head)
		}
	}()
	for i := 0; i < nSlots; i++ {
		up, err := tab.UpRing(i)
		if err != nil {
			t.Fatal(err)
		}
		down, err := tab.DownRing(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				rec, ok, err := up.TryPop()
				if err != nil {
					return
				}
				if !ok {
					select {
					case <-stop:
						return
					default:
					}
					time.Sleep(50 * time.Microsecond)
					continue
				}
				if err := down.Push(rec, time.Now().Add(5*time.Second)); err != nil {
					return
				}
			}
		}()
	}

	// The children: claim → ring round-trips → detach, in a loop, all
	// through their own AttachSegTable handles.
	var childWG sync.WaitGroup
	for c := 0; c < nSlots*2; c++ {
		childWG.Add(1)
		go func(c int) {
			defer childWG.Done()
			peer, err := AttachSegTable(seg, tableOff, 1)
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				slot, err := peer.ClaimAny(uint32(c))
				if err != nil {
					time.Sleep(100 * time.Microsecond)
					continue
				}
				up, err1 := peer.UpRing(slot)
				down, err2 := peer.DownRing(slot)
				if err1 != nil || err2 != nil {
					t.Errorf("child %d rings: %v %v", c, err1, err2)
					peer.Detach(slot)
					return
				}
				want := shm.Record{Off: int64(c*1000 + r), Len: int32(r), Tag: uint16(c)}
				if err := up.Push(want, time.Now().Add(5*time.Second)); err != nil {
					t.Errorf("child %d push: %v", c, err)
					peer.Detach(slot)
					return
				}
				got, err := down.Pop(time.Now().Add(5 * time.Second))
				if err != nil || got != want {
					t.Errorf("child %d echo: %+v, %v (want %+v)", c, got, err, want)
					peer.Detach(slot)
					return
				}
				peer.Detach(slot)
			}
		}(c)
	}

	childWG.Wait()
	close(stop)
	wg.Wait()
	if err := arena.CheckFreeList(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nSlots; i++ {
		if s := tab.SlotState(i); s == SlotAttached {
			t.Fatalf("slot %d still attached after churn", i)
		}
	}
}
