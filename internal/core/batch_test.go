package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func batchFacility(t *testing.T, cfg Config) *Facility {
	t.Helper()
	f, err := Init(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	return f
}

func TestSendBatchReceiveBatchRoundTrip(t *testing.T) {
	f := batchFacility(t, Config{MaxProcesses: 2})
	sid, err := f.OpenSend(0, "batch")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := f.OpenReceive(1, "batch", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([][]byte, 5)
	for i := range bufs {
		bufs[i] = []byte(fmt.Sprintf("msg-%d", i))
	}
	if err := f.SendBatch(0, sid, bufs); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.BatchSends != 1 || st.Sends != 5 {
		t.Errorf("stats after SendBatch: BatchSends=%d Sends=%d, want 1 and 5", st.BatchSends, st.Sends)
	}
	out := make([][]byte, 8)
	for i := range out {
		out[i] = make([]byte, 16)
	}
	ns, err := f.ReceiveBatch(1, rid, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 5 {
		t.Fatalf("ReceiveBatch consumed %d messages, want 5", len(ns))
	}
	for i, n := range ns {
		want := fmt.Sprintf("msg-%d", i)
		if got := string(out[i][:n]); got != want {
			t.Errorf("message %d: got %q, want %q", i, got, want)
		}
	}
	st = f.Stats()
	if st.BatchReceives != 1 || st.Receives != 5 {
		t.Errorf("stats after ReceiveBatch: BatchReceives=%d Receives=%d, want 1 and 5", st.BatchReceives, st.Receives)
	}
}

func TestSendBatchIsContiguousUnderConcurrentSenders(t *testing.T) {
	// Two senders each push batches; every batch must occupy
	// consecutive positions in the FIFO with no interleaving.
	f := batchFacility(t, Config{MaxProcesses: 3, BlocksPerProcess: 512})
	const batches, batchLen = 40, 8
	rid, err := f.OpenReceive(2, "atomic", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for pid := 0; pid < 2; pid++ {
		go func(pid int) {
			sid, err := f.OpenSend(pid, "atomic")
			if err != nil {
				errs <- err
				return
			}
			for b := 0; b < batches; b++ {
				bufs := make([][]byte, batchLen)
				for i := range bufs {
					bufs[i] = []byte{byte(pid), byte(b), byte(i)}
				}
				if err := f.SendBatch(pid, sid, bufs); err != nil {
					errs <- err
					return
				}
			}
			errs <- f.CloseSend(pid, sid)
		}(pid)
	}
	buf := make([]byte, 3)
	for got := 0; got < 2*batches*batchLen; got++ {
		n, err := f.Receive(2, rid, buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("message %d: %d bytes, want 3", got, n)
		}
		if want := byte(got % batchLen); buf[2] != want {
			t.Fatalf("message %d: batch offset %d, want %d (batch from pid %d interleaved)",
				got, buf[2], want, buf[0])
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSendBatchValidation(t *testing.T) {
	f := batchFacility(t, Config{MaxProcesses: 2, BlocksPerProcess: 8})
	sid, err := f.OpenSend(0, "v")
	if err != nil {
		t.Fatal(err)
	}
	// Empty batch: validates and succeeds without touching stats.
	if err := f.SendBatch(0, sid, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if st := f.Stats(); st.BatchSends != 0 {
		t.Errorf("empty batch counted: BatchSends=%d", st.BatchSends)
	}
	// Not connected.
	if err := f.SendBatch(1, sid, [][]byte{{1}}); !errors.Is(err, ErrNotConnected) {
		t.Errorf("unconnected SendBatch: %v, want ErrNotConnected", err)
	}
	// Batch bigger than the whole region can ever hold.
	huge := make([][]byte, f.Arena().NumBlocks()+1)
	for i := range huge {
		huge[i] = []byte{1}
	}
	if err := f.SendBatch(0, sid, huge); !errors.Is(err, ErrMessageTooBig) {
		t.Errorf("oversized batch: %v, want ErrMessageTooBig", err)
	}
	// Bad id.
	if err := f.SendBatch(0, 99, [][]byte{{1}}); !errors.Is(err, ErrBadLNVC) {
		t.Errorf("bad id: %v, want ErrBadLNVC", err)
	}
}

func TestReceiveBatchValidationAndDeadline(t *testing.T) {
	f := batchFacility(t, Config{MaxProcesses: 2})
	rid, err := f.OpenReceive(0, "rb", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	// Zero buffers: immediate empty result even with nothing queued.
	ns, err := f.ReceiveBatch(0, rid, nil)
	if err != nil || len(ns) != 0 {
		t.Errorf("zero-buffer ReceiveBatch: %v %v", ns, err)
	}
	// Not connected.
	if _, err := f.ReceiveBatch(1, rid, [][]byte{make([]byte, 4)}); !errors.Is(err, ErrNotConnected) {
		t.Errorf("unconnected ReceiveBatch: %v, want ErrNotConnected", err)
	}
	// Deadline with no traffic times out.
	start := time.Now()
	if _, err := f.ReceiveBatchDeadline(0, rid, [][]byte{make([]byte, 4)}, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("deadline: %v, want ErrTimeout", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("deadline returned too early")
	}
}

func TestReceiveBatchBlocksThenDrains(t *testing.T) {
	f := batchFacility(t, Config{MaxProcesses: 2})
	sid, err := f.OpenSend(0, "drain")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := f.OpenReceive(1, "drain", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []int, 1)
	go func() {
		out := [][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 8)}
		ns, err := f.ReceiveBatch(1, rid, out)
		if err != nil {
			done <- nil
			return
		}
		done <- ns
	}()
	time.Sleep(20 * time.Millisecond) // let the receiver block
	if err := f.SendBatch(0, sid, [][]byte{[]byte("a"), []byte("bb")}); err != nil {
		t.Fatal(err)
	}
	select {
	case ns := <-done:
		// The receiver may wake after one or both messages are linked;
		// either way it must consume at least one and not block again.
		if len(ns) == 0 {
			t.Fatal("ReceiveBatch returned no messages")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ReceiveBatch did not wake")
	}
}

func TestSendBatchBroadcastDelivery(t *testing.T) {
	f := batchFacility(t, Config{MaxProcesses: 3})
	sid, err := f.OpenSend(0, "bc")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := f.OpenReceive(1, "bc", Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.OpenReceive(2, "bc", Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("x"), []byte("yy"), []byte("zzz")}
	if err := f.SendBatch(0, sid, payloads); err != nil {
		t.Fatal(err)
	}
	for pid, rid := range map[int]ID{1: r1, 2: r2} {
		out := [][]byte{make([]byte, 4), make([]byte, 4), make([]byte, 4)}
		ns, err := f.ReceiveBatch(pid, rid, out)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) != 3 {
			t.Fatalf("pid %d consumed %d messages, want 3", pid, len(ns))
		}
		for i, n := range ns {
			if !bytes.Equal(out[i][:n], payloads[i]) {
				t.Errorf("pid %d message %d: got %q, want %q", pid, i, out[i][:n], payloads[i])
			}
		}
	}
	// Everything consumed by every broadcast receiver: blocks recycled.
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Errorf("%d of %d blocks free after full broadcast consumption", free, total)
	}
}
