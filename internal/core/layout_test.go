package core

import (
	"testing"
	"unsafe"
)

// The false-sharing layout contract (DESIGN.md §16): every hot word a
// spinning peer can invalidate gets a 64-byte cache line to itself.
// These assertions exist so a future field insertion cannot silently
// push two hot words back onto one line — the regression would show up
// only as a few percent of cross-core throughput, which no functional
// test catches.

const cacheLine = 64

// sameLine reports whether byte ranges [a, a+an) and [b, b+bn) can
// touch a common 64-byte line (assuming the struct base is
// line-aligned — heap bases may be offset, but fields separated within
// the struct stay separated at any base).
func sameLine(a, an, b, bn uintptr) bool {
	return a/cacheLine == (b+bn-1)/cacheLine || b/cacheLine == (a+an-1)/cacheLine
}

func TestHotWordLayout(t *testing.T) {
	// Registry shards sit adjacent in one slice: the shard lock must
	// own its line and the whole shard must be a line multiple, or
	// neighbouring shards' locks land on one line.
	var rs registryShard
	if got := unsafe.Sizeof(rs); got%cacheLine != 0 {
		t.Errorf("registryShard is %d bytes, want a multiple of %d", got, cacheLine)
	}
	if sameLine(unsafe.Offsetof(rs.lock), unsafe.Sizeof(rs.lock), unsafe.Offsetof(rs.names), 8) {
		t.Errorf("registryShard lock (at %d) shares a line with names (at %d)",
			unsafe.Offsetof(rs.lock), unsafe.Offsetof(rs.names))
	}

	// The circuit lock is the facility's hottest word; the fields
	// after it are walked while it is held by others.
	var l lnvc
	if sameLine(unsafe.Offsetof(l.lock), unsafe.Sizeof(l.lock), unsafe.Offsetof(l.cond), 8) {
		t.Errorf("lnvc lock (at %d) shares a line with cond (at %d)",
			unsafe.Offsetof(l.lock), unsafe.Offsetof(l.cond))
	}

	// The credit ledger's debit word versus the waiter list senders
	// park on and receivers drain.
	if sameLine(unsafe.Offsetof(l.creditUsed), unsafe.Sizeof(l.creditUsed),
		unsafe.Offsetof(l.creditWaiters), unsafe.Sizeof(l.creditWaiters)) {
		t.Errorf("lnvc creditUsed (at %d) shares a line with creditWaiters (at %d)",
			unsafe.Offsetof(l.creditUsed), unsafe.Offsetof(l.creditWaiters))
	}

	// The selector's mu/ready group is hammered by senders (markReady
	// under the firing circuit's lock); the fields before the pad
	// belong to the parked owner.
	var s Selector
	if unsafe.Offsetof(s.mu)%cacheLine != 0 {
		t.Errorf("Selector.mu at offset %d, want a %d-byte boundary", unsafe.Offsetof(s.mu), cacheLine)
	}
	if sameLine(unsafe.Offsetof(s.w), 8, unsafe.Offsetof(s.mu), unsafe.Sizeof(s.mu)) {
		t.Errorf("Selector.w (at %d) shares a line with mu (at %d)",
			unsafe.Offsetof(s.w), unsafe.Offsetof(s.mu))
	}
}
