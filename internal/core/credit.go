package core

import (
	"errors"
	"fmt"
)

// Per-circuit credit-based flow control. The paper's only backpressure
// signal is global block-pool exhaustion: a sender discovers the region
// is full only when BlockUntilFree parks it on the arena's free-pool
// wait, where it competes with every other sender in the facility. One
// hot circuit can therefore monopolise the arena and stall every
// tenant — the unfairness the fairness ablation (mpfbench -credit)
// measures. Credit bounds each circuit's arena share instead:
//
//   - Config.CreditBlocks grants every circuit a receiver-side budget,
//     accounted in blocks — the unit the arena actually allocates and
//     the same worst-case BlocksFor demand the capacity checks use.
//   - Send/SendBatch/SendLoan/LoanBatch debit the budget at allocation
//     time, under the circuit lock. A send that would overdraw parks on
//     a per-circuit credit waiter list (BlockUntilFree) or returns
//     ErrNoCredit (FailFast). Waiter lists keep wakeups O(parked on
//     this circuit), exactly like the receive-side waiter lists they
//     mirror (waiter.go).
//   - Credits return to the budget when the message's blocks return to
//     the region while the circuit lives: the reclaim scan re-grants
//     every victim's Message.Blocks and wakes parked senders in batch.
//     A loan abort (Loan.Abort, LoanBatch.AbortAll, the aborted tail of
//     a CommitN, a commit that lost its circuit) refunds its
//     never-enqueued demand the same way.
//   - A circuit that dies zeroes its ledger: unread messages are
//     dropped (their credits die with the circuit) and pinned messages
//     are orphaned to their pin holders — the orphan's blocks go back
//     to the arena at the last unpin, but its credits are restored to
//     the facility-wide CreditsHeld gauge at orphaning time, because
//     the budget they were debited from no longer exists. Refunds
//     arriving after death (an outstanding loan aborting late) are
//     rejected by the descriptor generation check, so a recycled
//     descriptor's fresh ledger can never be corrupted by its previous
//     life's traffic.
//
// Credit is receiver-granted: it only flows back when a receiver (or
// the reclaim rules acting for one) releases blocks. A sender parked
// for credit on a circuit whose last receiver departs can therefore
// never be satisfied, so the close path wakes the credit waiters and
// the wait loop fails them with a prompt ErrNotConnected instead of
// parking forever — the same promptness contract the receive-side parks
// got in the selector work.

// ErrNoCredit is returned by the send-side primitives when the
// circuit's credit budget cannot cover the message under the FailFast
// policy — or, under either policy, when a single message's block
// demand exceeds the whole budget and so could never be granted.
var ErrNoCredit = errors.New("mpf: circuit out of credit blocks")

// creditWaiter is one sender parked for circuit credit. ch has
// capacity 1 so a grant firing while the sender is between the list
// and the park is retained.
type creditWaiter struct {
	ch chan struct{}
}

// wakeCreditWaitersLocked fires every parked credit waiter on l so
// each re-evaluates the budget (or its connection). Called under
// l.lock after any event that can change the answer: a credit grant, a
// connection close, circuit deletion.
func (l *lnvc) wakeCreditWaitersLocked() {
	for _, w := range l.creditWaiters {
		select {
		case w.ch <- struct{}{}:
		default:
		}
	}
}

// removeCreditWaiterLocked removes one registration of w from l's
// list; a w no longer present (the descriptor was recycled and its
// list cleared by reset) is a no-op.
func (l *lnvc) removeCreditWaiterLocked(w *creditWaiter) {
	for i, x := range l.creditWaiters {
		if x == w {
			last := len(l.creditWaiters) - 1
			l.creditWaiters[i] = l.creditWaiters[last]
			l.creditWaiters[last] = nil
			l.creditWaiters = l.creditWaiters[:last]
			return
		}
	}
}

// acquireCredit debits blocks from id's budget, parking until the
// budget can cover them (BlockUntilFree) or failing with ErrNoCredit
// (FailFast). It re-validates the connection on entry and on every
// wake, so a sender parked for credit observes CloseSend, circuit
// deletion, the departure of the last receiver, and Shutdown promptly.
// On success it returns the descriptor generation at debit time, which
// refundCredit uses to reject refunds that outlive the circuit. The
// caller must have checked cfg.CreditBlocks > 0.
func (f *Facility) acquireCredit(l *lnvc, id ID, pid, blocks int) (uint64, error) {
	budget := f.cfg.CreditBlocks
	l.lock.Lock()
	for {
		if f.slots[id].Load() != l || l.sends[pid] == nil {
			l.lock.Unlock()
			return 0, fmt.Errorf("%w: send on id %d by process %d", ErrNotConnected, id, pid)
		}
		if blocks > budget {
			l.lock.Unlock()
			return 0, fmt.Errorf("%w: message of %d blocks exceeds the circuit budget of %d",
				ErrNoCredit, blocks, budget)
		}
		if int(l.creditUsed)+blocks <= budget {
			l.creditUsed += int32(blocks)
			gen := l.gen
			l.lock.Unlock()
			f.stats.creditsHeld.Add(int64(blocks))
			return gen, nil
		}
		if f.cfg.SendPolicy == FailFast {
			used := l.creditUsed
			l.lock.Unlock()
			return 0, fmt.Errorf("%w: circuit %d holds %d of %d credit blocks, need %d",
				ErrNoCredit, id, used, budget, blocks)
		}
		if l.nFCFS+l.nBcast == 0 {
			// Receiver-granted credit with no receiver connected: the
			// grant can never arrive, so failing beats deadlock. This is
			// how a CloseReceive that removes the last receiver turns a
			// parked credit waiter into a prompt error.
			l.lock.Unlock()
			return 0, fmt.Errorf("%w: credit wait on id %d with no receiver connected", ErrNotConnected, id)
		}
		w := &creditWaiter{ch: make(chan struct{}, 1)}
		l.creditWaiters = append(l.creditWaiters, w)
		l.lock.Unlock()
		f.stats.creditStalls.Add(1)
		f.trace(Event{Op: OpCreditStall, PID: pid, LNVC: id, Bytes: blocks * f.arena.BlockSize()})
		select {
		case <-w.ch:
		case <-f.stop:
			l.lock.Lock()
			l.removeCreditWaiterLocked(w)
			l.lock.Unlock()
			return 0, ErrShutdown
		}
		l.lock.Lock()
		l.removeCreditWaiterLocked(w)
	}
}

// grantCreditLocked returns blocks to l's budget and wakes parked
// credit waiters. Called under l.lock. The clamp to the outstanding
// debit makes late grants — a reclaim on a descriptor whose ledger was
// zeroed at circuit death and recycled — harmless: they grant nothing
// and leave the CreditsHeld gauge consistent (the death path already
// restored those credits).
func (f *Facility) grantCreditLocked(l *lnvc, blocks int) {
	if f.cfg.CreditBlocks <= 0 || blocks <= 0 {
		return
	}
	if int(l.creditUsed) < blocks {
		blocks = int(l.creditUsed)
	}
	if blocks == 0 {
		return
	}
	l.creditUsed -= int32(blocks)
	f.stats.creditsHeld.Add(-int64(blocks))
	l.wakeCreditWaitersLocked()
}

// refundCredit returns a never-enqueued debit (an aborted or
// circuit-lost loan, a failed build) to the budget. The generation
// check rejects a refund whose circuit died or was recycled since the
// debit: the death path restored those credits to the gauge already,
// and the descriptor's current ledger belongs to someone else.
func (f *Facility) refundCredit(l *lnvc, gen uint64, blocks int) {
	if f.cfg.CreditBlocks <= 0 || blocks <= 0 {
		return
	}
	l.lock.Lock()
	if l.gen == gen {
		f.grantCreditLocked(l, blocks)
	}
	l.lock.Unlock()
}

// dropLedgerLocked zeroes a dying circuit's ledger, restoring its
// outstanding debits to the facility-wide gauge — the orphan-restore
// rule: a pinned message orphaned at circuit death keeps its blocks
// until the last unpin, but its credits return here, at orphaning
// time, because the budget they came from is gone. Called under l.lock
// from the close path's deletion branch.
func (f *Facility) dropLedgerLocked(l *lnvc) {
	if l.creditUsed != 0 {
		f.stats.creditsHeld.Add(-int64(l.creditUsed))
		l.creditUsed = 0
	}
}

// CreditBlocksFor reports the credit ledger's accounted demand for an
// n-byte message — Arena.BlocksFor, exposed so tests and callers can
// reason about budgets in the ledger's own unit.
func (f *Facility) CreditBlocksFor(n int) int { return f.arena.BlocksFor(n) }
