package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// Concurrency stress tests and property-based tests of the delivery
// invariants. These run under -race in CI.

func TestConcurrentSendersSingleFCFSReceiver(t *testing.T) {
	f := newFac(t)
	const nSenders, perSender = 6, 200
	rid, _ := f.OpenReceive(0, "manyin", FCFS)
	var wg sync.WaitGroup
	for s := 1; s <= nSenders; s++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sid, err := f.OpenSend(pid, "manyin")
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 8)
			for i := 0; i < perSender; i++ {
				binary.LittleEndian.PutUint32(buf[0:], uint32(pid))
				binary.LittleEndian.PutUint32(buf[4:], uint32(i))
				if err := f.Send(pid, sid, buf); err != nil {
					t.Error(err)
					return
				}
			}
			if err := f.CloseSend(pid, sid); err != nil {
				t.Error(err)
			}
		}(s)
	}

	// Per-sender streams must arrive in order (time-ordered FIFO), and
	// every message must arrive exactly once.
	lastSeen := make(map[uint32]int)
	buf := make([]byte, 8)
	for n := 0; n < nSenders*perSender; n++ {
		got, err := f.Receive(0, rid, buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != 8 {
			t.Fatalf("short message: %d bytes", got)
		}
		pid := binary.LittleEndian.Uint32(buf[0:])
		seq := int(binary.LittleEndian.Uint32(buf[4:]))
		if last, ok := lastSeen[pid]; ok && seq != last+1 {
			t.Fatalf("sender %d: message %d after %d", pid, seq, last)
		} else if !ok && seq != 0 {
			t.Fatalf("sender %d: first message is %d", pid, seq)
		}
		lastSeen[pid] = seq
	}
	wg.Wait()
	if ok, _ := f.CheckReceive(0, rid); ok {
		t.Fatal("extra messages after all senders finished")
	}
}

func TestConcurrentFCFSReceiversPartition(t *testing.T) {
	f := newFac(t)
	const nRecv, nMsgs = 5, 500
	sid, _ := f.OpenSend(0, "part")
	type rec struct {
		pid int
		val uint32
	}
	results := make(chan rec, nMsgs)
	var wg sync.WaitGroup
	for r := 1; r <= nRecv; r++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rid, err := f.OpenReceive(pid, "part", FCFS)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 4)
			for {
				n, err := f.Receive(pid, rid, buf)
				if err != nil {
					return // shutdown after drain
				}
				if n != 4 {
					t.Errorf("short read: %d", n)
					return
				}
				v := binary.LittleEndian.Uint32(buf)
				if v == ^uint32(0) { // poison: stop
					return
				}
				results <- rec{pid, v}
			}
		}(r)
	}
	buf := make([]byte, 4)
	for i := 0; i < nMsgs; i++ {
		binary.LittleEndian.PutUint32(buf, uint32(i))
		if err := f.Send(0, sid, buf); err != nil {
			t.Fatal(err)
		}
	}
	// One poison pill per receiver.
	binary.LittleEndian.PutUint32(buf, ^uint32(0))
	for r := 0; r < nRecv; r++ {
		f.Send(0, sid, buf)
	}
	wg.Wait()
	close(results)
	seen := make(map[uint32]bool)
	for r := range results {
		if seen[r.val] {
			t.Fatalf("message %d delivered twice", r.val)
		}
		seen[r.val] = true
	}
	if len(seen) != nMsgs {
		t.Fatalf("delivered %d distinct messages, want %d", len(seen), nMsgs)
	}
}

func TestConcurrentBroadcastReceiveCompleteStreams(t *testing.T) {
	f, err := Init(Config{MaxLNVCs: 4, MaxProcesses: 16, BlocksPerProcess: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	const nRecv, nMsgs = 6, 300
	sid, _ := f.OpenSend(0, "bcast")
	rids := make([]ID, nRecv)
	for r := 0; r < nRecv; r++ {
		rids[r], err = f.OpenReceive(1+r, "bcast", Broadcast)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for r := 0; r < nRecv; r++ {
		wg.Add(1)
		go func(pid int, rid ID) {
			defer wg.Done()
			buf := make([]byte, 4)
			for i := 0; i < nMsgs; i++ {
				n, err := f.Receive(pid, rid, buf)
				if err != nil || n != 4 {
					t.Errorf("receiver %d msg %d: n=%d err=%v", pid, i, n, err)
					return
				}
				if got := binary.LittleEndian.Uint32(buf); got != uint32(i) {
					t.Errorf("receiver %d: msg %d got %d (stream gap or dup)", pid, i, got)
					return
				}
			}
		}(1+r, rids[r])
	}
	buf := make([]byte, 4)
	for i := 0; i < nMsgs; i++ {
		binary.LittleEndian.PutUint32(buf, uint32(i))
		if err := f.Send(0, sid, buf); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("blocks leaked: %d free of %d", free, total)
	}
}

func TestConcurrentOpenCloseChurn(t *testing.T) {
	f, err := Init(Config{MaxLNVCs: 32, MaxProcesses: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			buf := make([]byte, 16)
			for i := 0; i < 300; i++ {
				name := fmt.Sprintf("churn-%d", rng.Intn(4))
				sid, err := f.OpenSend(pid, name)
				if err != nil {
					continue // table momentarily full is fine
				}
				f.Send(pid, sid, buf[:rng.Intn(16)])
				if rng.Intn(2) == 0 {
					rid, err := f.OpenReceive(pid, name, Protocol(rng.Intn(2)))
					if err == nil {
						f.CheckReceive(pid, rid)
						f.CloseReceive(pid, rid)
					}
				}
				if err := f.CloseSend(pid, sid); err != nil {
					t.Errorf("close: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	// All circuits fully closed: table empty, everything recycled.
	if n := f.LNVCCount(); n != 0 {
		t.Fatalf("%d LNVCs leaked", n)
	}
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("blocks leaked: %d free of %d", free, total)
	}
	if err := f.Arena().CheckFreeList(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedTrafficRandomPayloads(t *testing.T) {
	// Full-mesh style stress: every process sends random payloads to a
	// shared circuit and one broadcast receiver verifies content
	// integrity via checksums.
	f, err := Init(Config{MaxLNVCs: 4, MaxProcesses: 16, BlocksPerProcess: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	const nSenders, perSender = 4, 100
	rid, _ := f.OpenReceive(0, "mesh", FCFS)

	checksum := func(b []byte) byte {
		var s byte
		for _, x := range b {
			s ^= x
		}
		return s
	}
	var wg sync.WaitGroup
	for s := 1; s <= nSenders; s++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sid, _ := f.OpenSend(pid, "mesh")
			rng := rand.New(rand.NewSource(int64(pid) * 77))
			for i := 0; i < perSender; i++ {
				payload := make([]byte, 2+rng.Intn(300))
				rng.Read(payload[2:])
				payload[0] = byte(len(payload))
				payload[1] = checksum(payload[2:])
				if err := f.Send(pid, sid, payload); err != nil {
					t.Error(err)
					return
				}
			}
			f.CloseSend(pid, sid)
		}(s)
	}
	buf := make([]byte, 512)
	for i := 0; i < nSenders*perSender; i++ {
		n, err := f.Receive(0, rid, buf)
		if err != nil {
			t.Fatal(err)
		}
		if n < 2 || checksum(buf[2:n]) != buf[1] {
			t.Fatalf("message %d corrupted (n=%d)", i, n)
		}
	}
	wg.Wait()
}

// Property: for any sequence of sends with arbitrary payload sizes, a
// single FCFS receiver sees exactly the sent sequence.
func TestQuickFIFODelivery(t *testing.T) {
	f, err := Init(Config{MaxLNVCs: 4, MaxProcesses: 4, BlocksPerProcess: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	prop := func(payloads [][]byte) bool {
		if len(payloads) > 64 {
			payloads = payloads[:64]
		}
		for i := range payloads {
			if len(payloads[i]) > 1024 {
				payloads[i] = payloads[i][:1024]
			}
		}
		sid, err := f.OpenSend(0, "q")
		if err != nil {
			return false
		}
		rid, err := f.OpenReceive(1, "q", FCFS)
		if err != nil {
			return false
		}
		ok := true
		for _, p := range payloads {
			if err := f.Send(0, sid, p); err != nil {
				ok = false
				break
			}
		}
		buf := make([]byte, 1024)
		for _, p := range payloads {
			if !ok {
				break
			}
			n, err := f.Receive(1, rid, buf)
			if err != nil || n != len(p) || !bytes.Equal(buf[:n], p) {
				ok = false
			}
		}
		f.CloseSend(0, sid)
		f.CloseReceive(1, rid)
		return ok && f.LNVCCount() == 0 && f.Arena().FreeBlocks() == f.Arena().NumBlocks()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: under any receiver mix (FCFS and broadcast counts) and any
// message count, conservation holds: each message is received by every
// broadcast receiver exactly once and by exactly one FCFS receiver
// (when any FCFS receiver exists); afterwards nothing leaks.
func TestQuickDeliveryConservation(t *testing.T) {
	prop := func(nFCFSRaw, nBcastRaw, nMsgsRaw uint8) bool {
		nFCFS := int(nFCFSRaw % 4)
		nBcast := int(nBcastRaw % 4)
		nMsgs := int(nMsgsRaw%32) + 1
		if nFCFS+nBcast == 0 {
			nFCFS = 1
		}
		f, err := Init(Config{MaxLNVCs: 2, MaxProcesses: 10, BlocksPerProcess: 512})
		if err != nil {
			return false
		}
		defer f.Shutdown()
		sid, _ := f.OpenSend(0, "c")
		pid := 1
		fids := make([]ID, nFCFS)
		fpids := make([]int, nFCFS)
		for i := range fids {
			fids[i], _ = f.OpenReceive(pid, "c", FCFS)
			fpids[i] = pid
			pid++
		}
		bids := make([]ID, nBcast)
		bpids := make([]int, nBcast)
		for i := range bids {
			bids[i], _ = f.OpenReceive(pid, "c", Broadcast)
			bpids[i] = pid
			pid++
		}
		for i := 0; i < nMsgs; i++ {
			if err := f.Send(0, sid, []byte{byte(i)}); err != nil {
				return false
			}
		}
		buf := make([]byte, 1)
		// Broadcast receivers drain their complete streams.
		for i, rid := range bids {
			for m := 0; m < nMsgs; m++ {
				n, err := f.Receive(bpids[i], rid, buf)
				if err != nil || n != 1 || buf[0] != byte(m) {
					return false
				}
			}
		}
		// FCFS receivers jointly drain the stream exactly once.
		if nFCFS > 0 {
			seen := make(map[byte]bool)
			for m := 0; m < nMsgs; m++ {
				i := m % nFCFS
				n, err := f.Receive(fpids[i], fids[i], buf)
				if err != nil || n != 1 || seen[buf[0]] {
					return false
				}
				seen[buf[0]] = true
			}
			if len(seen) != nMsgs {
				return false
			}
		}
		info, _ := f.LNVCInfo(sid)
		if info.QueuedMsgs != 0 {
			return false
		}
		return f.Arena().FreeBlocks() == f.Arena().NumBlocks()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolString(t *testing.T) {
	if FCFS.String() != "FCFS" || Broadcast.String() != "BROADCAST" {
		t.Fatalf("%v %v", FCFS, Broadcast)
	}
	if Protocol(7).String() == "" {
		t.Fatal("unknown protocol has empty string")
	}
	if OpSend.String() != "message_send" || Op(200).String() != "op?" {
		t.Fatal("op names wrong")
	}
}
