package core

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func newBatchFacility(t *testing.T, procs int) *Facility {
	t.Helper()
	f, err := Init(Config{MaxLNVCs: 8, MaxProcesses: procs, BlocksPerProcess: 128})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	return f
}

// TestLoanBatchCommitAll checks the batched send's contract: one
// batch, in-place fills, consecutive FIFO order, full ledger, and no
// structural copies.
func TestLoanBatchCommitAll(t *testing.T) {
	f := newBatchFacility(t, 2)
	sid, err := f.OpenSend(0, "lb")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := f.OpenReceive(1, "lb", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	ns := make([]int, k)
	for i := range ns {
		ns[i] = 32 + i
	}
	b, err := f.LoanBatch(0, sid, ns)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != k {
		t.Fatalf("Len = %d, want %d", b.Len(), k)
	}
	for i := 0; i < k; i++ {
		if b.Size(i) != ns[i] {
			t.Fatalf("Size(%d) = %d, want %d", i, b.Size(i), ns[i])
		}
		buf, ok := b.Bytes(i)
		if !ok {
			t.Fatalf("loan %d not contiguous under span allocation", i)
		}
		for j := range buf {
			buf[j] = byte(i)
		}
	}
	if err := b.CommitAll(); err != nil {
		t.Fatal(err)
	}
	if err := b.CommitAll(); !errors.Is(err, ErrLoanDone) {
		t.Fatalf("second CommitAll = %v, want ErrLoanDone", err)
	}
	b.AbortAll() // no-op after commit

	buf := make([]byte, 64)
	for i := 0; i < k; i++ {
		n, err := f.Receive(1, rid, buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != ns[i] {
			t.Fatalf("message %d: %d bytes, want %d (batch order broken)", i, n, ns[i])
		}
		if buf[0] != byte(i) || buf[n-1] != byte(i) {
			t.Fatalf("message %d: payload corrupted", i)
		}
	}
	st := f.Stats()
	if st.LoanBatchSends != k {
		t.Errorf("LoanBatchSends = %d, want %d", st.LoanBatchSends, k)
	}
	if st.PayloadCopiesIn != 0 {
		t.Errorf("PayloadCopiesIn = %d, want 0 (fills are production, not copies)", st.PayloadCopiesIn)
	}
	if st.Sends != k {
		t.Errorf("Sends = %d, want %d", st.Sends, k)
	}
}

// TestLoanBatchCommitN checks partial resolution: the committed prefix
// is delivered in order, the aborted tail's blocks come straight back.
func TestLoanBatchCommitN(t *testing.T) {
	f := newBatchFacility(t, 1)
	sid, _ := f.OpenSend(0, "part")
	rid, _ := f.OpenReceive(0, "part", FCFS)
	free0 := f.Arena().FreeBlocks()

	b, err := f.LoanBatch(0, sid, []int{16, 16, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		buf, _ := b.Bytes(i)
		buf[0] = byte(i)
	}
	if err := b.CommitN(2); err != nil {
		t.Fatal(err)
	}
	if err := b.CommitN(1); !errors.Is(err, ErrLoanDone) {
		t.Fatalf("CommitN after CommitN = %v, want ErrLoanDone", err)
	}
	buf := make([]byte, 16)
	for i := 0; i < 2; i++ {
		if _, err := f.Receive(0, rid, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("prefix message %d corrupted", i)
		}
	}
	if ok, _ := f.CheckReceive(0, rid); ok {
		t.Fatal("aborted tail was delivered")
	}
	if free := f.Arena().FreeBlocks(); free != free0 {
		t.Fatalf("aborted tail leaked blocks: %d free, want %d", free, free0)
	}

	// Out-of-range prefixes are rejected without spending the batch.
	b2, err := f.LoanBatch(0, sid, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.CommitN(2); err == nil || errors.Is(err, ErrLoanDone) {
		t.Fatalf("CommitN(2) on a batch of 1 = %v, want argument error", err)
	}
	if err := b2.CommitAll(); err != nil {
		t.Fatalf("batch spent by rejected CommitN: %v", err)
	}
	if _, err := f.Receive(0, rid, buf); err != nil {
		t.Fatal(err)
	}
}

// TestLoanBatchAbortAll checks the one-transaction abort and that the
// region stays usable; also the post-resolution window panic.
func TestLoanBatchAbortAll(t *testing.T) {
	f := newBatchFacility(t, 1)
	sid, _ := f.OpenSend(0, "abort")
	rid, _ := f.OpenReceive(0, "abort", FCFS)
	free0 := f.Arena().FreeBlocks()
	for i := 0; i < 50; i++ {
		b, err := f.LoanBatch(0, sid, []int{64, 64, 64})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		b.AbortAll()
		b.AbortAll() // idempotent
		if err := b.CommitAll(); !errors.Is(err, ErrLoanDone) {
			t.Fatalf("iter %d: CommitAll after AbortAll = %v", i, err)
		}
	}
	if free := f.Arena().FreeBlocks(); free != free0 {
		t.Fatalf("aborts leaked blocks: %d free, want %d", free, free0)
	}
	if err := f.Send(0, sid, []byte("still works")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if n, err := f.Receive(0, rid, buf); err != nil || string(buf[:n]) != "still works" {
		t.Fatalf("post-abort receive: %q, %v", buf[:n], err)
	}

	b, err := f.LoanBatch(0, sid, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	b.AbortAll()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("View window on a resolved batch did not panic")
			}
		}()
		b.View(0)
	}()
}

// TestLoanBatchDeadCircuit checks that a batch held across circuit
// deletion returns its blocks and reports ErrNotConnected.
func TestLoanBatchDeadCircuit(t *testing.T) {
	f := newBatchFacility(t, 2)
	sid, _ := f.OpenSend(0, "dead")
	free0 := f.Arena().FreeBlocks()
	b, err := f.LoanBatch(0, sid, []int{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CloseSend(0, sid); err != nil {
		t.Fatal(err)
	}
	if err := b.CommitAll(); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("CommitAll on a dead circuit = %v, want ErrNotConnected", err)
	}
	if free := f.Arena().FreeBlocks(); free != free0 {
		t.Fatalf("dead-circuit batch leaked blocks: %d free, want %d", free, free0)
	}
}

// TestLoanBatchEmptyAndErrors covers the degenerate inputs.
func TestLoanBatchEmptyAndErrors(t *testing.T) {
	f := newBatchFacility(t, 1)
	sid, _ := f.OpenSend(0, "edge")
	b, err := f.LoanBatch(0, sid, nil)
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := b.CommitAll(); err != nil {
		t.Fatalf("empty CommitAll: %v", err)
	}
	if _, err := f.LoanBatch(0, sid, []int{-1}); err == nil {
		t.Error("negative length accepted")
	}
	huge := f.Arena().NumBlocks() * f.Arena().PayloadSize()
	if _, err := f.LoanBatch(0, sid, []int{huge, huge}); !errors.Is(err, ErrMessageTooBig) {
		t.Errorf("oversized batch = %v, want ErrMessageTooBig", err)
	}
	if _, err := f.LoanBatch(0, ID(99), []int{8}); !errors.Is(err, ErrBadLNVC) {
		t.Errorf("bad id = %v, want ErrBadLNVC", err)
	}
	if _, err := f.LoanBatch(5, sid, []int{8}); !errors.Is(err, ErrBadProcess) {
		t.Errorf("bad pid = %v, want ErrBadProcess", err)
	}
}

// TestHarvestViewsDrain checks the harvest's core contract on one
// circuit: views arrive in FIFO order, already claimed, pinned, and
// the ledger records them as harvested (not per-message view
// receives).
func TestHarvestViewsDrain(t *testing.T) {
	f := newBatchFacility(t, 2)
	sid, _ := f.OpenSend(0, "harvest")
	rid, _ := f.OpenReceive(1, "harvest", FCFS)
	sel, err := f.NewSelector(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	if err := sel.Add(rid); err != nil {
		t.Fatal(err)
	}

	const k = 6
	b, _ := f.LoanBatch(0, sid, []int{8, 8, 8, 8, 8, 8})
	for i := 0; i < k; i++ {
		buf, _ := b.Bytes(i)
		buf[0] = byte(i)
	}
	if err := b.CommitAll(); err != nil {
		t.Fatal(err)
	}

	vs, err := sel.HarvestViews(k + 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != k {
		t.Fatalf("harvested %d views, want %d", len(vs), k)
	}
	for i, v := range vs {
		if v.Circuit() != rid {
			t.Fatalf("view %d attributed to circuit %d, want %d", i, v.Circuit(), rid)
		}
		buf, ok := v.Bytes()
		if !ok || buf[0] != byte(i) {
			t.Fatalf("view %d out of order or corrupted", i)
		}
	}
	// The claims consumed the messages: nothing is left to receive.
	if ok, _ := f.CheckReceive(1, rid); ok {
		t.Fatal("harvested messages still deliverable")
	}
	ReleaseViews(vs)
	ReleaseViews(vs) // idempotent, like Release
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("release leaked blocks: %d of %d free", free, total)
	}
	st := f.Stats()
	if st.HarvestedViews != k {
		t.Errorf("HarvestedViews = %d, want %d", st.HarvestedViews, k)
	}
	if st.ViewReceives != 0 {
		t.Errorf("ViewReceives = %d, want 0 (harvests are ledgered separately)", st.ViewReceives)
	}
	if st.PayloadCopiesOut != 0 {
		t.Errorf("PayloadCopiesOut = %d, want 0", st.PayloadCopiesOut)
	}
}

// TestHarvestViewsBudget checks the level-trigger under a budget: a
// circuit left with traffic stays armed and the next harvest picks up
// exactly where the last one stopped.
func TestHarvestViewsBudget(t *testing.T) {
	f := newBatchFacility(t, 2)
	sid, _ := f.OpenSend(0, "budget")
	rid, _ := f.OpenReceive(1, "budget", FCFS)
	sel, _ := f.NewSelector(1)
	defer sel.Close()
	if err := sel.Add(rid); err != nil {
		t.Fatal(err)
	}
	const total = 10
	for i := 0; i < total; i++ {
		if err := f.Send(0, sid, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for got < total {
		vs, err := sel.HarvestViewsDeadline(3, time.Second)
		if err != nil {
			t.Fatalf("after %d of %d: %v", got, total, err)
		}
		if len(vs) > 3 {
			t.Fatalf("budget 3 exceeded: %d views", len(vs))
		}
		for _, v := range vs {
			buf := make([]byte, 4)
			if n := v.CopyTo(buf); n != 1 || buf[0] != byte(got) {
				t.Fatalf("view %d: got %d bytes, first %d", got, n, buf[0])
			}
			got++
		}
		ReleaseViews(vs)
	}
	if _, err := sel.HarvestViewsDeadline(3, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("drained harvest = %v, want ErrTimeout", err)
	}
	if _, err := sel.HarvestViews(0); err == nil {
		t.Error("HarvestViews(0) accepted")
	}
}

// TestHarvestViewsMultiCircuit checks grouping and attribution across
// several ready circuits and that BROADCAST harvests share pins with
// held views correctly.
func TestHarvestViewsMultiCircuit(t *testing.T) {
	f := newBatchFacility(t, 2)
	const circuits = 4
	sel, _ := f.NewSelector(1)
	defer sel.Close()
	rids := make([]ID, circuits)
	sids := make([]ID, circuits)
	for i := 0; i < circuits; i++ {
		name := fmt.Sprintf("mc-%d", i)
		sids[i], _ = f.OpenSend(0, name)
		rids[i], _ = f.OpenReceive(1, name, Broadcast)
		if err := sel.Add(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	perCircuit := 3
	for i := 0; i < circuits; i++ {
		for j := 0; j < perCircuit; j++ {
			if err := f.Send(0, sids[i], []byte{byte(i), byte(j)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	seen := make(map[ID]int)
	var all []*View
	for got := 0; got < circuits*perCircuit; {
		vs, err := sel.HarvestViewsDeadline(64, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// Views must arrive grouped by circuit (each group in FIFO
		// order), so ReleaseViews batches one transaction per run: a
		// circuit may not reappear within one call after another
		// circuit's views interleaved.
		inCall := make(map[ID]bool)
		last := ID(-1)
		for _, v := range vs {
			if v.Circuit() != last {
				if inCall[v.Circuit()] {
					t.Fatalf("circuit %d split across non-adjacent runs in one harvest", v.Circuit())
				}
				inCall[v.Circuit()] = true
				last = v.Circuit()
			}
			buf := make([]byte, 2)
			v.CopyTo(buf)
			if int(buf[1]) != seen[v.Circuit()] {
				t.Fatalf("circuit %d: message %d out of order", v.Circuit(), buf[1])
			}
			seen[v.Circuit()]++
			got++
		}
		all = append(all, vs...)
	}
	for id, n := range seen {
		if n != perCircuit {
			t.Errorf("circuit %d delivered %d, want %d", id, n, perCircuit)
		}
	}
	ReleaseViews(all)
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("release leaked blocks: %d of %d free", free, total)
	}
}

// TestHarvestViewsDeferredDeath checks that a circuit death observed
// in a round that also claimed views is not swallowed: the views come
// back first and the very next wait/harvest call returns
// ErrNotConnected instead of parking over the dropped registration.
func TestHarvestViewsDeferredDeath(t *testing.T) {
	f := newBatchFacility(t, 3)
	sidB, _ := f.OpenSend(0, "alive")
	ridB, _ := f.OpenReceive(1, "alive", FCFS)
	ridA, _ := f.OpenReceive(1, "dying", FCFS)
	sel, _ := f.NewSelector(1)
	defer sel.Close()
	if err := sel.Add(ridB); err != nil {
		t.Fatal(err)
	}
	if err := sel.Add(ridA); err != nil {
		t.Fatal(err)
	}
	// One deliverable message on the live circuit, then kill the other:
	// both fire into the same harvest round.
	if err := f.Send(0, sidB, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseReceive(1, ridA); err != nil {
		t.Fatal(err)
	}
	vs, err := sel.HarvestViewsDeadline(8, time.Second)
	if err != nil {
		t.Fatalf("claiming round: %v", err)
	}
	if len(vs) != 1 {
		t.Fatalf("claimed %d views, want 1", len(vs))
	}
	ReleaseViews(vs)
	// The death must surface now — not hang, not vanish.
	if _, err := sel.HarvestViewsDeadline(8, time.Second); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("next harvest = %v, want ErrNotConnected", err)
	}
	// The selector keeps working on its surviving circuit.
	if err := f.Send(0, sidB, []byte("y")); err != nil {
		t.Fatal(err)
	}
	vs, err = sel.HarvestViewsDeadline(8, time.Second)
	if err != nil || len(vs) != 1 {
		t.Fatalf("post-death harvest: %d views, %v", len(vs), err)
	}
	ReleaseViews(vs)
}

// TestHarvestViewsSurviveClose checks the §5 orphan rule through the
// harvest path: views harvested then held across CloseReceive (and the
// circuit's deletion) stay readable until released, and nothing leaks.
func TestHarvestViewsSurviveClose(t *testing.T) {
	f := newBatchFacility(t, 2)
	sid, _ := f.OpenSend(0, "orphan")
	rid, _ := f.OpenReceive(1, "orphan", FCFS)
	sel, _ := f.NewSelector(1)
	defer sel.Close()
	if err := sel.Add(rid); err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives the close")
	if err := f.Send(0, sid, payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, sid, payload); err != nil {
		t.Fatal(err)
	}
	vs, err := sel.HarvestViews(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("harvested %d views, want 2", len(vs))
	}
	// Tear the whole circuit down under the held views.
	if err := sel.Remove(rid); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseReceive(1, rid); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseSend(0, sid); err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		buf := make([]byte, 64)
		if n := v.CopyTo(buf); string(buf[:n]) != string(payload) {
			t.Fatalf("held view corrupted after close: %q", buf[:n])
		}
	}
	ReleaseViews(vs)
	if free, total := f.Arena().FreeBlocks(), f.Arena().NumBlocks(); free != total {
		t.Fatalf("orphan release leaked blocks: %d of %d free", free, total)
	}
}
