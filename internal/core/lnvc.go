package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/msg"
	"repro/internal/spinlock"
)

// sendDesc is a send connection (paper §3.1: "send descriptors ... contain
// the process identifier of the connected process").
type sendDesc struct {
	pid int
}

// recvDesc is a receive connection. BROADCAST receivers carry their
// private FIFO head as a sequence number; FCFS receivers use the LNVC's
// shared head.
type recvDesc struct {
	pid     int
	proto   Protocol
	headSeq uint64 // BROADCAST only: next sequence this receiver consumes
}

// lnvc is an LNVC descriptor (paper Figure 2). All mutable fields are
// guarded by lock; name is additionally written only under the owning
// shard's write lock (reset), which is what lets the close path read it
// under that same shard lock.
type lnvc struct {
	name string
	id   ID
	// shard is the registry shard this descriptor belongs to. It is
	// immutable: descriptors recycle only through their own shard's
	// free list, so every name this descriptor ever carries hashes
	// here.
	shard uint32

	// The circuit lock is the hottest word in the facility — every
	// send, receive, harvest and wake spins on it — so it gets a cache
	// line to itself (24-byte TAS + 40 pad): a reader walking the cold
	// descriptor fields below must not invalidate the line senders are
	// spinning on. Asserted by TestHotWordLayout.
	lock spinlock.TAS
	_    [40]byte

	cond *sync.Cond // signalled on enqueue and shutdown

	queue       msg.Queue
	fcfsHeadSeq uint64 // shared FCFS head: next sequence FCFS may consume

	sends  map[int]*sendDesc
	recvs  map[int]*recvDesc
	nFCFS  int // count of FCFS receive connections
	nBcast int // count of BROADCAST receive connections

	// waiters are the parked multiplexer registrations (ReceiveAny
	// parks, Selector memberships) on this circuit; enqueue and close
	// wake exactly these (see waiter.go). gen counts descriptor
	// incarnations: reset bumps it, and selectors compare it so a
	// registration on a dead circuit can never be satisfied by a new
	// circuit that recycled both the descriptor and the id (the ABA
	// the registry free lists would otherwise permit).
	waiters []*muxWaiter
	gen     uint64

	// The credit ledger (credit.go). creditUsed is the number of
	// accounted blocks debited by senders and not yet re-granted;
	// creditWaiters are the senders parked until the budget can cover
	// them. Both guarded by lock; both meaningful only when
	// Config.CreditBlocks > 0.
	// creditUsed sits on its own line: it is debited on every credited
	// send and re-granted on every release, and without the pad it
	// would share a line with the waiter slice header that parked
	// senders and granting receivers both touch. Asserted by
	// TestHotWordLayout.
	creditUsed    int32
	_             [60]byte
	creditWaiters []*creditWaiter

	// descriptor free lists, per paper §3.1 ("Like message blocks, LNVC,
	// send, and receive descriptors are linked into free lists when not
	// in use").
	sendFree []*sendDesc
	recvFree []*recvDesc
}

func newLNVC(name string, id ID, shard uint32) *lnvc {
	l := &lnvc{
		name:  name,
		id:    id,
		shard: shard,
		sends: make(map[int]*sendDesc),
		recvs: make(map[int]*recvDesc),
	}
	l.cond = sync.NewCond(&l.lock)
	return l
}

// reset prepares a recycled descriptor for reuse.
func (l *lnvc) reset(name string, id ID) {
	l.name = name
	l.id = id
	l.queue = msg.Queue{}
	l.fcfsHeadSeq = 0
	clear(l.sends)
	clear(l.recvs)
	l.nFCFS, l.nBcast = 0, 0
	// Stale registrations from the descriptor's previous life are
	// dropped: their owners were woken at deletion and unregister by
	// identity, which tolerates the entry already being gone. The
	// generation bump invalidates any selector registration that still
	// names this descriptor.
	clear(l.waiters)
	l.waiters = l.waiters[:0]
	// Credit state died with the previous circuit (the close path's
	// deletion branch zeroed the ledger and woke the waiters, who
	// unregister by identity); the fresh incarnation starts unencumbered.
	l.creditUsed = 0
	clear(l.creditWaiters)
	l.creditWaiters = l.creditWaiters[:0]
	l.gen++
}

func (l *lnvc) connections() int { return len(l.sends) + len(l.recvs) }

func (l *lnvc) getSendDesc(pid int) *sendDesc {
	if n := len(l.sendFree); n > 0 {
		d := l.sendFree[n-1]
		l.sendFree = l.sendFree[:n-1]
		d.pid = pid
		return d
	}
	return &sendDesc{pid: pid}
}

func (l *lnvc) putSendDesc(d *sendDesc) { l.sendFree = append(l.sendFree, d) }

func (l *lnvc) getRecvDesc(pid int, proto Protocol, head uint64) *recvDesc {
	if n := len(l.recvFree); n > 0 {
		d := l.recvFree[n-1]
		l.recvFree = l.recvFree[:n-1]
		*d = recvDesc{pid: pid, proto: proto, headSeq: head}
		return d
	}
	return &recvDesc{pid: pid, proto: proto, headSeq: head}
}

func (l *lnvc) putRecvDesc(d *recvDesc) { l.recvFree = append(l.recvFree, d) }

// OpenSend establishes a send connection for pid on the LNVC called name,
// creating the LNVC if necessary, and returns its internal identifier.
func (f *Facility) OpenSend(pid int, name string) (ID, error) {
	id, err := f.open(pid, name, func(l *lnvc) error {
		if _, dup := l.sends[pid]; dup {
			return fmt.Errorf("%w: send on %q by process %d", ErrAlreadyOpen, name, pid)
		}
		l.sends[pid] = l.getSendDesc(pid)
		return nil
	})
	f.trace(Event{Op: OpOpenSend, PID: pid, LNVC: id, Name: name, Err: err})
	return id, err
}

// OpenReceive establishes a receive connection with the given protocol
// for pid on the LNVC called name, creating the LNVC if necessary.
func (f *Facility) OpenReceive(pid int, name string, proto Protocol) (ID, error) {
	if proto != FCFS && proto != Broadcast {
		return -1, fmt.Errorf("mpf: unknown protocol %d", proto)
	}
	id, err := f.open(pid, name, func(l *lnvc) error {
		if _, dup := l.recvs[pid]; dup {
			// Also covers the paper's rule that one process cannot hold
			// both FCFS and BROADCAST connections on one LNVC.
			return fmt.Errorf("%w: receive on %q by process %d", ErrAlreadyOpen, name, pid)
		}
		head := l.queue.NextSeq()
		if proto == Broadcast {
			if l.connections() == len(l.sends) && l.queue.Len() > 0 {
				// First receiver on a circuit with a retained backlog:
				// inherit it (rule 5 in the package comment).
				head = l.queue.Head().Seq
				l.queue.Walk(func(m, _ *msg.Message) bool {
					m.Pending++
					m.FCFSNeeded = false
					return true
				})
			}
		}
		l.recvs[pid] = l.getRecvDesc(pid, proto, head)
		if proto == FCFS {
			l.nFCFS++
		} else {
			l.nBcast++
		}
		return nil
	})
	f.trace(Event{Op: OpOpenReceive, PID: pid, LNVC: id, Name: name, Err: err})
	return id, err
}

// open is the shared find-or-create path for both open primitives.
// attach runs under both the shard's write lock and the LNVC lock. Only
// the shard that name hashes to is locked, so opens on circuits in
// different shards proceed concurrently.
func (f *Facility) open(pid int, name string, attach func(*lnvc) error) (ID, error) {
	if err := f.checkPID(pid); err != nil {
		return -1, err
	}
	if err := checkName(name); err != nil {
		return -1, err
	}
	if f.stopped.Load() {
		return -1, ErrShutdown
	}
	si := f.shardIndex(name)
	s := f.lockShard(si)
	defer s.lock.Unlock()

	id, exists := s.names[name]
	var l *lnvc
	if exists {
		l = f.slots[id].Load()
	} else {
		var ok bool
		id, ok = f.allocID()
		if !ok {
			return -1, fmt.Errorf("%w (max %d)", ErrTooManyLNVCs, f.cfg.MaxLNVCs)
		}
		if n := len(s.lnvcFree); n > 0 {
			l = s.lnvcFree[n-1]
			s.lnvcFree = s.lnvcFree[:n-1]
			// reset mutates fields that stale holders of this
			// descriptor (a Send that looked its old ID up just before
			// deletion) read under the LNVC lock, so it needs that
			// lock too.
			l.lock.Lock()
			l.reset(name, id)
			l.lock.Unlock()
		} else {
			l = newLNVC(name, id, si)
		}
	}

	l.lock.Lock()
	err := attach(l)
	l.lock.Unlock()
	if err != nil {
		if !exists {
			s.lnvcFree = append(s.lnvcFree, l)
			f.freeID(id)
		}
		return -1, err
	}
	if !exists {
		s.names[name] = id
		f.slots[id].Store(l)
		f.stats.lnvcsCreated.Add(1)
	}
	f.stats.opens.Add(1)
	return id, nil
}

// CloseSend removes pid's send connection from the LNVC. If it is the
// last connection the LNVC is deleted and all unread messages discarded.
func (f *Facility) CloseSend(pid int, id ID) error {
	err := f.close(pid, id, func(l *lnvc) error {
		d, ok := l.sends[pid]
		if !ok {
			return fmt.Errorf("%w: send on id %d by process %d", ErrNotConnected, id, pid)
		}
		delete(l.sends, pid)
		l.putSendDesc(d)
		return nil
	})
	f.trace(Event{Op: OpCloseSend, PID: pid, LNVC: id, Err: err})
	return err
}

// CloseReceive removes pid's receive connection. A departing BROADCAST
// receiver releases its claim on every message it had not yet consumed
// (the paper's §3.2 reclamation problem); a departing last-FCFS receiver
// releases FCFS claims if other receivers remain. If this was the last
// connection the LNVC is deleted.
func (f *Facility) CloseReceive(pid int, id ID) error {
	err := f.close(pid, id, func(l *lnvc) error {
		d, ok := l.recvs[pid]
		if !ok {
			return fmt.Errorf("%w: receive on id %d by process %d", ErrNotConnected, id, pid)
		}
		delete(l.recvs, pid)
		if d.proto == FCFS {
			l.nFCFS--
		} else {
			l.nBcast--
			// Release this receiver's claim on unconsumed messages.
			l.queue.Walk(func(m, _ *msg.Message) bool {
				if m.Seq >= d.headSeq && m.Pending > 0 {
					m.Pending--
				}
				return true
			})
		}
		l.putRecvDesc(d)
		f.reclaimLocked(l)
		return nil
	})
	f.trace(Event{Op: OpCloseReceive, PID: pid, LNVC: id, Err: err})
	return err
}

// close is the shared teardown path. detach runs under the descriptor's
// shard lock and the LNVC lock; if it leaves the LNVC with no
// connections, the LNVC is deleted. The descriptor-to-shard binding is
// immutable (descriptors recycle within one shard), so the initial
// lock-free slot load can never direct us to the wrong shard; the
// re-check under the shard lock catches a circuit deleted — and possibly
// recycled — between the load and the lock.
func (f *Facility) close(pid int, id ID, detach func(*lnvc) error) error {
	if err := f.checkPID(pid); err != nil {
		return err
	}
	l, err := f.lookup(id)
	if err != nil {
		return err
	}
	s := f.lockShard(l.shard)
	if f.slots[id].Load() != l {
		s.lock.Unlock()
		return fmt.Errorf("%w: id %d", ErrBadLNVC, id)
	}
	l.lock.Lock()
	err = detach(l)
	if err == nil {
		// A Receive parked on the condition variable, a ReceiveAny
		// parked on the waiter list, a Selector.Wait, or a sender parked
		// for credit must observe a closed connection promptly — never
		// hang until an unrelated send happens by (they re-validate the
		// connection on wake).
		l.cond.Broadcast()
		l.wakeWaitersLocked()
		l.wakeCreditWaitersLocked()
	}
	var drop []*msg.Message
	dropped := 0
	dead := err == nil && l.connections() == 0
	if dead {
		// Collect unread messages for discarding outside the LNVC lock.
		// A message some receiver still holds pinned — a copy in flight
		// or a held View — must survive the circuit: it is orphaned and
		// the last unpin releases it (§5's revised reclamation rule).
		l.queue.Walk(func(m, _ *msg.Message) bool {
			dropped++
			if m.Pins > 0 {
				m.Orphan = true
			} else {
				drop = append(drop, m)
			}
			return true
		})
		l.queue = msg.Queue{}
		// The ledger dies with the circuit: outstanding debits —
		// dropped unread messages, orphans passing to their pin
		// holders, loans still out — return to the facility gauge here
		// (late loan refunds are rejected by the generation check).
		f.dropLedgerLocked(l)
	}
	l.lock.Unlock()
	if err != nil {
		s.lock.Unlock()
		return err
	}
	f.stats.closes.Add(1)
	if dead {
		delete(s.names, l.name)
		f.slots[id].Store(nil)
		s.lnvcFree = append(s.lnvcFree, l)
		f.freeID(id)
		f.stats.lnvcsDeleted.Add(1)
		f.stats.messagesDropped.Add(uint64(dropped))
	}
	s.lock.Unlock()
	if f.cfg.GlobalPulseMux {
		f.pulseActivity()
	}
	f.pool.ReleaseBatch(drop)
	return nil
}

// Send transfers buf asynchronously to the LNVC: the payload is copied
// into chained message blocks and the message is appended to the FIFO
// (paper §2, message_send). The sender proceeds as soon as the copy
// completes.
func (f *Facility) Send(pid int, id ID, buf []byte) error {
	err := f.send(pid, id, buf)
	f.trace(Event{Op: OpSend, PID: pid, LNVC: id, Bytes: len(buf), Err: err})
	return err
}

func (f *Facility) send(pid int, id ID, buf []byte) error {
	if err := f.checkPID(pid); err != nil {
		return err
	}
	if f.stopped.Load() {
		return ErrShutdown
	}
	if f.arena.BlocksFor(len(buf)) > f.arena.NumBlocks() {
		return fmt.Errorf("%w: %d bytes, region holds %d", ErrMessageTooBig, len(buf), f.arena.NumBlocks()*f.arena.PayloadSize())
	}
	l, err := f.lookup(id)
	if err != nil {
		return err
	}
	// Connection check is done before the (possibly blocking) copy so an
	// unconnected sender fails fast, and rechecked after under the lock.
	// With credit configured the check rides along with the debit, which
	// parks here (not holding any lock) until the budget can cover the
	// message.
	var creditGen uint64
	creditBlocks := 0
	if f.cfg.CreditBlocks > 0 {
		creditBlocks = f.arena.BlocksFor(len(buf))
		var err error
		if creditGen, err = f.acquireCredit(l, id, pid, creditBlocks); err != nil {
			return err
		}
	} else {
		l.lock.Lock()
		if f.slots[id].Load() != l || l.sends[pid] == nil {
			l.lock.Unlock()
			return fmt.Errorf("%w: send on id %d by process %d", ErrNotConnected, id, pid)
		}
		l.lock.Unlock()
	}

	// First copy: user buffer into message blocks. This happens outside
	// the LNVC lock, which is what lets BROADCAST receivers and other
	// senders proceed concurrently (the concurrency Figure 5 measures).
	m, buildErr := f.pool.Build(pid, buf, f.cfg.SendPolicy == BlockUntilFree, f.stop)
	if buildErr != nil {
		f.refundCredit(l, creditGen, creditBlocks)
		if f.stopped.Load() {
			return ErrShutdown
		}
		return fmt.Errorf("%w: %v", ErrNoMemory, buildErr)
	}

	l.lock.Lock()
	// Re-validate both the connection and the ID binding: the circuit
	// may have been deleted — and its descriptor recycled for another
	// name through the shard free list — while the copy ran.
	if f.slots[id].Load() != l || l.sends[pid] == nil {
		l.lock.Unlock()
		f.pool.Release(m)
		f.refundCredit(l, creditGen, creditBlocks)
		return fmt.Errorf("%w: send on id %d by process %d", ErrNotConnected, id, pid)
	}
	m.Pending = l.nBcast
	m.FCFSNeeded = true
	l.queue.Enqueue(m)
	l.cond.Broadcast()
	l.wakeWaitersLocked()
	l.lock.Unlock()
	if f.cfg.GlobalPulseMux {
		f.pulseActivity()
	}

	f.stats.sends.Add(1)
	f.stats.bytesSent.Add(uint64(len(buf)))
	f.stats.payloadCopiesIn.Add(1)
	return nil
}

// Receive blocks until a message is available for pid's connection, then
// copies it into buf and returns the number of bytes transferred (paper
// §2, message_receive; the copy is truncated to len(buf)).
func (f *Facility) Receive(pid int, id ID, buf []byte) (int, error) {
	n, err := f.receive(pid, id, buf, nil)
	f.trace(Event{Op: OpReceive, PID: pid, LNVC: id, Bytes: n, Err: err})
	return n, err
}

// ReceiveDeadline is Receive with a bound on the wait: if no message
// becomes available within d it returns ErrTimeout. The original MPF had
// no timed receive (check_receive plus polling was the idiom); this is
// the blocking-with-deadline variant a modern caller expects, and the
// examples use it to turn potential deadlocks into diagnosable errors.
func (f *Facility) ReceiveDeadline(pid int, id ID, buf []byte, d time.Duration) (int, error) {
	if d <= 0 {
		return 0, fmt.Errorf("%w: non-positive deadline %v", ErrTimeout, d)
	}
	deadline := time.Now().Add(d)
	n, err := f.receive(pid, id, buf, &deadline)
	f.trace(Event{Op: OpReceive, PID: pid, LNVC: id, Bytes: n, Err: err})
	return n, err
}

func (f *Facility) receive(pid int, id ID, buf []byte, deadline *time.Time) (int, error) {
	l, m, err := f.waitClaim(pid, id, deadline)
	if err != nil {
		return 0, err
	}

	// The second of the paper's two copies — blocks → user buffer —
	// happens outside the lock, under the pin, so BROADCAST receivers
	// proceed concurrently.
	n := f.pool.Extract(m, buf)
	f.stats.payloadCopiesOut.Add(1)

	f.unpin(l, m)

	f.stats.receives.Add(1)
	f.stats.bytesRecvd.Add(uint64(n))
	return n, nil
}

// waitClaim blocks until a message is deliverable to pid's connection
// on id, claims it and pins it, and returns it together with the
// circuit it was claimed from. On success the caller owns one pin and
// must balance it with unpin once done reading the payload. deadline,
// when non-nil, bounds the wait (ErrTimeout).
func (f *Facility) waitClaim(pid int, id ID, deadline *time.Time) (*lnvc, *msg.Message, error) {
	if err := f.checkPID(pid); err != nil {
		return nil, nil, err
	}
	l, err := f.lookup(id)
	if err != nil {
		return nil, nil, err
	}
	l.lock.Lock()
	d := l.recvs[pid]
	if f.slots[id].Load() != l || d == nil {
		l.lock.Unlock()
		return nil, nil, fmt.Errorf("%w: receive on id %d by process %d", ErrNotConnected, id, pid)
	}
	var m *msg.Message
	waited := false
	var timer *time.Timer
	timedOut := false
	if deadline != nil {
		// The waker broadcasts the LNVC condition so the waiter below
		// re-evaluates; timedOut is only read/written under the LNVC
		// lock except for the final defensive Stop.
		timer = time.AfterFunc(time.Until(*deadline), func() {
			l.lock.Lock()
			timedOut = true
			l.cond.Broadcast()
			l.lock.Unlock()
		})
		defer timer.Stop()
	}
	for {
		if f.stopped.Load() {
			l.lock.Unlock()
			return nil, nil, ErrShutdown
		}
		if l.recvs[pid] != d {
			// The connection was closed (CloseReceive from another
			// goroutine) while this receive was parked; the close path
			// broadcast the condition so we see it promptly.
			l.lock.Unlock()
			return nil, nil, fmt.Errorf("%w: receive on id %d by process %d", ErrNotConnected, id, pid)
		}
		m = l.availableLocked(d)
		if m != nil {
			break
		}
		if deadline != nil && (timedOut || !time.Now().Before(*deadline)) {
			l.lock.Unlock()
			return nil, nil, ErrTimeout
		}
		waited = true
		l.cond.Wait()
	}
	if waited {
		f.stats.receiveWaits.Add(1)
	}
	l.claimLocked(d, m)
	l.lock.Unlock()
	return l, m, nil
}

// claimLocked consumes m for receiver d — for FCFS the claim (advancing
// the shared head) must happen under the lock or two FCFS receivers
// could take the same message; for BROADCAST it advances the private
// head and releases the Pending reference — and pins it. The pin is
// what keeps the blocks alive while the holder reads them outside the
// lock, whether for the paper's receive copy or for a held View; a
// pinned message is never recycled (reclaimLocked skips it, the close
// path orphans it to the pin holders instead of releasing it).
func (l *lnvc) claimLocked(d *recvDesc, m *msg.Message) {
	if d.proto == FCFS {
		m.FCFSNeeded = false
		l.fcfsHeadSeq = m.Seq + 1
	} else {
		d.headSeq = m.Seq + 1
		m.Pending--
	}
	m.Pins++
}

// unpin drops one pin taken by claimLocked. For a message still owned
// by its circuit this may make it reclaimable, so the reclaim scan
// runs; for an orphan — dropped from a deleted circuit while pinned —
// the last pin holder releases the blocks directly (the message is in
// no queue; l may even have been recycled for another circuit, which
// is safe because only m's own fields and the pool are touched).
func (f *Facility) unpin(l *lnvc, m *msg.Message) {
	l.lock.Lock()
	m.Pins--
	if m.Orphan {
		release := m.Pins == 0
		l.lock.Unlock()
		if release {
			f.pool.Release(m)
		}
		return
	}
	f.reclaimLocked(l)
	l.lock.Unlock()
}

// unpinAll is unpin for a batch claimed from one circuit: one lock
// acquisition, one reclaim scan. Orphans are collected and released
// outside the lock.
func (f *Facility) unpinAll(l *lnvc, ms []*msg.Message) {
	var orphans []*msg.Message
	l.lock.Lock()
	anyLive := false
	for _, m := range ms {
		m.Pins--
		if m.Orphan {
			if m.Pins == 0 {
				orphans = append(orphans, m)
			}
		} else {
			anyLive = true
		}
	}
	if anyLive {
		f.reclaimLocked(l)
	}
	l.lock.Unlock()
	f.pool.ReleaseBatch(orphans)
}

// availableLocked returns the next message deliverable to d, or nil.
func (l *lnvc) availableLocked(d *recvDesc) *msg.Message {
	if d.proto == FCFS {
		// The first message not yet FCFS-consumed. Messages below the
		// shared head have FCFSNeeded cleared, so scanning from the
		// queue head for FCFSNeeded is equivalent to following the
		// shared head pointer; the queue head is almost always it.
		var found *msg.Message
		l.queue.Walk(func(m, _ *msg.Message) bool {
			if m.FCFSNeeded && m.Seq >= l.fcfsHeadSeq {
				found = m
				return false
			}
			return true
		})
		return found
	}
	return l.queue.After(d.headSeq)
}

// TryReceive is the non-blocking receive: if a message is available for
// pid's connection it is consumed exactly as by Receive and TryReceive
// reports (n, true); otherwise it returns (0, false) immediately. It is
// the atomic alternative to the check_receive-then-message_receive pair,
// which the paper warns is racy for FCFS receivers ("another process
// with a FCFS receive connection may acquire the message before the
// checking process can receive the message").
func (f *Facility) TryReceive(pid int, id ID, buf []byte) (int, bool, error) {
	n, ok, err := f.tryReceive(pid, id, buf)
	ev := Event{Op: OpTryReceive, PID: pid, LNVC: id, Err: err}
	if ok {
		ev.Bytes = n
	}
	f.trace(ev)
	return n, ok, err
}

func (f *Facility) tryReceive(pid int, id ID, buf []byte) (int, bool, error) {
	l, m, ok, err := f.tryClaim(pid, id)
	if err != nil || !ok {
		return 0, false, err
	}

	n := f.pool.Extract(m, buf)
	f.stats.payloadCopiesOut.Add(1)

	f.unpin(l, m)

	f.stats.receives.Add(1)
	f.stats.bytesRecvd.Add(uint64(n))
	return n, true, nil
}

// tryClaim is waitClaim's non-blocking form: if a message is deliverable
// it is claimed and pinned (the caller owes one unpin) and ok is true;
// otherwise ok is false.
func (f *Facility) tryClaim(pid int, id ID) (*lnvc, *msg.Message, bool, error) {
	if err := f.checkPID(pid); err != nil {
		return nil, nil, false, err
	}
	if f.stopped.Load() {
		return nil, nil, false, ErrShutdown
	}
	l, err := f.lookup(id)
	if err != nil {
		return nil, nil, false, err
	}
	l.lock.Lock()
	d := l.recvs[pid]
	if f.slots[id].Load() != l || d == nil {
		l.lock.Unlock()
		return nil, nil, false, fmt.Errorf("%w: receive on id %d by process %d", ErrNotConnected, id, pid)
	}
	m := l.availableLocked(d)
	if m == nil {
		l.lock.Unlock()
		return nil, nil, false, nil
	}
	l.claimLocked(d, m)
	l.lock.Unlock()
	return l, m, true, nil
}

// CheckReceive reports whether a message is currently available for pid's
// receive connection (paper §2, check_receive). For FCFS connections the
// answer is advisory: another FCFS receiver may claim the message first,
// exactly the caveat the paper gives.
func (f *Facility) CheckReceive(pid int, id ID) (bool, error) {
	ok, err := f.checkReceive(pid, id)
	f.trace(Event{Op: OpCheckReceive, PID: pid, LNVC: id, Err: err})
	return ok, err
}

func (f *Facility) checkReceive(pid int, id ID) (bool, error) {
	if err := f.checkPID(pid); err != nil {
		return false, err
	}
	l, err := f.lookup(id)
	if err != nil {
		return false, err
	}
	l.lock.Lock()
	defer l.lock.Unlock()
	d := l.recvs[pid]
	if f.slots[id].Load() != l || d == nil {
		return false, fmt.Errorf("%w: receive on id %d by process %d", ErrNotConnected, id, pid)
	}
	f.stats.checks.Add(1)
	return l.availableLocked(d) != nil, nil
}

// reclaimLocked removes and recycles every message that no connected
// receiver can still consume (rules 3-4 of the package comment). Called
// under the LNVC lock after any event that can release a claim.
func (f *Facility) reclaimLocked(l *lnvc) {
	bcastOnly := l.nFCFS == 0 && (l.nBcast > 0)
	type rm struct{ m, prev *msg.Message }
	var victims []rm
	var prevSurvivor *msg.Message
	l.queue.Walk(func(m, _ *msg.Message) bool {
		dead := m.Pins == 0 && m.Pending == 0 && (!m.FCFSNeeded || bcastOnly)
		if dead {
			victims = append(victims, rm{m, prevSurvivor})
		} else {
			prevSurvivor = m
		}
		return true
	})
	for _, v := range victims {
		l.queue.Remove(v.m, v.prev)
	}
	// Release blocks outside the queue walk; still under the LNVC lock,
	// but the arena has its own lock so this is safe (arena lock is a
	// leaf in the lock order). The whole scan's victims go back in one
	// free-pool transaction — a batched receive's reclaim costs one
	// arena lock acquisition however many messages it retired.
	if len(victims) > 0 {
		var msgsBuf [16]*msg.Message
		ms := msgsBuf[:0]
		granted := 0
		for _, v := range victims {
			ms = append(ms, v.m)
			granted += v.m.Blocks
		}
		f.pool.ReleaseBatch(ms)
		// The victims' blocks are back in the region: return their
		// accounted demand to the circuit's credit budget and wake any
		// senders parked for it — one grant for the whole scan.
		f.grantCreditLocked(l, granted)
	}
}

// Info describes an LNVC's current state for introspection and tests.
type Info struct {
	Name          string
	ID            ID
	QueuedMsgs    int
	Senders       int
	FCFSRecvs     int
	BcastRecvs    int
	FCFSHeadSeq   uint64
	NextSeq       uint64
	SenderPIDs    []int
	ReceiverPIDs  []int
	ReceiverProto map[int]Protocol
	// The credit ledger: CreditCap is the configured per-circuit budget
	// (Config.CreditBlocks; 0 = flow control off) and CreditUsed the
	// accounted blocks currently debited against it. At quiescence —
	// every message reclaimed, every loan resolved — CreditUsed is 0:
	// credits held plus credits free equal the budget.
	CreditCap  int
	CreditUsed int
}

// LNVCInfo returns a snapshot of the LNVC's descriptor state.
func (f *Facility) LNVCInfo(id ID) (Info, error) {
	l, err := f.lookup(id)
	if err != nil {
		return Info{}, err
	}
	l.lock.Lock()
	defer l.lock.Unlock()
	if f.slots[id].Load() != l {
		// Deleted (and possibly recycled) between the lock-free lookup
		// and the lock acquisition.
		return Info{}, fmt.Errorf("%w: id %d", ErrBadLNVC, id)
	}
	info := Info{
		Name:          l.name,
		ID:            l.id,
		QueuedMsgs:    l.queue.Len(),
		Senders:       len(l.sends),
		FCFSRecvs:     l.nFCFS,
		BcastRecvs:    l.nBcast,
		FCFSHeadSeq:   l.fcfsHeadSeq,
		NextSeq:       l.queue.NextSeq(),
		ReceiverProto: make(map[int]Protocol, len(l.recvs)),
		CreditCap:     f.cfg.CreditBlocks,
		CreditUsed:    int(l.creditUsed),
	}
	for pid := range l.sends {
		info.SenderPIDs = append(info.SenderPIDs, pid)
	}
	for pid, d := range l.recvs {
		info.ReceiverPIDs = append(info.ReceiverPIDs, pid)
		info.ReceiverProto[pid] = d.proto
	}
	return info, nil
}
