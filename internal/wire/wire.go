// Package wire provides the tiny binary message encodings the example
// applications put on LNVCs. MPF, like the paper's C version, transfers
// untyped byte buffers; applications impose structure. All encodings are
// little-endian and fixed-width.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Float64Size is the encoded size of one float64.
const Float64Size = 8

// Uint32Size is the encoded size of one uint32.
const Uint32Size = 4

// AppendUint32 appends v to dst.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// Uint32 decodes a uint32 from b, returning the value and the rest.
func Uint32(b []byte) (uint32, []byte, error) {
	if len(b) < Uint32Size {
		return 0, nil, fmt.Errorf("wire: short buffer for uint32: %d bytes", len(b))
	}
	return binary.LittleEndian.Uint32(b), b[Uint32Size:], nil
}

// AppendFloat64 appends v to dst.
func AppendFloat64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// Float64 decodes a float64 from b, returning the value and the rest.
func Float64(b []byte) (float64, []byte, error) {
	if len(b) < Float64Size {
		return 0, nil, fmt.Errorf("wire: short buffer for float64: %d bytes", len(b))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[Float64Size:], nil
}

// AppendFloat64s appends all of vs to dst.
func AppendFloat64s(dst []byte, vs []float64) []byte {
	for _, v := range vs {
		dst = AppendFloat64(dst, v)
	}
	return dst
}

// Float64s decodes n float64s from b into out (which must have length n),
// returning the rest.
func Float64s(b []byte, out []float64) ([]byte, error) {
	need := len(out) * Float64Size
	if len(b) < need {
		return nil, fmt.Errorf("wire: short buffer for %d float64s: %d bytes", len(out), len(b))
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*Float64Size:]))
	}
	return b[need:], nil
}

// PivotCand is a worker's pivot candidate in the Gauss-Jordan solver:
// its best |value| and the owning global row.
type PivotCand struct {
	Worker uint32
	Row    uint32
	Value  float64
}

// PivotCandSize is the encoded size of a PivotCand.
const PivotCandSize = 2*Uint32Size + Float64Size

// Encode appends the candidate to dst.
func (c PivotCand) Encode(dst []byte) []byte {
	dst = AppendUint32(dst, c.Worker)
	dst = AppendUint32(dst, c.Row)
	return AppendFloat64(dst, c.Value)
}

// DecodePivotCand decodes a candidate from b.
func DecodePivotCand(b []byte) (PivotCand, error) {
	var c PivotCand
	var err error
	if c.Worker, b, err = Uint32(b); err != nil {
		return c, err
	}
	if c.Row, b, err = Uint32(b); err != nil {
		return c, err
	}
	if c.Value, _, err = Float64(b); err != nil {
		return c, err
	}
	return c, nil
}
