package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUint32Roundtrip(t *testing.T) {
	b := AppendUint32(nil, 0xDEADBEEF)
	v, rest, err := Uint32(b)
	if err != nil || v != 0xDEADBEEF || len(rest) != 0 {
		t.Fatalf("v=%x rest=%v err=%v", v, rest, err)
	}
	if _, _, err := Uint32([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestFloat64Roundtrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		b := AppendFloat64(nil, v)
		got, rest, err := Float64(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("v=%v got=%v err=%v", v, got, err)
		}
	}
	// NaN roundtrips bit-exactly.
	b := AppendFloat64(nil, math.NaN())
	got, _, _ := Float64(b)
	if !math.IsNaN(got) {
		t.Fatal("NaN lost")
	}
	if _, _, err := Float64([]byte{1}); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestFloat64sRoundtrip(t *testing.T) {
	in := []float64{1, 2.5, -3, 1e-300}
	b := AppendFloat64s(nil, in)
	if len(b) != len(in)*Float64Size {
		t.Fatalf("encoded %d bytes", len(b))
	}
	out := make([]float64, 4)
	rest, err := Float64s(b, out)
	if err != nil || len(rest) != 0 {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("out[%d] = %v", i, out[i])
		}
	}
	if _, err := Float64s(b[:10], out); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestSequentialDecode(t *testing.T) {
	// Mixed encode/decode stream.
	b := AppendUint32(nil, 7)
	b = AppendFloat64(b, 2.25)
	b = AppendUint32(b, 9)
	u1, b2, err := Uint32(b)
	if err != nil || u1 != 7 {
		t.Fatal(err)
	}
	f, b3, err := Float64(b2)
	if err != nil || f != 2.25 {
		t.Fatal(err)
	}
	u2, rest, err := Uint32(b3)
	if err != nil || u2 != 9 || len(rest) != 0 {
		t.Fatal(err)
	}
}

func TestPivotCandRoundtrip(t *testing.T) {
	c := PivotCand{Worker: 3, Row: 91, Value: -42.5}
	b := c.Encode(nil)
	if len(b) != PivotCandSize {
		t.Fatalf("encoded %d bytes, want %d", len(b), PivotCandSize)
	}
	got, err := DecodePivotCand(b)
	if err != nil || got != c {
		t.Fatalf("got %+v err=%v", got, err)
	}
	for cut := 0; cut < PivotCandSize; cut++ {
		if _, err := DecodePivotCand(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestQuickFloat64sRoundtrip(t *testing.T) {
	f := func(in []float64) bool {
		b := AppendFloat64s(nil, in)
		out := make([]float64, len(in))
		if _, err := Float64s(b, out); err != nil {
			return false
		}
		for i := range in {
			// Bit-exact comparison (NaN-safe).
			if math.Float64bits(in[i]) != math.Float64bits(out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPivotCandRoundtrip(t *testing.T) {
	f := func(w, r uint32, v float64) bool {
		c := PivotCand{Worker: w, Row: r, Value: v}
		got, err := DecodePivotCand(c.Encode(nil))
		if err != nil {
			return false
		}
		return got.Worker == w && got.Row == r &&
			math.Float64bits(got.Value) == math.Float64bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
