package sor

import (
	"errors"
	"testing"

	"repro/internal/balance"
	"repro/mpf"
)

func newFacility(t *testing.T, procs int) *mpf.Facility {
	t.Helper()
	f, err := mpf.New(
		mpf.WithMaxProcesses(procs),
		mpf.WithMaxLNVCs(256),
		mpf.WithBlocksPerProcess(4096),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	return f
}

func TestSequentialConvergesToAnalytic(t *testing.T) {
	pr := DefaultProblem(17)
	g, iters, err := SolveSequential(pr)
	if err != nil {
		t.Fatal(err)
	}
	if iters < 2 {
		t.Fatalf("converged suspiciously fast: %d iterations", iters)
	}
	// Discretization error is O(h²); h = 1/18 so h² ≈ 0.003.
	if e := MaxError(pr, g); e > 0.02 {
		t.Fatalf("max error vs analytic = %g", e)
	}
}

func TestSequentialErrorShrinksWithResolution(t *testing.T) {
	coarse := DefaultProblem(9)
	fine := DefaultProblem(33)
	gc, _, err := SolveSequential(coarse)
	if err != nil {
		t.Fatal(err)
	}
	gf, _, err := SolveSequential(fine)
	if err != nil {
		t.Fatal(err)
	}
	if MaxError(fine, gf) >= MaxError(coarse, gc) {
		t.Fatalf("finer grid not more accurate: %g vs %g",
			MaxError(fine, gf), MaxError(coarse, gc))
	}
}

func TestValidation(t *testing.T) {
	pr := DefaultProblem(9)
	pr.Omega = 2.5
	if _, _, err := SolveSequential(pr); err == nil {
		t.Fatal("omega 2.5 accepted")
	}
	pr = DefaultProblem(0)
	if _, _, err := SolveSequential(pr); err == nil {
		t.Fatal("empty grid accepted")
	}
	pr = DefaultProblem(9)
	pr.F = nil
	if _, _, err := SolveSequential(pr); err == nil {
		t.Fatal("nil F accepted")
	}
	pr = DefaultProblem(9)
	if _, _, err := SolveMPF(nil, 0, pr); err == nil {
		t.Fatal("n=0 accepted")
	}
	fac := newFacility(t, 2)
	if _, _, err := SolveMPF(fac, 100, pr); err == nil {
		t.Fatal("more processes than grid points accepted")
	}
	if _, _, err := SolveShared(0, pr); err == nil {
		t.Fatal("shared n=0 accepted")
	}
}

func TestDivergenceDetected(t *testing.T) {
	pr := DefaultProblem(9)
	pr.MaxIter = 2
	pr.Tol = 1e-15
	if _, _, err := SolveSequential(pr); !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	if _, _, err := SolveShared(2, pr); !errors.Is(err, ErrDiverged) {
		t.Fatalf("shared err = %v, want ErrDiverged", err)
	}
	fac := newFacility(t, 5)
	if _, _, err := SolveMPF(fac, 2, pr); !errors.Is(err, ErrDiverged) {
		t.Fatalf("mpf err = %v, want ErrDiverged", err)
	}
}

func TestMPFMatchesSequential(t *testing.T) {
	for _, cfg := range []struct{ p, n int }{
		{9, 1}, {9, 2}, {9, 3}, {17, 2}, {17, 4},
	} {
		pr := DefaultProblem(cfg.p)
		seq, _, err := SolveSequential(pr)
		if err != nil {
			t.Fatal(err)
		}
		fac := newFacility(t, cfg.n*cfg.n+1)
		par, iters, err := SolveMPF(fac, cfg.n, pr)
		if err != nil {
			t.Fatalf("p=%d n=%d: %v", cfg.p, cfg.n, err)
		}
		if iters < 1 {
			t.Fatalf("p=%d n=%d: %d iterations", cfg.p, cfg.n, iters)
		}
		// Parallel block-SOR converges to the same discrete solution,
		// though along a different trajectory; both are within Tol-level
		// agreement.
		if d := GridDiff(pr, seq, par); d > 100*pr.Tol {
			t.Fatalf("p=%d n=%d: grids differ by %g", cfg.p, cfg.n, d)
		}
		if e := MaxError(pr, par); e > 0.05 {
			t.Fatalf("p=%d n=%d: max error vs analytic %g", cfg.p, cfg.n, e)
		}
	}
}

func TestMPFUnevenPartition(t *testing.T) {
	// 9 interior points over 2 blocks: 4/5 split must still converge.
	pr := DefaultProblem(9)
	fac := newFacility(t, 5)
	g, _, err := SolveMPF(fac, 2, pr)
	if err != nil {
		t.Fatal(err)
	}
	if e := MaxError(pr, g); e > 0.05 {
		t.Fatalf("max error %g", e)
	}
}

func TestSharedMatchesSequential(t *testing.T) {
	for _, cfg := range []struct{ p, n int }{
		{9, 1}, {9, 3}, {17, 2},
	} {
		pr := DefaultProblem(cfg.p)
		seq, _, err := SolveSequential(pr)
		if err != nil {
			t.Fatal(err)
		}
		par, _, err := SolveShared(cfg.n, pr)
		if err != nil {
			t.Fatalf("p=%d n=%d: %v", cfg.p, cfg.n, err)
		}
		if d := GridDiff(pr, seq, par); d > 100*pr.Tol {
			t.Fatalf("p=%d n=%d: grids differ by %g", cfg.p, cfg.n, d)
		}
	}
}

func TestBlockRangeCoversInterior(t *testing.T) {
	for _, p := range []int{9, 17, 33, 65} {
		for n := 1; n <= 4; n++ {
			prev := 1
			for b := 0; b < n; b++ {
				lo, hi := blockRange(p, n, b)
				if lo != prev {
					t.Fatalf("p=%d n=%d b=%d: gap", p, n, b)
				}
				prev = hi
			}
			if prev != p+1 {
				t.Fatalf("p=%d n=%d: covers to %d, want %d", p, n, prev, p+1)
			}
		}
	}
}

func TestSimIterTimeScales(t *testing.T) {
	m := balance.Balance21000()
	t2, err := SimIterTime(m, 65, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := SimIterTime(m, 65, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 65×65 has enough work that 16 processes beat 4 per iteration
	// (Figure 8's top curve).
	if t4 >= t2 {
		t.Fatalf("N=4 (%g) not faster than N=2 (%g) on 65×65", t4, t2)
	}
	speedup := t2 / t4
	if speedup > 4 {
		t.Fatalf("speedup %g exceeds process ratio", speedup)
	}
}

func TestSimSmallGridScalesWorse(t *testing.T) {
	// The paper's bottom curve: a 9×9 grid gains little or nothing from
	// more processes — communication dominates.
	m := balance.Balance21000()
	sp := func(p int) float64 {
		t2, err := SimIterTime(m, p, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		t4, err := SimIterTime(m, p, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		return t2 / t4
	}
	small, large := sp(9), sp(65)
	if small >= large {
		t.Fatalf("9×9 speedup (%g) not below 65×65 speedup (%g)", small, large)
	}
}

func TestSimValidation(t *testing.T) {
	m := balance.Balance21000()
	if _, err := SimIterTime(m, 0, 2, 1); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := SimIterTime(m, 9, 0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := SimIterTime(m, 4, 9, 1); err == nil {
		t.Fatal("n>p accepted")
	}
}
