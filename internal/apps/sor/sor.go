// Package sor implements the paper's second application study: an
// iterative elliptic PDE solver using successive over-relaxation,
// adapted from a hypercube program (paper §4, Figure 8).
//
// The solver iterates a 5-point stencil over a P×P interior grid until
// the solution of Poisson's equation converges. For the parallel
// versions the interior is partitioned into N×N subgrids, one per
// process. On every iteration each process exchanges its subgrid
// boundaries with its four neighbours (FCFS circuits, one per directed
// edge — "the interprocess communication among neighbors corresponds
// naturally to FCFS LNVC's"), updates its subgrid, and reports its local
// convergence status to a monitoring process, which broadcasts
// stop/continue on a BROADCAST circuit.
//
// Computation per iteration is proportional to subgrid area and
// communication to subgrid perimeter, so the computation/communication
// ratio is adjusted by varying N — the knob Figure 8 sweeps.
package sor

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/proc"
	"repro/internal/wire"
	"repro/mpf"
)

// ErrDiverged is returned when the iteration exceeds MaxIter without
// meeting Tol.
var ErrDiverged = errors.New("sor: did not converge within MaxIter iterations")

// Problem describes one Dirichlet Poisson problem on the unit square:
// ∇²u = F with u = Boundary on the edge. The grid has P×P interior
// points at spacing h = 1/(P+1).
type Problem struct {
	P        int
	F        func(x, y float64) float64
	Boundary func(x, y float64) float64
	Omega    float64 // relaxation factor in (0, 2)
	Tol      float64 // max |Δu| convergence threshold
	MaxIter  int
}

// DefaultProblem returns the test problem with known analytic solution
// u(x,y) = sin(πx)·sin(πy), for which ∇²u = −2π²·u and u = 0 on the
// boundary.
func DefaultProblem(p int) Problem {
	return Problem{
		P:        p,
		F:        func(x, y float64) float64 { return -2 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(math.Pi*y) },
		Boundary: func(x, y float64) float64 { return 0 },
		Omega:    1.2,
		Tol:      1e-6,
		MaxIter:  20000,
	}
}

// Analytic returns the exact solution of DefaultProblem at (x, y).
func Analytic(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) }

func (pr *Problem) validate() error {
	if pr.P < 1 {
		return fmt.Errorf("sor: grid size %d", pr.P)
	}
	if pr.F == nil || pr.Boundary == nil {
		return errors.New("sor: F and Boundary must be set")
	}
	if pr.Omega <= 0 || pr.Omega >= 2 {
		return fmt.Errorf("sor: omega %g outside (0,2)", pr.Omega)
	}
	if pr.Tol <= 0 || pr.MaxIter < 1 {
		return fmt.Errorf("sor: tol %g, maxIter %d", pr.Tol, pr.MaxIter)
	}
	return nil
}

// h returns the grid spacing.
func (pr *Problem) h() float64 { return 1 / float64(pr.P+1) }

// newGrid allocates the (P+2)×(P+2) grid with boundary values filled in
// and interior zeroed.
func (pr *Problem) newGrid() [][]float64 {
	n := pr.P + 2
	h := pr.h()
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		x := float64(i) * h
		g[i][0] = pr.Boundary(x, 0)
		g[i][n-1] = pr.Boundary(x, 1)
		g[0][i] = pr.Boundary(0, x)
		g[n-1][i] = pr.Boundary(1, x)
	}
	return g
}

// update applies one SOR update to point (i, j) of g and returns |Δu|.
func (pr *Problem) update(g [][]float64, i, j int) float64 {
	h := pr.h()
	x, y := float64(i)*h, float64(j)*h
	gs := (g[i-1][j] + g[i+1][j] + g[i][j-1] + g[i][j+1] - h*h*pr.F(x, y)) / 4
	delta := pr.Omega * (gs - g[i][j])
	g[i][j] += delta
	return math.Abs(delta)
}

// SolveSequential iterates SOR over the whole grid until convergence and
// returns the grid (with boundary) and the iteration count.
func SolveSequential(pr Problem) ([][]float64, int, error) {
	if err := pr.validate(); err != nil {
		return nil, 0, err
	}
	g := pr.newGrid()
	for iter := 1; iter <= pr.MaxIter; iter++ {
		maxDelta := 0.0
		for i := 1; i <= pr.P; i++ {
			for j := 1; j <= pr.P; j++ {
				if d := pr.update(g, i, j); d > maxDelta {
					maxDelta = d
				}
			}
		}
		if maxDelta < pr.Tol {
			return g, iter, nil
		}
	}
	return nil, pr.MaxIter, ErrDiverged
}

// blockRange returns block b's interior index range [lo, hi) (1-based)
// for P points over n blocks.
func blockRange(p, n, b int) (lo, hi int) {
	return b*p/n + 1, (b+1)*p/n + 1
}

// Circuit names. Halo circuits are per directed edge.
const (
	statusCircuit = "sor-status" // workers -> monitor, FCFS
	ctlCircuit    = "sor-ctl"    // monitor -> workers, broadcast
	resultCircuit = "sor-result" // workers -> monitor, FCFS
)

func haloCircuit(from, to int) string { return fmt.Sprintf("sor-halo-%d-%d", from, to) }

// ctl message values.
const (
	ctlContinue = 0
	ctlStop     = 1
	ctlAbort    = 2
)

// SolveMPF solves pr on an N×N process grid plus one monitoring process,
// all communicating through fac (which must allow N²+1 processes). It
// returns the assembled grid and the iteration count.
func SolveMPF(fac *mpf.Facility, n int, pr Problem) ([][]float64, int, error) {
	if err := pr.validate(); err != nil {
		return nil, 0, err
	}
	if n < 1 {
		return nil, 0, fmt.Errorf("sor: process dimension %d", n)
	}
	if n > pr.P {
		return nil, 0, fmt.Errorf("sor: %d×%d processes for %d×%d grid", n, n, pr.P, pr.P)
	}
	workers := n * n
	result := pr.newGrid()
	iters := 0

	err := fac.Run(workers+1, func(p *mpf.Process) error {
		if p.PID() == workers {
			it, err := monitor(p, workers, pr, result)
			iters = it
			return err
		}
		return sorWorker(p, n, pr)
	})
	if err != nil {
		return nil, iters, err
	}
	return result, iters, nil
}

// monitor aggregates convergence status each iteration and assembles the
// final grid.
func monitor(p *mpf.Process, workers int, pr Problem, result [][]float64) (int, error) {
	status, err := p.OpenReceive(statusCircuit, mpf.FCFS)
	if err != nil {
		return 0, err
	}
	defer status.Close()
	ctl, err := p.OpenSend(ctlCircuit)
	if err != nil {
		return 0, err
	}
	defer ctl.Close()
	res, err := p.OpenReceive(resultCircuit, mpf.FCFS)
	if err != nil {
		return 0, err
	}
	defer res.Close()

	buf := make([]byte, wire.Float64Size)
	iter := 0
	converged := false
	for iter = 1; iter <= pr.MaxIter; iter++ {
		maxDelta := 0.0
		for w := 0; w < workers; w++ {
			if _, err := status.Receive(buf); err != nil {
				return iter, err
			}
			d, _, err := wire.Float64(buf)
			if err != nil {
				return iter, err
			}
			if d > maxDelta {
				maxDelta = d
			}
		}
		verdict := byte(ctlContinue)
		if maxDelta < pr.Tol {
			verdict = ctlStop
			converged = true
		} else if iter == pr.MaxIter {
			verdict = ctlAbort
		}
		if err := ctl.Send([]byte{verdict}); err != nil {
			return iter, err
		}
		if verdict != ctlContinue {
			break
		}
	}
	if !converged {
		return iter, ErrDiverged
	}

	// Collect subgrids: each message is (rlo, rhi, clo, chi) then the
	// row-major block.
	hdr := 4 * wire.Uint32Size
	blockBuf := make([]byte, hdr+pr.P*pr.P*wire.Float64Size)
	for w := 0; w < workers; w++ {
		m, err := res.Receive(blockBuf)
		if err != nil {
			return iter, err
		}
		b := blockBuf[:m]
		var rlo, rhi, clo, chi uint32
		if rlo, b, err = wire.Uint32(b); err != nil {
			return iter, err
		}
		if rhi, b, err = wire.Uint32(b); err != nil {
			return iter, err
		}
		if clo, b, err = wire.Uint32(b); err != nil {
			return iter, err
		}
		if chi, b, err = wire.Uint32(b); err != nil {
			return iter, err
		}
		width := int(chi - clo)
		row := make([]float64, width)
		for i := int(rlo); i < int(rhi); i++ {
			if b, err = wire.Float64s(b, row); err != nil {
				return iter, err
			}
			copy(result[i][clo:chi], row)
		}
	}
	return iter, nil
}

// sorWorker owns one subgrid of the N×N decomposition.
func sorWorker(p *mpf.Process, n int, pr Problem) error {
	w := p.PID()
	bi, bj := w/n, w%n
	rlo, rhi := blockRange(pr.P, n, bi)
	clo, chi := blockRange(pr.P, n, bj)
	height, width := rhi-rlo, chi-clo

	// Local grid with halo: indices [0..height+1][0..width+1] map to
	// global [rlo-1..rhi][clo-1..chi].
	local := make([][]float64, height+2)
	for i := range local {
		local[i] = make([]float64, width+2)
	}
	// Physical boundary values (for blocks on the domain edge).
	h := pr.h()
	for li := 0; li < height+2; li++ {
		gi := rlo - 1 + li
		for lj := 0; lj < width+2; lj++ {
			gj := clo - 1 + lj
			if gi == 0 || gi == pr.P+1 || gj == 0 || gj == pr.P+1 {
				local[li][lj] = pr.Boundary(float64(gi)*h, float64(gj)*h)
			}
		}
	}

	// Neighbour process ids; -1 where the physical boundary lies.
	north, south, west, east := -1, -1, -1, -1
	if bi > 0 {
		north = (bi-1)*n + bj
	}
	if bi < n-1 {
		south = (bi+1)*n + bj
	}
	if bj > 0 {
		west = bi*n + (bj - 1)
	}
	if bj < n-1 {
		east = bi*n + (bj + 1)
	}

	type edge struct {
		neighbor  int
		send      *mpf.SendConn
		recv      *mpf.RecvConn
		sendBuf   []byte
		recvBuf   []byte
		recvFlt   []float64
		extract   func() []float64 // my boundary values to ship
		injectRow func([]float64)  // write neighbour's values into my halo
	}
	var edges []*edge
	addEdge := func(neighbor int, extract func() []float64, inject func([]float64), length int) error {
		if neighbor < 0 {
			return nil
		}
		e := &edge{
			neighbor: neighbor,
			sendBuf:  make([]byte, 0, length*wire.Float64Size),
			recvBuf:  make([]byte, length*wire.Float64Size),
			recvFlt:  make([]float64, length),
			extract:  extract, injectRow: inject,
		}
		var err error
		if e.send, err = p.OpenSend(haloCircuit(w, neighbor)); err != nil {
			return err
		}
		if e.recv, err = p.OpenReceive(haloCircuit(neighbor, w), mpf.FCFS); err != nil {
			return err
		}
		edges = append(edges, e)
		return nil
	}

	rowOf := func(li int) func() []float64 {
		return func() []float64 { return local[li][1 : width+1] }
	}
	colOf := func(lj int) func() []float64 {
		return func() []float64 {
			out := make([]float64, height)
			for i := 0; i < height; i++ {
				out[i] = local[i+1][lj]
			}
			return out
		}
	}
	if err := addEdge(north, rowOf(1), func(v []float64) { copy(local[0][1:width+1], v) }, width); err != nil {
		return err
	}
	if err := addEdge(south, rowOf(height), func(v []float64) { copy(local[height+1][1:width+1], v) }, width); err != nil {
		return err
	}
	if err := addEdge(west, colOf(1), func(v []float64) {
		for i := 0; i < height; i++ {
			local[i+1][0] = v[i]
		}
	}, height); err != nil {
		return err
	}
	if err := addEdge(east, colOf(width), func(v []float64) {
		for i := 0; i < height; i++ {
			local[i+1][width+1] = v[i]
		}
	}, height); err != nil {
		return err
	}

	status, err := p.OpenSend(statusCircuit)
	if err != nil {
		return err
	}
	defer status.Close()
	ctl, err := p.OpenReceive(ctlCircuit, mpf.Broadcast)
	if err != nil {
		return err
	}
	defer ctl.Close()
	res, err := p.OpenSend(resultCircuit)
	if err != nil {
		return err
	}
	defer res.Close()
	closeEdges := func() {
		for _, e := range edges {
			e.send.Close()
			e.recv.Close()
		}
	}
	defer closeEdges()

	statusBuf := make([]byte, 0, wire.Float64Size)
	ctlBuf := make([]byte, 1)
	for {
		// Exchange halos: ship my boundaries, then absorb neighbours'.
		for _, e := range edges {
			if err := e.send.Send(wire.AppendFloat64s(e.sendBuf[:0], e.extract())); err != nil {
				return err
			}
		}
		for _, e := range edges {
			m, err := e.recv.Receive(e.recvBuf)
			if err != nil {
				return err
			}
			if m != len(e.recvBuf) {
				return fmt.Errorf("sor: halo message %d bytes, want %d", m, len(e.recvBuf))
			}
			if _, err := wire.Float64s(e.recvBuf, e.recvFlt); err != nil {
				return err
			}
			e.injectRow(e.recvFlt)
		}

		// SOR sweep over the subgrid.
		maxDelta := 0.0
		for li := 1; li <= height; li++ {
			gi := rlo - 1 + li
			for lj := 1; lj <= width; lj++ {
				gj := clo - 1 + lj
				x, y := float64(gi)*h, float64(gj)*h
				gs := (local[li-1][lj] + local[li+1][lj] + local[li][lj-1] + local[li][lj+1] - h*h*pr.F(x, y)) / 4
				delta := pr.Omega * (gs - local[li][lj])
				local[li][lj] += delta
				if d := math.Abs(delta); d > maxDelta {
					maxDelta = d
				}
			}
		}

		// Report status; await the verdict.
		if err := status.Send(wire.AppendFloat64(statusBuf[:0], maxDelta)); err != nil {
			return err
		}
		if _, err := ctl.Receive(ctlBuf); err != nil {
			return err
		}
		if ctlBuf[0] == ctlAbort {
			return ErrDiverged
		}
		if ctlBuf[0] == ctlStop {
			break
		}
	}

	// Ship the subgrid to the monitor.
	out := make([]byte, 0, 4*wire.Uint32Size+height*width*wire.Float64Size)
	out = wire.AppendUint32(out, uint32(rlo))
	out = wire.AppendUint32(out, uint32(rhi))
	out = wire.AppendUint32(out, uint32(clo))
	out = wire.AppendUint32(out, uint32(chi))
	for li := 1; li <= height; li++ {
		out = wire.AppendFloat64s(out, local[li][1:width+1])
	}
	return res.Send(out)
}

// SolveShared is the shared-memory analogue: the same N×N block
// decomposition over one shared grid, with barriers replacing halo
// exchange and the monitor.
func SolveShared(n int, pr Problem) ([][]float64, int, error) {
	if err := pr.validate(); err != nil {
		return nil, 0, err
	}
	if n < 1 || n > pr.P {
		return nil, 0, fmt.Errorf("sor: process dimension %d for %d×%d grid", n, pr.P, pr.P)
	}
	workers := n * n
	g := pr.newGrid()
	bar, err := proc.NewBarrier(workers)
	if err != nil {
		return nil, 0, err
	}
	deltas := make([]float64, workers)
	stop := false
	iters := 0

	grp, err := proc.NewGroup(workers)
	if err != nil {
		return nil, 0, err
	}
	err = grp.Run(func(w int) error {
		bi, bj := w/n, w%n
		rlo, rhi := blockRange(pr.P, n, bi)
		clo, chi := blockRange(pr.P, n, bj)
		width, height := chi-clo, rhi-rlo
		// Private halo copies. Reading a neighbour's cells while it
		// updates them would be both a data race and non-reproducible;
		// the halo copy phase (all reads) and the sweep phase (writes
		// only to owned cells) are separated by barriers, mirroring the
		// message version's exchange-then-sweep structure.
		haloN := make([]float64, width)
		haloS := make([]float64, width)
		haloW := make([]float64, height)
		haloE := make([]float64, height)
		h := pr.h()
		for iter := 1; ; iter++ {
			for j := 0; j < width; j++ {
				haloN[j] = g[rlo-1][clo+j]
				haloS[j] = g[rhi][clo+j]
			}
			for i := 0; i < height; i++ {
				haloW[i] = g[rlo+i][clo-1]
				haloE[i] = g[rlo+i][chi]
			}
			bar.Wait()
			maxDelta := 0.0
			for i := rlo; i < rhi; i++ {
				for j := clo; j < chi; j++ {
					up := haloN[j-clo]
					if i > rlo {
						up = g[i-1][j]
					}
					down := haloS[j-clo]
					if i < rhi-1 {
						down = g[i+1][j]
					}
					left := haloW[i-rlo]
					if j > clo {
						left = g[i][j-1]
					}
					right := haloE[i-rlo]
					if j < chi-1 {
						right = g[i][j+1]
					}
					x, y := float64(i)*h, float64(j)*h
					gs := (up + down + left + right - h*h*pr.F(x, y)) / 4
					delta := pr.Omega * (gs - g[i][j])
					g[i][j] += delta
					if d := math.Abs(delta); d > maxDelta {
						maxDelta = d
					}
				}
			}
			deltas[w] = maxDelta
			bar.Wait()
			if w == 0 {
				global := 0.0
				for _, d := range deltas {
					if d > global {
						global = d
					}
				}
				stop = global < pr.Tol || iter >= pr.MaxIter
				iters = iter
			}
			bar.Wait()
			if stop {
				if iter >= pr.MaxIter && deltas[w] >= pr.Tol {
					return ErrDiverged
				}
				return nil
			}
		}
	})
	if err != nil {
		return nil, iters, err
	}
	return g, iters, nil
}

// MaxError returns max |g - Analytic| over the interior, the
// discretization-accuracy metric for DefaultProblem.
func MaxError(pr Problem, g [][]float64) float64 {
	h := pr.h()
	worst := 0.0
	for i := 1; i <= pr.P; i++ {
		for j := 1; j <= pr.P; j++ {
			if d := math.Abs(g[i][j] - Analytic(float64(i)*h, float64(j)*h)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// GridDiff returns max |a - b| over the interior of two solution grids.
func GridDiff(pr Problem, a, b [][]float64) float64 {
	worst := 0.0
	for i := 1; i <= pr.P; i++ {
		for j := 1; j <= pr.P; j++ {
			if d := math.Abs(a[i][j] - b[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
