package sor

import (
	"testing"

	"repro/mpf"
)

// TestMessageCountMatchesProtocol pins the SOR solver's traffic to the
// paper's structure: per iteration every directed neighbour edge
// carries one halo message (4·n·(n−1) edges on an n×n mesh), every
// worker sends one status message (n²) and the monitor one verdict (1);
// at the end each worker ships one result block (n²).
func TestMessageCountMatchesProtocol(t *testing.T) {
	for _, cfg := range []struct{ p, n int }{
		{9, 2}, {9, 3}, {17, 2},
	} {
		workers := cfg.n * cfg.n
		fac, err := mpf.New(
			mpf.WithMaxProcesses(workers+1),
			mpf.WithMaxLNVCs(256),
			mpf.WithBlocksPerProcess(4096),
		)
		if err != nil {
			t.Fatal(err)
		}
		pr := DefaultProblem(cfg.p)
		_, iters, err := SolveMPF(fac, cfg.n, pr)
		if err != nil {
			t.Fatal(err)
		}
		st := fac.Stats()
		edges := uint64(4 * cfg.n * (cfg.n - 1))
		perIter := edges + uint64(workers) + 1
		wantSends := uint64(iters)*perIter + uint64(workers)
		if st.Sends != wantSends {
			t.Errorf("p=%d n=%d iters=%d: %d sends, want %d",
				cfg.p, cfg.n, iters, st.Sends, wantSends)
		}
		// Receives: halos are FCFS (consumed once); ctl is broadcast to
		// all workers; status and results are FCFS at the monitor.
		wantRecvs := uint64(iters)*(edges+uint64(workers)+uint64(workers)) + uint64(workers)
		if st.Receives != wantRecvs {
			t.Errorf("p=%d n=%d iters=%d: %d receives, want %d",
				cfg.p, cfg.n, iters, st.Receives, wantRecvs)
		}
		if st.MessagesDropped != 0 {
			t.Errorf("p=%d n=%d: %d messages dropped", cfg.p, cfg.n, st.MessagesDropped)
		}
		fac.Shutdown()
	}
}

// TestPerimeterVsAreaTraffic verifies the computation/communication knob
// the paper turns in Figure 8: per iteration, halo bytes grow with the
// mesh dimension while the grid stays fixed.
func TestPerimeterVsAreaTraffic(t *testing.T) {
	const p = 33
	bytesPerIter := func(n int) float64 {
		workers := n * n
		fac, err := mpf.New(
			mpf.WithMaxProcesses(workers+1),
			mpf.WithMaxLNVCs(256),
			mpf.WithBlocksPerProcess(4096),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer fac.Shutdown()
		pr := DefaultProblem(p)
		_, iters, err := SolveMPF(fac, n, pr)
		if err != nil {
			t.Fatal(err)
		}
		return float64(fac.Stats().BytesSent) / float64(iters)
	}
	b2, b4 := bytesPerIter(2), bytesPerIter(4)
	if b4 <= b2 {
		t.Fatalf("halo traffic per iteration: n=4 (%.0f B) not above n=2 (%.0f B)", b4, b2)
	}
}
