package sor

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/sim"
	"repro/internal/simmpf"
	"repro/internal/wire"
)

// This file reruns the SOR protocol on the simulated Balance 21000 to
// regenerate paper Figure 8 ("Per Iteration Speedup vs. Dimension (N)").
// Figure 8 plots *per-iteration* speedup relative to the 4-process
// solver (N=2) — the paper had no sequential solver to compare against —
// so the simulation runs a fixed number of iterations and reports time
// per iteration.

// flopsPerPoint is the stencil cost per grid point per iteration: four
// adds, the source term, the relaxation multiply and the delta update.
const flopsPerPoint = 6

// SimIterTime returns the simulated seconds per iteration for a p×p grid
// on an n×n process mesh plus a monitor, under machine model m, averaged
// over iters iterations.
func SimIterTime(m *balance.Machine, p, n, iters int) (float64, error) {
	if p < 1 || n < 1 || n > p {
		return 0, fmt.Errorf("sor: SimIterTime(p=%d, n=%d)", p, n)
	}
	if iters < 1 {
		iters = 1
	}
	k := sim.NewKernel(1)
	f := simmpf.New(k, m)
	workers := n * n

	// Monitor.
	k.Spawn("monitor", func(pp *sim.Proc) {
		status := f.OpenReceive(pp, statusCircuit, simmpf.FCFS)
		ctl := f.OpenSend(pp, ctlCircuit)
		for it := 0; it < iters; it++ {
			for w := 0; w < workers; w++ {
				f.Receive(pp, status)
				pp.Advance(m.FlopsTime(1)) // max reduction
			}
			f.Send(pp, ctl, 1)
		}
		f.CloseReceive(pp, status)
		f.CloseSend(pp, ctl)
	})

	for w := 0; w < workers; w++ {
		w := w
		bi, bj := w/n, w%n
		rlo, rhi := blockRange(p, n, bi)
		clo, chi := blockRange(p, n, bj)
		height, width := rhi-rlo, chi-clo
		k.Spawn(fmt.Sprintf("sor%d", w), func(pp *sim.Proc) {
			type edge struct {
				send, recv *simmpf.Circuit
				length     int
			}
			var edges []edge
			add := func(neighbor, length int) {
				if neighbor < 0 {
					return
				}
				edges = append(edges, edge{
					send:   f.OpenSend(pp, haloCircuit(w, neighbor)),
					recv:   f.OpenReceive(pp, haloCircuit(neighbor, w), simmpf.FCFS),
					length: length,
				})
			}
			north, south, west, east := -1, -1, -1, -1
			if bi > 0 {
				north = (bi-1)*n + bj
			}
			if bi < n-1 {
				south = (bi+1)*n + bj
			}
			if bj > 0 {
				west = bi*n + (bj - 1)
			}
			if bj < n-1 {
				east = bi*n + (bj + 1)
			}
			add(north, width)
			add(south, width)
			add(west, height)
			add(east, height)

			status := f.OpenSend(pp, statusCircuit)
			ctl := f.OpenReceive(pp, ctlCircuit, simmpf.Broadcast)

			for it := 0; it < iters; it++ {
				for _, e := range edges {
					f.Send(pp, e.send, e.length*wire.Float64Size)
				}
				for _, e := range edges {
					f.Receive(pp, e.recv)
				}
				pp.Advance(m.FlopsTime(height * width * flopsPerPoint))
				f.Send(pp, status, wire.Float64Size)
				f.Receive(pp, ctl)
			}
			for _, e := range edges {
				f.CloseSend(pp, e.send)
				f.CloseReceive(pp, e.recv)
			}
			f.CloseSend(pp, status)
			f.CloseReceive(pp, ctl)
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return k.Now() / float64(iters), nil
}

// SimSharedIterTime returns the simulated seconds per iteration for the
// shared-memory SOR (SolveShared's structure: private halo copies and
// barriers instead of circuits) on an n×n mesh of the machine model.
// Halo values are copied from shared memory at ordinary copy cost but
// without MPF's per-message fixed overhead or block handling — the
// paradigm comparison for the paper's second application.
func SimSharedIterTime(m *balance.Machine, p, n, iters int) (float64, error) {
	if p < 1 || n < 1 || n > p {
		return 0, fmt.Errorf("sor: SimSharedIterTime(p=%d, n=%d)", p, n)
	}
	if iters < 1 {
		iters = 1
	}
	k := sim.NewKernel(1)
	workers := n * n
	bar := sim.NewBarrier(k, workers, m.LockOverhead, m.LockOverhead)

	for w := 0; w < workers; w++ {
		w := w
		bi, bj := w/n, w%n
		rlo, rhi := blockRange(p, n, bi)
		clo, chi := blockRange(p, n, bj)
		height, width := rhi-rlo, chi-clo
		perimeter := 0
		if bi > 0 {
			perimeter += width
		}
		if bi < n-1 {
			perimeter += width
		}
		if bj > 0 {
			perimeter += height
		}
		if bj < n-1 {
			perimeter += height
		}
		k.Spawn(fmt.Sprintf("shared%d", w), func(pp *sim.Proc) {
			for it := 0; it < iters; it++ {
				// Copy halos out of shared memory (one plain copy, no
				// message machinery).
				pp.Advance(float64(perimeter*8) * m.CopyPerByte)
				bar.Wait(pp)
				pp.Advance(m.FlopsTime(height * width * flopsPerPoint))
				// Convergence reduction: one shared write + worker 0's
				// max scan, bracketed by barriers.
				bar.Wait(pp)
				if w == 0 {
					pp.Advance(m.FlopsTime(workers))
				}
				bar.Wait(pp)
			}
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return k.Now() / float64(iters), nil
}
