package gauss

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/sim"
	"repro/internal/simmpf"
	"repro/internal/wire"
)

// This file reruns the Gauss-Jordan message-passing protocol on the
// simulated Balance 21000 to regenerate paper Figure 7 ("Speedup vs.
// Processes", one curve per matrix size). The protocol structure is the
// same as SolveMPF; arithmetic is replaced by Advance calls under the
// machine's software-floating-point cost, and messages carry only their
// lengths.

// flopsPerUpdate is multiply+subtract per swept matrix entry.
const flopsPerUpdate = 2

// SimTime returns the simulated wall-clock seconds for the parallel
// Gauss-Jordan of an n×n system on `workers` worker processes plus one
// arbiter, under machine model m.
func SimTime(m *balance.Machine, n, workers int) (float64, error) {
	if workers < 1 || n < 1 {
		return 0, fmt.Errorf("gauss: SimTime(n=%d, workers=%d)", n, workers)
	}
	if workers > n {
		workers = n
	}
	k := sim.NewKernel(1)
	f := simmpf.New(k, m)

	rowBytes := (n + 1) * wire.Float64Size
	selBytes := 2 * wire.Uint32Size
	pairBytes := wire.Uint32Size + wire.Float64Size

	// Arbiter process.
	k.Spawn("arbiter", func(p *sim.Proc) {
		cand := f.OpenReceive(p, candCircuit, simmpf.FCFS)
		sel := f.OpenSend(p, selCircuit)
		xs := f.OpenReceive(p, xCircuit, simmpf.FCFS)
		for it := 0; it < n; it++ {
			for w := 0; w < workers; w++ {
				f.Receive(p, cand)
				p.Advance(m.FlopsTime(1)) // compare against running max
			}
			f.Send(p, sel, selBytes)
		}
		for i := 0; i < n; i++ {
			f.Receive(p, xs)
		}
		f.CloseReceive(p, cand)
		f.CloseSend(p, sel)
		f.CloseReceive(p, xs)
	})

	for w := 0; w < workers; w++ {
		w := w
		lo, hi := partition(n, workers, w)
		k.Spawn(fmt.Sprintf("worker%d", w), func(p *sim.Proc) {
			cand := f.OpenSend(p, candCircuit)
			sel := f.OpenReceive(p, selCircuit, simmpf.Broadcast)
			rowS := f.OpenSend(p, rowCircuit)
			rowR := f.OpenReceive(p, rowCircuit, simmpf.Broadcast)
			xs := f.OpenSend(p, xCircuit)

			local := hi - lo
			markedCount := 0
			for it := 0; it < n; it++ {
				// Pivot search over unmarked local rows (one compare
				// per row).
				p.Advance(m.FlopsTime(local - markedCount))
				f.Send(p, cand, wire.PivotCandSize)
				f.Receive(p, sel)

				// Winner rotates deterministically across workers in
				// proportion to their row share — the exact winner does
				// not change the cost structure, only who pays the
				// broadcast send. Use the iteration index mapped to the
				// owner of row (it mod n).
				owner := ownerOf(n, workers, it%n)
				if owner == w {
					f.Send(p, rowS, rowBytes)
					markedCount++
				}
				f.Receive(p, rowR)

				// Sweep local rows except a locally held pivot row over
				// columns k..n.
				rowsToSweep := local
				if owner == w {
					rowsToSweep--
				}
				width := n + 1 - it
				p.Advance(m.FlopsTime(rowsToSweep * width * flopsPerUpdate))
			}
			for i := 0; i < local; i++ {
				p.Advance(m.FlopsTime(1)) // the division
				f.Send(p, xs, pairBytes)
			}
			f.CloseSend(p, cand)
			f.CloseReceive(p, sel)
			f.CloseSend(p, rowS)
			f.CloseReceive(p, rowR)
			f.CloseSend(p, xs)
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return k.Now(), nil
}

// ownerOf maps a global row to the worker owning it under partition.
func ownerOf(n, workers, row int) int {
	for w := 0; w < workers; w++ {
		lo, hi := partition(n, workers, w)
		if row >= lo && row < hi {
			return w
		}
	}
	return workers - 1
}

// SimSeqTime returns the simulated seconds for the sequential solver on
// the same machine: per iteration, an n-row pivot search plus an
// (n-1)×(n+1-k) sweep at flopsPerUpdate each, plus the final divisions.
func SimSeqTime(m *balance.Machine, n int) float64 {
	t := 0.0
	for k := 0; k < n; k++ {
		t += m.FlopsTime(n - k)                                  // search over unmarked rows
		t += m.FlopsTime((n - 1) * (n + 1 - k) * flopsPerUpdate) // sweep
	}
	t += m.FlopsTime(n) // back-substitution divisions
	return t
}

// SimSharedTime returns the simulated seconds for the *shared-memory*
// parallel Gauss-Jordan (SolveShared's structure: same row partition,
// shared candidate array, barriers instead of circuits) on the same
// machine. Together with SimTime it answers the research question the
// paper's conclusion poses — "the effect of the parallel programming
// paradigm (message passing or shared memory) on application
// performance" — on the paper's own hardware model.
func SimSharedTime(m *balance.Machine, n, workers int) (float64, error) {
	if workers < 1 || n < 1 {
		return 0, fmt.Errorf("gauss: SimSharedTime(n=%d, workers=%d)", n, workers)
	}
	if workers > n {
		workers = n
	}
	k := sim.NewKernel(1)
	bar := sim.NewBarrier(k, workers, m.LockOverhead, m.LockOverhead)

	for w := 0; w < workers; w++ {
		w := w
		lo, hi := partition(n, workers, w)
		k.Spawn(fmt.Sprintf("shared%d", w), func(p *sim.Proc) {
			local := hi - lo
			markedCount := 0
			for it := 0; it < n; it++ {
				// Local search writes one candidate to the shared array.
				p.Advance(m.FlopsTime(local - markedCount))
				bar.Wait(p)
				if w == 0 {
					// Worker 0 reduces the P candidates.
					p.Advance(m.FlopsTime(workers))
				}
				bar.Wait(p)
				owner := ownerOf(n, workers, it%n)
				if owner == w {
					markedCount++
				}
				rowsToSweep := local
				if owner == w {
					rowsToSweep--
				}
				width := n + 1 - it
				// The pivot row is read directly from shared memory —
				// no broadcast copy, the paradigm's whole advantage.
				p.Advance(m.FlopsTime(rowsToSweep * width * flopsPerUpdate))
				bar.Wait(p)
			}
			p.Advance(m.FlopsTime(local)) // solution divisions
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return k.Now(), nil
}
