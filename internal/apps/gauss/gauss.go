// Package gauss implements the paper's first application study: the
// Gauss-Jordan algorithm with partial pivoting for solving linear
// systems (paper §4, Figure 7).
//
// Three implementations share one algorithm:
//
//   - SolveSequential: the single-thread baseline speedups are measured
//     against.
//   - SolveMPF: the message-passing version, structured exactly as the
//     paper describes — the matrix is partitioned into equal groups of
//     contiguous rows, one per worker; each iteration every worker sends
//     its local pivot candidate to an arbiter process over an FCFS
//     circuit, the arbiter announces the winner on a broadcast circuit,
//     the winner broadcasts the pivot row, and all workers sweep.
//   - SolveShared: the same partitioning using shared memory and a
//     barrier instead of messages — the cross-paradigm comparison the
//     paper's introduction motivates.
//
// Rows are never physically exchanged: pivoting marks rows as used, so a
// "pivot row" is any unmarked row holding the column maximum. After n
// iterations each pivot row r with pivot column c is diagonal in c and
// x[c] = A[r][n] / A[r][c].
package gauss

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/proc"
	"repro/internal/wire"
	"repro/mpf"
)

// ErrSingular is returned when no usable pivot exists.
var ErrSingular = errors.New("gauss: matrix is singular or nearly singular")

// pivotEps is the smallest acceptable pivot magnitude.
const pivotEps = 1e-12

// NewSystem generates a well-conditioned random n×n system: uniform
// entries with a strongly dominant diagonal, plus a right-hand side.
func NewSystem(n int, rng *rand.Rand) ([][]float64, []float64) {
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.Float64()*2 - 1
		}
		a[i][i] += float64(n) // diagonal dominance
		b[i] = rng.Float64()*2 - 1
	}
	return a, b
}

// augment builds the n×(n+1) augmented matrix [A|b] as a fresh copy.
func augment(a [][]float64, b []float64) ([][]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("gauss: empty system")
	}
	if len(b) != n {
		return nil, fmt.Errorf("gauss: b has %d entries for %d×%d system", len(b), n, n)
	}
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("gauss: row %d has %d entries, want %d", i, len(a[i]), n)
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	return m, nil
}

// SolveSequential solves Ax = b by Gauss-Jordan elimination with partial
// pivoting, without mutating its arguments.
func SolveSequential(a [][]float64, b []float64) ([]float64, error) {
	m, err := augment(a, b)
	if err != nil {
		return nil, err
	}
	n := len(m)
	marked := make([]bool, n)  // row used as pivot
	pivotCol := make([]int, n) // row -> its pivot column
	for k := 0; k < n; k++ {
		// Partial pivoting: the largest |A[i][k]| over unmarked rows.
		best, bestRow := 0.0, -1
		for i := 0; i < n; i++ {
			if !marked[i] && math.Abs(m[i][k]) > best {
				best, bestRow = math.Abs(m[i][k]), i
			}
		}
		if bestRow < 0 || best < pivotEps {
			return nil, ErrSingular
		}
		sweep(m, k, bestRow, m[bestRow])
		marked[bestRow] = true
		pivotCol[bestRow] = k
	}
	x := make([]float64, n)
	for r := 0; r < n; r++ {
		c := pivotCol[r]
		x[c] = m[r][n] / m[r][c]
	}
	return x, nil
}

// sweep eliminates column k from every row of rows except the pivot row,
// using pivotRow (which must have pivotRow[k] != 0). Rows already marked
// are swept too — that is what makes this Jordan rather than plain
// Gaussian elimination.
func sweep(rows [][]float64, k, pivotGlobalRow int, pivotRow []float64) {
	n := len(pivotRow) - 1
	pv := pivotRow[k]
	for i, row := range rows {
		if i == pivotGlobalRow {
			continue
		}
		f := row[k] / pv
		if f == 0 {
			continue
		}
		for j := k; j <= n; j++ {
			row[j] -= f * pivotRow[j]
		}
	}
}

// partition returns worker w's row range [lo, hi) for n rows over p
// workers (contiguous, near-equal).
func partition(n, p, w int) (lo, hi int) {
	lo = w * n / p
	hi = (w + 1) * n / p
	return lo, hi
}

// Circuit names used by the MPF version.
const (
	candCircuit = "gj-cand" // workers -> arbiter, FCFS
	selCircuit  = "gj-sel"  // arbiter -> workers, broadcast
	rowCircuit  = "gj-row"  // winner -> workers, broadcast
	xCircuit    = "gj-x"    // workers -> arbiter, FCFS
)

// abortWorker in a sel message signals a singular matrix.
const abortWorker = ^uint32(0)

// SolveMPF solves Ax = b with `workers` message-passing worker processes
// plus one arbiter process, all communicating through fac. fac must
// allow at least workers+1 processes. The matrix partition follows the
// paper: equal-sized groups of contiguous rows.
func SolveMPF(fac *mpf.Facility, workers int, a [][]float64, b []float64) ([]float64, error) {
	if workers < 1 {
		return nil, fmt.Errorf("gauss: %d workers", workers)
	}
	full, err := augment(a, b)
	if err != nil {
		return nil, err
	}
	n := len(full)
	if workers > n {
		workers = n // more workers than rows is pure overhead
	}
	x := make([]float64, n)

	err = fac.Run(workers+1, func(p *mpf.Process) error {
		if p.PID() == workers {
			return arbiter(p, workers, n, x)
		}
		return worker(p, workers, n, full)
	})
	if err != nil {
		return nil, err
	}
	return x, nil
}

// arbiter implements the paper's arbiter process: it collects one pivot
// candidate per worker per iteration, announces the maximum of the
// maxima, and finally assembles the solution vector.
func arbiter(p *mpf.Process, workers, n int, x []float64) error {
	cand, err := p.OpenReceive(candCircuit, mpf.FCFS)
	if err != nil {
		return err
	}
	defer cand.Close()
	sel, err := p.OpenSend(selCircuit)
	if err != nil {
		return err
	}
	defer sel.Close()
	xs, err := p.OpenReceive(xCircuit, mpf.FCFS)
	if err != nil {
		return err
	}
	defer xs.Close()

	buf := make([]byte, wire.PivotCandSize)
	selBuf := make([]byte, 0, 2*wire.Uint32Size)
	for k := 0; k < n; k++ {
		best := wire.PivotCand{Worker: abortWorker}
		bestAbs := 0.0
		for w := 0; w < workers; w++ {
			m, err := cand.Receive(buf)
			if err != nil {
				return err
			}
			c, err := wire.DecodePivotCand(buf[:m])
			if err != nil {
				return err
			}
			if abs := math.Abs(c.Value); abs > bestAbs {
				best, bestAbs = c, abs
			}
		}
		if bestAbs < pivotEps {
			best.Worker = abortWorker // broadcast abort
		}
		selBuf = wire.AppendUint32(selBuf[:0], best.Worker)
		selBuf = wire.AppendUint32(selBuf, best.Row)
		if err := sel.Send(selBuf); err != nil {
			return err
		}
		if best.Worker == abortWorker {
			return ErrSingular
		}
	}

	// Assemble the solution: n (column, value) pairs in any order.
	pair := make([]byte, wire.Uint32Size+wire.Float64Size)
	for i := 0; i < n; i++ {
		m, err := xs.Receive(pair)
		if err != nil {
			return err
		}
		col, rest, err := wire.Uint32(pair[:m])
		if err != nil {
			return err
		}
		v, _, err := wire.Float64(rest)
		if err != nil {
			return err
		}
		if int(col) >= n {
			return fmt.Errorf("gauss: solution column %d out of range", col)
		}
		x[col] = v
	}
	return nil
}

// worker implements one of the paper's row-partition processes.
func worker(p *mpf.Process, workers, n int, full [][]float64) error {
	w := p.PID()
	lo, hi := partition(n, workers, w)
	// Copy the partition: message-passing workers own private rows.
	rows := make([][]float64, hi-lo)
	for i := range rows {
		rows[i] = append([]float64(nil), full[lo+i]...)
	}
	marked := make([]bool, hi-lo)
	pivotCol := make([]int, hi-lo)

	cand, err := p.OpenSend(candCircuit)
	if err != nil {
		return err
	}
	defer cand.Close()
	sel, err := p.OpenReceive(selCircuit, mpf.Broadcast)
	if err != nil {
		return err
	}
	defer sel.Close()
	rowSend, err := p.OpenSend(rowCircuit)
	if err != nil {
		return err
	}
	defer rowSend.Close()
	rowRecv, err := p.OpenReceive(rowCircuit, mpf.Broadcast)
	if err != nil {
		return err
	}
	defer rowRecv.Close()
	xs, err := p.OpenSend(xCircuit)
	if err != nil {
		return err
	}
	defer xs.Close()

	candBuf := make([]byte, 0, wire.PivotCandSize)
	selBuf := make([]byte, 2*wire.Uint32Size)
	rowBuf := make([]byte, (n+1)*wire.Float64Size)
	pivotRow := make([]float64, n+1)

	for k := 0; k < n; k++ {
		// Local pivot search over unmarked rows.
		c := wire.PivotCand{Worker: uint32(w), Row: 0, Value: 0}
		for i, row := range rows {
			if !marked[i] && math.Abs(row[k]) > math.Abs(c.Value) {
				c.Row = uint32(lo + i)
				c.Value = row[k]
			}
		}
		if err := cand.Send(c.Encode(candBuf)); err != nil {
			return err
		}

		// The arbiter announces the winner.
		if _, err := sel.Receive(selBuf); err != nil {
			return err
		}
		winner, rest, err := wire.Uint32(selBuf)
		if err != nil {
			return err
		}
		if winner == abortWorker {
			return ErrSingular
		}
		globalRow32, _, err := wire.Uint32(rest)
		if err != nil {
			return err
		}
		globalRow := int(globalRow32)

		// The winner broadcasts the pivot row; everyone (winner
		// included) receives it from the circuit, keeping all streams
		// aligned.
		if int(winner) == w {
			local := globalRow - lo
			if err := rowSend.Send(wire.AppendFloat64s(rowBuf[:0], rows[local])); err != nil {
				return err
			}
			marked[local] = true
			pivotCol[local] = k
		}
		if _, err := rowRecv.Receive(rowBuf[:cap(rowBuf)]); err != nil {
			return err
		}
		if _, err := wire.Float64s(rowBuf[:cap(rowBuf)], pivotRow); err != nil {
			return err
		}

		// Sweep all local rows except a locally held pivot row.
		pv := pivotRow[k]
		for i, row := range rows {
			if lo+i == globalRow {
				continue
			}
			f := row[k] / pv
			if f == 0 {
				continue
			}
			for j := k; j <= n; j++ {
				row[j] -= f * pivotRow[j]
			}
		}
	}

	// Ship solution components for locally owned pivot rows.
	pair := make([]byte, 0, wire.Uint32Size+wire.Float64Size)
	for i, row := range rows {
		if !marked[i] {
			return fmt.Errorf("gauss: row %d never pivoted", lo+i)
		}
		c := pivotCol[i]
		pair = wire.AppendUint32(pair[:0], uint32(c))
		pair = wire.AppendFloat64(pair, row[n]/row[c])
		if err := xs.Send(pair); err != nil {
			return err
		}
	}
	return nil
}

// SolveShared solves Ax = b with the shared-memory analogue: the same
// row partition, but pivot selection through a shared candidate array
// and barriers instead of circuits.
func SolveShared(workers int, a [][]float64, b []float64) ([]float64, error) {
	if workers < 1 {
		return nil, fmt.Errorf("gauss: %d workers", workers)
	}
	m, err := augment(a, b)
	if err != nil {
		return nil, err
	}
	n := len(m)
	if workers > n {
		workers = n
	}
	bar, err := proc.NewBarrier(workers)
	if err != nil {
		return nil, err
	}
	cands := make([]wire.PivotCand, workers)
	var winner wire.PivotCand
	var singular bool
	marked := make([]bool, n)
	pivotCol := make([]int, n)
	x := make([]float64, n)
	var xMu sync.Mutex

	g, err := proc.NewGroup(workers)
	if err != nil {
		return nil, err
	}
	err = g.Run(func(w int) error {
		lo, hi := partition(n, workers, w)
		for k := 0; k < n; k++ {
			c := wire.PivotCand{Worker: uint32(w)}
			for i := lo; i < hi; i++ {
				if !marked[i] && math.Abs(m[i][k]) > math.Abs(c.Value) {
					c.Row = uint32(i)
					c.Value = m[i][k]
				}
			}
			cands[w] = c
			bar.Wait()
			if w == 0 { // worker 0 plays arbiter
				best, bestAbs := wire.PivotCand{}, 0.0
				for _, c := range cands {
					if abs := math.Abs(c.Value); abs > bestAbs {
						best, bestAbs = c, abs
					}
				}
				if bestAbs < pivotEps {
					singular = true
				} else {
					winner = best
					marked[best.Row] = true
					pivotCol[best.Row] = k
				}
			}
			bar.Wait()
			if singular {
				return ErrSingular
			}
			pivotRow := m[winner.Row]
			pv := pivotRow[k]
			for i := lo; i < hi; i++ {
				if i == int(winner.Row) {
					continue
				}
				f := m[i][k] / pv
				if f == 0 {
					continue
				}
				for j := k; j <= n; j++ {
					m[i][j] -= f * pivotRow[j]
				}
			}
			bar.Wait()
		}
		xMu.Lock()
		for r := lo; r < hi; r++ {
			c := pivotCol[r]
			x[c] = m[r][n] / m[r][c]
		}
		xMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return x, nil
}

// Residual returns max_i |A x - b|_i, the correctness metric the tests
// assert on.
func Residual(a [][]float64, b []float64, x []float64) float64 {
	worst := 0.0
	for i := range a {
		s := -b[i]
		for j := range x {
			s += a[i][j] * x[j]
		}
		if r := math.Abs(s); r > worst {
			worst = r
		}
	}
	return worst
}
