package gauss

import (
	"math/rand"
	"testing"

	"repro/mpf"
)

// TestMessageCountMatchesProtocol pins the communication volume of the
// MPF solver to the paper's protocol structure: per iteration each of W
// workers sends one pivot candidate (W·n total), the arbiter announces
// one winner (n), the winner broadcasts one pivot row (n), and at the
// end each pivot row yields one solution pair (n). Any change that adds
// or drops traffic — double sends, retries, lost rendezvous — breaks
// this count.
func TestMessageCountMatchesProtocol(t *testing.T) {
	for _, cfg := range []struct{ n, workers int }{
		{8, 1}, {16, 2}, {16, 4}, {33, 5},
	} {
		fac, err := mpf.New(
			mpf.WithMaxProcesses(cfg.workers+1),
			mpf.WithBlocksPerProcess(2048),
		)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(cfg.n)))
		a, b := NewSystem(cfg.n, rng)
		if _, err := SolveMPF(fac, cfg.workers, a, b); err != nil {
			t.Fatal(err)
		}
		st := fac.Stats()
		wantSends := uint64(cfg.n*cfg.workers + 3*cfg.n)
		if st.Sends != wantSends {
			t.Errorf("n=%d W=%d: %d sends, want %d", cfg.n, cfg.workers, st.Sends, wantSends)
		}
		// Receives: arbiter consumes W·n candidates and n pairs; every
		// worker consumes n winner announcements and n pivot rows.
		wantRecvs := uint64(cfg.n*cfg.workers + cfg.n + 2*cfg.n*cfg.workers)
		if st.Receives != wantRecvs {
			t.Errorf("n=%d W=%d: %d receives, want %d", cfg.n, cfg.workers, st.Receives, wantRecvs)
		}
		// Conservation: everything sent was consumed (broadcast messages
		// count once per consuming receiver).
		if st.MessagesDropped != 0 {
			t.Errorf("n=%d W=%d: %d messages dropped", cfg.n, cfg.workers, st.MessagesDropped)
		}
		fac.Shutdown()
	}
}

// TestCommunicationScalesWithWorkers confirms the paper's Figure 7
// analysis mechanically: candidate traffic grows linearly with workers
// while row-broadcast bytes stay fixed, so communication per unit of
// computation rises as the partition shrinks.
func TestCommunicationScalesWithWorkers(t *testing.T) {
	const n = 32
	bytesFor := func(workers int) uint64 {
		fac, err := mpf.New(mpf.WithMaxProcesses(workers+1), mpf.WithBlocksPerProcess(2048))
		if err != nil {
			t.Fatal(err)
		}
		defer fac.Shutdown()
		rng := rand.New(rand.NewSource(7))
		a, b := NewSystem(n, rng)
		if _, err := SolveMPF(fac, workers, a, b); err != nil {
			t.Fatal(err)
		}
		return fac.Stats().BytesSent
	}
	b2, b8 := bytesFor(2), bytesFor(8)
	if b8 <= b2 {
		t.Fatalf("bytes sent with 8 workers (%d) not above 2 workers (%d)", b8, b2)
	}
	// The growth is the candidate traffic: 6 extra candidates per
	// iteration at PivotCandSize bytes each.
	wantDelta := uint64(6 * n * 16)
	if got := b8 - b2; got != wantDelta {
		t.Fatalf("traffic delta = %d bytes, want %d (candidates only)", got, wantDelta)
	}
}
