package gauss

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/balance"
	"repro/mpf"
)

func newFacility(t *testing.T, procs int) *mpf.Facility {
	t.Helper()
	f, err := mpf.New(
		mpf.WithMaxProcesses(procs),
		mpf.WithMaxLNVCs(16),
		mpf.WithBlocksPerProcess(2048),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	return f
}

func TestSequentialKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := SolveSequential(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("x = %v, want [2 1]", x)
	}
}

func TestSequentialNeedsPivoting(t *testing.T) {
	// A zero in the leading position forces a row pivot.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{3, 7}
	x, err := SolveSequential(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestSequentialSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveSequential(a, b); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSequentialValidation(t *testing.T) {
	if _, err := SolveSequential(nil, nil); err == nil {
		t.Fatal("empty system accepted")
	}
	if _, err := SolveSequential([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched b accepted")
	}
	if _, err := SolveSequential([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestSequentialDoesNotMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := NewSystem(8, rng)
	a0 := append([]float64(nil), a[0]...)
	b0 := append([]float64(nil), b...)
	if _, err := SolveSequential(a, b); err != nil {
		t.Fatal(err)
	}
	for j := range a0 {
		if a[0][j] != a0[j] {
			t.Fatal("A mutated")
		}
	}
	for i := range b0 {
		if b[i] != b0[i] {
			t.Fatal("b mutated")
		}
	}
}

func TestMPFMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 16, 33} {
		for _, workers := range []int{1, 2, 4, 7} {
			a, b := NewSystem(n, rng)
			want, err := SolveSequential(a, b)
			if err != nil {
				t.Fatal(err)
			}
			fac := newFacility(t, workers+1)
			got, err := SolveMPF(fac, workers, a, b)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("n=%d workers=%d: x[%d] = %v, want %v", n, workers, i, got[i], want[i])
				}
			}
			if r := Residual(a, b, got); r > 1e-9 {
				t.Fatalf("n=%d workers=%d: residual %g", n, workers, r)
			}
		}
	}
}

func TestMPFSingular(t *testing.T) {
	a := [][]float64{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}}
	b := []float64{1, 2, 3}
	fac := newFacility(t, 3)
	if _, err := SolveMPF(fac, 2, a, b); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestMPFWorkerClamp(t *testing.T) {
	// More workers than rows must not break (clamped internally).
	rng := rand.New(rand.NewSource(11))
	a, b := NewSystem(3, rng)
	fac := newFacility(t, 9)
	x, err := SolveMPF(fac, 8, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, b, x); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestSharedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 4, 17, 32} {
		for _, workers := range []int{1, 3, 8} {
			a, b := NewSystem(n, rng)
			want, err := SolveSequential(a, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SolveShared(workers, a, b)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("n=%d workers=%d: x[%d] mismatch", n, workers, i)
				}
			}
		}
	}
}

func TestSharedSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {2, 2}}
	b := []float64{1, 2}
	if _, err := SolveShared(2, a, b); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
}

func TestPartitionCoversAllRows(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for p := 1; p <= 10; p++ {
			covered := 0
			prevHi := 0
			for w := 0; w < p; w++ {
				lo, hi := partition(n, p, w)
				if lo != prevHi {
					t.Fatalf("n=%d p=%d w=%d: gap (lo=%d, prevHi=%d)", n, p, w, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("n=%d p=%d: covered %d rows", n, p, covered)
			}
		}
	}
}

func TestOwnerOfConsistentWithPartition(t *testing.T) {
	for _, n := range []int{5, 16, 33} {
		for _, p := range []int{1, 3, 7} {
			for row := 0; row < n; row++ {
				w := ownerOf(n, p, row)
				lo, hi := partition(n, p, w)
				if row < lo || row >= hi {
					t.Fatalf("ownerOf(%d,%d,%d) = %d but range [%d,%d)", n, p, row, w, lo, hi)
				}
			}
		}
	}
}

// Property: the solver inverts NewSystem for random sizes and seeds.
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%24) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := NewSystem(n, rng)
		x, err := SolveSequential(a, b)
		if err != nil {
			return false
		}
		return Residual(a, b, x) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSimTimesReasonable(t *testing.T) {
	m := balance.Balance21000()
	seq := SimSeqTime(m, 32)
	if seq <= 0 {
		t.Fatal("non-positive sequential time")
	}
	t1, err := SimTime(m, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := SimTime(m, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if t8 >= t1 {
		t.Fatalf("8 workers (%g) not faster than 1 (%g)", t8, t1)
	}
	// Speedup must be positive and below the worker count.
	sp := seq / t8
	if sp <= 1 || sp > 8 {
		t.Fatalf("speedup = %g, want in (1, 8]", sp)
	}
}

func TestSimSpeedupGrowsWithMatrixSize(t *testing.T) {
	// The paper's central Figure 7 observation: larger matrices permit
	// effective use of more processors.
	m := balance.Balance21000()
	speedup := func(n, workers int) float64 {
		pt, err := SimTime(m, n, workers)
		if err != nil {
			t.Fatal(err)
		}
		return SimSeqTime(m, n) / pt
	}
	s32 := speedup(32, 16)
	s96 := speedup(96, 16)
	if s96 <= s32 {
		t.Fatalf("speedup(96,16)=%g not above speedup(32,16)=%g", s96, s32)
	}
}

func TestSimValidation(t *testing.T) {
	m := balance.Balance21000()
	if _, err := SimTime(m, 0, 4); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := SimTime(m, 8, 0); err == nil {
		t.Fatal("workers=0 accepted")
	}
}
