package fastpath

import (
	"testing"
	"unsafe"
)

// The ring header's producer/consumer split: head belongs to the
// consumer, tail to the producer, and each side's zero-copy cursor
// group follows the same ownership. This test freezes the padding so a
// future field insertion cannot put the two sides back onto one
// 64-byte line.
func TestRingCursorLayout(t *testing.T) {
	var r Ring
	const line = 64
	pairs := []struct {
		name string
		a, b uintptr
	}{
		{"head/tail", unsafe.Offsetof(r.head), unsafe.Offsetof(r.tail)},
		{"tail/closed", unsafe.Offsetof(r.tail), unsafe.Offsetof(r.closed)},
	}
	for _, p := range pairs {
		if p.b-p.a < line {
			t.Errorf("%s only %d bytes apart, want >= %d", p.name, p.b-p.a, line)
		}
	}
}
