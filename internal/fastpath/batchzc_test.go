package fastpath

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// The ring's batched zero-copy ends: ReserveBatch carves N records
// under one reservation published by a single CommitReserve cursor
// store; PeekBatch exposes N records in place retired by a single
// ConsumeBatch store.

func TestReserveBatchCommitRoundtrip(t *testing.T) {
	r, err := NewRing(512)
	if err != nil {
		t.Fatal(err)
	}
	ns := []int{8, 16, 24}
	segs, err := r.ReserveBatch(ns)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != len(ns) {
		t.Fatalf("reserved %d records, want %d", len(segs), len(ns))
	}
	for i, seg := range segs {
		if len(seg) != ns[i] {
			t.Fatalf("record %d is %d bytes, want %d", i, len(seg), ns[i])
		}
		for j := range seg {
			seg[j] = byte(i)
		}
	}
	// Nothing visible before the commit.
	if _, ok, _ := r.TryRecv(make([]byte, 64)); ok {
		t.Fatal("uncommitted batch reservation visible")
	}
	r.CommitReserve()
	buf := make([]byte, 64)
	for i := range ns {
		n, ok, err := r.TryRecv(buf)
		if err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
		if n != ns[i] || buf[0] != byte(i) || buf[n-1] != byte(i) {
			t.Fatalf("record %d corrupted: n=%d first=%d", i, n, buf[0])
		}
	}
}

func TestReserveBatchAbortAndPartialFit(t *testing.T) {
	r, _ := NewRing(128) // 128-byte buffer: a few records fit
	segs, err := r.ReserveBatch([]int{32, 32, 32, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || len(segs) == 5 {
		t.Fatalf("expected a strict prefix to fit, got %d of 5", len(segs))
	}
	r.AbortReserve()
	if _, ok, _ := r.TryRecv(make([]byte, 64)); ok {
		t.Fatal("aborted batch became visible")
	}
	// The full capacity is reusable after the abort.
	if ok, err := r.TrySend(make([]byte, 64)); err != nil || !ok {
		t.Fatalf("TrySend after batch abort: ok=%v err=%v", ok, err)
	}

	// A record that can never fit stops the batch with ErrTooBig, the
	// reserved prefix intact.
	r2, _ := NewRing(256)
	segs, err = r2.ReserveBatch([]int{8, len(r2.buf)})
	if !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized batch member: err=%v", err)
	}
	if len(segs) != 1 {
		t.Fatalf("prefix before the oversized member: %d records, want 1", len(segs))
	}
	copy(segs[0], "prefixed")
	r2.CommitReserve()
	buf := make([]byte, 64)
	n, ok, _ := r2.TryRecv(buf)
	if !ok || string(buf[:n]) != "prefixed" {
		t.Fatalf("prefix lost: %q", buf[:n])
	}

	// No space right now (but not ErrTooBig): nil batch, nil error, no
	// reservation to resolve.
	r3, _ := NewRing(64)
	if ok, err := r3.TrySend(make([]byte, 48)); err != nil || !ok {
		t.Fatal("fill failed")
	}
	segs, err = r3.ReserveBatch([]int{40})
	if err != nil || segs != nil {
		t.Fatalf("full ring: segs=%v err=%v, want nil/nil", segs, err)
	}
}

func TestPeekBatchConsumeRoundtrip(t *testing.T) {
	r, _ := NewRing(1024)
	const k = 5
	for i := 0; i < k; i++ {
		if ok, err := r.TrySend([]byte(fmt.Sprintf("record-%d", i))); err != nil || !ok {
			t.Fatal("send failed")
		}
	}
	segs, err := r.PeekBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("peeked %d records, want 3", len(segs))
	}
	for i, seg := range segs {
		if want := fmt.Sprintf("record-%d", i); string(seg) != want {
			t.Fatalf("record %d: %q, want %q", i, seg, want)
		}
	}
	r.ConsumeBatch()
	// The remaining records are intact and a batch larger than the
	// backlog returns just the backlog.
	segs, err = r.PeekBatch(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != k-3 {
		t.Fatalf("peeked %d records, want %d", len(segs), k-3)
	}
	if !bytes.Equal(segs[0], []byte("record-3")) {
		t.Fatalf("tail record corrupted: %q", segs[0])
	}
	r.ConsumeBatch()
	if segs, err := r.PeekBatch(4); err != nil || segs != nil {
		t.Fatalf("empty ring peek: segs=%v err=%v", segs, err)
	}
	// Close-drain semantics match TryRecvBatch: drain, then ErrClosed.
	if ok, _ := r.TrySend([]byte("last")); !ok {
		t.Fatal("send failed")
	}
	r.Close()
	segs, err = r.PeekBatch(4)
	if err != nil || len(segs) != 1 {
		t.Fatalf("closed-ring drain: %d records err=%v", len(segs), err)
	}
	r.ConsumeBatch()
	if _, err := r.PeekBatch(4); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained closed ring: err=%v, want ErrClosed", err)
	}
}

// TestPeekBatchAcrossWrap forces a skip marker inside the batch's run
// and checks the peek walks over it under the single published cursor.
func TestPeekBatchAcrossWrap(t *testing.T) {
	r, _ := NewRing(128)
	buf := make([]byte, 64)
	// Advance the cursors toward the end of the buffer.
	for i := 0; i < 3; i++ {
		if ok, _ := r.TrySend(make([]byte, 24)); !ok {
			t.Fatal("prefill failed")
		}
		if _, ok, _ := r.TryRecv(buf); !ok {
			t.Fatal("predrain failed")
		}
	}
	// These two records straddle the wrap point.
	for i := 0; i < 2; i++ {
		msg := bytes.Repeat([]byte{byte('a' + i)}, 30)
		if ok, err := r.TrySend(msg); err != nil || !ok {
			t.Fatal("wrap send failed")
		}
	}
	segs, err := r.PeekBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("peeked %d records across the wrap, want 2", len(segs))
	}
	for i, seg := range segs {
		if len(seg) != 30 || seg[0] != byte('a'+i) || seg[29] != byte('a'+i) {
			t.Fatalf("wrapped record %d corrupted", i)
		}
	}
	r.ConsumeBatch()
	if segs, err := r.PeekBatch(8); err != nil || segs != nil {
		t.Fatalf("ring should be empty after wrap consume: segs=%v err=%v", segs, err)
	}
}

// TestBatchReserveGuards pins the misuse panics: interleaving sends
// with an outstanding batch reservation, and consuming without a peek.
func TestBatchReserveGuards(t *testing.T) {
	r, _ := NewRing(256)
	if _, err := r.ReserveBatch([]int{8}); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "TrySend during batch reservation", func() { r.TrySend([]byte("x")) })
	mustPanic(t, "ReserveBatch during reservation", func() { r.ReserveBatch([]int{4}) })
	r.AbortReserve()
	mustPanic(t, "ConsumeBatch without peek", func() { r.ConsumeBatch() })
	if ok, _ := r.TrySend([]byte("y")); !ok {
		t.Fatal("send failed")
	}
	if _, err := r.PeekBatch(1); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "TryRecv during batch peek", func() { r.TryRecv(make([]byte, 8)) })
	mustPanic(t, "PeekBatch during peek", func() { r.PeekBatch(1) })
	r.ConsumeBatch()
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}
