package fastpath

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRingRoundtrip(t *testing.T) {
	r, err := NewRing(1024)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("through the ring")
	ok, err := r.TrySend(msg)
	if err != nil || !ok {
		t.Fatalf("TrySend: ok=%v err=%v", ok, err)
	}
	buf := make([]byte, 64)
	n, ok, err := r.TryRecv(buf)
	if err != nil || !ok || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("TryRecv: n=%d ok=%v err=%v buf=%q", n, ok, err, buf[:n])
	}
	// Empty now.
	if _, ok, _ := r.TryRecv(buf); ok {
		t.Fatal("recv from empty ring succeeded")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	r, err := NewRing(100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 128 {
		t.Fatalf("Cap = %d, want 128", r.Cap())
	}
	if _, err := NewRing(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	r, _ = NewRing(1)
	if r.Cap() != 64 {
		t.Fatalf("minimum Cap = %d, want 64", r.Cap())
	}
}

func TestRingFullBehaviour(t *testing.T) {
	r, _ := NewRing(64)
	msg := make([]byte, 20)
	sent := 0
	for {
		ok, err := r.TrySend(msg)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		sent++
	}
	if sent < 2 {
		t.Fatalf("only %d messages fit a 64-byte ring", sent)
	}
	// Draining one frees room for one.
	buf := make([]byte, 20)
	if _, ok, _ := r.TryRecv(buf); !ok {
		t.Fatal("drain failed")
	}
	if ok, _ := r.TrySend(msg); !ok {
		t.Fatal("send after drain failed")
	}
}

func TestRingTooBig(t *testing.T) {
	r, _ := NewRing(64)
	if _, err := r.TrySend(make([]byte, 100)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
}

func TestRingWraparound(t *testing.T) {
	// Force many wraps with messages that do not divide the capacity.
	r, _ := NewRing(128)
	buf := make([]byte, 64)
	for i := 0; i < 1000; i++ {
		msg := []byte(fmt.Sprintf("wrap-%04d-%s", i, "padddddding"[:i%11]))
		if err := r.Send(msg); err != nil {
			t.Fatal(err)
		}
		n, err := r.Recv(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:n], msg) {
			t.Fatalf("iter %d: got %q want %q", i, buf[:n], msg)
		}
	}
}

func TestRingZeroLengthMessages(t *testing.T) {
	r, _ := NewRing(64)
	if ok, err := r.TrySend(nil); err != nil || !ok {
		t.Fatalf("zero-length send: %v %v", ok, err)
	}
	n, ok, err := r.TryRecv(make([]byte, 4))
	if err != nil || !ok || n != 0 {
		t.Fatalf("zero-length recv: n=%d ok=%v err=%v", n, ok, err)
	}
}

func TestRingClose(t *testing.T) {
	r, _ := NewRing(64)
	r.TrySend([]byte("last"))
	r.Close()
	if ok, err := r.TrySend([]byte("x")); ok || !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: ok=%v err=%v", ok, err)
	}
	// Drain still works after close…
	buf := make([]byte, 8)
	n, ok, err := r.TryRecv(buf)
	if err != nil || !ok || string(buf[:n]) != "last" {
		t.Fatalf("drain after close: %v %v %q", ok, err, buf[:n])
	}
	// …and then reports closed.
	if _, _, err := r.TryRecv(buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv on drained closed ring: %v", err)
	}
}

func TestRingSPSCStress(t *testing.T) {
	r, _ := NewRing(512)
	const msgs = 20000
	var recvErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		for i := 0; i < msgs; i++ {
			n, err := r.Recv(buf)
			if err != nil {
				recvErr = err
				return
			}
			want := fmt.Sprintf("m%d", i)
			if string(buf[:n]) != want {
				recvErr = fmt.Errorf("message %d: got %q want %q", i, buf[:n], want)
				return
			}
		}
	}()
	for i := 0; i < msgs; i++ {
		if err := r.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
}

// Property: any sequence of messages below capacity survives the ring
// FIFO and intact, across varied sizes that exercise wrapping.
func TestQuickRingFIFO(t *testing.T) {
	r, _ := NewRing(4096)
	f := func(msgs [][]byte) bool {
		buf := make([]byte, 4096)
		for _, m := range msgs {
			if len(m) > 1000 {
				m = m[:1000]
			}
			if err := r.Send(m); err != nil {
				return false
			}
			n, err := r.Recv(buf)
			if err != nil || n != len(m) || !bytes.Equal(buf[:n], m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousSingleCopy(t *testing.T) {
	v := NewRendezvous()
	got := make(chan string, 1)
	go func() {
		buf := make([]byte, 32)
		n, err := v.Recv(buf)
		if err != nil {
			t.Error(err)
		}
		got <- string(buf[:n])
	}()
	if err := v.Send([]byte("direct transfer")); err != nil {
		t.Fatal(err)
	}
	if s := <-got; s != "direct transfer" {
		t.Fatalf("got %q", s)
	}
}

func TestRendezvousSendBlocksUntilRecv(t *testing.T) {
	v := NewRendezvous()
	done := make(chan struct{})
	go func() {
		v.Send([]byte("x"))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Send returned before any receiver")
	case <-time.After(30 * time.Millisecond):
	}
	buf := make([]byte, 1)
	if _, err := v.Recv(buf); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send never returned after Recv")
	}
}

func TestRendezvousManyPairs(t *testing.T) {
	v := NewRendezvous()
	const pairs = 8
	const msgsEach = 200
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[string]int)
	for s := 0; s < pairs; s++ {
		wg.Add(2)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < msgsEach; i++ {
				if err := v.Send([]byte(fmt.Sprintf("s%d-%d", id, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
		go func() {
			defer wg.Done()
			buf := make([]byte, 32)
			for i := 0; i < msgsEach; i++ {
				n, err := v.Recv(buf)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				seen[string(buf[:n])]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != pairs*msgsEach {
		t.Fatalf("saw %d distinct messages, want %d", len(seen), pairs*msgsEach)
	}
	for m, c := range seen {
		if c != 1 {
			t.Fatalf("message %q delivered %d times", m, c)
		}
	}
}

func TestRendezvousClose(t *testing.T) {
	v := NewRendezvous()
	errs := make(chan error, 2)
	go func() { errs <- v.Send([]byte("x")) }()
	go func() {
		_, err := v.Recv(make([]byte, 1))
		// This receiver may pair with the sender above or see the
		// close; both are valid.
		if err != nil && !errors.Is(err, ErrClosed) {
			errs <- err
			return
		}
		errs <- nil
	}()
	time.Sleep(20 * time.Millisecond)
	v.Close()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil && !errors.Is(err, ErrClosed) {
			t.Fatal(err)
		}
	}
	if err := v.Send([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := v.Recv(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
}

func TestRendezvousTruncation(t *testing.T) {
	v := NewRendezvous()
	go v.Send([]byte("0123456789"))
	buf := make([]byte, 4)
	n, err := v.Recv(buf)
	if err != nil || n != 4 || string(buf) != "0123" {
		t.Fatalf("n=%d err=%v buf=%q", n, err, buf)
	}
}
