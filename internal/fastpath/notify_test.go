package fastpath

import (
	"errors"
	"testing"
	"time"
)

// TestRingNotifyOnPublish checks the readiness hook fires once per
// publish — per message for TrySend, per batch for TrySendBatch — and
// on Close.
func TestRingNotifyOnPublish(t *testing.T) {
	r, err := NewRing(1024)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	r.SetNotify(func() { fired++ })
	if ok, err := r.TrySend([]byte("a")); err != nil || !ok {
		t.Fatalf("TrySend: ok=%v err=%v", ok, err)
	}
	if fired != 1 {
		t.Fatalf("fired %d after one send, want 1", fired)
	}
	if n, err := r.TrySendBatch([][]byte{[]byte("b"), []byte("c"), []byte("d")}); err != nil || n != 3 {
		t.Fatalf("TrySendBatch: n=%d err=%v", n, err)
	}
	if fired != 2 {
		t.Fatalf("fired %d after a batch, want 2 (one per publish)", fired)
	}
	r.SetNotify(nil)
	if ok, _ := r.TrySend([]byte("e")); !ok {
		t.Fatal("TrySend after clearing notify")
	}
	if fired != 2 {
		t.Fatalf("cleared hook still fired (%d)", fired)
	}
	r.SetNotify(func() { fired++ })
	r.Close()
	if fired != 3 {
		t.Fatalf("fired %d after Close, want 3", fired)
	}
}

// TestRingNotifyEventLoop drives the intended shape: one consumer
// draining two rings, parked on a single channel that each ring's
// notify hook posts to — the fastpath mirror of the LNVC waiter lists.
func TestRingNotifyEventLoop(t *testing.T) {
	mkRing := func(wake chan struct{}) *Ring {
		r, err := NewRing(4096)
		if err != nil {
			t.Fatal(err)
		}
		r.SetNotify(func() {
			select {
			case wake <- struct{}{}:
			default:
			}
		})
		return r
	}
	wake := make(chan struct{}, 1)
	rings := []*Ring{mkRing(wake), mkRing(wake)}

	const perRing = 500
	go func() {
		for k := 0; k < perRing; k++ {
			for i, r := range rings {
				if err := r.Send([]byte{byte(i), byte(k)}); err != nil {
					t.Error(err)
					return
				}
			}
		}
		for _, r := range rings {
			r.Close()
		}
	}()

	buf := make([]byte, 8)
	counts := make([]int, len(rings))
	live := len(rings)
	closed := make([]bool, len(rings))
	for live > 0 {
		progressed := false
		for i, r := range rings {
			if closed[i] {
				continue
			}
			for {
				n, ok, err := r.TryRecv(buf)
				if errors.Is(err, ErrClosed) {
					closed[i] = true
					live--
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				if n != 2 || buf[0] != byte(i) {
					t.Fatalf("ring %d delivered n=%d buf=%v", i, n, buf[:n])
				}
				counts[i]++
				progressed = true
			}
		}
		if live == 0 {
			break
		}
		if !progressed {
			select {
			case <-wake:
			case <-time.After(5 * time.Second):
				t.Fatalf("event loop starved: counts=%v", counts)
			}
		}
	}
	for i, c := range counts {
		if c != perRing {
			t.Errorf("ring %d: drained %d records, want %d", i, c, perRing)
		}
	}
}
