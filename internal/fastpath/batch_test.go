package fastpath

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestRingBatchRoundTrip(t *testing.T) {
	r, err := NewRing(1024)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]byte, 10)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("batch message %d", i))
	}
	n, err := r.TrySendBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(msgs) {
		t.Fatalf("TrySendBatch enqueued %d of %d", n, len(msgs))
	}
	bufs := make([][]byte, len(msgs))
	for i := range bufs {
		bufs[i] = make([]byte, 64)
	}
	ns, err := r.TryRecvBatch(bufs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != len(msgs) {
		t.Fatalf("TryRecvBatch consumed %d of %d", len(ns), len(msgs))
	}
	for i, c := range ns {
		if !bytes.Equal(bufs[i][:c], msgs[i]) {
			t.Errorf("message %d: %q, want %q", i, bufs[i][:c], msgs[i])
		}
	}
	// Ring drained.
	if ns, err := r.TryRecvBatch(bufs); err != nil || len(ns) != 0 {
		t.Errorf("drained ring returned %v, %v", ns, err)
	}
}

func TestRingBatchPartialFill(t *testing.T) {
	r, err := NewRing(64) // tiny: only some records fit
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]byte, 16)
	for i := range msgs {
		msgs[i] = []byte("0123456789") // 10 + 4 header, padded to 16
	}
	sent, err := r.TrySendBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if sent == 0 || sent == len(msgs) {
		t.Fatalf("TrySendBatch on a tiny ring sent %d of %d; want a proper prefix", sent, len(msgs))
	}
	// The enqueued prefix round-trips intact.
	bufs := make([][]byte, len(msgs))
	for i := range bufs {
		bufs[i] = make([]byte, 16)
	}
	ns, err := r.TryRecvBatch(bufs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != sent {
		t.Fatalf("received %d, want the %d sent", len(ns), sent)
	}
}

func TestRingBatchAcrossWrap(t *testing.T) {
	r, err := NewRing(256)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 60)
	buf := make([]byte, 64)
	// Repeated two-message batches of 64-byte records on a 256-byte
	// ring force the batch path across the wrap point many times.
	for round := 0; round < 40; round++ {
		if err := r.SendBatch([][]byte{payload, payload}); err != nil {
			t.Fatal(err)
		}
		for got := 0; got < 2; {
			ns, err := r.TryRecvBatch([][]byte{buf})
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range ns {
				if n != len(payload) {
					t.Fatalf("round %d: got %d bytes, want %d", round, n, len(payload))
				}
			}
			got += len(ns)
		}
	}
}

func TestRingBatchTooBig(t *testing.T) {
	r, err := NewRing(64)
	if err != nil {
		t.Fatal(err)
	}
	small := []byte("ok")
	huge := make([]byte, 128)
	sent, err := r.TrySendBatch([][]byte{small, huge, small})
	if !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
	if sent != 1 {
		t.Fatalf("sent %d before the oversized message, want 1", sent)
	}
	buf := make([]byte, 16)
	n, ok, err := r.TryRecv(buf)
	if err != nil || !ok || string(buf[:n]) != "ok" {
		t.Fatalf("prefix not delivered: %q %v %v", buf[:n], ok, err)
	}
}

func TestRingBatchClosedDrain(t *testing.T) {
	r, err := NewRing(256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.TrySendBatch([][]byte{[]byte("last")}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	bufs := [][]byte{make([]byte, 16)}
	ns, err := r.TryRecvBatch(bufs)
	if err != nil || len(ns) != 1 {
		t.Fatalf("drain after close: %v %v", ns, err)
	}
	if _, err := r.TryRecvBatch(bufs); !errors.Is(err, ErrClosed) {
		t.Fatalf("empty closed ring: %v, want ErrClosed", err)
	}
	if _, err := r.TrySendBatch([][]byte{[]byte("x")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed ring: %v, want ErrClosed", err)
	}
}

func TestRingBatchNoBuffers(t *testing.T) {
	r, err := NewRing(256)
	if err != nil {
		t.Fatal(err)
	}
	// Zero buffers must be a no-op in every ring state — in particular
	// on a closed ring that still holds messages, where a retry loop
	// could otherwise spin (or, worse, recurse) forever.
	if ns, err := r.TryRecvBatch(nil); err != nil || ns != nil {
		t.Errorf("empty recv on empty ring: %v, %v", ns, err)
	}
	if _, err := r.TrySendBatch([][]byte{[]byte("pending")}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if ns, err := r.TryRecvBatch(nil); err != nil || ns != nil {
		t.Errorf("empty recv on closed non-empty ring: %v, %v", ns, err)
	}
	if ns, err := r.TryRecvBatch([][]byte{}); err != nil || ns != nil {
		t.Errorf("zero-length recv on closed non-empty ring: %v, %v", ns, err)
	}
}
