package fastpath

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestReserveCommitRoundtrip(t *testing.T) {
	r, err := NewRing(256)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("written in place, never copied")
	seg, ok, err := r.Reserve(len(want))
	if err != nil || !ok {
		t.Fatalf("Reserve: ok=%v err=%v", ok, err)
	}
	if len(seg) != len(want) {
		t.Fatalf("reserved %d bytes, want %d", len(seg), len(want))
	}
	// Nothing visible before the commit.
	if n, ok, _ := r.TryRecv(make([]byte, 64)); ok {
		t.Fatalf("uncommitted reservation visible: %d bytes", n)
	}
	copy(seg, want)
	r.CommitReserve()
	buf := make([]byte, 64)
	n, ok, err := r.TryRecv(buf)
	if err != nil || !ok || !bytes.Equal(buf[:n], want) {
		t.Fatalf("TryRecv after commit: n=%d ok=%v err=%v", n, ok, err)
	}
}

func TestAbortReserveLeavesNothing(t *testing.T) {
	r, _ := NewRing(256)
	seg, ok, err := r.Reserve(10)
	if err != nil || !ok {
		t.Fatal(err)
	}
	copy(seg, "discarded!")
	r.AbortReserve()
	if _, ok, _ := r.TryRecv(make([]byte, 64)); ok {
		t.Fatal("aborted reservation became visible")
	}
	// The slot is reusable immediately.
	if ok, err := r.TrySend([]byte("next")); err != nil || !ok {
		t.Fatalf("TrySend after abort: ok=%v err=%v", ok, err)
	}
	buf := make([]byte, 64)
	n, ok, _ := r.TryRecv(buf)
	if !ok || string(buf[:n]) != "next" {
		t.Fatalf("got %q after abort", buf[:n])
	}
}

func TestReserveLimits(t *testing.T) {
	r, _ := NewRing(64)
	if _, _, err := r.Reserve(len(r.buf)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversize Reserve err = %v, want ErrTooBig", err)
	}
	if _, _, err := r.Reserve(-1); !errors.Is(err, ErrTooBig) {
		t.Fatalf("negative Reserve err = %v, want ErrTooBig", err)
	}
	// Fill the ring; Reserve must report no-room, not error.
	for {
		ok, err := r.TrySend(make([]byte, 16))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if _, ok, err := r.Reserve(16); ok || err != nil {
		t.Fatalf("full ring Reserve: ok=%v err=%v", ok, err)
	}
	r.Close()
	if _, _, err := r.Reserve(8); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed Reserve err = %v, want ErrClosed", err)
	}
}

func TestPeekConsume(t *testing.T) {
	r, _ := NewRing(256)
	if _, ok, err := r.Peek(); ok || err != nil {
		t.Fatalf("empty Peek: ok=%v err=%v", ok, err)
	}
	r.TrySend([]byte("first"))
	r.TrySend([]byte("second"))
	seg, ok, err := r.Peek()
	if err != nil || !ok || string(seg) != "first" {
		t.Fatalf("Peek = %q, ok=%v, err=%v", seg, ok, err)
	}
	// Peek again before Consume: same record.
	seg2, ok, _ := r.Peek()
	if !ok || string(seg2) != "first" {
		t.Fatalf("second Peek = %q", seg2)
	}
	r.Consume()
	seg, ok, _ = r.Peek()
	if !ok || string(seg) != "second" {
		t.Fatalf("Peek after Consume = %q", seg)
	}
	r.Consume()
	if _, ok, _ := r.Peek(); ok {
		t.Fatal("drained ring still peeks a record")
	}
	r.Close()
	if _, _, err := r.Peek(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed Peek err = %v, want ErrClosed", err)
	}
}

func TestPeekDrainsAfterClose(t *testing.T) {
	r, _ := NewRing(256)
	r.TrySend([]byte("late"))
	r.Close()
	seg, ok, err := r.Peek()
	if err != nil || !ok || string(seg) != "late" {
		t.Fatalf("Peek after close = %q, ok=%v, err=%v", seg, ok, err)
	}
	r.Consume()
	if _, _, err := r.Peek(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestReservePeekWrapAround(t *testing.T) {
	r, _ := NewRing(128)
	// Drive the cursors around the ring so reservations and peeks cross
	// the wrap point (skip markers) repeatedly.
	for i := 0; i < 200; i++ {
		n := 1 + i%40
		seg, ok, err := r.Reserve(n)
		if err != nil || !ok {
			t.Fatalf("iter %d: Reserve(%d) ok=%v err=%v", i, n, ok, err)
		}
		for j := range seg {
			seg[j] = byte(i)
		}
		r.CommitReserve()
		got, ok, err := r.Peek()
		if err != nil || !ok {
			t.Fatalf("iter %d: Peek ok=%v err=%v", i, ok, err)
		}
		if len(got) != n {
			t.Fatalf("iter %d: peeked %d bytes, want %d", i, len(got), n)
		}
		for j := range got {
			if got[j] != byte(i) {
				t.Fatalf("iter %d: byte %d = %d", i, j, got[j])
			}
		}
		r.Consume()
	}
}

// TestReservePeekSPSCRace streams records through the zero-copy ends
// from two goroutines for the race detector: the producer writes each
// record in place and the consumer validates it in place.
func TestReservePeekSPSCRace(t *testing.T) {
	r, _ := NewRing(1024)
	const n = 5000
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			size := 8 + (i % 32 * 4)
			for {
				seg, ok, err := r.Reserve(size)
				if err != nil {
					errc <- err
					return
				}
				if !ok {
					continue
				}
				binary.LittleEndian.PutUint64(seg, uint64(i))
				for j := 8; j < len(seg); j++ {
					seg[j] = byte(i)
				}
				r.CommitReserve()
				break
			}
		}
		r.Close()
		errc <- nil
	}()
	for i := 0; ; i++ {
		seg, ok, err := r.Peek()
		if errors.Is(err, ErrClosed) {
			if i != n {
				t.Fatalf("consumed %d records, want %d", i, n)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			i--
			continue
		}
		if got := binary.LittleEndian.Uint64(seg); got != uint64(i) {
			t.Fatalf("record %d carries stamp %d", i, got)
		}
		for j := 8; j < len(seg); j++ {
			if seg[j] != byte(i) {
				t.Fatalf("record %d corrupt at byte %d", i, j)
			}
		}
		r.Consume()
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
