// Package fastpath implements the two restricted message-passing schemes
// the paper's conclusion proposes as future work (§5):
//
//	"One method to improve the performance of the MPF system is to
//	restrict the generality of message communication ... to support
//	synchronous message passing, copying of data from a sending buffer
//	to a linked message buffer and then to the receiving buffer is
//	unnecessary; direct data transfer is possible. Furthermore, if only
//	one-to-one communication is implemented, all locking associated
//	with message handling is removed."
//
// Ring is the lock-free one-to-one circuit: a single-producer,
// single-consumer byte ring with no locks at all — only two atomic
// cursors. Rendezvous is the synchronous scheme: sender and receiver
// meet and the payload moves with a single copy, skipping the
// intermediate message blocks entirely.
//
// The ablation benchmarks at the repository root quantify both against
// the general LNVC implementation.
package fastpath

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by operations on a closed Ring or Rendezvous.
var ErrClosed = errors.New("fastpath: closed")

// ErrTooBig is returned when a message cannot ever fit the ring.
var ErrTooBig = errors.New("fastpath: message larger than ring capacity")

// recHeader is the per-record length prefix inside the ring.
const recHeader = 4

// skipMarker marks unusable space before the ring's wrap point.
const skipMarker = ^uint32(0)

// Ring is a lock-free single-producer single-consumer circuit carrying
// variable-length messages. Exactly one goroutine may send and one may
// receive; that restriction is the point — it removes every lock from
// the message path. Records never wrap: if a record does not fit before
// the end of the buffer, a skip marker is written and the record starts
// at offset 0.
type Ring struct {
	buf  []byte
	mask uint64

	// head is read/written by the consumer, tail by the producer; each
	// reads the other's cursor with atomics. Padding between them keeps
	// the two cursors off one cache line — false sharing on a shared
	// bus is exactly the traffic the Balance design avoided too.
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
	_    [56]byte

	closed atomic.Bool

	// notify, when set, runs after every publish that makes new data
	// visible to the consumer, and on Close. See SetNotify.
	notify atomic.Pointer[func()]

	// Zero-copy cursor state. resTail/resActive belong to the producer
	// (Reserve/CommitReserve), peekNext/peekActive to the consumer
	// (Peek/Consume); neither crosses goroutines, so no atomics — the
	// padding keeps the producer's fields off the consumer's line.
	resActive  bool
	resTail    uint64
	_          [48]byte
	peekActive bool
	peekNext   uint64
}

// NewRing creates a ring with at least capacity bytes of buffer
// (rounded up to a power of two, minimum 64).
func NewRing(capacity int) (*Ring, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("fastpath: ring capacity %d", capacity)
	}
	if capacity < 64 {
		capacity = 64
	}
	capacity = 1 << bits.Len(uint(capacity-1)) // next power of two
	return &Ring{buf: make([]byte, capacity), mask: uint64(capacity - 1)}, nil
}

// Cap returns the ring's buffer size in bytes.
func (r *Ring) Cap() int { return len(r.buf) }

// Close marks the ring closed. A blocked Recv drains remaining messages
// and then returns ErrClosed; Send fails immediately.
func (r *Ring) Close() {
	r.closed.Store(true)
	r.notifyPublish()
}

// SetNotify registers fn to run after every cursor publish that makes
// new records visible (TrySend, TrySendBatch — once per batch) and on
// Close. It is the ring's readiness hook: an event loop draining
// several rings parks on one channel and has each ring's fn post to
// it, mirroring the per-circuit waiter lists the general
// implementation gives LNVCs — no polling, no global pulse. fn runs on
// the producer's goroutine and must not block; a non-blocking send to
// a buffered channel is the intended shape. Pass nil to clear.
// SetNotify must not race with concurrent sends (install the hook
// before handing the ring to its producer).
func (r *Ring) SetNotify(fn func()) {
	if fn == nil {
		r.notify.Store(nil)
		return
	}
	r.notify.Store(&fn)
}

func (r *Ring) notifyPublish() {
	if fn := r.notify.Load(); fn != nil {
		(*fn)()
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// place carves an n-byte record out of the buffer at the unpublished
// cursor tail, writing the length header (and a skip marker when the
// record must wrap) and returning the record's buffer offset and the
// advanced cursor. It does NOT publish: the caller stores r.tail, which
// is what lets a batch of records — or an in-place reservation — go out
// under one cursor publish.
func (r *Ring) place(tail, head uint64, n int) (off, newTail uint64, ok bool) {
	need := uint64(recHeader + n)
	capacity := uint64(len(r.buf))
	off = tail & r.mask
	roomToEnd := capacity - off

	if roomToEnd < need {
		// Must wrap: burn roomToEnd bytes with a skip marker, then the
		// record starts at offset 0. The skip itself needs header room.
		if capacity-(tail-head) < roomToEnd+need {
			return 0, tail, false
		}
		if roomToEnd >= recHeader {
			putLE32(r.buf[off:], skipMarker)
		}
		// roomToEnd < recHeader cannot happen: records are 4-byte
		// aligned by construction (header 4, payload padded below).
		tail += roomToEnd
		off = 0
	} else if capacity-(tail-head) < need {
		return 0, tail, false
	}
	putLE32(r.buf[off:], uint32(n))
	// Pad the record to 4-byte alignment so headers stay aligned and
	// the skip-marker invariant above holds.
	return off, tail + pad4(need), true
}

// push writes msg's record into the buffer at the unpublished cursor
// tail, returning the advanced cursor and whether the record fit.
func (r *Ring) push(tail, head uint64, msg []byte) (uint64, bool) {
	off, newTail, ok := r.place(tail, head, len(msg))
	if !ok {
		return tail, false
	}
	copy(r.buf[off+recHeader:], msg)
	return newTail, true
}

// TrySend attempts to enqueue msg without blocking. It reports false if
// the ring lacks space. Messages larger than Cap()-8 return ErrTooBig.
func (r *Ring) TrySend(msg []byte) (bool, error) {
	if r.resActive {
		// A send would write at the same unpublished cursor as the
		// reservation and corrupt the record headers; fail loudly like
		// every other zero-copy misuse path.
		panic("fastpath: TrySend with a reservation outstanding")
	}
	if r.closed.Load() {
		return false, ErrClosed
	}
	if uint64(recHeader+len(msg)) > uint64(len(r.buf))-recHeader {
		return false, ErrTooBig
	}
	tail, ok := r.push(r.tail.Load(), r.head.Load(), msg)
	if !ok {
		return false, nil
	}
	r.tail.Store(tail) // publish
	r.notifyPublish()
	return true, nil
}

// TrySendBatch enqueues a prefix of msgs — as many as currently fit —
// and publishes the producer cursor once for the whole prefix, so the
// consumer observes the batch atomically and the producer pays one
// cursor store however many records went out. It returns the number
// enqueued. A message that can never fit (larger than Cap()-8) stops
// the batch: the prefix before it is still published and ErrTooBig is
// returned with the count.
func (r *Ring) TrySendBatch(msgs [][]byte) (int, error) {
	if r.resActive {
		panic("fastpath: TrySendBatch with a reservation outstanding")
	}
	if r.closed.Load() {
		return 0, ErrClosed
	}
	head := r.head.Load()
	start := r.tail.Load()
	tail := start
	sent := 0
	var err error
	for _, msg := range msgs {
		if uint64(recHeader+len(msg)) > uint64(len(r.buf))-recHeader {
			err = ErrTooBig
			break
		}
		next, ok := r.push(tail, head, msg)
		if !ok {
			break
		}
		tail = next
		sent++
	}
	if tail != start {
		r.tail.Store(tail) // one publish for the whole batch
		r.notifyPublish()  // and one wakeup
	}
	return sent, err
}

// SendBatch blocks (spinning with backoff) until every message in msgs
// is enqueued, publishing the cursor once per burst rather than once
// per message. On ErrTooBig a prefix of the batch may already have been
// delivered, as with repeated Send calls.
func (r *Ring) SendBatch(msgs [][]byte) error {
	done := 0
	for spin := 0; done < len(msgs); spin++ {
		n, err := r.TrySendBatch(msgs[done:])
		if err != nil {
			return err
		}
		done += n
		if n > 0 {
			spin = 0
		} else if spin > 64 {
			runtime.Gosched()
		}
	}
	return nil
}

// TryRecv attempts to dequeue one message into buf without blocking,
// returning the byte count (truncated to len(buf)) and whether a message
// was consumed.
func (r *Ring) TryRecv(buf []byte) (int, bool, error) {
	if r.peekActive {
		// Consuming here would strand the peek's saved cursor behind the
		// ring's, and the later Consume would rewind head over records
		// already taken.
		panic("fastpath: TryRecv with a peek outstanding")
	}
	head := r.head.Load()
	tail := r.tail.Load()
	capacity := uint64(len(r.buf))
	for {
		if head == tail {
			if r.closed.Load() {
				// Re-check emptiness after observing closed, so a send
				// that completed before Close is not lost.
				if r.head.Load() == r.tail.Load() {
					return 0, false, ErrClosed
				}
				tail = r.tail.Load()
				continue
			}
			return 0, false, nil
		}
		off := head & r.mask
		hdr := le32(r.buf[off:])
		if hdr == skipMarker || capacity-off < recHeader {
			head += capacity - off
			r.head.Store(head)
			continue
		}
		n := copy(buf, r.buf[off+recHeader:off+recHeader+uint64(hdr)])
		r.head.Store(head + pad4(uint64(recHeader)+uint64(hdr)))
		return n, true, nil
	}
}

// TryRecvBatch dequeues up to len(bufs) messages — one per buffer, each
// truncated to its buffer — publishing the consumer cursor once for the
// whole batch. It returns the per-message byte counts; an empty result
// with a nil error means the ring was empty. Like TryRecv it drains
// remaining messages after Close and only then returns ErrClosed.
func (r *Ring) TryRecvBatch(bufs [][]byte) ([]int, error) {
	if r.peekActive {
		panic("fastpath: TryRecvBatch with a peek outstanding")
	}
	if len(bufs) == 0 {
		return nil, nil
	}
	capacity := uint64(len(r.buf))
	for {
		start := r.head.Load()
		head := start
		tail := r.tail.Load()
		var ns []int
		for len(ns) < len(bufs) {
			if head == tail {
				tail = r.tail.Load() // refresh: more may have arrived
				if head == tail {
					break
				}
			}
			off := head & r.mask
			hdr := le32(r.buf[off:])
			if hdr == skipMarker || capacity-off < recHeader {
				head += capacity - off
				continue
			}
			ns = append(ns, copy(bufs[len(ns)], r.buf[off+recHeader:off+recHeader+uint64(hdr)]))
			head += pad4(uint64(recHeader) + uint64(hdr))
		}
		if head != start {
			r.head.Store(head) // one publish for the whole batch
		}
		if len(ns) == 0 && r.closed.Load() {
			// Re-check emptiness after observing closed, so a send that
			// completed before Close is not lost; a non-empty closed
			// ring drains on the next pass of the loop.
			if r.head.Load() == r.tail.Load() {
				return nil, ErrClosed
			}
			continue
		}
		return ns, nil
	}
}

// Reserve carves an n-byte record out of the ring and returns it as a
// writable slice — the zero-copy counterpart of TrySend: the producer
// writes the payload in place and the structural copy never happens.
// It reports false when the ring currently lacks space, ErrTooBig when
// n can never fit, ErrClosed after Close. Nothing is visible to the
// consumer until CommitReserve publishes the cursor; AbortReserve
// discards the record instead. At most one reservation may be
// outstanding, and the producer must not interleave TrySend/SendBatch
// with an outstanding reservation (both write at the same unpublished
// cursor). Producer-side only, like all sends.
func (r *Ring) Reserve(n int) ([]byte, bool, error) {
	if r.resActive {
		panic("fastpath: Reserve with a reservation outstanding")
	}
	if r.closed.Load() {
		return nil, false, ErrClosed
	}
	if n < 0 || uint64(recHeader+n) > uint64(len(r.buf))-recHeader {
		return nil, false, ErrTooBig
	}
	off, newTail, ok := r.place(r.tail.Load(), r.head.Load(), n)
	if !ok {
		return nil, false, nil
	}
	r.resActive = true
	r.resTail = newTail
	return r.buf[off+recHeader : off+recHeader+uint64(n)], true, nil
}

// ReserveBatch carves up to len(ns) records out of the ring in one
// reservation — the zero-copy counterpart of TrySendBatch. It returns
// writable payload slices for the prefix of ns that currently fits
// (possibly none: a nil slice with a nil error means the ring lacks
// space right now); the producer writes the payloads in place and one
// CommitReserve publishes the whole batch with a single cursor store
// and a single wakeup, or one AbortReserve discards it all. A length
// that can never fit (greater than Cap()-8) stops the batch: the
// reserved prefix before it is still returned, alongside ErrTooBig.
// The reservation rules are Reserve's: at most one outstanding, no
// interleaved sends, producer-side only.
func (r *Ring) ReserveBatch(ns []int) ([][]byte, error) {
	if r.resActive {
		panic("fastpath: ReserveBatch with a reservation outstanding")
	}
	if r.closed.Load() {
		return nil, ErrClosed
	}
	head := r.head.Load()
	tail := r.tail.Load()
	var out [][]byte
	var err error
	for _, n := range ns {
		if n < 0 || uint64(recHeader+n) > uint64(len(r.buf))-recHeader {
			err = ErrTooBig
			break
		}
		off, newTail, ok := r.place(tail, head, n)
		if !ok {
			break
		}
		out = append(out, r.buf[off+recHeader:off+recHeader+uint64(n)])
		tail = newTail
	}
	if len(out) == 0 {
		return nil, err
	}
	r.resActive = true
	r.resTail = tail
	return out, err
}

// CommitReserve publishes the records of the last Reserve or
// ReserveBatch, making them visible to the consumer with a single
// cursor store.
func (r *Ring) CommitReserve() {
	if !r.resActive {
		panic("fastpath: CommitReserve without a reservation")
	}
	r.resActive = false
	r.tail.Store(r.resTail) // publish
	r.notifyPublish()
}

// AbortReserve discards the outstanding reservation (single or batch).
// The cursor never moved, so the records (and any skip marker written
// for them) are simply overwritten by the next send.
func (r *Ring) AbortReserve() {
	if !r.resActive {
		panic("fastpath: AbortReserve without a reservation")
	}
	r.resActive = false
}

// Peek returns the next record's payload in place, without consuming
// it — the zero-copy counterpart of TryRecv: the consumer reads the
// ring's memory directly and Consume retires the record afterwards.
// It reports false when the ring is empty; after Close it drains
// remaining records and then returns ErrClosed. The slice is valid
// until Consume; a second Peek before Consume returns the same record.
// Consumer-side only, like all receives.
func (r *Ring) Peek() ([]byte, bool, error) {
	head := r.head.Load()
	tail := r.tail.Load()
	capacity := uint64(len(r.buf))
	for {
		if head == tail {
			if r.closed.Load() {
				// Re-check emptiness after observing closed, so a send
				// that completed before Close is not lost.
				if r.head.Load() == r.tail.Load() {
					return nil, false, ErrClosed
				}
				tail = r.tail.Load()
				continue
			}
			return nil, false, nil
		}
		off := head & r.mask
		hdr := le32(r.buf[off:])
		if hdr == skipMarker || capacity-off < recHeader {
			head += capacity - off
			r.head.Store(head)
			continue
		}
		r.peekActive = true
		r.peekNext = head + pad4(uint64(recHeader)+uint64(hdr))
		return r.buf[off+recHeader : off+recHeader+uint64(hdr)], true, nil
	}
}

// Consume retires the record returned by the last Peek, publishing the
// consumer cursor past it. The peeked slice is invalid afterwards (the
// producer may overwrite it).
func (r *Ring) Consume() {
	if !r.peekActive {
		panic("fastpath: Consume without a Peek")
	}
	r.peekActive = false
	r.head.Store(r.peekNext)
}

// PeekBatch returns up to max records' payloads in place, without
// consuming any — the zero-copy counterpart of TryRecvBatch: the
// consumer reads the ring's memory directly and one ConsumeBatch
// retires the whole run with a single cursor publish. It returns nil
// when the ring is empty; after Close it drains remaining records and
// then returns ErrClosed. The slices are valid until ConsumeBatch; at
// most one peek (single or batch) may be outstanding. Consumer-side
// only, like all receives.
func (r *Ring) PeekBatch(max int) ([][]byte, error) {
	if r.peekActive {
		panic("fastpath: PeekBatch with a peek outstanding")
	}
	if max <= 0 {
		return nil, nil
	}
	capacity := uint64(len(r.buf))
	for {
		head := r.head.Load()
		tail := r.tail.Load()
		cur := head
		var out [][]byte
		for len(out) < max {
			if cur == tail {
				tail = r.tail.Load() // refresh: more may have arrived
				if cur == tail {
					break
				}
			}
			off := cur & r.mask
			hdr := le32(r.buf[off:])
			if hdr == skipMarker || capacity-off < recHeader {
				// A skip marker is only published together with the
				// record that follows it at offset 0, so jumping it
				// never runs past the tail.
				cur += capacity - off
				continue
			}
			out = append(out, r.buf[off+recHeader:off+recHeader+uint64(hdr)])
			cur += pad4(uint64(recHeader) + uint64(hdr))
		}
		if len(out) == 0 {
			if r.closed.Load() {
				// Re-check emptiness after observing closed, so a send
				// that completed before Close is not lost.
				if r.head.Load() == r.tail.Load() {
					return nil, ErrClosed
				}
				continue
			}
			return nil, nil
		}
		r.peekActive = true
		r.peekNext = cur
		return out, nil
	}
}

// ConsumeBatch retires every record returned by the last PeekBatch,
// publishing the consumer cursor past the run in one store. The peeked
// slices are invalid afterwards.
func (r *Ring) ConsumeBatch() {
	if !r.peekActive {
		panic("fastpath: ConsumeBatch without a PeekBatch")
	}
	r.peekActive = false
	r.head.Store(r.peekNext)
}

// Send blocks (spinning with backoff) until msg is enqueued.
func (r *Ring) Send(msg []byte) error {
	for spin := 0; ; spin++ {
		ok, err := r.TrySend(msg)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if spin > 64 {
			runtime.Gosched()
		}
	}
}

// Recv blocks (spinning with backoff) until a message is dequeued.
func (r *Ring) Recv(buf []byte) (int, error) {
	for spin := 0; ; spin++ {
		n, ok, err := r.TryRecv(buf)
		if err != nil {
			return 0, err
		}
		if ok {
			return n, nil
		}
		if spin > 64 {
			runtime.Gosched()
		}
	}
}

func pad4(n uint64) uint64 { return (n + 3) &^ 3 }

// Rendezvous is the synchronous transfer scheme: Send blocks until a
// receiver arrives and the payload is copied exactly once, from the
// sender's buffer straight into the receiver's. Multiple senders and
// receivers may use one Rendezvous; pairs meet one at a time.
type Rendezvous struct {
	mu       sync.Mutex
	sendQ    *sync.Cond // senders waiting for a receiver
	recvQ    *sync.Cond // receivers waiting for a sender
	doneCond *sync.Cond

	offer  []byte // current sender's buffer, nil if none
	taken  bool   // receiver has copied the offer
	result int    // bytes copied
	closed bool
}

// NewRendezvous creates a synchronous circuit.
func NewRendezvous() *Rendezvous {
	v := &Rendezvous{}
	v.sendQ = sync.NewCond(&v.mu)
	v.recvQ = sync.NewCond(&v.mu)
	v.doneCond = sync.NewCond(&v.mu)
	return v
}

// Close aborts all blocked and future operations with ErrClosed.
func (v *Rendezvous) Close() {
	v.mu.Lock()
	v.closed = true
	v.sendQ.Broadcast()
	v.recvQ.Broadcast()
	v.doneCond.Broadcast()
	v.mu.Unlock()
}

// Send blocks until a receiver has copied buf directly out of the
// caller's memory — one copy total, the optimisation the paper
// describes.
func (v *Rendezvous) Send(buf []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	// Wait for the offer slot.
	for v.offer != nil && !v.closed {
		v.sendQ.Wait()
	}
	if v.closed {
		return ErrClosed
	}
	if buf == nil {
		buf = []byte{} // non-nil marks the slot occupied
	}
	v.offer = buf
	v.taken = false
	v.recvQ.Signal()
	for !v.taken && !v.closed {
		v.doneCond.Wait()
	}
	if !v.taken && v.closed {
		v.offer = nil
		return ErrClosed
	}
	v.offer = nil
	v.sendQ.Signal()
	return nil
}

// Recv blocks until a sender offers a payload, copies it into buf
// (truncating to len(buf)), and returns the byte count.
func (v *Rendezvous) Recv(buf []byte) (int, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for (v.offer == nil || v.taken) && !v.closed {
		v.recvQ.Wait()
	}
	if v.offer == nil || v.taken {
		return 0, ErrClosed
	}
	n := copy(buf, v.offer)
	v.taken = true
	v.result = n
	v.doneCond.Broadcast()
	return n, nil
}
