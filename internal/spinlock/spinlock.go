// Package spinlock provides busy-waiting mutual exclusion primitives built
// on sync/atomic.
//
// The Sequent Balance 21000 that hosted the original MPF implementation
// exposed "atomic lock memory": a region of bus-snooped bytes supporting an
// atomic test-and-set, on which all of MPF's mutual exclusion was built.
// This package is the portable analogue. Every LNVC descriptor in
// internal/core is guarded by one of these locks, so their contention
// behaviour under many receivers is directly visible in the Figure 4 and
// Figure 6 benchmarks.
//
// Three lock flavours are provided:
//
//   - TAS: plain test-and-set with exponential backoff. Lowest uncontended
//     latency, no fairness guarantee.
//   - Ticket: FIFO-fair ticket lock, the shape used by Sequent's library
//     locks.
//   - RW: a reader/writer spin lock for mostly-read descriptor tables
//     (the LNVC name table).
//
// All locks satisfy sync.Locker so they can back a sync.Cond.
package spinlock

import (
	"runtime"
	"sync/atomic"
)

// maxBackoffSpins bounds the exponential backoff between test-and-set
// attempts. Beyond this the goroutine yields to the scheduler so that a
// lock holder descheduled by the runtime can make progress (goroutines,
// unlike the paper's Unix processes, share OS threads).
const maxBackoffSpins = 1 << 7

// TAS is a test-and-set spin lock with exponential backoff.
// The zero value is an unlocked lock.
type TAS struct {
	state atomic.Uint32
	// acquisitions and contended count lock traffic; they are maintained
	// with atomics and intended for tests and the benchmark harness, not
	// for synchronization.
	acquisitions atomic.Uint64
	contended    atomic.Uint64
}

// Lock acquires l, spinning until it is available.
func (l *TAS) Lock() {
	if l.state.CompareAndSwap(0, 1) {
		l.acquisitions.Add(1)
		return
	}
	l.contended.Add(1)
	backoff := 1
	for {
		// Test-and-test-and-set: spin on a plain load to avoid
		// hammering the cache line with RMW traffic, the classic
		// shared-bus courtesy the Balance required too.
		for l.state.Load() != 0 {
			for i := 0; i < backoff; i++ {
				spinHint()
			}
			if backoff < maxBackoffSpins {
				backoff <<= 1
			} else {
				runtime.Gosched()
			}
		}
		if l.state.CompareAndSwap(0, 1) {
			l.acquisitions.Add(1)
			return
		}
	}
}

// TryLock attempts to acquire l without blocking and reports success.
func (l *TAS) TryLock() bool {
	ok := l.state.CompareAndSwap(0, 1)
	if ok {
		l.acquisitions.Add(1)
	}
	return ok
}

// Unlock releases l. Unlocking an unlocked TAS panics: that is always a
// caller bug and silently continuing would corrupt mutual exclusion.
func (l *TAS) Unlock() {
	if l.state.Swap(0) != 1 {
		panic("spinlock: Unlock of unlocked TAS lock")
	}
}

// Stats reports the number of acquisitions and the number of Lock calls
// that found the lock held.
func (l *TAS) Stats() (acquisitions, contended uint64) {
	return l.acquisitions.Load(), l.contended.Load()
}

// Ticket is a FIFO-fair ticket spin lock. The zero value is unlocked.
type Ticket struct {
	next    atomic.Uint64
	serving atomic.Uint64
}

// Lock acquires l, spinning in FIFO order.
func (l *Ticket) Lock() {
	ticket := l.next.Add(1) - 1
	for {
		cur := l.serving.Load()
		if cur == ticket {
			return
		}
		// Back off proportionally to queue depth, as proposed for
		// ticket locks on bus-based machines.
		wait := int(ticket - cur)
		if wait < 0 || wait > maxBackoffSpins {
			wait = maxBackoffSpins
		}
		for i := 0; i < wait; i++ {
			spinHint()
		}
		if wait == maxBackoffSpins {
			runtime.Gosched()
		}
	}
}

// Unlock releases l to the next waiter in ticket order.
func (l *Ticket) Unlock() {
	l.serving.Add(1)
}

// RW is a reader/writer spin lock. Writers are mutually exclusive with
// everyone; readers only with writers. Writer preference is not
// implemented: the MPF name table is read-mostly and short-held, so reader
// throughput matters more than writer latency. The zero value is unlocked.
type RW struct {
	// readers counts active readers; -1 marks an active writer.
	readers atomic.Int32
}

// RLock acquires a read lock.
func (l *RW) RLock() {
	backoff := 1
	for {
		cur := l.readers.Load()
		if cur >= 0 && l.readers.CompareAndSwap(cur, cur+1) {
			return
		}
		for i := 0; i < backoff; i++ {
			spinHint()
		}
		if backoff < maxBackoffSpins {
			backoff <<= 1
		} else {
			runtime.Gosched()
		}
	}
}

// TryRLock attempts to acquire a read lock without spinning and reports
// success. A false return means a writer holds the lock or won a race
// this instant; callers that keep contention statistics (the sharded
// LNVC registry) probe with TryRLock first and fall back to RLock.
func (l *RW) TryRLock() bool {
	cur := l.readers.Load()
	return cur >= 0 && l.readers.CompareAndSwap(cur, cur+1)
}

// RUnlock releases a read lock.
func (l *RW) RUnlock() {
	if l.readers.Add(-1) < 0 {
		panic("spinlock: RUnlock without RLock")
	}
}

// Lock acquires the write lock.
func (l *RW) Lock() {
	backoff := 1
	for {
		if l.readers.CompareAndSwap(0, -1) {
			return
		}
		for i := 0; i < backoff; i++ {
			spinHint()
		}
		if backoff < maxBackoffSpins {
			backoff <<= 1
		} else {
			runtime.Gosched()
		}
	}
}

// TryLock attempts to acquire the write lock without spinning and
// reports success.
func (l *RW) TryLock() bool {
	return l.readers.CompareAndSwap(0, -1)
}

// Unlock releases the write lock.
func (l *RW) Unlock() {
	if !l.readers.CompareAndSwap(-1, 0) {
		panic("spinlock: Unlock of RW lock not write-held")
	}
}

// spinHint burns a few cycles politely. Go has no portable PAUSE
// intrinsic in the stdlib; a bounded empty loop with a compiler barrier
// through atomics is the conventional substitute.
//
//go:noinline
func spinHint() {
	// The atomic load prevents the loop from being optimised away and
	// roughly matches the cost of a cache probe.
	_ = dummy.Load()
}

var dummy atomic.Uint32
