package spinlock

import (
	"sync"
	"testing"
	"time"
)

// exercise hammers a sync.Locker with nWorkers goroutines each performing
// nIters increments of a shared counter and checks the final count.
func exercise(t *testing.T, l sync.Locker, nWorkers, nIters int) {
	t.Helper()
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < nIters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := nWorkers * nIters; counter != want {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, want)
	}
}

func TestTASMutualExclusion(t *testing.T) {
	exercise(t, &TAS{}, 8, 2000)
}

func TestTicketMutualExclusion(t *testing.T) {
	exercise(t, &Ticket{}, 8, 2000)
}

func TestRWWriteMutualExclusion(t *testing.T) {
	exercise(t, &RW{}, 8, 2000)
}

func TestTASTryLock(t *testing.T) {
	var l TAS
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestTASUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked TAS did not panic")
		}
	}()
	var l TAS
	l.Unlock()
}

func TestRWUnlockNotHeldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RW.Unlock without Lock did not panic")
		}
	}()
	var l RW
	l.Unlock()
}

func TestRWRUnlockNotHeldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RW.RUnlock without RLock did not panic")
		}
	}()
	var l RW
	l.RUnlock()
}

func TestTASStats(t *testing.T) {
	var l TAS
	l.Lock()
	l.Unlock()
	l.Lock()
	l.Unlock()
	acq, _ := l.Stats()
	if acq != 2 {
		t.Fatalf("acquisitions = %d, want 2", acq)
	}
}

func TestRWConcurrentReaders(t *testing.T) {
	var l RW
	l.RLock()
	done := make(chan struct{})
	go func() {
		l.RLock() // must not block while only readers hold the lock
		l.RUnlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second reader blocked behind first reader")
	}
	l.RUnlock()
}

func TestRWWriterExcludesReaders(t *testing.T) {
	var l RW
	l.Lock()
	acquired := make(chan struct{})
	go func() {
		l.RLock()
		close(acquired)
		l.RUnlock()
	}()
	select {
	case <-acquired:
		t.Fatal("reader acquired lock while writer held it")
	case <-time.After(50 * time.Millisecond):
		// Expected: reader is spinning.
	}
	l.Unlock()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("reader never acquired lock after writer released")
	}
}

func TestRWReadersSeeWriterUpdates(t *testing.T) {
	var l RW
	var shared int
	var wg sync.WaitGroup
	const writers, readers, iters = 4, 4, 1000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				shared++
				l.Unlock()
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for i := 0; i < iters; i++ {
				l.RLock()
				v := shared
				l.RUnlock()
				if v < last {
					t.Errorf("shared went backwards: %d after %d", v, last)
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
	if shared != writers*iters {
		t.Fatalf("shared = %d, want %d", shared, writers*iters)
	}
}

func TestTicketFairnessOrder(t *testing.T) {
	// With a ticket lock, a waiter that arrived first must be served
	// first. Serialize arrival, then check service order.
	var l Ticket
	l.Lock()

	order := make(chan int, 2)
	first := make(chan struct{})
	go func() {
		close(first)
		l.Lock()
		order <- 1
		l.Unlock()
	}()
	<-first
	time.Sleep(20 * time.Millisecond) // let goroutine 1 take its ticket
	go func() {
		l.Lock()
		order <- 2
		l.Unlock()
	}()
	time.Sleep(20 * time.Millisecond)
	l.Unlock()

	if got := <-order; got != 1 {
		t.Fatalf("first served = %d, want 1", got)
	}
	if got := <-order; got != 2 {
		t.Fatalf("second served = %d, want 2", got)
	}
}

func TestCondOverTAS(t *testing.T) {
	// TAS must be usable as the Locker under a sync.Cond; core relies
	// on this for blocking message_receive.
	var l TAS
	cond := sync.NewCond(&l)
	ready := false
	done := make(chan struct{})
	go func() {
		l.Lock()
		for !ready {
			cond.Wait()
		}
		l.Unlock()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	l.Lock()
	ready = true
	cond.Broadcast()
	l.Unlock()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cond.Wait never woke")
	}
}

func BenchmarkTASUncontended(b *testing.B) {
	var l TAS
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkTASContended(b *testing.B) {
	var l TAS
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock()
		}
	})
}

func BenchmarkTicketContended(b *testing.B) {
	var l Ticket
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock()
		}
	})
}
