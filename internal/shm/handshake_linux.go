//go:build linux && (amd64 || arm64)

package shm

// The fd-passing half of the attach handshake: the parent sends the
// handshake frame over a unix-domain socket with the segment's memfd
// riding along as SCM_RIGHTS ancillary data; the kernel duplicates the
// descriptor into the child, which maps the very same pages. This is
// the one moment the two processes share anything besides the segment
// itself — after RecvSegment returns, the socket can close and all
// further communication happens through segment words and futexes.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"time"
)

// SendSegment writes the handshake frame over conn with the segment's
// backing fd attached as SCM_RIGHTS rights. The segment must be a
// shared (memfd) segment; h.SegSize is filled in from the segment.
func SendSegment(conn *net.UnixConn, seg *Segment, h Handshake) error {
	f := seg.File()
	if f == nil {
		return fmt.Errorf("shm: cannot pass a %s segment between processes: %w", seg.Kind(), ErrNoSharedBackend)
	}
	h.SegSize = seg.Size()
	rights := syscall.UnixRights(int(f.Fd()))
	n, oobn, err := conn.WriteMsgUnix(h.Encode(), rights, nil)
	if err != nil {
		return fmt.Errorf("shm: sending segment handshake: %w", err)
	}
	if n != HandshakeBytes || oobn != len(rights) {
		return fmt.Errorf("shm: short handshake send (%d/%d bytes, %d/%d oob)", n, HandshakeBytes, oobn, len(rights))
	}
	return nil
}

// recvSegmentDefaultTimeout bounds RecvSegment: a child whose parent
// died before sending the frame must fail, not hang on the socket for
// the rest of its life.
const recvSegmentDefaultTimeout = 30 * time.Second

// RecvSegment receives a handshake frame and its accompanying segment
// fd, maps the segment, and cross-checks the mapped size against the
// frame. The returned segment owns the received descriptor. The wait
// is bounded by a default deadline; use RecvSegmentTimeout to choose
// one.
func RecvSegment(conn *net.UnixConn) (*Segment, Handshake, error) {
	return RecvSegmentTimeout(conn, recvSegmentDefaultTimeout)
}

// RecvSegmentTimeout is RecvSegment with an explicit bound on how long
// to wait for the frame. Expiry (or a peer that closed the socket
// without sending — a parent that crashed between fork and send)
// returns ErrHandshakeTimeout. timeout <= 0 waits forever.
func RecvSegmentTimeout(conn *net.UnixConn, timeout time.Duration) (*Segment, Handshake, error) {
	if timeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, Handshake{}, fmt.Errorf("shm: arming handshake deadline: %w", err)
		}
		defer conn.SetReadDeadline(time.Time{})
	}
	buf := make([]byte, HandshakeBytes)
	oob := make([]byte, syscall.CmsgSpace(4))
	n, oobn, _, _, err := conn.ReadMsgUnix(buf, oob)
	if err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			return nil, Handshake{}, fmt.Errorf("shm: no handshake frame within %v: %w", timeout, ErrHandshakeTimeout)
		}
		if errors.Is(err, io.EOF) {
			// The parent's end closed before sending: it died between
			// spawning this child and serving the segment.
			return nil, Handshake{}, fmt.Errorf("shm: handshake socket closed before frame: %w", ErrHandshakeTimeout)
		}
		return nil, Handshake{}, fmt.Errorf("shm: receiving segment handshake: %w", err)
	}
	if n == 0 && oobn == 0 {
		return nil, Handshake{}, fmt.Errorf("shm: handshake socket closed before frame: %w", ErrHandshakeTimeout)
	}
	h, err := DecodeHandshake(buf[:n])
	if err != nil {
		return nil, Handshake{}, err
	}
	fd, err := rightsFd(oob[:oobn])
	if err != nil {
		return nil, Handshake{}, err
	}
	syscall.CloseOnExec(fd)
	f := os.NewFile(uintptr(fd), "memfd:attached")
	seg, err := AttachSharedSegment(f)
	if err != nil {
		f.Close()
		return nil, Handshake{}, err
	}
	if seg.Size() != h.SegSize {
		seg.Close()
		return nil, Handshake{}, fmt.Errorf("shm: handshake claims %d-byte segment, fd maps %d", h.SegSize, seg.Size())
	}
	return seg, h, nil
}

// rightsFd extracts the single passed descriptor from SCM_RIGHTS
// ancillary data.
func rightsFd(oob []byte) (int, error) {
	cmsgs, err := syscall.ParseSocketControlMessage(oob)
	if err != nil {
		return -1, fmt.Errorf("shm: parsing handshake rights: %w", err)
	}
	for _, cm := range cmsgs {
		fds, err := syscall.ParseUnixRights(&cm)
		if err != nil {
			continue
		}
		if len(fds) != 1 {
			for _, fd := range fds {
				syscall.Close(fd)
			}
			return -1, fmt.Errorf("shm: handshake carried %d descriptors, want 1", len(fds))
		}
		return fds[0], nil
	}
	return -1, fmt.Errorf("shm: handshake carried no segment descriptor")
}
