package shm

import (
	"errors"
	"testing"
	"time"
)

func ringPair(t *testing.T, capacity int) (*XRing, *XRing) {
	t.Helper()
	seg, err := NewSegment(4096 + RingBytes(capacity))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	prod, err := InitRing(seg, 1024, capacity)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := AttachRing(seg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return prod, cons
}

func TestRingPushPopWraparound(t *testing.T) {
	prod, cons := ringPair(t, 4)
	// 3× capacity forces wraparound of the 2-bit index space.
	for round := 0; round < 12; round++ {
		rec := Record{Off: int64(round * 64), Len: int32(round), Tag: uint16(round), Word: uint16(round * 3)}
		ok, err := prod.TryPush(rec)
		if err != nil || !ok {
			t.Fatalf("round %d: TryPush = %v, %v", round, ok, err)
		}
		got, ok, err := cons.TryPop()
		if err != nil || !ok {
			t.Fatalf("round %d: TryPop = %v, %v", round, ok, err)
		}
		if got != rec {
			t.Fatalf("round %d: popped %+v, pushed %+v", round, got, rec)
		}
	}
	if _, ok, _ := cons.TryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingFullAndBatch(t *testing.T) {
	prod, cons := ringPair(t, 4)
	for i := 0; i < 4; i++ {
		if ok, _ := prod.TryPush(Record{Off: int64(i)}); !ok {
			t.Fatalf("push %d into empty ring failed", i)
		}
	}
	if ok, _ := prod.TryPush(Record{}); ok {
		t.Fatal("push into full ring succeeded")
	}
	if prod.Len() != 4 {
		t.Fatalf("Len = %d, want 4", prod.Len())
	}
	for i := 0; i < 4; i++ {
		rec, ok, _ := cons.TryPop()
		if !ok || rec.Off != int64(i) {
			t.Fatalf("pop %d: %+v, %v", i, rec, ok)
		}
	}

	batch := []Record{{Off: 10}, {Off: 20}, {Off: 30}}
	if err := prod.PushBatch(batch, time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	for _, want := range batch {
		rec, err := cons.Pop(time.Now().Add(time.Second))
		if err != nil || rec.Off != want.Off {
			t.Fatalf("batch pop: %+v, %v", rec, err)
		}
	}
	if err := prod.PushBatch(make([]Record, 5), time.Time{}); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestRingBlockingHandoff(t *testing.T) {
	prod, cons := ringPair(t, 8)
	const n = 5000
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := prod.Push(Record{Off: int64(i), Word: uint16(i)}, time.Now().Add(10*time.Second)); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		rec, err := cons.Pop(time.Now().Add(10 * time.Second))
		if err != nil {
			t.Fatalf("pop %d: %v", i, err)
		}
		if rec.Off != int64(i) {
			t.Fatalf("pop %d: got Off %d (SPSC order violated)", i, rec.Off)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("producer: %v", err)
	}
	data, space := cons.WaitStats()
	t.Logf("consumer stats: data=%+v space=%+v", data, space)
}

func TestRingTimeoutAndClose(t *testing.T) {
	prod, cons := ringPair(t, 2)
	if _, err := cons.Pop(time.Now().Add(20 * time.Millisecond)); !errors.Is(err, ErrRingTimeout) {
		t.Fatalf("pop on empty ring: %v, want timeout", err)
	}
	prod.TryPush(Record{Off: 1})
	prod.TryPush(Record{Off: 2})
	if err := prod.Push(Record{Off: 3}, time.Now().Add(20*time.Millisecond)); !errors.Is(err, ErrRingTimeout) {
		t.Fatalf("push into full ring: %v, want timeout", err)
	}

	prod.Close()
	if err := prod.Push(Record{}, time.Time{}); !errors.Is(err, ErrRingClosed) {
		t.Fatalf("push after close: %v", err)
	}
	// Queued records drain before the close is reported.
	for want := int64(1); want <= 2; want++ {
		rec, err := cons.Pop(time.Time{})
		if err != nil || rec.Off != want {
			t.Fatalf("drain pop: %+v, %v", rec, err)
		}
	}
	if _, err := cons.Pop(time.Time{}); !errors.Is(err, ErrRingClosed) {
		t.Fatalf("pop after drain: %v, want closed", err)
	}
}

func TestRingAttachValidation(t *testing.T) {
	seg, _ := NewSegment(RingBytes(8) + 128)
	defer seg.Close()
	if _, err := InitRing(seg, 0, 3); err == nil {
		t.Fatal("non-power-of-two capacity accepted")
	}
	if _, err := InitRing(seg, 33, 8); err == nil {
		t.Fatal("misaligned base accepted")
	}
	if _, err := InitRing(seg, 64, 1<<20); err == nil {
		t.Fatal("oversized ring accepted")
	}
	if _, err := AttachRing(seg, 64); err == nil {
		t.Fatal("attach to unformatted memory succeeded")
	}
	if _, err := InitRing(seg, 0, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := AttachRing(seg, 0); err != nil {
		t.Fatal(err)
	}
}

func TestNotifyDeadline(t *testing.T) {
	seg, _ := NewSegment(256)
	defer seg.Close()
	n := NotifyAt(seg, 0)
	start := time.Now()
	v, ok := n.Wait(n.Load(), time.Now().Add(30*time.Millisecond))
	if ok {
		t.Fatalf("wait with no poster reported progress (v=%d)", v)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("deadline wait returned after %v", elapsed)
	}
}

func TestRingAbortableWaits(t *testing.T) {
	prod, cons := ringPair(t, 2)

	// Fast path: data ready, abort never consulted.
	prod.TryPush(Record{Off: 7})
	rec, err := cons.PopAbort(time.Time{}, func() error {
		t.Error("abort probed with data ready")
		return nil
	})
	if err != nil || rec.Off != 7 {
		t.Fatalf("PopAbort with data: %+v, %v", rec, err)
	}

	// Slow path: empty ring, dead peer — the probe ends the wait well
	// before any deadline would.
	dead := errors.New("peer dead")
	start := time.Now()
	if _, err := cons.PopAbort(time.Now().Add(10*time.Second), func() error { return dead }); !errors.Is(err, dead) {
		t.Fatalf("PopAbort with dead peer: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("abort took %v", time.Since(start))
	}

	// Producer side: full ring, dead consumer.
	prod.TryPush(Record{Off: 1})
	prod.TryPush(Record{Off: 2})
	if err := prod.PushAbort(Record{Off: 3}, time.Now().Add(10*time.Second), func() error { return dead }); !errors.Is(err, dead) {
		t.Fatalf("PushAbort with dead peer: %v", err)
	}

	// A live-but-silent peer still hits the real deadline.
	cons.TryPop()
	cons.TryPop()
	if _, err := cons.PopAbort(time.Now().Add(30*time.Millisecond), func() error { return nil }); !errors.Is(err, ErrRingTimeout) {
		t.Fatalf("PopAbort deadline: %v", err)
	}
}
