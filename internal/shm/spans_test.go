package shm

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func spanArena(t *testing.T, blockSize, nBlocks int) *Arena {
	t.Helper()
	a, err := New(Config{BlockSize: blockSize, NumBlocks: nBlocks, Spans: true})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSpanAllocPayloadContiguous(t *testing.T) {
	a := spanArena(t, 16, 64)
	// 100 payload bytes fit one span of ceil(104/16) = 7 blocks: the span
	// carries a single 4-byte link word however many blocks it covers.
	head, tail, err := a.AllocPayload(100, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if head != tail {
		t.Fatalf("contiguous alloc split: head %d, tail %d", head, tail)
	}
	if got := a.ChainLen(head); got != 1 {
		t.Fatalf("chain has %d segments, want 1", got)
	}
	if got := a.ChainBlocks(head); got != 7 {
		t.Fatalf("span covers %d blocks, want 7", got)
	}
	if got := len(a.SegPayload(head)); got != 7*16-4 {
		t.Fatalf("segment payload %d bytes, want %d", got, 7*16-4)
	}
	a.FreeChain(head)
	if free := a.FreeBlocks(); free != 64 {
		t.Fatalf("%d blocks free after FreeChain, want 64", free)
	}
	if err := a.CheckFreeList(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanFragmentationFallsBackToChains(t *testing.T) {
	a := spanArena(t, 16, 16)
	// Fragment the region: allocate all 16 blocks singly, then free every
	// other one. The longest free run is now a single block.
	offs := make([]int32, 16)
	for i := range offs {
		off, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		offs[i] = off
	}
	for i := 0; i < 16; i += 2 {
		a.Free(offs[i])
	}
	// 60 payload bytes need ceil(60/12) = 5 single-block spans.
	head, tail, err := a.AllocPayload(60, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.ChainLen(head); got != 5 {
		t.Fatalf("fragmented alloc built %d segments, want 5", got)
	}
	if head == tail {
		t.Fatal("fragmented alloc claims to be contiguous")
	}
	// Capacity across segments covers the payload.
	capacity := 0
	for off := head; off != NilOffset; off = a.Next(off) {
		capacity += len(a.SegPayload(off))
	}
	if capacity < 60 {
		t.Fatalf("chain capacity %d < 60", capacity)
	}
	a.FreeChain(head)
	for i := 1; i < 16; i += 2 {
		a.Free(offs[i])
	}
	if free := a.FreeBlocks(); free != 16 {
		t.Fatalf("%d blocks free, want 16", free)
	}
	if err := a.CheckFreeList(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanWriteReadChainRoundtrip(t *testing.T) {
	for _, spans := range []bool{false, true} {
		a, err := New(Config{BlockSize: 16, NumBlocks: 64, Spans: spans})
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 300)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		head, _, err := a.AllocPayload(len(payload), false, nil)
		if err != nil {
			t.Fatalf("spans=%v: %v", spans, err)
		}
		if n := a.WriteChain(head, payload); n != len(payload) {
			t.Fatalf("spans=%v: wrote %d bytes, want %d", spans, n, len(payload))
		}
		got := make([]byte, len(payload))
		if n := a.ReadChain(head, len(payload), got); n != len(payload) {
			t.Fatalf("spans=%v: read %d bytes, want %d", spans, n, len(payload))
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("spans=%v: payload corrupted across chain", spans)
		}
		a.FreeChain(head)
		if err := a.CheckFreeList(); err != nil {
			t.Fatalf("spans=%v: %v", spans, err)
		}
	}
}

func TestSpanAllocPayloadsBatch(t *testing.T) {
	a := spanArena(t, 16, 64)
	heads, tails, err := a.AllocPayloads([]int{10, 200, 0}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(heads) != 3 || len(tails) != 3 {
		t.Fatalf("got %d heads, %d tails, want 3 each", len(heads), len(tails))
	}
	for i, h := range heads {
		end := h
		for next := a.Next(end); next != NilOffset; next = a.Next(end) {
			end = next
		}
		if tails[i] != end {
			t.Errorf("chain %d tail %d does not match end %d", i, tails[i], end)
		}
	}
	for _, h := range heads {
		a.FreeChain(h)
	}
	if free := a.FreeBlocks(); free != 64 {
		t.Fatalf("%d blocks free after batch free, want 64", free)
	}
}

func TestSpanExhaustionAndWait(t *testing.T) {
	a := spanArena(t, 16, 8)
	// Demand accounting is the fully-fragmented worst case (BlocksFor), so
	// 96 bytes = 8 classic blocks is the largest payload this region
	// admits; as a span it takes only ceil(100/16) = 7 blocks.
	head, _, err := a.AllocPayload(96, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.ChainBlocks(head); got != 7 {
		t.Fatalf("span covers %d blocks, want 7", got)
	}
	single, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Free(single)
	if _, _, err := a.AllocPayload(1, false, nil); !errors.Is(err, ErrOutOfBlocks) {
		t.Fatalf("err = %v, want ErrOutOfBlocks", err)
	}
	// Demand beyond the region fails even with wait (could never succeed).
	if _, _, err := a.AllocPayload(97, true, nil); !errors.Is(err, ErrOutOfBlocks) {
		t.Fatalf("oversized wait: err = %v, want ErrOutOfBlocks", err)
	}
	done := make(chan int32, 1)
	go func() {
		h, _, err := a.AllocPayload(20, true, nil)
		if err != nil {
			done <- NilOffset
			return
		}
		done <- h
	}()
	select {
	case <-done:
		t.Fatal("AllocPayload returned before the span was freed")
	case <-time.After(30 * time.Millisecond):
	}
	a.FreeChain(head)
	select {
	case h := <-done:
		if h == NilOffset {
			t.Fatal("waiting AllocPayload failed")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AllocPayload did not wake after FreeChain")
	}
}

func TestSpanStatsAndHighWater(t *testing.T) {
	a := spanArena(t, 16, 32)
	head, _, err := a.AllocPayload(100, false, nil) // 7 blocks
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Allocs != 7 {
		t.Errorf("Allocs = %d, want 7", st.Allocs)
	}
	if st.HighWater != 7 {
		t.Errorf("HighWater = %d, want 7", st.HighWater)
	}
	a.FreeChain(head)
	if st := a.Stats(); st.Frees != 7 {
		t.Errorf("Frees = %d, want 7", st.Frees)
	}
}

func TestSpanReuseAfterChurn(t *testing.T) {
	a := spanArena(t, 16, 32)
	for round := 0; round < 50; round++ {
		heads, _, err := a.AllocPayloads([]int{64, 17, 1, 200}, false, nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Free in a different order than allocated to churn the bitmap.
		for i := len(heads) - 1; i >= 0; i-- {
			a.FreeChain(heads[i])
		}
		if err := a.CheckFreeList(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if free := a.FreeBlocks(); free != 32 {
		t.Fatalf("%d blocks free after churn, want 32", free)
	}
}
