package shm

// The segment backends. The paper's MPF "maps a region of physical
// memory into the virtual address space of every Unix process in the
// program"; everything above this file (the arena, the descriptor
// tables, the futex rings) addresses that region by *offset* precisely
// so the region can live at a different virtual address in every
// process. A Segment is the region itself, behind one of two backends:
//
//   - heap: an ordinary Go allocation. Portable, the test default, and
//     the only backend available off Linux. Visible to one process.
//   - memfd (segment_linux.go): an anonymous memfd_create file mapped
//     MAP_SHARED. The file descriptor travels to child processes over a
//     unix-domain socket (SendSegment/RecvSegment in handshake*.go) and
//     every process maps the same physical pages — the paper's facility
//     for real.
//
// A Segment hands out three views of its memory: raw byte windows (At),
// offset translation for slices that alias it (OffsetOf — how a
// zero-copy Loan or View payload becomes a ring descriptor another
// process can dereference), and aligned atomic words (Atomic32/
// Atomic64 — the spots the cross-process synchronization protocol
// words live in, including the futex words NotifyWord sleeps on).

import (
	"errors"
	"fmt"
	"sync/atomic"
	"unsafe"
)

// ErrNoSharedBackend is returned when a cross-process facility (memfd
// segments, fd passing) is requested on a platform that lacks it. The
// heap backend keeps every platform compiling and testing; only Linux
// gets real shared segments.
var ErrNoSharedBackend = errors.New("shm: shared memory segments unsupported on this platform")

// ErrSegmentClosed is returned by operations on a closed (unmapped)
// segment.
var ErrSegmentClosed = errors.New("shm: segment closed")

// SegmentKind names a segment's backend.
type SegmentKind uint8

const (
	// HeapSegment is process-private Go memory: the portable fallback
	// and test default.
	HeapSegment SegmentKind = iota
	// MemfdSegment is a Linux memfd_create file mapped MAP_SHARED,
	// attachable by other processes via its file descriptor.
	MemfdSegment
)

func (k SegmentKind) String() string {
	switch k {
	case HeapSegment:
		return "heap"
	case MemfdSegment:
		return "memfd"
	default:
		return fmt.Sprintf("SegmentKind(%d)", uint8(k))
	}
}

// Segment is one shared-memory region. All cross-process state — the
// descriptor table, the futex rings, the block arena — lives inside it
// and is addressed relative to its base.
type Segment struct {
	mem    []byte
	kind   SegmentKind
	closed bool

	// heapWords anchors the heap backend's allocation; sizing it in
	// uint64 units guarantees 8-byte base alignment for the atomic
	// words carved out of the segment.
	heapWords []uint64

	// osFile is the backing memfd on Linux (nil for heap segments);
	// segment_linux.go owns its lifecycle.
	osFile backingFile
}

// backingFile is the platform half of a segment (the memfd and its
// mapping); the stub backend has none.
type backingFile interface {
	// Fd returns the descriptor to pass to other processes.
	Fd() uintptr
	Close() error
}

// NewSegment creates a heap-backed segment of the given size. It never
// fails for sane sizes and is available on every platform.
func NewSegment(size int64) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("shm: segment of %d bytes", size)
	}
	words := make([]uint64, (size+7)/8)
	return &Segment{
		mem:       unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size),
		kind:      HeapSegment,
		heapWords: words,
	}, nil
}

// Kind reports the segment's backend.
func (s *Segment) Kind() SegmentKind { return s.kind }

// Shared reports whether other processes can attach the segment.
func (s *Segment) Shared() bool { return s.kind == MemfdSegment }

// Size returns the segment length in bytes.
func (s *Segment) Size() int64 { return int64(len(s.mem)) }

// Bytes returns the whole segment. The slice aliases the mapping and
// must not be used after Close.
func (s *Segment) Bytes() []byte { return s.mem }

// At returns the n-byte window starting at off. The slice aliases the
// mapping; out-of-range windows panic (an offset bug against a shared
// region is memory corruption — fail loudly, as the arena does).
func (s *Segment) At(off, n int64) []byte {
	if off < 0 || n < 0 || off+n > int64(len(s.mem)) {
		panic(fmt.Sprintf("shm: segment window [%d,%d) outside region of %d bytes", off, off+n, len(s.mem)))
	}
	return s.mem[off : off+n : off+n]
}

// OffsetOf translates a slice that aliases the segment back into its
// base offset — how a zero-copy payload (an arena span handed out by
// Loan.Bytes or View.Bytes) becomes a descriptor another process can
// resolve against its own mapping. It returns false if b does not
// alias the segment. Empty slices cannot be located.
func (s *Segment) OffsetOf(b []byte) (int64, bool) {
	if len(b) == 0 || len(s.mem) == 0 {
		return 0, false
	}
	base := uintptr(unsafe.Pointer(&s.mem[0]))
	p := uintptr(unsafe.Pointer(&b[0]))
	if p < base || p+uintptr(len(b)) > base+uintptr(len(s.mem)) {
		return 0, false
	}
	return int64(p - base), true
}

// Atomic32 returns the 4-byte word at off for atomic access. The word
// is shared with every process that mapped the segment; off must be
// 4-aligned.
func (s *Segment) Atomic32(off int64) *atomic.Uint32 {
	if off < 0 || off+4 > int64(len(s.mem)) || off%4 != 0 {
		panic(fmt.Sprintf("shm: misaligned or out-of-range atomic32 at %d", off))
	}
	return (*atomic.Uint32)(unsafe.Pointer(&s.mem[off]))
}

// Atomic64 returns the 8-byte word at off for atomic access; off must
// be 8-aligned.
func (s *Segment) Atomic64(off int64) *atomic.Uint64 {
	if off < 0 || off+8 > int64(len(s.mem)) || off%8 != 0 {
		panic(fmt.Sprintf("shm: misaligned or out-of-range atomic64 at %d", off))
	}
	return (*atomic.Uint64)(unsafe.Pointer(&s.mem[off]))
}

// Close unmaps the segment and closes its backing file. Heap segments
// just drop the allocation. Close is idempotent; every slice and word
// previously handed out becomes invalid (memfd views would fault, heap
// views go stale), so callers quiesce all users first — the clean
// unmap the cross-process demo asserts.
func (s *Segment) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.osFile != nil {
		if err := s.unmap(); err != nil {
			return err
		}
		return s.osFile.Close()
	}
	s.mem = nil
	s.heapWords = nil
	return nil
}

// AlignUp rounds off up to the next multiple of 64 — the segment
// layout helper: every protocol structure (table, rings, arena) starts
// on its own cache line so cross-process hot words never share one.
func AlignUp(off int64) int64 { return (off + 63) &^ 63 }

// HugePageBytes is the transparent-huge-page granule the arena aligns
// span regions to when Config.HugePages is set: 2 MiB on both linux
// architectures this package targets.
const HugePageBytes = 2 << 20

// AlignUpHuge rounds off up to the next huge-page boundary.
func AlignUpHuge(off int64) int64 {
	return (off + HugePageBytes - 1) &^ int64(HugePageBytes-1)
}

// AdviseHuge hints the kernel to back the segment window [off, off+n)
// with transparent huge pages (madvise MADV_HUGEPAGE). The advised
// range is shrunk inward to huge-page boundaries — madvise wants
// page-aligned addresses, and an unaligned hint would spill onto
// neighbouring memory. Returns the number of bytes actually advised
// (0 if the aligned range is empty or the platform has no madvise)
// and any syscall error.
func (s *Segment) AdviseHuge(off, n int64) (int64, error) {
	if s.closed || n <= 0 {
		return 0, nil
	}
	if off < 0 || off+n > int64(len(s.mem)) {
		return 0, fmt.Errorf("shm: advise window [%d,%d) outside region of %d bytes", off, off+n, len(s.mem))
	}
	return AdviseHugeBytes(s.mem[off : off+n])
}

// AdviseHugeBytes issues the MADV_HUGEPAGE hint for the huge-page-
// aligned interior of b — the slice-level form Arena uses for regions
// it does not own a Segment handle for (the heap backend). Shrinking
// inward rather than rounding outward keeps the hint off neighbouring
// allocations.
func AdviseHugeBytes(b []byte) (int64, error) {
	if len(b) == 0 || !madviseSupported {
		return 0, nil
	}
	lo := uintptr(unsafe.Pointer(&b[0]))
	hi := lo + uintptr(len(b))
	alo := (lo + HugePageBytes - 1) &^ (HugePageBytes - 1)
	ahi := hi &^ (HugePageBytes - 1)
	if ahi <= alo {
		return 0, nil
	}
	if err := madviseHuge(alo, ahi-alo); err != nil {
		return 0, err
	}
	return int64(ahi - alo), nil
}
