package shm

import (
	"sync"
	"testing"
	"time"
)

func TestAllocWaitMultipleWaitersAllServed(t *testing.T) {
	// More waiters than blocks: each Free must eventually let one more
	// waiter through (broadcast wake + retry), with no waiter lost.
	const nBlocks, nWaiters = 2, 6
	a := mustArena(t, 16, nBlocks)
	held := make([]int32, 0, nBlocks)
	for i := 0; i < nBlocks; i++ {
		off, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, off)
	}
	got := make(chan int32, nWaiters)
	var wg sync.WaitGroup
	for i := 0; i < nWaiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			off, err := a.AllocWait(nil)
			if err != nil {
				t.Error(err)
				return
			}
			got <- off
		}()
	}
	// Release blocks one at a time; after each release one waiter gets
	// a block. Keep recycling what waiters return… simpler: free the 2
	// held, then bounce blocks from satisfied waiters back in.
	for _, off := range held {
		a.Free(off)
	}
	for served := 0; served < nWaiters; served++ {
		select {
		case off := <-got:
			if served < nWaiters-nBlocks {
				a.Free(off) // recycle so the next waiter proceeds
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d waiters served", served, nWaiters)
		}
	}
	wg.Wait()
}

func TestAllocWaitFastPathNoBlock(t *testing.T) {
	a := mustArena(t, 16, 4)
	start := time.Now()
	off, err := a.AllocWait(nil)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("AllocWait blocked despite free blocks")
	}
	a.Free(off)
	st := a.Stats()
	if st.AllocBlocks != 0 {
		t.Fatalf("AllocBlocks = %d, want 0", st.AllocBlocks)
	}
}
