package shm

import "testing"

// The in-segment layout contract: the ring header's words are hammered
// from two processes, so each protocol word — and each half of a
// NotifyWord — must own a 64-byte line. Unlike the in-process structs
// these offsets are wire format: getting them wrong is not just false
// sharing but cross-process corruption, which is why ringMagic and
// HandshakeVersion were bumped when NotifyBytes grew.
func TestRingHeaderLayout(t *testing.T) {
	offs := map[string]int64{
		"magic":          ringOffMagic,
		"tail":           ringOffTail,
		"head":           ringOffHead,
		"closed":         ringOffClosed,
		"data":           ringOffData,
		"data.sleepers":  ringOffData + notifySleeperOff,
		"space":          ringOffSpace,
		"space.sleepers": ringOffSpace + notifySleeperOff,
	}
	lines := make(map[int64]string)
	for name, off := range offs {
		if off%64 != 0 {
			t.Errorf("ring %s word at offset %d, want a 64-byte boundary", name, off)
		}
		if prev, dup := lines[off/64]; dup {
			t.Errorf("ring %s and %s share cache line %d", name, prev, off/64)
		}
		lines[off/64] = name
	}
	if NotifyBytes != 2*64 {
		t.Errorf("NotifyBytes = %d, want two cache lines", NotifyBytes)
	}
	if ringOffSpace-ringOffData < NotifyBytes {
		t.Errorf("space word at %d overlaps data NotifyWord [%d,%d)",
			ringOffSpace, ringOffData, ringOffData+NotifyBytes)
	}
	if ringHdrBytes < ringOffSpace+NotifyBytes {
		t.Errorf("records at %d overlap space NotifyWord [%d,%d)",
			ringHdrBytes, ringOffSpace, ringOffSpace+NotifyBytes)
	}
	if ringHdrBytes%64 != 0 {
		t.Errorf("ringHdrBytes = %d, want a 64-byte multiple so records start line-aligned", ringHdrBytes)
	}
}
