package shm

import "testing"

// TestFreeChainsBothModes checks the batched free transaction: several
// chains returned under one lock acquisition, in span and classic
// layouts, with the free pool intact afterwards.
func TestFreeChainsBothModes(t *testing.T) {
	for _, spans := range []bool{true, false} {
		a, err := New(Config{BlockSize: 16, NumBlocks: 64, Spans: spans})
		if err != nil {
			t.Fatal(err)
		}
		heads := make([]int32, 0, 5)
		for i := 0; i < 4; i++ {
			head, _, err := a.AllocPayload(40, false, nil) // multi-block chains
			if err != nil {
				t.Fatalf("spans=%v: %v", spans, err)
			}
			heads = append(heads, head)
		}
		heads = append(heads, NilOffset) // tolerated and skipped

		acqBefore, _ := a.LockStats()
		a.FreeChains(heads)
		acqAfter, _ := a.LockStats()
		if got := acqAfter - acqBefore; got != 1 {
			t.Errorf("spans=%v: FreeChains took %d lock acquisitions, want 1", spans, got)
		}
		if free := a.FreeBlocks(); free != a.NumBlocks() {
			t.Errorf("spans=%v: %d of %d blocks free after FreeChains", spans, free, a.NumBlocks())
		}
		if err := a.CheckFreeList(); err != nil {
			t.Errorf("spans=%v: %v", spans, err)
		}
		// The pool is fully reusable: the whole region allocates again.
		if _, _, err := a.AllocPayloads([]int{a.NumBlocks() * a.PayloadSize() / 2}, false, nil); err != nil {
			t.Errorf("spans=%v: realloc after FreeChains: %v", spans, err)
		}
	}
}

// TestFreeChainsEmpty checks the degenerate inputs take no lock.
func TestFreeChainsEmpty(t *testing.T) {
	a, err := New(Config{BlockSize: 16, NumBlocks: 8, Spans: true})
	if err != nil {
		t.Fatal(err)
	}
	acqBefore, _ := a.LockStats()
	a.FreeChains(nil)
	a.FreeChains([]int32{NilOffset, NilOffset})
	if acqAfter, _ := a.LockStats(); acqAfter != acqBefore {
		t.Errorf("empty FreeChains acquired the lock %d times", acqAfter-acqBefore)
	}
}
