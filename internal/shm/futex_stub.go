//go:build !linux

package shm

// Polling fallback for platforms without futexes. NotifyWord's wait
// loop re-checks its word after every futexWait return, so a bounded
// sleep gives correct (if less efficient) blocking semantics: the
// heap backend is single-process anyway and only uses this between
// goroutines.

import "time"

const futexSupported = false

// fallbackPoll bounds how stale a missed wakeup can leave a waiter
// when the platform cannot sleep on the word itself.
const fallbackPoll = 200 * time.Microsecond

func futexWait(addr *uint32, val uint32, timeout time.Duration) {
	d := fallbackPoll
	if timeout > 0 && timeout < d {
		d = timeout
	}
	time.Sleep(d)
}

func futexWake(addr *uint32, n int) int { return 0 }
