package shm

import (
	"bytes"
	"testing"
)

func TestHeapSegmentBasics(t *testing.T) {
	seg, err := NewSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Kind() != HeapSegment || seg.Shared() {
		t.Fatalf("heap segment reports kind=%v shared=%v", seg.Kind(), seg.Shared())
	}
	if seg.Size() != 4096 {
		t.Fatalf("size = %d, want 4096", seg.Size())
	}

	w := seg.At(128, 16)
	copy(w, "hello, segment!!")
	if got := seg.Bytes()[128:144]; !bytes.Equal(got, []byte("hello, segment!!")) {
		t.Fatalf("window write not visible through Bytes: %q", got)
	}

	off, ok := seg.OffsetOf(w)
	if !ok || off != 128 {
		t.Fatalf("OffsetOf(window@128) = %d, %v", off, ok)
	}
	if _, ok := seg.OffsetOf(make([]byte, 8)); ok {
		t.Fatal("OffsetOf located a foreign slice")
	}
	if _, ok := seg.OffsetOf(nil); ok {
		t.Fatal("OffsetOf located an empty slice")
	}

	a32 := seg.Atomic32(256)
	a32.Store(0xDEADBEEF)
	if seg.Atomic32(256).Load() != 0xDEADBEEF {
		t.Fatal("atomic32 word not shared between handles")
	}
	a64 := seg.Atomic64(264)
	a64.Store(1 << 40)
	if seg.Atomic64(264).Load() != 1<<40 {
		t.Fatal("atomic64 word not shared between handles")
	}

	if err := seg.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := seg.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestSegmentBoundsPanic(t *testing.T) {
	seg, _ := NewSegment(1024)
	for name, f := range map[string]func(){
		"At past end":     func() { seg.At(1000, 100) },
		"At negative":     func() { seg.At(-1, 8) },
		"Atomic32 odd":    func() { seg.Atomic32(3) },
		"Atomic64 odd":    func() { seg.Atomic64(4) },
		"Atomic32 at end": func() { seg.Atomic32(1024) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAlignUp(t *testing.T) {
	cases := map[int64]int64{0: 0, 1: 64, 63: 64, 64: 64, 65: 128, 384: 384}
	for in, want := range cases {
		if got := AlignUp(in); got != want {
			t.Errorf("AlignUp(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestArenaNewAtOverSegment(t *testing.T) {
	cfg := Config{BlockSize: 64, NumBlocks: 32, Spans: true}
	seg, err := NewSegment(AlignUp(cfg.Bytes()) + 64)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	a, err := NewAt(cfg, seg.At(64, cfg.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	head, _, err := a.AllocPayload(100, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := a.SegPayload(head)
	copy(payload, "through the segment")
	// The payload slice must alias the segment: that aliasing is what
	// turns a loan into a ring descriptor another process can resolve.
	segOff, ok := seg.OffsetOf(payload)
	if !ok {
		t.Fatal("arena payload does not alias its backing segment")
	}
	if got := seg.At(segOff, 19); string(got) != "through the segment" {
		t.Fatalf("segment window reads %q", got)
	}
	a.FreeChain(head)
	if err := a.CheckFreeList(); err != nil {
		t.Fatal(err)
	}

	if _, err := NewAt(cfg, make([]byte, 10)); err == nil {
		t.Fatal("NewAt accepted an undersized region")
	}
}
