package shm

// The attach handshake. A child process that receives the segment fd
// knows nothing about what is inside the region, so the fd travels
// with a small fixed-size frame describing the layout: where the
// descriptor table and the arena start, how the arena is carved
// (block size, block count, span mode), which table slot the child
// should claim, and a protocol generation stamped by the parent at
// serve time. The generation is the staleness guard: it is also
// written into the segment's table header, and AttachSegTable refuses
// a mismatch — a child launched against one serve instance cannot
// attach a recycled or restarted segment whose layout it would
// misread.
//
// The frame is versioned and little-endian with explicit fixed-width
// fields, so parent and child binaries built from different trees fail
// cleanly (ErrHandshakeVersion) instead of silently disagreeing about
// the region's layout.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HandshakeVersion is the current attach-protocol version. Bump it
// whenever the frame layout or the in-segment structures it describes
// change incompatibly. Version 2: NotifyWords widened to two cache
// lines (NotifyBytes 8 → 128), moving the ring's space word and the
// record base. Version 3: the table's slot state word packs the attach
// generation (table version 2) and ring-record tags carry a generation
// byte, so a stale binary would misread both — fail at the frame.
const HandshakeVersion = 3

// HandshakeBytes is the fixed wire size of an encoded handshake.
const HandshakeBytes = 56

const handshakeMagic = 0x3146504D // "MPF1"

// ErrHandshakeVersion is returned when the peer speaks a different
// attach-protocol version (or is not MPF at all).
var ErrHandshakeVersion = errors.New("shm: attach handshake version mismatch")

// ErrHandshakeTimeout is returned when the handshake frame does not
// arrive within the receive deadline — the classic symptom of a parent
// that died between spawning the child and sending the segment.
var ErrHandshakeTimeout = errors.New("shm: attach handshake timed out")

// ErrPeerDead is returned by deadline- or abort-bounded cross-process
// waits when the other side of the segment has been declared dead
// (process gone, slot reaped) rather than merely slow.
var ErrPeerDead = errors.New("shm: segment peer is dead")

// Handshake flag bits.
const (
	// HandshakeSpans marks an arena in contiguous-span mode.
	HandshakeSpans = 1 << 0
)

// Handshake describes a segment to an attaching process.
type Handshake struct {
	// Generation stamps the serving facility instance; it must match
	// the generation in the segment's table header.
	Generation uint64
	// SegSize is the full segment length — cross-checked against the
	// received fd's own size before mapping.
	SegSize int64
	// TableOff is the segment offset of the descriptor table header.
	TableOff int64
	// ArenaOff is the segment offset of the block arena's first byte.
	ArenaOff int64
	// BlockSize and NumBlocks describe the arena carving, so the child
	// can validate ring descriptors against block bounds.
	BlockSize int32
	NumBlocks int32
	// Slot is the table slot assigned to this child.
	Slot int32
	// Flags carries HandshakeSpans and future layout bits.
	Flags uint32
}

// Spans reports whether the described arena runs in span mode.
func (h Handshake) Spans() bool { return h.Flags&HandshakeSpans != 0 }

// Encode serializes h into its fixed HandshakeBytes wire form.
func (h Handshake) Encode() []byte {
	b := make([]byte, HandshakeBytes)
	binary.LittleEndian.PutUint32(b[0:4], handshakeMagic)
	binary.LittleEndian.PutUint32(b[4:8], HandshakeVersion)
	binary.LittleEndian.PutUint64(b[8:16], h.Generation)
	binary.LittleEndian.PutUint64(b[16:24], uint64(h.SegSize))
	binary.LittleEndian.PutUint64(b[24:32], uint64(h.TableOff))
	binary.LittleEndian.PutUint64(b[32:40], uint64(h.ArenaOff))
	binary.LittleEndian.PutUint32(b[40:44], uint32(h.BlockSize))
	binary.LittleEndian.PutUint32(b[44:48], uint32(h.NumBlocks))
	binary.LittleEndian.PutUint32(b[48:52], uint32(h.Slot))
	binary.LittleEndian.PutUint32(b[52:56], h.Flags)
	return b
}

// DecodeHandshake parses a received frame, validating magic, version
// and basic field sanity.
func DecodeHandshake(b []byte) (Handshake, error) {
	if len(b) < HandshakeBytes {
		return Handshake{}, fmt.Errorf("shm: short handshake frame (%d of %d bytes)", len(b), HandshakeBytes)
	}
	if m := binary.LittleEndian.Uint32(b[0:4]); m != handshakeMagic {
		return Handshake{}, fmt.Errorf("shm: bad handshake magic %#x: %w", m, ErrHandshakeVersion)
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != HandshakeVersion {
		return Handshake{}, fmt.Errorf("shm: handshake version %d, want %d: %w", v, HandshakeVersion, ErrHandshakeVersion)
	}
	h := Handshake{
		Generation: binary.LittleEndian.Uint64(b[8:16]),
		SegSize:    int64(binary.LittleEndian.Uint64(b[16:24])),
		TableOff:   int64(binary.LittleEndian.Uint64(b[24:32])),
		ArenaOff:   int64(binary.LittleEndian.Uint64(b[32:40])),
		BlockSize:  int32(binary.LittleEndian.Uint32(b[40:44])),
		NumBlocks:  int32(binary.LittleEndian.Uint32(b[44:48])),
		Slot:       int32(binary.LittleEndian.Uint32(b[48:52])),
		Flags:      binary.LittleEndian.Uint32(b[52:56]),
	}
	if h.SegSize <= 0 || h.TableOff < 0 || h.ArenaOff < 0 ||
		h.TableOff >= h.SegSize || h.ArenaOff >= h.SegSize ||
		h.BlockSize < MinBlockSize || h.NumBlocks < 1 || h.Slot < 0 {
		return Handshake{}, fmt.Errorf("shm: handshake describes an impossible layout (%+v)", h)
	}
	return h, nil
}
