package shm

// XRing: a single-producer single-consumer descriptor ring living
// entirely inside a segment — the cross-process counterpart of the
// fastpath Ring. Payload never travels through it: records carry
// segment offsets into the shared arena (plus a tag and a user word),
// so a parent and a child exchange multi-kilobyte messages by moving
// 16-byte descriptors while the payload bytes sit still in the mapped
// region — zero copies across the process boundary.
//
// Synchronization is two futex-backed NotifyWords: the producer
// publishes records with a release store of the tail index and one
// Post (one FUTEX_WAKE per publish or batch); the consumer parks on
// the data word when the ring is empty, the producer parks on the
// space word when it is full. All ring state (indices, closed flag,
// records) is in the segment; only the stats handles are
// process-local.
//
// Layout, all offsets 64-aligned so the producer's and consumer's hot
// words never share a cache line across processes:
//
//	+0    magic, capacity (records, power of two)
//	+64   tail  (producer-owned index, consumer-read)
//	+128  head  (consumer-owned index, producer-read)
//	+192  closed flag
//	+256  data NotifyWord  (posted by producer; two lines — see NotifyBytes)
//	+384  space NotifyWord (posted by consumer)
//	+512  records: capacity × 16 bytes

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// ErrRingClosed is returned once a closed ring has drained (Pop) or
// immediately (Push): the peer has detached or the facility is
// shutting down.
var ErrRingClosed = errors.New("shm: descriptor ring closed")

// ErrRingTimeout is returned when a bounded Pop or Push expires.
var ErrRingTimeout = errors.New("shm: descriptor ring wait timed out")

const (
	// ringMagic is "MPRS": bumped from "MPRR" when the NotifyWords grew
	// to two cache lines each, so a stale-layout attach fails loudly at
	// the magic check instead of aliasing the space word over the data
	// word's sleeper count.
	ringMagic    = 0x4D505253
	ringHdrBytes = 512
	// RecordBytes is the wire size of one descriptor.
	RecordBytes = 16

	ringOffMagic  = 0
	ringOffCap    = 4
	ringOffTail   = 64
	ringOffHead   = 128
	ringOffClosed = 192
	ringOffData   = 256
	ringOffSpace  = 256 + NotifyBytes
)

// Record is one ring descriptor: a segment window plus protocol tag
// and user word. The meaning of Tag/Word is the attaching protocol's
// business (the proc facade uses Tag for message kinds and Word for
// checksums/sequence numbers).
type Record struct {
	Off int64
	Len int32
	Tag uint16
	// Word is a protocol scratch field (checksum, sequence, slot…).
	Word uint16
}

// RingBytes returns the segment footprint of a ring with the given
// capacity (which must be a power of two).
func RingBytes(capacity int) int64 {
	return ringHdrBytes + int64(capacity)*RecordBytes
}

// XRing is a process-local handle onto an in-segment SPSC ring. Each
// side creates its own handle (InitRing in the segment's creator,
// AttachRing everywhere else).
type XRing struct {
	seg  *Segment
	base int64
	mask uint32
	data *NotifyWord // posted by producer after publishing
	spc  *NotifyWord // posted by consumer after freeing space
}

// InitRing formats a ring at base (64-aligned) and returns a handle.
// capacity must be a power of two; the ring's memory must be zeroed
// (fresh segments are).
func InitRing(seg *Segment, base int64, capacity int) (*XRing, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("shm: ring capacity %d is not a power of two", capacity)
	}
	if base%64 != 0 {
		return nil, fmt.Errorf("shm: ring base %d not 64-aligned", base)
	}
	if base+RingBytes(capacity) > seg.Size() {
		return nil, fmt.Errorf("shm: ring of %d records at %d exceeds segment of %d bytes",
			capacity, base, seg.Size())
	}
	seg.Atomic32(base + ringOffCap).Store(uint32(capacity))
	seg.Atomic32(base + ringOffTail).Store(0)
	seg.Atomic32(base + ringOffHead).Store(0)
	seg.Atomic32(base + ringOffClosed).Store(0)
	seg.Atomic32(base + ringOffMagic).Store(ringMagic)
	return AttachRing(seg, base)
}

// AttachRing binds a handle to a ring previously formatted by
// InitRing — possibly in another process's mapping of the same
// segment.
func AttachRing(seg *Segment, base int64) (*XRing, error) {
	if base < 0 || base%64 != 0 || base+ringHdrBytes > seg.Size() {
		return nil, fmt.Errorf("shm: ring base %d invalid for segment of %d bytes", base, seg.Size())
	}
	if seg.Atomic32(base+ringOffMagic).Load() != ringMagic {
		return nil, fmt.Errorf("shm: no ring at segment offset %d", base)
	}
	capacity := seg.Atomic32(base + ringOffCap).Load()
	if capacity < 2 || capacity&(capacity-1) != 0 || base+RingBytes(int(capacity)) > seg.Size() {
		return nil, fmt.Errorf("shm: ring at %d has corrupt capacity %d", base, capacity)
	}
	return &XRing{
		seg:  seg,
		base: base,
		mask: capacity - 1,
		data: NotifyAt(seg, base+ringOffData),
		spc:  NotifyAt(seg, base+ringOffSpace),
	}, nil
}

// Cap returns the ring capacity in records.
func (r *XRing) Cap() int { return int(r.mask + 1) }

// Len returns the number of records currently queued (advisory: the
// peer moves concurrently).
func (r *XRing) Len() int {
	return int(r.seg.Atomic32(r.base+ringOffTail).Load() - r.seg.Atomic32(r.base+ringOffHead).Load())
}

// Closed reports whether either side has closed the ring.
func (r *XRing) Closed() bool { return r.seg.Atomic32(r.base+ringOffClosed).Load() != 0 }

// Close marks the ring closed and wakes both sides. Either side may
// close; records already published remain poppable (Pop drains, then
// reports ErrRingClosed).
func (r *XRing) Close() {
	r.seg.Atomic32(r.base + ringOffClosed).Store(1)
	r.data.Post()
	r.spc.Post()
}

func (r *XRing) recSlot(i uint32) []byte {
	return r.seg.At(r.base+ringHdrBytes+int64(i&r.mask)*RecordBytes, RecordBytes)
}

func putRecord(b []byte, rec Record) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(rec.Off))
	binary.LittleEndian.PutUint32(b[8:12], uint32(rec.Len))
	binary.LittleEndian.PutUint16(b[12:14], rec.Tag)
	binary.LittleEndian.PutUint16(b[14:16], rec.Word)
}

func getRecord(b []byte) Record {
	return Record{
		Off:  int64(binary.LittleEndian.Uint64(b[0:8])),
		Len:  int32(binary.LittleEndian.Uint32(b[8:12])),
		Tag:  binary.LittleEndian.Uint16(b[12:14]),
		Word: binary.LittleEndian.Uint16(b[14:16]),
	}
}

// TryPush publishes rec if space is available, reporting whether it
// did. Publishing is a record store followed by a release store of
// tail and one Post.
func (r *XRing) TryPush(rec Record) (bool, error) {
	return r.tryPushN([]Record{rec})
}

func (r *XRing) tryPushN(recs []Record) (bool, error) {
	if r.Closed() {
		return false, ErrRingClosed
	}
	tail := r.seg.Atomic32(r.base + ringOffTail).Load()
	head := r.seg.Atomic32(r.base + ringOffHead).Load()
	if tail-head+uint32(len(recs)) > r.mask+1 {
		return false, nil
	}
	for i, rec := range recs {
		putRecord(r.recSlot(tail+uint32(i)), rec)
	}
	// The atomic store is the release barrier making the record bytes
	// visible before the index moves; one Post per publish (or batch)
	// is the single FUTEX_WAKE.
	r.seg.Atomic32(r.base + ringOffTail).Store(tail + uint32(len(recs)))
	r.data.Post()
	return true, nil
}

// Push publishes rec, blocking while the ring is full (spin then
// futex-wait on the space word). A zero deadline waits forever;
// ErrRingTimeout reports expiry, ErrRingClosed a closed ring.
func (r *XRing) Push(rec Record, deadline time.Time) error {
	return r.PushBatch([]Record{rec}, deadline)
}

// PushBatch publishes all of recs in one ring transaction: one tail
// store and one wake however many records — the cross-process
// counterpart of the LoanBatch/SendBatch amortisation. The batch must
// fit the ring's capacity.
func (r *XRing) PushBatch(recs []Record, deadline time.Time) error {
	if len(recs) == 0 {
		return nil
	}
	if len(recs) > r.Cap() {
		return fmt.Errorf("shm: batch of %d records exceeds ring capacity %d", len(recs), r.Cap())
	}
	for {
		ok, err := r.tryPushN(recs)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		seen := r.spc.Load()
		// Re-check after reading the token: a Post between the failed
		// try and the Load is not missable now.
		if ok, err := r.tryPushN(recs); err != nil || ok {
			return err
		}
		if _, ok := r.spc.Wait(seen, deadline); !ok {
			return ErrRingTimeout
		}
	}
}

// TryPop consumes the oldest record if one is available.
func (r *XRing) TryPop() (Record, bool, error) {
	head := r.seg.Atomic32(r.base + ringOffHead).Load()
	tail := r.seg.Atomic32(r.base + ringOffTail).Load()
	if head == tail {
		if r.Closed() {
			return Record{}, false, ErrRingClosed
		}
		return Record{}, false, nil
	}
	rec := getRecord(r.recSlot(head))
	r.seg.Atomic32(r.base + ringOffHead).Store(head + 1)
	r.spc.Post()
	return rec, true, nil
}

// Pop consumes the oldest record, blocking while the ring is empty
// (spin then futex-wait on the data word). A zero deadline waits
// forever. A closed ring drains its queued records first, then
// reports ErrRingClosed.
func (r *XRing) Pop(deadline time.Time) (Record, error) {
	for {
		rec, ok, err := r.TryPop()
		if err != nil {
			return Record{}, err
		}
		if ok {
			return rec, nil
		}
		seen := r.data.Load()
		if rec, ok, err := r.TryPop(); err != nil || ok {
			return rec, err
		}
		if _, ok := r.data.Wait(seen, deadline); !ok {
			return Record{}, ErrRingTimeout
		}
	}
}

// abortProbeSlice bounds each futex park inside an abortable wait so
// the abort callback is consulted at least this often. 10ms keeps the
// liveness check off the hot path (a posted word returns immediately;
// the slice only matters while genuinely blocked on a silent peer).
const abortProbeSlice = 10 * time.Millisecond

// PopAbort is Pop with a liveness hook: while blocked on an empty
// ring, abort is probed at least every abortProbeSlice; a non-nil
// return (typically ErrPeerDead) ends the wait with that error. The
// probe only runs on the slow path — a non-empty ring never calls it.
func (r *XRing) PopAbort(deadline time.Time, abort func() error) (Record, error) {
	for {
		rec, ok, err := r.TryPop()
		if err != nil {
			return Record{}, err
		}
		if ok {
			return rec, nil
		}
		seen := r.data.Load()
		if rec, ok, err := r.TryPop(); err != nil || ok {
			return rec, err
		}
		if err := abort(); err != nil {
			return Record{}, err
		}
		if _, ok := r.data.Wait(seen, r.probeDeadline(deadline)); !ok {
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				return Record{}, ErrRingTimeout
			}
		}
	}
}

// PushAbort is Push with the same liveness hook as PopAbort: a
// producer blocked on a full ring whose consumer died stops waiting as
// soon as the abort callback says so.
func (r *XRing) PushAbort(rec Record, deadline time.Time, abort func() error) error {
	for {
		ok, err := r.TryPush(rec)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		seen := r.spc.Load()
		if ok, err := r.TryPush(rec); err != nil || ok {
			return err
		}
		if err := abort(); err != nil {
			return err
		}
		if _, ok := r.spc.Wait(seen, r.probeDeadline(deadline)); !ok {
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				return ErrRingTimeout
			}
		}
	}
}

// probeDeadline slices an overall deadline into abort-probe-sized
// parks: the nearer of now+abortProbeSlice and the real deadline.
func (r *XRing) probeDeadline(deadline time.Time) time.Time {
	slice := time.Now().Add(abortProbeSlice)
	if deadline.IsZero() || slice.Before(deadline) {
		return slice
	}
	return deadline
}

// WaitStats returns the waiter counters of this handle's two notify
// words: data is what the consumer slept/spun on, space the
// producer's. The cross-process ablation derives its busy-spin
// metrics from these.
func (r *XRing) WaitStats() (data, space WaitStats) {
	return r.data.Stats(), r.spc.Stats()
}
