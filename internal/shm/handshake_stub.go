//go:build !linux || !(amd64 || arm64)

package shm

// fd passing requires the memfd backend; elsewhere the handshake
// encodes and decodes fine (DecodeHandshake is portable) but there is
// no segment to pass.

import (
	"net"
	"time"
)

// SendSegment is unavailable off Linux.
func SendSegment(conn *net.UnixConn, seg *Segment, h Handshake) error {
	return ErrNoSharedBackend
}

// RecvSegment is unavailable off Linux.
func RecvSegment(conn *net.UnixConn) (*Segment, Handshake, error) {
	return nil, Handshake{}, ErrNoSharedBackend
}

// RecvSegmentTimeout is unavailable off Linux.
func RecvSegmentTimeout(conn *net.UnixConn, timeout time.Duration) (*Segment, Handshake, error) {
	return nil, Handshake{}, ErrNoSharedBackend
}
