//go:build !linux || !(amd64 || arm64)

package shm

// Portable stubs for the Linux-only shared backend: every platform
// compiles and runs on heap segments; asking for a cross-process
// segment reports ErrNoSharedBackend so callers can gate features
// instead of crashing.

import "os"

// NewSharedSegment is unavailable off Linux: only the memfd backend
// provides cross-process segments.
func NewSharedSegment(name string, size int64) (*Segment, error) {
	return nil, ErrNoSharedBackend
}

// AttachSharedSegment is unavailable off Linux.
func AttachSharedSegment(f *os.File) (*Segment, error) {
	return nil, ErrNoSharedBackend
}

// File returns nil: heap segments have no passable descriptor.
func (s *Segment) File() *os.File { return nil }

func (s *Segment) unmap() error { return nil }
