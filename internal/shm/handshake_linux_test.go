//go:build linux && (amd64 || arm64)

package shm

import (
	"errors"
	"net"
	"os"
	"syscall"
	"testing"
	"time"
)

func unixPair(t *testing.T) (*net.UnixConn, *net.UnixConn) {
	t.Helper()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(fd int, name string) *net.UnixConn {
		f := os.NewFile(uintptr(fd), name)
		defer f.Close()
		c, err := net.FileConn(f)
		if err != nil {
			t.Fatal(err)
		}
		uc, ok := c.(*net.UnixConn)
		if !ok {
			t.Fatalf("FileConn returned %T", c)
		}
		return uc
	}
	a, b := mk(fds[0], "hs-a"), mk(fds[1], "hs-b")
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestSegmentPassing runs the full fd-passing handshake over a
// socketpair: the "parent" side sends its memfd segment plus layout
// frame, the "child" side maps it independently and reads the parent's
// writes through its own mapping.
func TestSegmentPassing(t *testing.T) {
	parent, child := unixPair(t)
	seg, err := NewSharedSegment("mpf-hs", 1<<16)
	if err != nil {
		if errors.Is(err, ErrNoSharedBackend) {
			t.Skip("no shared backend")
		}
		t.Fatal(err)
	}
	defer seg.Close()
	copy(seg.At(8192, 5), "proof")

	want := Handshake{
		Generation: 42,
		TableOff:   64,
		ArenaOff:   4096,
		BlockSize:  64,
		NumBlocks:  128,
		Slot:       2,
		Flags:      HandshakeSpans,
	}
	if err := SendSegment(parent, seg, want); err != nil {
		t.Fatal(err)
	}
	got, h, err := RecvSegment(child)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()

	want.SegSize = seg.Size() // SendSegment stamps the true size
	if h != want {
		t.Fatalf("handshake arrived as %+v, want %+v", h, want)
	}
	if got.Size() != seg.Size() || !got.Shared() {
		t.Fatalf("attached segment: size %d shared %v", got.Size(), got.Shared())
	}
	if string(got.At(8192, 5)) != "proof" {
		t.Fatal("pre-handshake write not visible through received mapping")
	}
	got.At(8192, 5)[0] = 'P'
	if string(seg.At(8192, 5)) != "Proof" {
		t.Fatal("child write not visible through original mapping")
	}
	if err := got.Close(); err != nil {
		t.Fatalf("attached close: %v", err)
	}
}

func TestSendSegmentRejectsHeap(t *testing.T) {
	parent, _ := unixPair(t)
	seg, _ := NewSegment(4096)
	defer seg.Close()
	if err := SendSegment(parent, seg, Handshake{}); !errors.Is(err, ErrNoSharedBackend) {
		t.Fatalf("heap segment send: %v, want ErrNoSharedBackend", err)
	}
}

// TestRecvSegmentTimeout covers the orphaned-child scenarios: no frame
// within the deadline, and a parent that closed its end (died) before
// sending anything. Both must surface ErrHandshakeTimeout, not hang.
func TestRecvSegmentTimeout(t *testing.T) {
	_, child := unixPair(t)
	if _, _, err := RecvSegmentTimeout(child, 30*time.Millisecond); !errors.Is(err, ErrHandshakeTimeout) {
		t.Fatalf("silent parent: %v, want ErrHandshakeTimeout", err)
	}

	parent2, child2 := unixPair(t)
	parent2.Close()
	if _, _, err := RecvSegmentTimeout(child2, time.Second); !errors.Is(err, ErrHandshakeTimeout) {
		t.Fatalf("dead parent: %v, want ErrHandshakeTimeout", err)
	}
}
