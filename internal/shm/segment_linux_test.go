//go:build linux && (amd64 || arm64)

package shm

import (
	"bytes"
	"errors"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestSharedSegmentAliasing maps the same memfd twice in one process —
// the in-process stand-in for two processes' independent mappings —
// and checks that writes through one mapping are visible through the
// other at the same *offset* even though the base addresses differ.
func TestSharedSegmentAliasing(t *testing.T) {
	seg, err := NewSharedSegment("mpf-test", 1<<16)
	if err != nil {
		if errors.Is(err, ErrNoSharedBackend) {
			t.Skip("no shared backend")
		}
		t.Fatal(err)
	}
	defer seg.Close()
	if !seg.Shared() || seg.Kind() != MemfdSegment {
		t.Fatalf("shared segment reports kind=%v", seg.Kind())
	}

	dup, err := syscall.Dup(int(seg.File().Fd()))
	if err != nil {
		t.Fatal(err)
	}
	peer, err := AttachSharedSegment(os.NewFile(uintptr(dup), "memfd:dup"))
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if peer.Size() != seg.Size() {
		t.Fatalf("peer mapped %d bytes, creator %d", peer.Size(), seg.Size())
	}

	copy(seg.At(4096, 8), "offsets!")
	if got := peer.At(4096, 8); !bytes.Equal(got, []byte("offsets!")) {
		t.Fatalf("peer mapping reads %q at offset 4096", got)
	}
	seg.Atomic32(8192).Store(7)
	if peer.Atomic32(8192).Load() != 7 {
		t.Fatal("atomic store not visible through peer mapping")
	}
	peer.Atomic32(8192).Add(1)
	if seg.Atomic32(8192).Load() != 8 {
		t.Fatal("peer atomic add not visible through creator mapping")
	}

	if err := peer.Close(); err != nil {
		t.Fatalf("peer close: %v", err)
	}
	if err := seg.Close(); err != nil {
		t.Fatalf("creator close: %v", err)
	}
}

// TestNotifyAcrossMappings runs the futex waiter protocol between two
// mappings of the same segment: the waker posts through one mapping,
// the waiter sleeps on the other's address for the same physical word.
func TestNotifyAcrossMappings(t *testing.T) {
	seg, err := NewSharedSegment("mpf-notify", 4096)
	if err != nil {
		if errors.Is(err, ErrNoSharedBackend) {
			t.Skip("no shared backend")
		}
		t.Fatal(err)
	}
	defer seg.Close()
	dup, err := syscall.Dup(int(seg.File().Fd()))
	if err != nil {
		t.Fatal(err)
	}
	peer, err := AttachSharedSegment(os.NewFile(uintptr(dup), "memfd:dup"))
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	w1 := NotifyAt(seg, 64)
	w2 := NotifyAt(peer, 64)
	done := make(chan uint32, 1)
	old := w2.Load()
	go func() {
		v, _ := w2.Wait(old, time.Time{})
		done <- v
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter reach the futex
	w1.Post()
	select {
	case v := <-done:
		if v != old+1 {
			t.Fatalf("waiter saw count %d, want %d", v, old+1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cross-mapping wakeup never arrived")
	}
}
