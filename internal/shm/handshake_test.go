package shm

import (
	"encoding/binary"
	"errors"
	"testing"
)

func TestHandshakeRoundtrip(t *testing.T) {
	h := Handshake{
		Generation: 0xA1B2C3D4E5F60718,
		SegSize:    1 << 20,
		TableOff:   64,
		ArenaOff:   8192,
		BlockSize:  64,
		NumBlocks:  1024,
		Slot:       3,
		Flags:      HandshakeSpans,
	}
	b := h.Encode()
	if len(b) != HandshakeBytes {
		t.Fatalf("encoded to %d bytes, want %d", len(b), HandshakeBytes)
	}
	got, err := DecodeHandshake(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("roundtrip: got %+v, want %+v", got, h)
	}
	if !got.Spans() {
		t.Fatal("span flag lost")
	}
}

func TestHandshakeRejectsBadFrames(t *testing.T) {
	good := Handshake{SegSize: 1 << 16, TableOff: 64, ArenaOff: 4096, BlockSize: 64, NumBlocks: 16}.Encode()

	short := good[:HandshakeBytes-1]
	if _, err := DecodeHandshake(short); err == nil {
		t.Fatal("short frame accepted")
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xFF
	if _, err := DecodeHandshake(badMagic); !errors.Is(err, ErrHandshakeVersion) {
		t.Fatalf("bad magic: %v, want ErrHandshakeVersion", err)
	}

	badVersion := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(badVersion[4:8], HandshakeVersion+1)
	if _, err := DecodeHandshake(badVersion); !errors.Is(err, ErrHandshakeVersion) {
		t.Fatalf("future version: %v, want ErrHandshakeVersion", err)
	}

	for name, mutate := range map[string]func(h *Handshake){
		"zero segment":       func(h *Handshake) { h.SegSize = 0 },
		"table past end":     func(h *Handshake) { h.TableOff = h.SegSize },
		"arena past end":     func(h *Handshake) { h.ArenaOff = h.SegSize + 1 },
		"tiny blocks":        func(h *Handshake) { h.BlockSize = MinBlockSize - 1 },
		"no blocks":          func(h *Handshake) { h.NumBlocks = 0 },
		"negative slot":      func(h *Handshake) { h.Slot = -1 },
		"negative table off": func(h *Handshake) { h.TableOff = -8 },
	} {
		h := Handshake{SegSize: 1 << 16, TableOff: 64, ArenaOff: 4096, BlockSize: 64, NumBlocks: 16}
		mutate(&h)
		if _, err := DecodeHandshake(h.Encode()); err == nil {
			t.Errorf("%s: impossible layout accepted", name)
		}
	}
}
