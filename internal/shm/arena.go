// Package shm implements the shared-memory region that backs MPF.
//
// The original MPF mapped a region of physical memory into the virtual
// address space of every Unix process in the program and carved it into a
// free list of fixed-size message blocks at init time; all message payload
// flowed through those blocks. Goroutines share a heap, so a mapped region
// is not *needed* for correctness — but the region is load-bearing for the
// paper's performance story (Figure 3's asymptote is a copy-cost asymptote,
// and the per-block overhead of the linked free list is why small blocks
// hurt). This package therefore reproduces the layout faithfully:
//
//   - one contiguous byte arena, sized at Init from maxLNVCs/maxProcesses;
//   - fixed-size blocks addressed by int32 *offsets* (the portable stand-in
//     for pointers into a mapped region — offsets survive being mapped at
//     different addresses in different processes, which is exactly why the
//     original used them);
//   - a lock-protected singly-linked free list threaded through the blocks
//     themselves, with the link word stored in the block's first 4 bytes
//     when free.
//
// Beyond the paper, the arena offers a contiguous-span allocation mode
// (Config.Spans): a free *bitmap* replaces the linked list and a payload
// is placed, whenever fragmentation permits, in one run of physically
// adjacent blocks carrying a single link word. A multi-kilobyte message
// then occupies one contiguous byte range instead of a chain of 60-byte
// fragments — which is what lets the zero-copy plane (msg.View,
// core.SendLoan/ReceiveView) hand callers a single writable or readable
// slice instead of walking a chain. Chains still exist in span mode —
// a chain element is simply a span of one or more blocks, described by
// SegPayload — and every chain API (WriteChain, ReadChain, FreeChain)
// is span-aware. The classic linked-list layout remains the fidelity
// baseline (core's ClassicChains / mpf.WithClassicChains) and the copy
// ablation's paper-plane configuration.
//
// The arena is safe for concurrent use.
package shm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/spinlock"
)

// NilOffset is the arena's nil pointer. Offset 0 is deliberately burned
// (the first block starts at blockSize) so that the zero value of an
// offset-valued field is unmistakably invalid, the same trick the original
// played by reserving the region's first word.
const NilOffset int32 = 0

// ErrOutOfBlocks is returned by Alloc when the free list is empty and the
// arena was created with a fixed size (the paper's configuration).
var ErrOutOfBlocks = errors.New("shm: out of message blocks")

// MinBlockSize is the smallest usable block: the free-list link word plus
// at least one payload byte. The paper ran with 10-byte blocks, which this
// bound admits.
const MinBlockSize = 5

// Arena is a shared region divided into fixed-size blocks.
type Arena struct {
	mem       []byte
	blockSize int32
	nBlocks   int32
	spans     bool

	mu       spinlock.TAS
	freeHead int32 // classic mode: offset of first free block, NilOffset if none
	nFree    int32

	// Span mode replaces the linked free list with a bitmap so runs of
	// physically adjacent free blocks can be found: bit i set means
	// block i (at offset (i+1)*blockSize) is free. spanLen[i] records,
	// for an allocated span starting at block i, how many blocks it
	// covers — the metadata FreeChain and SegPayload need, kept at the
	// side because the span's interior has no per-block link words.
	// lowFree is a lower bound on the lowest free block index (no free
	// bit exists below it); every scan starts there and tightens it, so
	// allocations do not re-walk a long-lived allocated prefix while
	// holding the lock. Frees lower it again.
	freeBits []uint64
	spanLen  []int32
	lowFree  int32

	// waiters is the number of goroutines blocked in AllocWait; guarded
	// by mu, signalled via cond.
	cond    condSignal
	waiters int32

	stats Stats
	huge  HugeStats
}

// condSignal is a tiny condition variable over the arena spinlock. A full
// sync.Cond would also work; this variant exists so the arena has no
// dependency on sync and so tests can count wakeups.
type condSignal struct {
	ch chan struct{}
}

func (c *condSignal) init() { c.ch = make(chan struct{}) }

// Stats counts allocator activity. Read it via Arena.Stats.
type Stats struct {
	Allocs      uint64 // successful block allocations
	Frees       uint64 // blocks returned
	AllocFails  uint64 // Alloc calls that found the free list empty
	AllocBlocks uint64 // blocked AllocWait episodes
	HighWater   int32  // maximum simultaneously-allocated blocks
}

// HugeStats records the outcome of the huge-page hint, in the style of
// LockStats: set once at creation, read lock-free by the bench so it
// can report whether the hint took on this run.
type HugeStats struct {
	// Requested mirrors Config.HugePages.
	Requested bool
	// AdvisedBytes is how much of the region madvise actually covered
	// after shrinking to 2 MiB boundaries (0 when the region is too
	// small, the platform has no madvise, or the call failed).
	AdvisedBytes int64
	// Err holds the madvise failure, if any; advisory, never fatal.
	Err error
}

// Config sizes an Arena.
type Config struct {
	// BlockSize is the size of each block in bytes, including the 4-byte
	// link word. The paper's experiments used 10.
	BlockSize int
	// NumBlocks is the number of blocks in the region.
	NumBlocks int
	// Spans selects the contiguous-span allocation mode: payloads are
	// placed in runs of adjacent blocks (single-segment views) found
	// via a free bitmap instead of the paper's linked free list. All
	// chain APIs work identically in both modes.
	Spans bool
	// HugePages asks the kernel to back the region with transparent
	// huge pages (madvise MADV_HUGEPAGE on the region's huge-page-
	// aligned interior). Purely advisory: unsupported platforms and
	// small regions degrade to base pages; HugeStats reports whether
	// and how far the hint took.
	HugePages bool
}

// SizeFor estimates the arena configuration for a facility with the given
// limits, mirroring the paper's init(maxLNVCs, maxProcesses) sizing rule:
// enough blocks for every process to have several maximum-size messages in
// flight on every LNVC it plausibly uses.
func SizeFor(maxLNVCs, maxProcs, blockSize, msgBlocksPerProc int) Config {
	if blockSize < MinBlockSize {
		blockSize = MinBlockSize
	}
	if msgBlocksPerProc <= 0 {
		msgBlocksPerProc = 64
	}
	n := maxProcs * msgBlocksPerProc
	if min := 4 * maxLNVCs; n < min {
		n = min
	}
	if n < 64 {
		n = 64
	}
	return Config{BlockSize: blockSize, NumBlocks: n}
}

// Bytes returns the region size the configuration occupies — what a
// caller carving an arena out of a shared segment must reserve for
// NewAt. The +1 burns offset 0 so NilOffset stays unmistakably
// invalid.
func (cfg Config) Bytes() int64 {
	return int64(cfg.BlockSize) * int64(cfg.NumBlocks+1)
}

// New creates an arena over a fresh process-private region.
func New(cfg Config) (*Arena, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	return NewAt(cfg, make([]byte, cfg.Bytes()))
}

// NewAt creates an arena over caller-provided memory — the segment
// window that makes the region truly shared: point it at
// Segment.At(arenaOff, cfg.Bytes()) and every offset the arena hands
// out (message chains, loan spans, view payloads) is resolvable by any
// process that mapped the same segment. mem must be cfg.Bytes() long
// and zeroed (fresh segments are).
//
// Only the block *bytes* live in mem. The allocator's own state — the
// free bitmap, span lengths, the spinlock, waiter bookkeeping — stays
// in this process's heap: the arena has exactly one allocating owner
// (the serving parent), and attached peers only dereference offsets
// they were handed over a ring. See DESIGN.md §15 for why the
// single-allocator model is the right cut.
func NewAt(cfg Config, mem []byte) (*Arena, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	if int64(len(mem)) != cfg.Bytes() {
		return nil, fmt.Errorf("shm: arena region is %d bytes, config needs %d", len(mem), cfg.Bytes())
	}
	a := &Arena{
		mem:       mem,
		blockSize: int32(cfg.BlockSize),
		nBlocks:   int32(cfg.NumBlocks),
		spans:     cfg.Spans,
	}
	a.cond.init()
	if cfg.HugePages {
		a.huge.Requested = true
		a.huge.AdvisedBytes, a.huge.Err = AdviseHugeBytes(mem)
	}
	if a.spans {
		a.freeBits = make([]uint64, (cfg.NumBlocks+63)/64)
		for i := 0; i < cfg.NumBlocks; i++ {
			a.freeBits[i/64] |= 1 << (i % 64)
		}
		a.spanLen = make([]int32, cfg.NumBlocks)
		a.freeHead = NilOffset
	} else {
		// Thread the free list through the blocks, first block at offset
		// blockSize (offset 0 is reserved as NilOffset).
		a.freeHead = a.blockSize
		for i := int32(0); i < a.nBlocks; i++ {
			off := (i + 1) * a.blockSize
			next := off + a.blockSize
			if i == a.nBlocks-1 {
				next = NilOffset
			}
			a.setLink(off, next)
		}
	}
	a.nFree = a.nBlocks
	return a, nil
}

// check validates a configuration's block geometry.
func (cfg Config) check() error {
	if cfg.BlockSize < MinBlockSize {
		return fmt.Errorf("shm: block size %d below minimum %d", cfg.BlockSize, MinBlockSize)
	}
	if cfg.NumBlocks < 1 {
		return fmt.Errorf("shm: need at least 1 block, got %d", cfg.NumBlocks)
	}
	if cfg.Bytes() > 1<<31-1 {
		return fmt.Errorf("shm: region of %d bytes exceeds 2 GiB offset space", cfg.Bytes())
	}
	return nil
}

// Spans reports whether the arena runs in contiguous-span mode.
func (a *Arena) Spans() bool { return a.spans }

// BlockSize returns the configured block size including the link word.
func (a *Arena) BlockSize() int { return int(a.blockSize) }

// PayloadSize returns the usable payload bytes per block.
func (a *Arena) PayloadSize() int { return int(a.blockSize) - 4 }

// NumBlocks returns the total number of blocks in the region.
func (a *Arena) NumBlocks() int { return int(a.nBlocks) }

// FreeBlocks returns the current number of free blocks.
func (a *Arena) FreeBlocks() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int(a.nFree)
}

// Stats returns a snapshot of allocator statistics.
func (a *Arena) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// LockStats reports the free-pool lock's traffic: total acquisitions
// and the subset whose first attempt found the lock held. This is the
// number the batched payload plane amortises — a LoanBatch of k
// messages costs one acquisition here where k single loans cost k —
// and what mpfbench -loanbatch asserts on. Reading it takes no lock,
// so snapshots can bracket a measured interval without perturbing it
// (note that FreeBlocks and Stats each cost one acquisition).
func (a *Arena) LockStats() (acquisitions, contended uint64) {
	return a.mu.Stats()
}

// HugeStats reports the huge-page hint's outcome for this arena's
// region. Like LockStats it takes no lock: the fields are written once
// at creation.
func (a *Arena) HugeStats() HugeStats { return a.huge }

func (a *Arena) setLink(off, next int32) {
	binary.LittleEndian.PutUint32(a.mem[off:off+4], uint32(next))
}

func (a *Arena) link(off int32) int32 {
	return int32(binary.LittleEndian.Uint32(a.mem[off : off+4]))
}

// Alloc pops one block off the free list. It returns ErrOutOfBlocks when
// the region is exhausted.
func (a *Arena) Alloc() (int32, error) {
	a.mu.Lock()
	off, err := a.allocLocked()
	a.mu.Unlock()
	return off, err
}

func (a *Arena) allocLocked() (int32, error) {
	if a.spans {
		if a.nFree == 0 {
			a.stats.AllocFails++
			return NilOffset, ErrOutOfBlocks
		}
		idx := a.findFreeLocked()
		a.takeRunLocked(idx, 1)
		return a.offsetOf(idx), nil
	}
	if a.freeHead == NilOffset {
		a.stats.AllocFails++
		return NilOffset, ErrOutOfBlocks
	}
	off := a.freeHead
	a.freeHead = a.link(off)
	a.nFree--
	a.stats.Allocs++
	if used := a.nBlocks - a.nFree; used > a.stats.HighWater {
		a.stats.HighWater = used
	}
	return off, nil
}

// offsetOf converts a block index to its arena offset; blockIndex is the
// inverse. Block 0 lives at offset blockSize (offset 0 is NilOffset).
func (a *Arena) offsetOf(idx int32) int32   { return (idx + 1) * a.blockSize }
func (a *Arena) blockIndex(off int32) int32 { return off/a.blockSize - 1 }

// findFreeLocked returns the index of the lowest free block, scanning
// words from the lowFree bound and tightening it. The caller must have
// checked nFree > 0.
func (a *Arena) findFreeLocked() int32 {
	for w := int(a.lowFree / 64); w < len(a.freeBits); w++ {
		if a.freeBits[w] != 0 {
			idx := int32(w*64 + bits.TrailingZeros64(a.freeBits[w]))
			a.lowFree = idx
			return idx
		}
	}
	panic("shm: findFreeLocked with no free blocks")
}

// bestRunLocked scans for a run of want consecutive free blocks,
// starting at the lowFree bound (no free block exists below it). It
// returns the first such run immediately; failing that, the longest run
// found (length 0 when the region is exhausted).
func (a *Arena) bestRunLocked(want int32) (start, length int32) {
	var bestStart, bestLen, runStart, runLen int32
	first := true
	for i := a.lowFree &^ 63; i < a.nBlocks; {
		w := a.freeBits[i/64]
		if w == 0 && i%64 == 0 {
			// A whole empty word: the current run is over.
			if runLen > bestLen {
				bestStart, bestLen = runStart, runLen
			}
			runLen = 0
			i += 64
			continue
		}
		if w&(1<<(i%64)) != 0 {
			if first {
				// Lowest free block seen this scan: tighten the bound.
				a.lowFree = i
				first = false
			}
			if runLen == 0 {
				runStart = i
			}
			runLen++
			if runLen >= want {
				return runStart, runLen
			}
		} else {
			if runLen > bestLen {
				bestStart, bestLen = runStart, runLen
			}
			runLen = 0
		}
		i++
	}
	if runLen > bestLen {
		bestStart, bestLen = runStart, runLen
	}
	return bestStart, bestLen
}

// takeRunLocked marks blocks [start, start+k) allocated as one span.
func (a *Arena) takeRunLocked(start, k int32) {
	for i := start; i < start+k; i++ {
		if a.freeBits[i/64]&(1<<(i%64)) == 0 {
			panic(fmt.Sprintf("shm: takeRun of allocated block %d", i))
		}
		a.freeBits[i/64] &^= 1 << (i % 64)
	}
	a.spanLen[start] = k
	a.nFree -= k
	a.stats.Allocs += uint64(k)
	if used := a.nBlocks - a.nFree; used > a.stats.HighWater {
		a.stats.HighWater = used
	}
}

// freeSpanLocked returns the span starting at off to the bitmap.
func (a *Arena) freeSpanLocked(off int32) {
	idx := a.blockIndex(off)
	if idx < a.lowFree {
		a.lowFree = idx
	}
	k := a.spanLen[idx]
	if k < 1 {
		panic(fmt.Sprintf("shm: free of unallocated span at offset %d", off))
	}
	for i := idx; i < idx+k; i++ {
		if a.freeBits[i/64]&(1<<(i%64)) != 0 {
			panic(fmt.Sprintf("shm: double free of block %d", i))
		}
		a.freeBits[i/64] |= 1 << (i % 64)
	}
	a.spanLen[idx] = 0
	a.nFree += k
	a.stats.Frees += uint64(k)
}

// spanBlocksFor returns the blocks one contiguous span needs for n
// payload bytes: the span carries a single 4-byte link word however
// many blocks it covers.
func (a *Arena) spanBlocksFor(n int) int32 {
	if n <= 0 {
		return 1
	}
	return int32((n + 4 + int(a.blockSize) - 1) / int(a.blockSize))
}

// spanChainLocked builds a chain holding payload bytes from free runs:
// one contiguous span in the common case, several spans under
// fragmentation (greedy longest-run). The caller must hold the lock and
// have verified nFree >= BlocksFor(payload) — the fully-fragmented
// worst case — which guarantees success (see the demand invariant in
// AllocPayload).
func (a *Arena) spanChainLocked(payload int) (head, tail int32) {
	rem := payload
	head, tail = NilOffset, NilOffset
	for {
		want := a.spanBlocksFor(rem)
		start, length := a.bestRunLocked(want)
		if length == 0 {
			panic("shm: spanChainLocked underflow")
		}
		if length > want {
			length = want
		}
		a.takeRunLocked(start, length)
		off := a.offsetOf(start)
		a.setLink(off, NilOffset)
		if head == NilOffset {
			head = off
		} else {
			a.setLink(tail, off)
		}
		tail = off
		rem -= int(length)*int(a.blockSize) - 4
		if rem <= 0 {
			return head, tail
		}
	}
}

// AllocWait pops one block, blocking until one is available. It is the
// default message_send policy: the paper's region is fixed-size, so a
// sender that outruns its receivers must wait for blocks to be recycled.
// The stop channel aborts the wait (used at facility shutdown); a nil stop
// never aborts.
//
// Waiter accounting: each waiter owns its own registration — it
// increments waiters before sleeping and decrements after waking,
// whether woken or aborted. Wakers never touch the count; they only
// replace-and-close the channel when waiters > 0. This keeps the
// invariant "a sleeping waiter's channel is the current one and will be
// closed by the next free" without any reset/decrement interleavings
// that could strand a later waiter.
func (a *Arena) AllocWait(stop <-chan struct{}) (int32, error) {
	for {
		a.mu.Lock()
		off, err := a.allocLocked()
		if err == nil {
			a.mu.Unlock()
			return off, nil
		}
		a.stats.AllocBlocks++
		a.waiters++
		ch := a.cond.ch
		a.mu.Unlock()
		aborted := false
		select {
		case <-ch:
			// A free arrived (or a broadcast); retry.
		case <-stop:
			aborted = true
		}
		a.mu.Lock()
		a.waiters--
		a.mu.Unlock()
		if aborted {
			return NilOffset, ErrOutOfBlocks
		}
	}
}

// AllocChain allocates n blocks linked head→…→tail via their link words,
// returning the head offset. On failure nothing is leaked. wait selects
// between Alloc and AllocWait semantics.
func (a *Arena) AllocChain(n int, wait bool, stop <-chan struct{}) (int32, error) {
	if n <= 0 {
		return NilOffset, fmt.Errorf("shm: AllocChain of %d blocks", n)
	}
	var head, tail int32 = NilOffset, NilOffset
	for i := 0; i < n; i++ {
		var off int32
		var err error
		if wait {
			off, err = a.AllocWait(stop)
		} else {
			off, err = a.Alloc()
		}
		if err != nil {
			if head != NilOffset {
				a.FreeChain(head)
			}
			return NilOffset, err
		}
		a.setLink(off, NilOffset)
		if head == NilOffset {
			head = off
		} else {
			a.setLink(tail, off)
		}
		tail = off
	}
	return head, nil
}

// AllocChains allocates one chain per entry of ns — ns[i] blocks linked
// head→…→tail — in a single arena transaction: the free-list lock is
// taken once for the whole batch, not once per block or per chain. This
// is the allocator half of the batched send path: a SendBatch of k
// messages costs one lock acquisition here instead of the sum of the
// messages' block counts. Both endpoints of every chain are returned so
// callers building message headers need not re-walk the links. On
// failure nothing is leaked.
//
// With wait set, exhaustion blocks until the batch's full block demand
// can be met (stop aborts, as in AllocWait); the demand must not exceed
// the region or the call errors immediately instead of deadlocking.
func (a *Arena) AllocChains(ns []int, wait bool, stop <-chan struct{}) (heads, tails []int32, err error) {
	total := 0
	for _, n := range ns {
		if n <= 0 {
			return nil, nil, fmt.Errorf("shm: AllocChains chain of %d blocks", n)
		}
		total += n
	}
	if total == 0 {
		return nil, nil, nil
	}
	if total > int(a.nBlocks) {
		return nil, nil, fmt.Errorf("shm: AllocChains batch of %d blocks exceeds region of %d: %w",
			total, a.nBlocks, ErrOutOfBlocks)
	}
	for {
		a.mu.Lock()
		if int(a.nFree) >= total {
			heads = make([]int32, len(ns))
			tails = make([]int32, len(ns))
			for i, n := range ns {
				var head, tail int32 = NilOffset, NilOffset
				for j := 0; j < n; j++ {
					off, err := a.allocLocked()
					if err != nil {
						// Unreachable: nFree covers the batch.
						panic("shm: AllocChains underflow")
					}
					a.setLink(off, NilOffset)
					if head == NilOffset {
						head = off
					} else {
						a.setLink(tail, off)
					}
					tail = off
				}
				heads[i], tails[i] = head, tail
			}
			a.mu.Unlock()
			return heads, tails, nil
		}
		if !wait {
			a.stats.AllocFails++
			a.mu.Unlock()
			return nil, nil, ErrOutOfBlocks
		}
		a.stats.AllocBlocks++
		a.waiters++
		ch := a.cond.ch
		a.mu.Unlock()
		aborted := false
		select {
		case <-ch:
			// Frees arrived; retry the whole reservation.
		case <-stop:
			aborted = true
		}
		a.mu.Lock()
		a.waiters--
		a.mu.Unlock()
		if aborted {
			return nil, nil, ErrOutOfBlocks
		}
	}
}

// AllocPayload allocates a chain able to hold n payload bytes, returning
// both endpoints. In span mode the chain is one contiguous span whenever
// a long enough free run exists (several spans under fragmentation); in
// classic mode it is BlocksFor(n) linked blocks, allocated in a single
// free-list transaction. wait and stop have AllocWait's semantics,
// applied to the chain's worst-case block demand.
func (a *Arena) AllocPayload(n int, wait bool, stop <-chan struct{}) (head, tail int32, err error) {
	heads, tails, err := a.AllocPayloads([]int{n}, wait, stop)
	if err != nil {
		return NilOffset, NilOffset, err
	}
	return heads[0], tails[0], nil
}

// AllocPayloads is the batch form of AllocPayload: one chain per payload
// length in ns, all allocated under a single lock acquisition — the
// allocator half of the batched send path, span-aware. Either every
// chain is built or none is.
//
// The block demand used for capacity checks and the wait loop is the
// fully-fragmented worst case, BlocksFor(len): a span of L blocks holds
// L*blockSize-4 >= L*(blockSize-4) payload bytes, so once that demand is
// free the greedy span builder cannot run out.
func (a *Arena) AllocPayloads(ns []int, wait bool, stop <-chan struct{}) (heads, tails []int32, err error) {
	if !a.spans {
		blocks := make([]int, len(ns))
		for i, n := range ns {
			blocks[i] = a.BlocksFor(n)
		}
		return a.AllocChains(blocks, wait, stop)
	}
	total := int32(0)
	for _, n := range ns {
		if n < 0 {
			return nil, nil, fmt.Errorf("shm: AllocPayloads payload of %d bytes", n)
		}
		total += int32(a.BlocksFor(n))
	}
	if len(ns) == 0 {
		return nil, nil, nil
	}
	if total > a.nBlocks {
		return nil, nil, fmt.Errorf("shm: AllocPayloads batch of %d blocks exceeds region of %d: %w",
			total, a.nBlocks, ErrOutOfBlocks)
	}
	for {
		a.mu.Lock()
		if a.nFree >= total {
			heads = make([]int32, len(ns))
			tails = make([]int32, len(ns))
			for i, n := range ns {
				heads[i], tails[i] = a.spanChainLocked(n)
			}
			a.mu.Unlock()
			return heads, tails, nil
		}
		if !wait {
			a.stats.AllocFails++
			a.mu.Unlock()
			return nil, nil, ErrOutOfBlocks
		}
		a.stats.AllocBlocks++
		a.waiters++
		ch := a.cond.ch
		a.mu.Unlock()
		aborted := false
		select {
		case <-ch:
			// Frees arrived; retry the whole reservation.
		case <-stop:
			aborted = true
		}
		a.mu.Lock()
		a.waiters--
		a.mu.Unlock()
		if aborted {
			return nil, nil, ErrOutOfBlocks
		}
	}
}

// Free returns one block (or, in span mode, the whole span starting at
// off) to the free pool.
func (a *Arena) Free(off int32) {
	a.checkOffset(off)
	a.mu.Lock()
	if a.spans {
		a.freeSpanLocked(off)
		a.wakeAndUnlock()
		return
	}
	a.setLink(off, a.freeHead)
	a.freeHead = off
	a.nFree++
	a.stats.Frees++
	a.wakeAndUnlock()
}

// wakeAndUnlock releases the lock, waking block-pool waiters by
// replace-and-close only; waiters de-register themselves (see
// AllocWait), so a waiter aborting on stop can never consume another
// waiter's registration.
func (a *Arena) wakeAndUnlock() {
	if a.waiters > 0 {
		old := a.cond.ch
		a.cond.ch = make(chan struct{})
		a.mu.Unlock()
		close(old)
		return
	}
	a.mu.Unlock()
}

// FreeChain returns a linked chain (as built by AllocChain, AllocPayload
// or message assembly) to the free pool in one lock acquisition. In span
// mode each chain element is a span; its full run of blocks is returned.
// It is FreeChains for a single chain.
func (a *Arena) FreeChain(head int32) {
	a.FreeChains([]int32{head})
}

// FreeChains returns a whole batch of chains to the free pool in a
// single lock acquisition — the release half of the batched payload
// plane, mirroring AllocChains/AllocPayloads on the allocation side. A
// batched receive that consumed k messages (core's unpinAll, the
// selector's view harvest) pays one free-pool transaction here instead
// of k FreeChain calls. NilOffset entries are skipped, so callers can
// pass message heads verbatim.
func (a *Arena) FreeChains(heads []int32) {
	if len(heads) == 0 {
		return
	}
	if a.spans {
		// Collect every chain's element offsets outside the lock (the
		// link words are owned by the caller until the release); the
		// stack buffer covers typical batches without a heap allocation.
		var offsBuf [32]int32
		offs := offsBuf[:0]
		for _, head := range heads {
			if head == NilOffset {
				continue
			}
			for off := head; off != NilOffset; off = a.link(off) {
				a.checkOffset(off)
				offs = append(offs, off)
			}
		}
		if len(offs) == 0 {
			return
		}
		a.mu.Lock()
		for _, off := range offs {
			a.freeSpanLocked(off)
		}
		a.wakeAndUnlock()
		return
	}
	// Classic mode: find each chain's tail and length outside the lock,
	// then splice them all onto the free list under one acquisition.
	type chainEnd struct {
		head, tail int32
		n          int32
	}
	var endsBuf [16]chainEnd
	ends := endsBuf[:0]
	for _, head := range heads {
		if head == NilOffset {
			continue
		}
		a.checkOffset(head)
		n := int32(1)
		tail := head
		for {
			next := a.link(tail)
			if next == NilOffset {
				break
			}
			a.checkOffset(next)
			tail = next
			n++
		}
		ends = append(ends, chainEnd{head: head, tail: tail, n: n})
	}
	if len(ends) == 0 {
		return
	}
	a.mu.Lock()
	for _, c := range ends {
		a.setLink(c.tail, a.freeHead)
		a.freeHead = c.head
		a.nFree += c.n
		a.stats.Frees += uint64(c.n)
	}
	a.wakeAndUnlock()
}

// Next returns the block following off in a chain, or NilOffset.
func (a *Arena) Next(off int32) int32 {
	a.checkOffset(off)
	return a.link(off)
}

// SetNext links block off to next (next may be NilOffset).
func (a *Arena) SetNext(off, next int32) {
	a.checkOffset(off)
	if next != NilOffset {
		a.checkOffset(next)
	}
	a.setLink(off, next)
}

// Payload returns the payload bytes of the single block at off. The
// returned slice aliases the arena; the caller owns the block.
func (a *Arena) Payload(off int32) []byte {
	a.checkOffset(off)
	return a.mem[off+4 : off+a.blockSize]
}

// SegPayload returns the payload bytes of the chain element at off: the
// block's payload in classic mode, the whole span's in span mode (one
// 4-byte link word however many blocks the span covers). The returned
// slice aliases the arena; the caller owns the element. This is the
// segment accessor msg.View iterates.
func (a *Arena) SegPayload(off int32) []byte {
	a.checkOffset(off)
	k := int32(1)
	if a.spans {
		k = a.spanLen[a.blockIndex(off)]
		if k < 1 {
			panic(fmt.Sprintf("shm: SegPayload of unallocated span at offset %d", off))
		}
	}
	return a.mem[off+4 : off+k*a.blockSize]
}

// checkOffset panics if off is not a valid block offset. Offset bugs in a
// shared region are memory corruption; failing loudly is the only sane
// policy.
func (a *Arena) checkOffset(off int32) {
	if off < a.blockSize || off >= int32(len(a.mem)) || off%a.blockSize != 0 {
		panic(fmt.Sprintf("shm: invalid block offset %d (block size %d, region %d)", off, a.blockSize, len(a.mem)))
	}
}

// BlocksFor returns the number of blocks needed to hold n payload bytes.
// Zero-length messages still occupy one block so that the message exists
// in the FIFO.
func (a *Arena) BlocksFor(n int) int {
	if n <= 0 {
		return 1
	}
	p := a.PayloadSize()
	return (n + p - 1) / p
}

// WriteChain copies buf into the chain starting at head, returning the
// number of bytes written. The chain's payload capacity must cover buf.
func (a *Arena) WriteChain(head int32, buf []byte) int {
	written := 0
	off := head
	for written < len(buf) {
		if off == NilOffset {
			panic("shm: WriteChain ran out of blocks")
		}
		n := copy(a.SegPayload(off), buf[written:])
		written += n
		off = a.Next(off)
	}
	return written
}

// ReadChain copies length bytes from the chain starting at head into buf,
// returning the number of bytes copied (min of length and len(buf)).
func (a *Arena) ReadChain(head int32, length int, buf []byte) int {
	want := length
	if want > len(buf) {
		want = len(buf)
	}
	read := 0
	off := head
	for read < want {
		if off == NilOffset {
			panic("shm: ReadChain ran out of blocks")
		}
		p := a.SegPayload(off)
		remain := want - read
		if remain < len(p) {
			p = p[:remain]
		}
		read += copy(buf[read:], p)
		off = a.Next(off)
	}
	return read
}

// ChainLen walks a chain and returns its element count (segments, not
// blocks — the two differ in span mode). Intended for tests and
// invariant checks.
func (a *Arena) ChainLen(head int32) int {
	n := 0
	for off := head; off != NilOffset; off = a.Next(off) {
		n++
	}
	return n
}

// ChainBlocks walks a chain and returns the number of region blocks it
// occupies (span-aware). Intended for tests and invariant checks.
func (a *Arena) ChainBlocks(head int32) int {
	n := int32(0)
	for off := head; off != NilOffset; off = a.Next(off) {
		a.checkOffset(off)
		if a.spans {
			n += a.spanLen[a.blockIndex(off)]
		} else {
			n++
		}
	}
	return int(n)
}

// CheckFreeList verifies free-pool integrity: every free block is a valid
// offset, no block appears twice, and the count matches nFree (in span
// mode, that the bitmap population matches nFree). It is an O(nBlocks)
// diagnostic for tests.
func (a *Arena) CheckFreeList() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spans {
		n := int32(0)
		for i, w := range a.freeBits {
			if i == len(a.freeBits)-1 && a.nBlocks%64 != 0 {
				if w>>(a.nBlocks%64) != 0 {
					return fmt.Errorf("shm: free bitmap marks blocks beyond the region")
				}
			}
			n += int32(bits.OnesCount64(w))
		}
		if n != a.nFree {
			return fmt.Errorf("shm: free bitmap has %d blocks, counter says %d", n, a.nFree)
		}
		return nil
	}
	seen := make(map[int32]bool, a.nFree)
	n := int32(0)
	for off := a.freeHead; off != NilOffset; off = a.link(off) {
		if off < a.blockSize || off >= int32(len(a.mem)) || off%a.blockSize != 0 {
			return fmt.Errorf("shm: free list contains invalid offset %d", off)
		}
		if seen[off] {
			return fmt.Errorf("shm: free list cycle at offset %d", off)
		}
		seen[off] = true
		n++
		if n > a.nBlocks {
			return fmt.Errorf("shm: free list longer than region (%d blocks)", n)
		}
	}
	if n != a.nFree {
		return fmt.Errorf("shm: free list has %d blocks, counter says %d", n, a.nFree)
	}
	return nil
}
