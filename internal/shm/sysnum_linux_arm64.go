//go:build linux && arm64

package shm

// memfd_create postdates the frozen std syscall tables; its number is
// arch-specific.
const sysMemfdCreate = 279
