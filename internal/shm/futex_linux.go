//go:build linux

package shm

// The futex half of the cross-process waiter protocol. FUTEX_WAIT and
// FUTEX_WAKE operate on a 4-byte word; with the word living inside a
// MAP_SHARED segment (and without FUTEX_PRIVATE_FLAG) the kernel keys
// the wait queue by physical page, so a waiter in one process is woken
// by a poster in another — the cross-process replacement for the
// Go-level mutex/cond waiter lists that cannot leave their runtime.

import (
	"syscall"
	"time"
	"unsafe"
)

const (
	futexWaitOp = 0 // FUTEX_WAIT, shared (no FUTEX_PRIVATE_FLAG)
	futexWakeOp = 1 // FUTEX_WAKE, shared
)

// futexSupported reports whether futexWait really sleeps in the kernel
// (true here) or is the polling fallback (futex_stub.go).
const futexSupported = true

// futexWait blocks until the word at addr differs from val, a wakeup
// arrives, or the timeout (0 = none) expires. Spurious returns are
// allowed and expected — callers always re-check their predicate.
func futexWait(addr *uint32, val uint32, timeout time.Duration) {
	var tsp *syscall.Timespec
	if timeout > 0 {
		ts := syscall.NsecToTimespec(int64(timeout))
		tsp = &ts
	}
	// EAGAIN (word already changed), EINTR and ETIMEDOUT are all
	// normal: the caller's re-check loop handles every case.
	syscall.Syscall6(syscall.SYS_FUTEX,
		uintptr(unsafe.Pointer(addr)), futexWaitOp, uintptr(val),
		uintptr(unsafe.Pointer(tsp)), 0, 0)
}

// futexWake wakes up to n waiters sleeping on the word at addr,
// returning the number woken.
func futexWake(addr *uint32, n int) int {
	woken, _, _ := syscall.Syscall6(syscall.SYS_FUTEX,
		uintptr(unsafe.Pointer(addr)), futexWakeOp, uintptr(n), 0, 0, 0)
	return int(woken)
}
