//go:build linux && (amd64 || arm64)

package shm

import "syscall"

// madvMergeable et al. are irrelevant here; the only advice the arena
// issues is MADV_HUGEPAGE, asking the kernel to back the range with
// transparent huge pages so a multi-megabyte span region costs a
// handful of TLB entries instead of hundreds.
const madvHugepage = 14

// madviseSupported gates AdviseHuge's byte accounting: only report
// bytes as advised where the syscall actually exists.
const madviseSupported = true

// madviseHuge issues madvise(addr, length, MADV_HUGEPAGE) via the raw
// syscall, in the style of the memfd_create call in segment_linux.go.
// addr must be page-aligned (callers align to huge-page boundaries).
func madviseHuge(addr, length uintptr) error {
	_, _, errno := syscall.Syscall(sysMadvise, addr, length, madvHugepage)
	if errno != 0 {
		return errno
	}
	return nil
}
