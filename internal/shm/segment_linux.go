//go:build linux && (amd64 || arm64)

package shm

// The Linux shared backend: memfd_create + mmap(MAP_SHARED). A memfd
// is an anonymous file living entirely in page cache — exactly the
// "region of physical memory" the paper maps into every process, with
// the file descriptor as its capability. The parent creates and sizes
// it, children receive the fd over a unix socket (handshake_linux.go)
// and map the same pages at whatever base address their own mmap picks;
// offset addressing (the arena's int32 offsets, the table and ring
// offsets in the handshake) makes the differing bases invisible.
//
// The raw syscall numbers are spelled out per-arch (sysnum_linux_*.go)
// because memfd_create postdates the frozen syscall package tables and
// the module deliberately has no external dependencies.

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

const mfdCloexec = 0x1 // MFD_CLOEXEC

type memfdFile struct {
	f *os.File
}

func (m *memfdFile) Fd() uintptr { return m.f.Fd() }
func (m *memfdFile) Close() error {
	return m.f.Close()
}

// NewSharedSegment creates a memfd-backed segment of the given size,
// mapped MAP_SHARED into this process. name labels the fd in
// /proc/self/fd for debugging only.
func NewSharedSegment(name string, size int64) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("shm: segment of %d bytes", size)
	}
	cname, err := syscall.BytePtrFromString(name)
	if err != nil {
		return nil, err
	}
	fd, _, errno := syscall.Syscall(sysMemfdCreate, uintptr(unsafe.Pointer(cname)), mfdCloexec, 0)
	if errno != 0 {
		return nil, fmt.Errorf("shm: memfd_create: %w", errno)
	}
	f := os.NewFile(fd, "memfd:"+name)
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: sizing memfd segment: %w", err)
	}
	return mapSegment(f, size)
}

// AttachSharedSegment maps an already-created segment from its file
// descriptor — the child half of the fd-passing handshake. The segment
// size is read from the file itself; the handshake's size field is
// checked against it by the caller. AttachSharedSegment takes
// ownership of f (Close unmaps and closes it).
func AttachSharedSegment(f *os.File) (*Segment, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("shm: sizing attached segment: %w", err)
	}
	if st.Size() <= 0 {
		return nil, fmt.Errorf("shm: attached segment has size %d", st.Size())
	}
	return mapSegment(f, st.Size())
}

func mapSegment(f *os.File, size int64) (*Segment, error) {
	mem, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: mapping segment: %w", err)
	}
	return &Segment{mem: mem, kind: MemfdSegment, osFile: &memfdFile{f: f}}, nil
}

// File returns the backing memfd for fd passing, or nil for heap
// segments.
func (s *Segment) File() *os.File {
	if m, ok := s.osFile.(*memfdFile); ok {
		return m.f
	}
	return nil
}

func (s *Segment) unmap() error {
	mem := s.mem
	s.mem = nil
	return syscall.Munmap(mem)
}
