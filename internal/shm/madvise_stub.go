//go:build !linux || (!amd64 && !arm64)

package shm

// madviseHuge is a no-op where madvise (or this port's raw-syscall
// plumbing) is unavailable: the huge-page hint is advisory, so the
// portable behaviour is simply not to hint.
func madviseHuge(addr, length uintptr) error { return nil }

// madviseSupported gates AdviseHuge's byte accounting: only report
// bytes as advised where the syscall actually exists.
const madviseSupported = false
