//go:build linux && amd64

package shm

// memfd_create postdates the frozen std syscall tables; its number is
// arch-specific.
const sysMemfdCreate = 319

// madvise is in the frozen tables, but keeping the raw number beside
// memfd_create keeps every direct syscall this package makes in one
// per-arch file.
const sysMadvise = 28
