package shm

import (
	"errors"
	"testing"
	"time"
)

func TestAllocChainsOneTransaction(t *testing.T) {
	a, err := New(Config{BlockSize: 16, NumBlocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	heads, tails, err := a.AllocChains([]int{3, 1, 5}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(heads) != 3 {
		t.Fatalf("%d heads, want 3", len(heads))
	}
	for i, want := range []int{3, 1, 5} {
		if got := a.ChainLen(heads[i]); got != want {
			t.Errorf("chain %d has %d blocks, want %d", i, got, want)
		}
		end := heads[i]
		for next := a.Next(end); next != NilOffset; next = a.Next(end) {
			end = next
		}
		if tails[i] != end {
			t.Errorf("chain %d tail = %d, want chain end %d", i, tails[i], end)
		}
	}
	if free := a.FreeBlocks(); free != 32-9 {
		t.Errorf("%d blocks free, want %d", free, 32-9)
	}
	for _, h := range heads {
		a.FreeChain(h)
	}
	if free := a.FreeBlocks(); free != 32 {
		t.Errorf("%d blocks free after FreeChain, want 32", free)
	}
	if err := a.CheckFreeList(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocChainsAllOrNothing(t *testing.T) {
	a, err := New(Config{BlockSize: 16, NumBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Demand exceeding the free count (but not the region) fails without
	// allocating anything.
	if _, _, err := a.AllocChains([]int{5, 4}, false, nil); !errors.Is(err, ErrOutOfBlocks) {
		t.Fatalf("err = %v, want ErrOutOfBlocks", err)
	}
	if free := a.FreeBlocks(); free != 8 {
		t.Errorf("failed batch leaked: %d blocks free, want 8", free)
	}
	// Demand exceeding the whole region fails even with wait set —
	// waiting could never succeed.
	if _, _, err := a.AllocChains([]int{9}, true, nil); !errors.Is(err, ErrOutOfBlocks) {
		t.Fatalf("oversized wait: err = %v, want ErrOutOfBlocks", err)
	}
	// Zero-length batch is a no-op.
	heads, tails, err := a.AllocChains(nil, false, nil)
	if err != nil || heads != nil || tails != nil {
		t.Errorf("empty batch: %v, %v", heads, err)
	}
	// Non-positive chain length is rejected.
	if _, _, err := a.AllocChains([]int{2, 0}, false, nil); err == nil {
		t.Error("chain of 0 blocks accepted")
	}
}

func TestAllocChainsWaitsForFrees(t *testing.T) {
	a, err := New(Config{BlockSize: 16, NumBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	held, _, err := a.AllocChains([]int{3}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []int32, 1)
	go func() {
		heads, _, err := a.AllocChains([]int{3}, true, nil)
		if err != nil {
			done <- nil
			return
		}
		done <- heads
	}()
	select {
	case <-done:
		t.Fatal("AllocChains returned before blocks were freed")
	case <-time.After(30 * time.Millisecond):
	}
	a.FreeChain(held[0])
	select {
	case heads := <-done:
		if heads == nil {
			t.Fatal("waiting AllocChains failed")
		}
		if got := a.ChainLen(heads[0]); got != 3 {
			t.Errorf("chain has %d blocks, want 3", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AllocChains did not wake after FreeChain")
	}
}

func TestAllocChainsStopAborts(t *testing.T) {
	a, err := New(Config{BlockSize: 16, NumBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.AllocChains([]int{2}, false, nil); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := a.AllocChains([]int{1}, true, stop)
		done <- err
	}()
	close(stop)
	select {
	case err := <-done:
		if !errors.Is(err, ErrOutOfBlocks) {
			t.Errorf("err = %v, want ErrOutOfBlocks", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stop did not abort the wait")
	}
}
