package shm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func mustArena(t *testing.T, blockSize, nBlocks int) *Arena {
	t.Helper()
	a, err := New(Config{BlockSize: blockSize, NumBlocks: nBlocks})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{BlockSize: 4, NumBlocks: 10}); err == nil {
		t.Error("block size 4 accepted; link word leaves no payload")
	}
	if _, err := New(Config{BlockSize: 64, NumBlocks: 0}); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := New(Config{BlockSize: 1 << 20, NumBlocks: 1 << 12}); err == nil {
		t.Error("region over 2 GiB accepted")
	}
}

func TestPaperBlockSizeWorks(t *testing.T) {
	// The paper ran with 10-byte blocks; they must be usable.
	a := mustArena(t, 10, 32)
	if got := a.PayloadSize(); got != 6 {
		t.Fatalf("PayloadSize = %d, want 6", got)
	}
	off, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(a.Payload(off), []byte("abcdef"))
	if !bytes.Equal(a.Payload(off), []byte("abcdef")) {
		t.Fatal("payload roundtrip failed")
	}
	a.Free(off)
}

func TestAllocExhaustionAndRecycle(t *testing.T) {
	const n = 8
	a := mustArena(t, 16, n)
	offs := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		off, err := a.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		offs = append(offs, off)
	}
	if _, err := a.Alloc(); err != ErrOutOfBlocks {
		t.Fatalf("alloc past capacity: err = %v, want ErrOutOfBlocks", err)
	}
	if got := a.FreeBlocks(); got != 0 {
		t.Fatalf("FreeBlocks = %d, want 0", got)
	}
	for _, off := range offs {
		a.Free(off)
	}
	if got := a.FreeBlocks(); got != n {
		t.Fatalf("FreeBlocks after recycle = %d, want %d", got, n)
	}
	if err := a.CheckFreeList(); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetsDistinctAndAligned(t *testing.T) {
	a := mustArena(t, 32, 50)
	seen := make(map[int32]bool)
	for i := 0; i < 50; i++ {
		off, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if off == NilOffset {
			t.Fatal("Alloc returned NilOffset without error")
		}
		if off%32 != 0 {
			t.Fatalf("offset %d not block-aligned", off)
		}
		if seen[off] {
			t.Fatalf("offset %d returned twice", off)
		}
		seen[off] = true
	}
}

func TestChainWriteRead(t *testing.T) {
	a := mustArena(t, 16, 64) // 12-byte payloads
	msg := make([]byte, 100)
	rand.New(rand.NewSource(1)).Read(msg)

	n := a.BlocksFor(len(msg))
	if want := (100 + 11) / 12; n != want {
		t.Fatalf("BlocksFor(100) = %d, want %d", n, want)
	}
	head, err := a.AllocChain(n, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.ChainLen(head); got != n {
		t.Fatalf("ChainLen = %d, want %d", got, n)
	}
	if w := a.WriteChain(head, msg); w != len(msg) {
		t.Fatalf("WriteChain wrote %d, want %d", w, len(msg))
	}
	out := make([]byte, len(msg))
	if r := a.ReadChain(head, len(msg), out); r != len(msg) {
		t.Fatalf("ReadChain read %d, want %d", r, len(msg))
	}
	if !bytes.Equal(out, msg) {
		t.Fatal("chain roundtrip corrupted data")
	}
	a.FreeChain(head)
	if got := a.FreeBlocks(); got != 64 {
		t.Fatalf("FreeBlocks after FreeChain = %d, want 64", got)
	}
}

func TestReadChainShortBuffer(t *testing.T) {
	a := mustArena(t, 16, 8)
	msg := []byte("hello, world — truncate me")
	head, err := a.AllocChain(a.BlocksFor(len(msg)), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.WriteChain(head, msg)
	out := make([]byte, 5)
	if r := a.ReadChain(head, len(msg), out); r != 5 {
		t.Fatalf("ReadChain into short buffer read %d, want 5", r)
	}
	if string(out) != "hello" {
		t.Fatalf("truncated read = %q, want %q", out, "hello")
	}
	a.FreeChain(head)
}

func TestAllocChainFailureLeaksNothing(t *testing.T) {
	a := mustArena(t, 16, 4)
	if _, err := a.AllocChain(5, false, nil); err != ErrOutOfBlocks {
		t.Fatalf("err = %v, want ErrOutOfBlocks", err)
	}
	if got := a.FreeBlocks(); got != 4 {
		t.Fatalf("FreeBlocks = %d after failed AllocChain, want 4 (leak)", got)
	}
	if err := a.CheckFreeList(); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksForZeroLength(t *testing.T) {
	a := mustArena(t, 16, 4)
	if got := a.BlocksFor(0); got != 1 {
		t.Fatalf("BlocksFor(0) = %d, want 1 (zero-length messages occupy a block)", got)
	}
}

func TestAllocWaitWakesOnFree(t *testing.T) {
	a := mustArena(t, 16, 1)
	off, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int32, 1)
	go func() {
		o, err := a.AllocWait(nil)
		if err != nil {
			t.Error(err)
		}
		got <- o
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("AllocWait returned before any block was freed")
	default:
	}
	a.Free(off)
	select {
	case o := <-got:
		if o != off {
			t.Fatalf("AllocWait returned %d, want recycled block %d", o, off)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AllocWait never woke after Free")
	}
}

func TestAllocWaitStop(t *testing.T) {
	a := mustArena(t, 16, 1)
	if _, err := a.Alloc(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := a.AllocWait(stop)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case err := <-errc:
		if err != ErrOutOfBlocks {
			t.Fatalf("aborted AllocWait err = %v, want ErrOutOfBlocks", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AllocWait did not abort on stop")
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := mustArena(t, 16, 128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			held := make([]int32, 0, 16)
			for i := 0; i < 3000; i++ {
				if len(held) > 0 && (rng.Intn(2) == 0 || len(held) >= 16) {
					k := rng.Intn(len(held))
					a.Free(held[k])
					held = append(held[:k], held[k+1:]...)
				} else {
					off, err := a.AllocWait(nil)
					if err != nil {
						t.Error(err)
						return
					}
					// Scribble on the payload to catch aliasing with
					// another goroutine's block.
					p := a.Payload(off)
					for j := range p {
						p[j] = byte(seed)
					}
					held = append(held, off)
				}
			}
			for _, off := range held {
				p := a.Payload(off)
				for j := range p {
					if p[j] != byte(seed) {
						t.Errorf("payload of held block scribbled by another goroutine")
						break
					}
				}
				a.Free(off)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := a.FreeBlocks(); got != 128 {
		t.Fatalf("FreeBlocks = %d after all frees, want 128", got)
	}
	if err := a.CheckFreeList(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsHighWater(t *testing.T) {
	a := mustArena(t, 16, 8)
	var offs []int32
	for i := 0; i < 5; i++ {
		off, _ := a.Alloc()
		offs = append(offs, off)
	}
	for _, o := range offs {
		a.Free(o)
	}
	st := a.Stats()
	if st.HighWater != 5 {
		t.Fatalf("HighWater = %d, want 5", st.HighWater)
	}
	if st.Allocs != 5 || st.Frees != 5 {
		t.Fatalf("Allocs/Frees = %d/%d, want 5/5", st.Allocs, st.Frees)
	}
}

func TestSizeFor(t *testing.T) {
	cfg := SizeFor(16, 20, 64, 128)
	if cfg.BlockSize != 64 {
		t.Fatalf("BlockSize = %d, want 64", cfg.BlockSize)
	}
	if cfg.NumBlocks != 20*128 {
		t.Fatalf("NumBlocks = %d, want %d", cfg.NumBlocks, 20*128)
	}
	// Tiny inputs still produce a usable arena.
	cfg = SizeFor(1, 1, 1, 0)
	if cfg.BlockSize < MinBlockSize || cfg.NumBlocks < 64 {
		t.Fatalf("SizeFor floor violated: %+v", cfg)
	}
}

func TestInvalidOffsetPanics(t *testing.T) {
	a := mustArena(t, 16, 4)
	for _, off := range []int32{NilOffset, 7, 16 * 100, -16} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Payload(%d) did not panic", off)
				}
			}()
			a.Payload(off)
		}()
	}
}

// Property: for any message, writing it through a chain and reading it back
// yields the original bytes, for a spread of block sizes.
func TestQuickChainRoundtrip(t *testing.T) {
	a8 := mustArena(t, 8, 2048)
	a10 := mustArena(t, 10, 2048)
	a64 := mustArena(t, 64, 512)
	f := func(msg []byte) bool {
		if len(msg) > 4096 {
			msg = msg[:4096]
		}
		for _, a := range []*Arena{a8, a10, a64} {
			head, err := a.AllocChain(a.BlocksFor(len(msg)), false, nil)
			if err != nil {
				return false
			}
			a.WriteChain(head, msg)
			out := make([]byte, len(msg))
			a.ReadChain(head, len(msg), out)
			ok := bytes.Equal(out, msg)
			a.FreeChain(head)
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any interleaving of allocs and frees conserves blocks.
func TestQuickConservation(t *testing.T) {
	f := func(ops []bool) bool {
		a, err := New(Config{BlockSize: 16, NumBlocks: 32})
		if err != nil {
			return false
		}
		var held []int32
		for _, alloc := range ops {
			if alloc {
				off, err := a.Alloc()
				if err == nil {
					held = append(held, off)
				}
			} else if len(held) > 0 {
				a.Free(held[len(held)-1])
				held = held[:len(held)-1]
			}
		}
		if a.FreeBlocks()+len(held) != 32 {
			return false
		}
		return a.CheckFreeList() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a, _ := New(Config{BlockSize: 64, NumBlocks: 1024})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off, _ := a.Alloc()
		a.Free(off)
	}
}

func BenchmarkChainRoundtrip1K(b *testing.B) {
	a, _ := New(Config{BlockSize: 64, NumBlocks: 1024})
	msg := make([]byte, 1024)
	out := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		head, _ := a.AllocChain(a.BlocksFor(len(msg)), false, nil)
		a.WriteChain(head, msg)
		a.ReadChain(head, len(msg), out)
		a.FreeChain(head)
	}
}
