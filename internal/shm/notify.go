package shm

// NotifyWord: the cross-process event counter. Two 4-byte protocol
// words live side by side inside the segment — an event count and a
// sleeper count. Post increments the count and issues one FUTEX_WAKE
// only when a peer is actually asleep; Wait spins briefly on the count
// (the message-rate case: the counterpart runs on another core and the
// next event is nanoseconds away), registers as a sleeper, re-checks,
// and then sleeps in the kernel via FUTEX_WAIT until the count moves.
// This is the process-boundary analogue of the Ring.SetNotify
// readiness hook and the per-circuit waiter lists of PR 2/4: one wake
// per publish or batch at most, none when the consumer keeps up, no
// thundering herd, and no Go runtime shared between waiter and waker.
//
// The registration/re-check dance is the classic futex protocol: both
// sides' accesses are sequentially consistent atomics, so either the
// waiter's post-registration re-check observes the new count, or the
// poster's waiter-count load observes the registration — a wakeup can
// not fall between the cracks. Kernel sleeps are additionally bounded
// (notifySleepSlice) so a peer killed mid-publish degrades to a
// periodic re-check instead of a hang.

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// NotifyBytes is a NotifyWord's in-segment footprint: the event count
// on one cache line and the sleeper count on the next. The two words
// used to sit side by side, but they have disjoint writers — the
// poster bumps the count, waiters bump the sleeper registration — so
// packing them made every registration invalidate the poster's line
// and vice versa. Two lines remove that false sharing.
const NotifyBytes = 128

// notifySleeperOff is the sleeper word's offset inside a NotifyWord's
// footprint: one cache line past the event count.
const notifySleeperOff = 64

// notifySpin is the optimistic spin budget before a waiter sleeps in
// the kernel. Gosched every few iterations keeps a same-process
// counterpart runnable (in-process tests, the heap fallback); across
// processes the spin is pure cache-line polling.
const notifySpin = 192

// notifySleepSlice bounds one kernel sleep so a lost wakeup (a peer
// killed between publish and wake) degrades to a periodic re-check
// instead of a hang. Waiters re-validate their predicate every slice.
const notifySleepSlice = 2 * time.Millisecond

// WaitStats counts a handle's activity on one NotifyWord (the handle
// is process-local; the words are shared). Polls is the number of spin
// iterations that found no progress, Sleeps the number of kernel
// waits, Wakes the number of FUTEX_WAKE syscalls actually issued.
// Polls/Sleeps per delivered message are the busy-spin metrics the
// cross-process ablation records.
type WaitStats struct {
	Polls  uint64
	Sleeps uint64
	Wakes  uint64
}

// NotifyWord is a handle onto a shared event-count word pair. Handles
// onto the same offset share the words but not the stats.
type NotifyWord struct {
	w        *atomic.Uint32 // event count
	sleepers *atomic.Uint32 // registered kernel sleepers
	stats    *WaitStats
}

// NotifyAt binds a handle to the NotifyBytes-sized word pair at off
// (4-aligned; 64-align it so each word owns its line outright).
func NotifyAt(seg *Segment, off int64) *NotifyWord {
	return &NotifyWord{
		w:        seg.Atomic32(off),
		sleepers: seg.Atomic32(off + notifySleeperOff),
		stats:    &WaitStats{},
	}
}

// Load returns the current event count, the token Wait resumes from.
func (n *NotifyWord) Load() uint32 { return n.w.Load() }

// Post publishes one event: increment the count, then one FUTEX_WAKE —
// and only if a peer is registered asleep, so the syscall vanishes
// entirely while the consumer keeps up. A Post after k ring pushes is
// still at most one wake: the batch-friendly shape.
func (n *NotifyWord) Post() {
	n.w.Add(1)
	if n.sleepers.Load() != 0 {
		atomic.AddUint64(&n.stats.Wakes, 1)
		futexWake((*uint32)(addrOf(n.w)), 1<<30)
	}
}

// Wait blocks until the count differs from old, returning the new
// value: spin first, then FUTEX_WAIT in bounded slices. The deadline
// (zero time = none) bounds the total wait; on expiry the current
// count is returned with ok=false — callers re-check their predicate
// either way, exactly as with any condition variable.
func (n *NotifyWord) Wait(old uint32, deadline time.Time) (v uint32, ok bool) {
	for i := 0; i < notifySpin; i++ {
		if v := n.w.Load(); v != old {
			return v, true
		}
		atomic.AddUint64(&n.stats.Polls, 1)
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
	for {
		// Register, then re-check: sequential consistency guarantees
		// the poster either sees the registration or we see its count.
		n.sleepers.Add(1)
		if v := n.w.Load(); v != old {
			n.sleepers.Add(^uint32(0))
			return v, true
		}
		slice := notifySleepSlice
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if remain <= 0 {
				n.sleepers.Add(^uint32(0))
				return n.w.Load(), false
			}
			if remain < slice {
				slice = remain
			}
		}
		atomic.AddUint64(&n.stats.Sleeps, 1)
		futexWait((*uint32)(addrOf(n.w)), old, slice)
		n.sleepers.Add(^uint32(0))
		if v := n.w.Load(); v != old {
			return v, true
		}
	}
}

// Stats snapshots this handle's waiter counters.
func (n *NotifyWord) Stats() WaitStats {
	return WaitStats{
		Polls:  atomic.LoadUint64(&n.stats.Polls),
		Sleeps: atomic.LoadUint64(&n.stats.Sleeps),
		Wakes:  atomic.LoadUint64(&n.stats.Wakes),
	}
}

// addrOf recovers the raw word address the futex syscalls need.
// atomic.Uint32 is its uint32 plus zero-size alignment guards, so the
// struct address is the word address.
func addrOf(w *atomic.Uint32) unsafe.Pointer { return unsafe.Pointer(w) }
