//go:build linux && arm64

package affinity

// Raw syscall numbers, kept per-arch in the style of shm's memfd
// plumbing: the std syscall tables are frozen, and the sched_*affinity
// wrappers there want the x/sys types this module deliberately avoids.
const (
	sysSchedSetaffinity = 122
	sysSchedGetaffinity = 123
)
