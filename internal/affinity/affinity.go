// Package affinity pins goroutines and processes to CPU cores.
//
// The facility's hot paths are pairs of threads spinning on shared
// cache lines — a producer bumping a ring tail and a consumer polling
// it, a poster and a sleeper on a futex word. When the scheduler
// migrates one of the pair, every hot line it owned must be re-fetched
// from the old core's cache, and the optimistic spin windows (ring
// waits, selector parking, notify spins) are retuned against a cold
// cache. Pinning each side of a pair to a fixed core removes the
// migrations; pinning the sides to *distinct* cores keeps the
// line-bouncing window honest (same-core pairs serialise through the
// scheduler instead).
//
// The package is deliberately tiny and advisory: on linux amd64/arm64
// it speaks sched_setaffinity/sched_getaffinity via raw syscalls (in
// the style of shm's memfd_create plumbing); everywhere else every
// call is a successful no-op so callers need no build tags. Real
// pinning can still fail at runtime — containerised CI commonly
// restricts the cpuset — and callers must treat an error as "run
// unpinned", never as fatal.
package affinity

import "runtime"

// Supported reports whether this platform can actually pin (linux
// amd64/arm64). Benches use it to label pinned-vs-floating legs as
// skipped rather than measured-identical.
func Supported() bool { return supported }

// PinThread locks the calling goroutine to its OS thread and restricts
// that thread to the single CPU cpu (taken modulo the machine's CPU
// count, so callers can pass a plain worker index). It returns a
// restore function that reinstates the thread's previous CPU mask and
// unlocks the goroutine.
//
// On unsupported platforms PinThread succeeds as a no-op. On supported
// ones it can still fail (a container's cpuset may exclude the chosen
// CPU, or forbid the call outright); the goroutine is left unlocked
// and unpinned, and the caller should proceed unpinned.
func PinThread(cpu int) (restore func(), err error) {
	if n := runtime.NumCPU(); n > 0 {
		cpu %= n
		if cpu < 0 {
			cpu += n
		}
	}
	return pinThread(cpu)
}

// PinPID restricts the OS process pid (typically a freshly spawned
// child) to the single CPU cpu, modulo the machine's CPU count. Like
// PinThread it is advisory: a no-op off linux, and an error — not a
// panic — when the runner's cpuset forbids it.
func PinPID(pid, cpu int) error {
	if n := runtime.NumCPU(); n > 0 {
		cpu %= n
		if cpu < 0 {
			cpu += n
		}
	}
	return pinPID(pid, cpu)
}

// AllowedCPUs returns the number of CPUs in the calling thread's
// current affinity mask, or 0 when the platform cannot tell. It exists
// so tests and the bench can verify a pin actually narrowed the mask.
func AllowedCPUs() int { return allowedCPUs() }
