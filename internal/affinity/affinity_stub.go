//go:build !linux || (!amd64 && !arm64)

package affinity

const supported = false

// The stubs succeed as no-ops so callers stay free of build tags; only
// Supported/AllowedCPUs reveal that nothing was pinned.

func pinThread(cpu int) (func(), error) { return func() {}, nil }

func pinPID(pid, cpu int) error { return nil }

func allowedCPUs() int { return 0 }
