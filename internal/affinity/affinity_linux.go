//go:build linux && (amd64 || arm64)

package affinity

import (
	"fmt"
	"math/bits"
	"runtime"
	"syscall"
	"unsafe"
)

const supported = true

// cpuMask is a kernel cpu_set_t large enough for 1024 CPUs — the
// kernel copies exactly the byte length we pass, so a fixed size is
// fine as long as it covers the machine.
type cpuMask [16]uint64

func getaffinity(pid int, m *cpuMask) error {
	// sched_getaffinity returns the mask size on success; only errno
	// matters here.
	_, _, errno := syscall.Syscall(sysSchedGetaffinity,
		uintptr(pid), unsafe.Sizeof(*m), uintptr(unsafe.Pointer(m)))
	if errno != 0 {
		return fmt.Errorf("affinity: sched_getaffinity(%d): %w", pid, errno)
	}
	return nil
}

func setaffinity(pid int, m *cpuMask) error {
	_, _, errno := syscall.Syscall(sysSchedSetaffinity,
		uintptr(pid), unsafe.Sizeof(*m), uintptr(unsafe.Pointer(m)))
	if errno != 0 {
		return fmt.Errorf("affinity: sched_setaffinity(%d): %w", pid, errno)
	}
	return nil
}

func maskFor(cpu int) *cpuMask {
	var m cpuMask
	m[(cpu/64)%len(m)] |= 1 << (cpu % 64)
	return &m
}

func pinThread(cpu int) (func(), error) {
	// The pin is a property of the OS thread, so the goroutine must
	// stay wedded to it for the pin's lifetime.
	runtime.LockOSThread()
	var old cpuMask
	if err := getaffinity(0, &old); err != nil {
		runtime.UnlockOSThread()
		return nil, err
	}
	if err := setaffinity(0, maskFor(cpu)); err != nil {
		// EINVAL when the cpuset excludes the chosen CPU, EPERM when
		// the call is forbidden outright; either way the caller runs
		// unpinned.
		runtime.UnlockOSThread()
		return nil, err
	}
	return func() {
		setaffinity(0, &old)
		runtime.UnlockOSThread()
	}, nil
}

func pinPID(pid, cpu int) error {
	return setaffinity(pid, maskFor(cpu))
}

func allowedCPUs() int {
	var m cpuMask
	if err := getaffinity(0, &m); err != nil {
		return 0
	}
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}
