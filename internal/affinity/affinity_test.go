package affinity

import (
	"runtime"
	"testing"
)

// TestPinThread pins the calling goroutine to CPU 0, verifies the mask
// narrowed to one CPU, and verifies restore widens it again. Runners
// whose cpuset forbids pinning skip rather than fail — the same
// graceful degradation the bench's pinned leg promises.
func TestPinThread(t *testing.T) {
	if !Supported() {
		restore, err := PinThread(0)
		if err != nil {
			t.Fatalf("stub PinThread must be a successful no-op, got %v", err)
		}
		restore()
		return
	}
	before := AllowedCPUs()
	if before == 0 {
		t.Skip("cannot read this thread's affinity mask")
	}
	restore, err := PinThread(0)
	if err != nil {
		t.Skipf("pinning restricted on this runner: %v", err)
	}
	if got := AllowedCPUs(); got != 1 {
		restore()
		t.Fatalf("pinned mask has %d CPUs, want 1", got)
	}
	restore()
	if got := AllowedCPUs(); got != before {
		t.Fatalf("restored mask has %d CPUs, want %d", got, before)
	}
}

// TestPinThreadModulo checks worker indexes beyond the CPU count wrap
// instead of erroring: pinning is meant to accept plain pid/slot
// numbers.
func TestPinThreadModulo(t *testing.T) {
	restore, err := PinThread(runtime.NumCPU() + 1)
	if err != nil {
		if !Supported() {
			t.Fatalf("stub PinThread must be a successful no-op, got %v", err)
		}
		t.Skipf("pinning restricted on this runner: %v", err)
	}
	restore()
}
