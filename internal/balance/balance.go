// Package balance models the machine the paper evaluated on: a Sequent
// Balance 21000 with 20 processors and 16 Mbytes of memory (paper §4).
//
// Each processor is a 10 MHz National Semiconductor NS32032; all
// processors share an 80 Mbyte/s bus; each has an 8 Kbyte write-through
// cache. The model is a small set of calibrated per-operation costs used
// by internal/simmpf when replaying the MPF protocol on the
// internal/sim kernel. Calibration targets the paper's own headline
// numbers rather than first-principles cycle counts:
//
//   - base loop-back throughput asymptote ≈ 25,000 bytes/s (Figure 3):
//     per-byte cost 2×(CopyPerByte + BlockHandling/paper-block-payload)
//     = 40 µs/byte.
//   - fcfs 1024-byte plateau ≈ 45-50 Kbyte/s (Figure 4): one send-side
//     copy at 20 µs/byte plus ≈1 ms of fixed overhead per message.
//   - broadcast 1024 B × 16 receivers ≈ 687,245 bytes/s (Figure 5):
//     16 concurrent receive-side copies at the sender's rate, shaved by
//     LNVC lock contention.
//   - software floating point at ≈150 µs/flop (the NS32032 had no
//     on-chip FPU), which produces the Figure 7/8 application speedups.
//
// The paging model reproduces Figure 6's decline: the benchmark's
// mapped region plus per-process images exceed physical memory beyond
// ≈10 processes at 1024-byte messages (≈18-20 at 256 bytes), after which
// copy costs inflate.
package balance

// Machine holds the hardware parameters and calibrated software costs.
// All times are in seconds, rates in bytes/second.
type Machine struct {
	// Hardware description (paper §4).
	NumCPUs  int
	CPUHz    float64
	MemBytes float64
	BusRate  float64 // shared-bus transfer rate, bytes/s
	PageSize int

	// MPF software costs (calibrated, see package comment).
	OpFixed       float64 // per message_send/message_receive fixed cost outside the lock
	DescUpdate    float64 // descriptor update while holding the LNVC lock
	LockOverhead  float64 // acquiring+releasing an uncontended lock
	CopyPerByte   float64 // one copy, per payload byte
	BlockHandling float64 // alloc/free/link, per message block
	BlockPayload  int     // usable bytes per message block (paper: 10-byte blocks)

	// Application compute cost.
	FlopTime float64 // one software floating-point operation

	// Paging model.
	OSFootprint    float64 // resident OS + daemons, bytes
	ProcFootprint  float64 // per-process image (code+stack+data), bytes
	PagingSeverity float64 // copy-slowdown slope once memory oversubscribes
}

// Balance21000 returns the model of the paper's 20-processor machine.
func Balance21000() *Machine {
	return &Machine{
		NumCPUs:  20,
		CPUHz:    10e6,
		MemBytes: 16 << 20,
		BusRate:  80e6,
		PageSize: 4096,

		OpFixed:       1.0e-3,
		DescUpdate:    0.2e-3,
		LockOverhead:  0.05e-3,
		CopyPerByte:   10e-6,
		BlockHandling: 100e-6,
		BlockPayload:  10,

		FlopTime: 150e-6,

		OSFootprint:    6 << 20,
		ProcFootprint:  400 << 10,
		PagingSeverity: 2.1,
	}
}

// BlocksFor returns the number of message blocks an n-byte payload
// occupies (at least one, as in internal/shm).
func (m *Machine) BlocksFor(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + m.BlockPayload - 1) / m.BlockPayload
}

// CopyTime is the CPU time for one copy of an n-byte payload through its
// block chain: per-byte cost plus per-block handling. This is the cost
// the paper identifies as dominant for large messages ("message copying
// costs dominate; memory bandwidth is the performance limiting factor").
func (m *Machine) CopyTime(n int) float64 {
	return float64(n)*m.CopyPerByte + float64(m.BlocksFor(n))*m.BlockHandling
}

// SendTime is the send-side CPU time for an n-byte message, excluding
// lock queueing (which the simulator supplies): fixed overhead plus the
// buffer→blocks copy.
func (m *Machine) SendTime(n int) float64 { return m.OpFixed + m.CopyTime(n) }

// ReceiveTime is the receive-side CPU time for an n-byte message,
// excluding lock queueing and blocking: fixed overhead plus the
// blocks→buffer copy.
func (m *Machine) ReceiveTime(n int) float64 { return m.OpFixed + m.CopyTime(n) }

// Footprint estimates resident memory for a run of nProcs processes
// whose MPF region spans regionBytes: OS, process images, and the mapped
// region (the region's blocks cycle through the free list, so its whole
// span is part of the working set).
func (m *Machine) Footprint(nProcs int, regionBytes float64) float64 {
	return m.OSFootprint + float64(nProcs)*m.ProcFootprint + regionBytes
}

// PagingFactor maps a resident footprint to a copy-cost multiplier:
// 1.0 while the footprint fits in physical memory, rising linearly with
// the oversubscription ratio beyond it. Figure 6's 1024-byte curve
// crosses the knee near 10 processes under the paper's region sizing.
func (m *Machine) PagingFactor(footprint float64) float64 {
	if footprint <= m.MemBytes {
		return 1
	}
	return 1 + m.PagingSeverity*(footprint-m.MemBytes)/m.MemBytes
}

// FlopsTime returns the time for k software floating-point operations.
func (m *Machine) FlopsTime(k int) float64 { return float64(k) * m.FlopTime }

// The paper's conclusion (§5) sketches two restricted message passing
// schemes and predicts their costs; the methods below project them on
// this machine model. internal/bench.AblationSchemes turns them into
// the comparison figure the authors said was "currently underway".

// SyncTransferTime is the projected cost of one synchronous transfer of
// n bytes: sender and receiver rendezvous (two descriptor updates under
// the lock) and the payload moves with a single direct copy — "copying
// of data from a sending buffer to a linked message buffer and then to
// the receiving buffer is unnecessary; direct data transfer is
// possible". No message blocks are touched.
func (m *Machine) SyncTransferTime(n int) float64 {
	return m.OpFixed + 2*(m.LockOverhead+m.DescUpdate) + float64(n)*m.CopyPerByte
}

// One2OneTransferTime is the projected cost of one transfer over a
// restricted one-to-one circuit: the double copy through message blocks
// remains, but "all locking associated with message handling is
// removed", and with a single fixed receiver the descriptor updates
// reduce to head/tail cursor bumps folded into the copy loop.
func (m *Machine) One2OneTransferTime(n int) float64 {
	return m.OpFixed + 2*m.CopyTime(n)
}

// GeneralTransferTime is the full-MPF round for one message: the
// send-side and receive-side costs of the general LNVC path, for
// comparison with the restricted schemes.
func (m *Machine) GeneralTransferTime(n int) float64 {
	return m.SendTime(n) + m.ReceiveTime(n) + 2*(m.LockOverhead+m.DescUpdate)
}
