package balance

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBalance21000Hardware(t *testing.T) {
	m := Balance21000()
	if m.NumCPUs != 20 {
		t.Fatalf("NumCPUs = %d, want 20 (paper §4)", m.NumCPUs)
	}
	if m.CPUHz != 10e6 {
		t.Fatalf("CPUHz = %g, want 10 MHz", m.CPUHz)
	}
	if m.MemBytes != 16<<20 {
		t.Fatalf("MemBytes = %g, want 16 MB", m.MemBytes)
	}
	if m.BusRate != 80e6 {
		t.Fatalf("BusRate = %g, want 80 MB/s", m.BusRate)
	}
	if m.BlockPayload != 10 {
		t.Fatalf("BlockPayload = %d, want the paper's 10-byte blocks", m.BlockPayload)
	}
}

func TestBlocksFor(t *testing.T) {
	m := Balance21000()
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {10, 1}, {11, 2}, {1024, 103},
	}
	for _, c := range cases {
		if got := m.BlocksFor(c.n); got != c.want {
			t.Errorf("BlocksFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCalibrationBaseAsymptote(t *testing.T) {
	// The base benchmark's asymptotic throughput is 1/(2 × per-byte
	// cost); calibration targets ≈25,000 bytes/s (Figure 3).
	m := Balance21000()
	perByte := m.CopyPerByte + m.BlockHandling/float64(m.BlockPayload)
	asymptote := 1 / (2 * perByte)
	if asymptote < 20000 || asymptote > 30000 {
		t.Fatalf("base asymptote = %.0f bytes/s, want ≈25,000", asymptote)
	}
}

func TestCalibrationFCFSPlateau(t *testing.T) {
	// One sender's 1024-byte message rate bounds fcfs throughput;
	// calibration targets ≈45-50 Kbyte/s (Figure 4).
	m := Balance21000()
	rate := 1024 / m.SendTime(1024)
	if rate < 40000 || rate > 55000 {
		t.Fatalf("fcfs plateau = %.0f bytes/s, want ≈45-50 K", rate)
	}
}

func TestCalibrationBroadcastPeak(t *testing.T) {
	// 16 receivers copying concurrently at the sender's rate bound the
	// broadcast peak; the paper measured 687,245 bytes/s.
	m := Balance21000()
	peak := 16 * 1024 / m.SendTime(1024)
	if peak < 600000 || peak > 800000 {
		t.Fatalf("broadcast ceiling = %.0f bytes/s, want ≈687,245", peak)
	}
}

func TestPagingKneeMatchesFigure6(t *testing.T) {
	// With the random benchmark's region sizing (600 messages per
	// process), the 1024-byte curve must oversubscribe beyond ≈10
	// processes, the 256-byte curve near ≈18-20, and the 64-byte curve
	// never (within 20 processes).
	m := Balance21000()
	region := func(nProcs, msgLen int) float64 {
		return float64(nProcs) * 600 * float64(msgLen)
	}
	if f := m.PagingFactor(m.Footprint(9, region(9, 1024))); f != 1 {
		t.Errorf("1024B at 9 procs already paging (factor %g)", f)
	}
	if f := m.PagingFactor(m.Footprint(12, region(12, 1024))); f <= 1 {
		t.Errorf("1024B at 12 procs not paging")
	}
	if f := m.PagingFactor(m.Footprint(16, region(16, 256))); f != 1 {
		t.Errorf("256B at 16 procs already paging (factor %g)", f)
	}
	if f := m.PagingFactor(m.Footprint(20, region(20, 256))); f <= 1 {
		t.Errorf("256B at 20 procs not paging")
	}
	if f := m.PagingFactor(m.Footprint(20, region(20, 64))); f != 1 {
		t.Errorf("64B at 20 procs paging (factor %g)", f)
	}
}

func TestPagingFactorMonotone(t *testing.T) {
	m := Balance21000()
	prev := 0.0
	for fp := 0.0; fp < 64<<20; fp += 1 << 20 {
		f := m.PagingFactor(fp)
		if f < 1 {
			t.Fatalf("factor %g < 1 at footprint %g", f, fp)
		}
		if f < prev {
			t.Fatalf("factor decreased: %g after %g", f, prev)
		}
		prev = f
	}
}

func TestCopyTimeShape(t *testing.T) {
	m := Balance21000()
	// Strictly increasing in n and superlinear-free: doubling bytes at
	// block granularity roughly doubles cost.
	t1, t2 := m.CopyTime(1000), m.CopyTime(2000)
	if ratio := t2 / t1; math.Abs(ratio-2) > 0.05 {
		t.Fatalf("copy cost ratio = %g, want ≈2", ratio)
	}
	if m.CopyTime(0) <= 0 {
		t.Fatal("zero-byte copy must still cost one block handling")
	}
}

func TestSendReceiveSymmetric(t *testing.T) {
	m := Balance21000()
	if m.SendTime(512) != m.ReceiveTime(512) {
		t.Fatal("send and receive copy costs should be symmetric in this model")
	}
}

func TestFlopsTime(t *testing.T) {
	m := Balance21000()
	if got := m.FlopsTime(1000); math.Abs(got-1000*m.FlopTime) > 1e-12 {
		t.Fatalf("FlopsTime = %g", got)
	}
}

// Property: CopyTime is monotone non-decreasing in n.
func TestQuickCopyTimeMonotone(t *testing.T) {
	m := Balance21000()
	f := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw), int(bRaw)
		if a > b {
			a, b = b, a
		}
		return m.CopyTime(a) <= m.CopyTime(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Footprint is additive and monotone in both arguments.
func TestQuickFootprintMonotone(t *testing.T) {
	m := Balance21000()
	f := func(n1, n2 uint8, r1, r2 uint32) bool {
		a, b := int(n1), int(n2)
		ra, rb := float64(r1), float64(r2)
		if a > b {
			a, b = b, a
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		return m.Footprint(a, ra) <= m.Footprint(b, rb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
