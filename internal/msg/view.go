package msg

import "repro/internal/shm"

// View is a window onto a message's payload where it lives: the shared
// region's blocks. It is the zero-copy half of the paper's data plane —
// where Build/Extract perform the two structural copies (user buffer →
// blocks, blocks → user buffer), a View lets the sender write payload
// in place (core.SendLoan) and lets receivers read it in place
// (core.ReceiveView), so N BROADCAST receivers share one payload
// instance instead of taking N copies.
//
// A View iterates the chain's *segments*. In the arena's span mode one
// segment is a whole run of physically adjacent blocks, so payloads
// that fit one free run — the common case — expose a single contiguous
// slice (Contiguous). In classic mode every block is its own segment,
// the paper's fragmented layout.
//
// A View aliases arena memory. It is valid only while the message's
// blocks are owned by the holder: for loans, between allocation and
// Commit/Abort; for receive views, between the claim and Release. The
// pin lifecycle in internal/core enforces this; nothing in this package
// does.
type View struct {
	arena  *shm.Arena
	head   int32
	length int
}

// NewView constructs a view over length payload bytes starting at the
// chain head. Intended for internal/core; tests may use it directly.
func NewView(arena *shm.Arena, head int32, length int) View {
	return View{arena: arena, head: head, length: length}
}

// Len returns the payload length in bytes.
func (v View) Len() int { return v.length }

// Segments calls yield for each payload segment in order, trimmed to
// the view's length; returning false stops the iteration. Segments of
// a loan view are writable (they alias the shared region).
func (v View) Segments(yield func(seg []byte) bool) {
	rem := v.length
	for off := v.head; off != shm.NilOffset && rem > 0; off = v.arena.Next(off) {
		seg := v.arena.SegPayload(off)
		if len(seg) > rem {
			seg = seg[:rem]
		}
		rem -= len(seg)
		if !yield(seg) {
			return
		}
	}
}

// NumSegments returns the number of segments the view spans (1 in the
// contiguous common case under span allocation).
func (v View) NumSegments() int {
	n := 0
	v.Segments(func([]byte) bool { n++; return true })
	return n
}

// Contiguous returns the whole payload as one slice when it occupies a
// single segment, and (nil, false) otherwise. This is the zero-copy
// fast path; multi-segment payloads are walked with Segments or
// flattened with CopyTo.
func (v View) Contiguous() ([]byte, bool) {
	if v.length == 0 {
		return nil, true
	}
	if v.head == shm.NilOffset {
		return nil, false
	}
	seg := v.arena.SegPayload(v.head)
	if len(seg) >= v.length {
		return seg[:v.length], true
	}
	return nil, false
}

// CopyTo copies the payload into buf, returning the number of bytes
// copied (min of view length and len(buf)). It is the escape hatch back
// to the copying plane for callers that need a private buffer.
func (v View) CopyTo(buf []byte) int {
	if v.length == 0 || v.head == shm.NilOffset {
		return 0
	}
	return v.arena.ReadChain(v.head, v.length, buf)
}

// CopyFrom copies buf into the payload, returning the number of bytes
// copied (min of view length and len(buf)). Only meaningful on loan
// views, whose blocks the caller owns.
func (v View) CopyFrom(buf []byte) int {
	n := len(buf)
	if n > v.length {
		n = v.length
	}
	if n == 0 {
		return 0
	}
	return v.arena.WriteChain(v.head, buf[:n])
}
