// Package msg implements MPF messages: a header plus a chain of shared
// memory blocks holding the payload.
//
// The paper's fundamental data structure is the message — "linked message
// blocks together with a header for saving pertinent message information
// (e.g., message length, a pointer to the tail, and a pointer to the next
// message in a list of messages for an LNVC)". This package reproduces
// that header and the two copies the paper performs: message_send copies
// the user buffer into the block chain, message_receive copies the chain
// into the user buffer.
//
// The header additionally carries the reference-counting state that
// internal/core uses to solve the paper's close_receive reclamation
// problem (see DESIGN.md §5): Pending counts BROADCAST receivers that have
// not yet consumed the message, and FCFSNeeded records whether an FCFS
// consumption is still outstanding.
package msg

import (
	"fmt"

	"repro/internal/shm"
)

// Message is a queued MPF message. Headers are ordinary Go objects
// recycled through a Pool; payload lives in the shm arena.
type Message struct {
	// Length is the payload length in bytes.
	Length int
	// Head and Tail are arena offsets of the first and last payload
	// blocks. Tail is kept so appends and sanity checks are O(1), as in
	// the paper's header.
	Head, Tail int32
	// Next links messages in an LNVC's FIFO. It is owned by the LNVC
	// lock.
	Next *Message
	// Seq is the message's position in its LNVC's total order; assigned
	// under the LNVC lock at enqueue. Receivers use it to resume after
	// their private head pointer.
	Seq uint64
	// Sender is the process id of the sending process (for tracing).
	Sender int
	// Pending is the number of BROADCAST receivers that still need this
	// message. FCFSNeeded reports whether an FCFS consumption is still
	// outstanding. Both are manipulated under the LNVC lock.
	Pending    int
	FCFSNeeded bool
	// Blocks is the message's accounted block demand — Arena.BlocksFor
	// of the payload length, recorded at build time. It is the unit the
	// credit ledger debits at allocation and re-grants at reclamation
	// (core's flow control), chosen to match the worst-case demand the
	// capacity checks already use so that debit and grant can never
	// disagree about a message's cost.
	Blocks int
	// Pins counts receivers currently reading the payload outside the
	// LNVC lock — a transient copy (Extract) or a held zero-copy View.
	// A pinned message must not be reclaimed: broadcast receivers
	// release their Pending claim before reading (so other receivers
	// can proceed) but the blocks must survive until the last pin
	// drops. Manipulated under the LNVC lock.
	Pins int
	// Orphan marks a pinned message whose circuit was deleted before
	// the pins drained: the close path cannot release it, so ownership
	// passes to the pin holders and the last unpin releases it (see
	// core's unpin). Set under the LNVC lock.
	Orphan bool
}

// Pool allocates and recycles message headers and their payload chains.
// It is safe for concurrent use only insofar as the underlying arena is;
// header free-listing is guarded by the arena-independent lock in Get/Put
// callers (the LNVC lock in core). To keep the package self-contained the
// pool uses a channel-based free list, which is concurrency-safe on its
// own.
type Pool struct {
	arena *shm.Arena
	free  chan *Message
}

// NewPool creates a pool over arena with capacity for reuse of up to
// maxFree headers; beyond that headers are left to the garbage collector,
// which is the portable analogue of the paper's fixed descriptor free
// lists.
func NewPool(arena *shm.Arena, maxFree int) *Pool {
	if maxFree < 1 {
		maxFree = 1
	}
	return &Pool{arena: arena, free: make(chan *Message, maxFree)}
}

// Arena exposes the backing arena (for receive-side copies).
func (p *Pool) Arena() *shm.Arena { return p.arena }

// Build allocates blocks for buf, copies buf in, and returns a message
// header describing it. The allocation is payload-shaped
// (shm.Arena.AllocPayload): under span allocation the chain is one
// contiguous run of blocks whenever fragmentation permits. If wait is
// true the allocation blocks until enough blocks are free (stop
// aborts); otherwise exhaustion returns shm.ErrOutOfBlocks.
func (p *Pool) Build(sender int, buf []byte, wait bool, stop <-chan struct{}) (*Message, error) {
	m, err := p.BuildLoan(sender, len(buf), wait, stop)
	if err != nil {
		return nil, err
	}
	p.arena.WriteChain(m.Head, buf)
	return m, nil
}

// BuildLoan allocates a chain able to hold n payload bytes and returns
// its header with the payload *uninitialised* — the send-side zero-copy
// primitive. The caller writes the payload in place through View(m)
// (core.Loan does) and the structural send copy never happens.
func (p *Pool) BuildLoan(sender, n int, wait bool, stop <-chan struct{}) (*Message, error) {
	head, tail, err := p.arena.AllocPayload(n, wait, stop)
	if err != nil {
		return nil, err
	}
	m := p.get()
	m.Length = n
	m.Head = head
	m.Tail = tail
	m.Sender = sender
	m.Blocks = p.arena.BlocksFor(n)
	return m, nil
}

// BuildLoanBatch is BuildLoan's batch form: one message header per
// length in ns, every payload chain allocated in a single arena
// transaction (Arena.AllocPayloads) with all payloads uninitialised —
// the allocator half of the batched zero-copy send path (core's
// LoanBatch). Either every message is built or none is; wait and stop
// have Build's semantics, applied to the batch's total block demand.
func (p *Pool) BuildLoanBatch(sender int, ns []int, wait bool, stop <-chan struct{}) ([]*Message, error) {
	if len(ns) == 0 {
		return nil, nil
	}
	heads, tails, err := p.arena.AllocPayloads(ns, wait, stop)
	if err != nil {
		return nil, err
	}
	msgs := make([]*Message, len(ns))
	for i, n := range ns {
		m := p.get()
		m.Length = n
		m.Head = heads[i]
		m.Tail = tails[i]
		m.Sender = sender
		m.Blocks = p.arena.BlocksFor(n)
		msgs[i] = m
	}
	return msgs, nil
}

// View returns a zero-copy window onto m's payload. Validity follows
// block ownership: the caller must hold the message pinned (receive
// views) or own its unsent chain (loans).
func (p *Pool) View(m *Message) View {
	return NewView(p.arena, m.Head, m.Length)
}

// BuildBatch builds one message per buffer in bufs, allocating every
// payload block in a single arena transaction (Arena.AllocPayloads):
// the batch costs one free-list lock acquisition however many messages
// and blocks it spans. Either every message is built or none is; wait and
// stop have Build's semantics, applied to the batch's total block
// demand.
func (p *Pool) BuildBatch(sender int, bufs [][]byte, wait bool, stop <-chan struct{}) ([]*Message, error) {
	if len(bufs) == 0 {
		return nil, nil
	}
	ns := make([]int, len(bufs))
	for i, buf := range bufs {
		ns[i] = len(buf)
	}
	heads, tails, err := p.arena.AllocPayloads(ns, wait, stop)
	if err != nil {
		return nil, err
	}
	msgs := make([]*Message, len(bufs))
	for i, buf := range bufs {
		p.arena.WriteChain(heads[i], buf)
		m := p.get()
		m.Length = len(buf)
		m.Head = heads[i]
		m.Tail = tails[i]
		m.Sender = sender
		m.Blocks = p.arena.BlocksFor(len(buf))
		msgs[i] = m
	}
	return msgs, nil
}

// Extract copies the message payload into buf and returns the number of
// bytes copied (min of message length and len(buf)), mirroring
// message_receive's buffer-length semantics.
func (p *Pool) Extract(m *Message, buf []byte) int {
	if m.Length == 0 {
		return 0
	}
	return p.arena.ReadChain(m.Head, m.Length, buf)
}

// Release returns the message's blocks to the arena and its header to the
// pool. The caller must guarantee no receiver still needs m.
func (p *Pool) Release(m *Message) {
	if m.Head != shm.NilOffset {
		p.arena.FreeChain(m.Head)
	}
	p.put(m)
}

// ReleaseBatch returns a whole batch of messages' blocks to the arena
// in one free-pool transaction (Arena.FreeChains) and their headers to
// the pool — Release amortised the same way BuildLoanBatch amortises
// Build. The caller must guarantee no receiver still needs any of them.
func (p *Pool) ReleaseBatch(ms []*Message) {
	if len(ms) == 0 {
		return
	}
	var headsBuf [16]int32
	heads := headsBuf[:0]
	for _, m := range ms {
		if m.Head != shm.NilOffset {
			heads = append(heads, m.Head)
		}
	}
	p.arena.FreeChains(heads)
	for _, m := range ms {
		p.put(m)
	}
}

func (p *Pool) get() *Message {
	select {
	case m := <-p.free:
		*m = Message{}
		return m
	default:
		return &Message{}
	}
}

func (p *Pool) put(m *Message) {
	m.Head = shm.NilOffset
	m.Tail = shm.NilOffset
	m.Next = nil
	select {
	case p.free <- m:
	default:
	}
}

// Check verifies header/chain consistency in either allocation mode:
// the chain's segments cover exactly Length payload bytes (the last
// segment is load-bearing — no over-allocation), a zero-length message
// still occupies one segment, and Tail is the chain's last segment. For
// tests.
func (p *Pool) Check(m *Message) error {
	if m.Head == shm.NilOffset {
		return fmt.Errorf("msg: %d-byte message has no chain", m.Length)
	}
	capacity, lastCap, segs := 0, 0, 0
	tail := m.Head
	for off := m.Head; off != shm.NilOffset; off = p.arena.Next(off) {
		lastCap = len(p.arena.SegPayload(off))
		capacity += lastCap
		segs++
		tail = off
	}
	if capacity < m.Length {
		return fmt.Errorf("msg: %d-byte message has chain capacity %d", m.Length, capacity)
	}
	if segs > 1 && capacity-lastCap >= m.Length {
		return fmt.Errorf("msg: %d-byte message over-allocated: %d segments, capacity %d without the last",
			m.Length, segs, capacity-lastCap)
	}
	if m.Length == 0 && segs != 1 {
		return fmt.Errorf("msg: zero-length message has %d segments, want 1", segs)
	}
	if tail != m.Tail {
		return fmt.Errorf("msg: tail pointer %d does not match chain end %d", m.Tail, tail)
	}
	return nil
}

// Queue is the FIFO of messages inside an LNVC descriptor, a singly
// linked list with head and tail pointers exactly as in the paper's
// Figure 2. All methods must be called under the LNVC lock.
type Queue struct {
	head, tail *Message
	n          int
	nextSeq    uint64
}

// Enqueue appends m and assigns its sequence number.
func (q *Queue) Enqueue(m *Message) {
	m.Seq = q.nextSeq
	q.nextSeq++
	m.Next = nil
	if q.tail == nil {
		q.head = m
	} else {
		q.tail.Next = m
	}
	q.tail = m
	q.n++
}

// Head returns the oldest queued message, or nil.
func (q *Queue) Head() *Message { return q.head }

// Len returns the number of queued messages (the paper's "number of
// queued messages" descriptor field).
func (q *Queue) Len() int { return q.n }

// NextSeq returns the sequence number the next enqueued message will get.
func (q *Queue) NextSeq() uint64 { return q.nextSeq }

// Remove unlinks m from the queue. prev must be m's predecessor or nil if
// m is the head. Core tracks predecessors while scanning for reclaimable
// messages.
func (q *Queue) Remove(m, prev *Message) {
	if prev == nil {
		if q.head != m {
			panic("msg: Remove head mismatch")
		}
		q.head = m.Next
	} else {
		if prev.Next != m {
			panic("msg: Remove prev mismatch")
		}
		prev.Next = m.Next
	}
	if q.tail == m {
		q.tail = prev
	}
	m.Next = nil
	q.n--
}

// Walk calls f for each message in FIFO order together with its
// predecessor; returning false stops the walk. f must not mutate the
// queue; use the returned (m, prev) pairs with Remove afterwards.
func (q *Queue) Walk(f func(m, prev *Message) bool) {
	var prev *Message
	for m := q.head; m != nil; {
		next := m.Next
		if !f(m, prev) {
			return
		}
		prev = m
		m = next
	}
}

// After returns the first message with Seq >= seq, or nil. This is how a
// receiver's private head "pointer" (a sequence number) is dereferenced.
func (q *Queue) After(seq uint64) *Message {
	for m := q.head; m != nil; m = m.Next {
		if m.Seq >= seq {
			return m
		}
	}
	return nil
}
