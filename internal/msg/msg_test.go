package msg

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/shm"
)

func newPool(t *testing.T, blockSize, nBlocks int) *Pool {
	t.Helper()
	a, err := shm.New(shm.Config{BlockSize: blockSize, NumBlocks: nBlocks})
	if err != nil {
		t.Fatal(err)
	}
	return NewPool(a, 32)
}

func TestBuildExtractRoundtrip(t *testing.T) {
	p := newPool(t, 16, 128)
	payload := make([]byte, 200)
	rand.New(rand.NewSource(7)).Read(payload)

	m, err := p.Build(3, payload, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Length != 200 || m.Sender != 3 {
		t.Fatalf("header = %+v", m)
	}
	if err := p.Check(m); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 200)
	if n := p.Extract(m, out); n != 200 {
		t.Fatalf("Extract = %d, want 200", n)
	}
	if !bytes.Equal(out, payload) {
		t.Fatal("payload corrupted")
	}
	p.Release(m)
	if got := p.Arena().FreeBlocks(); got != 128 {
		t.Fatalf("blocks leaked: %d free, want 128", got)
	}
}

func TestZeroLengthMessage(t *testing.T) {
	p := newPool(t, 16, 8)
	m, err := p.Build(0, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Length != 0 {
		t.Fatalf("Length = %d, want 0", m.Length)
	}
	// Zero-length messages still hold one block so they exist in shared
	// memory; extraction copies nothing.
	if err := p.Check(m); err != nil {
		t.Fatal(err)
	}
	if n := p.Extract(m, make([]byte, 4)); n != 0 {
		t.Fatalf("Extract of empty message = %d, want 0", n)
	}
	p.Release(m)
}

func TestExtractTruncates(t *testing.T) {
	p := newPool(t, 16, 32)
	m, err := p.Build(0, []byte("0123456789"), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4)
	if n := p.Extract(m, out); n != 4 {
		t.Fatalf("Extract = %d, want 4", n)
	}
	if string(out) != "0123" {
		t.Fatalf("out = %q", out)
	}
	p.Release(m)
}

func TestBuildExhaustion(t *testing.T) {
	p := newPool(t, 16, 2) // 24 bytes of payload capacity
	if _, err := p.Build(0, make([]byte, 100), false, nil); !errors.Is(err, shm.ErrOutOfBlocks) {
		t.Fatalf("err = %v, want ErrOutOfBlocks", err)
	}
	if got := p.Arena().FreeBlocks(); got != 2 {
		t.Fatalf("failed Build leaked blocks: %d free, want 2", got)
	}
}

func TestHeaderRecycling(t *testing.T) {
	p := newPool(t, 16, 32)
	m1, _ := p.Build(0, []byte("x"), false, nil)
	p.Release(m1)
	m2, _ := p.Build(0, []byte("y"), false, nil)
	if m1 != m2 {
		t.Log("header not recycled (GC fallback is permitted, but pool should reuse when possible)")
	}
	if m2.Length != 1 {
		t.Fatalf("recycled header not reset: %+v", m2)
	}
	// Stale refcount fields must have been cleared by reuse.
	if m2.Pending != 0 || m2.FCFSNeeded || m2.Next != nil {
		t.Fatalf("recycled header carries stale state: %+v", m2)
	}
	p.Release(m2)
}

func TestQueueFIFOAndSeq(t *testing.T) {
	p := newPool(t, 16, 64)
	var q Queue
	var msgs []*Message
	for i := 0; i < 5; i++ {
		m, err := p.Build(0, []byte{byte(i)}, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		q.Enqueue(m)
		msgs = append(msgs, m)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	for i, m := range msgs {
		if m.Seq != uint64(i) {
			t.Fatalf("msgs[%d].Seq = %d", i, m.Seq)
		}
	}
	// FIFO order via Walk.
	i := 0
	q.Walk(func(m, prev *Message) bool {
		if m != msgs[i] {
			t.Fatalf("walk position %d: wrong message", i)
		}
		if i == 0 && prev != nil {
			t.Fatal("head has non-nil prev")
		}
		if i > 0 && prev != msgs[i-1] {
			t.Fatal("prev mismatch")
		}
		i++
		return true
	})
	if i != 5 {
		t.Fatalf("walk visited %d, want 5", i)
	}
}

func TestQueueRemoveHeadMiddleTail(t *testing.T) {
	var q Queue
	ms := []*Message{{}, {}, {}, {}}
	for _, m := range ms {
		q.Enqueue(m)
	}
	q.Remove(ms[0], nil) // head
	if q.Head() != ms[1] || q.Len() != 3 {
		t.Fatal("remove head failed")
	}
	q.Remove(ms[2], ms[1]) // middle
	if ms[1].Next != ms[3] || q.Len() != 2 {
		t.Fatal("remove middle failed")
	}
	q.Remove(ms[3], ms[1]) // tail
	if q.Len() != 1 {
		t.Fatal("remove tail failed")
	}
	// Tail must be reset so the next enqueue links correctly.
	m := &Message{}
	q.Enqueue(m)
	if ms[1].Next != m {
		t.Fatal("enqueue after tail removal broke the list")
	}
}

func TestQueueRemoveMismatchPanics(t *testing.T) {
	var q Queue
	a, b := &Message{}, &Message{}
	q.Enqueue(a)
	q.Enqueue(b)
	defer func() {
		if recover() == nil {
			t.Fatal("Remove with wrong prev did not panic")
		}
	}()
	q.Remove(b, nil) // b is not the head
}

func TestQueueAfter(t *testing.T) {
	var q Queue
	ms := []*Message{{}, {}, {}}
	for _, m := range ms {
		q.Enqueue(m)
	}
	if got := q.After(0); got != ms[0] {
		t.Fatal("After(0) != first")
	}
	if got := q.After(2); got != ms[2] {
		t.Fatal("After(2) != third")
	}
	if got := q.After(3); got != nil {
		t.Fatal("After past end != nil")
	}
	// After removal, After skips the hole.
	q.Remove(ms[1], ms[0])
	if got := q.After(1); got != ms[2] {
		t.Fatal("After(1) after removal != third")
	}
}

func TestQueueWalkEarlyStop(t *testing.T) {
	var q Queue
	for i := 0; i < 4; i++ {
		q.Enqueue(&Message{})
	}
	n := 0
	q.Walk(func(m, prev *Message) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("walk visited %d, want 2", n)
	}
}

// Property: Build/Extract roundtrips for arbitrary payloads and any block
// size, and never leaks blocks.
func TestQuickBuildExtract(t *testing.T) {
	a, err := shm.New(shm.Config{BlockSize: 10, NumBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(a, 8)
	f := func(payload []byte, sender uint8) bool {
		if len(payload) > 8192 {
			payload = payload[:8192]
		}
		m, err := p.Build(int(sender), payload, false, nil)
		if err != nil {
			return false
		}
		out := make([]byte, len(payload))
		n := p.Extract(m, out)
		ok := n == len(payload) && bytes.Equal(out, payload) && p.Check(m) == nil
		p.Release(m)
		return ok && a.FreeBlocks() == 4096
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue operations preserve FIFO order of the surviving
// messages under arbitrary enqueue/dequeue-head interleavings.
func TestQuickQueueFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		var q Queue
		var model []uint64
		for _, enq := range ops {
			if enq {
				m := &Message{}
				q.Enqueue(m)
				model = append(model, m.Seq)
			} else if h := q.Head(); h != nil {
				q.Remove(h, nil)
				model = model[1:]
			}
		}
		if q.Len() != len(model) {
			return false
		}
		i := 0
		good := true
		q.Walk(func(m, prev *Message) bool {
			if m.Seq != model[i] {
				good = false
				return false
			}
			i++
			return true
		})
		return good && i == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildRelease128(b *testing.B) {
	a, _ := shm.New(shm.Config{BlockSize: 64, NumBlocks: 1024})
	p := NewPool(a, 8)
	payload := make([]byte, 128)
	b.SetBytes(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, _ := p.Build(0, payload, false, nil)
		p.Release(m)
	}
}
