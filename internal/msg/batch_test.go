package msg

import (
	"bytes"
	"testing"

	"repro/internal/shm"
)

func TestBuildBatchRoundTrip(t *testing.T) {
	arena, err := shm.New(shm.Config{BlockSize: 16, NumBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(arena, 8)
	bufs := [][]byte{
		[]byte("short"),
		bytes.Repeat([]byte{0x5A}, 50), // spans several 12-byte payloads
		nil,                            // zero-length message still gets a block
	}
	msgs, err := p.BuildBatch(7, bufs, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("%d messages, want 3", len(msgs))
	}
	out := make([]byte, 64)
	for i, m := range msgs {
		if m.Sender != 7 {
			t.Errorf("message %d sender = %d, want 7", i, m.Sender)
		}
		if err := p.Check(m); err != nil {
			t.Errorf("message %d: %v", i, err)
		}
		n := p.Extract(m, out)
		if !bytes.Equal(out[:n], bufs[i]) {
			t.Errorf("message %d: payload mismatch (%d bytes)", i, n)
		}
	}
	for _, m := range msgs {
		p.Release(m)
	}
	if free := arena.FreeBlocks(); free != 64 {
		t.Errorf("%d blocks free after release, want 64", free)
	}
}

func TestBuildBatchFailureLeaksNothing(t *testing.T) {
	arena, err := shm.New(shm.Config{BlockSize: 16, NumBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(arena, 8)
	// 5 single-block messages cannot fit a 4-block region.
	bufs := make([][]byte, 5)
	for i := range bufs {
		bufs[i] = []byte{byte(i)}
	}
	if _, err := p.BuildBatch(0, bufs, false, nil); err == nil {
		t.Fatal("oversized batch succeeded")
	}
	if free := arena.FreeBlocks(); free != 4 {
		t.Errorf("failed batch leaked: %d blocks free, want 4", free)
	}
	if msgs, err := p.BuildBatch(0, nil, false, nil); err != nil || msgs != nil {
		t.Errorf("empty batch: %v, %v", msgs, err)
	}
}

// TestBuildLoanBatchReleaseBatch checks the batched loan build (one
// arena transaction, uninitialised payload-shaped chains) and the
// batched release (one free transaction), in both allocation modes.
func TestBuildLoanBatchReleaseBatch(t *testing.T) {
	for _, spans := range []bool{true, false} {
		arena, err := shm.New(shm.Config{BlockSize: 16, NumBlocks: 128, Spans: spans})
		if err != nil {
			t.Fatal(err)
		}
		p := NewPool(arena, 8)
		ns := []int{5, 40, 0, 100}
		allocBefore, _ := arena.LockStats()
		msgs, err := p.BuildLoanBatch(7, ns, false, nil)
		if err != nil {
			t.Fatalf("spans=%v: %v", spans, err)
		}
		if got, _ := arena.LockStats(); got-allocBefore != 1 {
			t.Errorf("spans=%v: BuildLoanBatch took %d lock acquisitions, want 1", spans, got-allocBefore)
		}
		if len(msgs) != len(ns) {
			t.Fatalf("spans=%v: built %d messages, want %d", spans, len(msgs), len(ns))
		}
		for i, m := range msgs {
			if m.Length != ns[i] || m.Sender != 7 {
				t.Errorf("spans=%v: message %d header: len=%d sender=%d", spans, i, m.Length, m.Sender)
			}
			if err := p.Check(m); err != nil {
				t.Errorf("spans=%v: message %d: %v", spans, i, err)
			}
			// The loaned window is writable and round-trips.
			v := p.View(m)
			buf := make([]byte, ns[i])
			for j := range buf {
				buf[j] = byte(i + j)
			}
			if n := v.CopyFrom(buf); n != ns[i] {
				t.Errorf("spans=%v: message %d fill wrote %d of %d", spans, i, n, ns[i])
			}
			out := make([]byte, ns[i])
			v.CopyTo(out)
			if !bytes.Equal(out, buf) {
				t.Errorf("spans=%v: message %d payload corrupted", spans, i)
			}
		}
		freeBefore, _ := arena.LockStats()
		p.ReleaseBatch(msgs)
		if got, _ := arena.LockStats(); got-freeBefore != 1 {
			t.Errorf("spans=%v: ReleaseBatch took %d lock acquisitions, want 1", spans, got-freeBefore)
		}
		if free := arena.FreeBlocks(); free != arena.NumBlocks() {
			t.Errorf("spans=%v: %d of %d blocks free after ReleaseBatch", spans, free, arena.NumBlocks())
		}
		if msgs, err = p.BuildLoanBatch(1, nil, false, nil); err != nil || msgs != nil {
			t.Errorf("spans=%v: empty batch: msgs=%v err=%v", spans, msgs, err)
		}
	}
}
