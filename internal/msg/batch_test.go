package msg

import (
	"bytes"
	"testing"

	"repro/internal/shm"
)

func TestBuildBatchRoundTrip(t *testing.T) {
	arena, err := shm.New(shm.Config{BlockSize: 16, NumBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(arena, 8)
	bufs := [][]byte{
		[]byte("short"),
		bytes.Repeat([]byte{0x5A}, 50), // spans several 12-byte payloads
		nil,                            // zero-length message still gets a block
	}
	msgs, err := p.BuildBatch(7, bufs, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("%d messages, want 3", len(msgs))
	}
	out := make([]byte, 64)
	for i, m := range msgs {
		if m.Sender != 7 {
			t.Errorf("message %d sender = %d, want 7", i, m.Sender)
		}
		if err := p.Check(m); err != nil {
			t.Errorf("message %d: %v", i, err)
		}
		n := p.Extract(m, out)
		if !bytes.Equal(out[:n], bufs[i]) {
			t.Errorf("message %d: payload mismatch (%d bytes)", i, n)
		}
	}
	for _, m := range msgs {
		p.Release(m)
	}
	if free := arena.FreeBlocks(); free != 64 {
		t.Errorf("%d blocks free after release, want 64", free)
	}
}

func TestBuildBatchFailureLeaksNothing(t *testing.T) {
	arena, err := shm.New(shm.Config{BlockSize: 16, NumBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(arena, 8)
	// 5 single-block messages cannot fit a 4-block region.
	bufs := make([][]byte, 5)
	for i := range bufs {
		bufs[i] = []byte{byte(i)}
	}
	if _, err := p.BuildBatch(0, bufs, false, nil); err == nil {
		t.Fatal("oversized batch succeeded")
	}
	if free := arena.FreeBlocks(); free != 4 {
		t.Errorf("failed batch leaked: %d blocks free, want 4", free)
	}
	if msgs, err := p.BuildBatch(0, nil, false, nil); err != nil || msgs != nil {
		t.Errorf("empty batch: %v, %v", msgs, err)
	}
}
