package msg

import (
	"bytes"
	"testing"

	"repro/internal/shm"
)

func poolOver(t *testing.T, spans bool) *Pool {
	t.Helper()
	a, err := shm.New(shm.Config{BlockSize: 16, NumBlocks: 64, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	return NewPool(a, 8)
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

func TestViewReadsWhatBuildWrote(t *testing.T) {
	for _, spans := range []bool{false, true} {
		p := poolOver(t, spans)
		payload := pattern(200)
		m, err := p.Build(1, payload, false, nil)
		if err != nil {
			t.Fatalf("spans=%v: %v", spans, err)
		}
		v := p.View(m)
		if v.Len() != 200 {
			t.Fatalf("spans=%v: view length %d, want 200", spans, v.Len())
		}
		var got []byte
		v.Segments(func(seg []byte) bool {
			got = append(got, seg...)
			return true
		})
		if !bytes.Equal(got, payload) {
			t.Fatalf("spans=%v: segment walk does not reproduce the payload", spans)
		}
		out := make([]byte, 200)
		if n := v.CopyTo(out); n != 200 || !bytes.Equal(out, payload) {
			t.Fatalf("spans=%v: CopyTo returned %d / wrong bytes", spans, n)
		}
		p.Release(m)
	}
}

func TestViewContiguousUnderSpans(t *testing.T) {
	p := poolOver(t, true)
	m, err := p.Build(1, pattern(200), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := p.View(m)
	if v.NumSegments() != 1 {
		t.Fatalf("span-mode 200-byte payload spans %d segments, want 1", v.NumSegments())
	}
	seg, ok := v.Contiguous()
	if !ok || len(seg) != 200 {
		t.Fatalf("Contiguous = (%d bytes, %v), want (200, true)", len(seg), ok)
	}
	if !bytes.Equal(seg, pattern(200)) {
		t.Fatal("contiguous view shows wrong bytes")
	}
	p.Release(m)
}

func TestViewMultiSegmentClassic(t *testing.T) {
	p := poolOver(t, false)
	m, err := p.Build(1, pattern(100), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := p.View(m)
	// Classic 16-byte blocks carry 12 payload bytes each: 100 bytes is 9
	// blocks, so the view cannot be contiguous.
	if want := 9; v.NumSegments() != want {
		t.Fatalf("classic view spans %d segments, want %d", v.NumSegments(), want)
	}
	if _, ok := v.Contiguous(); ok {
		t.Fatal("multi-segment view claims contiguity")
	}
	p.Release(m)
}

func TestBuildLoanWriteInPlace(t *testing.T) {
	for _, spans := range []bool{false, true} {
		p := poolOver(t, spans)
		m, err := p.BuildLoan(2, 150, false, nil)
		if err != nil {
			t.Fatalf("spans=%v: %v", spans, err)
		}
		if err := p.Check(m); err != nil {
			t.Fatalf("spans=%v: %v", spans, err)
		}
		payload := pattern(150)
		v := p.View(m)
		if n := v.CopyFrom(payload); n != 150 {
			t.Fatalf("spans=%v: CopyFrom wrote %d, want 150", spans, n)
		}
		out := make([]byte, 150)
		if n := p.Extract(m, out); n != 150 || !bytes.Equal(out, payload) {
			t.Fatalf("spans=%v: extract after in-place write: %d bytes / mismatch", spans, n)
		}
		p.Release(m)
		if free := p.Arena().FreeBlocks(); free != p.Arena().NumBlocks() {
			t.Fatalf("spans=%v: %d of %d blocks free after release", spans, free, p.Arena().NumBlocks())
		}
	}
}

func TestViewZeroLength(t *testing.T) {
	p := poolOver(t, true)
	m, err := p.Build(1, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := p.View(m)
	if v.Len() != 0 {
		t.Fatalf("zero-length view has length %d", v.Len())
	}
	seg, ok := v.Contiguous()
	if !ok || len(seg) != 0 {
		t.Fatalf("zero-length Contiguous = (%d, %v)", len(seg), ok)
	}
	if v.NumSegments() != 0 {
		t.Fatalf("zero-length view yields %d segments", v.NumSegments())
	}
	p.Release(m)
}
