package bench

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/mpf"
)

// TestMain doubles the test binary as the cross-process worker: when
// re-exec'd with MPFBENCH_XPROC_CHILD set it attaches to the parent's
// segment and serves the loan/view protocol instead of running tests —
// the same re-exec trick mpfbench itself uses. It also installs the
// spawn hook so RunXProc (and Summary's xproc section) can fork real
// children from inside go test.
func TestMain(m *testing.M) {
	if os.Getenv("MPFBENCH_XPROC_CHILD") != "" {
		cl, err := mpf.AttachProc()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := cl.Serve(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := cl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		os.Exit(0)
	}
	XProcSpawnSelf = func() (string, []string) {
		return os.Args[0], []string{"MPFBENCH_XPROC_CHILD=1"}
	}
	os.Exit(m.Run())
}

// TestXProcZeroCopyGate is the cross-process benchmark's gate: real
// forked children, every payload through the shared segment, and the
// measurement itself must prove zero payload copies (RunXProc errors
// on a dirty ledger) with sane waiter counters.
func TestXProcZeroCopyGate(t *testing.T) {
	bin, env := XProcSpawnSelf()
	r, err := RunXProc(bin, env, 2, 150, 512)
	if errors.Is(err, mpf.ErrNoSharedBackend) {
		t.Skip("no shared segment backend on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	if r.MsgsPerSec <= 0 {
		t.Fatal("zero cross-process throughput")
	}
	// One FUTEX_WAKE serves at most one record in this protocol, and
	// the wake elision means a fast peer needs far fewer; more wakes
	// than messages would mean the counters are wired wrong.
	if r.FutexWakesPerMsg > 4 {
		t.Fatalf("%.2f futex wakes per message; waiter counters implausible", r.FutexWakesPerMsg)
	}
	t.Logf("xproc: %.0f msgs/s, polls/msg %.1f, sleeps/msg %.2f, wakes/msg %.2f",
		r.MsgsPerSec, r.SpinPollsPerMsg, r.FutexSleepsPerMsg, r.FutexWakesPerMsg)
}

// TestSummaryXProcSection: the trajectory summary must carry the
// cross-process section whenever the platform supports it — CI's
// BENCH.json gate depends on the section being populated, not silently
// unsupported, on the Linux runners.
func TestSummaryXProcSection(t *testing.T) {
	if testing.Short() {
		t.Skip("full Summary run")
	}
	s, err := Summary(true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != 6 {
		t.Fatalf("schema %d, want 6", s.Schema)
	}
	probe, err := mpf.ServeProc(mpf.ServeConfig{Children: 1})
	if errors.Is(err, mpf.ErrNoSharedBackend) {
		if s.XProc.Supported {
			t.Fatal("xproc marked supported without a shared backend")
		}
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	probe.Close()
	if !s.XProc.Supported {
		t.Fatal("xproc section unsupported on a platform with a shared backend")
	}
	if s.XProc.MsgsPerSec <= 0 || s.XProc.SpinPollsPerMsgPlus1 < 1 ||
		s.XProc.FutexSleepsPerMsgPlus1 < 1 || s.XProc.FutexWakesPerMsgPlus1 < 1 {
		t.Fatalf("implausible xproc section: %+v", s.XProc)
	}
	// The crash section rides the same spawn-hook/backend gate, so on
	// this platform it must be populated too — with every armed victim
	// detected (completeness is deterministic) and the survivors having
	// made progress.
	if !s.Crash.Supported {
		t.Fatal("crash section unsupported on a platform with a shared backend")
	}
	if s.Crash.Deaths != s.Crash.Victims || s.Crash.ReclaimCompleteness != 1 ||
		s.Crash.SurvivorMsgsPerSec <= 0 {
		t.Fatalf("implausible crash section: %+v", s.Crash)
	}
}
