package bench

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/sim"
	"repro/internal/simmpf"
)

// Simulated runners: the same four benchmarks replayed on the Balance
// 21000 model. Throughputs come out at the paper's absolute scale.

// SimBase reruns the base benchmark on the machine model and returns
// bytes/second of simulated time.
func SimBase(m *balance.Machine, msgLen, rounds int) (float64, error) {
	if msgLen < 0 || rounds < 1 {
		return 0, fmt.Errorf("bench: SimBase(msgLen=%d, rounds=%d)", msgLen, rounds)
	}
	k := sim.NewKernel(1)
	f := simmpf.New(k, m)
	var elapsed sim.Time
	k.Spawn("base", func(p *sim.Proc) {
		s := f.OpenSend(p, "base")
		r := f.OpenReceive(p, "base", simmpf.FCFS)
		start := p.Now()
		for i := 0; i < rounds; i++ {
			f.Send(p, s, msgLen)
			f.Receive(p, r)
		}
		elapsed = p.Now() - start
	})
	if err := k.Run(); err != nil {
		return 0, err
	}
	if elapsed <= 0 {
		return 0, fmt.Errorf("bench: SimBase produced no elapsed time")
	}
	return float64(msgLen*rounds) / elapsed, nil
}

// SimFCFS reruns the fcfs benchmark: one sender, nRecv FCFS receivers.
// Throughput counts transmitted bytes over the full simulated run.
func SimFCFS(m *balance.Machine, msgLen, nRecv, msgs int) (float64, error) {
	return simFanout(m, msgLen, nRecv, msgs, simmpf.FCFS)
}

// SimBroadcast reruns the broadcast benchmark; throughput counts
// delivered bytes (every receiver copies every message).
func SimBroadcast(m *balance.Machine, msgLen, nRecv, msgs int) (float64, error) {
	return simFanout(m, msgLen, nRecv, msgs, simmpf.Broadcast)
}

func simFanout(m *balance.Machine, msgLen, nRecv, msgs int, proto simmpf.Protocol) (float64, error) {
	if msgLen < 1 || nRecv < 1 || msgs < 1 {
		return 0, fmt.Errorf("bench: simFanout(msgLen=%d, nRecv=%d, msgs=%d)", msgLen, nRecv, msgs)
	}
	k := sim.NewKernel(1)
	f := simmpf.New(k, m)
	// Receivers spawn first and open their connections at t=0; the
	// sender starts after an instant so no retained-backlog path is
	// taken for broadcast receivers.
	perRecv := msgs
	if proto == simmpf.FCFS {
		if nRecv > msgs {
			return 0, fmt.Errorf("bench: %d receivers for %d messages", nRecv, msgs)
		}
		perRecv = 0 // FCFS receivers share the stream; counted below
	}
	fcfsShare := make([]int, nRecv)
	for i := 0; i < msgs; i++ {
		fcfsShare[i%nRecv]++
	}
	for i := 0; i < nRecv; i++ {
		i := i
		k.Spawn(fmt.Sprintf("recv%d", i), func(p *sim.Proc) {
			c := f.OpenReceive(p, "fan", proto)
			want := perRecv
			if proto == simmpf.FCFS {
				want = fcfsShare[i]
			}
			for j := 0; j < want; j++ {
				f.Receive(p, c)
			}
			f.CloseReceive(p, c)
		})
	}
	k.Spawn("sender", func(p *sim.Proc) {
		p.Advance(1e-6)
		s := f.OpenSend(p, "fan")
		for i := 0; i < msgs; i++ {
			f.Send(p, s, msgLen)
		}
		f.CloseSend(p, s)
	})
	if err := k.Run(); err != nil {
		return 0, err
	}
	_, bytes := f.Delivered()
	return float64(bytes) / k.Now(), nil
}

// randomRegionMsgsPerProc is the region sizing the simulated random
// benchmark assumes: the paper's init() pre-allocates for the worst
// case, so the mapped region grows with both process count and message
// size — the memory pressure behind Figure 6's paging knee.
const randomRegionMsgsPerProc = 600

// SimRandom reruns the random benchmark: nProcs fully connected
// processes, each sending msgsPerProc messages to random destinations
// and draining its inbox after every send. The machine's paging factor
// is engaged according to the run's memory footprint.
func SimRandom(m *balance.Machine, msgLen, nProcs, msgsPerProc int) (float64, error) {
	if msgLen < 1 || nProcs < 2 || msgsPerProc < 1 {
		return 0, fmt.Errorf("bench: SimRandom(msgLen=%d, nProcs=%d, msgs=%d)", msgLen, nProcs, msgsPerProc)
	}
	k := sim.NewKernel(7)
	f := simmpf.New(k, m)
	f.SetWorkload(nProcs, float64(nProcs*randomRegionMsgsPerProc*msgLen))

	inbox := func(pid int) string { return fmt.Sprintf("rand-%d", pid) }

	// A two-phase structure replaces the native atomic counter: all
	// processes open, send (draining as they go), then drain completely.
	// The sim barrier is a mutex+cond counter.
	mu := sim.NewMutex(k)
	cond := sim.NewCond(mu)
	arrived := 0
	phase := 0
	barrier := func(p *sim.Proc) {
		mu.Lock(p)
		arrived++
		if arrived == nProcs {
			arrived = 0
			phase++
			cond.Broadcast(p)
		} else {
			myPhase := phase
			for phase == myPhase {
				cond.Wait(p)
			}
		}
		mu.Unlock(p)
	}

	for w := 0; w < nProcs; w++ {
		w := w
		k.Spawn(fmt.Sprintf("proc%d", w), func(p *sim.Proc) {
			in := f.OpenReceive(p, inbox(w), simmpf.FCFS)
			outs := make([]*simmpf.Circuit, nProcs)
			for d := 0; d < nProcs; d++ {
				if d != w {
					outs[d] = f.OpenSend(p, inbox(d))
				}
			}
			drain := func() {
				for f.Check(p, in) {
					f.Receive(p, in)
				}
			}
			barrier(p)
			for i := 0; i < msgsPerProc; i++ {
				d := k.Rand().Intn(nProcs - 1)
				if d >= w {
					d++
				}
				f.Send(p, outs[d], msgLen)
				drain()
			}
			barrier(p)
			drain()
			f.CloseReceive(p, in)
			for d := 0; d < nProcs; d++ {
				if d != w {
					f.CloseSend(p, outs[d])
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	_, bytes := f.Delivered()
	return float64(bytes) / k.Now(), nil
}
