package bench

import (
	"fmt"
	"testing"
)

// The selector-scaling benchmarks compare the per-circuit waiter lists
// (Selector, rewritten ReceiveAny) against the legacy facility-wide
// pulse. `go test -bench SelectorHerd` prints the per-mode numbers;
// TestSelectorWakeupAdvantage enforces the headline claim and
// TestSelectorWakeupsFlat the scaling shape.

func BenchmarkSelectorHerd(b *testing.B) {
	for _, mode := range []MuxMode{MuxSelector, MuxAnyWaiters, MuxAnyGlobalPulse} {
		b.Run(fmt.Sprintf("mode=%s", mode), func(b *testing.B) {
			msgs := b.N
			if msgs < 50 {
				msgs = 50
			}
			if msgs > 2000 {
				msgs = 2000
			}
			res, err := NativeSelectorHerd(mode, HerdWaiters, 8, msgs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.WakeupsPerMsg, "wakeups/msg")
			b.ReportMetric(res.SpuriousPerMsg, "spurious/msg")
		})
	}
}

// TestSelectorWakeupAdvantage enforces the tentpole claim: with 8
// consumers parked over 64 circuits and traffic on a single hot
// circuit, the global pulse pays at least 4× the spurious wakeups per
// delivered message that the selector does. The margin is normally far
// larger — the pulse wakes all 7 bystanders per message (~7
// spurious/msg) while the selector wakes none (~0, floored at 0.25 for
// a finite ratio) — best-of-five absorbs scheduler noise on loaded CI
// machines.
func TestSelectorWakeupAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("wakeup comparison skipped in -short mode")
	}
	const (
		circuitsPer = 8 // × HerdWaiters = 64 circuits
		msgs        = 300
		want        = 4.0
		floor       = 0.25
	)
	best := 0.0
	for attempt := 0; attempt < 5; attempt++ {
		sel, err := NativeSelectorHerd(MuxSelector, HerdWaiters, circuitsPer, msgs)
		if err != nil {
			t.Fatal(err)
		}
		glob, err := NativeSelectorHerd(MuxAnyGlobalPulse, HerdWaiters, circuitsPer, msgs)
		if err != nil {
			t.Fatal(err)
		}
		denom := sel.SpuriousPerMsg
		if denom < floor {
			denom = floor
		}
		ratio := glob.SpuriousPerMsg / denom
		t.Logf("attempt %d: selector %.2f spurious/msg (%.2f wakeups/msg), global pulse %.2f spurious/msg (%.2f wakeups/msg) — %.1fx",
			attempt, sel.SpuriousPerMsg, sel.WakeupsPerMsg,
			glob.SpuriousPerMsg, glob.WakeupsPerMsg, ratio)
		if ratio > best {
			best = ratio
		}
		if best >= want {
			return
		}
	}
	t.Errorf("global pulse pays %.2fx the selector's spurious wakeups, want >= %.1fx", best, want)
}

// TestSelectorWakeupsFlat checks the scaling shape: a selector
// consumer's wakeups per delivered message must stay ~constant as the
// bystander circuit count quadruples (16 → 64 circuits) — O(ready)
// per wakeup, with no dependence on how much idle state is parked.
func TestSelectorWakeupsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling shape skipped in -short mode")
	}
	const msgs = 300
	best := false
	var small, large HerdResult
	for attempt := 0; attempt < 5 && !best; attempt++ {
		var err error
		small, err = NativeSelectorHerd(MuxSelector, HerdWaiters, 2, msgs) // 16 circuits
		if err != nil {
			t.Fatal(err)
		}
		large, err = NativeSelectorHerd(MuxSelector, HerdWaiters, 8, msgs) // 64 circuits
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("attempt %d: wakeups/msg %.2f at 16 circuits, %.2f at 64 circuits",
			attempt, small.WakeupsPerMsg, large.WakeupsPerMsg)
		// Paced sends wake the hot consumer about once per message in
		// both shapes; allow generous headroom before calling it
		// growth.
		limit := 2 * small.WakeupsPerMsg
		if limit < 1.5 {
			limit = 1.5
		}
		best = large.WakeupsPerMsg <= limit
	}
	if !best {
		t.Errorf("wakeups/msg grew from %.2f (16 circuits) to %.2f (64 circuits); selector wakeups must not scale with idle circuits",
			small.WakeupsPerMsg, large.WakeupsPerMsg)
	}
}

// TestSelectorSweepQuick exercises the sweep end-to-end: three series
// (one per mux mode), one point per circuit count.
func TestSelectorSweepQuick(t *testing.T) {
	fig, err := SelectorSweep(Config{Mode: Native, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("sweep produced %d series, want 3", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Errorf("series %q has %d points, want 2", s.Label, len(s.Points))
		}
	}
}
