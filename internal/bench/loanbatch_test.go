package bench

import (
	"fmt"
	"testing"
)

// BenchmarkLoanBatchAdvantage reports the batched and per-message
// zero-copy planes at the headline configuration; the companion gate
// (TestLoanBatchHarvestAdvantage) enforces the ratios, this benchmark
// records the continuous trajectory.
func BenchmarkLoanBatchAdvantage(b *testing.B) {
	for _, batched := range []bool{false, true} {
		name := "per-message"
		if batched {
			name = "batched"
		}
		b.Run(fmt.Sprintf("%s/%dB/batch%d", name, LoanBatchPayload, LoanBatchSize), func(b *testing.B) {
			msgs := b.N
			if msgs < 64 {
				msgs = 64
			}
			res, err := NativeLoanBatch(batched, LoanBatchPayload, LoanBatchSize, msgs)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(LoanBatchPayload))
			b.ReportMetric(res.MsgsPerSec, "msgs/s")
			b.ReportMetric(res.ArenaLocksPerMsg, "arena-locks/msg")
		})
	}
}

// TestLoanBatchHarvestAdvantage is the batched plane's gate, with two
// teeth. Throughput: at batch 16 and 4 KiB payloads the batched
// pipeline (LoanBatch/CommitAll + WaitViews/ReleaseViews) must deliver
// at least 1.5x the per-message zero-copy plane — best of five
// attempts, since throughput comparisons on shared CI boxes are noisy.
// Amortisation: the batched plane must take at most 1/8 the arena
// free-pool lock acquisitions per message (expected ~2/16 against ~2;
// this is a lock count, not a timing, so it gets the best attempt too
// but barely varies). Both planes must keep the copy ledger flat.
func TestLoanBatchHarvestAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short mode")
	}
	const (
		msgs           = 3000
		wantThroughput = 1.5
		wantLockRatio  = 1.0 / 8.0
	)
	bestRatio, bestLockRatio := 0.0, -1.0
	for attempt := 0; attempt < 5; attempt++ {
		per, err := NativeLoanBatch(false, LoanBatchPayload, LoanBatchSize, msgs)
		if err != nil {
			t.Fatal(err)
		}
		bat, err := NativeLoanBatch(true, LoanBatchPayload, LoanBatchSize, msgs)
		if err != nil {
			t.Fatal(err)
		}
		for name, st := range map[string]struct {
			in, out uint64
		}{
			"per-message": {per.Stats.PayloadCopiesIn, per.Stats.PayloadCopiesOut},
			"batched":     {bat.Stats.PayloadCopiesIn, bat.Stats.PayloadCopiesOut},
		} {
			if st.in != 0 || st.out != 0 {
				t.Fatalf("%s plane leaked payload copies: in=%d out=%d", name, st.in, st.out)
			}
		}
		if got := bat.Stats.LoanBatchSends; got != msgs {
			t.Fatalf("LoanBatchSends = %d, want %d", got, msgs)
		}
		if got := bat.Stats.HarvestedViews; got != msgs {
			t.Fatalf("HarvestedViews = %d, want %d", got, msgs)
		}
		ratio := bat.MsgsPerSec / per.MsgsPerSec
		lockRatio := bat.ArenaLocksPerMsg / per.ArenaLocksPerMsg
		t.Logf("attempt %d: per-message %.0f msgs/s @ %.2f locks/msg, batched %.0f msgs/s @ %.2f locks/msg (%.2fx throughput, %.3fx locks)",
			attempt, per.MsgsPerSec, per.ArenaLocksPerMsg, bat.MsgsPerSec, bat.ArenaLocksPerMsg, ratio, lockRatio)
		if ratio > bestRatio {
			bestRatio = ratio
		}
		if bestLockRatio < 0 || lockRatio < bestLockRatio {
			bestLockRatio = lockRatio
		}
		if bestRatio >= wantThroughput && bestLockRatio <= wantLockRatio {
			break
		}
	}
	if bestRatio < wantThroughput {
		t.Errorf("batched plane is %.2fx the per-message plane, want >= %.1fx", bestRatio, wantThroughput)
	}
	if bestLockRatio > wantLockRatio {
		t.Errorf("batched plane takes %.3fx the arena lock acquisitions per message, want <= %.3f",
			bestLockRatio, wantLockRatio)
	}
}

// TestLoanBatchSweepQuick exercises the ablation sweep end-to-end.
func TestLoanBatchSweepQuick(t *testing.T) {
	throughput, locks, err := LoanBatchSweep(Config{Mode: Native, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []struct {
		name string
		s    int
	}{{"throughput", len(throughput.Series)}, {"locks", len(locks.Series)}} {
		if fig.s != 2 {
			t.Errorf("%s figure has %d series, want 2", fig.name, fig.s)
		}
	}
	for _, s := range append(throughput.Series, locks.Series...) {
		if len(s.Points) != 2 {
			t.Errorf("series %q has %d points, want 2", s.Label, len(s.Points))
		}
	}
}
