package bench

import (
	"fmt"
	"time"

	"repro/internal/stats"
	"repro/mpf"
)

// Contention-scaling benchmark. The paper's Figures 4-6 measure how
// throughput bends over as process counts grow; a large part of that
// bend is the single global name-table lock every open/close takes.
// This benchmark isolates exactly that cost on the real implementation:
// workers churn open → traffic → close on private circuits, so the only
// shared state is the registry itself (plus the arena). Sweeping the
// shard count and the batch size separates the two remedies this
// repository adds — registry sharding (open/close never contend across
// shards) and batched send/receive (per-message fixed costs amortize
// across a batch).

// ContentionResult is one contention run's outcome.
type ContentionResult struct {
	// MsgsPerSec is delivered messages per second across all workers.
	MsgsPerSec float64
	// OpsPerSec is registry operations (opens + closes) per second.
	OpsPerSec float64
	// Registry holds the per-shard lock counters gathered during the
	// run; index i describes shard i.
	Registry []stats.LockStat
}

// NativeContention runs `workers` goroutines for `rounds` iterations
// each. Every iteration opens a send and an FCFS receive connection on
// the worker's private circuit, moves `batch` messages of msgLen bytes
// through it (one SendBatch/ReceiveBatch pair when batch > 1, plain
// Send/Receive when batch == 1), and closes both connections — four
// registry operations per iteration. shards configures the registry;
// shards == 1 reproduces the paper's single global table lock.
func NativeContention(shards, workers, batch, rounds, msgLen int) (ContentionResult, error) {
	if shards < 1 || workers < 1 || batch < 1 || rounds < 1 || msgLen < 0 {
		return ContentionResult{}, fmt.Errorf("bench: contention(shards=%d, workers=%d, batch=%d, rounds=%d, msgLen=%d)",
			shards, workers, batch, rounds, msgLen)
	}
	fac, err := mpf.New(
		mpf.WithMaxProcesses(workers),
		mpf.WithMaxLNVCs(workers+4),
		mpf.WithRegistryShards(shards),
		mpf.WithBlocksPerProcess(blocksFor(msgLen, 2*batch)),
	)
	if err != nil {
		return ContentionResult{}, err
	}
	defer fac.Shutdown()

	payload := make([]byte, msgLen)
	start := time.Now()
	err = fac.Run(workers, func(p *mpf.Process) error {
		name := fmt.Sprintf("cont-%d", p.PID())
		sendBufs := make([][]byte, batch)
		recvBufs := make([][]byte, batch)
		for i := range sendBufs {
			sendBufs[i] = payload
			recvBufs[i] = make([]byte, msgLen)
		}
		for r := 0; r < rounds; r++ {
			s, err := p.OpenSend(name)
			if err != nil {
				return err
			}
			rc, err := p.OpenReceive(name, mpf.FCFS)
			if err != nil {
				return err
			}
			if batch == 1 {
				if err := s.Send(payload); err != nil {
					return err
				}
				if _, err := rc.Receive(recvBufs[0]); err != nil {
					return err
				}
			} else {
				if err := s.SendBatch(sendBufs); err != nil {
					return err
				}
				for got := 0; got < batch; {
					ns, err := rc.ReceiveBatch(recvBufs[got:])
					if err != nil {
						return err
					}
					got += len(ns)
				}
			}
			if err := rc.Close(); err != nil {
				return err
			}
			if err := s.Close(); err != nil {
				return err
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return ContentionResult{}, err
	}
	return ContentionResult{
		MsgsPerSec: rate(workers*rounds*batch, elapsed),
		OpsPerSec:  rate(workers*rounds*4, elapsed),
		Registry:   fac.RegistryStats(),
	}, nil
}

// ContentionBatch is the batch size the sharded/batched configuration
// of the sweep uses.
const ContentionBatch = 32

// ContentionSweep sweeps worker counts for two configurations —
// the paper's layout (one registry shard, single-message traffic) and
// this repository's (16 shards, batches of ContentionBatch) — and
// returns messages/sec versus workers, one series per configuration.
// The per-shard registry counters of the largest sharded run are
// returned alongside the figure.
func ContentionSweep(cfg Config) (*stats.Figure, []stats.LockStat, error) {
	fig := stats.NewFigure("Contention Scaling — Open/Close Churn Throughput vs. Workers (native)",
		"workers", "msgs/sec")
	unsharded := fig.AddSeries("unsharded, single-message")
	sharded := fig.AddSeries(fmt.Sprintf("16 shards, batch=%d", ContentionBatch))
	workers := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		workers = []int{1, 4, 8}
	}
	rounds := cfg.scale(400, 60)
	var lastRegistry []stats.LockStat
	for _, w := range workers {
		res, err := NativeContention(1, w, 1, rounds, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("contention unsharded workers=%d: %w", w, err)
		}
		unsharded.Add(w, res.MsgsPerSec)
		res, err = NativeContention(16, w, ContentionBatch, rounds, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("contention sharded workers=%d: %w", w, err)
		}
		sharded.Add(w, res.MsgsPerSec)
		lastRegistry = res.Registry
	}
	return fig, lastRegistry, nil
}
