package bench

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/mpf"
)

// Credit-fairness ablation. The paper's only backpressure signal is
// global block-pool exhaustion: every sender competes for the same
// arena, so one hot circuit that outruns its receiver fills the region
// and every *other* circuit's Send parks behind it — multi-tenant
// starvation from a single bursty workload (cf. the MMPP burstiness
// models in PAPERS.md). Per-circuit credit (mpf.WithCredit) bounds the
// hot circuit's arena share instead: the hot sender parks on its own
// circuit's budget while the rest of the region stays free for
// everyone else.
//
// NativeCreditFairness measures exactly that unfairness: a hot
// circuit whose sender free-runs against a deliberately slow receiver,
// next to cold circuits sending sparse traffic that is consumed
// immediately. The reported number is the cold senders' p99 Send
// latency — the tenant experience — with hot-circuit throughput
// alongside to show what the budget costs the aggressor.

// CreditFairnessBudget and CreditFairnessCircuits are the headline
// configuration the gate test and BENCH.json measure: an 8-circuit
// hot/cold mix at a 16-block budget.
const (
	CreditFairnessBudget   = 16
	CreditFairnessCircuits = 8
)

// CreditFairnessResult is one fairness run's outcome.
type CreditFairnessResult struct {
	// ColdP50 and ColdP99 are the cold senders' Send latency
	// percentiles across every cold send of the run.
	ColdP50, ColdP99 time.Duration
	// HotMsgsPerSec is the hot circuit's delivered throughput — the
	// price the aggressor pays for the budget.
	HotMsgsPerSec float64
	// Stats carries the ledger (CreditStalls, CreditsHeld) the gate
	// asserts on.
	Stats mpf.Stats
}

// NativeCreditFairness runs one hot circuit (a free-running sender of
// 240-byte messages against a receiver pausing between receives)
// beside circuits-1 cold circuits (56-byte messages consumed
// immediately) on a shared region, with every circuit budgeted to
// creditBlocks accounted blocks (0 = flow control off, the paper's
// behaviour). Each cold sender times coldMsgs sends; the run reports
// the aggregate cold latency percentiles and the hot throughput.
func NativeCreditFairness(creditBlocks, circuits, coldMsgs int) (CreditFairnessResult, error) {
	if circuits < 2 || coldMsgs < 1 || creditBlocks < 0 {
		return CreditFairnessResult{}, fmt.Errorf("bench: creditfairness(credit=%d, circuits=%d, coldMsgs=%d)",
			creditBlocks, circuits, coldMsgs)
	}
	procs := 2 * circuits // sender + receiver per circuit
	// Size the region so the credited hot circuit can never exhaust it
	// (circuits × budget < total blocks) while the uncredited one can:
	// 32 blocks per process = 512 blocks at the headline 8 circuits,
	// which a free-running 4-block-per-message hot sender fills in a few
	// hundred microseconds of receiver pause.
	opts := []mpf.Option{
		mpf.WithMaxProcesses(procs),
		mpf.WithMaxLNVCs(circuits + 2),
		mpf.WithBlocksPerProcess(512 / procs),
	}
	if creditBlocks > 0 {
		opts = append(opts, mpf.WithCredit(creditBlocks))
	}
	fac, err := mpf.New(opts...)
	if err != nil {
		return CreditFairnessResult{}, err
	}
	defer fac.Shutdown()

	const (
		hotPayloadLen  = 240 // 4 accounted blocks under 64-byte blocks
		coldPayloadLen = 56  // 1 accounted block
		hotDrainPause  = 100 * time.Microsecond
	)
	name := func(c int) string { return fmt.Sprintf("fair-%d", c) }
	poison := []byte{0xFF}

	var (
		coldDone  atomic.Int32 // cold senders finished
		hotStop   atomic.Bool  // set when every cold sender is done
		hotSent   atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration // cold Send latencies, all senders
		// Credit is receiver-granted: a sender that spends its whole
		// budget before its receiver has opened can never be granted
		// more and fails with ErrNotConnected, by design. Real tenants
		// bring their receivers up before the traffic; the bench gates
		// senders on every receiver being open so the measurement
		// starts from that shape. A receiver that fails to open
		// releases the gate too (via its deferred release), so senders
		// fail forward instead of parking on a channel nobody will
		// close.
		recvOpen  atomic.Int32
		readyOnce sync.Once
		recvReady = make(chan struct{})
	)
	releaseSenders := func() { readyOnce.Do(func() { close(recvReady) }) }
	markOpen := func() {
		if recvOpen.Add(1) == int32(circuits) {
			releaseSenders()
		}
	}
	var hotElapsed time.Duration
	// Uncredited, the hot circuit's monopoly starves cold sends for an
	// *unbounded* time (that unboundedness is the finding), so the run
	// caps the monopoly window: after maxMonopoly the hot receiver
	// drops its deliberate pause and the backlog drains, bounding both
	// the recorded starvation and the benchmark's wall time. Credited
	// runs finish far inside the cap and never see it fire.
	const maxMonopoly = 5 * time.Second
	watchdog := time.AfterFunc(maxMonopoly, func() { hotStop.Store(true) })
	defer watchdog.Stop()
	start := time.Now()
	err = fac.Run(procs, func(p *mpf.Process) error {
		pid := p.PID()
		switch {
		case pid == 0: // hot sender
			s, err := p.OpenSend(name(0))
			if err != nil {
				return err
			}
			<-recvReady
			payload := make([]byte, hotPayloadLen)
			for !hotStop.Load() {
				if err := s.Send(payload); err != nil {
					return err
				}
				hotSent.Add(1)
			}
			hotElapsed = time.Since(start)
			return s.Send(poison)
		case pid < circuits: // cold senders
			s, err := p.OpenSend(name(pid))
			if err != nil {
				return err
			}
			<-recvReady
			payload := make([]byte, coldPayloadLen)
			lats := make([]time.Duration, 0, coldMsgs)
			for i := 0; i < coldMsgs; i++ {
				t0 := time.Now()
				if err := s.Send(payload); err != nil {
					return err
				}
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, lats...)
			mu.Unlock()
			if coldDone.Add(1) == int32(circuits-1) {
				hotStop.Store(true)
			}
			return s.Send(poison)
		case pid == circuits: // hot receiver: the deliberate bottleneck
			defer releaseSenders()
			r, err := p.OpenReceive(name(0), mpf.FCFS)
			if err != nil {
				return err
			}
			defer r.Close()
			markOpen()
			buf := make([]byte, hotPayloadLen)
			for {
				n, err := r.Receive(buf)
				if err != nil {
					return err
				}
				if n == 1 && buf[0] == 0xFF {
					return nil
				}
				// The pause is what lets the uncredited hot sender pile
				// blocks up; once the cold senders are done it stops, so
				// the backlog drains at full speed and the run ends.
				if !hotStop.Load() {
					time.Sleep(hotDrainPause)
				}
			}
		default: // cold receivers: consume immediately
			defer releaseSenders()
			c := pid - circuits
			r, err := p.OpenReceive(name(c), mpf.FCFS)
			if err != nil {
				return err
			}
			defer r.Close()
			markOpen()
			buf := make([]byte, coldPayloadLen)
			for {
				n, err := r.Receive(buf)
				if err != nil {
					return err
				}
				if n == 1 && buf[0] == 0xFF {
					return nil
				}
			}
		}
	})
	if err != nil {
		return CreditFairnessResult{}, err
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res := CreditFairnessResult{
		ColdP50: percentile(latencies, 0.50),
		ColdP99: percentile(latencies, 0.99),
		Stats:   fac.Stats(),
	}
	if hotElapsed > 0 {
		res.HotMsgsPerSec = float64(hotSent.Load()) / hotElapsed.Seconds()
	}
	return res, nil
}

// percentile returns the p-quantile of sorted (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// CreditSweep runs the fairness ablation across credit budgets and
// returns two figures at the headline circuit count: the cold senders'
// p99 Send latency versus budget (0 = flow control off, drawn at x=0),
// and the hot circuit's throughput versus budget — fairness bought and
// what it costs the aggressor.
func CreditSweep(cfg Config) (latency, hot *stats.Figure, err error) {
	coldMsgs := cfg.scale(300, 40)
	budgets := []int{0, 8, 16, 32, 64}
	if cfg.Quick {
		budgets = []int{0, 16, 64}
	}
	latency = stats.NewFigure(
		fmt.Sprintf("Credit Ablation — Cold-Circuit p99 Send Latency vs. Budget (native, %d circuits, hot/cold mix)", CreditFairnessCircuits),
		"credit blocks (0 = off)", "p99 µs")
	hot = stats.NewFigure(
		fmt.Sprintf("Credit Ablation — Hot-Circuit Throughput vs. Budget (native, %d circuits, hot/cold mix)", CreditFairnessCircuits),
		"credit blocks (0 = off)", "hot msgs/sec")
	lat := latency.AddSeries("cold p99 send latency")
	p50 := latency.AddSeries("cold p50 send latency")
	hotTput := hot.AddSeries("hot circuit throughput")
	for _, b := range budgets {
		res, err := NativeCreditFairness(b, CreditFairnessCircuits, coldMsgs)
		if err != nil {
			return nil, nil, fmt.Errorf("creditfairness budget=%d: %w", b, err)
		}
		lat.Add(b, float64(res.ColdP99)/float64(time.Microsecond))
		p50.Add(b, float64(res.ColdP50)/float64(time.Microsecond))
		hotTput.Add(b, res.HotMsgsPerSec)
	}
	return latency, hot, nil
}
