package bench

import (
	"fmt"

	"repro/internal/apps/gauss"
	"repro/internal/apps/sor"
	"repro/internal/balance"
	"repro/internal/stats"
	"time"
)

// Mode selects the execution substrate for a figure.
type Mode uint8

const (
	// Simulated replays the protocol on the Balance 21000 model; values
	// land at the paper's absolute scale.
	Simulated Mode = iota
	// Native runs the real implementation on goroutines; shapes should
	// match the paper, absolute values reflect the host machine.
	Native
)

// String names the mode.
func (m Mode) String() string {
	if m == Native {
		return "native"
	}
	return "simulated"
}

// Config tunes figure generation.
type Config struct {
	Mode Mode
	// Quick shrinks sweeps and message counts for tests (roughly 10×
	// cheaper, same shapes).
	Quick bool
	// Machine overrides the simulated machine model (default
	// Balance21000).
	Machine *balance.Machine
}

func (c *Config) machine() *balance.Machine {
	if c.Machine != nil {
		return c.Machine
	}
	return balance.Balance21000()
}

func (c *Config) scale(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Fig3 regenerates "Figure 3: Base Benchmark — Throughput vs. Message
// Length".
func Fig3(cfg Config) (*stats.Figure, error) {
	fig := stats.NewFigure("Figure 3: Base Benchmark — Throughput vs. Message Length ("+cfg.Mode.String()+")",
		"msglen", "bytes/sec")
	s := fig.AddSeries("throughput")
	lengths := []int{16, 64, 128, 256, 512, 768, 1024, 1280, 1536, 1792, 2048}
	if cfg.Quick {
		lengths = []int{16, 128, 512, 1024, 2048}
	}
	rounds := cfg.scale(200, 30)
	for _, l := range lengths {
		var (
			thr float64
			err error
		)
		if cfg.Mode == Native {
			thr, err = NativeBase(l, rounds)
		} else {
			thr, err = SimBase(cfg.machine(), l, rounds)
		}
		if err != nil {
			return nil, fmt.Errorf("fig3 len=%d: %w", l, err)
		}
		s.Add(l, thr)
	}
	return fig, nil
}

// fanoutFigure drives Fig4 and Fig5 (same axes, different protocol).
func fanoutFigure(cfg Config, title string,
	run func(msgLen, nRecv, msgs int) (float64, error)) (*stats.Figure, error) {
	fig := stats.NewFigure(title, "receivers", "bytes/sec")
	receivers := []int{1, 2, 4, 8, 12, 16}
	if cfg.Quick {
		receivers = []int{1, 4, 8}
	}
	for _, msgLen := range []int{16, 128, 1024} {
		s := fig.AddSeries(fmt.Sprintf("%d byte", msgLen))
		for _, n := range receivers {
			msgs := cfg.scale(48, 16) * n // keep per-receiver work fixed
			thr, err := run(msgLen, n, msgs)
			if err != nil {
				return nil, fmt.Errorf("%s len=%d n=%d: %w", title, msgLen, n, err)
			}
			s.Add(n, thr)
		}
	}
	return fig, nil
}

// Fig4 regenerates "Figure 4: Fcfs Benchmark — Throughput vs Receiving
// Processes".
func Fig4(cfg Config) (*stats.Figure, error) {
	title := "Figure 4: Fcfs Benchmark — Throughput vs Receiving Processes (" + cfg.Mode.String() + ")"
	if cfg.Mode == Native {
		return fanoutFigure(cfg, title, NativeFCFS)
	}
	m := cfg.machine()
	return fanoutFigure(cfg, title, func(l, n, k int) (float64, error) { return SimFCFS(m, l, n, k) })
}

// Fig5 regenerates "Figure 5: Broadcast Benchmark — Throughput vs
// Receiving Processes".
func Fig5(cfg Config) (*stats.Figure, error) {
	title := "Figure 5: Broadcast Benchmark — Throughput vs Receiving Processes (" + cfg.Mode.String() + ")"
	if cfg.Mode == Native {
		return fanoutFigure(cfg, title, NativeBroadcast)
	}
	m := cfg.machine()
	return fanoutFigure(cfg, title, func(l, n, k int) (float64, error) { return SimBroadcast(m, l, n, k) })
}

// Fig6 regenerates "Figure 6: Random Benchmark — Throughput vs
// Processes".
func Fig6(cfg Config) (*stats.Figure, error) {
	fig := stats.NewFigure("Figure 6: Random Benchmark — Throughput vs Processes ("+cfg.Mode.String()+")",
		"processes", "bytes/sec")
	procs := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	lengths := []int{1, 8, 64, 256, 1024}
	if cfg.Quick {
		procs = []int{2, 6, 12, 20}
		lengths = []int{8, 256, 1024}
	}
	msgsPerProc := cfg.scale(40, 10)
	for _, msgLen := range lengths {
		s := fig.AddSeries(fmt.Sprintf("%d byte", msgLen))
		for _, n := range procs {
			var (
				thr float64
				err error
			)
			if cfg.Mode == Native {
				thr, err = NativeRandom(msgLen, n, msgsPerProc, 1)
			} else {
				thr, err = SimRandom(cfg.machine(), msgLen, n, msgsPerProc)
			}
			if err != nil {
				return nil, fmt.Errorf("fig6 len=%d n=%d: %w", msgLen, n, err)
			}
			s.Add(n, thr)
		}
	}
	return fig, nil
}

// Fig7 regenerates "Figure 7: Gauss Jordan — Speedup vs. Processes".
func Fig7(cfg Config) (*stats.Figure, error) {
	fig := stats.NewFigure("Figure 7: Gauss-Jordan — Speedup vs. Processes ("+cfg.Mode.String()+")",
		"processes", "speedup")
	sizes := []int{32, 48, 64, 96}
	procs := []int{1, 2, 4, 8, 12, 16}
	if cfg.Quick {
		sizes = []int{32, 64}
		procs = []int{1, 4, 8}
	}
	for _, n := range sizes {
		s := fig.AddSeries(fmt.Sprintf("%dx%d matrix", n, n))
		if cfg.Mode == Simulated {
			m := cfg.machine()
			seq := gauss.SimSeqTime(m, n)
			for _, p := range procs {
				pt, err := gauss.SimTime(m, n, p)
				if err != nil {
					return nil, fmt.Errorf("fig7 n=%d p=%d: %w", n, p, err)
				}
				s.Add(p, seq/pt)
			}
			continue
		}
		seq, err := timeNativeGauss(n, 0)
		if err != nil {
			return nil, err
		}
		for _, p := range procs {
			pt, err := timeNativeGauss(n, p)
			if err != nil {
				return nil, fmt.Errorf("fig7 n=%d p=%d: %w", n, p, err)
			}
			s.Add(p, seq/pt)
		}
	}
	return fig, nil
}

// timeNativeGauss times one native solve; workers == 0 selects the
// sequential baseline. The median of three runs reduces scheduler noise.
func timeNativeGauss(n, workers int) (float64, error) {
	rng := newDeterministicRand(int64(n))
	a, b := gauss.NewSystem(n, rng)
	var times []float64
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		var err error
		if workers == 0 {
			_, err = gauss.SolveSequential(a, b)
		} else {
			var fac *mpfFacility
			fac, err = newGaussFacility(workers)
			if err == nil {
				_, err = gauss.SolveMPF(fac.f, workers, a, b)
				fac.f.Shutdown()
			}
		}
		if err != nil {
			return 0, err
		}
		times = append(times, time.Since(start).Seconds())
	}
	return stats.Median(times), nil
}

// Fig8 regenerates "Figure 8: Poisson Elliptic PDE Solver with SOR
// Iterations — Per Iteration Speedup vs. Dimension (N)". Speedups are
// relative to the 4-process (N=2) solver, as in the paper.
func Fig8(cfg Config) (*stats.Figure, error) {
	fig := stats.NewFigure("Figure 8: SOR Poisson Solver — Per-Iteration Speedup vs. Dimension ("+cfg.Mode.String()+")",
		"N", "per-iter speedup (vs N=2)")
	grids := []int{9, 17, 33, 65}
	dims := []int{2, 3, 4}
	if cfg.Quick {
		grids = []int{9, 33}
	}
	iters := cfg.scale(5, 2)
	for _, p := range grids {
		times := &stats.Series{Label: fmt.Sprintf("%dx%d problem", p, p)}
		for _, n := range dims {
			var (
				t   float64
				err error
			)
			if cfg.Mode == Simulated {
				t, err = sor.SimIterTime(cfg.machine(), p, n, iters)
			} else {
				t, err = timeNativeSORIter(p, n)
			}
			if err != nil {
				return nil, fmt.Errorf("fig8 p=%d n=%d: %w", p, n, err)
			}
			times.Add(n, t)
		}
		sp, err := stats.Speedup(times, 2, 1)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, sp)
	}
	return fig, nil
}

// timeNativeSORIter measures native per-iteration time for a p×p grid on
// an n×n process mesh.
func timeNativeSORIter(p, n int) (float64, error) {
	pr := sor.DefaultProblem(p)
	fac, err := newSORFacility(n*n + 1)
	if err != nil {
		return 0, err
	}
	defer fac.f.Shutdown()
	start := time.Now()
	_, iters, err := sor.SolveMPF(fac.f, n, pr)
	if err != nil {
		return 0, err
	}
	if iters < 1 {
		return 0, fmt.Errorf("bench: SOR reported %d iterations", iters)
	}
	return time.Since(start).Seconds() / float64(iters), nil
}
