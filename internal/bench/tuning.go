package bench

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/affinity"
	"repro/internal/shm"
	"repro/mpf"
)

// Self-tuning ablation. PR 8 made four hot-path mechanisms adaptive or
// layout-aware — the harvest budget sizes itself from an EWMA of
// observed ready-set depth with a per-circuit fairness cap, Run workers
// pin to distinct cores under WithAffinity, the arena backing takes a
// transparent-huge-page hint under WithHugePages, and the contended
// protocol words moved onto private 64-byte lines — and each of those
// is a claim that can be turned off. This file measures every claim
// against its own ablation on identical workloads:
//
//   - auto versus fixed harvest budgets under a bursty on/off arrival
//     mix (the MMPP shape from PAPERS.md), with per-round starvation
//     tracking: how many rounds a circuit with queued traffic can go
//     unserved. The fixed budget keeps the historical greedy sweep, so
//     the contrast shows both throughput (adaptive gulps track burst
//     depth) and fairness (the cap splits rounds between hot siblings).
//   - padded versus packed counter pairs — the synthetic false-sharing
//     microbench behind the layout map DESIGN.md §16 freezes.
//   - pinned versus floating Run workers on a producer/consumer stream.
//   - huge-page versus base-page arena backing, recording whether the
//     madvise hint actually took (shm.HugeStats) alongside throughput.
//
// `mpfbench -tuning` renders the four legs; BENCH.json carries the
// headline numbers (schema 5) and TestTuningAdvantage gates the
// adaptive-budget claim itself.

// The tuning headline configuration: a 4-circuit bursty mix whose
// burst depth (32) far exceeds the fixed budget (2), so a greedy fixed
// sweep both pays a round trip per 2 messages and serves circuits in
// ready order until each drains — the two costs the adaptive budget
// and fairness cap remove.
const (
	TuningCircuits    = 4
	TuningBurstDepth  = 32
	TuningBursts      = 24
	TuningFixedBudget = 2
	// TuningAutoMin and TuningAutoMax are the WithAutoHarvest window
	// the auto leg runs under; the max comfortably exceeds one burst so
	// the EWMA, not the clamp, sets the working budget.
	TuningAutoMin = 1
	TuningAutoMax = 64
)

const (
	tuningPayload  = 32
	tuningBurstGap = 100 * time.Microsecond
	tuningParkTTL  = 2 * time.Millisecond
)

// TuningHarvestResult is one auto-versus-fixed harvest run's outcome.
type TuningHarvestResult struct {
	// MsgsPerSec is delivered messages per second across the drain —
	// pure consumer-side harvest efficiency, since the backlog is fully
	// queued before the clock starts.
	MsgsPerSec float64
	// Rounds is the number of harvest calls that returned views. The
	// drain is deterministic (no timing races: everything is already
	// queued), so fixed.Rounds/auto.Rounds is a machine-independent
	// round-amortisation ratio, like loan_batch's lock_amortisation.
	Rounds int
	// MaxStarvationRounds is the worst gap observed across the drain:
	// the number of consecutive harvest rounds a circuit that still had
	// queued messages went unserved. Every undelivered circuit is ready
	// by construction, so the count is exact — this is the fairness
	// number the cap bounds and the greedy fixed sweep lets grow to
	// most of the drain.
	MaxStarvationRounds int
	// CapHits and BudgetPeak come from the facility stats: fairness-cap
	// truncations counted, and the highest HarvestAutoBudget gauge
	// value sampled across rounds (0 in fixed mode).
	CapHits    uint64
	BudgetPeak uint64
}

// NativeTuningHarvest drives `circuits` producers, each sending
// `bursts` bursts of `depth` messages with a quiet gap between bursts,
// at one consumer event loop harvesting with either the adaptive
// budget (auto, WaitViews(0) under the TuningAutoMin..Max window) or
// the historical fixed greedy budget (WaitViews(TuningFixedBudget)).
// The consumer holds off until the whole burst train has queued, then
// drains: arrival pacing cancels out of the comparison (on a slow or
// single-CPU box a live consumer just tracks the arrival rate in both
// modes and measures nothing), and the starvation count is exact.
func NativeTuningHarvest(auto bool, circuits, bursts, depth int) (TuningHarvestResult, error) {
	if circuits < 1 || bursts < 1 || depth < 1 {
		return TuningHarvestResult{}, fmt.Errorf("bench: tuningharvest(circuits=%d, bursts=%d, depth=%d)",
			circuits, bursts, depth)
	}
	perProducer := bursts * depth
	opts := []mpf.Option{
		mpf.WithMaxProcesses(circuits + 1),
		mpf.WithMaxLNVCs(circuits + 4),
		// The fixed-budget consumer is deliberately slower than the
		// producers, so the whole load can be in flight at once.
		mpf.WithBlocksPerProcess(blocksFor(tuningPayload, perProducer+16)),
	}
	if auto {
		opts = append(opts, mpf.WithAutoHarvest(TuningAutoMin, TuningAutoMax))
	}
	fac, err := mpf.New(opts...)
	if err != nil {
		return TuningHarvestResult{}, err
	}
	defer fac.Shutdown()

	var (
		done        atomic.Bool
		allSent     atomic.Bool
		sendersDone atomic.Int32
		res         TuningHarvestResult
		elapsed     time.Duration
		delivered   int
	)
	// A stuck run (a bug, not a slow box) must not hang the bench
	// forever: the watchdog drains every worker out through `done`.
	watchdog := time.AfterFunc(30*time.Second, func() { done.Store(true) })
	defer watchdog.Stop()
	name := func(c int) string { return fmt.Sprintf("tune-%d", c) }
	total := circuits * perProducer

	err = fac.Run(circuits+1, func(p *mpf.Process) (err error) {
		defer func() {
			if err != nil {
				done.Store(true)
			}
		}()
		if pid := p.PID(); pid < circuits {
			// Producer: wait for the consumer's go token, then send the
			// on/off burst train.
			s, err := p.OpenSend(name(pid))
			if err != nil {
				return err
			}
			g, err := p.OpenReceive("tune-go", mpf.FCFS)
			if err != nil {
				return err
			}
			defer g.Close()
			one := make([]byte, 1)
			for {
				if done.Load() {
					return nil
				}
				if _, err := g.ReceiveDeadline(one, 50*time.Millisecond); err == nil {
					break
				} else if !errors.Is(err, mpf.ErrTimeout) {
					return err
				}
			}
			payload := make([]byte, tuningPayload)
			for b := 0; b < bursts; b++ {
				for k := 0; k < depth; k++ {
					if done.Load() {
						return nil
					}
					if err := s.Send(payload); err != nil {
						return err
					}
				}
				if b < bursts-1 {
					time.Sleep(tuningBurstGap) // the off phase
				}
			}
			if sendersDone.Add(1) == int32(circuits) {
				allSent.Store(true)
			}
			return nil
		}

		// Consumer: one selector over every circuit, released together.
		conns := make([]*mpf.RecvConn, circuits)
		byID := make(map[mpf.ID]int, circuits)
		for c := range conns {
			rc, err := p.OpenReceive(name(c), mpf.FCFS)
			if err != nil {
				return err
			}
			conns[c] = rc
			byID[rc.ID()] = c
		}
		sel, err := p.NewSelector()
		if err != nil {
			return err
		}
		defer sel.Close()
		for _, rc := range conns {
			if err := sel.Add(rc); err != nil {
				return err
			}
		}
		gs, err := p.OpenSend("tune-go")
		if err != nil {
			return err
		}
		for i := 0; i < circuits; i++ {
			if err := gs.Send([]byte{1}); err != nil {
				return err
			}
		}

		// Let the whole burst train queue before draining.
		for !allSent.Load() {
			if done.Load() {
				return nil
			}
			time.Sleep(100 * time.Microsecond)
		}

		budget := TuningFixedBudget
		if auto {
			budget = 0
		}
		perCircuit := make([]int, circuits)
		gapRounds := make([]int, circuits)
		served := make([]bool, circuits)
		start := time.Now()
		for delivered < total {
			if done.Load() {
				return nil
			}
			vs, err := sel.WaitViewsDeadline(budget, tuningParkTTL)
			if err != nil {
				if errors.Is(err, mpf.ErrTimeout) {
					continue
				}
				if errors.Is(err, mpf.ErrShutdown) {
					return nil
				}
				return err
			}
			for i := range served {
				served[i] = false
			}
			for _, v := range vs {
				c := byID[v.Circuit()]
				perCircuit[c]++
				served[c] = true
				delivered++
			}
			mpf.ReleaseViews(vs)
			res.Rounds++
			if auto {
				if g := fac.Stats().HarvestAutoBudget; g > res.BudgetPeak {
					res.BudgetPeak = g
				}
			}
			for c := 0; c < circuits; c++ {
				switch {
				case served[c]:
					gapRounds[c] = 0
				case perCircuit[c] < perProducer:
					gapRounds[c]++
					if gapRounds[c] > res.MaxStarvationRounds {
						res.MaxStarvationRounds = gapRounds[c]
					}
				}
			}
		}
		elapsed = time.Since(start)
		return nil
	})
	if err != nil {
		return TuningHarvestResult{}, err
	}
	if delivered < total {
		return TuningHarvestResult{}, fmt.Errorf("bench: tuningharvest delivered %d of %d messages (watchdog?)",
			delivered, total)
	}
	res.MsgsPerSec = rate(total, elapsed)
	res.CapHits = fac.Stats().HarvestCapHits
	return res, nil
}

// TuningFalseSharing runs the padded-versus-packed counter microbench:
// two goroutines each hammering a private atomic word for iters
// increments, once with the words on the same 64-byte line (packed —
// the layout every padded struct in TestHotWordLayout would otherwise
// collapse back to) and once a full line apart (padded). Returns
// nanoseconds per increment for each arrangement; packed/padded is the
// false-sharing cost the padding removes.
func TuningFalseSharing(iters int) (packedNs, paddedNs float64) {
	return falseSharingNs(iters, 1), falseSharingNs(iters, 8)
}

// falseSharingNs times two goroutines incrementing words gapWords
// apart, starting from a 64-byte-aligned base so 1 word of gap means
// provably the same cache line and 8 words provably distinct lines —
// a struct of two adjacent fields could legitimately straddle a line
// boundary and measure nothing.
func falseSharingNs(iters, gapWords int) float64 {
	buf := make([]uint64, 16+gapWords)
	base := 0
	for uintptr(unsafe.Pointer(&buf[base]))%64 != 0 {
		base++
	}
	words := []*uint64{&buf[base], &buf[base+gapWords]}
	var wg sync.WaitGroup
	gate := make(chan struct{})
	wg.Add(len(words))
	for _, w := range words {
		go func(w *uint64) {
			defer wg.Done()
			<-gate
			for i := 0; i < iters; i++ {
				atomic.AddUint64(w, 1)
			}
		}(w)
	}
	start := time.Now()
	close(gate)
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// TuningAffinityProbe reports whether the pinned leg can run here:
// the platform implements thread affinity, a trial pin actually
// succeeds (restricted cpusets and sandboxes refuse it at runtime),
// and there are at least two CPUs to pin producer and consumer apart.
func TuningAffinityProbe() bool {
	if !affinity.Supported() || runtime.NumCPU() < 2 {
		return false
	}
	restore, err := affinity.PinThread(0)
	if err != nil {
		return false
	}
	restore()
	return true
}

const tuningPinPayload = 64

// NativeTuningPinned streams msgs 64-byte messages through one
// producer/consumer circuit, with the two Run workers either pinned to
// distinct cores (WithAffinity) or left to float. The contrast is the
// cache-line commute: floated workers migrate between cores and drag
// the ring's protocol words with them.
func NativeTuningPinned(pinned bool, msgs int) (float64, error) {
	tput, _, err := tuningStream(msgs, tuningPinPayload, nil, pinned, false)
	return tput, err
}

// NativeTuningHuge streams msgs 4000-byte messages through an arena
// large enough (8 MiB of blocks) that the 2 MiB-aligned interior of
// its backing is meaningful, with and without the huge-page hint, and
// reports the arena's HugeStats alongside throughput so the caller can
// tell whether the hint actually took on this kernel.
func NativeTuningHuge(huge bool, msgs int) (float64, shm.HugeStats, error) {
	return tuningStream(msgs, 4000, []mpf.Option{
		mpf.WithBlockSize(4096),
		mpf.WithBlocksPerProcess(1024), // 2 procs x 1024 x 4 KiB = 8 MiB
	}, false, huge)
}

// tuningStream is the shared two-process stream: pid 0 sends msgs
// payloads plus a poison byte, pid 1 receives them, and the reported
// throughput spans first send to poison. extra/pinned/huge select the
// leg; the arena's huge-page outcome rides along for the huge leg.
func tuningStream(msgs, payload int, extra []mpf.Option, pinned, huge bool) (float64, shm.HugeStats, error) {
	if msgs < 1 || payload < 2 {
		return 0, shm.HugeStats{}, fmt.Errorf("bench: tuningstream(msgs=%d, payload=%d)", msgs, payload)
	}
	opts := []mpf.Option{
		mpf.WithMaxProcesses(2),
		mpf.WithMaxLNVCs(4),
	}
	if extra == nil {
		opts = append(opts, mpf.WithBlocksPerProcess(blocksFor(payload, 512)))
	}
	opts = append(opts, extra...)
	if pinned {
		opts = append(opts, mpf.WithAffinity())
	}
	if huge {
		opts = append(opts, mpf.WithHugePages())
	}
	fac, err := mpf.New(opts...)
	if err != nil {
		return 0, shm.HugeStats{}, err
	}
	defer fac.Shutdown()

	var (
		startNs atomic.Int64
		elapsed time.Duration
	)
	recvReady := make(chan struct{})
	err = fac.Run(2, func(p *mpf.Process) error {
		if p.PID() == 0 {
			s, err := p.OpenSend("stream")
			if err != nil {
				return err
			}
			<-recvReady
			startNs.Store(time.Now().UnixNano())
			buf := make([]byte, payload)
			for k := 0; k < msgs; k++ {
				if err := s.Send(buf); err != nil {
					return err
				}
			}
			return s.Send([]byte{0xFF})
		}
		r, err := p.OpenReceive("stream", mpf.FCFS)
		if err != nil {
			close(recvReady)
			return err
		}
		defer r.Close()
		close(recvReady)
		buf := make([]byte, payload)
		for {
			n, err := r.Receive(buf)
			if err != nil {
				return err
			}
			if n == 1 && buf[0] == 0xFF {
				elapsed = time.Duration(time.Now().UnixNano() - startNs.Load())
				return nil
			}
		}
	})
	if err != nil {
		return 0, shm.HugeStats{}, err
	}
	return rate(msgs, elapsed), fac.Core().Arena().HugeStats(), nil
}

// TuningReport runs the four ablation legs once and renders them as
// the text table `mpfbench -tuning` prints. The affinity leg reports
// itself skipped (rather than failing the run) on restricted runners,
// which is what lets CI smoke the flag everywhere.
func TuningReport(quick bool) (string, error) {
	bursts, fsIters, pinMsgs, hugeMsgs := TuningBursts, 1_000_000, 4000, 1200
	if quick {
		bursts, fsIters, pinMsgs, hugeMsgs = 8, 250_000, 1000, 400
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Self-Tuning Ablation (native, %d circuits, bursts of %d, fixed budget %d)\n\n",
		TuningCircuits, TuningBurstDepth, TuningFixedBudget)

	fixed, err := NativeTuningHarvest(false, TuningCircuits, bursts, TuningBurstDepth)
	if err != nil {
		return "", fmt.Errorf("tuning fixed harvest: %w", err)
	}
	auto, err := NativeTuningHarvest(true, TuningCircuits, bursts, TuningBurstDepth)
	if err != nil {
		return "", fmt.Errorf("tuning auto harvest: %w", err)
	}
	fmt.Fprintf(&b, "harvest budget   fixed(%d): %9.0f msgs/s in %5d rounds, worst starvation %3d rounds\n",
		TuningFixedBudget, fixed.MsgsPerSec, fixed.Rounds, fixed.MaxStarvationRounds)
	fmt.Fprintf(&b, "                 auto:      %9.0f msgs/s in %5d rounds, worst starvation %3d rounds (budget peak %d, cap hits %d)\n",
		auto.MsgsPerSec, auto.Rounds, auto.MaxStarvationRounds, auto.BudgetPeak, auto.CapHits)
	if fixed.MsgsPerSec > 0 {
		fmt.Fprintf(&b, "                 advantage: %.2fx\n", auto.MsgsPerSec/fixed.MsgsPerSec)
	}

	packed, padded := TuningFalseSharing(fsIters)
	fmt.Fprintf(&b, "\nfalse sharing    packed: %5.1f ns/op   padded: %5.1f ns/op   advantage: %.2fx\n",
		packed, padded, packed/padded)

	if TuningAffinityProbe() {
		floating, err := NativeTuningPinned(false, pinMsgs)
		if err != nil {
			return "", fmt.Errorf("tuning floating stream: %w", err)
		}
		pinnedT, err := NativeTuningPinned(true, pinMsgs)
		if err != nil {
			return "", fmt.Errorf("tuning pinned stream: %w", err)
		}
		fmt.Fprintf(&b, "\ncore affinity    floating: %9.0f msgs/s   pinned: %9.0f msgs/s   advantage: %.2fx\n",
			floating, pinnedT, pinnedT/floating)
	} else {
		fmt.Fprintf(&b, "\ncore affinity    skipped: thread pinning unsupported or refused on this runner\n")
	}

	base, _, err := NativeTuningHuge(false, hugeMsgs)
	if err != nil {
		return "", fmt.Errorf("tuning base-page stream: %w", err)
	}
	hugeT, hs, err := NativeTuningHuge(true, hugeMsgs)
	if err != nil {
		return "", fmt.Errorf("tuning huge-page stream: %w", err)
	}
	fmt.Fprintf(&b, "\nhuge pages       base: %9.0f msgs/s   hinted: %9.0f msgs/s   advantage: %.2fx\n",
		base, hugeT, hugeT/base)
	switch {
	case hs.Err != nil:
		fmt.Fprintf(&b, "                 hint refused by the kernel: %v\n", hs.Err)
	case hs.AdvisedBytes > 0:
		fmt.Fprintf(&b, "                 hint took: %d bytes advised MADV_HUGEPAGE\n", hs.AdvisedBytes)
	default:
		fmt.Fprintf(&b, "                 hint unavailable on this platform\n")
	}
	return b.String(), nil
}
