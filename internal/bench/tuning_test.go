package bench

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/shm"
)

// TestTuningAdvantage is the PR 8 acceptance gate for the adaptive
// harvest budget: on the headline bursty drain the auto budget must
// deliver at least fixed-budget throughput, no ready circuit may wait
// more than 3 rounds (the fairness-cap bound — the greedy fixed sweep
// lets the wait grow to most of the drain), and the adaptive machinery
// must demonstrably engage (budget gauge beyond the fixed budget, cap
// truncations counted). Throughputs are best-of-3, like the summary;
// the round counts and starvation numbers are deterministic.
func TestTuningAdvantage(t *testing.T) {
	const bursts = 8
	var fixed, auto TuningHarvestResult
	autoStarve := -1
	for i := 0; i < 3; i++ {
		f, err := NativeTuningHarvest(false, TuningCircuits, bursts, TuningBurstDepth)
		if err != nil {
			t.Fatal(err)
		}
		a, err := NativeTuningHarvest(true, TuningCircuits, bursts, TuningBurstDepth)
		if err != nil {
			t.Fatal(err)
		}
		if f.MsgsPerSec > fixed.MsgsPerSec {
			fixed = f
		}
		if a.MsgsPerSec > auto.MsgsPerSec {
			auto = a
		}
		if autoStarve < 0 || a.MaxStarvationRounds < autoStarve {
			autoStarve = a.MaxStarvationRounds
		}
	}
	t.Logf("fixed: %.0f msgs/s in %d rounds, worst starvation %d; auto: %.0f msgs/s in %d rounds, worst starvation %d (budget peak %d, cap hits %d)",
		fixed.MsgsPerSec, fixed.Rounds, fixed.MaxStarvationRounds,
		auto.MsgsPerSec, auto.Rounds, auto.MaxStarvationRounds, auto.BudgetPeak, auto.CapHits)
	if auto.MsgsPerSec < fixed.MsgsPerSec {
		t.Errorf("auto budget %.0f msgs/s below fixed budget %.0f msgs/s at burst depth %d",
			auto.MsgsPerSec, fixed.MsgsPerSec, TuningBurstDepth)
	}
	if autoStarve > 3 {
		t.Errorf("a ready circuit waited %d rounds under the auto budget, want <= 3", autoStarve)
	}
	if auto.Rounds >= fixed.Rounds {
		t.Errorf("auto drain took %d rounds, fixed %d: adaptive budget never amortised",
			auto.Rounds, fixed.Rounds)
	}
	if auto.BudgetPeak <= TuningFixedBudget {
		t.Errorf("auto budget peaked at %d, never beyond the fixed budget %d during a %d-deep burst drain",
			auto.BudgetPeak, TuningFixedBudget, TuningBurstDepth)
	}
	if auto.CapHits == 0 {
		t.Error("fairness cap never counted a truncation while 4 saturated circuits shared rounds")
	}
	// The contrast that motivates the cap: the greedy fixed sweep
	// serves circuits to exhaustion in ready order, so the last circuit
	// waits for most of the drain.
	if fixed.MaxStarvationRounds <= 3*autoStarve+3 {
		t.Errorf("fixed-budget worst starvation %d rounds not meaningfully above auto's %d: workload too shallow to gate",
			fixed.MaxStarvationRounds, autoStarve)
	}
}

// TestTuningFalseSharing checks the microbench mechanics; the actual
// packed-versus-padded advantage only exists with two goroutines on
// two cores, so the ordering is asserted on multi-CPU boxes only.
func TestTuningFalseSharing(t *testing.T) {
	packed, padded := TuningFalseSharing(200_000)
	if packed <= 0 || padded <= 0 {
		t.Fatalf("non-positive timing: packed %.2f ns/op, padded %.2f ns/op", packed, padded)
	}
	t.Logf("packed %.1f ns/op, padded %.1f ns/op, advantage %.2fx", packed, padded, packed/padded)
	if runtime.NumCPU() < 2 || runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single CPU: false sharing has no cross-core victim here")
	}
	if packed < padded {
		t.Errorf("packed counters (%.1f ns/op) beat padded (%.1f ns/op): false-sharing cost invisible on this box",
			packed, padded)
	}
}

// TestTuningPinned runs the affinity ablation where pinning works and
// proves the probe's graceful-skip contract elsewhere.
func TestTuningPinned(t *testing.T) {
	if !TuningAffinityProbe() {
		t.Skip("thread pinning unsupported or refused on this runner")
	}
	floating, err := NativeTuningPinned(false, 1000)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := NativeTuningPinned(true, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if floating <= 0 || pinned <= 0 {
		t.Fatalf("non-positive throughput: floating %.0f, pinned %.0f", floating, pinned)
	}
	t.Logf("floating %.0f msgs/s, pinned %.0f msgs/s, advantage %.2fx",
		floating, pinned, pinned/floating)
}

// TestTuningHugePages drives the hinted stream and checks the
// accounting: the hint must be recorded as requested, and on a kernel
// that accepts MADV_HUGEPAGE the 8 MiB arena must report a 2 MiB-sized
// advised interior. A kernel with THP compiled out refuses the advice;
// that is a recorded outcome, not a failure.
func TestTuningHugePages(t *testing.T) {
	tput, hs, err := NativeTuningHuge(true, 300)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 {
		t.Fatalf("non-positive throughput %.0f", tput)
	}
	if !hs.Requested {
		t.Fatal("WithHugePages did not record the hint as requested")
	}
	if hs.Err != nil {
		t.Skipf("kernel refused MADV_HUGEPAGE: %v", hs.Err)
	}
	if runtime.GOOS == "linux" && hs.AdvisedBytes < shm.HugePageBytes {
		t.Errorf("advised %d bytes of an 8 MiB arena, want >= one huge page (%d)",
			hs.AdvisedBytes, shm.HugePageBytes)
	}
	t.Logf("huge-page stream %.0f msgs/s, %d bytes advised", tput, hs.AdvisedBytes)
}

// TestSummaryTuningSection: CI's BENCH.json gate holds the tuning
// section's round amortisation, so the trajectory summary must carry a
// populated section with sane values on every platform — the harvest
// ablation has no hardware dependency to degrade on.
func TestSummaryTuningSection(t *testing.T) {
	if testing.Short() {
		t.Skip("full Summary run")
	}
	s, err := Summary(true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != 6 {
		t.Fatalf("schema %d, want 6", s.Schema)
	}
	tu := s.Tuning
	if tu.FixedMsgsPerSec <= 0 || tu.AutoMsgsPerSec <= 0 {
		t.Fatalf("non-positive harvest throughput: %+v", tu)
	}
	if tu.AutoRounds <= 0 || tu.FixedRounds <= tu.AutoRounds {
		t.Fatalf("drain rounds implausible: fixed %d, auto %d", tu.FixedRounds, tu.AutoRounds)
	}
	if tu.RoundAmortisation <= 1 {
		t.Fatalf("round amortisation %.2f, want > 1 (adaptive budget never amortised)", tu.RoundAmortisation)
	}
	if tu.FixedStarvationRounds < 0 || tu.AutoStarvationRounds < 0 {
		t.Fatalf("starvation fields never measured: %+v", tu)
	}
	if tu.PackedNsPerOp <= 0 || tu.PaddedNsPerOp <= 0 {
		t.Fatalf("false-sharing timings non-positive: packed %.2f, padded %.2f",
			tu.PackedNsPerOp, tu.PaddedNsPerOp)
	}
	if tu.AffinitySupported != TuningAffinityProbe() {
		t.Fatalf("summary affinity flag %v disagrees with probe", tu.AffinitySupported)
	}
}

// TestTuningReportQuick smokes the -tuning rendering end to end —
// including the graceful affinity skip line on restricted runners.
func TestTuningReportQuick(t *testing.T) {
	out, err := TuningReport(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"harvest budget", "false sharing", "core affinity", "huge pages"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q leg:\n%s", want, out)
		}
	}
}
