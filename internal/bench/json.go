package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Machine-readable performance trajectory. Summary runs compact
// versions of the four headline benchmarks — contention scaling
// (PR 1), selector wakeups (PR 2), the copies ablation (PR 3) and the
// batched loan/harvest plane (PR 4) — and JSONSummary.Write serialises
// the result as BENCH.json, which CI uploads as an artifact so the
// repository's throughput history can be charted across commits
// without re-parsing log text.

// JSONSummary is the BENCH.json schema. All throughput figures are
// operations per second; ratios are dimensionless.
type JSONSummary struct {
	// Schema bumps when a field changes meaning, so downstream chart
	// tooling can fail loudly instead of plotting nonsense.
	Schema int `json:"schema"`

	Contention struct {
		Workers                  int     `json:"workers"`
		Batch                    int     `json:"batch"`
		UnshardedMsgsPerSec      float64 `json:"unsharded_msgs_per_sec"`
		ShardedBatchedMsgsPerSec float64 `json:"sharded_batched_msgs_per_sec"`
		Advantage                float64 `json:"advantage"`
	} `json:"contention"`

	Selector struct {
		Waiters                int     `json:"waiters"`
		CircuitsPerWaiter      int     `json:"circuits_per_waiter"`
		GlobalSpuriousPerMsg   float64 `json:"global_pulse_spurious_per_msg"`
		SelectorSpuriousPerMsg float64 `json:"selector_spurious_per_msg"`
		WakeupAdvantage        float64 `json:"wakeup_advantage"`
		SelectorMsgsPerSec     float64 `json:"selector_msgs_per_sec"`
		GlobalPulseMsgsPerSec  float64 `json:"global_pulse_msgs_per_sec"`
	} `json:"selector"`

	Copies []CopiesPoint `json:"copies"`

	// LoanBatch is the PR 4 headline: the batched zero-copy pipeline
	// (LoanBatch/CommitAll + Selector.WaitViews/ReleaseViews) against
	// the per-message loan/view plane, with the per-plane arena
	// free-pool lock traffic that shows the amortisation itself, not
	// just its throughput effect.
	LoanBatch struct {
		Batch                      int     `json:"batch"`
		PayloadBytes               int     `json:"payload_bytes"`
		PerMessageMsgsPerSec       float64 `json:"per_message_msgs_per_sec"`
		BatchedMsgsPerSec          float64 `json:"batched_msgs_per_sec"`
		Advantage                  float64 `json:"advantage"`
		PerMessageArenaLocksPerMsg float64 `json:"per_message_arena_locks_per_msg"`
		BatchedArenaLocksPerMsg    float64 `json:"batched_arena_locks_per_msg"`
		// LockAmortisation is per-message locks/msg over batched
		// locks/msg; the CI gate wants >= 8.
		LockAmortisation float64 `json:"lock_amortisation"`
	} `json:"loan_batch"`
}

// CopiesPoint is one copies-ablation measurement in BENCH.json.
type CopiesPoint struct {
	PayloadBytes     int     `json:"payload_bytes"`
	FanOut           int     `json:"fan_out"`
	CopyMsgsPerSec   float64 `json:"copy_msgs_per_sec"`     // paper plane
	ZeroMsgsPerSec   float64 `json:"zerocopy_msgs_per_sec"` // loan/view plane
	Advantage        float64 `json:"advantage"`
	ZeroRecvCopies   uint64  `json:"zerocopy_recv_copies"` // must be 0
	ZeroViewReceives uint64  `json:"zerocopy_view_receives"`
	// Per-plane arena lock acquisitions per message sent: the fixed
	// cost the batched plane (loan_batch below) amortises.
	CopyArenaLocksPerMsg float64 `json:"copy_arena_locks_per_msg"`
	ZeroArenaLocksPerMsg float64 `json:"zerocopy_arena_locks_per_msg"`
}

// Summary measures the trajectory. quick shrinks every run to CI-smoke
// size (same shapes, ~10x faster).
func Summary(quick bool) (*JSONSummary, error) {
	s := &JSONSummary{Schema: 2}

	// Contention: the PR 1 headline configuration.
	workers := 8
	rounds := 300
	if quick {
		rounds = 60
	}
	base, err := NativeContention(1, workers, 1, rounds, 64)
	if err != nil {
		return nil, fmt.Errorf("bench: summary contention: %w", err)
	}
	sharded, err := NativeContention(16, workers, ContentionBatch, rounds, 64)
	if err != nil {
		return nil, fmt.Errorf("bench: summary contention: %w", err)
	}
	s.Contention.Workers = workers
	s.Contention.Batch = ContentionBatch
	s.Contention.UnshardedMsgsPerSec = base.MsgsPerSec
	s.Contention.ShardedBatchedMsgsPerSec = sharded.MsgsPerSec
	if base.MsgsPerSec > 0 {
		s.Contention.Advantage = sharded.MsgsPerSec / base.MsgsPerSec
	}

	// Selector: the PR 2 headline configuration.
	waiters, circuits, msgs := 8, 8, 400
	if quick {
		msgs = 150
	}
	global, err := NativeSelectorHerd(MuxAnyGlobalPulse, waiters, circuits, msgs)
	if err != nil {
		return nil, fmt.Errorf("bench: summary selector: %w", err)
	}
	sel, err := NativeSelectorHerd(MuxSelector, waiters, circuits, msgs)
	if err != nil {
		return nil, fmt.Errorf("bench: summary selector: %w", err)
	}
	s.Selector.Waiters = waiters
	s.Selector.CircuitsPerWaiter = circuits
	s.Selector.GlobalSpuriousPerMsg = global.SpuriousPerMsg
	s.Selector.SelectorSpuriousPerMsg = sel.SpuriousPerMsg
	if sel.SpuriousPerMsg > 0 {
		s.Selector.WakeupAdvantage = global.SpuriousPerMsg / sel.SpuriousPerMsg
	} else {
		s.Selector.WakeupAdvantage = global.SpuriousPerMsg // zero spurious: report the herd size itself
	}
	s.Selector.SelectorMsgsPerSec = sel.MsgsPerSec
	s.Selector.GlobalPulseMsgsPerSec = global.MsgsPerSec

	// Copies: the PR 3 ablation at the gate sizes plus the fan-out point.
	copyMsgs := 3000
	if quick {
		copyMsgs = 600
	}
	points := []struct{ size, fan int }{
		{4096, 1}, {16384, 1}, {CopiesFanOutPayload, 8},
	}
	for _, pt := range points {
		base, err := NativeCopies(PlaneClassicCopy, pt.size, pt.fan, copyMsgs)
		if err != nil {
			return nil, fmt.Errorf("bench: summary copies: %w", err)
		}
		zero, err := NativeCopies(PlaneZeroCopy, pt.size, pt.fan, copyMsgs)
		if err != nil {
			return nil, fmt.Errorf("bench: summary copies: %w", err)
		}
		cp := CopiesPoint{
			PayloadBytes:         pt.size,
			FanOut:               pt.fan,
			CopyMsgsPerSec:       base.MsgsPerSec,
			ZeroMsgsPerSec:       zero.MsgsPerSec,
			ZeroRecvCopies:       zero.Stats.PayloadCopiesOut,
			ZeroViewReceives:     zero.Stats.ViewReceives,
			CopyArenaLocksPerMsg: base.ArenaLocksPerMsg,
			ZeroArenaLocksPerMsg: zero.ArenaLocksPerMsg,
		}
		if base.MsgsPerSec > 0 {
			cp.Advantage = zero.MsgsPerSec / base.MsgsPerSec
		}
		s.Copies = append(s.Copies, cp)
	}

	// LoanBatch: the PR 4 headline configuration.
	lbMsgs := 3000
	if quick {
		lbMsgs = 600
	}
	perMsg, err := NativeLoanBatch(false, LoanBatchPayload, LoanBatchSize, lbMsgs)
	if err != nil {
		return nil, fmt.Errorf("bench: summary loanbatch: %w", err)
	}
	bat, err := NativeLoanBatch(true, LoanBatchPayload, LoanBatchSize, lbMsgs)
	if err != nil {
		return nil, fmt.Errorf("bench: summary loanbatch: %w", err)
	}
	s.LoanBatch.Batch = LoanBatchSize
	s.LoanBatch.PayloadBytes = LoanBatchPayload
	s.LoanBatch.PerMessageMsgsPerSec = perMsg.MsgsPerSec
	s.LoanBatch.BatchedMsgsPerSec = bat.MsgsPerSec
	if perMsg.MsgsPerSec > 0 {
		s.LoanBatch.Advantage = bat.MsgsPerSec / perMsg.MsgsPerSec
	}
	s.LoanBatch.PerMessageArenaLocksPerMsg = perMsg.ArenaLocksPerMsg
	s.LoanBatch.BatchedArenaLocksPerMsg = bat.ArenaLocksPerMsg
	if bat.ArenaLocksPerMsg > 0 {
		s.LoanBatch.LockAmortisation = perMsg.ArenaLocksPerMsg / bat.ArenaLocksPerMsg
	}
	return s, nil
}

// Write serialises the summary to path, indented for human diffing.
func (s *JSONSummary) Write(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
