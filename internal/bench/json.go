package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/mpf"
)

// Machine-readable performance trajectory. Summary runs compact
// versions of the eight headline benchmarks — contention scaling
// (PR 1), selector wakeups (PR 2), the copies ablation (PR 3), the
// batched loan/harvest plane (PR 4), the credit-fairness ablation
// (PR 5), the cross-process leg (PR 6), the self-tuning ablation
// (PR 8) and the crash-robustness ablation (PR 9) — and
// JSONSummary.Write serialises the result as BENCH.json,
// which CI uploads as an artifact so the repository's throughput
// history can be charted across commits without re-parsing log text.
// The perf-regression CI job feeds two BENCH.json files (previous run,
// or the committed BENCH_BASELINE.json seed, versus fresh) through
// Compare and fails the build when a headline drops beyond tolerance.

// JSONSummary is the BENCH.json schema. All throughput figures are
// operations per second; ratios are dimensionless.
type JSONSummary struct {
	// Schema bumps when a field changes meaning, so downstream chart
	// tooling can fail loudly instead of plotting nonsense.
	Schema int `json:"schema"`

	Contention struct {
		Workers                  int     `json:"workers"`
		Batch                    int     `json:"batch"`
		UnshardedMsgsPerSec      float64 `json:"unsharded_msgs_per_sec"`
		ShardedBatchedMsgsPerSec float64 `json:"sharded_batched_msgs_per_sec"`
		Advantage                float64 `json:"advantage"`
	} `json:"contention"`

	Selector struct {
		Waiters                int     `json:"waiters"`
		CircuitsPerWaiter      int     `json:"circuits_per_waiter"`
		GlobalSpuriousPerMsg   float64 `json:"global_pulse_spurious_per_msg"`
		SelectorSpuriousPerMsg float64 `json:"selector_spurious_per_msg"`
		// WakeupAdvantage is the smoothed wakeup ratio,
		// (global+1)/(selector+1) spurious wakeups per delivered
		// message — i.e. total park wakeups per message. Schema 3: the
		// raw ratio was bimodal because the selector's spurious count
		// is routinely exactly zero.
		WakeupAdvantage       float64 `json:"wakeup_advantage"`
		SelectorMsgsPerSec    float64 `json:"selector_msgs_per_sec"`
		GlobalPulseMsgsPerSec float64 `json:"global_pulse_msgs_per_sec"`
	} `json:"selector"`

	Copies []CopiesPoint `json:"copies"`

	// LoanBatch is the PR 4 headline: the batched zero-copy pipeline
	// (LoanBatch/CommitAll + Selector.WaitViews/ReleaseViews) against
	// the per-message loan/view plane, with the per-plane arena
	// free-pool lock traffic that shows the amortisation itself, not
	// just its throughput effect.
	LoanBatch struct {
		Batch                      int     `json:"batch"`
		PayloadBytes               int     `json:"payload_bytes"`
		PerMessageMsgsPerSec       float64 `json:"per_message_msgs_per_sec"`
		BatchedMsgsPerSec          float64 `json:"batched_msgs_per_sec"`
		Advantage                  float64 `json:"advantage"`
		PerMessageArenaLocksPerMsg float64 `json:"per_message_arena_locks_per_msg"`
		BatchedArenaLocksPerMsg    float64 `json:"batched_arena_locks_per_msg"`
		// LockAmortisation is per-message locks/msg over batched
		// locks/msg; the CI gate wants >= 8.
		LockAmortisation float64 `json:"lock_amortisation"`
	} `json:"loan_batch"`

	// Credit is the PR 5 headline: the fairness ablation at the
	// 8-circuit hot/cold mix. The uncredited facility lets the hot
	// circuit monopolise the arena, so every cold Send parks behind its
	// backlog; the 16-block budget bounds the hot circuit's share and
	// the cold tenants' p99 Send latency collapses. Schema 3.
	Credit struct {
		Circuits int `json:"circuits"`
		Budget   int `json:"budget_blocks"`
		// Cold-circuit p99 Send latency in microseconds, without and
		// with the budget, and the improvement ratio (the gate wants
		// >= 2 in the test; the trajectory records the real number).
		UncreditedColdP99Micros float64 `json:"uncredited_cold_p99_micros"`
		CreditedColdP99Micros   float64 `json:"credited_cold_p99_micros"`
		FairnessAdvantage       float64 `json:"fairness_advantage"`
		// What the budget costs the aggressor, and proof it engaged.
		CreditedHotMsgsPerSec float64 `json:"credited_hot_msgs_per_sec"`
		CreditStalls          uint64  `json:"credit_stalls"`
	} `json:"credit"`

	// XProc is the PR 6 headline: the same loan/view protocol with the
	// receiver in a real forked OS process, sharing only the mmap'd
	// memfd segment. Supported is false where the platform has no
	// shared-segment backend (or no spawn hook was installed); the
	// compare gate skips the section's metrics then instead of failing
	// the whole file. Schema 4.
	XProc struct {
		Supported    bool `json:"supported"`
		Children     int  `json:"children"`
		MsgsPerChild int  `json:"msgs_per_child"`
		PayloadBytes int  `json:"payload_bytes"`
		// Round-trip deliveries per second across all children, both
		// phases (down views + up loans).
		MsgsPerSec float64 `json:"msgs_per_sec"`
		// Serving-side futex-ring waiter behaviour per delivered
		// message — the busy-spin regression signal. Smoothed (+1, like
		// wakeup_advantage) because sleeps and wakes are routinely
		// exactly zero when the peer keeps up, and a raw near-zero
		// denominator is bimodal noise no tolerance can hold.
		SpinPollsPerMsgPlus1   float64 `json:"spin_polls_per_msg_plus1"`
		FutexSleepsPerMsgPlus1 float64 `json:"futex_sleeps_per_msg_plus1"`
		FutexWakesPerMsgPlus1  float64 `json:"futex_wakes_per_msg_plus1"`
	} `json:"xproc"`

	// Tuning is the PR 8 headline: the self-tuning ablation. The
	// auto-versus-fixed harvest drain, the padded-versus-packed
	// false-sharing microbench, the pinned-versus-floating stream
	// (AffinitySupported false where thread pinning is refused or
	// there is one CPU — its metric leaves the comparison then, the
	// xproc Supported pattern), and the huge-page hint outcome.
	// Schema 5.
	Tuning struct {
		Circuits    int `json:"circuits"`
		BurstDepth  int `json:"burst_depth"`
		Bursts      int `json:"bursts"`
		FixedBudget int `json:"fixed_budget"`
		// The harvest drain: throughput both ways, plus the
		// deterministic round counts whose ratio (fixed/auto) is the
		// machine-independent round amortisation the gate holds.
		FixedMsgsPerSec      float64 `json:"fixed_msgs_per_sec"`
		AutoMsgsPerSec       float64 `json:"auto_msgs_per_sec"`
		AutoVsFixedAdvantage float64 `json:"auto_vs_fixed_advantage"`
		FixedRounds          int     `json:"fixed_rounds"`
		AutoRounds           int     `json:"auto_rounds"`
		RoundAmortisation    float64 `json:"round_amortisation"`
		// Fairness: worst consecutive rounds a ready circuit went
		// unserved during the drain, and proof the adaptive machinery
		// engaged (cap truncations counted, budget gauge peak).
		FixedStarvationRounds int    `json:"fixed_starvation_rounds"`
		AutoStarvationRounds  int    `json:"auto_starvation_rounds"`
		AutoCapHits           uint64 `json:"auto_cap_hits"`
		AutoBudgetPeak        uint64 `json:"auto_budget_peak"`
		// False sharing: ns per atomic increment with the two hot words
		// packed on one line versus padded a line apart.
		PackedNsPerOp           float64 `json:"packed_ns_per_op"`
		PaddedNsPerOp           float64 `json:"padded_ns_per_op"`
		PaddedVsPackedAdvantage float64 `json:"padded_vs_packed_advantage"`
		// Core affinity: the pinned-versus-floating stream.
		AffinitySupported         bool    `json:"affinity_supported"`
		FloatingMsgsPerSec        float64 `json:"floating_msgs_per_sec"`
		PinnedMsgsPerSec          float64 `json:"pinned_msgs_per_sec"`
		PinnedVsFloatingAdvantage float64 `json:"pinned_vs_floating_advantage"`
		// Huge pages: whether the MADV_HUGEPAGE hint took on the arena
		// backing, and the stream throughput either way.
		HugePagesAdvised    bool    `json:"huge_pages_advised"`
		HugeAdvisedBytes    int64   `json:"huge_advised_bytes"`
		BasePagesMsgsPerSec float64 `json:"base_pages_msgs_per_sec"`
		HugePagesMsgsPerSec float64 `json:"huge_pages_msgs_per_sec"`
		HugeVsBaseAdvantage float64 `json:"huge_vs_base_advantage"`
	} `json:"tuning"`

	// Crash is the PR 9 headline: the crash-robustness ablation. K of N
	// children die at armed fault points mid-traffic; the respawn
	// supervisor reclaims their slots and restarts them, and the run
	// records what that cost the survivors. Supported mirrors the xproc
	// gate (same spawn-hook and shared-backend requirements). The
	// reclaim completeness (deaths over victims) is deterministic — a
	// run that misses a death fails RunCrash outright, so a recorded
	// value below 1 cannot happen without the gate tripping first — and
	// the latency figures are trajectory-only: they measure the
	// supervisor's detection epoch (death-watcher poll period), which is
	// configuration, not protocol speed. Schema 6.
	Crash struct {
		Supported    bool `json:"supported"`
		Children     int  `json:"children"`
		Victims      int  `json:"victims"`
		MsgsPerChild int  `json:"msgs_per_child"`
		PayloadBytes int  `json:"payload_bytes"`
		Deaths       int  `json:"deaths"`
		Respawns     int  `json:"respawns"`
		// ReclaimCompleteness is deaths/victims: 1.0 when every armed
		// victim's death was detected and its slot reclaimed.
		ReclaimCompleteness float64 `json:"reclaim_completeness"`
		SurvivorMsgsPerSec  float64 `json:"survivor_msgs_per_sec"`
		ReclaimMeanMicros   float64 `json:"reclaim_mean_micros"`
		ReclaimMaxMicros    float64 `json:"reclaim_max_micros"`
		ReclaimedViews      uint64  `json:"reclaimed_views"`
		ReclaimedCredits    uint64  `json:"reclaimed_credits"`
	} `json:"crash"`
}

// CopiesPoint is one copies-ablation measurement in BENCH.json.
type CopiesPoint struct {
	PayloadBytes     int     `json:"payload_bytes"`
	FanOut           int     `json:"fan_out"`
	CopyMsgsPerSec   float64 `json:"copy_msgs_per_sec"`     // paper plane
	ZeroMsgsPerSec   float64 `json:"zerocopy_msgs_per_sec"` // loan/view plane
	Advantage        float64 `json:"advantage"`
	ZeroRecvCopies   uint64  `json:"zerocopy_recv_copies"` // must be 0
	ZeroViewReceives uint64  `json:"zerocopy_view_receives"`
	// Per-plane arena lock acquisitions per message sent: the fixed
	// cost the batched plane (loan_batch below) amortises.
	CopyArenaLocksPerMsg float64 `json:"copy_arena_locks_per_msg"`
	ZeroArenaLocksPerMsg float64 `json:"zerocopy_arena_locks_per_msg"`
}

// Summary measures the trajectory. The perf-regression gate compares
// these numbers across runs under a 25% tolerance, so their run-to-run
// noise is the binding constraint, not their cost: the throughput
// sections are cheap (tens of milliseconds each) and always run at
// full sample size, taken best-of-3 — the maximum observed throughput
// (and minimum lock count) is a much tighter estimate of the machine's
// capability than one draw. quick only shrinks the one expensive
// section, the credit fairness run, whose uncredited leg deliberately
// holds a starvation monopoly open for seconds.
func Summary(quick bool) (*JSONSummary, error) {
	s := &JSONSummary{Schema: 6}
	const attempts = 3

	// Contention: the PR 1 headline configuration.
	workers := 8
	rounds := 300
	s.Contention.Workers = workers
	s.Contention.Batch = ContentionBatch
	for i := 0; i < attempts; i++ {
		base, err := NativeContention(1, workers, 1, rounds, 64)
		if err != nil {
			return nil, fmt.Errorf("bench: summary contention: %w", err)
		}
		sharded, err := NativeContention(16, workers, ContentionBatch, rounds, 64)
		if err != nil {
			return nil, fmt.Errorf("bench: summary contention: %w", err)
		}
		s.Contention.UnshardedMsgsPerSec = max(s.Contention.UnshardedMsgsPerSec, base.MsgsPerSec)
		s.Contention.ShardedBatchedMsgsPerSec = max(s.Contention.ShardedBatchedMsgsPerSec, sharded.MsgsPerSec)
	}
	if s.Contention.UnshardedMsgsPerSec > 0 {
		s.Contention.Advantage = s.Contention.ShardedBatchedMsgsPerSec / s.Contention.UnshardedMsgsPerSec
	}

	// Selector: the PR 2 headline configuration.
	waiters, circuits, msgs := 8, 8, 400
	s.Selector.Waiters = waiters
	s.Selector.CircuitsPerWaiter = circuits
	s.Selector.SelectorSpuriousPerMsg = -1
	for i := 0; i < attempts; i++ {
		global, err := NativeSelectorHerd(MuxAnyGlobalPulse, waiters, circuits, msgs)
		if err != nil {
			return nil, fmt.Errorf("bench: summary selector: %w", err)
		}
		sel, err := NativeSelectorHerd(MuxSelector, waiters, circuits, msgs)
		if err != nil {
			return nil, fmt.Errorf("bench: summary selector: %w", err)
		}
		s.Selector.GlobalSpuriousPerMsg = max(s.Selector.GlobalSpuriousPerMsg, global.SpuriousPerMsg)
		if s.Selector.SelectorSpuriousPerMsg < 0 {
			s.Selector.SelectorSpuriousPerMsg = sel.SpuriousPerMsg
		} else {
			s.Selector.SelectorSpuriousPerMsg = min(s.Selector.SelectorSpuriousPerMsg, sel.SpuriousPerMsg)
		}
		s.Selector.SelectorMsgsPerSec = max(s.Selector.SelectorMsgsPerSec, sel.MsgsPerSec)
		s.Selector.GlobalPulseMsgsPerSec = max(s.Selector.GlobalPulseMsgsPerSec, global.MsgsPerSec)
	}
	// Smoothed (+1 on both sides: *total* park wakeups per delivered
	// message, not spurious-only): the selector's spurious count is
	// routinely exactly zero, and a raw ratio against a denominator
	// that flickers between 0 and one stray event per run is bimodal
	// noise no tolerance can hold.
	s.Selector.WakeupAdvantage = (s.Selector.GlobalSpuriousPerMsg + 1) / (s.Selector.SelectorSpuriousPerMsg + 1)

	// Copies: the PR 3 ablation at the gate sizes plus the fan-out point.
	const copyMsgs = 3000
	points := []struct{ size, fan int }{
		{4096, 1}, {16384, 1}, {CopiesFanOutPayload, 8},
	}
	for _, pt := range points {
		cp := CopiesPoint{PayloadBytes: pt.size, FanOut: pt.fan}
		for i := 0; i < attempts; i++ {
			base, err := NativeCopies(PlaneClassicCopy, pt.size, pt.fan, copyMsgs)
			if err != nil {
				return nil, fmt.Errorf("bench: summary copies: %w", err)
			}
			zero, err := NativeCopies(PlaneZeroCopy, pt.size, pt.fan, copyMsgs)
			if err != nil {
				return nil, fmt.Errorf("bench: summary copies: %w", err)
			}
			cp.CopyMsgsPerSec = max(cp.CopyMsgsPerSec, base.MsgsPerSec)
			cp.ZeroMsgsPerSec = max(cp.ZeroMsgsPerSec, zero.MsgsPerSec)
			// Any attempt leaking a receive copy must show, so the worst
			// attempt is recorded.
			cp.ZeroRecvCopies = max(cp.ZeroRecvCopies, zero.Stats.PayloadCopiesOut)
			cp.ZeroViewReceives = zero.Stats.ViewReceives
			if i == 0 {
				cp.CopyArenaLocksPerMsg = base.ArenaLocksPerMsg
				cp.ZeroArenaLocksPerMsg = zero.ArenaLocksPerMsg
			} else {
				cp.CopyArenaLocksPerMsg = min(cp.CopyArenaLocksPerMsg, base.ArenaLocksPerMsg)
				cp.ZeroArenaLocksPerMsg = min(cp.ZeroArenaLocksPerMsg, zero.ArenaLocksPerMsg)
			}
		}
		if cp.CopyMsgsPerSec > 0 {
			cp.Advantage = cp.ZeroMsgsPerSec / cp.CopyMsgsPerSec
		}
		s.Copies = append(s.Copies, cp)
	}

	// LoanBatch: the PR 4 headline configuration.
	const lbMsgs = 3000
	s.LoanBatch.Batch = LoanBatchSize
	s.LoanBatch.PayloadBytes = LoanBatchPayload
	for i := 0; i < attempts; i++ {
		perMsg, err := NativeLoanBatch(false, LoanBatchPayload, LoanBatchSize, lbMsgs)
		if err != nil {
			return nil, fmt.Errorf("bench: summary loanbatch: %w", err)
		}
		bat, err := NativeLoanBatch(true, LoanBatchPayload, LoanBatchSize, lbMsgs)
		if err != nil {
			return nil, fmt.Errorf("bench: summary loanbatch: %w", err)
		}
		s.LoanBatch.PerMessageMsgsPerSec = max(s.LoanBatch.PerMessageMsgsPerSec, perMsg.MsgsPerSec)
		s.LoanBatch.BatchedMsgsPerSec = max(s.LoanBatch.BatchedMsgsPerSec, bat.MsgsPerSec)
		if i == 0 {
			s.LoanBatch.PerMessageArenaLocksPerMsg = perMsg.ArenaLocksPerMsg
			s.LoanBatch.BatchedArenaLocksPerMsg = bat.ArenaLocksPerMsg
		} else {
			s.LoanBatch.PerMessageArenaLocksPerMsg = min(s.LoanBatch.PerMessageArenaLocksPerMsg, perMsg.ArenaLocksPerMsg)
			s.LoanBatch.BatchedArenaLocksPerMsg = min(s.LoanBatch.BatchedArenaLocksPerMsg, bat.ArenaLocksPerMsg)
		}
	}
	if s.LoanBatch.PerMessageMsgsPerSec > 0 {
		s.LoanBatch.Advantage = s.LoanBatch.BatchedMsgsPerSec / s.LoanBatch.PerMessageMsgsPerSec
	}
	if s.LoanBatch.BatchedArenaLocksPerMsg > 0 {
		s.LoanBatch.LockAmortisation = s.LoanBatch.PerMessageArenaLocksPerMsg / s.LoanBatch.BatchedArenaLocksPerMsg
	}

	// Credit: the PR 5 fairness headline. The uncredited run is slow by
	// construction — the hot monopoly it measures starves cold sends
	// for seconds — so the sample counts stay modest.
	coldMsgs := 200
	if quick {
		coldMsgs = 40
	}
	uncredited, err := NativeCreditFairness(0, CreditFairnessCircuits, coldMsgs)
	if err != nil {
		return nil, fmt.Errorf("bench: summary credit: %w", err)
	}
	credited, err := NativeCreditFairness(CreditFairnessBudget, CreditFairnessCircuits, coldMsgs)
	if err != nil {
		return nil, fmt.Errorf("bench: summary credit: %w", err)
	}
	s.Credit.Circuits = CreditFairnessCircuits
	s.Credit.Budget = CreditFairnessBudget
	s.Credit.UncreditedColdP99Micros = float64(uncredited.ColdP99) / float64(time.Microsecond)
	s.Credit.CreditedColdP99Micros = float64(credited.ColdP99) / float64(time.Microsecond)
	if credited.ColdP99 > 0 {
		s.Credit.FairnessAdvantage = float64(uncredited.ColdP99) / float64(credited.ColdP99)
	}
	s.Credit.CreditedHotMsgsPerSec = credited.HotMsgsPerSec
	s.Credit.CreditStalls = credited.Stats.CreditStalls

	// XProc: the PR 6 cross-process headline. Needs a spawn hook (set
	// by mpfbench and the bench tests' TestMain) and a shared-segment
	// backend; absent either, the section records supported=false and
	// the summary still succeeds — BENCH.json must be producible on
	// every platform the build gate covers.
	xChildren, xMsgs, xSize := 2, 600, 1024
	if quick {
		xMsgs = 150
	}
	s.XProc.Children = xChildren
	s.XProc.MsgsPerChild = xMsgs
	s.XProc.PayloadBytes = xSize
	if XProcSpawnSelf != nil {
		bin, env := XProcSpawnSelf()
		for i := 0; i < attempts; i++ {
			r, err := RunXProc(bin, env, xChildren, xMsgs, xSize)
			if errors.Is(err, mpf.ErrNoSharedBackend) {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("bench: summary xproc: %w", err)
			}
			s.XProc.Supported = true
			if r.MsgsPerSec > s.XProc.MsgsPerSec {
				s.XProc.MsgsPerSec = r.MsgsPerSec
				s.XProc.SpinPollsPerMsgPlus1 = r.SpinPollsPerMsg + 1
				s.XProc.FutexSleepsPerMsgPlus1 = r.FutexSleepsPerMsg + 1
				s.XProc.FutexWakesPerMsgPlus1 = r.FutexWakesPerMsg + 1
			}
		}
	}

	// Tuning: the PR 8 self-tuning ablation. The harvest drain is
	// deterministic, so its round counts land identically every
	// attempt; the throughputs are best-of-3 like every other section.
	tBursts, fsIters, pinMsgs, hugeMsgs := TuningBursts, 1_000_000, 4000, 1200
	if quick {
		tBursts, fsIters, pinMsgs, hugeMsgs = 8, 250_000, 1000, 400
	}
	s.Tuning.Circuits = TuningCircuits
	s.Tuning.BurstDepth = TuningBurstDepth
	s.Tuning.Bursts = tBursts
	s.Tuning.FixedBudget = TuningFixedBudget
	s.Tuning.FixedStarvationRounds = -1
	s.Tuning.AutoStarvationRounds = -1
	for i := 0; i < attempts; i++ {
		fixed, err := NativeTuningHarvest(false, TuningCircuits, tBursts, TuningBurstDepth)
		if err != nil {
			return nil, fmt.Errorf("bench: summary tuning fixed: %w", err)
		}
		auto, err := NativeTuningHarvest(true, TuningCircuits, tBursts, TuningBurstDepth)
		if err != nil {
			return nil, fmt.Errorf("bench: summary tuning auto: %w", err)
		}
		s.Tuning.FixedMsgsPerSec = max(s.Tuning.FixedMsgsPerSec, fixed.MsgsPerSec)
		s.Tuning.AutoMsgsPerSec = max(s.Tuning.AutoMsgsPerSec, auto.MsgsPerSec)
		s.Tuning.FixedRounds = fixed.Rounds
		s.Tuning.AutoRounds = auto.Rounds
		if s.Tuning.FixedStarvationRounds < 0 || fixed.MaxStarvationRounds < s.Tuning.FixedStarvationRounds {
			s.Tuning.FixedStarvationRounds = fixed.MaxStarvationRounds
		}
		if s.Tuning.AutoStarvationRounds < 0 || auto.MaxStarvationRounds < s.Tuning.AutoStarvationRounds {
			s.Tuning.AutoStarvationRounds = auto.MaxStarvationRounds
		}
		s.Tuning.AutoCapHits = max(s.Tuning.AutoCapHits, auto.CapHits)
		s.Tuning.AutoBudgetPeak = max(s.Tuning.AutoBudgetPeak, auto.BudgetPeak)
	}
	if s.Tuning.FixedMsgsPerSec > 0 {
		s.Tuning.AutoVsFixedAdvantage = s.Tuning.AutoMsgsPerSec / s.Tuning.FixedMsgsPerSec
	}
	if s.Tuning.AutoRounds > 0 {
		s.Tuning.RoundAmortisation = float64(s.Tuning.FixedRounds) / float64(s.Tuning.AutoRounds)
	}
	for i := 0; i < attempts; i++ {
		packed, padded := TuningFalseSharing(fsIters)
		if i == 0 {
			s.Tuning.PackedNsPerOp = packed
			s.Tuning.PaddedNsPerOp = padded
		} else {
			s.Tuning.PackedNsPerOp = min(s.Tuning.PackedNsPerOp, packed)
			s.Tuning.PaddedNsPerOp = min(s.Tuning.PaddedNsPerOp, padded)
		}
	}
	if s.Tuning.PaddedNsPerOp > 0 {
		s.Tuning.PaddedVsPackedAdvantage = s.Tuning.PackedNsPerOp / s.Tuning.PaddedNsPerOp
	}
	s.Tuning.AffinitySupported = TuningAffinityProbe()
	if s.Tuning.AffinitySupported {
		for i := 0; i < attempts; i++ {
			floating, err := NativeTuningPinned(false, pinMsgs)
			if err != nil {
				return nil, fmt.Errorf("bench: summary tuning floating: %w", err)
			}
			pinned, err := NativeTuningPinned(true, pinMsgs)
			if err != nil {
				return nil, fmt.Errorf("bench: summary tuning pinned: %w", err)
			}
			s.Tuning.FloatingMsgsPerSec = max(s.Tuning.FloatingMsgsPerSec, floating)
			s.Tuning.PinnedMsgsPerSec = max(s.Tuning.PinnedMsgsPerSec, pinned)
		}
		if s.Tuning.FloatingMsgsPerSec > 0 {
			s.Tuning.PinnedVsFloatingAdvantage = s.Tuning.PinnedMsgsPerSec / s.Tuning.FloatingMsgsPerSec
		}
	}
	for i := 0; i < attempts; i++ {
		base, _, err := NativeTuningHuge(false, hugeMsgs)
		if err != nil {
			return nil, fmt.Errorf("bench: summary tuning base pages: %w", err)
		}
		huge, hs, err := NativeTuningHuge(true, hugeMsgs)
		if err != nil {
			return nil, fmt.Errorf("bench: summary tuning huge pages: %w", err)
		}
		s.Tuning.BasePagesMsgsPerSec = max(s.Tuning.BasePagesMsgsPerSec, base)
		s.Tuning.HugePagesMsgsPerSec = max(s.Tuning.HugePagesMsgsPerSec, huge)
		s.Tuning.HugePagesAdvised = hs.AdvisedBytes > 0
		s.Tuning.HugeAdvisedBytes = hs.AdvisedBytes
	}
	if s.Tuning.BasePagesMsgsPerSec > 0 {
		s.Tuning.HugeVsBaseAdvantage = s.Tuning.HugePagesMsgsPerSec / s.Tuning.BasePagesMsgsPerSec
	}

	// Crash: the PR 9 robustness headline. Like xproc it needs the spawn
	// hook and a shared backend; unlike the others it spawns, kills and
	// respawns real processes per attempt, so it runs twice, best-of, at
	// a modest message count. The deterministic fields (deaths,
	// completeness) land identically every attempt by construction.
	cChildren, cVictims, cMsgs := 4, 2, 400
	if quick {
		cMsgs = 100
	}
	s.Crash.Children = cChildren
	s.Crash.Victims = cVictims
	s.Crash.MsgsPerChild = cMsgs
	s.Crash.PayloadBytes = 512
	if XProcSpawnSelf != nil {
		bin, env := XProcSpawnSelf()
		for i := 0; i < 2; i++ {
			r, err := RunCrash(bin, env, cChildren, cVictims, cMsgs, 512)
			if errors.Is(err, mpf.ErrNoSharedBackend) {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("bench: summary crash: %w", err)
			}
			s.Crash.Supported = true
			s.Crash.Deaths = r.Deaths
			s.Crash.Respawns = r.Respawns
			s.Crash.ReclaimCompleteness = float64(r.Deaths) / float64(cVictims)
			if r.SurvivorMsgsPerSec > s.Crash.SurvivorMsgsPerSec {
				s.Crash.SurvivorMsgsPerSec = r.SurvivorMsgsPerSec
				s.Crash.ReclaimMeanMicros = r.ReclaimMeanMicros
				s.Crash.ReclaimMaxMicros = r.ReclaimMaxMicros
				s.Crash.ReclaimedViews = r.ReclaimedViews
				s.Crash.ReclaimedCredits = r.ReclaimedCredits
			}
		}
	}
	return s, nil
}

// Write serialises the summary to path, indented for human diffing.
func (s *JSONSummary) Write(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadSummary loads a BENCH.json previously produced by Write — the
// perf-regression job's input (the previous run's artifact, or the
// committed BENCH_BASELINE.json seed).
func ReadSummary(path string) (*JSONSummary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &JSONSummary{}
	if err := json.Unmarshal(b, s); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return s, nil
}
