package bench

import (
	"fmt"
	"testing"
)

// BenchmarkZeroCopyAdvantage reports delivered bytes/op for the three
// payload planes at the sizes where copies dominate. The companion gate
// (TestZeroCopyAdvantage) enforces the headline ratio; this benchmark
// gives the continuous trajectory CI records.
func BenchmarkZeroCopyAdvantage(b *testing.B) {
	for _, plane := range []CopyPlane{PlaneClassicCopy, PlaneSpanCopy, PlaneZeroCopy} {
		for _, size := range []int{4096, 16384} {
			b.Run(fmt.Sprintf("%s/%dB", plane, size), func(b *testing.B) {
				msgs := b.N
				if msgs < 64 {
					msgs = 64
				}
				res, err := NativeCopies(plane, size, 1, msgs)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(size))
				b.ReportMetric(res.MsgsPerSec, "msgs/s")
			})
		}
	}
}

// TestZeroCopyAdvantage is the copy ablation's gate: at payload sizes
// of 4 KiB and up, the loan/view plane must deliver at least twice the
// throughput of the paper's copying plane (classic chains, both
// structural copies). Throughput comparisons on shared CI boxes are
// noisy, so the gate takes the best of five attempts, like the
// sharded-registry gate.
func TestZeroCopyAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short mode")
	}
	const (
		msgs = 3000
		want = 2.0
	)
	for _, size := range []int{4096, 16384} {
		best := 0.0
		for attempt := 0; attempt < 5; attempt++ {
			base, err := NativeCopies(PlaneClassicCopy, size, 1, msgs)
			if err != nil {
				t.Fatal(err)
			}
			zero, err := NativeCopies(PlaneZeroCopy, size, 1, msgs)
			if err != nil {
				t.Fatal(err)
			}
			if got := zero.Stats.PayloadCopiesOut; got != 0 {
				t.Fatalf("size %d: zero-copy leg recorded %d receive-side copies", size, got)
			}
			ratio := zero.MsgsPerSec / base.MsgsPerSec
			t.Logf("size %d attempt %d: copy plane %.0f msgs/s, zero-copy plane %.0f msgs/s (%.2fx)",
				size, attempt, base.MsgsPerSec, zero.MsgsPerSec, ratio)
			if ratio > best {
				best = ratio
			}
			if best >= want {
				break
			}
		}
		if best < want {
			t.Errorf("size %d: loan/view plane is %.2fx the copying plane, want >= %.1fx", size, best, want)
		}
	}
}

// TestBroadcastFanOutNoReceiveCopies is the deterministic half of the
// gate: BROADCAST fan-out to 8 receivers over views performs zero
// receive-side payload copies — every receiver reads the one shared
// payload instance — and zero send-side copies, asserted through the
// facility's copy ledger.
func TestBroadcastFanOutNoReceiveCopies(t *testing.T) {
	const (
		fanout = 8
		msgs   = 200
		size   = 4096
	)
	res, err := NativeCopies(PlaneZeroCopy, size, fanout, msgs)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.PayloadCopiesOut != 0 {
		t.Errorf("PayloadCopiesOut = %d, want 0", st.PayloadCopiesOut)
	}
	if st.PayloadCopiesIn != 0 {
		t.Errorf("PayloadCopiesIn = %d, want 0", st.PayloadCopiesIn)
	}
	if want := uint64(fanout * msgs); st.ViewReceives != want {
		t.Errorf("ViewReceives = %d, want %d", st.ViewReceives, want)
	}
	if want := uint64(msgs); st.LoanSends != want {
		t.Errorf("LoanSends = %d, want %d", st.LoanSends, want)
	}
	// The copying plane on the identical workload pays fanout copies per
	// message — the bill the views erase.
	copyRes, err := NativeCopies(PlaneSpanCopy, size, fanout, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(fanout * msgs); copyRes.Stats.PayloadCopiesOut != want {
		t.Errorf("copy plane PayloadCopiesOut = %d, want %d", copyRes.Stats.PayloadCopiesOut, want)
	}
}

// TestCopiesSweepQuick exercises the ablation sweep end-to-end.
func TestCopiesSweepQuick(t *testing.T) {
	bySize, byFanout, err := CopiesSweep(Config{Mode: Native, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(bySize.Series) != 3 {
		t.Fatalf("size figure has %d series, want 3", len(bySize.Series))
	}
	for _, s := range bySize.Series {
		if len(s.Points) != 2 {
			t.Errorf("size series %q has %d points, want 2", s.Label, len(s.Points))
		}
	}
	if len(byFanout.Series) != 3 {
		t.Fatalf("fanout figure has %d series, want 3", len(byFanout.Series))
	}
	for _, s := range byFanout.Series {
		if len(s.Points) != 2 {
			t.Errorf("fanout series %q has %d points, want 2", s.Label, len(s.Points))
		}
	}
}
