package bench

import (
	"math/rand"

	"repro/mpf"
)

// mpfFacility wraps a facility so figure code reads uniformly.
type mpfFacility struct{ f *mpf.Facility }

func newGaussFacility(workers int) (*mpfFacility, error) {
	f, err := mpf.New(
		mpf.WithMaxProcesses(workers+1),
		mpf.WithMaxLNVCs(16),
		mpf.WithBlocksPerProcess(2048),
	)
	if err != nil {
		return nil, err
	}
	return &mpfFacility{f: f}, nil
}

func newSORFacility(procs int) (*mpfFacility, error) {
	f, err := mpf.New(
		mpf.WithMaxProcesses(procs),
		mpf.WithMaxLNVCs(256),
		mpf.WithBlocksPerProcess(4096),
	)
	if err != nil {
		return nil, err
	}
	return &mpfFacility{f: f}, nil
}

// newDeterministicRand gives figure code reproducible inputs.
func newDeterministicRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
