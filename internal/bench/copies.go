package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/mpf"
)

// Copy-ablation benchmark. The paper's fundamental data structure
// forces two payload copies per message — message_send copies the user
// buffer into linked blocks, message_receive copies the blocks into the
// user buffer — and its §5 conclusion proposes restricting generality
// to remove them. The zero-copy plane (SendConn.Loan / RecvConn.
// ReceiveView) makes both copies optional on the *general* LNVC
// implementation; this benchmark quantifies what they cost, across
// payload sizes and across BROADCAST fan-out, where the copying plane
// pays one receive copy per receiver but views share one payload
// instance. Three planes are measured:
//
//   - the paper plane: classic single-block chains, both copies — the
//     faithful baseline;
//   - the copy plane: contiguous-span allocation, both copies — isolates
//     the allocator from the copies;
//   - the zero-copy plane: span allocation, loans in, views out — no
//     structural copies at all.

// CopyPlane selects the payload-plane configuration a copies run uses.
type CopyPlane uint8

const (
	// PlaneClassicCopy is the paper's layout: classic chains, both
	// copies (Send/Receive).
	PlaneClassicCopy CopyPlane = iota
	// PlaneSpanCopy keeps the copies but allocates contiguous spans.
	PlaneSpanCopy
	// PlaneZeroCopy sends through loans and receives through views:
	// zero structural copies.
	PlaneZeroCopy
)

// String names the plane for figure labels.
func (p CopyPlane) String() string {
	switch p {
	case PlaneClassicCopy:
		return "paper plane (classic chains, 2 copies)"
	case PlaneSpanCopy:
		return "copy plane (spans, 2 copies)"
	case PlaneZeroCopy:
		return "zero-copy plane (loan/view)"
	default:
		return fmt.Sprintf("CopyPlane(%d)", uint8(p))
	}
}

// CopiesResult is one copies run's outcome.
type CopiesResult struct {
	// MsgsPerSec is message deliveries per second summed across all
	// receivers (a fan-out of 8 delivers each message 8 times).
	MsgsPerSec float64
	// MBPerSec is delivered payload megabytes per second.
	MBPerSec float64
	// Stats is the facility's counter snapshot, carrying the copy
	// ledger (PayloadCopiesIn/Out, LoanSends, ViewReceives) the gate
	// test asserts on.
	Stats mpf.Stats
}

// NativeCopies moves msgs messages of msgLen bytes from one sender to
// fanout BROADCAST receivers over the selected payload plane and
// reports delivery throughput plus the facility's copy ledger. The
// receivers validate a byte at each end of every payload, so the
// zero-copy leg really does touch the shared instance.
// copiesInflight sizes the region: how many messages may be in flight.
var copiesInflight = 16

func NativeCopies(plane CopyPlane, msgLen, fanout, msgs int) (CopiesResult, error) {
	if msgLen < 1 || fanout < 1 || msgs < 1 {
		return CopiesResult{}, fmt.Errorf("bench: copies(msgLen=%d, fanout=%d, msgs=%d)", msgLen, fanout, msgs)
	}
	opts := []mpf.Option{
		mpf.WithMaxProcesses(fanout + 1),
		mpf.WithMaxLNVCs(4),
		mpf.WithBlocksPerProcess(blocksFor(msgLen, copiesInflight)),
	}
	if plane == PlaneClassicCopy {
		opts = append(opts, mpf.WithClassicChains())
	}
	fac, err := mpf.New(opts...)
	if err != nil {
		return CopiesResult{}, err
	}
	defer fac.Shutdown()

	var ready sync.WaitGroup
	ready.Add(fanout)
	payload := make([]byte, msgLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	err = fac.Run(fanout+1, func(p *mpf.Process) error {
		if p.PID() == 0 {
			s, err := p.OpenSend("copies")
			if err != nil {
				return err
			}
			ready.Wait() // every receiver connected: all see the stream
			for i := 0; i < msgs; i++ {
				if plane == PlaneZeroCopy {
					ln, err := s.Loan(msgLen)
					if err != nil {
						return err
					}
					b, ok := ln.Bytes()
					if !ok {
						// Fragmented loan: fill through the segment walk.
						ln.CopyFrom(payload)
					} else {
						b[0], b[msgLen-1] = byte(i), byte(i)
					}
					if err := ln.Commit(); err != nil {
						return err
					}
				} else {
					payload[0], payload[msgLen-1] = byte(i), byte(i)
					if err := s.Send(payload); err != nil {
						return err
					}
				}
			}
			return nil
		}
		r, err := p.OpenReceive("copies", mpf.Broadcast)
		if err != nil {
			return err
		}
		defer r.Close()
		ready.Done()
		buf := make([]byte, msgLen)
		for i := 0; i < msgs; i++ {
			if plane == PlaneZeroCopy {
				v, err := r.ReceiveView()
				if err != nil {
					return err
				}
				if b, ok := v.Bytes(); ok {
					if b[0] != byte(i) || b[msgLen-1] != byte(i) {
						v.Release()
						return fmt.Errorf("bench: copies receiver %d: bad payload at msg %d", p.PID(), i)
					}
				} else {
					v.Segments(func(seg []byte) bool { _ = seg[0]; return true })
				}
				v.Release()
			} else {
				n, err := r.Receive(buf)
				if err != nil {
					return err
				}
				if n != msgLen || buf[0] != byte(i) || buf[msgLen-1] != byte(i) {
					return fmt.Errorf("bench: copies receiver %d: bad payload at msg %d", p.PID(), i)
				}
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return CopiesResult{}, err
	}
	deliveries := msgs * fanout
	return CopiesResult{
		MsgsPerSec: rate(deliveries, elapsed),
		MBPerSec:   rate(deliveries, elapsed) * float64(msgLen) / (1 << 20),
		Stats:      fac.Stats(),
	}, nil
}

// CopiesPayloadSizes is the payload-size sweep (bytes) of the copies
// figure; CopiesFanOuts is the BROADCAST fan-out sweep at
// CopiesFanOutPayload bytes.
var (
	CopiesPayloadSizes  = []int{64, 512, 4096, 16384}
	CopiesFanOuts       = []int{1, 2, 4, 8}
	CopiesFanOutPayload = 4096
)

// CopiesSweep runs the copy ablation and returns two figures: delivered
// throughput versus payload size (single receiver), and aggregate
// delivered throughput versus BROADCAST fan-out (4 KiB payloads), one
// series per payload plane in each.
func CopiesSweep(cfg Config) (bySize, byFanout *stats.Figure, err error) {
	planes := []CopyPlane{PlaneClassicCopy, PlaneSpanCopy, PlaneZeroCopy}
	msgs := cfg.scale(4000, 600)

	bySize = stats.NewFigure("Copy Ablation — Delivered MB/s vs. Payload Size (native, 1 receiver)",
		"payload bytes", "MB/sec")
	sizes := CopiesPayloadSizes
	if cfg.Quick {
		sizes = []int{512, 4096}
	}
	for _, plane := range planes {
		series := bySize.AddSeries(plane.String())
		for _, size := range sizes {
			res, err := NativeCopies(plane, size, 1, msgs)
			if err != nil {
				return nil, nil, fmt.Errorf("copies size=%d plane=%s: %w", size, plane, err)
			}
			series.Add(size, res.MBPerSec)
		}
	}

	byFanout = stats.NewFigure(
		fmt.Sprintf("Copy Ablation — Aggregate Deliveries/s vs. BROADCAST Fan-Out (native, %d-byte payloads)", CopiesFanOutPayload),
		"receivers", "deliveries/sec")
	fanouts := CopiesFanOuts
	if cfg.Quick {
		fanouts = []int{1, 8}
	}
	for _, plane := range planes {
		series := byFanout.AddSeries(plane.String())
		for _, n := range fanouts {
			res, err := NativeCopies(plane, CopiesFanOutPayload, n, msgs)
			if err != nil {
				return nil, nil, fmt.Errorf("copies fanout=%d plane=%s: %w", n, plane, err)
			}
			series.Add(n, res.MsgsPerSec)
		}
	}
	return bySize, byFanout, nil
}
