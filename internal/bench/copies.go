package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/mpf"
)

// Copy-ablation benchmark. The paper's fundamental data structure
// forces two payload copies per message — message_send copies the user
// buffer into linked blocks, message_receive copies the blocks into the
// user buffer — and its §5 conclusion proposes restricting generality
// to remove them. The zero-copy plane (SendConn.Loan / RecvConn.
// ReceiveView) makes both copies optional on the *general* LNVC
// implementation; this benchmark quantifies what they cost, across
// payload sizes and across BROADCAST fan-out, where the copying plane
// pays one receive copy per receiver but views share one payload
// instance. Three planes are measured:
//
//   - the paper plane: classic single-block chains, both copies — the
//     faithful baseline;
//   - the copy plane: contiguous-span allocation, both copies — isolates
//     the allocator from the copies;
//   - the zero-copy plane: span allocation, loans in, views out — no
//     structural copies at all.

// CopyPlane selects the payload-plane configuration a copies run uses.
type CopyPlane uint8

const (
	// PlaneClassicCopy is the paper's layout: classic chains, both
	// copies (Send/Receive).
	PlaneClassicCopy CopyPlane = iota
	// PlaneSpanCopy keeps the copies but allocates contiguous spans.
	PlaneSpanCopy
	// PlaneZeroCopy sends through loans and receives through views:
	// zero structural copies.
	PlaneZeroCopy
)

// String names the plane for figure labels.
func (p CopyPlane) String() string {
	switch p {
	case PlaneClassicCopy:
		return "paper plane (classic chains, 2 copies)"
	case PlaneSpanCopy:
		return "copy plane (spans, 2 copies)"
	case PlaneZeroCopy:
		return "zero-copy plane (loan/view)"
	default:
		return fmt.Sprintf("CopyPlane(%d)", uint8(p))
	}
}

// CopiesResult is one copies run's outcome.
type CopiesResult struct {
	// MsgsPerSec is message deliveries per second summed across all
	// receivers (a fan-out of 8 delivers each message 8 times).
	MsgsPerSec float64
	// MBPerSec is delivered payload megabytes per second.
	MBPerSec float64
	// ArenaLocksPerMsg is arena free-pool lock acquisitions per message
	// sent during the run — the fixed cost the batched plane amortises
	// (shm.Arena.LockStats bracketing the run).
	ArenaLocksPerMsg float64
	// Stats is the facility's counter snapshot, carrying the copy
	// ledger (PayloadCopiesIn/Out, LoanSends, ViewReceives) the gate
	// test asserts on.
	Stats mpf.Stats
}

// NativeCopies moves msgs messages of msgLen bytes from one sender to
// fanout BROADCAST receivers over the selected payload plane and
// reports delivery throughput plus the facility's copy ledger. The
// receivers validate a byte at each end of every payload, so the
// zero-copy leg really does touch the shared instance.
// copiesInflight sizes the region: how many messages may be in flight.
var copiesInflight = 16

func NativeCopies(plane CopyPlane, msgLen, fanout, msgs int) (CopiesResult, error) {
	if msgLen < 1 || fanout < 1 || msgs < 1 {
		return CopiesResult{}, fmt.Errorf("bench: copies(msgLen=%d, fanout=%d, msgs=%d)", msgLen, fanout, msgs)
	}
	opts := []mpf.Option{
		mpf.WithMaxProcesses(fanout + 1),
		mpf.WithMaxLNVCs(4),
		mpf.WithBlocksPerProcess(blocksFor(msgLen, copiesInflight)),
	}
	if plane == PlaneClassicCopy {
		opts = append(opts, mpf.WithClassicChains())
	}
	fac, err := mpf.New(opts...)
	if err != nil {
		return CopiesResult{}, err
	}
	defer fac.Shutdown()

	var ready sync.WaitGroup
	ready.Add(fanout)
	payload := make([]byte, msgLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	arenaAcq0, _ := fac.Core().Arena().LockStats()
	start := time.Now()
	err = fac.Run(fanout+1, func(p *mpf.Process) error {
		if p.PID() == 0 {
			s, err := p.OpenSend("copies")
			if err != nil {
				return err
			}
			ready.Wait() // every receiver connected: all see the stream
			for i := 0; i < msgs; i++ {
				if plane == PlaneZeroCopy {
					ln, err := s.Loan(msgLen)
					if err != nil {
						return err
					}
					b, ok := ln.Bytes()
					if !ok {
						// Fragmented loan: fill through the segment walk.
						ln.CopyFrom(payload)
					} else {
						b[0], b[msgLen-1] = byte(i), byte(i)
					}
					if err := ln.Commit(); err != nil {
						return err
					}
				} else {
					payload[0], payload[msgLen-1] = byte(i), byte(i)
					if err := s.Send(payload); err != nil {
						return err
					}
				}
			}
			return nil
		}
		r, err := p.OpenReceive("copies", mpf.Broadcast)
		if err != nil {
			return err
		}
		defer r.Close()
		ready.Done()
		buf := make([]byte, msgLen)
		for i := 0; i < msgs; i++ {
			if plane == PlaneZeroCopy {
				v, err := r.ReceiveView()
				if err != nil {
					return err
				}
				if b, ok := v.Bytes(); ok {
					if b[0] != byte(i) || b[msgLen-1] != byte(i) {
						v.Release()
						return fmt.Errorf("bench: copies receiver %d: bad payload at msg %d", p.PID(), i)
					}
				} else {
					v.Segments(func(seg []byte) bool { _ = seg[0]; return true })
				}
				v.Release()
			} else {
				n, err := r.Receive(buf)
				if err != nil {
					return err
				}
				if n != msgLen || buf[0] != byte(i) || buf[msgLen-1] != byte(i) {
					return fmt.Errorf("bench: copies receiver %d: bad payload at msg %d", p.PID(), i)
				}
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	arenaAcq1, _ := fac.Core().Arena().LockStats()
	if err != nil {
		return CopiesResult{}, err
	}
	deliveries := msgs * fanout
	return CopiesResult{
		MsgsPerSec:       rate(deliveries, elapsed),
		MBPerSec:         rate(deliveries, elapsed) * float64(msgLen) / (1 << 20),
		ArenaLocksPerMsg: float64(arenaAcq1-arenaAcq0) / float64(msgs),
		Stats:            fac.Stats(),
	}, nil
}

// CopiesPayloadSizes is the payload-size sweep (bytes) of the copies
// figure; CopiesFanOuts is the BROADCAST fan-out sweep at
// CopiesFanOutPayload bytes.
var (
	CopiesPayloadSizes  = []int{64, 512, 4096, 16384}
	CopiesFanOuts       = []int{1, 2, 4, 8}
	CopiesFanOutPayload = 4096
)

// CopiesSweep runs the copy ablation and returns two figures: delivered
// throughput versus payload size (single receiver), and aggregate
// delivered throughput versus BROADCAST fan-out (4 KiB payloads), one
// series per payload plane in each.
func CopiesSweep(cfg Config) (bySize, byFanout *stats.Figure, err error) {
	planes := []CopyPlane{PlaneClassicCopy, PlaneSpanCopy, PlaneZeroCopy}
	msgs := cfg.scale(4000, 600)

	bySize = stats.NewFigure("Copy Ablation — Delivered MB/s vs. Payload Size (native, 1 receiver)",
		"payload bytes", "MB/sec")
	sizes := CopiesPayloadSizes
	if cfg.Quick {
		sizes = []int{512, 4096}
	}
	for _, plane := range planes {
		series := bySize.AddSeries(plane.String())
		for _, size := range sizes {
			res, err := NativeCopies(plane, size, 1, msgs)
			if err != nil {
				return nil, nil, fmt.Errorf("copies size=%d plane=%s: %w", size, plane, err)
			}
			series.Add(size, res.MBPerSec)
		}
	}

	byFanout = stats.NewFigure(
		fmt.Sprintf("Copy Ablation — Aggregate Deliveries/s vs. BROADCAST Fan-Out (native, %d-byte payloads)", CopiesFanOutPayload),
		"receivers", "deliveries/sec")
	fanouts := CopiesFanOuts
	if cfg.Quick {
		fanouts = []int{1, 8}
	}
	for _, plane := range planes {
		series := byFanout.AddSeries(plane.String())
		for _, n := range fanouts {
			res, err := NativeCopies(plane, CopiesFanOutPayload, n, msgs)
			if err != nil {
				return nil, nil, fmt.Errorf("copies fanout=%d plane=%s: %w", n, plane, err)
			}
			series.Add(n, res.MsgsPerSec)
		}
	}
	return bySize, byFanout, nil
}

// The batched zero-copy plane's ablation. The copies ablation above
// showed the 4 KiB zero-copy advantage is fixed-cost-bound: with the
// structural copies gone, what remains per message is one arena
// free-pool transaction per loan and one registry-resolve + circuit
// lock per view. NativeLoanBatch measures the pipeline that amortises
// both — LoanBatch/CommitAll on the send side, Selector.WaitViews +
// ReleaseViews on the receive side — against the per-message zero-copy
// plane (Loan/Commit, Selector.Wait + TryReceiveView/Release) on the
// identical event-loop workload, reporting throughput and arena lock
// acquisitions per message.

// LoanBatchSize and LoanBatchPayload are the headline configuration
// the gate test and BENCH.json measure: batches of 16 messages of
// 4 KiB.
const (
	LoanBatchSize    = 16
	LoanBatchPayload = 4096
)

// LoanBatchResult is one batched-plane run's outcome.
type LoanBatchResult struct {
	// MsgsPerSec is delivered messages per second (single receiver).
	MsgsPerSec float64
	// ArenaLocksPerMsg is arena free-pool lock acquisitions per
	// message over the whole run — allocation and free sides combined.
	ArenaLocksPerMsg float64
	// Stats carries the ledger (LoanBatchSends, HarvestedViews,
	// PayloadCopiesIn/Out) the gate asserts on.
	Stats mpf.Stats
}

// NativeLoanBatch moves msgs stamped messages of msgLen bytes from one
// sender to one FCFS event-loop receiver over the zero-copy plane.
// With batched set the traffic rides LoanBatch/CommitAll and
// Selector.WaitViews/ReleaseViews in groups of batch; otherwise each
// message pays the per-message loan/view costs (Loan/Commit,
// Selector.Wait + TryReceiveView/Release) — the PR 3 idiom. The
// receiver validates a byte at each end of every payload in place.
func NativeLoanBatch(batched bool, msgLen, batch, msgs int) (LoanBatchResult, error) {
	if msgLen < 2 || batch < 1 || msgs < 1 {
		return LoanBatchResult{}, fmt.Errorf("bench: loanbatch(msgLen=%d, batch=%d, msgs=%d)", msgLen, batch, msgs)
	}
	fac, err := mpf.New(
		mpf.WithMaxProcesses(2),
		mpf.WithMaxLNVCs(4),
		mpf.WithBlocksPerProcess(blocksFor(msgLen, 4*batch)),
	)
	if err != nil {
		return LoanBatchResult{}, err
	}
	defer fac.Shutdown()

	check := func(b []byte, seq int) error {
		if len(b) != msgLen || b[0] != byte(seq) || b[msgLen-1] != byte(seq) {
			return fmt.Errorf("bench: loanbatch receiver: bad payload at msg %d", seq)
		}
		return nil
	}
	fallback := make([]byte, msgLen) // fragmented-loan fill, stamped per message
	arenaAcq0, _ := fac.Core().Arena().LockStats()
	start := time.Now()
	err = fac.Run(2, func(p *mpf.Process) error {
		if p.PID() == 0 {
			s, err := p.OpenSend("loanbatch")
			if err != nil {
				return err
			}
			// No ready handshake needed: the send connection keeps the
			// circuit alive and the late-joining FCFS receiver inherits
			// the backlog (reclamation rule 5).
			ns := make([]int, batch)
			for i := range ns {
				ns[i] = msgLen
			}
			if !batched {
				for i := 0; i < msgs; i++ {
					ln, err := s.Loan(msgLen)
					if err != nil {
						return err
					}
					if b, ok := ln.Bytes(); ok {
						b[0], b[msgLen-1] = byte(i), byte(i)
					} else {
						fallback[0], fallback[msgLen-1] = byte(i), byte(i)
						ln.View().CopyFrom(fallback)
					}
					if err := ln.Commit(); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < msgs; i += batch {
				k := batch
				if k > msgs-i {
					k = msgs - i
				}
				lb, err := s.LoanBatch(ns[:k])
				if err != nil {
					return err
				}
				for j := 0; j < k; j++ {
					if b, ok := lb.Bytes(j); ok {
						b[0], b[msgLen-1] = byte(i+j), byte(i+j)
					} else {
						fallback[0], fallback[msgLen-1] = byte(i+j), byte(i+j)
						lb.Fill(j, fallback)
					}
				}
				if err := lb.CommitAll(); err != nil {
					return err
				}
			}
			return nil
		}
		rc, err := p.OpenReceive("loanbatch", mpf.FCFS)
		if err != nil {
			return err
		}
		defer rc.Close()
		sel, err := p.NewSelector()
		if err != nil {
			return err
		}
		defer sel.Close()
		if err := sel.Add(rc); err != nil {
			return err
		}
		got := 0
		verify := func(v *mpf.View) error {
			if b, ok := v.Bytes(); ok {
				return check(b, got)
			}
			buf := make([]byte, msgLen)
			v.CopyTo(buf)
			return check(buf, got)
		}
		for got < msgs {
			if !batched {
				// Per-message plane: the readiness wait, then one
				// registry resolve + circuit lock per message.
				if _, err := sel.WaitDeadline(10 * time.Second); err != nil {
					return fmt.Errorf("after %d of %d: %w", got, msgs, err)
				}
				for got < msgs {
					v, ok, err := rc.TryReceiveView()
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					if err := verify(v); err != nil {
						v.Release()
						return err
					}
					got++
					v.Release()
				}
				continue
			}
			vs, err := sel.WaitViewsDeadline(batch, 10*time.Second)
			if err != nil {
				return fmt.Errorf("after %d of %d: %w", got, msgs, err)
			}
			for _, v := range vs {
				if err := verify(v); err != nil {
					mpf.ReleaseViews(vs)
					return err
				}
				got++
			}
			mpf.ReleaseViews(vs)
		}
		return nil
	})
	elapsed := time.Since(start)
	arenaAcq1, _ := fac.Core().Arena().LockStats()
	if err != nil {
		return LoanBatchResult{}, err
	}
	return LoanBatchResult{
		MsgsPerSec:       rate(msgs, elapsed),
		ArenaLocksPerMsg: float64(arenaAcq1-arenaAcq0) / float64(msgs),
		Stats:            fac.Stats(),
	}, nil
}

// LoanBatchSweep runs the batched-plane ablation and returns two
// figures at LoanBatchPayload bytes: delivered throughput versus batch
// size, and arena lock acquisitions per message versus batch size, one
// series per plane in each. The per-message plane does not batch, so
// it is measured once at the headline region size (batch only sizes
// the region in NativeLoanBatch) and drawn as the genuinely flat
// baseline — re-measuring it per batch point would vary its
// backpressure with the x-axis for reasons unrelated to batching.
func LoanBatchSweep(cfg Config) (throughput, locks *stats.Figure, err error) {
	msgs := cfg.scale(4000, 600)
	batches := []int{1, 4, 16, 64}
	if cfg.Quick {
		batches = []int{4, 16}
	}
	throughput = stats.NewFigure(
		fmt.Sprintf("LoanBatch Ablation — Delivered Msgs/s vs. Batch Size (native, %d-byte payloads)", LoanBatchPayload),
		"batch", "msgs/sec")
	locks = stats.NewFigure(
		fmt.Sprintf("LoanBatch Ablation — Arena Lock Acquisitions per Message vs. Batch Size (native, %d-byte payloads)", LoanBatchPayload),
		"batch", "locks/msg")
	perMsgT := throughput.AddSeries("per-message zero-copy plane (loan/view)")
	batchedT := throughput.AddSeries("batched plane (LoanBatch/WaitViews)")
	perMsgL := locks.AddSeries("per-message zero-copy plane (loan/view)")
	batchedL := locks.AddSeries("batched plane (LoanBatch/WaitViews)")
	per, err := NativeLoanBatch(false, LoanBatchPayload, LoanBatchSize, msgs)
	if err != nil {
		return nil, nil, fmt.Errorf("loanbatch per-message: %w", err)
	}
	for _, batch := range batches {
		bat, err := NativeLoanBatch(true, LoanBatchPayload, batch, msgs)
		if err != nil {
			return nil, nil, fmt.Errorf("loanbatch batched batch=%d: %w", batch, err)
		}
		perMsgT.Add(batch, per.MsgsPerSec)
		batchedT.Add(batch, bat.MsgsPerSec)
		perMsgL.Add(batch, per.ArenaLocksPerMsg)
		batchedL.Add(batch, bat.ArenaLocksPerMsg)
	}
	return throughput, locks, nil
}
