package bench

import (
	"errors"
	"testing"

	"repro/internal/faultpoint"
	"repro/mpf"
)

// TestCrashReclamation is the PR 9 acceptance gate: kill K of 4
// children at armed fault points mid-traffic and require that every
// death was detected and reclaimed, every victim was respawned, the
// survivors made progress throughout, and the facility ended pristine.
// RunCrash itself enforces the pristine part — every slot reusable,
// credit ledger quiescent, zero leaked arena blocks — by failing the
// measurement otherwise, so a non-nil result already carries most of
// the proof.
func TestCrashReclamation(t *testing.T) {
	bin, env := XProcSpawnSelf()
	const children, victims = 4, 2
	r, err := RunCrash(bin, env, children, victims, 120, 512)
	if errors.Is(err, mpf.ErrNoSharedBackend) {
		t.Skip("no shared segment backend on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	if r.Deaths != victims {
		t.Errorf("deaths = %d, want %d (one per armed victim)", r.Deaths, victims)
	}
	if r.Respawns != victims {
		t.Errorf("respawns = %d, want %d", r.Respawns, victims)
	}
	if r.SurvivorMsgsPerSec <= 0 {
		t.Error("survivors recorded no throughput")
	}
	if r.Deaths > 0 && r.ReclaimMaxMicros <= 0 {
		t.Error("reclaim latency not recorded")
	}
	t.Logf("crash: %d deaths, %d respawns, survivors %.0f msgs/s, reclaim mean %.1fµs max %.1fµs, recovered %d views + %d credits",
		r.Deaths, r.Respawns, r.SurvivorMsgsPerSec,
		r.ReclaimMeanMicros, r.ReclaimMaxMicros, r.ReclaimedViews, r.ReclaimedCredits)
}

// TestCrashVictimSpecs: the victim fault specs must parse (a typo here
// would make every victim fail attach with a spec error instead of
// crashing at its point) and cover more than one protocol stage.
func TestCrashVictimSpecs(t *testing.T) {
	defer faultpoint.Reset()
	stages := map[string]bool{}
	for v := 0; v < 6; v++ {
		spec := crashVictimSpec(v, 120)
		faultpoint.Reset()
		if err := faultpoint.Set(spec); err != nil {
			t.Errorf("victim %d spec %q does not parse: %v", v, spec, err)
		}
		stages[spec] = true
	}
	if len(stages) < 3 {
		t.Errorf("victim specs collapsed to %d distinct points: %v", len(stages), stages)
	}
}
