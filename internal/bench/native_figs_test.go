package bench

import "testing"

// Smoke tests for the native application figures: on a single-CPU host
// speedups are meaningless, so these only assert the plumbing — every
// series present, every point positive, baselines sane.

func TestFig7NativeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("native Gauss sweep in -short mode")
	}
	fig, err := Fig7(Config{Mode: Native, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s at %d: speedup %v", s.Label, p.X, p.Y)
			}
		}
	}
}

func TestFig8NativeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("native SOR sweep in -short mode")
	}
	fig, err := Fig8(Config{Mode: Native, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if y, ok := s.Y(2); !ok || y != 1 {
			t.Fatalf("%s: baseline at N=2 is %v, want 1", s.Label, y)
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s at %d: %v", s.Label, p.X, p.Y)
			}
		}
	}
}

func TestFig3NativeShape(t *testing.T) {
	fig, err := Fig3(Config{Mode: Native, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Get("throughput")
	if s == nil || len(s.Points) == 0 {
		t.Fatal("missing series")
	}
	// Native throughput must still grow from 16 B to 2048 B messages.
	y16, _ := s.Y(16)
	y2048, _ := s.Y(2048)
	if y2048 <= y16 {
		t.Fatalf("native base: 2048B (%.0f) not above 16B (%.0f)", y2048, y16)
	}
}
