package bench

import (
	"fmt"
	"strings"
)

// Perf-regression comparison. The perf-regression CI job measures a
// fresh BENCH.json, loads the previous run's artifact (or the committed
// BENCH_BASELINE.json seed when the trajectory is empty), and feeds
// both through Compare: every headline metric is checked against the
// old value under a relative tolerance, the deltas are rendered as a
// markdown table for $GITHUB_STEP_SUMMARY, and any regression beyond
// tolerance fails the build (mpfbench -compare exits non-zero).
//
// Comparison requires the two files to share a schema — a bump may
// *redefine* a metric under its old name (schema 3 smoothed
// wakeup_advantage, for instance), and holding a new definition to an
// old baseline fails on pure definition skew — and is then by metric
// *name* over the intersection of the two summaries, so shape
// differences within a schema (a baseline that measured fewer copies
// points, say) degrade gracefully: metrics only one side has are
// simply unheld. The CI artifact name carries the schema
// (bench-json-v5), so the gate never even downloads a stale-schema
// baseline; a schema bump's first run falls back to the committed
// seed.

// metricDir says which way a metric is allowed to move freely.
type metricDir int

const (
	higherIsBetter metricDir = iota
	lowerIsBetter
)

// metric is one comparable headline number extracted from a summary.
// scaleDependent marks raw throughput numbers, which only compare
// meaningfully between runs on comparable hardware — the ratiosOnly
// comparison mode (used when the baseline is the committed seed,
// measured on whatever machine committed it) skips them and holds only
// the scale-invariant ratios and lock counts.
type metric struct {
	name           string
	val            float64
	dir            metricDir
	scaleDependent bool
}

// metrics flattens the summary into its ordered list of comparable
// headlines. Absolute throughput numbers are machine-dependent and CI
// boxes are heterogeneous, so the comparison leans on the *ratios*
// (sharded/unsharded, zero-copy/copy, batched/per-message) — both
// sides of each ratio ride the same box, so box speed divides out —
// plus the arena-lock *counts* per message, which are structural and
// essentially deterministic. Raw throughputs are included too:
// same-box reruns (the artifact chain on one runner pool) do catch
// real walk-backs, and the tolerance absorbs pool noise.
//
// The credit section is deliberately NOT in the comparison set: its
// headline is the uncredited starvation p99, which is unbounded noise
// by construction (a starved send records however long the monopoly
// lasted), so no fixed tolerance fits it. The fairness property is
// enforced by the TestCreditFairness gate instead; BENCH.json records
// the numbers purely as trajectory.
func (s *JSONSummary) metrics() []metric {
	ms := []metric{
		{"contention.sharded_batched_msgs_per_sec", s.Contention.ShardedBatchedMsgsPerSec, higherIsBetter, true},
		{"contention.advantage", s.Contention.Advantage, higherIsBetter, false},
		{"selector.msgs_per_sec", s.Selector.SelectorMsgsPerSec, higherIsBetter, true},
		{"selector.wakeup_advantage", s.Selector.WakeupAdvantage, higherIsBetter, false},
	}
	for _, p := range s.Copies {
		tag := fmt.Sprintf("copies.%dB_fan%d", p.PayloadBytes, p.FanOut)
		ms = append(ms,
			metric{tag + ".zerocopy_msgs_per_sec", p.ZeroMsgsPerSec, higherIsBetter, true},
			metric{tag + ".advantage", p.Advantage, higherIsBetter, false},
		)
	}
	ms = append(ms,
		metric{"loan_batch.batched_msgs_per_sec", s.LoanBatch.BatchedMsgsPerSec, higherIsBetter, true},
		metric{"loan_batch.advantage", s.LoanBatch.Advantage, higherIsBetter, false},
		metric{"loan_batch.lock_amortisation", s.LoanBatch.LockAmortisation, higherIsBetter, false},
		metric{"loan_batch.batched_arena_locks_per_msg", s.LoanBatch.BatchedArenaLocksPerMsg, lowerIsBetter, false},
	)
	// The cross-process section contributes only when it actually ran —
	// a summary measured where there is no shared-segment backend has
	// nothing to hold or be held to, and the by-name intersection makes
	// a supported/unsupported pair degrade to "unheld", not "failed".
	// All four are scale-dependent: throughput for the usual reason, and
	// the waiter counters because spin-vs-sleep crossover is a property
	// of the box's scheduling latency — they gate same-pool artifact
	// chains (where a busy-spin regression shows as polls-per-message
	// exploding) but not the committed-seed ratios-only fallback.
	if s.XProc.Supported {
		ms = append(ms,
			metric{"xproc.msgs_per_sec", s.XProc.MsgsPerSec, higherIsBetter, true},
			metric{"xproc.spin_polls_per_msg_plus1", s.XProc.SpinPollsPerMsgPlus1, lowerIsBetter, true},
			metric{"xproc.futex_sleeps_per_msg_plus1", s.XProc.FutexSleepsPerMsgPlus1, lowerIsBetter, true},
			metric{"xproc.futex_wakes_per_msg_plus1", s.XProc.FutexWakesPerMsgPlus1, lowerIsBetter, true},
		)
	}
	// The tuning section holds the adaptive-harvest drain throughput
	// and the round amortisation — the latter is a ratio of two
	// deterministic round counts (the drain has no timing races), so it
	// survives even the ratios-only seed fallback. The throughput
	// *advantage* (auto/fixed), the starvation counts, the cap/gauge
	// numbers and the huge-page leg are trajectory-only, credit-style:
	// the advantage's denominator is the deliberately-degenerate greedy
	// sweep whose absolute speed swings with scheduling, starvation is
	// a small integer that legitimately flickers, and the huge-page
	// delta is sub-noise by design. TestTuningAdvantage enforces those
	// properties instead. The false-sharing and affinity ratios are
	// box-topology facts (core count, SMT layout), so like the xproc
	// waiter counters they gate same-pool chains only; the pinned
	// metric contributes only where pinning actually worked, mirroring
	// the xproc Supported gate.
	ms = append(ms,
		metric{"tuning.auto_msgs_per_sec", s.Tuning.AutoMsgsPerSec, higherIsBetter, true},
		metric{"tuning.round_amortisation", s.Tuning.RoundAmortisation, higherIsBetter, false},
		metric{"tuning.padded_vs_packed_advantage", s.Tuning.PaddedVsPackedAdvantage, higherIsBetter, true},
	)
	if s.Tuning.AffinitySupported {
		ms = append(ms,
			metric{"tuning.pinned_vs_floating_advantage", s.Tuning.PinnedVsFloatingAdvantage, higherIsBetter, true},
		)
	}
	// The crash section mirrors the xproc Supported gating. Survivor
	// throughput is scale-dependent for the usual reason; reclaim
	// completeness is a deterministic ratio (deaths over armed victims,
	// 1.0 by construction — RunCrash fails outright on a missed death)
	// held everywhere, including the ratios-only seed fallback, so a
	// regression that silently stopped detecting deaths cannot pass the
	// gate even on fresh hardware. The reclaim *latency* figures are
	// trajectory-only, credit-style: they measure the supervisor's
	// detection epoch (death-watcher poll + probe interval), which is
	// configuration, not protocol performance, and no fixed tolerance
	// fits a number dominated by scheduler jitter around a 5ms poll.
	if s.Crash.Supported {
		ms = append(ms,
			metric{"crash.survivor_msgs_per_sec", s.Crash.SurvivorMsgsPerSec, higherIsBetter, true},
			metric{"crash.reclaim_completeness", s.Crash.ReclaimCompleteness, higherIsBetter, false},
		)
	}
	return ms
}

// CompareRow is one metric's old-versus-new outcome.
type CompareRow struct {
	Name     string
	Old, New float64
	// Delta is the relative change in the metric's *good* direction:
	// positive is improvement, negative is movement toward regression,
	// whichever way the metric points.
	Delta float64
	// Regressed is true when the bad-direction movement exceeds the
	// tolerance.
	Regressed bool
}

// ErrSchemaMismatch is returned by Compare when the two summaries use
// different schemas: a bump may redefine a metric under its old name,
// so cross-schema deltas are definition skew, not performance signal.
var ErrSchemaMismatch = fmt.Errorf("bench: BENCH.json schemas differ; measure a same-schema baseline")

// Compare checks every headline metric present in both summaries under
// a relative tolerance (0.25 = a metric may lose up to 25% before the
// comparison fails). It returns the per-metric rows in old-summary
// order and the number of regressions, or ErrSchemaMismatch when the
// files do not share a schema. With ratiosOnly, raw throughput
// metrics are skipped and only the scale-invariant ratios and lock
// counts are held — the right mode when the two files were measured on
// different machines (the committed-baseline fallback).
func Compare(oldS, newS *JSONSummary, tolerance float64, ratiosOnly bool) ([]CompareRow, int, error) {
	if oldS.Schema != newS.Schema {
		return nil, 0, fmt.Errorf("%w (old schema %d, new schema %d)", ErrSchemaMismatch, oldS.Schema, newS.Schema)
	}
	newVals := make(map[string]metric)
	for _, m := range newS.metrics() {
		newVals[m.name] = m
	}
	var rows []CompareRow
	regressions := 0
	for _, om := range oldS.metrics() {
		if ratiosOnly && om.scaleDependent {
			continue
		}
		nm, ok := newVals[om.name]
		if !ok {
			continue // metric retired by a schema bump: nothing to hold it to
		}
		row := CompareRow{Name: om.name, Old: om.val, New: nm.val}
		if om.val != 0 {
			row.Delta = (nm.val - om.val) / om.val
			if om.dir == lowerIsBetter {
				row.Delta = -row.Delta
			}
		}
		row.Regressed = row.Delta < -tolerance
		if row.Regressed {
			regressions++
		}
		rows = append(rows, row)
	}
	return rows, regressions, nil
}

// RenderCompare renders the comparison as a GitHub-flavoured markdown
// delta table (the perf-regression job appends it to
// $GITHUB_STEP_SUMMARY) followed by a one-line verdict.
func RenderCompare(rows []CompareRow, regressions int, tolerance float64) string {
	var b strings.Builder
	b.WriteString("| metric | old | new | delta | status |\n")
	b.WriteString("|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		status := "ok"
		switch {
		case r.Regressed:
			status = "**REGRESSED**"
		case r.Delta > tolerance:
			status = "improved"
		}
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %+.1f%% | %s |\n",
			r.Name, r.Old, r.New, 100*r.Delta, status)
	}
	if regressions > 0 {
		fmt.Fprintf(&b, "\n**%d metric(s) regressed beyond the %.0f%% tolerance.**\n",
			regressions, 100*tolerance)
	} else {
		fmt.Fprintf(&b, "\nNo regressions beyond the %.0f%% tolerance across %d metric(s).\n",
			100*tolerance, len(rows))
	}
	return b.String()
}
