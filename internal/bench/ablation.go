package bench

import (
	"fmt"

	"repro/internal/apps/gauss"
	"repro/internal/apps/sor"
	"repro/internal/stats"
)

// Ablation figures: sensitivity studies on the simulated machine that
// the paper motivates but does not plot.

// ablationLengths is the message-length sweep shared by the ablation
// figures (Figure 3's axis).
var ablationLengths = []int{16, 64, 128, 256, 512, 1024, 2048}

// AblationSchemes projects the paper's §5 restricted schemes on the
// Balance model: loop-back style throughput (one transfer = one send +
// one receive by a single process) for the general LNVC path, the
// lock-free one-to-one circuit, and the synchronous single-copy
// transfer. This is the comparison the conclusion says was "currently
// underway".
func AblationSchemes(cfg Config) *stats.Figure {
	m := cfg.machine()
	fig := stats.NewFigure("Ablation (paper §5): restricted schemes vs general MPF (simulated)",
		"msglen", "bytes/sec")
	general := fig.AddSeries("general LNVC")
	one2one := fig.AddSeries("one-to-one")
	syncS := fig.AddSeries("synchronous")
	for _, l := range ablationLengths {
		general.Add(l, float64(l)/m.GeneralTransferTime(l))
		one2one.Add(l, float64(l)/m.One2OneTransferTime(l))
		syncS.Add(l, float64(l)/m.SyncTransferTime(l))
	}
	return fig
}

// AblationBlockSize reruns the simulated base benchmark under different
// message block sizes. The paper ran everything with 10-byte blocks
// (footnote 4); this shows how much of Figure 3's ceiling is that
// choice rather than the protocol.
func AblationBlockSize(cfg Config) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: base benchmark throughput vs block size (simulated)",
		"msglen", "bytes/sec")
	rounds := cfg.scale(100, 20)
	for _, blockPayload := range []int{10, 64, 256} {
		s := fig.AddSeries(fmt.Sprintf("%d-byte blocks", blockPayload))
		m := cfg.machine()
		mm := *m // copy: the sweep must not mutate the shared model
		mm.BlockPayload = blockPayload
		for _, l := range ablationLengths {
			thr, err := SimBase(&mm, l, rounds)
			if err != nil {
				return nil, fmt.Errorf("block ablation len=%d: %w", l, err)
			}
			s.Add(l, thr)
		}
	}
	return fig, nil
}

// AblationParadigm answers the paper's closing research question — "the
// effect of the parallel programming paradigm (message passing or
// shared memory) on application performance" — on the Balance model:
// both applications, both paradigms, speedup against the same
// sequential baseline.
func AblationParadigm(cfg Config) (*stats.Figure, error) {
	m := cfg.machine()
	fig := stats.NewFigure("Ablation (paper §5): message passing vs shared memory (simulated)",
		"processes", "speedup")

	gaussN := 96
	if cfg.Quick {
		gaussN = 48
	}
	procs := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		procs = []int{1, 4, 16}
	}
	mpfS := fig.AddSeries(fmt.Sprintf("gauss %d MPF", gaussN))
	shmS := fig.AddSeries(fmt.Sprintf("gauss %d shared", gaussN))
	seq := gauss.SimSeqTime(m, gaussN)
	for _, p := range procs {
		tm, err := gauss.SimTime(m, gaussN, p)
		if err != nil {
			return nil, err
		}
		ts, err := gauss.SimSharedTime(m, gaussN, p)
		if err != nil {
			return nil, err
		}
		mpfS.Add(p, seq/tm)
		shmS.Add(p, seq/ts)
	}

	// SOR at a fixed grid, swept over mesh dimension (4/9/16 procs).
	sorP := 33
	iters := cfg.scale(5, 2)
	mpfSor := fig.AddSeries(fmt.Sprintf("sor %d MPF", sorP))
	shmSor := fig.AddSeries(fmt.Sprintf("sor %d shared", sorP))
	base, err := sor.SimIterTime(m, sorP, 1, iters)
	if err != nil {
		return nil, err
	}
	for _, n := range []int{1, 2, 3, 4} {
		tm, err := sor.SimIterTime(m, sorP, n, iters)
		if err != nil {
			return nil, err
		}
		ts, err := sor.SimSharedIterTime(m, sorP, n, iters)
		if err != nil {
			return nil, err
		}
		mpfSor.Add(n*n, base/tm)
		shmSor.Add(n*n, base/ts)
	}
	return fig, nil
}

// AblationLockCost reruns the simulated fcfs benchmark at 16 bytes with
// scaled lock/wakeup costs, showing that Figure 4's small-message
// decline is a locking artifact, as the paper asserts.
func AblationLockCost(cfg Config) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: 16-byte fcfs throughput vs lock cost (simulated)",
		"receivers", "bytes/sec")
	msgs := cfg.scale(48, 16)
	receivers := []int{1, 4, 8, 16}
	if cfg.Quick {
		receivers = []int{1, 8}
	}
	for _, scale := range []float64{0, 1, 4} {
		s := fig.AddSeries(fmt.Sprintf("lock cost x%g", scale))
		m := cfg.machine()
		mm := *m
		mm.LockOverhead = m.LockOverhead * scale
		for _, n := range receivers {
			thr, err := SimFCFS(&mm, 16, n, msgs*n)
			if err != nil {
				return nil, fmt.Errorf("lock ablation n=%d: %w", n, err)
			}
			s.Add(n, thr)
		}
	}
	return fig, nil
}
