package bench

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/balance"
)

// These tests validate both substrates against the paper's qualitative
// results: absolute values for the simulated runners (paper scale),
// shapes only for native (host dependent). Quick configs keep runtimes
// test-friendly.

func TestSimBaseMatchesPaperScale(t *testing.T) {
	m := balance.Balance21000()
	thr, err := SimBase(m, 2048, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3's asymptote: ≈25,000 bytes/s.
	if thr < 20000 || thr > 27000 {
		t.Fatalf("2048-byte base throughput = %.0f, want ≈25,000", thr)
	}
	small, err := SimBase(m, 16, 30)
	if err != nil {
		t.Fatal(err)
	}
	if small >= thr {
		t.Fatalf("16-byte throughput (%.0f) not below 2048-byte (%.0f)", small, thr)
	}
}

func TestSimFCFSMatchesPaperScale(t *testing.T) {
	m := balance.Balance21000()
	thr, err := SimFCFS(m, 1024, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4's 1024-byte plateau: ≈45-50 Kbyte/s.
	if thr < 35000 || thr > 55000 {
		t.Fatalf("fcfs 1024B×8 = %.0f bytes/s, want ≈45,000", thr)
	}
}

func TestSimFCFSSmallMessagesDecline(t *testing.T) {
	// Figure 4: 16-byte throughput decreases as receivers are added
	// (lock contention).
	m := balance.Balance21000()
	t1, err := SimFCFS(m, 16, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	t16, err := SimFCFS(m, 16, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if t16 >= t1 {
		t.Fatalf("16-byte fcfs with 16 receivers (%.0f) not below 1 receiver (%.0f)", t16, t1)
	}
}

func TestSimBroadcastMatchesPaperScale(t *testing.T) {
	m := balance.Balance21000()
	thr, err := SimBroadcast(m, 1024, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: 687,245 bytes/s at 1024 B × 16 receivers.
	if thr < 550000 || thr > 800000 {
		t.Fatalf("broadcast 1024B×16 = %.0f bytes/s, want ≈687,245", thr)
	}
	// And it grows with receivers.
	thr4, err := SimBroadcast(m, 1024, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= thr4 {
		t.Fatalf("16 receivers (%.0f) not above 4 (%.0f)", thr, thr4)
	}
}

func TestSimBroadcastBeatsFCFSAggregate(t *testing.T) {
	m := balance.Balance21000()
	b, err := SimBroadcast(m, 1024, 8, 48)
	if err != nil {
		t.Fatal(err)
	}
	f, err := SimFCFS(m, 1024, 8, 48)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 2*f {
		t.Fatalf("broadcast (%.0f) should far exceed fcfs (%.0f) at 8 receivers", b, f)
	}
}

func TestSimRandomPagingKnee(t *testing.T) {
	// Figure 6: at 1024 bytes, throughput declines beyond ≈10 processes
	// because of paging; 64-byte messages never page within 20.
	m := balance.Balance21000()
	t8, err := SimRandom(m, 1024, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	t10, err := SimRandom(m, 1024, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	t16, err := SimRandom(m, 1024, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	if t10 <= t8 {
		t.Fatalf("1024B: 10 procs (%.0f) not above 8 (%.0f)", t10, t8)
	}
	if t16 >= t10 {
		t.Fatalf("1024B: 16 procs (%.0f) not below 10 (%.0f) — paging knee missing", t16, t10)
	}
	// 64-byte curve keeps rising.
	s8, err := SimRandom(m, 64, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	s16, err := SimRandom(m, 64, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	if s16 <= s8 {
		t.Fatalf("64B: 16 procs (%.0f) not above 8 (%.0f)", s16, s8)
	}
}

func TestSimRandomLargerMessagesFaster(t *testing.T) {
	m := balance.Balance21000()
	small, err := SimRandom(m, 8, 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	big, err := SimRandom(m, 256, 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("256B (%.0f) not above 8B (%.0f)", big, small)
	}
}

func TestNativeBaseMonotoneInLength(t *testing.T) {
	small, err := NativeBase(16, 300)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NativeBase(2048, 300)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("native base: 2048B (%.0f) not above 16B (%.0f)", big, small)
	}
}

func TestNativeFCFSRuns(t *testing.T) {
	thr, err := NativeFCFS(128, 4, 200)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestNativeBroadcastDeliversNFold(t *testing.T) {
	f1, err := NativeBroadcast(1024, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := NativeBroadcast(1024, 8, 200)
	if err != nil {
		t.Fatal(err)
	}
	if f1 <= 0 || f8 <= 0 {
		t.Fatalf("zero throughput: %v / %v", f1, f8)
	}
	// Delivered throughput grows with receivers only when receivers can
	// actually copy in parallel; on a single-CPU host the native run
	// degenerates to time slicing and only the simulated substrate can
	// demonstrate Figure 5's scaling.
	if runtime.GOMAXPROCS(0) < 4 {
		t.Logf("only %d CPUs; skipping scaling assertion (f1=%.0f, f8=%.0f)",
			runtime.GOMAXPROCS(0), f1, f8)
		return
	}
	if f8 <= 2*f1 {
		t.Fatalf("broadcast delivered: 8 recv (%.0f) not well above 1 recv (%.0f)", f8, f1)
	}
}

func TestNativeRandomRuns(t *testing.T) {
	thr, err := NativeRandom(256, 6, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestValidationErrors(t *testing.T) {
	m := balance.Balance21000()
	if _, err := NativeBase(-1, 1); err == nil {
		t.Error("NativeBase negative length accepted")
	}
	if _, err := NativeFCFS(0, 1, 1); err == nil {
		t.Error("NativeFCFS zero length accepted")
	}
	if _, err := NativeRandom(8, 1, 1, 0); err == nil {
		t.Error("NativeRandom one process accepted")
	}
	if _, err := SimBase(m, 8, 0); err == nil {
		t.Error("SimBase zero rounds accepted")
	}
	if _, err := SimFCFS(m, 8, 10, 5); err == nil {
		t.Error("SimFCFS more receivers than messages accepted")
	}
	if _, err := SimRandom(m, 8, 1, 1); err == nil {
		t.Error("SimRandom one process accepted")
	}
}

func TestFig3SimulatedShape(t *testing.T) {
	fig, err := Fig3(Config{Mode: Simulated, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Get("throughput")
	if s == nil {
		t.Fatal("missing series")
	}
	if !s.Monotone() {
		t.Fatalf("Figure 3 not monotone in message length: %+v", s.Points)
	}
	if max := s.Max(); max < 20000 || max > 27000 {
		t.Fatalf("Figure 3 peak = %.0f, want ≈25,000", max)
	}
}

func TestFig4SimulatedShape(t *testing.T) {
	fig, err := Fig4(Config{Mode: Simulated, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	big := fig.Get("1024 byte")
	small := fig.Get("16 byte")
	if big == nil || small == nil {
		t.Fatal("missing series")
	}
	// 1024-byte curve sits far above the 16-byte curve everywhere.
	for _, p := range big.Points {
		sy, ok := small.Y(p.X)
		if !ok {
			continue
		}
		if p.Y <= sy {
			t.Fatalf("at %d receivers: 1024B (%.0f) not above 16B (%.0f)", p.X, p.Y, sy)
		}
	}
	// Small-message curve declines with receivers.
	y1, _ := small.Y(1)
	y8, _ := small.Y(8)
	if y8 >= y1 {
		t.Fatalf("16B fcfs: 8 receivers (%.0f) not below 1 (%.0f)", y8, y1)
	}
}

func TestFig5SimulatedShape(t *testing.T) {
	fig, err := Fig5(Config{Mode: Simulated, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	big := fig.Get("1024 byte")
	if big == nil {
		t.Fatal("missing series")
	}
	if !big.Monotone() {
		t.Fatalf("broadcast 1024B not monotone in receivers: %+v", big.Points)
	}
}

func TestFig6SimulatedShape(t *testing.T) {
	fig, err := Fig6(Config{Mode: Simulated, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	big := fig.Get("1024 byte")
	if big == nil {
		t.Fatal("missing series")
	}
	// Paging knee: the peak is not at the largest process count.
	if big.ArgMax() >= 20 {
		t.Fatalf("1024B random peaks at %d processes; paging knee missing", big.ArgMax())
	}
}

func TestFig7SimulatedShape(t *testing.T) {
	fig, err := Fig7(Config{Mode: Simulated, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	small := fig.Get("32x32 matrix")
	large := fig.Get("64x64 matrix")
	if small == nil || large == nil {
		t.Fatal("missing series")
	}
	y32, _ := small.Y(8)
	y64, _ := large.Y(8)
	if y64 <= y32 {
		t.Fatalf("speedup at 8 procs: 64×64 (%.2f) not above 32×32 (%.2f)", y64, y32)
	}
	if y1, _ := large.Y(1); y1 > 1.2 || y1 < 0.5 {
		t.Fatalf("single-worker speedup = %.2f, want ≈1", y1)
	}
}

func TestFig8SimulatedShape(t *testing.T) {
	fig, err := Fig8(Config{Mode: Simulated, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	small := fig.Get("9x9 problem")
	large := fig.Get("33x33 problem")
	if small == nil || large == nil {
		t.Fatal("missing series")
	}
	// Baselines pinned at 1 for N=2.
	if y, _ := small.Y(2); y != 1 {
		t.Fatalf("9×9 N=2 speedup = %v, want 1", y)
	}
	y9, _ := small.Y(4)
	y33, _ := large.Y(4)
	if y33 <= y9 {
		t.Fatalf("per-iter speedup at N=4: 33×33 (%.2f) not above 9×9 (%.2f)", y33, y9)
	}
}

func TestFigureRenderIncludesModeAndSeries(t *testing.T) {
	fig, err := Fig3(Config{Mode: Simulated, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := fig.Render()
	if !strings.Contains(out, "simulated") || !strings.Contains(out, "Figure 3") {
		t.Fatalf("render:\n%s", out)
	}
}
