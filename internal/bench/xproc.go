package bench

// The cross-process leg of the copies ablation. The in-process copies
// benchmark (copies.go) measures what the zero-copy planes save when
// sender and receiver share a Go heap; this leg measures the same
// loan/view protocol when the receiver is a real forked OS process and
// the only shared state is the mmap'd memfd segment — the paper's
// actual deployment shape. Payloads cross the boundary by reference
// (ring records carrying segment offsets), synchronisation is futex
// words inside the segment, and the copy ledger must stay at zero.
//
// Alongside throughput, the run records the futex waiter counters from
// the serving side's ring handles: spin polls, kernel sleeps and
// FUTEX_WAKE syscalls per delivered message. Those are the busy-spin
// regression signal — a waiter protocol that degraded to polling would
// show up as polls-per-message exploding — and BENCH.json carries them
// (smoothed, see Summary) so the perf gate holds them across runs.
//
// Spawning real children requires knowing what binary to exec; library
// code cannot assume. XProcSpawnSelf is the hook: mpfbench (and the
// bench tests, via their TestMain helper) set it to re-exec themselves
// in a worker mode that just calls mpf.AttachProc + Serve.

import (
	"fmt"
	"time"

	"repro/mpf"
)

// XProcSpawnSelf, when set, tells the benchmark how to spawn worker
// children: it returns the binary to exec and the extra environment
// that flips it into worker mode. Nil means the cross-process leg is
// unavailable (BENCH.json then records supported=false and the compare
// gate skips its metrics).
var XProcSpawnSelf func() (bin string, extraEnv []string)

// XProcResult is one cross-process measurement.
type XProcResult struct {
	Children     int
	MsgsPerChild int
	PayloadBytes int
	MsgsPerSec   float64
	// Serving-side futex-ring waiter counters, per delivered message.
	SpinPollsPerMsg   float64
	FutexSleepsPerMsg float64
	FutexWakesPerMsg  float64
}

// RunXProc serves a memfd-backed facility, spawns children real
// processes from bin, and drives msgsPerChild messages of size bytes
// through each child in both directions (down views + up loans),
// returning aggregate throughput and waiter counters.
func RunXProc(bin string, extraEnv []string, children, msgsPerChild, size int) (*XProcResult, error) {
	srv, err := mpf.ServeProc(mpf.ServeConfig{
		Children: children,
		RingCap:  64,
		Options:  []mpf.Option{mpf.WithBlockSize(512), mpf.WithBlocksPerProcess(512)},
	})
	if err != nil {
		return nil, err
	}
	group, err := srv.Spawn(children, bin, nil, extraEnv)
	if err != nil {
		srv.Close()
		return nil, err
	}

	start := time.Now()
	errs := make(chan error, children)
	for slot := 0; slot < children; slot++ {
		go func(slot int) {
			if _, err := srv.BridgeDown(slot, msgsPerChild, size); err != nil {
				errs <- err
				return
			}
			if _, err := srv.BridgeUp(slot, msgsPerChild, size); err != nil {
				errs <- err
				return
			}
			errs <- srv.FinishSlot(slot)
		}(slot)
	}
	for i := 0; i < children; i++ {
		if err := <-errs; err != nil {
			group.Kill()
			srv.Close()
			return nil, err
		}
	}
	if err := group.Wait(60 * time.Second); err != nil {
		srv.Close()
		return nil, err
	}
	elapsed := time.Since(start)

	total := 2 * children * msgsPerChild
	st := srv.Facility().Stats()
	if st.PayloadCopiesIn != 0 || st.PayloadCopiesOut != 0 {
		srv.Close()
		return nil, fmt.Errorf("bench: xproc leaked payload copies (in=%d out=%d)",
			st.PayloadCopiesIn, st.PayloadCopiesOut)
	}
	ws := srv.RingWaitStats()
	if err := srv.Close(); err != nil {
		return nil, fmt.Errorf("bench: xproc segment unmap: %w", err)
	}
	msgs := float64(total)
	return &XProcResult{
		Children:          children,
		MsgsPerChild:      msgsPerChild,
		PayloadBytes:      size,
		MsgsPerSec:        msgs / elapsed.Seconds(),
		SpinPollsPerMsg:   float64(ws.Polls) / msgs,
		FutexSleepsPerMsg: float64(ws.Sleeps) / msgs,
		FutexWakesPerMsg:  float64(ws.Wakes) / msgs,
	}, nil
}

// XProcSweep renders the cross-process ablation table: round-trip
// throughput and waiter behaviour across payload sizes, against the
// in-process zero-copy plane's figures for the same sizes (from
// NativeCopies) so the boundary's cost is visible in one table.
func XProcSweep(quick bool) (string, error) {
	if XProcSpawnSelf == nil {
		return "", fmt.Errorf("bench: no cross-process spawn hook on this path")
	}
	bin, env := XProcSpawnSelf()
	children, msgs := 4, 1200
	if quick {
		children, msgs = 2, 200
	}
	sizes := []int{512, 4096, 16384}

	out := fmt.Sprintf("Cross-process copies ablation (%d children, %d msgs/child/phase, zero payload copies)\n", children, msgs)
	out += fmt.Sprintf("%10s %16s %16s %12s %12s %12s\n",
		"payload", "xproc msgs/s", "inproc msgs/s", "polls/msg", "sleeps/msg", "wakes/msg")
	for _, size := range sizes {
		r, err := RunXProc(bin, env, children, msgs, size)
		if err != nil {
			return "", err
		}
		inproc, err := NativeCopies(PlaneZeroCopy, size, 1, 4*msgs)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("%9dB %16.0f %16.0f %12.1f %12.2f %12.2f\n",
			size, r.MsgsPerSec, inproc.MsgsPerSec,
			r.SpinPollsPerMsg, r.FutexSleepsPerMsg, r.FutexWakesPerMsg)
	}
	return out, nil
}
