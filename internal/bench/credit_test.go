package bench

import (
	"testing"
	"time"
)

// BenchmarkCreditFairness reports the cold-circuit p99 Send latency
// with and without the headline credit budget; the companion gate
// (TestCreditFairness) enforces the ratio, this benchmark records the
// continuous trajectory.
func BenchmarkCreditFairness(b *testing.B) {
	for _, budget := range []int{0, CreditFairnessBudget} {
		name := "uncredited"
		if budget > 0 {
			name = "credited"
		}
		b.Run(name, func(b *testing.B) {
			coldMsgs := b.N
			if coldMsgs < 20 {
				coldMsgs = 20
			}
			if coldMsgs > 400 {
				coldMsgs = 400
			}
			res, err := NativeCreditFairness(budget, CreditFairnessCircuits, coldMsgs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.ColdP99)/float64(time.Microsecond), "cold-p99-µs")
			b.ReportMetric(res.HotMsgsPerSec, "hot-msgs/s")
		})
	}
}

// TestCreditFairness is the flow-control gate, with three teeth. At
// the headline 8-circuit hot/cold mix and 16-block budget:
//
//   - fairness: the cold circuits' p99 Send latency must improve at
//     least 2x over the uncredited facility, where the hot circuit
//     monopolises the arena and every cold Send parks behind its
//     backlog (best of five attempts — latency comparisons on shared
//     CI boxes are noisy);
//   - the budget must actually engage: the credited run shows
//     CreditStalls > 0 (the hot sender parked on its budget);
//   - the no-credit ablation contract: the uncredited run must never
//     touch the ledger (zero stalls, zero held blocks) — flow control
//     off is behaviourally the pre-credit facility.
func TestCreditFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("latency comparison skipped in -short mode")
	}
	// The uncredited runs are wall-clock expensive by construction (the
	// hot circuit's monopoly is what starves cold sends for seconds),
	// and the measured margin is ~5 orders of magnitude above the 2x
	// bar, so a modest sample count loses nothing.
	const (
		coldMsgs = 80
		want     = 2.0
	)
	best := 0.0
	for attempt := 0; attempt < 5; attempt++ {
		un, err := NativeCreditFairness(0, CreditFairnessCircuits, coldMsgs)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := NativeCreditFairness(CreditFairnessBudget, CreditFairnessCircuits, coldMsgs)
		if err != nil {
			t.Fatal(err)
		}
		if un.Stats.CreditStalls != 0 || un.Stats.CreditsHeld != 0 {
			t.Fatalf("uncredited run touched the ledger: stalls %d, held %d",
				un.Stats.CreditStalls, un.Stats.CreditsHeld)
		}
		if cr.Stats.CreditStalls == 0 {
			t.Fatalf("credited run never stalled: the budget did not engage")
		}
		if cr.Stats.CreditsHeld != 0 {
			t.Fatalf("credited run not quiescent: %d blocks still held", cr.Stats.CreditsHeld)
		}
		ratio := 0.0
		if cr.ColdP99 > 0 {
			ratio = float64(un.ColdP99) / float64(cr.ColdP99)
		}
		t.Logf("attempt %d: uncredited cold p99 %v (p50 %v), credited cold p99 %v (p50 %v): %.1fx; hot %0.f vs %0.f msgs/s, %d stalls",
			attempt, un.ColdP99, un.ColdP50, cr.ColdP99, cr.ColdP50, ratio,
			un.HotMsgsPerSec, cr.HotMsgsPerSec, cr.Stats.CreditStalls)
		if ratio > best {
			best = ratio
		}
		if best >= want {
			break
		}
	}
	if best < want {
		t.Errorf("credit improves cold p99 send latency %.2fx, want >= %.1fx", best, want)
	}
}

// TestCreditSweepQuick exercises the ablation sweep end-to-end.
func TestCreditSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	latency, hot, err := CreditSweep(Config{Mode: Native, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(latency.Series) != 2 {
		t.Errorf("latency figure has %d series, want 2", len(latency.Series))
	}
	if len(hot.Series) != 1 {
		t.Errorf("hot figure has %d series, want 1", len(hot.Series))
	}
	for _, s := range append(latency.Series, hot.Series...) {
		if len(s.Points) != 3 {
			t.Errorf("series %q has %d points, want 3", s.Label, len(s.Points))
		}
	}
}
