package bench

// The crash-robustness ablation (PR 9). The cross-process leg (xproc.go)
// measures the protocol when every child lives; this leg measures what
// a child's death costs everyone else. K of N children are spawned with
// armed crash fault points (faultpoint.EnvVar in their environment —
// they os.Exit mid-protocol at attach, claim, ack or fill), the respawn
// supervisor detects the deaths and reclaims their slots, and the run
// records reclaim latency, reclaim completeness and the throughput the
// surviving children sustained through it all.
//
// The measurement doubles as the robustness gate: RunCrash fails unless
// every slot is reusable afterwards, the credit ledger is quiescent and
// not one arena block leaked — the acceptance criteria of
// TestCrashReclamation, enforced inside the measurement the same way
// RunXProc enforces the zero-copy ledger.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/mpf"
)

// CrashResult is one crash-ablation measurement.
type CrashResult struct {
	Children     int
	Victims      int
	MsgsPerChild int
	PayloadBytes int
	// Deaths counts reclaims the supervisor performed; with one armed
	// crash point per victim and clean respawn environments it equals
	// Victims deterministically. Respawns counts successful restarts.
	Deaths   int
	Respawns int
	// SurvivorMsgsPerSec is the round-trip throughput of the children
	// that were never killed, over their own completion window — the
	// "does a neighbour's crash stall me" number.
	SurvivorMsgsPerSec float64
	// Reclaim latency (death detection to slot free), over all deaths.
	ReclaimMeanMicros float64
	ReclaimMaxMicros  float64
	// What the reclaims recovered, from the facility's counters.
	ReclaimedViews   uint64
	ReclaimedCredits uint64
}

// crashVictimSpec picks the fault point for victim v: the spec cycles
// through the protocol stages (ack in the down phase, fill in the up
// phase, the claim itself) and varies the hit count by victim index so
// concurrent victims die at different depths into the workload.
func crashVictimSpec(v, msgs int) string {
	switch v % 3 {
	case 0:
		return fmt.Sprintf("child-ack:crash@%d", 1+(v*7)%max(1, msgs/2))
	case 1:
		return fmt.Sprintf("child-fill:crash@%d", 1+(v*11)%max(1, msgs/2))
	default:
		return "child-claim:crash"
	}
}

// RunCrash serves a memfd-backed facility, spawns children of which the
// first victims carry armed crash fault points, supervises them with a
// respawn budget, and drives the full two-phase workload through every
// slot — retrying a slot's phase when its peer dies, so the run only
// completes once every slot (original or respawned incarnation) has
// delivered its messages. It returns an error if any slot ends
// unreusable, the credit ledger ends non-quiescent, or any arena block
// leaked: a successful CrashResult *is* the robustness proof.
func RunCrash(bin string, extraEnv []string, children, victims, msgsPerChild, size int) (*CrashResult, error) {
	if victims > children {
		return nil, fmt.Errorf("bench: %d victims among %d children", victims, children)
	}
	srv, err := mpf.ServeProc(mpf.ServeConfig{
		Children: children,
		RingCap:  64,
		Options:  []mpf.Option{mpf.WithBlockSize(512), mpf.WithBlocksPerProcess(256), mpf.WithCredit(64)},
	})
	if err != nil {
		return nil, err
	}
	arena := srv.Facility().Core().Arena()
	totalBlocks := arena.FreeBlocks()

	group, err := srv.SpawnEnv(children, bin, nil, func(i int) []string {
		env := append([]string(nil), extraEnv...)
		if i < victims {
			env = append(env, faultpoint.EnvVar+"="+crashVictimSpec(i, msgsPerChild))
		}
		return env
	})
	if err != nil {
		srv.Close()
		return nil, err
	}

	var (
		mu       sync.Mutex
		reports  []mpf.ReclaimReport
		respawns int
	)
	sup := srv.Supervise(group, mpf.SuperviseConfig{
		Respawn:       2,
		Backoff:       2 * time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
		// Replacements get the worker-mode environment but NOT the
		// victim's fault spec: a respawn that re-armed the same crash
		// point would die identically, forever.
		RespawnEnv: func(int, int) []string { return append([]string(nil), extraEnv...) },
		OnDeath: func(r mpf.ReclaimReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
		},
		OnRespawn: func(int, int) {
			mu.Lock()
			respawns++
			mu.Unlock()
		},
	})
	fail := func(err error) (*CrashResult, error) {
		sup.Stop()
		group.Kill()
		srv.Close()
		return nil, err
	}

	start := time.Now()
	type slotDone struct {
		slot    int
		elapsed time.Duration
		err     error
	}
	done := make(chan slotDone, children)
	for slot := 0; slot < children; slot++ {
		go func(slot int) {
			err := driveCrashSlot(srv, slot, msgsPerChild, size)
			done <- slotDone{slot, time.Since(start), err}
		}(slot)
	}
	var survivorLast time.Duration
	var firstErr error
	for i := 0; i < children; i++ {
		d := <-done
		if d.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("bench: crash slot %d: %w", d.slot, d.err)
		}
		if d.slot >= victims && d.elapsed > survivorLast {
			survivorLast = d.elapsed
		}
	}
	if firstErr != nil {
		return fail(firstErr)
	}
	if err := group.Wait(60 * time.Second); err != nil {
		return fail(fmt.Errorf("bench: crash children: %w", err))
	}
	sup.Stop()

	// The robustness gate, enforced inside the measurement: every slot
	// claimable again, ledger quiescent, zero leaked pins.
	for slot := 0; slot < children; slot++ {
		if st := srv.Table().SlotState(slot); st != core.SlotFree && st != core.SlotDetached {
			srv.Close()
			return nil, fmt.Errorf("bench: crash left slot %d in state %d (not reusable)", slot, st)
		}
	}
	st := srv.Facility().Stats()
	if st.CreditsHeld != 0 {
		srv.Close()
		return nil, fmt.Errorf("bench: crash left %d credit blocks held", st.CreditsHeld)
	}
	if free := arena.FreeBlocks(); free != totalBlocks {
		srv.Close()
		return nil, fmt.Errorf("bench: crash leaked %d of %d arena blocks", totalBlocks-free, totalBlocks)
	}
	if err := srv.Close(); err != nil {
		return nil, fmt.Errorf("bench: crash segment unmap: %w", err)
	}

	res := &CrashResult{
		Children:     children,
		Victims:      victims,
		MsgsPerChild: msgsPerChild,
		PayloadBytes: size,
		Deaths:       len(reports),
		Respawns:     respawns,
	}
	for _, r := range reports {
		micros := float64(r.Elapsed) / float64(time.Microsecond)
		res.ReclaimMeanMicros += micros
		if micros > res.ReclaimMaxMicros {
			res.ReclaimMaxMicros = micros
		}
	}
	if len(reports) > 0 {
		res.ReclaimMeanMicros /= float64(len(reports))
	}
	res.ReclaimedViews = st.ReclaimedViews
	res.ReclaimedCredits = st.ReclaimedCredits
	if n := children - victims; n > 0 && survivorLast > 0 {
		res.SurvivorMsgsPerSec = float64(2*n*msgsPerChild) / survivorLast.Seconds()
	}
	return res, nil
}

// driveCrashSlot runs the two-phase workload over one slot, retrying a
// phase when the peer dies mid-way: the supervisor reclaims the slot
// and respawns a replacement, the retry binds to the new incarnation,
// and the phase restarts from its first message. Retries back off
// briefly because a retry can land in the reclaim's own window (slot
// marked dead but not yet freed).
func driveCrashSlot(srv *mpf.ProcServer, slot, msgs, size int) error {
	phase := func(name string, f func() error) error {
		var err error
		for attempt := 0; attempt < 6; attempt++ {
			if err = f(); err == nil || !errors.Is(err, mpf.ErrPeerDead) {
				break
			}
			time.Sleep(time.Duration(attempt+1) * 10 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return nil
	}
	if err := phase("down", func() error {
		_, err := srv.BridgeDown(slot, msgs, size)
		return err
	}); err != nil {
		return err
	}
	if err := phase("up", func() error {
		_, err := srv.BridgeUp(slot, msgs, size)
		return err
	}); err != nil {
		return err
	}
	return phase("finish", func() error { return srv.FinishSlot(slot) })
}

// CrashSweep renders the crash ablation table: one and two victims out
// of four children, with reclaim latency and survivor throughput.
func CrashSweep(quick bool) (string, error) {
	if XProcSpawnSelf == nil {
		return "", fmt.Errorf("bench: no cross-process spawn hook on this path")
	}
	bin, env := XProcSpawnSelf()
	children, msgs := 4, 600
	if quick {
		msgs = 150
	}
	out := fmt.Sprintf("Crash ablation (%d children, %d msgs/child/phase, respawn supervisor, 512B payloads)\n", children, msgs)
	out += fmt.Sprintf("%8s %8s %9s %18s %16s %16s\n",
		"victims", "deaths", "respawns", "survivor msgs/s", "reclaim mean µs", "reclaim max µs")
	for _, victims := range []int{1, 2} {
		r, err := RunCrash(bin, env, children, victims, msgs, 512)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("%8d %8d %9d %18.0f %16.1f %16.1f\n",
			r.Victims, r.Deaths, r.Respawns, r.SurvivorMsgsPerSec,
			r.ReclaimMeanMicros, r.ReclaimMaxMicros)
	}
	return out, nil
}
