// Package bench implements the paper's four synthetic benchmarks —
// base, fcfs, broadcast and random (paper §4) — and assembles every
// figure of the evaluation section.
//
// Each benchmark exists twice:
//
//   - the *native* runners execute the real MPF implementation
//     (repro/mpf on goroutines) and report real wall-clock throughput;
//   - the *simulated* runners replay the identical protocol on the
//     Balance 21000 model (internal/simmpf) and report throughput at the
//     paper's absolute scale.
//
// Figure shapes are expected to agree between the two; absolute values
// agree only for the simulated runners (a modern machine is some four
// orders of magnitude faster than a 10 MHz NS32032).
package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/proc"
	"repro/mpf"
)

// NativeBase runs the paper's base benchmark natively: one process with
// a loop-back connection alternates sending and receiving fixed-length
// messages. It returns bytes/second.
func NativeBase(msgLen, rounds int) (float64, error) {
	if msgLen < 0 || rounds < 1 {
		return 0, fmt.Errorf("bench: base(msgLen=%d, rounds=%d)", msgLen, rounds)
	}
	fac, err := mpf.New(mpf.WithMaxProcesses(1), mpf.WithMaxLNVCs(2),
		mpf.WithBlocksPerProcess(blocksFor(msgLen, 8)))
	if err != nil {
		return 0, err
	}
	defer fac.Shutdown()
	p, err := fac.Process(0)
	if err != nil {
		return 0, err
	}
	s, err := p.OpenSend("base")
	if err != nil {
		return 0, err
	}
	r, err := p.OpenReceive("base", mpf.FCFS)
	if err != nil {
		return 0, err
	}
	payload := make([]byte, msgLen)
	buf := make([]byte, msgLen)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := s.Send(payload); err != nil {
			return 0, err
		}
		if _, err := r.Receive(buf); err != nil {
			return 0, err
		}
	}
	return rate(msgLen*rounds, time.Since(start)), nil
}

// NativeFCFS runs the fcfs benchmark: one sender, nRecv FCFS receivers,
// msgs fixed-length messages. Throughput counts transmitted bytes (each
// message is consumed once).
func NativeFCFS(msgLen, nRecv, msgs int) (float64, error) {
	return nativeFanout(msgLen, nRecv, msgs, mpf.FCFS)
}

// NativeBroadcast runs the broadcast benchmark: one sender, nRecv
// BROADCAST receivers. Throughput counts *delivered* bytes — every
// receiver obtains a copy of each message, the paper's "effective
// throughput".
func NativeBroadcast(msgLen, nRecv, msgs int) (float64, error) {
	return nativeFanout(msgLen, nRecv, msgs, mpf.Broadcast)
}

func nativeFanout(msgLen, nRecv, msgs int, proto mpf.Protocol) (float64, error) {
	if msgLen < 1 || nRecv < 1 || msgs < 1 {
		return 0, fmt.Errorf("bench: fanout(msgLen=%d, nRecv=%d, msgs=%d)", msgLen, nRecv, msgs)
	}
	fac, err := mpf.New(mpf.WithMaxProcesses(nRecv+1), mpf.WithMaxLNVCs(4),
		mpf.WithBlocksPerProcess(blocksFor(msgLen, 64)))
	if err != nil {
		return 0, err
	}
	defer fac.Shutdown()

	// Poison message: length 1 (real payloads have msgLen >= 1 but a
	// distinct length of exactly 1 byte with value 0xFF, while payloads
	// are zero-filled, keeps the protocols distinguishable even at
	// msgLen == 1).
	poison := []byte{0xFF}
	payload := make([]byte, msgLen)
	var delivered atomic.Int64
	// All connections must exist before the sender finishes: the paper's
	// lifetime rule deletes the circuit — discarding unread messages —
	// at the last close, so a sender that opens, sends and closes before
	// any receiver joins loses the whole run (paper §3.2's lost-message
	// scenario, which this barrier prevents).
	bar, err := proc.NewBarrier(nRecv + 1)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	err = fac.Run(nRecv+1, func(p *mpf.Process) error {
		if p.PID() == 0 { // sender
			s, err := p.OpenSend("fan")
			if err != nil {
				return err
			}
			defer s.Close()
			bar.Wait()
			for i := 0; i < msgs; i++ {
				if err := s.Send(payload); err != nil {
					return err
				}
			}
			nPoison := nRecv
			if proto == mpf.Broadcast {
				nPoison = 1 // every broadcast receiver sees it
			}
			for i := 0; i < nPoison; i++ {
				if err := s.Send(poison); err != nil {
					return err
				}
			}
			return nil
		}
		r, err := p.OpenReceive("fan", proto)
		if err != nil {
			return err
		}
		defer r.Close()
		bar.Wait()
		buf := make([]byte, msgLen)
		for {
			n, err := r.Receive(buf)
			if err != nil {
				return err
			}
			if n == 1 && buf[0] == 0xFF {
				return nil
			}
			delivered.Add(int64(n))
		}
	})
	if err != nil {
		return 0, err
	}
	return rate(int(delivered.Load()), time.Since(start)), nil
}

// NativeRandom runs the random benchmark: nProcs processes, fully
// connected by one FCFS circuit per destination; each sends msgsPerProc
// fixed-length messages to uniformly random destinations, draining its
// own inbox after every send (paper §4). Throughput counts received
// bytes over the full run including the final drain.
func NativeRandom(msgLen, nProcs, msgsPerProc int, seed int64) (float64, error) {
	if msgLen < 1 || nProcs < 2 || msgsPerProc < 1 {
		return 0, fmt.Errorf("bench: random(msgLen=%d, nProcs=%d, msgs=%d)", msgLen, nProcs, msgsPerProc)
	}
	fac, err := mpf.New(
		mpf.WithMaxProcesses(nProcs),
		mpf.WithMaxLNVCs(nProcs+2),
		mpf.WithBlocksPerProcess(blocksFor(msgLen, 96)),
		mpf.WithFailFastSend(), // drain-and-retry instead of blocking: no distributed deadlock
	)
	if err != nil {
		return 0, err
	}
	defer fac.Shutdown()

	bar, err := proc.NewBarrier(nProcs)
	if err != nil {
		return 0, err
	}
	inbox := func(pid int) string { return fmt.Sprintf("rand-%d", pid) }
	var received atomic.Int64
	payload := make([]byte, msgLen)
	start := time.Now()
	err = fac.Run(nProcs, func(p *mpf.Process) error {
		rng := rand.New(rand.NewSource(seed + int64(p.PID())))
		in, err := p.OpenReceive(inbox(p.PID()), mpf.FCFS)
		if err != nil {
			return err
		}
		defer in.Close()
		outs := make([]*mpf.SendConn, nProcs)
		for d := 0; d < nProcs; d++ {
			if d == p.PID() {
				continue
			}
			if outs[d], err = p.OpenSend(inbox(d)); err != nil {
				return err
			}
			defer outs[d].Close()
		}
		buf := make([]byte, msgLen)
		drain := func() error {
			for {
				n, ok, err := in.TryReceive(buf)
				if err != nil || !ok {
					return err
				}
				received.Add(int64(n))
			}
		}
		// All inboxes must exist before anyone sends.
		bar.Wait()
		for i := 0; i < msgsPerProc; i++ {
			d := rng.Intn(nProcs - 1)
			if d >= p.PID() {
				d++
			}
			for {
				err := outs[d].Send(payload)
				if err == nil {
					break
				}
				if !errors.Is(err, mpf.ErrNoMemory) {
					return err
				}
				// Region full: free blocks by draining, then retry.
				if err := drain(); err != nil {
					return err
				}
				runtime.Gosched()
			}
			if err := drain(); err != nil {
				return err
			}
		}
		// All sends are enqueued once every process reaches this point;
		// the final drain then empties each inbox completely.
		bar.Wait()
		return drain()
	})
	if err != nil {
		return 0, err
	}
	return rate(int(received.Load()), time.Since(start)), nil
}

// blocksFor sizes WithBlocksPerProcess so that `inflight` messages of
// msgLen bytes fit per process under the default 64-byte blocks.
func blocksFor(msgLen, inflight int) int {
	perMsg := (msgLen + 59) / 60 // 64-byte blocks, 60 payload
	if perMsg < 1 {
		perMsg = 1
	}
	n := perMsg * inflight
	if n < 256 {
		n = 256
	}
	return n
}

func rate(bytes int, d time.Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(bytes) / s
}
