package bench

import (
	"testing"

	"repro/internal/balance"
)

// The simulated substrate is the reproduction's evidence; it must be
// bit-for-bit repeatable so EXPERIMENTS.md numbers can be re-derived by
// anyone.

func TestSimulatedFiguresDeterministic(t *testing.T) {
	render := func() string {
		fig, err := Fig4(Config{Mode: Simulated, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return fig.Render()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("Fig4 not reproducible:\n%s\n---\n%s", a, b)
	}
}

func TestSimRandomDeterministic(t *testing.T) {
	m := balance.Balance21000()
	a, err := SimRandom(m, 256, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimRandom(m, 256, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("SimRandom not reproducible: %v vs %v", a, b)
	}
}

// Pin the headline numbers EXPERIMENTS.md quotes, with slack for
// intentional recalibration (fail = the docs need regenerating).
func TestHeadlineNumbersMatchExperimentsDoc(t *testing.T) {
	m := balance.Balance21000()
	base, err := SimBase(m, 2048, 200)
	if err != nil {
		t.Fatal(err)
	}
	if base < 23000 || base > 25500 {
		t.Errorf("Fig3 asymptote drifted to %.0f; EXPERIMENTS.md says 24,234", base)
	}
	bcast, err := SimBroadcast(m, 1024, 16, 48*16)
	if err != nil {
		t.Fatal(err)
	}
	if bcast < 700000 || bcast > 800000 {
		t.Errorf("Fig5 peak drifted to %.0f; EXPERIMENTS.md says 748,773", bcast)
	}
}
