package bench

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/mpf"
)

// Selector-scaling benchmark. The pre-selector ReceiveAny slept on one
// facility-wide activity channel that every Send pulsed: W parked event
// loops meant W wakeups per message, W-1 of them spurious, each
// rescanning every registered circuit — the thundering herd, at its
// worst under bursty (MMPP-style) arrivals that fire the whole herd in
// synchronized spikes. The per-circuit waiter lists wake only the loop
// whose circuit the message landed on. This benchmark parks several
// multiplexed consumers, drives traffic at exactly one of them, and
// reads the facility's MuxWakeups/MuxSpurious counters to compare the
// three wakeup schemes on otherwise identical workloads.

// MuxMode selects the multiplexing scheme a herd run uses.
type MuxMode uint8

const (
	// MuxSelector parks each consumer on an mpf.Selector.
	MuxSelector MuxMode = iota
	// MuxAnyWaiters parks each consumer in ReceiveAny over the
	// per-circuit waiter lists (the default implementation).
	MuxAnyWaiters
	// MuxAnyGlobalPulse parks each consumer in ReceiveAny over the
	// legacy facility-wide pulse (WithGlobalPulseMux) — the ablation
	// baseline.
	MuxAnyGlobalPulse
)

// String names the mode for figure labels.
func (m MuxMode) String() string {
	switch m {
	case MuxSelector:
		return "selector"
	case MuxAnyWaiters:
		return "receiveany, per-circuit waiters"
	case MuxAnyGlobalPulse:
		return "receiveany, global pulse"
	default:
		return fmt.Sprintf("MuxMode(%d)", uint8(m))
	}
}

// HerdResult is one selector-herd run's outcome.
type HerdResult struct {
	// MsgsPerSec is delivered messages per second over the paced run
	// (pacing keeps it comparable across modes, not absolute).
	MsgsPerSec float64
	// WakeupsPerMsg is park wakeups per delivered message across every
	// parked consumer.
	WakeupsPerMsg float64
	// SpuriousPerMsg is the subset of those wakeups that found no
	// deliverable message — the herd cost.
	SpuriousPerMsg float64
}

// NativeSelectorHerd parks `waiters` consumer event loops, each
// multiplexing `circuitsPer` private circuits, and sends `msgs`
// messages to a single hot circuit owned by consumer 0 — every other
// consumer is pure bystander. Sends are paced a few tens of
// microseconds apart so consecutive pulses cannot coalesce into one
// observed wakeup, which is also the arrival shape that makes the
// global pulse worst (each message finds the whole herd parked). The
// wakeup counters then tell the story: per-circuit waiters wake ~1
// consumer per message regardless of bystanders; the global pulse
// wakes all of them.
func NativeSelectorHerd(mode MuxMode, waiters, circuitsPer, msgs int) (HerdResult, error) {
	if waiters < 1 || circuitsPer < 1 || msgs < 1 {
		return HerdResult{}, fmt.Errorf("bench: herd(waiters=%d, circuitsPer=%d, msgs=%d)",
			waiters, circuitsPer, msgs)
	}
	opts := []mpf.Option{
		mpf.WithMaxProcesses(waiters + 1),
		mpf.WithMaxLNVCs(waiters*circuitsPer + 4),
		mpf.WithBlocksPerProcess(blocksFor(16, 2*msgs/(waiters+1)+16)),
	}
	if mode == MuxAnyGlobalPulse {
		opts = append(opts, mpf.WithGlobalPulseMux())
	}
	fac, err := mpf.New(opts...)
	if err != nil {
		return HerdResult{}, err
	}
	defer fac.Shutdown()

	const (
		pace    = 50 * time.Microsecond
		parkTTL = 2 * time.Millisecond
	)
	producer := waiters // pid
	var done atomic.Bool
	var base mpf.Stats // counters at traffic start (set by producer)
	var elapsed atomic.Int64

	err = fac.Run(waiters+1, func(p *mpf.Process) (err error) {
		// Any worker error raises done so the others — who all poll it
		// between parks — drain out instead of waiting forever for
		// traffic that will never come.
		defer func() {
			if err != nil {
				done.Store(true)
			}
		}()
		if p.PID() == producer {
			// Wait for every consumer to report in, then let them park.
			ready, err := p.OpenReceive("herd-ready", mpf.FCFS)
			if err != nil {
				return err
			}
			defer ready.Close()
			one := make([]byte, 1)
			for i := 0; i < waiters; i++ {
				for {
					if done.Load() {
						return nil // a consumer failed during setup
					}
					_, err := ready.ReceiveDeadline(one, 50*time.Millisecond)
					if err == nil {
						break
					}
					if !errors.Is(err, mpf.ErrTimeout) {
						return err
					}
				}
			}
			time.Sleep(5 * time.Millisecond)
			s, err := p.OpenSend("herd-0-0")
			if err != nil {
				return err
			}
			base = fac.Stats()
			start := time.Now()
			payload := make([]byte, 16)
			for k := 0; k < msgs; k++ {
				if err := s.Send(payload); err != nil {
					return err
				}
				time.Sleep(pace)
			}
			// done is set by consumer 0 once it drains (or by any
			// failing worker); time the span here so both phases are
			// inside it.
			for !done.Load() {
				time.Sleep(time.Millisecond)
			}
			elapsed.Store(int64(time.Since(start)))
			return nil
		}

		// Consumer p: open this consumer's circuits, report ready, park.
		conns := make([]*mpf.RecvConn, circuitsPer)
		for i := range conns {
			rc, err := p.OpenReceive(fmt.Sprintf("herd-%d-%d", p.PID(), i), mpf.FCFS)
			if err != nil {
				return err
			}
			conns[i] = rc
		}
		var sel *mpf.Selector
		if mode == MuxSelector {
			s, err := p.NewSelector()
			if err != nil {
				return err
			}
			sel = s
			defer sel.Close()
			for _, rc := range conns {
				if err := sel.Add(rc); err != nil {
					return err
				}
			}
		}
		rdy, err := p.OpenSend("herd-ready")
		if err != nil {
			return err
		}
		if err := rdy.Send([]byte{1}); err != nil {
			return err
		}

		buf := make([]byte, 16)
		got := 0
		hot := p.PID() == 0
		for {
			if done.Load() {
				return nil
			}
			if mode == MuxSelector {
				ready, err := sel.WaitDeadline(parkTTL)
				if err != nil {
					if errors.Is(err, mpf.ErrTimeout) {
						continue
					}
					if errors.Is(err, mpf.ErrShutdown) {
						return nil
					}
					return err
				}
				for _, rc := range ready {
					for {
						_, ok, err := rc.TryReceive(buf)
						if err != nil {
							return err
						}
						if !ok {
							break
						}
						got++
					}
				}
			} else {
				_, _, err := p.ReceiveAnyDeadline(conns, buf, parkTTL)
				if err != nil {
					if errors.Is(err, mpf.ErrTimeout) {
						continue
					}
					if errors.Is(err, mpf.ErrShutdown) {
						return nil
					}
					return err
				}
				got++
			}
			if hot && got >= msgs {
				done.Store(true)
				return nil
			}
		}
	})
	if err != nil {
		return HerdResult{}, err
	}
	st := fac.Stats()
	wake := float64(st.MuxWakeups - base.MuxWakeups)
	spur := float64(st.MuxSpurious - base.MuxSpurious)
	return HerdResult{
		MsgsPerSec:     rate(msgs, time.Duration(elapsed.Load())),
		WakeupsPerMsg:  wake / float64(msgs),
		SpuriousPerMsg: spur / float64(msgs),
	}, nil
}

// HerdWaiters is the consumer count the selector sweep parks.
const HerdWaiters = 8

// SelectorSweep sweeps the bystander circuit count at HerdWaiters
// parked consumers and returns spurious wakeups per delivered message
// for the three multiplexing schemes — the selector-scaling figure
// `mpfbench -select` renders. Flat-at-zero curves for the waiter-list
// schemes against a flat-at-(W-1) curve for the global pulse is the
// tentpole claim: wakeup cost stays O(ready), not O(parked waiters),
// however many idle circuits the facility carries.
func SelectorSweep(cfg Config) (*stats.Figure, error) {
	fig := stats.NewFigure(
		fmt.Sprintf("Selector Scaling — Spurious Wakeups per Message vs. Idle Circuits (%d parked consumers, native)", HerdWaiters),
		"total circuits", "spurious wakeups/msg")
	msgs := cfg.scale(400, 120)
	perWaiter := []int{2, 4, 8}
	if cfg.Quick {
		perWaiter = []int{2, 8}
	}
	for _, mode := range []MuxMode{MuxSelector, MuxAnyWaiters, MuxAnyGlobalPulse} {
		series := fig.AddSeries(mode.String())
		for _, per := range perWaiter {
			res, err := NativeSelectorHerd(mode, HerdWaiters, per, msgs)
			if err != nil {
				return nil, fmt.Errorf("herd %s circuitsPer=%d: %w", mode, per, err)
			}
			series.Add(HerdWaiters*per, res.SpuriousPerMsg)
		}
	}
	return fig, nil
}
