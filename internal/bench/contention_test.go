package bench

import (
	"fmt"
	"testing"
)

// The contention-scaling benchmarks compare the paper's registry layout
// (one global table lock, single-message sends) against the sharded
// registry and batched message path. `go test -bench ShardedOpenChurn`
// prints the per-configuration numbers; TestShardedBatchedAdvantage
// enforces the headline claim.

func BenchmarkShardedOpenChurn(b *testing.B) {
	const workers = 8
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			rounds := b.N/workers + 1
			res, err := NativeContention(shards, workers, 1, rounds, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.OpsPerSec, "opens/s")
			b.ReportMetric(res.MsgsPerSec, "msgs/s")
		})
	}
}

func BenchmarkBatchedSend(b *testing.B) {
	const workers = 8
	for _, cfg := range []struct {
		name          string
		shards, batch int
	}{
		{"unsharded-single", 1, 1},
		{"sharded-batch32", 16, 32},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			rounds := b.N/(workers*cfg.batch) + 1
			res, err := NativeContention(cfg.shards, workers, cfg.batch, rounds, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MsgsPerSec, "msgs/s")
		})
	}
}

// TestShardedBatchedAdvantage enforces the tentpole claim: at 8
// concurrent goroutines, batched sends over the sharded registry move
// at least twice as many messages per second as single-message sends
// through the paper's one-lock registry. The margin is normally far
// larger (one lock acquisition and one wakeup per 32 messages instead
// of per message); best-of-five absorbs scheduler noise on loaded CI
// machines — on a 1-CPU container the worst observed attempt was
// still 2.8x.
func TestShardedBatchedAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short mode")
	}
	const (
		workers = 8
		rounds  = 300
		want    = 2.0
	)
	best := 0.0
	for attempt := 0; attempt < 5; attempt++ {
		base, err := NativeContention(1, workers, 1, rounds, 64)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := NativeContention(16, workers, ContentionBatch, rounds, 64)
		if err != nil {
			t.Fatal(err)
		}
		ratio := batched.MsgsPerSec / base.MsgsPerSec
		t.Logf("attempt %d: unsharded/single %.0f msgs/s, sharded/batched %.0f msgs/s (%.1fx)",
			attempt, base.MsgsPerSec, batched.MsgsPerSec, ratio)
		if ratio > best {
			best = ratio
		}
		if best >= want {
			return
		}
	}
	t.Errorf("sharded+batched path is %.2fx the unsharded single-message path, want >= %.1fx", best, want)
}

// TestContentionSweepQuick exercises the sweep end-to-end and checks
// that the per-shard counters actually spread load across shards.
func TestContentionSweepQuick(t *testing.T) {
	fig, registry, err := ContentionSweep(Config{Mode: Native, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("sweep produced %d series, want 2", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 3 {
			t.Errorf("series %q has %d points, want 3", s.Label, len(s.Points))
		}
	}
	if len(registry) != 16 {
		t.Fatalf("registry stats cover %d shards, want 16", len(registry))
	}
	busy := 0
	var total uint64
	for _, s := range registry {
		if s.Acquisitions > 0 {
			busy++
		}
		total += s.Acquisitions
	}
	if total == 0 {
		t.Fatal("no registry lock acquisitions recorded")
	}
	// 8 workers on distinct circuit names should not all hash to one
	// shard of sixteen.
	if busy < 2 {
		t.Errorf("all registry traffic landed on %d shard(s); sharding is not spreading load", busy)
	}
}
