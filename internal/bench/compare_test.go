package bench

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// sampleSummary builds a plausible schema-6 summary for comparison
// tests; the absolute numbers only have to be self-consistent.
func sampleSummary() *JSONSummary {
	s := &JSONSummary{Schema: 6}
	s.Contention.Workers = 8
	s.Contention.Batch = 16
	s.Contention.UnshardedMsgsPerSec = 100_000
	s.Contention.ShardedBatchedMsgsPerSec = 450_000
	s.Contention.Advantage = 4.5
	s.Selector.SelectorMsgsPerSec = 300_000
	s.Selector.GlobalPulseMsgsPerSec = 200_000
	s.Selector.WakeupAdvantage = 16
	s.Copies = []CopiesPoint{
		{PayloadBytes: 4096, FanOut: 1, CopyMsgsPerSec: 90_000, ZeroMsgsPerSec: 250_000, Advantage: 2.8},
		{PayloadBytes: 16384, FanOut: 1, CopyMsgsPerSec: 30_000, ZeroMsgsPerSec: 100_000, Advantage: 3.4},
	}
	s.LoanBatch.Batch = 16
	s.LoanBatch.PayloadBytes = 4096
	s.LoanBatch.BatchedMsgsPerSec = 480_000
	s.LoanBatch.Advantage = 1.9
	s.LoanBatch.LockAmortisation = 14
	s.LoanBatch.BatchedArenaLocksPerMsg = 0.14
	s.Credit.Circuits = CreditFairnessCircuits
	s.Credit.Budget = CreditFairnessBudget
	s.Credit.UncreditedColdP99Micros = 900
	s.Credit.CreditedColdP99Micros = 120
	s.Credit.FairnessAdvantage = 7.5
	s.Credit.CreditedHotMsgsPerSec = 150_000
	s.Credit.CreditStalls = 4000
	s.XProc.Supported = true
	s.XProc.Children = 2
	s.XProc.MsgsPerChild = 600
	s.XProc.PayloadBytes = 1024
	s.XProc.MsgsPerSec = 60_000
	s.XProc.SpinPollsPerMsgPlus1 = 3.5
	s.XProc.FutexSleepsPerMsgPlus1 = 1.1
	s.XProc.FutexWakesPerMsgPlus1 = 1.4
	s.Tuning.Circuits = TuningCircuits
	s.Tuning.BurstDepth = TuningBurstDepth
	s.Tuning.FixedBudget = TuningFixedBudget
	s.Tuning.FixedMsgsPerSec = 1_200_000
	s.Tuning.AutoMsgsPerSec = 3_000_000
	s.Tuning.AutoVsFixedAdvantage = 2.5
	s.Tuning.FixedRounds = 512
	s.Tuning.AutoRounds = 22
	s.Tuning.RoundAmortisation = 23.3
	s.Tuning.FixedStarvationRounds = 384
	s.Tuning.AutoStarvationRounds = 2
	s.Tuning.AutoCapHits = 76
	s.Tuning.AutoBudgetPeak = 64
	s.Tuning.PackedNsPerOp = 24
	s.Tuning.PaddedNsPerOp = 8
	s.Tuning.PaddedVsPackedAdvantage = 3.0
	s.Tuning.AffinitySupported = true
	s.Tuning.FloatingMsgsPerSec = 800_000
	s.Tuning.PinnedMsgsPerSec = 950_000
	s.Tuning.PinnedVsFloatingAdvantage = 1.19
	s.Tuning.HugePagesAdvised = true
	s.Tuning.HugeAdvisedBytes = 6 << 20
	s.Tuning.BasePagesMsgsPerSec = 330_000
	s.Tuning.HugePagesMsgsPerSec = 340_000
	s.Tuning.HugeVsBaseAdvantage = 1.03
	s.Crash.Supported = true
	s.Crash.Children = 4
	s.Crash.Victims = 2
	s.Crash.MsgsPerChild = 400
	s.Crash.PayloadBytes = 512
	s.Crash.Deaths = 2
	s.Crash.Respawns = 2
	s.Crash.ReclaimCompleteness = 1.0
	s.Crash.SurvivorMsgsPerSec = 40_000
	s.Crash.ReclaimMeanMicros = 12
	s.Crash.ReclaimMaxMicros = 30
	s.Crash.ReclaimedViews = 3
	s.Crash.ReclaimedCredits = 5
	return s
}

// TestCompareIdentical: a summary never regresses against itself.
func TestCompareIdentical(t *testing.T) {
	s := sampleSummary()
	rows, regressions, err := Compare(s, s, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("self-comparison found %d regressions", regressions)
	}
	if len(rows) == 0 {
		t.Fatal("self-comparison produced no rows")
	}
	for _, r := range rows {
		if r.Delta != 0 || r.Regressed {
			t.Errorf("metric %s: delta %+.2f regressed=%v against itself", r.Name, r.Delta, r.Regressed)
		}
	}
}

// TestCompareDoctoredDrop is the perf-regression job's teeth, in
// miniature: a 30% throughput drop on one headline must fail a 25%
// tolerance, and the rendered table must name the regressed metric.
func TestCompareDoctoredDrop(t *testing.T) {
	oldS, newS := sampleSummary(), sampleSummary()
	newS.LoanBatch.BatchedMsgsPerSec *= 0.70 // the doctored 30% drop
	rows, regressions, err := Compare(oldS, newS, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("doctored drop found %d regressions, want 1", regressions)
	}
	table := RenderCompare(rows, regressions, 0.25)
	if !strings.Contains(table, "loan_batch.batched_msgs_per_sec") || !strings.Contains(table, "REGRESSED") {
		t.Errorf("delta table does not flag the doctored metric:\n%s", table)
	}
}

// TestCompareWithinTolerance: a 20% wobble survives a 25% tolerance in
// either direction, including on the lower-is-better lock-count
// metric.
func TestCompareWithinTolerance(t *testing.T) {
	oldS, newS := sampleSummary(), sampleSummary()
	newS.Contention.ShardedBatchedMsgsPerSec *= 0.80
	newS.LoanBatch.BatchedArenaLocksPerMsg *= 1.20
	if _, regressions, err := Compare(oldS, newS, 0.25, false); err != nil || regressions != 0 {
		t.Fatalf("20%% wobble regressed under a 25%% tolerance: %d (err %v)", regressions, err)
	}
}

// TestCompareLowerIsBetterDirection: the lower-is-better arena-lock
// metric regresses when it *rises* beyond tolerance — batching that
// stops amortising is a regression even if throughput holds.
func TestCompareLowerIsBetterDirection(t *testing.T) {
	oldS, newS := sampleSummary(), sampleSummary()
	newS.LoanBatch.BatchedArenaLocksPerMsg *= 2 // locks doubled = regression
	rows, regressions, err := Compare(oldS, newS, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("doubled locks/msg found %d regressions, want 1", regressions)
	}
	var hit bool
	for _, r := range rows {
		if r.Name == "loan_batch.batched_arena_locks_per_msg" {
			hit = r.Regressed
		}
	}
	if !hit {
		t.Error("doubled locks/msg not flagged on its own row")
	}
}

// TestCompareSchemaMismatch: a bump may redefine a metric under its
// old name, so comparing across schemas is refused outright rather
// than producing definition-skew deltas.
func TestCompareSchemaMismatch(t *testing.T) {
	oldS, newS := sampleSummary(), sampleSummary()
	oldS.Schema = 2
	if _, _, err := Compare(oldS, newS, 0.25, false); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("cross-schema comparison: %v, want ErrSchemaMismatch", err)
	}
}

// TestCompareShapeSkew: within one schema, a baseline with a different
// metric shape (fewer measured copies points, say) compares cleanly —
// metrics only one side has are simply unheld — the credit section
// never enters the comparison (its starvation headline is unbounded
// noise by construction; see metrics()), and regressions on shared
// metrics still bite.
func TestCompareShapeSkew(t *testing.T) {
	oldS, newS := sampleSummary(), sampleSummary()
	oldS.Copies = oldS.Copies[:1] // older baseline: one measured point
	rows, regressions, err := Compare(oldS, newS, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("shape skew produced %d regressions", regressions)
	}
	for _, r := range rows {
		if strings.HasPrefix(r.Name, "copies.16384B") {
			t.Errorf("metric %s compared against a baseline that lacks it", r.Name)
		}
		if strings.HasPrefix(r.Name, "credit.") {
			t.Errorf("credit metric %s entered the comparison set", r.Name)
		}
	}
	newS.Contention.ShardedBatchedMsgsPerSec *= 0.70
	if _, regressions, err := Compare(oldS, newS, 0.25, false); err != nil || regressions != 1 {
		t.Fatalf("shared-metric drop under skew found %d regressions (err %v), want 1", regressions, err)
	}
}

// TestCompareXProcSection: the cross-process waiter counters gate
// same-pool chains — a busy-spin blowup (polls per message exploding)
// is a regression — but a baseline or fresh run without shared-segment
// support simply drops the section from the intersection rather than
// failing the compare, and the committed-seed ratios-only mode skips
// the whole section as scale-dependent.
func TestCompareXProcSection(t *testing.T) {
	oldS, newS := sampleSummary(), sampleSummary()
	newS.XProc.SpinPollsPerMsgPlus1 *= 40 // waiters degraded to busy-spin
	rows, regressions, err := Compare(oldS, newS, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("busy-spin blowup found %d regressions, want 1", regressions)
	}
	var hit bool
	for _, r := range rows {
		if r.Name == "xproc.spin_polls_per_msg_plus1" {
			hit = r.Regressed
		}
	}
	if !hit {
		t.Error("busy-spin blowup not flagged on its own row")
	}

	// Unsupported on either side: the section leaves the intersection.
	newS = sampleSummary()
	newS.XProc = sampleSummary().XProc
	newS.XProc.Supported = false
	newS.XProc.MsgsPerSec = 0
	if _, regressions, err := Compare(oldS, newS, 0.25, false); err != nil || regressions != 0 {
		t.Fatalf("supported→unsupported pair: %d regressions (err %v), want 0", regressions, err)
	}

	// Ratios-only (committed-seed fallback): scale-dependent, skipped.
	newS = sampleSummary()
	newS.XProc.SpinPollsPerMsgPlus1 *= 40
	if _, regressions, err := Compare(oldS, newS, 0.25, true); err != nil || regressions != 0 {
		t.Fatalf("ratios-only held a waiter counter: %d regressions (err %v)", regressions, err)
	}
}

// TestCompareTuningSection: the round amortisation is a ratio of
// deterministic round counts, so it is held everywhere — including the
// committed-seed ratios-only fallback — while the false-sharing and
// affinity ratios are box-topology facts gating same-pool chains only,
// and the pinned metric leaves the intersection entirely where pinning
// was refused (the xproc Supported pattern).
func TestCompareTuningSection(t *testing.T) {
	oldS, newS := sampleSummary(), sampleSummary()
	newS.Tuning.RoundAmortisation *= 0.5 // adaptive budget stopped amortising
	rows, regressions, err := Compare(oldS, newS, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("halved round amortisation found %d regressions in ratios-only mode, want 1", regressions)
	}
	var hit bool
	for _, r := range rows {
		if r.Name == "tuning.round_amortisation" {
			hit = r.Regressed
		}
	}
	if !hit {
		t.Error("round-amortisation drop not flagged on its own row")
	}

	// A padded-vs-packed collapse (padding reverted) gates same-pool
	// chains but is skipped against a foreign-hardware seed.
	newS = sampleSummary()
	newS.Tuning.PaddedVsPackedAdvantage *= 0.3
	if _, regressions, err := Compare(oldS, newS, 0.25, false); err != nil || regressions != 1 {
		t.Fatalf("padding collapse: %d regressions (err %v), want 1", regressions, err)
	}
	if _, regressions, err := Compare(oldS, newS, 0.25, true); err != nil || regressions != 0 {
		t.Fatalf("ratios-only held a topology ratio: %d regressions (err %v)", regressions, err)
	}

	// Pinning refused on the new side: the pinned metric leaves the
	// intersection rather than comparing a dead leg.
	newS = sampleSummary()
	newS.Tuning.AffinitySupported = false
	newS.Tuning.PinnedMsgsPerSec = 0
	newS.Tuning.PinnedVsFloatingAdvantage = 0
	if _, regressions, err := Compare(oldS, newS, 0.25, false); err != nil || regressions != 0 {
		t.Fatalf("supported→unsupported affinity pair: %d regressions (err %v), want 0", regressions, err)
	}
}

// TestCompareCrashSection: reclaim completeness is a deterministic
// ratio held everywhere — including the committed-seed ratios-only
// fallback, so a build that silently stops detecting deaths cannot
// pass on fresh hardware — while survivor throughput is
// scale-dependent, and an unsupported side drops the whole section
// from the intersection (the xproc pattern).
func TestCompareCrashSection(t *testing.T) {
	oldS, newS := sampleSummary(), sampleSummary()
	newS.Crash.ReclaimCompleteness = 0.5 // a death went undetected
	rows, regressions, err := Compare(oldS, newS, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("halved completeness in ratios-only mode found %d regressions, want 1", regressions)
	}
	var hit bool
	for _, r := range rows {
		if r.Name == "crash.reclaim_completeness" {
			hit = r.Regressed
		}
	}
	if !hit {
		t.Error("completeness drop not flagged on its own row")
	}

	// Survivor throughput: held same-pool, skipped against a foreign
	// seed.
	newS = sampleSummary()
	newS.Crash.SurvivorMsgsPerSec *= 0.5
	if _, regressions, err := Compare(oldS, newS, 0.25, false); err != nil || regressions != 1 {
		t.Fatalf("halved survivor throughput: %d regressions (err %v), want 1", regressions, err)
	}
	if _, regressions, err := Compare(oldS, newS, 0.25, true); err != nil || regressions != 0 {
		t.Fatalf("ratios-only held survivor throughput: %d regressions (err %v)", regressions, err)
	}

	// Unsupported on either side: the section leaves the intersection.
	newS = sampleSummary()
	newS.Crash.Supported = false
	newS.Crash.SurvivorMsgsPerSec = 0
	newS.Crash.ReclaimCompleteness = 0
	if _, regressions, err := Compare(oldS, newS, 0.25, false); err != nil || regressions != 0 {
		t.Fatalf("supported→unsupported crash pair: %d regressions (err %v), want 0", regressions, err)
	}
}

// TestCompareRatiosOnly: against a baseline measured on different
// hardware (the committed seed), raw throughput deltas are noise and
// are skipped — but a dropped ratio still fails: box speed divides out
// of ratios, so losing one is a real regression anywhere.
func TestCompareRatiosOnly(t *testing.T) {
	oldS, newS := sampleSummary(), sampleSummary()
	newS.Contention.ShardedBatchedMsgsPerSec *= 0.40 // a slower box, not a regression
	rows, regressions, err := Compare(oldS, newS, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("ratios-only comparison flagged a raw throughput delta: %d", regressions)
	}
	for _, r := range rows {
		if strings.HasSuffix(r.Name, "msgs_per_sec") {
			t.Errorf("raw metric %s entered a ratios-only comparison", r.Name)
		}
	}
	newS.LoanBatch.Advantage *= 0.60 // the batched plane stopped winning
	if _, regressions, err := Compare(oldS, newS, 0.25, true); err != nil || regressions != 1 {
		t.Fatalf("ratios-only comparison missed a dropped ratio: %d regressions, want 1", regressions)
	}
}

// TestSummaryRoundTrip: Write then ReadSummary reproduces the
// comparable metric set exactly — the artifact chain the CI job relies
// on.
func TestSummaryRoundTrip(t *testing.T) {
	s := sampleSummary()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, regressions, err := Compare(s, back, 0, false); err != nil || regressions != 0 {
		t.Fatalf("round-tripped summary regressed against the original")
	}
	if got, want := len(back.metrics()), len(s.metrics()); got != want {
		t.Fatalf("round-trip lost metrics: %d, want %d", got, want)
	}
}
