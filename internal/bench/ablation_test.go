package bench

import (
	"testing"

	"repro/internal/apps/gauss"
	"repro/internal/balance"
)

// balanceGaussShared forwards to the app package; kept as a helper so
// the validation test reads uniformly.
func balanceGaussShared(m *balance.Machine, n, workers int) (float64, error) {
	return gauss.SimSharedTime(m, n, workers)
}

func TestAblationSchemesOrdering(t *testing.T) {
	fig := AblationSchemes(Config{})
	general := fig.Get("general LNVC")
	one2one := fig.Get("one-to-one")
	syncS := fig.Get("synchronous")
	if general == nil || one2one == nil || syncS == nil {
		t.Fatal("missing series")
	}
	// §5's predictions: both restricted schemes beat the general path
	// everywhere; synchronous wins by the most at large messages (the
	// saved copy dominates).
	for _, p := range general.Points {
		o, _ := one2one.Y(p.X)
		s, _ := syncS.Y(p.X)
		if o <= p.Y {
			t.Errorf("len=%d: one-to-one (%.0f) not above general (%.0f)", p.X, o, p.Y)
		}
		if s <= p.Y {
			t.Errorf("len=%d: synchronous (%.0f) not above general (%.0f)", p.X, s, p.Y)
		}
	}
	g2048, _ := general.Y(2048)
	s2048, _ := syncS.Y(2048)
	if s2048 < 2*g2048 {
		t.Fatalf("synchronous at 2048 B (%.0f) not ≥2× general (%.0f)", s2048, g2048)
	}
}

func TestAblationBlockSizeMonotone(t *testing.T) {
	fig, err := AblationBlockSize(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	small := fig.Get("10-byte blocks")
	big := fig.Get("256-byte blocks")
	if small == nil || big == nil {
		t.Fatal("missing series")
	}
	// Bigger blocks never hurt, and help clearly at large messages.
	for _, p := range small.Points {
		b, _ := big.Y(p.X)
		if b < p.Y {
			t.Errorf("len=%d: 256B blocks (%.0f) below 10B blocks (%.0f)", p.X, b, p.Y)
		}
	}
	s2048, _ := small.Y(2048)
	b2048, _ := big.Y(2048)
	if b2048 < 1.5*s2048 {
		t.Fatalf("block-size effect too weak at 2048 B: %.0f vs %.0f", b2048, s2048)
	}
}

func TestAblationLockCostExplainsFigure4(t *testing.T) {
	fig, err := AblationLockCost(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	free := fig.Get("lock cost x0")
	heavy := fig.Get("lock cost x4")
	if free == nil || heavy == nil {
		t.Fatal("missing series")
	}
	// With no lock cost the small-message curve must not decline with
	// receivers; with inflated lock cost it must decline sharply.
	f1, _ := free.Y(1)
	f8, _ := free.Y(8)
	if f8 < f1*0.98 {
		t.Fatalf("lock-free curve declines: %.0f -> %.0f", f1, f8)
	}
	h1, _ := heavy.Y(1)
	h8, _ := heavy.Y(8)
	if h8 >= h1*0.9 {
		t.Fatalf("heavy-lock curve does not decline: %.0f -> %.0f", h1, h8)
	}
}

func TestAblationParadigmSharedWins(t *testing.T) {
	fig, err := AblationParadigm(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	mpfG := fig.Get("gauss 48 MPF")
	shmG := fig.Get("gauss 48 shared")
	if mpfG == nil || shmG == nil {
		t.Fatal("missing gauss series")
	}
	// The cross-paradigm result (cf. LeBlanc 1986): shared memory is at
	// least as fast everywhere and clearly faster at high process
	// counts, where per-message overhead dominates.
	for _, p := range mpfG.Points {
		s, ok := shmG.Y(p.X)
		if !ok {
			continue
		}
		if s < p.Y*0.98 {
			t.Errorf("gauss at %d procs: shared (%.2f) below MPF (%.2f)", p.X, s, p.Y)
		}
	}
	m16, _ := mpfG.Y(16)
	s16, _ := shmG.Y(16)
	if s16 <= m16*1.2 {
		t.Fatalf("at 16 procs shared (%.2f) should clearly beat MPF (%.2f)", s16, m16)
	}
	// SOR shows the same ordering.
	mpfS := fig.Get("sor 33 MPF")
	shmS := fig.Get("sor 33 shared")
	ms, _ := mpfS.Y(16)
	ss, _ := shmS.Y(16)
	if ss <= ms {
		t.Fatalf("sor at 16 procs: shared (%.2f) not above MPF (%.2f)", ss, ms)
	}
}

func TestSimSharedValidation(t *testing.T) {
	m := balance.Balance21000()
	if _, err := balanceGaussShared(m, 0, 2); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := balanceGaussShared(m, 8, 0); err == nil {
		t.Fatal("workers=0 accepted")
	}
}

func TestRestrictedSchemeCostModel(t *testing.T) {
	m := balance.Balance21000()
	for _, n := range []int{16, 256, 2048} {
		g := m.GeneralTransferTime(n)
		o := m.One2OneTransferTime(n)
		s := m.SyncTransferTime(n)
		if o >= g {
			t.Errorf("n=%d: one-to-one (%g) not cheaper than general (%g)", n, o, g)
		}
		if s >= g {
			t.Errorf("n=%d: synchronous (%g) not cheaper than general (%g)", n, s, g)
		}
	}
	// Synchronous scales with ONE copy: per-byte slope must be half the
	// general path's block-handling-free slope.
	ds := m.SyncTransferTime(2000) - m.SyncTransferTime(1000)
	dg := m.GeneralTransferTime(2000) - m.GeneralTransferTime(1000)
	if ds >= dg/2*1.2 {
		t.Fatalf("sync slope %g not ≈ half of general copy slope %g", ds, dg)
	}
}
