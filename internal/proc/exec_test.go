//go:build unix

package proc

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestMain doubles the test binary as the spawn target: when re-exec'd
// with MPF_PROC_HELPER set it behaves as a child process instead of a
// test runner — the standard trick for exercising real process spawn
// inside go test.
func TestMain(m *testing.M) {
	switch os.Getenv("MPF_PROC_HELPER") {
	case "":
		os.Exit(m.Run())
	case "echo":
		conn, idx, err := ParentConn()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		buf := make([]byte, 32)
		n, err := conn.Read(buf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if _, err := conn.Write([]byte(fmt.Sprintf("child %d got %s", idx, buf[:n]))); err != nil {
			os.Exit(2)
		}
		os.Exit(0)
	case "hang":
		select {}
	case "die":
		os.Exit(7)
	default:
		os.Exit(3)
	}
}

func TestExecGroupRoundTrip(t *testing.T) {
	g, err := StartGroup(3, os.Args[0], nil, []string{"MPF_PROC_HELPER=echo"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		ch := g.Child(i)
		if ch.Index != i {
			t.Fatalf("child %d carries index %d", i, ch.Index)
		}
		if _, err := ch.Conn.Write([]byte(fmt.Sprintf("ping-%d", i))); err != nil {
			t.Fatalf("write to child %d: %v", i, err)
		}
	}
	for i := 0; i < g.N(); i++ {
		buf := make([]byte, 64)
		g.Child(i).Conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		n, err := g.Child(i).Conn.Read(buf)
		if err != nil {
			t.Fatalf("read from child %d: %v", i, err)
		}
		want := fmt.Sprintf("child %d got ping-%d", i, i)
		if string(buf[:n]) != want {
			t.Fatalf("child %d replied %q, want %q", i, buf[:n], want)
		}
	}
	if err := g.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestExecGroupWaitTimeout(t *testing.T) {
	g, err := StartGroup(1, os.Args[0], nil, []string{"MPF_PROC_HELPER=hang"})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := g.Wait(200 * time.Millisecond); err == nil {
		t.Fatal("Wait returned nil for a hung child")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Wait did not enforce its deadline")
	}
	// The kill escalation must actually reap the child...
	select {
	case <-g.Child(0).Done():
	case <-time.After(5 * time.Second):
		t.Fatal("killed child never reaped")
	}
	// ...and close the handshake socket, so nothing can keep talking on
	// the channel of a torn-down group.
	if _, err := g.Child(0).Conn.Write([]byte("x")); err == nil {
		t.Fatal("handshake socket still open after kill escalation")
	}
}

// TestExecGroupDeathWatchAndRespawn exercises the crash-robustness
// plumbing: a child that exits nonzero is observed by WatchDeaths, a
// replacement is respawned into its rank, and the replacement works.
func TestExecGroupDeathWatchAndRespawn(t *testing.T) {
	g, err := StartGroupEnv(2, os.Args[0], nil, func(i int) []string {
		if i == 0 {
			return []string{"MPF_PROC_HELPER=die"}
		}
		return []string{"MPF_PROC_HELPER=echo"}
	})
	if err != nil {
		t.Fatal(err)
	}
	deaths := make(chan *Child, 4)
	stop := g.WatchDeaths(func(ch *Child) { deaths <- ch })
	defer stop()

	select {
	case ch := <-deaths:
		if ch.Index != 0 {
			t.Fatalf("death of child %d, want 0", ch.Index)
		}
		if ch.Err() == nil {
			t.Fatal("crashed child reported clean exit")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("death never observed")
	}
	if Alive(g.Child(1).Pid()) != true {
		t.Fatal("live child probes dead")
	}

	// Respawn rank 0 as an echo child and run a round trip through it.
	nc, err := g.Respawn(0, []string{"MPF_PROC_HELPER=echo"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Child(0) != nc || nc.Index != 0 {
		t.Fatal("respawned child not installed at its rank")
	}
	if _, err := nc.Conn.Write([]byte("again")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	nc.Conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	n, err := nc.Conn.Read(buf)
	if err != nil || string(buf[:n]) != "child 0 got again" {
		t.Fatalf("respawned round trip: %q, %v", buf[:n], err)
	}
	// Unblock the untouched echo child at rank 1 so the group joins.
	if _, err := g.Child(1).Conn.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	g.Child(1).Conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := g.Child(1).Conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if Alive(nc.Pid()) {
		t.Fatal("joined child still probes alive")
	}
}

func TestExecGroupSpawnFailure(t *testing.T) {
	if _, err := StartGroup(2, "/nonexistent/mpf-no-such-binary", nil, nil); err == nil {
		t.Fatal("spawn of a nonexistent binary succeeded")
	}
}
