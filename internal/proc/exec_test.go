//go:build unix

package proc

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestMain doubles the test binary as the spawn target: when re-exec'd
// with MPF_PROC_HELPER set it behaves as a child process instead of a
// test runner — the standard trick for exercising real process spawn
// inside go test.
func TestMain(m *testing.M) {
	switch os.Getenv("MPF_PROC_HELPER") {
	case "":
		os.Exit(m.Run())
	case "echo":
		conn, idx, err := ParentConn()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		buf := make([]byte, 32)
		n, err := conn.Read(buf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if _, err := conn.Write([]byte(fmt.Sprintf("child %d got %s", idx, buf[:n]))); err != nil {
			os.Exit(2)
		}
		os.Exit(0)
	case "hang":
		select {}
	default:
		os.Exit(3)
	}
}

func TestExecGroupRoundTrip(t *testing.T) {
	g, err := StartGroup(3, os.Args[0], nil, []string{"MPF_PROC_HELPER=echo"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		ch := g.Child(i)
		if ch.Index != i {
			t.Fatalf("child %d carries index %d", i, ch.Index)
		}
		if _, err := ch.Conn.Write([]byte(fmt.Sprintf("ping-%d", i))); err != nil {
			t.Fatalf("write to child %d: %v", i, err)
		}
	}
	for i := 0; i < g.N(); i++ {
		buf := make([]byte, 64)
		g.Child(i).Conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		n, err := g.Child(i).Conn.Read(buf)
		if err != nil {
			t.Fatalf("read from child %d: %v", i, err)
		}
		want := fmt.Sprintf("child %d got ping-%d", i, i)
		if string(buf[:n]) != want {
			t.Fatalf("child %d replied %q, want %q", i, buf[:n], want)
		}
	}
	if err := g.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestExecGroupWaitTimeout(t *testing.T) {
	g, err := StartGroup(1, os.Args[0], nil, []string{"MPF_PROC_HELPER=hang"})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := g.Wait(200 * time.Millisecond); err == nil {
		t.Fatal("Wait returned nil for a hung child")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Wait did not enforce its deadline")
	}
	// The kill escalation must actually reap the child.
	select {
	case <-g.Child(0).waitErr:
	case <-time.After(5 * time.Second):
		t.Fatal("killed child never reaped")
	}
}

func TestExecGroupSpawnFailure(t *testing.T) {
	if _, err := StartGroup(2, "/nonexistent/mpf-no-such-binary", nil, nil); err == nil {
		t.Fatal("spawn of a nonexistent binary succeeded")
	}
}
