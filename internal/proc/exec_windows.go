//go:build windows

package proc

import (
	"errors"
	"os"
)

// errNoSocketpair gates the exec-group harness off Windows: the
// fd-inheritance handshake needs an AF_UNIX socketpair, which the
// frozen syscall package does not expose there. The goroutine Group
// remains the process abstraction on Windows.
var errNoSocketpair = errors.New("proc: exec groups unsupported on windows")

func unixSocketpair() (parent, child *os.File, err error) {
	return nil, nil, errNoSocketpair
}

// Alive is unsupported on Windows (no kill(pid, 0)); report not-alive
// so reapers fail toward reclamation rather than leaking slots.
func Alive(pid int) bool { return false }
