// Package proc provides the parallel process abstraction MPF programs run
// under.
//
// In the paper, "parallel programs consist of a group of Unix processes
// that interact using LNVC's"; the processes are forked, numbered, and
// share the mapped MPF region. Here a process is a goroutine with a small
// integer id. The package supplies group spawn/join, a reusable barrier
// (the applications need one between phases), and panic containment so a
// failing worker surfaces as an error instead of tearing the test binary
// down.
package proc

import (
	"fmt"
	"sync"
)

// Group runs a fixed-size set of numbered processes.
type Group struct {
	n int
}

// NewGroup creates a group of n processes (ids 0..n-1).
func NewGroup(n int) (*Group, error) {
	if n <= 0 {
		return nil, fmt.Errorf("proc: group size %d", n)
	}
	return &Group{n: n}, nil
}

// N returns the group size.
func (g *Group) N() int { return g.n }

// Run starts one goroutine per process id and waits for all of them. The
// returned error is the first non-nil error by process id order; a panic
// in a worker is recovered and reported as an error.
func (g *Group) Run(body func(pid int) error) error {
	errs := make([]error, g.n)
	var wg sync.WaitGroup
	for pid := 0; pid < g.n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[pid] = fmt.Errorf("proc: process %d panicked: %v", pid, r)
				}
			}()
			errs[pid] = body(pid)
		}(pid)
	}
	wg.Wait()
	for pid, err := range errs {
		if err != nil {
			return fmt.Errorf("process %d: %w", pid, err)
		}
	}
	return nil
}

// Barrier is a reusable synchronization barrier for a fixed party count,
// the shared-memory primitive the SOR solver's iteration structure
// assumes. The zero value is not usable; call NewBarrier.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

// NewBarrier creates a barrier for the given number of parties.
func NewBarrier(parties int) (*Barrier, error) {
	if parties <= 0 {
		return nil, fmt.Errorf("proc: barrier of %d parties", parties)
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b, nil
}

// Wait blocks until all parties have called Wait, then releases them all.
// It returns the phase number that just completed, so callers can detect
// missed phases in tests.
func (b *Barrier) Wait() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return phase
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	return phase
}
