package proc

// Real OS process groups. Group runs the paper's "group of Unix
// processes" as goroutines — the right default for a Go port — but the
// cross-process arena needs the genuine article: children with their
// own address spaces, connected to the parent only by an inherited
// unix-domain socket over which the segment fd and attach handshake
// travel (shm.SendSegment/RecvSegment). ExecGroup supplies that:
// StartGroup forks+execs N children, each with its half of a
// socketpair installed as ChildConnFd, and Wait joins them with a
// deadline and a kill escalation — a child that wedges cannot hang CI.
//
// The exec machinery is portable Go (os/exec, net.FileConn); only the
// segment that usually travels over the socket is Linux-gated. On
// platforms without a shared segment backend an ExecGroup still works
// as a plain process harness.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"time"
)

// ChildConnFd is the file descriptor number at which every spawned
// child inherits its parent socket (fd 3: the first ExtraFiles slot).
const ChildConnFd = 3

// Child is one spawned OS process and the parent's socket to it.
type Child struct {
	// Index is the child's rank in the group (0..N-1).
	Index int
	// Cmd is the underlying process handle.
	Cmd *exec.Cmd
	// Conn is the parent's end of the handshake socket.
	Conn *net.UnixConn

	waitErr chan error
}

// ExecGroup is a set of exec-spawned children sharing a parent.
type ExecGroup struct {
	children []*Child
}

// socketpairConn builds a connected pair: a *net.UnixConn for the
// parent and an *os.File for the child's ExtraFiles slot.
func socketpairConn() (*net.UnixConn, *os.File, error) {
	parentF, childF, err := unixSocketpair()
	if err != nil {
		return nil, nil, err
	}
	c, err := net.FileConn(parentF)
	parentF.Close() // FileConn dup'ed it
	if err != nil {
		childF.Close()
		return nil, nil, err
	}
	uc, ok := c.(*net.UnixConn)
	if !ok {
		c.Close()
		childF.Close()
		return nil, nil, fmt.Errorf("proc: socketpair conn is %T, want *net.UnixConn", c)
	}
	return uc, childF, nil
}

// StartGroup spawns n children running bin with the given args. Each
// child receives its rank via the MPF_PROC_INDEX environment variable
// and its handshake socket at ChildConnFd. Children inherit the
// parent's environment plus extraEnv, and their stderr; stdout is
// passed through too, so demo children can narrate. On any spawn
// failure the already-started children are killed.
func StartGroup(n int, bin string, args []string, extraEnv []string) (*ExecGroup, error) {
	if n <= 0 {
		return nil, fmt.Errorf("proc: exec group size %d", n)
	}
	g := &ExecGroup{}
	for i := 0; i < n; i++ {
		conn, childF, err := socketpairConn()
		if err != nil {
			g.Kill()
			return nil, err
		}
		cmd := exec.Command(bin, args...)
		cmd.Env = append(append(os.Environ(), extraEnv...), fmt.Sprintf("MPF_PROC_INDEX=%d", i))
		cmd.ExtraFiles = []*os.File{childF}
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			conn.Close()
			childF.Close()
			g.Kill()
			return nil, fmt.Errorf("proc: spawning child %d: %w", i, err)
		}
		childF.Close() // child holds its own copy now
		ch := &Child{Index: i, Cmd: cmd, Conn: conn, waitErr: make(chan error, 1)}
		go func() { ch.waitErr <- cmd.Wait() }()
		g.children = append(g.children, ch)
	}
	return g, nil
}

// N returns the group size.
func (g *ExecGroup) N() int { return len(g.children) }

// Child returns the i'th child.
func (g *ExecGroup) Child(i int) *Child { return g.children[i] }

// ParentConn returns this process's end of the handshake socket when
// running *as* a spawned child (the counterpart of StartGroup's
// ExtraFiles plumbing), plus the child's group index.
func ParentConn() (*net.UnixConn, int, error) {
	idx := -1
	if s := os.Getenv("MPF_PROC_INDEX"); s != "" {
		fmt.Sscanf(s, "%d", &idx)
	}
	f := os.NewFile(uintptr(ChildConnFd), "mpf-parent-conn")
	if f == nil {
		return nil, idx, fmt.Errorf("proc: no inherited socket at fd %d", ChildConnFd)
	}
	c, err := net.FileConn(f)
	f.Close()
	if err != nil {
		return nil, idx, fmt.Errorf("proc: inherited fd %d is not a socket: %w", ChildConnFd, err)
	}
	uc, ok := c.(*net.UnixConn)
	if !ok {
		c.Close()
		return nil, idx, fmt.Errorf("proc: inherited socket is %T, want unix", c)
	}
	return uc, idx, nil
}

// Wait joins every child, enforcing the deadline: children still
// running when it expires are killed and reported as an error. The
// first failing child (by index) determines the returned error.
func (g *ExecGroup) Wait(timeout time.Duration) error {
	deadline := time.After(timeout)
	errs := make([]error, len(g.children))
	for i, ch := range g.children {
		select {
		case err := <-ch.waitErr:
			errs[i] = err
		case <-deadline:
			g.Kill()
			return fmt.Errorf("proc: child %d still running after %v (group killed)", i, timeout)
		}
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("proc: child %d: %w", i, err)
		}
	}
	return nil
}

// Kill terminates every child that is still running and closes the
// parent sockets.
func (g *ExecGroup) Kill() {
	for _, ch := range g.children {
		if ch.Cmd.Process != nil {
			ch.Cmd.Process.Kill()
		}
		ch.Conn.Close()
	}
}

// CloseConns closes the parent's handshake sockets without touching
// the processes — once the segment has been handed over the socket's
// job is done, and a child blocked reading it learns the parent is
// gone.
func (g *ExecGroup) CloseConns() {
	for _, ch := range g.children {
		ch.Conn.Close()
	}
}
