package proc

// Real OS process groups. Group runs the paper's "group of Unix
// processes" as goroutines — the right default for a Go port — but the
// cross-process arena needs the genuine article: children with their
// own address spaces, connected to the parent only by an inherited
// unix-domain socket over which the segment fd and attach handshake
// travel (shm.SendSegment/RecvSegment). ExecGroup supplies that:
// StartGroup forks+execs N children, each with its half of a
// socketpair installed as ChildConnFd, and Wait joins them with a
// deadline and a kill escalation — a child that wedges cannot hang CI.
//
// Crash tolerance rides on the same plumbing: every child's exit is
// observed by a dedicated Wait goroutine and published through a done
// channel, so a reaper (WatchDeaths) learns about a crash the moment
// the kernel does, without stealing the join from ExecGroup.Wait.
// Respawn replaces a dead child in place — same binary, same rank,
// fresh socketpair — which is what the mpf supervisor builds restart
// policies out of. Alive (kill(pid, 0)) covers peers the parent did
// not spawn and therefore cannot Wait on.
//
// The exec machinery is portable Go (os/exec, net.FileConn); only the
// segment that usually travels over the socket is Linux-gated. On
// platforms without a shared segment backend an ExecGroup still works
// as a plain process harness.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"
)

// ChildConnFd is the file descriptor number at which every spawned
// child inherits its parent socket (fd 3: the first ExtraFiles slot).
const ChildConnFd = 3

// Child is one spawned OS process and the parent's socket to it.
type Child struct {
	// Index is the child's rank in the group (0..N-1). A respawned
	// replacement keeps its predecessor's rank.
	Index int
	// Cmd is the underlying process handle.
	Cmd *exec.Cmd
	// Conn is the parent's end of the handshake socket.
	Conn *net.UnixConn

	done chan struct{} // closed once Cmd.Wait returned
	err  error         // Cmd.Wait's result; valid after done

	connOnce sync.Once
}

// Done is closed once the child's process has been joined — the death
// signal reapers select on.
func (ch *Child) Done() <-chan struct{} { return ch.done }

// Err returns the child's exit error (nil for clean exit). Only valid
// after Done is closed.
func (ch *Child) Err() error { return ch.err }

// Exited reports whether the child has been joined.
func (ch *Child) Exited() bool {
	select {
	case <-ch.done:
		return true
	default:
		return false
	}
}

// Pid returns the child's OS pid (0 if the process never started).
func (ch *Child) Pid() int {
	if ch.Cmd.Process == nil {
		return 0
	}
	return ch.Cmd.Process.Pid
}

// CloseConn closes the parent's handshake socket to this child,
// exactly once — safe to call from Wait, Kill and reapers
// concurrently.
func (ch *Child) CloseConn() {
	ch.connOnce.Do(func() { ch.Conn.Close() })
}

// ExecGroup is a set of exec-spawned children sharing a parent.
type ExecGroup struct {
	mu       sync.Mutex
	children []*Child

	// Respawn needs the original spawn recipe.
	bin  string
	args []string
	env  func(i int) []string
}

// socketpairConn builds a connected pair: a *net.UnixConn for the
// parent and an *os.File for the child's ExtraFiles slot.
func socketpairConn() (*net.UnixConn, *os.File, error) {
	parentF, childF, err := unixSocketpair()
	if err != nil {
		return nil, nil, err
	}
	c, err := net.FileConn(parentF)
	parentF.Close() // FileConn dup'ed it
	if err != nil {
		childF.Close()
		return nil, nil, err
	}
	uc, ok := c.(*net.UnixConn)
	if !ok {
		c.Close()
		childF.Close()
		return nil, nil, fmt.Errorf("proc: socketpair conn is %T, want *net.UnixConn", c)
	}
	return uc, childF, nil
}

// StartGroup spawns n children running bin with the given args. Each
// child receives its rank via the MPF_PROC_INDEX environment variable
// and its handshake socket at ChildConnFd. Children inherit the
// parent's environment plus extraEnv, and their stderr; stdout is
// passed through too, so demo children can narrate. On any spawn
// failure the already-started children are killed.
func StartGroup(n int, bin string, args []string, extraEnv []string) (*ExecGroup, error) {
	return StartGroupEnv(n, bin, args, func(int) []string { return extraEnv })
}

// StartGroupEnv is StartGroup with per-child environment: envFor(i) is
// appended to child i's inherited environment. This is how a chaos
// harness arms fault points in some children and not others.
func StartGroupEnv(n int, bin string, args []string, envFor func(i int) []string) (*ExecGroup, error) {
	if n <= 0 {
		return nil, fmt.Errorf("proc: exec group size %d", n)
	}
	if envFor == nil {
		envFor = func(int) []string { return nil }
	}
	g := &ExecGroup{bin: bin, args: args, env: envFor}
	for i := 0; i < n; i++ {
		ch, err := g.spawn(i, envFor(i))
		if err != nil {
			g.Kill()
			return nil, err
		}
		g.children = append(g.children, ch)
	}
	return g, nil
}

// spawn starts one child at rank i with the given extra environment.
func (g *ExecGroup) spawn(i int, extraEnv []string) (*Child, error) {
	conn, childF, err := socketpairConn()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(g.bin, g.args...)
	cmd.Env = append(append(os.Environ(), extraEnv...), fmt.Sprintf("MPF_PROC_INDEX=%d", i))
	cmd.ExtraFiles = []*os.File{childF}
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		conn.Close()
		childF.Close()
		return nil, fmt.Errorf("proc: spawning child %d: %w", i, err)
	}
	childF.Close() // child holds its own copy now
	ch := &Child{Index: i, Cmd: cmd, Conn: conn, done: make(chan struct{})}
	go func() {
		ch.err = cmd.Wait()
		close(ch.done)
	}()
	return ch, nil
}

// Respawn replaces child i — which must have exited — with a fresh
// process of the same binary and rank, on a fresh socketpair, with
// extraEnv overriding the group's per-child environment (nil keeps
// it). Returns the new child.
func (g *ExecGroup) Respawn(i int, extraEnv []string) (*Child, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i < 0 || i >= len(g.children) {
		return nil, fmt.Errorf("proc: respawn of child %d in group of %d", i, len(g.children))
	}
	old := g.children[i]
	if !old.Exited() {
		return nil, fmt.Errorf("proc: respawn of child %d which is still running (pid %d)", i, old.Pid())
	}
	old.CloseConn()
	env := extraEnv
	if env == nil {
		env = g.env(i)
	}
	ch, err := g.spawn(i, env)
	if err != nil {
		return nil, err
	}
	g.children[i] = ch
	return ch, nil
}

// N returns the group size.
func (g *ExecGroup) N() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.children)
}

// Child returns the i'th child (the current incarnation, if respawned).
func (g *ExecGroup) Child(i int) *Child {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.children[i]
}

// WatchDeaths starts a watcher that invokes fn once for every child
// death it observes — including deaths of respawned replacements —
// until the returned stop function is called. fn runs on the watcher
// goroutine; it must not block for long.
func (g *ExecGroup) WatchDeaths(fn func(*Child)) (stop func()) {
	stopC := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seen := make(map[*Child]bool)
		for {
			// Snapshot the current incarnations, then wait for any
			// unseen one to die. Polling the snapshot (rather than one
			// goroutine per child) keeps respawn races simple: a
			// replacement shows up in the next snapshot.
			g.mu.Lock()
			kids := append([]*Child(nil), g.children...)
			g.mu.Unlock()
			fired := false
			for _, ch := range kids {
				if !seen[ch] && ch.Exited() {
					seen[ch] = true
					fired = true
					fn(ch)
				}
			}
			if fired {
				continue
			}
			select {
			case <-stopC:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()
	return func() {
		close(stopC)
		wg.Wait()
	}
}

// ParentConn returns this process's end of the handshake socket when
// running *as* a spawned child (the counterpart of StartGroup's
// ExtraFiles plumbing), plus the child's group index.
func ParentConn() (*net.UnixConn, int, error) {
	idx := -1
	if s := os.Getenv("MPF_PROC_INDEX"); s != "" {
		fmt.Sscanf(s, "%d", &idx)
	}
	f := os.NewFile(uintptr(ChildConnFd), "mpf-parent-conn")
	if f == nil {
		return nil, idx, fmt.Errorf("proc: no inherited socket at fd %d", ChildConnFd)
	}
	c, err := net.FileConn(f)
	f.Close()
	if err != nil {
		return nil, idx, fmt.Errorf("proc: inherited fd %d is not a socket: %w", ChildConnFd, err)
	}
	uc, ok := c.(*net.UnixConn)
	if !ok {
		c.Close()
		return nil, idx, fmt.Errorf("proc: inherited socket is %T, want unix", c)
	}
	return uc, idx, nil
}

// Wait joins every child, enforcing the deadline: children still
// running when it expires are killed — processes terminated AND their
// handshake sockets closed, so a wedged child can neither run on nor
// hold the handshake channel open past teardown — and reported as an
// error. Each child's socket is also closed as it joins cleanly. The
// first failing child (by index) determines the returned error.
func (g *ExecGroup) Wait(timeout time.Duration) error {
	deadline := time.After(timeout)
	g.mu.Lock()
	kids := append([]*Child(nil), g.children...)
	g.mu.Unlock()
	errs := make([]error, len(kids))
	for i, ch := range kids {
		select {
		case <-ch.done:
			errs[i] = ch.err
			ch.CloseConn()
		case <-deadline:
			g.Kill()
			return fmt.Errorf("proc: child %d still running after %v (group killed)", i, timeout)
		}
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("proc: child %d: %w", i, err)
		}
	}
	return nil
}

// Kill terminates every child that is still running and closes the
// parent sockets.
func (g *ExecGroup) Kill() {
	g.mu.Lock()
	kids := append([]*Child(nil), g.children...)
	g.mu.Unlock()
	for _, ch := range kids {
		if ch.Cmd.Process != nil {
			ch.Cmd.Process.Kill()
		}
		ch.CloseConn()
	}
}

// CloseConns closes the parent's handshake sockets without touching
// the processes — once the segment has been handed over the socket's
// job is done, and a child blocked reading it learns the parent is
// gone.
func (g *ExecGroup) CloseConns() {
	g.mu.Lock()
	kids := append([]*Child(nil), g.children...)
	g.mu.Unlock()
	for _, ch := range kids {
		ch.CloseConn()
	}
}
