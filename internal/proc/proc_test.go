package proc

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestGroupRunsAllPIDs(t *testing.T) {
	g, err := NewGroup(8)
	if err != nil {
		t.Fatal(err)
	}
	var seen [8]atomic.Bool
	if err := g.Run(func(pid int) error {
		if seen[pid].Swap(true) {
			return errors.New("pid run twice")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for pid := range seen {
		if !seen[pid].Load() {
			t.Fatalf("pid %d never ran", pid)
		}
	}
}

func TestGroupReportsFirstError(t *testing.T) {
	g, _ := NewGroup(4)
	sentinel := errors.New("boom")
	err := g.Run(func(pid int) error {
		if pid >= 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupRecoversPanic(t *testing.T) {
	g, _ := NewGroup(3)
	err := g.Run(func(pid int) error {
		if pid == 1 {
			panic("worker exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestGroupRejectsBadSize(t *testing.T) {
	if _, err := NewGroup(0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewGroup(-3); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const parties, rounds = 6, 50
	b, err := NewBarrier(parties)
	if err != nil {
		t.Fatal(err)
	}
	var counter atomic.Int64
	g, _ := NewGroup(parties)
	if err := g.Run(func(pid int) error {
		for r := 0; r < rounds; r++ {
			counter.Add(1)
			b.Wait()
			// Between two barrier crossings, the counter must be an
			// exact multiple of parties for this round.
			if got := counter.Load(); got < int64((r+1)*parties) {
				return errors.New("barrier released before all parties arrived")
			}
			b.Wait()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := counter.Load(); got != parties*rounds {
		t.Fatalf("counter = %d, want %d", got, parties*rounds)
	}
}

func TestBarrierPhaseNumbers(t *testing.T) {
	b, _ := NewBarrier(2)
	g, _ := NewGroup(2)
	if err := g.Run(func(pid int) error {
		for r := uint64(0); r < 10; r++ {
			if phase := b.Wait(); phase != r {
				return errors.New("phase mismatch")
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierRejectsBadParties(t *testing.T) {
	if _, err := NewBarrier(0); err == nil {
		t.Fatal("0 parties accepted")
	}
}
