//go:build unix

package proc

import (
	"os"
	"syscall"
)

// unixSocketpair returns a connected AF_UNIX stream pair, close-on-exec
// on the parent side (the child side is re-inherited explicitly via
// ExtraFiles, which clears the flag on the dup).
func unixSocketpair() (parent, child *os.File, err error) {
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		return nil, nil, os.NewSyscallError("socketpair", err)
	}
	syscall.CloseOnExec(fds[0])
	syscall.CloseOnExec(fds[1])
	return os.NewFile(uintptr(fds[0]), "mpf-sock-parent"), os.NewFile(uintptr(fds[1]), "mpf-sock-child"), nil
}
