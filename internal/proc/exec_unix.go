//go:build unix

package proc

import (
	"os"
	"syscall"
)

// unixSocketpair returns a connected AF_UNIX stream pair, close-on-exec
// on the parent side (the child side is re-inherited explicitly via
// ExtraFiles, which clears the flag on the dup).
func unixSocketpair() (parent, child *os.File, err error) {
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		return nil, nil, os.NewSyscallError("socketpair", err)
	}
	syscall.CloseOnExec(fds[0])
	syscall.CloseOnExec(fds[1])
	return os.NewFile(uintptr(fds[0]), "mpf-sock-parent"), os.NewFile(uintptr(fds[1]), "mpf-sock-child"), nil
}

// Alive reports whether a process with the given pid exists, via the
// classic kill(pid, 0) probe (EPERM still means alive). This is the
// liveness check for segment peers the caller did not spawn and so
// cannot Wait on. Note the inherent race: a recycled pid probes alive —
// which is why slot reclamation is keyed on the attach generation, not
// the pid.
func Alive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}
