package faultpoint

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"
)

// TestMain doubles the binary as a crash guinea pig: with
// MPF_FAULTPOINT_CHILD set it arms from the environment and hammers
// one point in a loop, so the parent test can assert the exact exit.
func TestMain(m *testing.M) {
	if os.Getenv("MPF_FAULTPOINT_CHILD") != "" {
		if err := EnableFromEnv(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for i := 0; i < 100; i++ {
			Hit("loop-point")
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestDisarmedIsInert(t *testing.T) {
	Reset()
	for i := 0; i < 1000; i++ {
		Hit("never-armed")
	}
	if Hits("never-armed") != 0 {
		t.Fatal("disarmed point counted hits")
	}
}

func TestDelayAndCounts(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	EnableDelay("slow", 20*time.Millisecond)
	start := time.Now()
	Hit("slow")
	Hit("slow")
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("two delayed hits took %v", d)
	}
	if Hits("slow") != 2 {
		t.Fatalf("hit count %d, want 2", Hits("slow"))
	}
	// Unarmed names stay inert even while others are armed.
	Hit("other")
	if Hits("other") != 0 {
		t.Fatal("unarmed point counted hits while registry armed")
	}
}

func TestSpecParsing(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Set("a:crash@3, b:delay=1ms ,c:crash"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"x", "x:boom", "x:crash@0", "x:crash@", "x:delay=bogus", ":crash"} {
		Reset()
		if err := Set(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
	Reset()
	if err := Set(""); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentHits(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	EnableDelay("par", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				Hit("par")
			}
		}()
	}
	wg.Wait()
	if Hits("par") != 4000 {
		t.Fatalf("hit count %d, want 4000", Hits("par"))
	}
}

// TestCrashExitCode re-execs the test binary with an armed crash point
// and asserts it dies with CrashExitCode on exactly the configured hit.
func TestCrashExitCode(t *testing.T) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"MPF_FAULTPOINT_CHILD=1",
		EnvVar+"=loop-point:crash@40")
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("armed child exited cleanly (err=%v)", err)
	}
	if code := ee.ExitCode(); code != CrashExitCode {
		t.Fatalf("armed child exited %d, want %d", code, CrashExitCode)
	}

	// And with no spec in the environment the same loop survives.
	cmd = exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "MPF_FAULTPOINT_CHILD=1", EnvVar+"=")
	if err := cmd.Run(); err != nil {
		t.Fatalf("disarmed child: %v", err)
	}
}
