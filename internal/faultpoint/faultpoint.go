// Package faultpoint provides named, runtime-armed fault injection
// points for crash-robustness testing. A fault point is a call site —
// faultpoint.Hit("child-claim") — placed at a protocol step whose
// failure the system must tolerate. With nothing armed the call is a
// single atomic bool load and a return: cheap enough to leave compiled
// into production paths permanently, so the code CI crashes is exactly
// the code users run.
//
// Points are armed per process via Set/Enable — typically from the
// MPF_FAULTPOINTS environment variable, which is how a chaos harness
// arms crash points in some children of an exec group and not others:
//
//	MPF_FAULTPOINTS=child-claim:crash          crash on first hit
//	MPF_FAULTPOINTS=child-ack:crash@40         crash on the 40th hit
//	MPF_FAULTPOINTS=child-fill:delay=5ms       sleep 5ms on every hit
//	MPF_FAULTPOINTS=a:crash@3,b:delay=1ms      several points
//
// A crash is os.Exit(out-of-band code 86), not a panic: no deferred
// cleanup, no detach, no unmap — the closest a test can get to a real
// SIGKILL'd peer while still being triggerable at an exact protocol
// step.
package faultpoint

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// CrashExitCode is the exit status of a process taken down by an armed
// crash point — distinct from any real error path, so harnesses can
// assert the crash they injected is the crash that happened.
const CrashExitCode = 86

// EnvVar is the environment variable EnableFromEnv reads.
const EnvVar = "MPF_FAULTPOINTS"

// armed is the global kill switch: false means no point anywhere is
// armed and Hit returns after one atomic load. It is only ever set
// true while reg holds at least one point.
var armed atomic.Bool

var (
	regMu sync.Mutex
	reg   map[string]*point
)

type point struct {
	// crash: take the process down on the hitN'th hit (1-based).
	crash bool
	hitN  uint64
	// delay: sleep this long on every hit.
	delay time.Duration

	hits atomic.Uint64
}

// Hit marks the named fault point as reached. Disarmed (the global
// fast path), it costs one atomic load. Armed, it counts the hit and
// performs the point's action: sleep for delay points, os.Exit for
// crash points whose hit count was reached.
func Hit(name string) {
	if !armed.Load() {
		return
	}
	hitSlow(name)
}

func hitSlow(name string) {
	regMu.Lock()
	p := reg[name]
	regMu.Unlock()
	if p == nil {
		return
	}
	n := p.hits.Add(1)
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	if p.crash && n >= p.hitN {
		fmt.Fprintf(os.Stderr, "faultpoint: crashing at %q (hit %d)\n", name, n)
		os.Exit(CrashExitCode)
	}
}

// Hits returns how many times the named point has been reached since
// it was armed (0 if never armed).
func Hits(name string) uint64 {
	regMu.Lock()
	p := reg[name]
	regMu.Unlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Enable arms a crash point: the process exits (CrashExitCode) the
// n'th time Hit(name) runs. n < 1 means the first hit.
func Enable(name string, n uint64) {
	if n < 1 {
		n = 1
	}
	install(name, &point{crash: true, hitN: n})
}

// EnableDelay arms a delay point: every Hit(name) sleeps d.
func EnableDelay(name string, d time.Duration) {
	install(name, &point{delay: d})
}

func install(name string, p *point) {
	regMu.Lock()
	if reg == nil {
		reg = make(map[string]*point)
	}
	reg[name] = p
	regMu.Unlock()
	armed.Store(true)
}

// Reset disarms every point and restores the zero-cost fast path.
func Reset() {
	regMu.Lock()
	reg = nil
	regMu.Unlock()
	armed.Store(false)
}

// Set arms points from a spec string — the MPF_FAULTPOINTS syntax:
// comma-separated name:action items, where action is "crash",
// "crash@N" (crash on the N'th hit) or "delay=DUR" (time.Duration
// syntax). An empty spec arms nothing.
func Set(spec string) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, action, ok := strings.Cut(item, ":")
		if !ok || name == "" {
			return fmt.Errorf("faultpoint: bad spec item %q (want name:action)", item)
		}
		switch {
		case action == "crash":
			Enable(name, 1)
		case strings.HasPrefix(action, "crash@"):
			var n uint64
			if _, err := fmt.Sscanf(action, "crash@%d", &n); err != nil || n < 1 {
				return fmt.Errorf("faultpoint: bad crash count in %q", item)
			}
			Enable(name, n)
		case strings.HasPrefix(action, "delay="):
			d, err := time.ParseDuration(action[len("delay="):])
			if err != nil || d < 0 {
				return fmt.Errorf("faultpoint: bad delay in %q", item)
			}
			EnableDelay(name, d)
		default:
			return fmt.Errorf("faultpoint: unknown action in %q", item)
		}
	}
	return nil
}

// EnableFromEnv arms points from the MPF_FAULTPOINTS environment
// variable — the first call every chaos-capable child process makes.
// An unset or empty variable arms nothing and keeps the fast path.
func EnableFromEnv() error {
	return Set(os.Getenv(EnvVar))
}
