// Package sim is a deterministic, process-oriented discrete-event
// simulation kernel.
//
// It exists because the paper's evaluation platform — a 20-processor
// Sequent Balance 21000 — no longer exists. The benchmark harness reruns
// the MPF protocol on a simulated machine (internal/balance supplies the
// cost model, internal/simmpf the protocol) to regenerate the paper's
// figures at their original absolute scale.
//
// The kernel is process-oriented: each simulated process is a goroutine,
// but exactly one runs at any instant — the kernel hands control to the
// process at the head of the event queue and waits for it to yield
// (Advance, block on a Mutex/Cond, or finish). Ties in simulated time
// break by event insertion order, so a given program produces the same
// trace every run, which the reproduction tests rely on.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Time is simulated seconds.
type Time = float64

// Kernel owns the clock and event queue.
type Kernel struct {
	now    Time
	pq     eventHeap
	seq    int64
	rng    *rand.Rand
	procs  []*Proc
	yield  chan struct{}
	halted bool
}

type event struct {
	t   Time
	seq int64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// NewKernel creates a kernel with the given RNG seed; the same seed and
// program yield the same trace.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the simulated clock.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic RNG. Only simulated processes
// may use it (it is not concurrency-safe, but only one process runs at a
// time).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Proc is one simulated process.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{}
	state  procState
	body   func(*Proc)
}

type procState uint8

const (
	stateReady procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// ID returns the process id (assigned in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the simulated clock.
func (p *Proc) Now() Time { return p.k.now }

// Spawn registers a process whose body starts at the current simulated
// time. Must be called before Run or from within a running process.
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		name:   name,
		resume: make(chan struct{}),
		body:   body,
	}
	k.procs = append(k.procs, p)
	k.schedule(p, k.now)
	return p
}

func (k *Kernel) schedule(p *Proc, t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling %q into the past (%g < %g)", p.name, t, k.now))
	}
	k.seq++
	k.pq.pushEvent(event{t: t, seq: k.seq, p: p})
}

// Run drives the simulation until no events remain. It returns an error
// if processes are still blocked at that point (deadlock) — naming them,
// since a deadlocked benchmark is a protocol bug worth diagnosing.
func (k *Kernel) Run() error {
	if k.halted {
		return fmt.Errorf("sim: kernel already ran")
	}
	k.halted = true
	for k.pq.Len() > 0 {
		ev := k.pq.popEvent()
		k.now = ev.t
		p := ev.p
		if p.state == stateDone {
			continue
		}
		p.state = stateRunning
		k.dispatch(p)
	}
	var stuck []string
	for _, p := range k.procs {
		if p.state == stateBlocked {
			stuck = append(stuck, p.name)
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return fmt.Errorf("sim: deadlock — %d process(es) still blocked: %v", len(stuck), stuck)
	}
	return nil
}

// dispatch transfers control to p and waits for it to yield.
func (k *Kernel) dispatch(p *Proc) {
	if p.body != nil {
		// First activation: start the goroutine.
		body := p.body
		p.body = nil
		go func() {
			<-p.resume
			body(p)
			p.state = stateDone
			k.yield <- struct{}{}
		}()
	}
	p.resume <- struct{}{}
	<-k.yield
}

// pause yields control to the kernel and blocks the goroutine until the
// kernel resumes this process.
func (p *Proc) pause(next procState) {
	p.state = next
	p.k.yield <- struct{}{}
	<-p.resume
	p.state = stateRunning
}

// Advance consumes d seconds of simulated time (CPU work). Negative d
// panics.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %q advancing by negative time %g", p.name, d))
	}
	if d == 0 {
		return
	}
	p.k.schedule(p, p.k.now+d)
	p.pause(stateReady)
}

// Yield reschedules the process at the current time, letting any other
// process scheduled at the same instant run first.
func (p *Proc) Yield() {
	p.k.schedule(p, p.k.now)
	p.pause(stateReady)
}

// block parks the process with no scheduled wakeup; another process must
// call unblock.
func (p *Proc) block() {
	p.pause(stateBlocked)
}

// unblock schedules p to resume at the current time.
func (p *Proc) unblock(q *Proc) {
	if q.state != stateBlocked {
		panic(fmt.Sprintf("sim: unblocking %q which is not blocked", q.name))
	}
	q.state = stateReady
	p.k.schedule(q, p.k.now)
}

// Mutex is a simulated FCFS mutex. Waiters queue in arrival order, the
// discipline of the Balance's lock hardware under sustained contention.
type Mutex struct {
	k       *Kernel
	owner   *Proc
	waiters []*Proc

	// Contention statistics for the harness.
	acquisitions uint64
	contended    uint64
	waitTime     Time
	lastQueued   map[*Proc]Time
}

// NewMutex creates a mutex on k.
func NewMutex(k *Kernel) *Mutex {
	return &Mutex{k: k, lastQueued: make(map[*Proc]Time)}
}

// Lock acquires m for p, blocking in FCFS order.
func (m *Mutex) Lock(p *Proc) {
	m.acquisitions++
	if m.owner == nil {
		m.owner = p
		return
	}
	if m.owner == p {
		panic(fmt.Sprintf("sim: %q recursively locking mutex", p.name))
	}
	m.contended++
	m.lastQueued[p] = p.Now()
	m.waiters = append(m.waiters, p)
	p.block()
	// Woken by Unlock, which already transferred ownership.
	if m.owner != p {
		panic("sim: woke from mutex wait without ownership")
	}
	m.waitTime += p.Now() - m.lastQueued[p]
	delete(m.lastQueued, p)
}

// Unlock releases m, handing it to the next waiter if any.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic(fmt.Sprintf("sim: %q unlocking mutex it does not own", p.name))
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	p.unblock(next)
}

// Stats reports acquisitions, the number that had to queue, and total
// queued time.
func (m *Mutex) Stats() (acquisitions, contended uint64, waitTime Time) {
	return m.acquisitions, m.contended, m.waitTime
}

// Cond is a condition variable bound to a Mutex.
type Cond struct {
	m       *Mutex
	waiters []*Proc
}

// NewCond creates a condition variable on m.
func NewCond(m *Mutex) *Cond { return &Cond{m: m} }

// Wait atomically releases the mutex and blocks until Broadcast or
// Signal, then reacquires the mutex before returning.
func (c *Cond) Wait(p *Proc) {
	if c.m.owner != p {
		panic(fmt.Sprintf("sim: %q waiting on cond without holding mutex", p.name))
	}
	c.waiters = append(c.waiters, p)
	c.m.Unlock(p)
	p.block()
	c.m.Lock(p)
}

// Signal wakes the longest-waiting process, if any. The caller must hold
// the mutex.
func (c *Cond) Signal(p *Proc) {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	p.unblock(w)
}

// Broadcast wakes all waiting processes. The caller must hold the mutex.
func (c *Cond) Broadcast(p *Proc) {
	for _, w := range c.waiters {
		p.unblock(w)
	}
	c.waiters = c.waiters[:0]
}

// Waiters returns the number of processes blocked in Wait. Cost models
// use it to charge wakeup work proportional to the number of sleepers.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Barrier is a simulated centralized sense-reversing barrier: each
// arrival takes the barrier lock (paying arrivalCost inside it, which
// serializes arrivals exactly as a counter-under-lock does on a real
// bus-based machine); the last arrival pays wakeupCost per sleeping
// party, the kernel's cost of making them runnable.
type Barrier struct {
	k           *Kernel
	parties     int
	arrivalCost Time
	wakeupCost  Time

	mu      *Mutex
	cond    *Cond
	waiting int
	phase   uint64
}

// NewBarrier creates a barrier for the given number of parties.
func NewBarrier(k *Kernel, parties int, arrivalCost, wakeupCost Time) *Barrier {
	if parties <= 0 {
		panic(fmt.Sprintf("sim: barrier of %d parties", parties))
	}
	mu := NewMutex(k)
	return &Barrier{
		k: k, parties: parties,
		arrivalCost: arrivalCost, wakeupCost: wakeupCost,
		mu: mu, cond: NewCond(mu),
	}
}

// Wait blocks p until all parties have arrived.
func (b *Barrier) Wait(p *Proc) {
	b.mu.Lock(p)
	p.Advance(b.arrivalCost)
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		p.Advance(Time(b.cond.Waiters()) * b.wakeupCost)
		b.cond.Broadcast(p)
		b.mu.Unlock(p)
		return
	}
	myPhase := b.phase
	for b.phase == myPhase {
		b.cond.Wait(p)
	}
	b.mu.Unlock(p)
}

// Resource is a single-server FCFS station with a fixed service rate in
// units/second — the shared bus. Use blocks for queueing plus service
// time.
type Resource struct {
	name     string
	rate     float64 // units per second
	freeAt   Time    // earliest time the server is free
	busyTime Time
	served   uint64
}

// NewResource creates a resource served at rate units/second.
func NewResource(name string, rate float64) *Resource {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: resource %q with non-positive rate %g", name, rate))
	}
	return &Resource{name: name, rate: rate}
}

// Use consumes amount units of the resource: the process waits for the
// server, holds it for amount/rate seconds, and returns at completion.
func (r *Resource) Use(p *Proc, amount float64) {
	if amount < 0 {
		panic(fmt.Sprintf("sim: %q using negative amount of %q", p.name, r.name))
	}
	if amount == 0 {
		return
	}
	start := p.Now()
	if r.freeAt > start {
		start = r.freeAt
	}
	service := amount / r.rate
	r.freeAt = start + service
	r.busyTime += service
	p.k.schedule(p, r.freeAt)
	p.pause(stateReady)
}

// Utilization returns the fraction of [0, now] the server was busy.
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	u := r.busyTime / now
	if u > 1 {
		u = 1
	}
	return u
}
