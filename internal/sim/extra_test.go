package sim

import (
	"math"
	"testing"
)

func TestCondWaiters(t *testing.T) {
	k := NewKernel(0)
	m := NewMutex(k)
	c := NewCond(m)
	release := false
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			m.Lock(p)
			for !release {
				c.Wait(p)
			}
			m.Unlock(p)
		})
	}
	k.Spawn("observer", func(p *Proc) {
		p.Advance(1)
		m.Lock(p)
		if got := c.Waiters(); got != 3 {
			t.Errorf("Waiters = %d, want 3", got)
		}
		release = true
		c.Broadcast(p)
		if got := c.Waiters(); got != 0 {
			t.Errorf("Waiters after Broadcast = %d, want 0", got)
		}
		m.Unlock(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSignalWakesFIFO(t *testing.T) {
	k := NewKernel(0)
	m := NewMutex(k)
	c := NewCond(m)
	var order []int
	turns := 0
	for i := 0; i < 3; i++ {
		idx := i
		stagger := Time(i) * 0.1
		k.Spawn("w", func(p *Proc) {
			p.Advance(stagger)
			m.Lock(p)
			for turns <= idx {
				c.Wait(p)
			}
			order = append(order, idx)
			m.Unlock(p)
		})
	}
	k.Spawn("signaller", func(p *Proc) {
		p.Advance(1)
		for i := 0; i < 3; i++ {
			m.Lock(p)
			turns++
			c.Broadcast(p)
			m.Unlock(p)
			p.Advance(0.1)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v (waiters not released in arrival order)", order)
		}
	}
}

func TestResourceIdleGapsReduceUtilization(t *testing.T) {
	k := NewKernel(0)
	r := NewResource("bus", 10)
	k.Spawn("p", func(p *Proc) {
		r.Use(p, 10) // busy 0..1
		p.Advance(1) // idle 1..2
		r.Use(p, 10) // busy 2..3
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if u := r.Utilization(k.Now()); math.Abs(u-2.0/3.0) > 1e-9 {
		t.Fatalf("utilization = %g, want 2/3", u)
	}
	if r.Utilization(0) != 0 {
		t.Fatal("utilization at t=0 must be 0")
	}
}

func TestResourceRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate resource accepted")
		}
	}()
	NewResource("bad", 0)
}

func TestResourceNegativeUsePanics(t *testing.T) {
	k := NewKernel(0)
	r := NewResource("r", 1)
	recovered := false
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		r.Use(p, -1)
	})
	_ = k.Run()
	if !recovered {
		t.Fatal("negative use did not panic")
	}
}

func TestProcAccessors(t *testing.T) {
	k := NewKernel(3)
	k.Spawn("named", func(p *Proc) {
		if p.Name() != "named" || p.ID() != 0 || p.Kernel() != k {
			t.Errorf("accessors wrong: %q %d", p.Name(), p.ID())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	// Advancing by NaN or manipulating time backwards must be caught.
	k := NewKernel(0)
	recovered := false
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		p.Advance(math.Inf(-1))
	})
	_ = k.Run()
	if !recovered {
		t.Fatal("negative-infinity Advance did not panic")
	}
}
