package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestAdvanceMovesClock(t *testing.T) {
	k := NewKernel(1)
	var end Time
	k.Spawn("p", func(p *Proc) {
		p.Advance(1.5)
		p.Advance(0.5)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 2.0 {
		t.Fatalf("end = %g, want 2.0", end)
	}
	if k.Now() != 2.0 {
		t.Fatalf("kernel clock = %g", k.Now())
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel(42)
		var log []string
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("p%d", i)
			delay := Time(i) * 0.25
			k.Spawn(name, func(p *Proc) {
				p.Advance(delay)
				for j := 0; j < 3; j++ {
					log = append(log, fmt.Sprintf("%s@%.2f", p.Name(), p.Now()))
					p.Advance(1)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if strings.Join(a, " ") != strings.Join(b, " ") {
		t.Fatalf("non-deterministic traces:\n%v\n%v", a, b)
	}
	if len(a) != 9 {
		t.Fatalf("trace length %d, want 9", len(a))
	}
}

func TestTieBreakBySpawnOrder(t *testing.T) {
	k := NewKernel(0)
	var order []int
	for i := 0; i < 5; i++ {
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			order = append(order, p.ID())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	k := NewKernel(0)
	var recovered bool
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		p.Advance(-1)
	})
	_ = k.Run()
	if !recovered {
		t.Fatal("negative Advance did not panic")
	}
}

func TestMutexExclusionAndFCFS(t *testing.T) {
	k := NewKernel(0)
	m := NewMutex(k)
	var order []string
	var inside int
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("p%d", i)
		stagger := Time(i) * 0.1
		k.Spawn(name, func(p *Proc) {
			p.Advance(stagger)
			m.Lock(p)
			inside++
			if inside != 1 {
				t.Errorf("two processes inside critical section")
			}
			order = append(order, p.Name())
			p.Advance(1) // hold the lock for 1s
			inside--
			m.Unlock(p)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// FCFS: arrival order p0, p1, p2, p3 (staggered).
	if got := strings.Join(order, ","); got != "p0,p1,p2,p3" {
		t.Fatalf("order = %s", got)
	}
	acq, cont, wait := m.Stats()
	if acq != 4 || cont != 3 {
		t.Fatalf("acq/cont = %d/%d", acq, cont)
	}
	// p1 waits 0.9, p2 waits 1.8, p3 waits 2.7.
	if math.Abs(wait-5.4) > 1e-9 {
		t.Fatalf("waitTime = %g, want 5.4", wait)
	}
}

func TestMutexRecursivePanics(t *testing.T) {
	k := NewKernel(0)
	m := NewMutex(k)
	var recovered bool
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		m.Lock(p)
		m.Lock(p)
	})
	_ = k.Run()
	if !recovered {
		t.Fatal("recursive lock did not panic")
	}
}

func TestMutexUnlockNotOwnerPanics(t *testing.T) {
	k := NewKernel(0)
	m := NewMutex(k)
	var recovered bool
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		m.Unlock(p)
	})
	_ = k.Run()
	if !recovered {
		t.Fatal("unlock by non-owner did not panic")
	}
}

func TestCondWaitSignal(t *testing.T) {
	k := NewKernel(0)
	m := NewMutex(k)
	c := NewCond(m)
	ready := false
	var consumedAt Time
	k.Spawn("consumer", func(p *Proc) {
		m.Lock(p)
		for !ready {
			c.Wait(p)
		}
		consumedAt = p.Now()
		m.Unlock(p)
	})
	k.Spawn("producer", func(p *Proc) {
		p.Advance(3)
		m.Lock(p)
		ready = true
		c.Signal(p)
		m.Unlock(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if consumedAt != 3 {
		t.Fatalf("consumedAt = %g, want 3", consumedAt)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	k := NewKernel(0)
	m := NewMutex(k)
	c := NewCond(m)
	go_ := false
	woke := 0
	for i := 0; i < 5; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			m.Lock(p)
			for !go_ {
				c.Wait(p)
			}
			woke++
			m.Unlock(p)
		})
	}
	k.Spawn("b", func(p *Proc) {
		p.Advance(1)
		m.Lock(p)
		go_ = true
		c.Broadcast(p)
		m.Unlock(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel(0)
	m := NewMutex(k)
	c := NewCond(m)
	k.Spawn("stuck", func(p *Proc) {
		m.Lock(p)
		c.Wait(p) // nobody will ever signal
		m.Unlock(p)
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("err = %v, want deadlock naming %q", err, "stuck")
	}
}

func TestResourceSerializesAndTimes(t *testing.T) {
	k := NewKernel(0)
	bus := NewResource("bus", 100) // 100 units/sec
	var done [2]Time
	for i := 0; i < 2; i++ {
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			bus.Use(p, 50) // 0.5s of service each
			done[p.ID()] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// FCFS single server: completions at 0.5 and 1.0.
	if math.Abs(done[0]-0.5) > 1e-9 || math.Abs(done[1]-1.0) > 1e-9 {
		t.Fatalf("done = %v", done)
	}
	if u := bus.Utilization(k.Now()); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("utilization = %g, want 1.0", u)
	}
}

func TestResourceZeroAmountFree(t *testing.T) {
	k := NewKernel(0)
	r := NewResource("r", 10)
	k.Spawn("p", func(p *Proc) {
		r.Use(p, 0)
		if p.Now() != 0 {
			t.Errorf("zero use advanced time to %g", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	k := NewKernel(0)
	var childRan bool
	k.Spawn("parent", func(p *Proc) {
		p.Advance(1)
		k.Spawn("child", func(c *Proc) {
			if c.Now() != 1 {
				t.Errorf("child started at %g, want 1", c.Now())
			}
			childRan = true
		})
		p.Advance(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestYieldRoundRobinsSameInstant(t *testing.T) {
	k := NewKernel(0)
	var log []string
	k.Spawn("a", func(p *Proc) {
		log = append(log, "a1")
		p.Yield()
		log = append(log, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		log = append(log, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(log, ","); got != "a1,b1,a2" {
		t.Fatalf("log = %s", got)
	}
}

func TestRandDeterministic(t *testing.T) {
	seq := func(seed int64) []int {
		k := NewKernel(seed)
		var out []int
		k.Spawn("p", func(p *Proc) {
			for i := 0; i < 5; i++ {
				out = append(out, k.Rand().Intn(1000))
			}
		})
		k.Run()
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different sequences")
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestKernelRunTwiceRejected(t *testing.T) {
	k := NewKernel(0)
	k.Spawn("p", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestManyProcessesProducerConsumer(t *testing.T) {
	// A sim-level producer/consumer pipeline exercising mutex+cond under
	// load, with a known analytic completion time.
	k := NewKernel(0)
	m := NewMutex(k)
	c := NewCond(m)
	queue := 0
	const items = 100
	var consumed int
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < items; i++ {
			p.Advance(0.01)
			m.Lock(p)
			queue++
			c.Signal(p)
			m.Unlock(p)
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		for consumed < items {
			m.Lock(p)
			for queue == 0 {
				c.Wait(p)
			}
			queue--
			m.Unlock(p)
			p.Advance(0.005)
			consumed++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if consumed != items {
		t.Fatalf("consumed = %d", consumed)
	}
	// Producer is the bottleneck at 0.01s/item; completion ≈ 1.005s.
	if k.Now() < 1.0 || k.Now() > 1.1 {
		t.Fatalf("completion at %g, want ≈1.005", k.Now())
	}
}
