package simmpf

import (
	"testing"

	"repro/internal/balance"
	"repro/internal/sim"
)

func TestCircuitDeletedAndRecreated(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, balance.Balance21000())
	var secondGen *Circuit
	k.Spawn("p", func(p *sim.Proc) {
		s := f.OpenSend(p, "cycle")
		f.Send(p, s, 8)
		f.CloseSend(p, s) // last connection: circuit dies, message dropped

		s2 := f.OpenSend(p, "cycle")
		secondGen = s2
		if s2 == s {
			// Allowed (map reuse), but the queue must be fresh.
		}
		r := f.OpenReceive(p, "cycle", FCFS)
		if f.Check(p, r) {
			t.Error("message survived circuit deletion")
		}
		f.Send(p, s2, 4)
		if n := f.Receive(p, r); n != 4 {
			t.Errorf("fresh circuit delivered %d bytes", n)
		}
		f.CloseSend(p, s2)
		f.CloseReceive(p, r)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if secondGen.QueueLen() != 0 {
		t.Fatal("queue not empty at end")
	}
}

func TestDoubleOpenPanics(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, balance.Balance21000())
	recovered := false
	k.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		f.OpenSend(p, "dup")
		f.OpenSend(p, "dup")
	})
	_ = k.Run()
	if !recovered {
		t.Fatal("double open_send did not panic")
	}
}

func TestSendWithoutConnectionPanics(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, balance.Balance21000())
	recovered := false
	k.Spawn("p", func(p *sim.Proc) {
		s := f.OpenSend(p, "a")
		f.CloseSend(p, s)
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		f.Send(p, s, 4)
	})
	_ = k.Run()
	if !recovered {
		t.Fatal("send after close did not panic")
	}
}

func TestCloseReceiveLastFCFSReleasesHoard(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, balance.Balance21000())
	k.Spawn("other", func(p *sim.Proc) {
		// A broadcast receiver connected from the start; it consumes
		// its copies of all five messages.
		c := f.OpenReceive(p, "h", Broadcast)
		for i := 0; i < 5; i++ {
			f.Receive(p, c)
		}
	})
	k.Spawn("p", func(p *sim.Proc) {
		p.Advance(1e-6)
		s := f.OpenSend(p, "h")
		fcfs := f.OpenReceive(p, "h", FCFS)
		for i := 0; i < 5; i++ {
			f.Send(p, s, 8)
		}
		// Wait until the broadcast receiver has drained everything.
		p.Advance(1)
		// The FCFS receiver closes without reading: with only the
		// broadcast receiver left connected, the queue must not hoard
		// the FCFS-claimed messages.
		f.CloseReceive(p, fcfs)
		if s.QueueLen() != 0 {
			t.Errorf("%d messages hoarded after last FCFS close", s.QueueLen())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxQueuedHighWater(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, balance.Balance21000())
	var c *Circuit
	k.Spawn("p", func(p *sim.Proc) {
		s := f.OpenSend(p, "hw")
		c = s
		r := f.OpenReceive(p, "hw", FCFS)
		for i := 0; i < 7; i++ {
			f.Send(p, s, 4)
		}
		for i := 0; i < 7; i++ {
			f.Receive(p, r)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.MaxQueued() != 7 {
		t.Fatalf("MaxQueued = %d, want 7", c.MaxQueued())
	}
}
